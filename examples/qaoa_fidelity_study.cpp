// Fidelity study of a hardware-grid QAOA circuit under realistic
// superconducting decoherence -- the NISQ-era question the paper's intro
// motivates: "how faithful is the output my algorithm would produce on
// today's hardware?"
//
// The expected output |v> = U|0..0> is folded into the circuit as the
// adjoint projector, so the split networks collapse to the noise light
// cones and the 36-qubit sweep runs in seconds.
//
// Entry is through the budget-driven core::simulate() front door: at 36
// qubits every state-vector-sized backend is ruled out by memory and the
// thermal-relaxation channels are not unitary mixtures, so selection lands
// on the Algorithm-1 level ladder and picks the cheapest level whose bound
// meets the error budget.
//
// Build & run:  ./build/examples/qaoa_fidelity_study

#include <iostream>

#include "bench_support/generators.hpp"
#include "bench_support/harness.hpp"
#include "core/backend.hpp"
#include "core/bounds.hpp"
#include "core/plan_cache.hpp"

int main() {
  using namespace noisim;

  const int side = 6;  // 6x6 = 36-qubit hardware grid
  const qc::Circuit circuit = bench::qaoa_grid(side, side, 1, 2024);
  std::cout << "hardware-grid QAOA, " << side * side << " qubits, " << circuit.size()
            << " gates, depth " << circuit.depth() << "\n"
            << "noise model: thermal relaxation (T1/T2 decoherence), rate ~7e-3\n\n";

  core::PlanCache cache;  // shared across the sweep: plans compile once
  bench::Table table({"#noises", "fidelity", "backend", "level", "bound", "time(s)"});
  for (std::size_t noises : {2u, 5u, 10u, 15u, 20u}) {
    const ch::NoisyCircuit nc =
        bench::insert_noises(circuit, noises, bench::realistic_noise(7e-3), 77 + noises);
    const ch::NoisyCircuit projected = core::with_ideal_output_projector(nc);

    core::SimulateOptions opts;
    opts.error_budget = 5e-2;
    opts.eval.simplify = true;  // light-cone reduction around the noise sites
    opts.plan_cache = &cache;
    core::SimResult pick;
    const auto run = bench::run_guarded([&] {
      pick = core::simulate(projected, 0, 0, opts);
      return pick.value;
    });

    table.add_row({std::to_string(noises), run.ok() ? bench::fixed(run.value, 6) : "-",
                   run.ok() ? core::backend_name(pick.backend) : "-",
                   run.ok() ? std::to_string(pick.config.level) : "-",
                   run.ok() ? bench::sci(pick.error_bound) : "-", bench::format_time(run)});
  }
  table.print(std::cout);
  std::cout << "\nEach additional decoherence site multiplies the circuit fidelity by\n"
            << "roughly the per-noise dominant singular weight -- watch it decay.\n";
  return 0;
}
