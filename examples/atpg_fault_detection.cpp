// ATPG-style fault detection -- the application the paper's conclusion
// points at: use the approximation algorithm to grade test patterns for
// detecting a decoherence fault in a manufactured circuit.
//
// Build & run:  ./build/examples/atpg_fault_detection

#include <iostream>
#include <random>

#include "bench_support/generators.hpp"
#include "bench_support/harness.hpp"
#include "channels/catalog.hpp"
#include "core/atpg.hpp"

int main() {
  using namespace noisim;

  // Device under test: an 8-qubit HF-VQE ansatz with a single strong
  // amplitude-damping fault after its 20th gate.
  const qc::Circuit circuit = bench::hf_vqe(8, 5);
  ch::NoisyCircuit faulty(circuit.num_qubits());
  const auto& gates = circuit.gates();
  for (std::size_t i = 0; i < gates.size(); ++i) {
    faulty.add_gate(gates[i]);
    if (i == 20) faulty.add_noise(gates[i].qubits[0], ch::amplitude_damping(0.25));
  }
  std::cout << "device: hf_8 (" << circuit.size() << " gates), fault: amplitude damping "
            << "gamma=0.25 after gate 20 (qubit " << gates[20].qubits[0] << ")\n\n";

  // Candidate test patterns: the all-zeros pattern plus random basis states.
  std::vector<std::uint64_t> candidates{0};
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::uint64_t> pick(0, (1u << circuit.num_qubits()) - 1);
  for (int i = 0; i < 15; ++i) candidates.push_back(pick(rng));

  // Enter through the budget-driven front door: simulate() picks the
  // backend and configuration per pattern (here the fault is not a unitary
  // mixture, so TN trajectories are automatically ruled out).
  core::SimulateOptions opts;
  opts.error_budget = 1e-2;
  const core::TestPatternResult result = core::best_test_pattern(faulty, candidates, opts);

  bench::Table table({"pattern", "detection prob"});
  for (std::size_t i = 0; i < candidates.size(); ++i)
    table.add_row({std::to_string(candidates[i]), bench::fixed(result.all[i], 4)});
  table.print(std::cout);

  std::cout << "\nbest test pattern: |" << result.pattern << ">  detects the fault with "
            << "probability " << bench::fixed(result.detection_probability, 4) << "\n"
            << "(patterns that leave the faulty qubit's orbital unoccupied barely\n"
            << "excite the fault; occupied patterns detect the decay directly)\n";
  return 0;
}
