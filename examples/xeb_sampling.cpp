// Output-bitstring batching walkthrough: score one noisy circuit at many
// sampled output bitstrings and form a linear cross-entropy (XEB) estimate.
//
// Batched APIs, each bit-identical to its per-bitstring loop:
//  * core::batch_amplitudes        -- ideal amplitudes <x|C|0> for every x
//  * core::approximate_fidelity_outputs -- Algorithm-1 A(l) at every x
//  * core::trajectories_tn_outputs -- trajectory estimates at every x,
//                                     sharing the sampled noise realizations
//  * core::xeb_sweep + core::PlanCache -- the sharded sweep engine for XEB
//    batches arriving over time: explicit output shards fill every worker
//    and repeated calls over one skeleton skip plan recompilation.
//
// Build: cmake --build build --target xeb_sampling
// Run:   build/xeb_sampling [num_bitstrings]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <random>

#include "bench_support/generators.hpp"
#include "core/approx.hpp"
#include "core/plan_cache.hpp"
#include "core/trajectories_tn.hpp"

using namespace noisim;

int main(int argc, char** argv) {
  const int n = 16;  // 4x4 grid
  const std::size_t K = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;

  const qc::Circuit circuit = bench::qaoa(n, 1, 42);
  const ch::NoisyCircuit nc =
      bench::insert_noises(circuit, 4, bench::depolarizing_noise(0.01), 7);
  std::printf("qaoa_%d: %zu gates, depth %zu, %zu depolarizing noises\n", n,
              circuit.size(), circuit.depth(), nc.noise_count());

  // Sampled output bitstrings (uniform here; a real XEB run would replay
  // device measurements).
  std::mt19937_64 rng(1);
  std::vector<std::uint64_t> xs(K);
  for (auto& x : xs) x = rng() & ((std::uint64_t{1} << n) - 1);

  core::EvalOptions eval;
  eval.backend = core::EvalOptions::Backend::TensorNetwork;

  // Ideal probabilities p(x) = |<x|C|0>|^2, one batched traversal.
  const std::vector<cplx> amps = core::batch_amplitudes(n, circuit.gates(), 0, xs,
                                                        /*conjugate=*/false, eval);

  // Noisy probabilities A(1) ~ <x|E(rho)|x>, every Algorithm-1 term
  // evaluated for all K outputs in one sweep.
  core::ApproxOptions aopts;
  aopts.level = 1;
  aopts.eval = eval;
  const core::ApproxBatchResult noisy = core::approximate_fidelity_outputs(nc, 0, xs, aopts);

  // Trajectory estimates sharing one set of sampled noise realizations.
  sim::ParallelOptions popts;
  const std::vector<sim::TrajectoryResult> traj =
      core::trajectories_tn_outputs(nc, 0, xs, 400, 11, popts, eval);

  std::printf("\n%-18s %-12s %-12s %-18s\n", "bitstring", "p_ideal", "A(1)",
              "trajectories");
  double mean_ideal = 0.0, mean_noisy = 0.0;
  for (std::size_t i = 0; i < K; ++i) {
    const double p = std::norm(amps[i]);
    mean_ideal += p;
    mean_noisy += noisy.values[i];
    std::printf("%0*llx%*s %-12.3e %-12.3e %.3e +- %.1e\n", (n + 3) / 4,
                static_cast<unsigned long long>(xs[i]), 18 - (n + 3) / 4, "", p,
                noisy.values[i], traj[i].mean, traj[i].std_error);
  }
  mean_ideal /= static_cast<double>(K);
  mean_noisy /= static_cast<double>(K);

  const double pow2n = std::ldexp(1.0, n);
  std::printf("\nlinear XEB over the %zu samples:\n", K);
  std::printf("  ideal circuit:  %+.4f\n", pow2n * mean_ideal - 1.0);
  std::printf("  noisy (A(1)):   %+.4f\n", pow2n * mean_noisy - 1.0);
  std::printf("  (uniform samples => ~0; sampling from the device distribution"
              " would push this toward the circuit fidelity)\n");
  std::printf("\nA(1) error bound (Theorem 1): %.3e\n", noisy.error_bound);

  // --- sharded sweeps + plan caching: XEB batches arriving over time ------
  // A device streams measurement batches; every batch probes the SAME
  // circuit skeleton. One PlanCache amortizes the templates and batched
  // plans across batches, and xeb_sweep's 2-D (term-range x output-chunk)
  // queue keeps all workers busy even when terms are few and bitstrings
  // many. Values are bit-identical to per-bitstring approximate_fidelity
  // at any shard size, thread count, or cache state.
  core::PlanCache cache;
  core::SweepOptions sopts;
  sopts.approx = aopts;
  sopts.approx.threads = 4;
  sopts.approx.plan_cache = &cache;
  sopts.shard_outputs = 4;  // 0 = default (32 on the TN path)
  std::printf("\nsweep ladder over 3 arriving batches (shard %zu, %zu threads):\n",
              sopts.shard_outputs, sopts.approx.threads);
  for (int batch = 0; batch < 3; ++batch) {
    std::vector<std::uint64_t> batch_xs(K);
    for (auto& x : batch_xs) x = rng() & ((std::uint64_t{1} << n) - 1);
    const core::ApproxBatchResult r = core::xeb_sweep(nc, 0, batch_xs, sopts);
    double mean = 0.0;
    for (const double v : r.values) mean += v;
    std::printf("  batch %d: XEB %+.4f  plan %.1fms eval %.1fms  cache hits %zu"
                " (plans compiled: %zu)\n",
                batch, pow2n * (mean / static_cast<double>(K)) - 1.0,
                1e3 * r.plan_seconds, 1e3 * r.eval_seconds,
                r.contract_stats.plan_cache_hits, r.contract_stats.plans_compiled);
  }
  std::printf("  (batches 2-3 hit the cache: plan time collapses, nothing recompiles)\n");
  return 0;
}
