// Quickstart: simulate the paper's 2-qubit QAOA circuit (Fig. 1) with a
// depolarizing noise and compare the approximation levels against the exact
// density-matrix result.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>
#include <numbers>

#include "channels/catalog.hpp"
#include "core/approx.hpp"
#include "core/backend.hpp"
#include "core/bounds.hpp"
#include "sim/density.hpp"

int main() {
  using namespace noisim;
  constexpr double pi = std::numbers::pi;

  // The 2-qubit QAOA circuit of Fig. 1 with theta = 0.6 (the ZZ phase
  // interaction realized as the CX - RZ - CX sandwich).
  qc::Circuit circuit(2);
  circuit.add(qc::ry(0, -pi / 2)).add(qc::ry(1, -pi / 2));
  circuit.add(qc::rz(0, pi / 2)).add(qc::rz(1, pi / 2));
  circuit.add(qc::cx(0, 1));
  circuit.add(qc::rz(1, 0.6));
  circuit.add(qc::cx(0, 1));
  circuit.add(qc::rx(0, pi)).add(qc::rx(1, pi));

  // Insert a depolarizing noise (the paper's Fig. 2 places it mid-circuit).
  ch::NoisyCircuit noisy(2);
  const auto& gates = circuit.gates();
  for (std::size_t i = 0; i < gates.size(); ++i) {
    noisy.add_gate(gates[i]);
    if (i == 4) noisy.add_noise(1, ch::depolarizing(0.01));
  }

  std::cout << "2-qubit QAOA (Fig. 1), one depolarizing noise p = 0.01\n";
  std::cout << "noise rate ||M_E - I|| = " << noisy.max_noise_rate() << "\n\n";

  // Exact reference: density-matrix (MM-based) simulation.
  const double exact = sim::exact_fidelity_mm(noisy, 0b00, 0b00);
  std::cout << "exact <00|E(|00><00|)|00>      = " << exact << "\n";

  // The paper's algorithm at increasing approximation levels.
  core::ApproxOptions opts;
  opts.level = noisy.noise_count();  // full level reproduces the exact value
  const core::ApproxResult result = core::approximate_fidelity(noisy, 0b00, 0b00, opts);
  for (std::size_t level = 0; level < result.level_values.size(); ++level) {
    std::cout << "level-" << level << " approximation A(" << level
              << ")         = " << result.level_values[level]
              << "   |error| = " << std::abs(result.level_values[level] - exact) << "\n";
  }
  std::cout << "\nTheorem-1 bound at level 1: "
            << core::theorem1_error_bound(noisy.noise_count(), noisy.max_noise_rate(), 1)
            << " (contractions used: " << result.contractions << ")\n";

  // Or skip the backend choice entirely: core::simulate() estimates every
  // engine's cost at plan time and runs the cheapest one meeting the budget.
  core::SimulateOptions sopts;
  sopts.error_budget = 1e-3;
  const core::SimResult picked = core::simulate(noisy, 0b00, 0b00, sopts);
  std::cout << "\nsimulate(error_budget=1e-3) chose " << core::backend_name(picked.backend)
            << ": value = " << picked.value << ", bound = " << picked.error_bound << "\n";
  return 0;
}
