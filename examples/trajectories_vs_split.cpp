// Deterministic SVD-splitting vs. Monte-Carlo quantum trajectories on the
// same noisy circuit: convergence behaviour and cost at equal accuracy.
//
// This is the paper's central comparison (Table III / Fig. 5) on a concrete
// HF-VQE instance small enough to print everything.
//
// Build & run:  ./build/examples/trajectories_vs_split

#include <iostream>
#include <random>

#include "bench_support/generators.hpp"
#include "bench_support/harness.hpp"
#include "core/approx.hpp"
#include "core/bounds.hpp"
#include "sim/density.hpp"
#include "sim/trajectories.hpp"

int main() {
  using namespace noisim;

  const qc::Circuit circuit = bench::hf_vqe(8, 11);
  const double p = 0.005;
  // Probe the fidelity against the *ideal output* |v> = U|0..0> (folded in
  // as the adjoint projector), the quantity a VQE practitioner cares about.
  const ch::NoisyCircuit nc = core::with_ideal_output_projector(
      bench::insert_noises(circuit, 12, bench::depolarizing_noise(p), 3));
  std::cout << "hf_8 Hartree-Fock VQE ansatz, " << nc.noise_count()
            << " depolarizing noises (p = " << p << "), v = ideal output\n\n";

  const double exact = sim::exact_fidelity_mm(nc, 0, 0);
  std::cout << "exact fidelity (density matrix): " << exact << "\n\n";

  // Ours: deterministic, error shrinks with level.
  core::ApproxOptions opts;
  opts.level = 2;
  const core::ApproxResult ours = core::approximate_fidelity(nc, 0, 0, opts);
  std::cout << "SVD-split approximation:\n";
  for (std::size_t l = 0; l < ours.level_values.size(); ++l)
    std::cout << "  level " << l << ": " << ours.level_values[l]
              << "  |err| = " << bench::sci(std::abs(ours.level_values[l] - exact)) << "\n";
  std::cout << "  contractions: " << ours.contractions << "\n\n";

  // Trajectories: stochastic, error shrinks as 1/sqrt(samples).
  std::cout << "quantum trajectories (statevector):\n";
  std::mt19937_64 rng(42);
  for (std::size_t samples : {64u, 256u, 1024u, 4096u}) {
    const sim::TrajectoryResult r = sim::trajectories_sv(nc, 0, 0, samples, rng);
    std::cout << "  " << samples << " samples: " << r.mean
              << "  |err| = " << bench::sci(std::abs(r.mean - exact))
              << "  (std err " << bench::sci(r.std_error) << ")\n";
  }

  const double eps = core::theorem1_error_bound(nc.noise_count(), nc.max_noise_rate(), 1);
  std::cout << "\nto guarantee our level-1 bound eps = " << bench::sci(eps)
            << ", trajectories would need ~"
            << bench::sci(core::trajectories_samples_hoeffding(nc.noise_count(),
                                                               nc.max_noise_rate(), 0.01))
            << " samples (Hoeffding, 99% confidence) vs our "
            << core::contraction_count(nc.noise_count(), 1) << " contractions.\n";
  return 0;
}
