// How noise degrades a random supremacy-style circuit: exact doubled-diagram
// contraction of inst_4x4 under a growing number of decoherence sites, plus
// the point where the exact method gives out and the approximation takes
// over -- the workload class Google's quantum-supremacy experiments made
// famous and the paper's hardest benchmark family.
//
// Build & run:  ./build/examples/supremacy_noise_scaling

#include <iostream>

#include "bench_support/generators.hpp"
#include "bench_support/harness.hpp"
#include "core/approx.hpp"
#include "core/backend.hpp"
#include "core/doubled_network.hpp"
#include "core/plan_cache.hpp"

int main() {
  using namespace noisim;

  const qc::Circuit circuit = bench::supremacy_inst(4, 4, 12, 99);
  std::cout << "inst_4x4_12 random circuit: " << circuit.num_qubits() << " qubits, "
            << circuit.size() << " gates, depth " << circuit.depth() << "\n"
            << "output amplitude probed: <0..0|E(|0..0><0..0|)|0..0>\n\n";

  core::PlanCache cache;
  bench::Table table(
      {"#noises", "exact TN", "t_exact(s)", "simulate()", "backend/lvl", "t_sim(s)"});
  for (std::size_t noises : {0u, 4u, 8u, 16u, 32u}) {
    const std::size_t count = std::min<std::size_t>(noises, circuit.size());
    const ch::NoisyCircuit nc =
        bench::insert_noises(circuit, count, bench::realistic_noise(7e-3), 5 + noises);

    tn::ContractOptions topts;
    topts.max_tensor_elems = std::size_t{1} << 24;
    topts.timeout_seconds = 60.0;
    const auto exact =
        bench::run_guarded([&] { return core::exact_fidelity_tn(nc, 0, 0, topts); });

    // The front door: no backend hints -- at 16 qubits it arbitrates the
    // density matrix against the Algorithm-1 ladder and the samplers on
    // modeled cost alone.
    core::SimulateOptions sopts;
    sopts.error_budget = 2e-2;
    sopts.eval.tn = topts;
    sopts.deadline = 60.0;
    sopts.plan_cache = &cache;
    core::SimResult pick;
    bool fit = true;  // false when no backend can meet the budgets
    const auto ours = bench::run_guarded([&] {
      try {
        pick = core::simulate(nc, 0, 0, sopts);
      } catch (const LinalgError&) {
        fit = false;
        return 0.0;
      }
      return pick.value;
    });
    const bool picked = ours.ok() && fit;
    std::string chosen = "no fit";
    if (picked) {
      chosen = core::backend_name(pick.backend);
      if (pick.backend == core::BackendKind::TnApprox) {
        chosen += "/";
        chosen += std::to_string(pick.config.level);
      }
    }

    table.add_row({std::to_string(count), bench::format_value(exact),
                   bench::format_time(exact), picked ? bench::format_value(ours) : "-",
                   chosen, bench::format_time(ours)});
  }
  table.print(std::cout);
  std::cout << "\nThe exact doubled diagram inflates with every noise coupling; the\n"
            << "front door rides the Algorithm-1 level ladder instead -- and refuses\n"
            << "honestly (\"no fit\") once no configuration meets the error budget\n"
            << "within the deadline, rather than returning a value it cannot bound.\n";
  return 0;
}
