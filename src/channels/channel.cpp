#include "channels/channel.hpp"

#include <cmath>

#include "linalg/svd.hpp"

namespace noisim::ch {

Channel::Channel(std::string name, std::vector<la::Matrix> kraus, double tol)
    : name_(std::move(name)), kraus_(std::move(kraus)) {
  la::detail::require(!kraus_.empty(), "Channel: empty Kraus set");
  dim_ = kraus_.front().rows();
  la::detail::require(dim_ > 0, "Channel: zero-dimensional Kraus operator");
  for (const la::Matrix& k : kraus_)
    la::detail::require(k.rows() == dim_ && k.cols() == dim_,
                        "Channel: Kraus operators must be square and same-dimensional");
  if (tol > 0.0) {
    const double defect = completeness_defect();
    if (defect > tol)
      la::detail::fail("Channel '" + name_ + "': Kraus completeness defect " +
                       std::to_string(defect));
  }
}

std::size_t Channel::num_qubits() const {
  std::size_t n = 0, d = dim_;
  while (d > 1) {
    la::detail::require(d % 2 == 0, "Channel: dimension is not a power of two");
    d /= 2;
    ++n;
  }
  return n;
}

la::Matrix Channel::apply(const la::Matrix& rho) const {
  la::detail::require(rho.rows() == dim_ && rho.cols() == dim_, "Channel::apply: shape mismatch");
  la::Matrix out(dim_, dim_);
  for (const la::Matrix& k : kraus_) out += k * rho * k.adjoint();
  return out;
}

la::Matrix Channel::superoperator() const {
  la::Matrix m(dim_ * dim_, dim_ * dim_);
  for (const la::Matrix& k : kraus_) m += la::kron(k, k.conj());
  return m;
}

double Channel::noise_rate() const {
  la::Matrix m = superoperator();
  m -= la::Matrix::identity(dim_ * dim_);
  return la::spectral_norm(m);
}

la::Matrix Channel::choi() const {
  la::Matrix c(dim_ * dim_, dim_ * dim_);
  for (const la::Matrix& k : kraus_) {
    const la::Vector v = la::vec(k);
    c += la::Matrix::outer(v, v);
  }
  return c;
}

double Channel::completeness_defect() const {
  la::Matrix s(dim_, dim_);
  for (const la::Matrix& k : kraus_) s += k.adjoint() * k;
  s -= la::Matrix::identity(dim_);
  return la::spectral_norm(s);
}

std::optional<UnitaryMixture> Channel::unitary_mixture(double tol) const {
  UnitaryMixture mix;
  for (const la::Matrix& k : kraus_) {
    // E^dag E = p I  <=>  E = sqrt(p) U.
    const la::Matrix g = k.adjoint() * k;
    const double p = g.trace().real() / static_cast<double>(dim_);
    la::Matrix defect = g;
    defect -= p * la::Matrix::identity(dim_);
    if (la::spectral_norm(defect) > tol) return std::nullopt;
    if (p <= tol) continue;  // vanishing Kraus term contributes nothing
    la::Matrix u = k;
    u *= 1.0 / std::sqrt(p);
    mix.probs.push_back(p);
    mix.unitaries.push_back(std::move(u));
  }
  return mix;
}

Channel unitary_channel(const la::Matrix& u, std::string name) {
  la::detail::require(u.is_unitary(1e-9), "unitary_channel: matrix is not unitary");
  return Channel(std::move(name), {u});
}

Channel compose(const Channel& second, const Channel& first) {
  la::detail::require(second.dim() == first.dim(), "compose: dimension mismatch");
  std::vector<la::Matrix> kraus;
  kraus.reserve(second.kraus().size() * first.kraus().size());
  for (const la::Matrix& a : second.kraus())
    for (const la::Matrix& b : first.kraus()) kraus.push_back(a * b);
  return Channel(second.name() + "." + first.name(), std::move(kraus));
}

}  // namespace noisim::ch
