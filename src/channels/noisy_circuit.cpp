#include "channels/noisy_circuit.hpp"

#include <algorithm>

namespace noisim::ch {

NoisyCircuit::NoisyCircuit(int num_qubits) : n_(num_qubits) {
  la::detail::require(num_qubits > 0, "NoisyCircuit: need at least one qubit");
}

NoisyCircuit::NoisyCircuit(const qc::Circuit& c) : NoisyCircuit(c.num_qubits()) {
  for (const qc::Gate& g : c.gates()) ops_.emplace_back(g);
}

NoisyCircuit& NoisyCircuit::add_gate(qc::Gate g) {
  la::detail::require(g.qubits[0] >= 0 && g.qubits[0] < n_ && g.qubits[1] < n_,
                      "NoisyCircuit::add_gate: qubit out of range");
  ops_.emplace_back(std::move(g));
  return *this;
}

NoisyCircuit& NoisyCircuit::add_noise(int qubit, Channel channel) {
  la::detail::require(qubit >= 0 && qubit < n_, "NoisyCircuit::add_noise: qubit out of range");
  la::detail::require(channel.dim() == 2, "NoisyCircuit::add_noise: only 1-qubit channels");
  ops_.emplace_back(NoiseOp{qubit, std::move(channel)});
  return *this;
}

NoisyCircuit& NoisyCircuit::add_noise_2q(int qubit_a, int qubit_b, Channel channel) {
  la::detail::require(qubit_a >= 0 && qubit_a < n_ && qubit_b >= 0 && qubit_b < n_ &&
                          qubit_a != qubit_b,
                      "NoisyCircuit::add_noise_2q: bad qubit pair");
  la::detail::require(channel.dim() == 4, "NoisyCircuit::add_noise_2q: only 2-qubit channels");
  ops_.emplace_back(NoiseOp{qubit_a, std::move(channel), qubit_b});
  return *this;
}

std::size_t NoisyCircuit::noise_count() const {
  return static_cast<std::size_t>(std::count_if(
      ops_.begin(), ops_.end(), [](const Op& op) { return std::holds_alternative<NoiseOp>(op); }));
}

std::vector<std::size_t> NoisyCircuit::noise_positions() const {
  std::vector<std::size_t> pos;
  for (std::size_t i = 0; i < ops_.size(); ++i)
    if (std::holds_alternative<NoiseOp>(ops_[i])) pos.push_back(i);
  return pos;
}

double NoisyCircuit::max_noise_rate() const {
  double rate = 0.0;
  for (const Op& op : ops_)
    if (const NoiseOp* n = std::get_if<NoiseOp>(&op)) rate = std::max(rate, n->channel.noise_rate());
  return rate;
}

qc::Circuit NoisyCircuit::gates_only() const {
  qc::Circuit c(n_);
  for (const Op& op : ops_)
    if (const qc::Gate* g = std::get_if<qc::Gate>(&op)) c.add(*g);
  return c;
}

}  // namespace noisim::ch
