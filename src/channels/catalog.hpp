#pragma once
// Catalog of standard 1-qubit noise channels.
//
// The paper's experiments use two fault models:
//  * a "realistic decoherence noise model of superconducting quantum
//    circuits" [31] -- thermal relaxation combining amplitude damping (T1)
//    and pure dephasing (T2), parameterized by the gate duration; and
//  * the depolarizing channel (analytical experiments, Fig 6 right).
// Everything else here exists for tests and for users of the library.

#include "channels/channel.hpp"

namespace noisim::ch {

/// E(rho) = (1-p) rho + p/3 (X rho X + Y rho Y + Z rho Z).
/// Note: with the paper's definitions the noise rate of this channel is
/// exactly 4p/3 (the paper's prose says 2p; see DESIGN.md).
Channel depolarizing(double p);

/// E(rho) = (1-p) rho + p X rho X.
Channel bit_flip(double p);
/// E(rho) = (1-p) rho + p Z rho Z.
Channel phase_flip(double p);
/// E(rho) = (1-p) rho + p Y rho Y.
Channel bit_phase_flip(double p);
/// General Pauli channel with probabilities (px, py, pz).
Channel pauli_channel(double px, double py, double pz);

/// Amplitude damping with decay probability gamma in [0, 1].
Channel amplitude_damping(double gamma);
/// Amplitude damping towards a thermal state with excited population p1.
Channel generalized_amplitude_damping(double gamma, double p1);
/// Phase damping with parameter lambda in [0, 1].
Channel phase_damping(double lambda);

/// Thermal relaxation for a gate of duration t against relaxation times
/// T1 (amplitude damping) and T2 (total dephasing), requiring T2 <= 2*T1.
/// This is the realistic superconducting decoherence model of [31]:
/// amplitude damping gamma = 1 - exp(-t/T1) composed with the pure
/// dephasing that brings the total off-diagonal decay to exp(-t/T2).
Channel thermal_relaxation(double t, double t1, double t2);

/// The identity channel (useful as a zero-noise control).
Channel identity_channel();

/// Correlated two-qubit depolarizing channel (this library's 2-qubit noise
/// extension): E(rho) = (1-p) rho + p/15 sum_{P != I(x)I} P rho P over the
/// 15 non-identity two-qubit Pauli operators.
Channel two_qubit_depolarizing(double p);

}  // namespace noisim::ch
