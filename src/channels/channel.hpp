#pragma once
// Quantum channels in Kraus form: E(rho) = sum_k E_k rho E_k^dagger.
//
// The paper manipulates channels through their superoperator matrix
// M_E = sum_k E_k (x) E_k^*, and defines the *noise rate* of E as
// ||M_E - I||_2 (spectral norm). Both live here.

#include <optional>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace noisim::ch {

/// Decomposition of a channel into a probabilistic mixture of unitaries;
/// available iff every Kraus operator is proportional to a unitary. The
/// TN-based quantum-trajectories baseline requires this form.
struct UnitaryMixture {
  std::vector<double> probs;
  std::vector<la::Matrix> unitaries;
};

class Channel {
 public:
  /// Construct from Kraus operators (all square, same dimension).
  /// Completeness (sum E^dag E = I) is validated to `tol` unless the channel
  /// is explicitly marked non-CPTP (used only in adversarial tests).
  Channel(std::string name, std::vector<la::Matrix> kraus, double tol = 1e-9);

  const std::string& name() const { return name_; }
  std::size_t dim() const { return dim_; }
  std::size_t num_qubits() const;
  const std::vector<la::Matrix>& kraus() const { return kraus_; }

  /// rho -> sum_k E_k rho E_k^dagger.
  la::Matrix apply(const la::Matrix& rho) const;

  /// Superoperator matrix M_E = sum_k E_k (x) conj(E_k) of size dim^2.
  /// Acts on row-major vec(rho): vec(E(rho)) = M_E vec(rho).
  la::Matrix superoperator() const;

  /// The paper's noise rate ||M_E - I||_2.
  double noise_rate() const;

  /// Choi matrix sum_k vec(E_k) vec(E_k)^dagger (PSD iff completely positive;
  /// automatic for Kraus form, used as a numeric sanity check).
  la::Matrix choi() const;

  /// Kraus completeness defect ||sum E^dag E - I||_2.
  double completeness_defect() const;

  /// Mixture-of-unitaries form if one exists (E_k = sqrt(p_k) U_k).
  std::optional<UnitaryMixture> unitary_mixture(double tol = 1e-9) const;

 private:
  std::string name_;
  std::size_t dim_;
  std::vector<la::Matrix> kraus_;
};

/// The unitary channel rho -> U rho U^dagger.
Channel unitary_channel(const la::Matrix& u, std::string name = "unitary");

/// Composition: (second . first)(rho) = second(first(rho)).
/// Kraus set is the pairwise product set.
Channel compose(const Channel& second, const Channel& first);

}  // namespace noisim::ch
