#include "channels/catalog.hpp"

#include <cmath>

namespace noisim::ch {

namespace {

constexpr cplx kI{0.0, 1.0};

la::Matrix pauli_x() { return la::Matrix{{0, 1}, {1, 0}}; }
la::Matrix pauli_y() { return la::Matrix{{0, -kI}, {kI, 0}}; }
la::Matrix pauli_z() { return la::Matrix{{1, 0}, {0, -1}}; }

void require_prob(double p, const char* what) {
  la::detail::require(p >= 0.0 && p <= 1.0, what);
}

}  // namespace

Channel depolarizing(double p) {
  require_prob(p, "depolarizing: p must be in [0,1]");
  la::Matrix e0 = la::Matrix::identity(2);
  e0 *= std::sqrt(1.0 - p);
  la::Matrix ex = pauli_x(), ey = pauli_y(), ez = pauli_z();
  const double w = std::sqrt(p / 3.0);
  ex *= w;
  ey *= w;
  ez *= w;
  return Channel("depolarizing(" + std::to_string(p) + ")", {e0, ex, ey, ez});
}

Channel bit_flip(double p) {
  require_prob(p, "bit_flip: p must be in [0,1]");
  la::Matrix e0 = la::Matrix::identity(2);
  e0 *= std::sqrt(1.0 - p);
  la::Matrix e1 = pauli_x();
  e1 *= std::sqrt(p);
  return Channel("bit_flip(" + std::to_string(p) + ")", {e0, e1});
}

Channel phase_flip(double p) {
  require_prob(p, "phase_flip: p must be in [0,1]");
  la::Matrix e0 = la::Matrix::identity(2);
  e0 *= std::sqrt(1.0 - p);
  la::Matrix e1 = pauli_z();
  e1 *= std::sqrt(p);
  return Channel("phase_flip(" + std::to_string(p) + ")", {e0, e1});
}

Channel bit_phase_flip(double p) {
  require_prob(p, "bit_phase_flip: p must be in [0,1]");
  la::Matrix e0 = la::Matrix::identity(2);
  e0 *= std::sqrt(1.0 - p);
  la::Matrix e1 = pauli_y();
  e1 *= std::sqrt(p);
  return Channel("bit_phase_flip(" + std::to_string(p) + ")", {e0, e1});
}

Channel pauli_channel(double px, double py, double pz) {
  require_prob(px, "pauli_channel: px must be in [0,1]");
  require_prob(py, "pauli_channel: py must be in [0,1]");
  require_prob(pz, "pauli_channel: pz must be in [0,1]");
  const double p0 = 1.0 - px - py - pz;
  la::detail::require(p0 >= -1e-12, "pauli_channel: probabilities exceed 1");
  la::Matrix e0 = la::Matrix::identity(2);
  e0 *= std::sqrt(std::max(0.0, p0));
  la::Matrix ex = pauli_x(), ey = pauli_y(), ez = pauli_z();
  ex *= std::sqrt(px);
  ey *= std::sqrt(py);
  ez *= std::sqrt(pz);
  return Channel("pauli", {e0, ex, ey, ez});
}

Channel amplitude_damping(double gamma) {
  require_prob(gamma, "amplitude_damping: gamma must be in [0,1]");
  const la::Matrix e0{{1, 0}, {0, std::sqrt(1.0 - gamma)}};
  const la::Matrix e1{{0, std::sqrt(gamma)}, {0, 0}};
  return Channel("amplitude_damping(" + std::to_string(gamma) + ")", {e0, e1});
}

Channel generalized_amplitude_damping(double gamma, double p1) {
  require_prob(gamma, "generalized_amplitude_damping: gamma must be in [0,1]");
  require_prob(p1, "generalized_amplitude_damping: p1 must be in [0,1]");
  const double sg = std::sqrt(1.0 - gamma);
  la::Matrix e0{{1, 0}, {0, sg}};
  la::Matrix e1{{0, std::sqrt(gamma)}, {0, 0}};
  la::Matrix e2{{sg, 0}, {0, 1}};
  la::Matrix e3{{0, 0}, {std::sqrt(gamma), 0}};
  const double w_cool = std::sqrt(1.0 - p1), w_heat = std::sqrt(p1);
  e0 *= w_cool;
  e1 *= w_cool;
  e2 *= w_heat;
  e3 *= w_heat;
  return Channel("generalized_amplitude_damping", {e0, e1, e2, e3});
}

Channel phase_damping(double lambda) {
  require_prob(lambda, "phase_damping: lambda must be in [0,1]");
  const la::Matrix e0{{1, 0}, {0, std::sqrt(1.0 - lambda)}};
  const la::Matrix e1{{0, 0}, {0, std::sqrt(lambda)}};
  return Channel("phase_damping(" + std::to_string(lambda) + ")", {e0, e1});
}

Channel thermal_relaxation(double t, double t1, double t2) {
  la::detail::require(t >= 0.0 && t1 > 0.0 && t2 > 0.0, "thermal_relaxation: bad times");
  la::detail::require(t2 <= 2.0 * t1 + 1e-12, "thermal_relaxation: requires T2 <= 2*T1");
  const double gamma = 1.0 - std::exp(-t / t1);
  // Amplitude damping already dephases by exp(-t/(2 T1)); pure dephasing
  // supplies the remainder so the total off-diagonal decay is exp(-t/T2).
  const double extra = 1.0 / t2 - 1.0 / (2.0 * t1);
  const double lambda = 1.0 - std::exp(-2.0 * t * std::max(0.0, extra));
  Channel combined = compose(phase_damping(lambda), amplitude_damping(gamma));
  return Channel("thermal_relaxation(t=" + std::to_string(t) + ")", combined.kraus());
}

Channel identity_channel() { return Channel("identity", {la::Matrix::identity(2)}); }

Channel two_qubit_depolarizing(double p) {
  require_prob(p, "two_qubit_depolarizing: p must be in [0,1]");
  const la::Matrix paulis[4] = {la::Matrix::identity(2), pauli_x(), pauli_y(), pauli_z()};
  std::vector<la::Matrix> kraus;
  kraus.reserve(16);
  for (int a = 0; a < 4; ++a)
    for (int b = 0; b < 4; ++b) {
      la::Matrix k = la::kron(paulis[a], paulis[b]);
      k *= std::sqrt(a == 0 && b == 0 ? 1.0 - p : p / 15.0);
      kraus.push_back(std::move(k));
    }
  return Channel("two_qubit_depolarizing(" + std::to_string(p) + ")", std::move(kraus));
}

}  // namespace noisim::ch
