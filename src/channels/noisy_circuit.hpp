#pragma once
// Noisy quantum circuits: E_N = E_d . ... . E_1 where each E_i is either a
// unitary gate or a 1-qubit noise channel (the paper's Problem 1 setup).

#include <variant>
#include <vector>

#include "channels/channel.hpp"
#include "circuit/circuit.hpp"

namespace noisim::ch {

/// A noise channel attached to one qubit (or two, for the 2-qubit noise
/// extension; qubit2 < 0 means a 1-qubit channel).
struct NoiseOp {
  int qubit;
  Channel channel;
  int qubit2 = -1;

  int num_qubits() const { return qubit2 < 0 ? 1 : 2; }
};

using Op = std::variant<qc::Gate, NoiseOp>;

class NoisyCircuit {
 public:
  NoisyCircuit() = default;
  explicit NoisyCircuit(int num_qubits);
  /// Wrap a noiseless circuit.
  explicit NoisyCircuit(const qc::Circuit& c);

  int num_qubits() const { return n_; }
  const std::vector<Op>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }

  NoisyCircuit& add_gate(qc::Gate g);
  /// Append a 1-qubit noise channel on `qubit`.
  NoisyCircuit& add_noise(int qubit, Channel channel);
  /// Append a 2-qubit (dimension-4) noise channel on (qubit_a, qubit_b);
  /// qubit_a indexes the high-order bit of the channel's Kraus operators.
  NoisyCircuit& add_noise_2q(int qubit_a, int qubit_b, Channel channel);

  std::size_t noise_count() const;
  /// Positions (op indices) of the noise channels, ascending.
  std::vector<std::size_t> noise_positions() const;
  /// Largest noise rate over all noise sites (the paper's p).
  double max_noise_rate() const;

  /// The circuit with all noise sites dropped (gates only).
  qc::Circuit gates_only() const;

 private:
  int n_ = 0;
  std::vector<Op> ops_;
};

}  // namespace noisim::ch
