#pragma once
// TDD-based simulation: contract a tensor network with TDD arithmetic.
//
// The network's edge ids double as TDD index variables (creation order =
// circuit time order, a natural diagram ordering for circuits). Nodes are
// absorbed sequentially; an edge is summed out as soon as both endpoints
// have been absorbed. Reusing the core/ network builders means one code
// path simulates both noiseless amplitudes and the doubled noisy diagram.

#include <cstdint>

#include "channels/noisy_circuit.hpp"
#include "tdd/tdd.hpp"
#include "tn/network.hpp"

namespace noisim::tdd {

struct TddSimOptions {
  /// Node budget; exceeding it throws MemoryOutError ("MO" in benchmarks).
  std::size_t max_nodes = std::size_t{1} << 22;
  /// Wall-clock budget in seconds; 0 disables ("TO" in benchmarks).
  double timeout_seconds = 0.0;
};

struct TddStats {
  std::size_t peak_nodes = 0;     // largest intermediate diagram (reachable nodes)
  std::size_t total_nodes = 0;    // arena size at the end
  double elapsed_seconds = 0.0;
};

/// Contract a closed network to its scalar value using TDDs.
cplx tdd_contract_network(const tn::Network& net, const TddSimOptions& opts = {},
                          TddStats* stats = nullptr);

/// Exact noisy fidelity <v|E(|psi><psi|)|v> through the doubled diagram,
/// evaluated with TDD arithmetic (the paper's "TDD-based" baseline).
double exact_fidelity_tdd(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                          std::uint64_t v_bits, const TddSimOptions& opts = {},
                          TddStats* stats = nullptr);

/// Dense-equivalent cost proxy of tdd_contract_network's sequential absorb
/// order, for plan-time backend selection. Walks nodes in insertion order
/// tracking the accumulated diagram's open-edge support: absorbing a node
/// with `a` open accumulator edges, `b` node edges, and `s` edges summed out
/// is charged 2^(a + b - s) modeled flops; peak_elems is the largest
/// intermediate support 2^rank. This upper-bounds the diagram sizes (TDD
/// sharing only shrinks them), which is the safe direction for a budget
/// check. Cheap: no tensors are touched.
struct TddCostProxy {
  double flops = 0.0;
  double peak_elems = 0.0;
};
TddCostProxy sequential_cost_proxy(const tn::Network& net);

}  // namespace noisim::tdd
