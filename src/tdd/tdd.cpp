#include "tdd/tdd.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_set>

namespace noisim::tdd {

namespace {

constexpr Var kTerminalVar = std::numeric_limits<Var>::max();

Var top_var(const Node* n) { return n == nullptr ? kTerminalVar : n->var; }

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

std::size_t hash_mix(std::size_t h, std::uint64_t v) {
  // splitmix-style combiner.
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

bool Edge::operator==(const Edge& o) const { return node == o.node && weight == o.weight; }

bool Manager::NodeKey::operator==(const NodeKey& o) const {
  return var == o.var && low_node == o.low_node && high_node == o.high_node &&
         low_w[0] == o.low_w[0] && low_w[1] == o.low_w[1] && high_w[0] == o.high_w[0] &&
         high_w[1] == o.high_w[1];
}

std::size_t Manager::NodeKeyHash::operator()(const NodeKey& k) const {
  std::size_t h = std::hash<Var>{}(k.var);
  h = hash_mix(h, reinterpret_cast<std::uintptr_t>(k.low_node));
  h = hash_mix(h, reinterpret_cast<std::uintptr_t>(k.high_node));
  h = hash_mix(h, k.low_w[0]);
  h = hash_mix(h, k.low_w[1]);
  h = hash_mix(h, k.high_w[0]);
  h = hash_mix(h, k.high_w[1]);
  return h;
}

bool Manager::AddKey::operator==(const AddKey& o) const {
  return a == o.a && b == o.b && ratio[0] == o.ratio[0] && ratio[1] == o.ratio[1];
}

std::size_t Manager::AddKeyHash::operator()(const AddKey& k) const {
  std::size_t h = hash_mix(0, reinterpret_cast<std::uintptr_t>(k.a));
  h = hash_mix(h, reinterpret_cast<std::uintptr_t>(k.b));
  h = hash_mix(h, k.ratio[0]);
  h = hash_mix(h, k.ratio[1]);
  return h;
}

std::size_t Manager::ContKeyHash::operator()(const ContKey& k) const {
  std::size_t h = hash_mix(0, reinterpret_cast<std::uintptr_t>(k.a));
  h = hash_mix(h, reinterpret_cast<std::uintptr_t>(k.b));
  h = hash_mix(h, k.sum_index);
  return h;
}

Manager::Manager(std::size_t max_nodes) : max_nodes_(max_nodes) {}

Edge Manager::normalize(Var var, Edge low, Edge high) {
  // Canonical zero edges.
  if (low.weight == cplx{0.0, 0.0}) low = Edge{};
  if (high.weight == cplx{0.0, 0.0}) high = Edge{};

  // Redundant-node rule: the tensor does not depend on `var`.
  if (low == high) return low;

  // Weight normalization: divide by the larger-magnitude weight (tie: low).
  const double al = std::abs(low.weight), ah = std::abs(high.weight);
  const cplx d = (al >= ah && al > 0.0) ? low.weight : high.weight;
  low.weight /= d;
  high.weight /= d;

  NodeKey key{var,
              low.node,
              high.node,
              {bits(low.weight.real()), bits(low.weight.imag())},
              {bits(high.weight.real()), bits(high.weight.imag())}};
  const auto it = unique_.find(key);
  const Node* node;
  if (it != unique_.end()) {
    node = it->second;
  } else {
    if (arena_.size() >= max_nodes_)
      throw MemoryOutError("TDD node budget exceeded (" + std::to_string(max_nodes_) + " nodes)");
    arena_.push_back(Node{var, low, high});
    node = &arena_.back();
    unique_.emplace(key, node);
  }
  return Edge{d, node};
}

Edge Manager::make_node(Var var, const Edge& low, const Edge& high) {
  la::detail::require(top_var(low.node) > var && top_var(high.node) > var,
                      "TDD make_node: children must have larger variables");
  return normalize(var, low, high);
}

Edge Manager::add(const Edge& a, const Edge& b) {
  if (a.weight == cplx{0.0, 0.0}) return b;
  if (b.weight == cplx{0.0, 0.0}) return a;
  if (a.node == b.node) {
    const cplx w = a.weight + b.weight;
    if (w == cplx{0.0, 0.0}) return Edge{};
    return Edge{w, a.node};
  }

  const cplx ratio = b.weight / a.weight;
  AddKey key{a.node, b.node, {bits(ratio.real()), bits(ratio.imag())}};
  if (const auto it = add_cache_.find(key); it != add_cache_.end())
    return Edge{it->second.weight * a.weight, it->second.node};

  const Var x = std::min(top_var(a.node), top_var(b.node));
  auto cofactor = [](const Edge& e, Var v, bool hi) {
    if (e.node != nullptr && e.node->var == v) {
      const Edge& child = hi ? e.node->high : e.node->low;
      return Edge{e.weight * child.weight, child.node};
    }
    return e;
  };
  const Edge r = make_node(x, add(cofactor(a, x, false), cofactor(b, x, false)),
                           add(cofactor(a, x, true), cofactor(b, x, true)));
  add_cache_.emplace(key, Edge{r.weight / a.weight, r.node});
  return r;
}

Edge Manager::contract_rec(const Node* a, const Node* b, const std::vector<Var>& sum_vars,
                           std::size_t si) {
  // Summed variables smaller than both tops appear in neither operand:
  // each contributes a factor of 2.
  cplx mult{1.0, 0.0};
  while (si < sum_vars.size() && sum_vars[si] < std::min(top_var(a), top_var(b))) {
    mult *= 2.0;
    ++si;
  }
  if (a == nullptr && b == nullptr) return Edge{mult, nullptr};

  ContKey key{a, b, si};
  if (const auto it = cont_cache_.find(key); it != cont_cache_.end())
    return Edge{it->second.weight * mult, it->second.node};

  const Var x = std::min(top_var(a), top_var(b));
  auto cofactor = [](const Node* n, Var v, bool hi) {
    if (n != nullptr && n->var == v) return hi ? n->high : n->low;
    return Edge{cplx{1.0, 0.0}, n};
  };
  auto descend = [&](const Edge& fa, const Edge& fb, std::size_t s) {
    if (fa.weight == cplx{0.0, 0.0} || fb.weight == cplx{0.0, 0.0}) return Edge{};
    const Edge r = contract_rec(fa.node, fb.node, sum_vars, s);
    return Edge{r.weight * fa.weight * fb.weight, r.node};
  };

  Edge result;
  if (si < sum_vars.size() && sum_vars[si] == x) {
    result = add(descend(cofactor(a, x, false), cofactor(b, x, false), si + 1),
                 descend(cofactor(a, x, true), cofactor(b, x, true), si + 1));
  } else {
    result = make_node(x, descend(cofactor(a, x, false), cofactor(b, x, false), si),
                       descend(cofactor(a, x, true), cofactor(b, x, true), si));
  }
  cont_cache_.emplace(key, result);
  return Edge{result.weight * mult, result.node};
}

Edge Manager::contract(const Edge& a, const Edge& b, const std::vector<Var>& sum_vars) {
  la::detail::require(std::is_sorted(sum_vars.begin(), sum_vars.end()),
                      "TDD contract: sum_vars must be ascending");
  if (a.weight == cplx{0.0, 0.0} || b.weight == cplx{0.0, 0.0}) return Edge{};
  // The cache is only valid for one sum set.
  cont_cache_.clear();
  const Edge r = contract_rec(a.node, b.node, sum_vars, 0);
  return Edge{r.weight * a.weight * b.weight, r.node};
}

Edge Manager::from_tensor(const tsr::Tensor& t, std::vector<Var> vars) {
  la::detail::require(vars.size() == t.rank(), "TDD from_tensor: var/axis count mismatch");
  for (std::size_t ax = 0; ax < t.rank(); ++ax)
    la::detail::require(t.dim(ax) == 2, "TDD from_tensor: all dimensions must be 2");

  // Permute axes into ascending variable order.
  std::vector<std::size_t> perm(vars.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::sort(perm.begin(), perm.end(), [&](std::size_t x, std::size_t y) { return vars[x] < vars[y]; });
  for (std::size_t i = 0; i + 1 < perm.size(); ++i)
    la::detail::require(vars[perm[i]] != vars[perm[i + 1]], "TDD from_tensor: duplicate variable");
  const tsr::Tensor sorted_tensor = t.permute(perm);
  std::vector<Var> sorted_vars(vars.size());
  for (std::size_t i = 0; i < vars.size(); ++i) sorted_vars[i] = vars[perm[i]];

  // Recursive top-down build.
  auto build = [&](auto&& self, std::size_t offset, std::size_t depth) -> Edge {
    if (depth == sorted_vars.size()) return terminal(sorted_tensor[offset]);
    const std::size_t half = std::size_t{1} << (sorted_vars.size() - depth - 1);
    return make_node(sorted_vars[depth], self(self, offset, depth + 1),
                     self(self, offset + half, depth + 1));
  };
  return build(build, 0, 0);
}

tsr::Tensor Manager::to_tensor(const Edge& e, const std::vector<Var>& vars) const {
  la::detail::require(std::is_sorted(vars.begin(), vars.end()), "TDD to_tensor: vars ascending");
  tsr::Tensor out(std::vector<std::size_t>(vars.size(), 2));

  auto fill = [&](auto&& self, const Node* node, cplx w, std::size_t depth,
                  std::size_t offset) -> void {
    if (depth == vars.size()) {
      la::detail::require(node == nullptr, "TDD to_tensor: vars do not cover the diagram");
      out[offset] = w;
      return;
    }
    const std::size_t half = std::size_t{1} << (vars.size() - depth - 1);
    if (node == nullptr || node->var > vars[depth]) {
      self(self, node, w, depth + 1, offset);
      self(self, node, w, depth + 1, offset + half);
      return;
    }
    la::detail::require(node->var == vars[depth], "TDD to_tensor: variable missing from vars");
    self(self, node->low.node, w * node->low.weight, depth + 1, offset);
    self(self, node->high.node, w * node->high.weight, depth + 1, offset + half);
  };
  fill(fill, e.node, e.weight, 0, 0);
  return out;
}

std::size_t Manager::reachable_nodes(const Edge& e) const {
  std::unordered_set<const Node*> seen;
  auto walk = [&](auto&& self, const Node* n) -> void {
    if (n == nullptr || seen.count(n)) return;
    seen.insert(n);
    self(self, n->low.node);
    self(self, n->high.node);
  };
  walk(walk, e.node);
  return seen.size();
}

}  // namespace noisim::tdd
