#pragma once
// Tensor Decision Diagrams (TDDs) -- the paper's "TDD-based" accurate
// baseline, after Hong et al., "A Tensor Network Based Decision Diagram for
// Representation of Quantum Circuits" (ACM TODAES 2022).
//
// A TDD represents a tensor with boolean (dimension-2) indices as a directed
// acyclic graph: each node splits on one index variable (indices are totally
// ordered by integer id), edges carry complex weights, and isomorphic
// subgraphs are shared through a unique table. Canonicity:
//  * a node whose two outgoing edges are identical is skipped entirely
//    (the tensor does not depend on that variable);
//  * outgoing weights are normalized by the larger-magnitude weight (ties
//    prefer the low edge), which is pulled onto the incoming edge;
//  * the all-zero tensor is the terminal with weight 0.
//
// The two algebraic operations are addition and contraction (sum over a set
// of shared variables), each memoized. Contraction accounts for summed
// variables absent from both operands with a factor of 2 per variable.

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.hpp"

namespace noisim::tdd {

/// Index variables are non-negative integers; the diagram order is the
/// natural integer order.
using Var = std::int64_t;

struct Node;

/// A weighted edge into a sub-diagram; node == nullptr is the terminal.
struct Edge {
  cplx weight{0.0, 0.0};
  const Node* node = nullptr;

  bool is_terminal() const { return node == nullptr; }
  bool operator==(const Edge& o) const;
};

struct Node {
  Var var;
  Edge low;
  Edge high;
};

/// Owner of all nodes plus the unique table and operation caches. All edges
/// returned by a manager remain valid for the manager's lifetime.
class Manager {
 public:
  /// `max_nodes` bounds memory; exceeding it throws MemoryOutError (the
  /// benchmark harness reports it as "MO").
  explicit Manager(std::size_t max_nodes = 1u << 22);

  /// Terminal edge with the given weight (the scalar w).
  Edge terminal(cplx w) const { return Edge{w, nullptr}; }

  /// Canonical node construction (applies both reduction rules).
  Edge make_node(Var var, const Edge& low, const Edge& high);

  /// Pointwise sum of two diagrams over the same variable set.
  Edge add(const Edge& a, const Edge& b);

  /// Contraction: multiply a and b and sum over `sum_vars` (ascending).
  /// Variables in sum_vars missing from both operands contribute factor 2.
  Edge contract(const Edge& a, const Edge& b, const std::vector<Var>& sum_vars);

  /// Build a TDD from a dense tensor whose axes carry the given variables
  /// (all dimensions must be 2). Axes may be listed in any order.
  Edge from_tensor(const tsr::Tensor& t, std::vector<Var> vars);

  /// Expand a TDD back to a dense tensor over `vars` (ascending axis order
  /// = ascending variable order); vars must cover the diagram's support.
  tsr::Tensor to_tensor(const Edge& e, const std::vector<Var>& vars) const;

  /// Number of live unique nodes (diagnostic / size assertions).
  std::size_t node_count() const { return arena_.size(); }

  /// Nodes reachable from an edge, including shared ones once.
  std::size_t reachable_nodes(const Edge& e) const;

 private:
  Edge normalize(Var var, Edge low, Edge high);

  struct NodeKey {
    Var var;
    const Node* low_node;
    const Node* high_node;
    std::uint64_t low_w[2];
    std::uint64_t high_w[2];
    bool operator==(const NodeKey& o) const;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const;
  };

  struct AddKey {
    const Node* a;
    const Node* b;
    std::uint64_t ratio[2];
    bool operator==(const AddKey& o) const;
  };
  struct AddKeyHash {
    std::size_t operator()(const AddKey& k) const;
  };

  struct ContKey {
    const Node* a;
    const Node* b;
    std::size_t sum_index;
    bool operator==(const ContKey& o) const = default;
  };
  struct ContKeyHash {
    std::size_t operator()(const ContKey& k) const;
  };

  Edge contract_rec(const Node* a, const Node* b, const std::vector<Var>& sum_vars,
                    std::size_t si);

  std::size_t max_nodes_;
  std::deque<Node> arena_;
  std::unordered_map<NodeKey, const Node*, NodeKeyHash> unique_;
  std::unordered_map<AddKey, Edge, AddKeyHash> add_cache_;
  std::unordered_map<ContKey, Edge, ContKeyHash> cont_cache_;
};

}  // namespace noisim::tdd
