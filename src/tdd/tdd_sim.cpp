#include "tdd/tdd_sim.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_set>

#include "core/doubled_network.hpp"

namespace noisim::tdd {

cplx tdd_contract_network(const tn::Network& net, const TddSimOptions& opts, TddStats* stats) {
  la::detail::require(net.open_edges().empty(), "tdd_contract_network: network must be closed");
  la::detail::require(net.num_nodes() > 0, "tdd_contract_network: empty network");

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const bool has_deadline = opts.timeout_seconds > 0.0;
  const auto deadline = start + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(opts.timeout_seconds));

  Manager mgr(opts.max_nodes);

  // Support (open edge set) of the accumulated diagram.
  std::unordered_set<tn::EdgeId> open;
  Edge acc = mgr.terminal(cplx{1.0, 0.0});

  for (std::size_t i = 0; i < net.num_nodes(); ++i) {
    if (has_deadline && Clock::now() > deadline)
      throw TimeoutError("TDD contraction exceeded deadline");

    const tn::Node& node = net.node(i);
    std::vector<Var> vars(node.edges.begin(), node.edges.end());
    const Edge piece = mgr.from_tensor(node.tensor, vars);

    // Edges whose second endpoint just arrived get summed out now.
    std::vector<Var> sum_vars;
    for (tn::EdgeId e : node.edges) {
      if (open.count(e)) {
        sum_vars.push_back(static_cast<Var>(e));
        open.erase(e);
      } else {
        open.insert(e);
      }
    }
    std::sort(sum_vars.begin(), sum_vars.end());
    acc = mgr.contract(acc, piece, sum_vars);

    if (stats) stats->peak_nodes = std::max(stats->peak_nodes, mgr.reachable_nodes(acc));
  }

  la::detail::require(open.empty(), "tdd_contract_network: dangling edges after contraction");
  la::detail::require(acc.is_terminal(), "tdd_contract_network: non-scalar result");
  if (stats) {
    stats->total_nodes = mgr.node_count();
    stats->elapsed_seconds = std::chrono::duration<double>(Clock::now() - start).count();
  }
  return acc.weight;
}

double exact_fidelity_tdd(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                          std::uint64_t v_bits, const TddSimOptions& opts, TddStats* stats) {
  return tdd_contract_network(core::doubled_network(nc, psi_bits, v_bits), opts, stats).real();
}

TddCostProxy sequential_cost_proxy(const tn::Network& net) {
  // Mirror of tdd_contract_network's loop without building any diagrams:
  // only the accumulated open-edge support matters for the dense proxy.
  std::unordered_set<tn::EdgeId> open;
  TddCostProxy out;
  for (std::size_t i = 0; i < net.num_nodes(); ++i) {
    const tn::Node& node = net.node(i);
    std::size_t summed = 0;
    for (tn::EdgeId e : node.edges) {
      if (open.count(e)) {
        ++summed;
        open.erase(e);
      } else {
        open.insert(e);
      }
    }
    // Union of accumulator + node indices has open-after + summed edges
    // (= a + b - s), clamped to 60 so the pow stays finite; networks that
    // large fail any realistic budget regardless.
    const std::size_t rank_sum = std::min<std::size_t>(open.size() + summed, 60);
    out.flops += std::pow(2.0, static_cast<double>(rank_sum));
    out.peak_elems =
        std::max(out.peak_elems, std::pow(2.0, static_cast<double>(std::min<std::size_t>(
                                                   open.size(), 60))));
  }
  return out;
}

}  // namespace noisim::tdd
