#include "bench_support/generators.hpp"

#include <cmath>
#include <numbers>

#include "channels/catalog.hpp"

namespace noisim::bench {

namespace {

constexpr double kPi = std::numbers::pi;

int grid_qubit(int r, int c, int cols) { return r * cols + c; }

}  // namespace

qc::Circuit qaoa_grid(int rows, int cols, int rounds, std::uint64_t seed) {
  la::detail::require(rows > 0 && cols > 0 && rounds > 0, "qaoa_grid: bad dimensions");
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> angle(0.1, 2.0 * kPi - 0.1);

  qc::Circuit c(rows * cols);
  for (int q = 0; q < rows * cols; ++q) {
    c.add(qc::ry(q, -kPi / 2));
    c.add(qc::rz(q, kPi / 2));
  }

  for (int round = 0; round < rounds; ++round) {
    // Four staggered edge orientations: horizontal even/odd column, then
    // vertical even/odd row -- every grid edge exactly once per round.
    for (int orientation = 0; orientation < 4; ++orientation) {
      const bool horizontal = orientation < 2;
      const int offset = orientation % 2;
      for (int r = 0; r < rows; ++r) {
        for (int cc = 0; cc < cols; ++cc) {
          // exp(-i gamma Z(x)Z / 2) via the standard CX - RZ - CX sandwich
          // (note: a CZ sandwich would commute through the diagonal RZ and
          // cancel -- the interaction must use CX).
          if (horizontal) {
            if (cc % 2 != offset || cc + 1 >= cols) continue;
            const int a = grid_qubit(r, cc, cols), b = grid_qubit(r, cc + 1, cols);
            c.add(qc::cx(a, b));
            c.add(qc::rz(b, angle(rng)));
            c.add(qc::cx(a, b));
          } else {
            if (r % 2 != offset || r + 1 >= rows) continue;
            const int a = grid_qubit(r, cc, cols), b = grid_qubit(r + 1, cc, cols);
            c.add(qc::cx(a, b));
            c.add(qc::rz(b, angle(rng)));
            c.add(qc::cx(a, b));
          }
        }
      }
    }
    const double beta = angle(rng);
    for (int q = 0; q < rows * cols; ++q) c.add(qc::rx(q, beta));
  }
  return c;
}

qc::Circuit qaoa(int n, int rounds, std::uint64_t seed) {
  const int side = static_cast<int>(std::lround(std::sqrt(static_cast<double>(n))));
  la::detail::require(side * side == n, "qaoa: n must be a perfect square");
  return qaoa_grid(side, side, rounds, seed);
}

qc::Circuit hf_vqe(int n, std::uint64_t seed) {
  la::detail::require(n >= 2, "hf_vqe: need at least 2 qubits");
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> angle(-kPi / 2, kPi / 2);

  qc::Circuit c(n);
  // Occupation preparation: fill the first n/2 orbitals.
  for (int q = 0; q < n / 2; ++q) c.add(qc::x(q));

  // Triangular Givens-rotation network of a basis rotation: brickwork of
  // nearest-neighbour rotations, n layers alternating even/odd pairings.
  for (int layer = 0; layer < n; ++layer) {
    for (int a = layer % 2; a + 1 < n; a += 2) {
      c.add(qc::givens(a, a + 1, angle(rng)));
      c.add(qc::rz(a + 1, angle(rng)));  // phased-Givens phase freedom
    }
  }
  return c;
}

qc::Circuit supremacy_inst(int rows, int cols, int depth, std::uint64_t seed) {
  la::detail::require(rows > 0 && cols > 0 && depth >= 1, "supremacy_inst: bad dimensions");
  std::mt19937_64 rng(seed);
  const int n = rows * cols;

  qc::Circuit c(n);
  for (int q = 0; q < n; ++q) c.add(qc::h(q));

  // Per-qubit single-qubit-gate history: 0 = none yet, 1 = T, 2 = sqrtX,
  // 3 = sqrtY.
  std::vector<int> last_1q(static_cast<std::size_t>(n), 0);
  std::vector<bool> in_prev_cz(static_cast<std::size_t>(n), false);

  std::uniform_int_distribution<int> pick(2, 3);
  for (int layer = 1; layer < depth; ++layer) {
    // Staggered CZ pattern: orientation and offsets cycle with period 8.
    const int m = (layer - 1) % 8;
    const bool horizontal = (m % 4) < 2;
    const int offset = m % 2;
    const int stagger = (m / 4) % 2;

    std::vector<bool> in_cz(static_cast<std::size_t>(n), false);
    for (int r = 0; r < rows; ++r) {
      for (int cc = 0; cc < cols; ++cc) {
        if (horizontal) {
          if ((cc + (r % 2 == stagger ? 1 : 0)) % 2 != offset || cc + 1 >= cols) continue;
          const int a = grid_qubit(r, cc, cols), b = grid_qubit(r, cc + 1, cols);
          c.add(qc::cz(a, b));
          in_cz[static_cast<std::size_t>(a)] = in_cz[static_cast<std::size_t>(b)] = true;
        } else {
          if ((r + (cc % 2 == stagger ? 1 : 0)) % 2 != offset || r + 1 >= rows) continue;
          const int a = grid_qubit(r, cc, cols), b = grid_qubit(r + 1, cc, cols);
          c.add(qc::cz(a, b));
          in_cz[static_cast<std::size_t>(a)] = in_cz[static_cast<std::size_t>(b)] = true;
        }
      }
    }

    // Single-qubit gates on qubits that just left a CZ and are idle now.
    for (int q = 0; q < n; ++q) {
      const auto qi = static_cast<std::size_t>(q);
      if (in_cz[qi] || !in_prev_cz[qi]) continue;
      int gate;
      if (last_1q[qi] == 0) {
        gate = 1;  // first single-qubit gate is always T
      } else {
        gate = pick(rng);
        if (gate == last_1q[qi]) gate = (gate == 2) ? 3 : 2;  // no repeats
      }
      switch (gate) {
        case 1: c.add(qc::t(q)); break;
        case 2: c.add(qc::sqrt_x(q)); break;
        default: c.add(qc::sqrt_y(q)); break;
      }
      last_1q[qi] = gate;
    }
    in_prev_cz = in_cz;
  }
  return c;
}

NoiseModel realistic_noise(double mean_rate) {
  la::detail::require(mean_rate > 0.0 && mean_rate < 0.5, "realistic_noise: bad rate");
  return [mean_rate](std::mt19937_64& rng) {
    // Thermal relaxation with T2 = 1.2 * T1 and gate duration jittered
    // +-25% around the value that yields roughly `mean_rate`.
    std::uniform_real_distribution<double> jitter(0.75, 1.25);
    const double t1 = 1.0;
    const double t = mean_rate * jitter(rng);
    return ch::thermal_relaxation(t, t1, 1.2 * t1);
  };
}

NoiseModel depolarizing_noise(double p) {
  return [p](std::mt19937_64&) { return ch::depolarizing(p); };
}

ch::NoisyCircuit insert_noises(const qc::Circuit& c, std::size_t count, const NoiseModel& model,
                               std::uint64_t seed) {
  la::detail::require(count <= c.size(), "insert_noises: more noises than gates");
  std::mt19937_64 rng(seed);

  // Sample `count` distinct gate positions (partial Fisher-Yates).
  std::vector<std::size_t> positions(c.size());
  for (std::size_t i = 0; i < positions.size(); ++i) positions[i] = i;
  for (std::size_t i = 0; i < count; ++i) {
    std::uniform_int_distribution<std::size_t> pick(i, positions.size() - 1);
    std::swap(positions[i], positions[pick(rng)]);
  }
  std::vector<bool> noisy(c.size(), false);
  for (std::size_t i = 0; i < count; ++i) noisy[positions[i]] = true;

  ch::NoisyCircuit nc(c.num_qubits());
  std::uniform_int_distribution<int> coin(0, 1);
  for (std::size_t i = 0; i < c.size(); ++i) {
    const qc::Gate& g = c.gates()[i];
    nc.add_gate(g);
    if (noisy[i]) {
      const int qubit = (g.num_qubits() == 2 && coin(rng)) ? g.qubits[1] : g.qubits[0];
      nc.add_noise(qubit, model(rng));
    }
  }
  return nc;
}

}  // namespace noisim::bench
