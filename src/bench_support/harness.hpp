#pragma once
// Experiment harness: guarded runs (wall-clock timing, MO/TO mapping) and
// aligned table printing in the style of the paper's Tables II-IV.

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "tn/contractor.hpp"

namespace noisim::bench {

struct RunOutcome {
  enum class Status { Ok, MemoryOut, Timeout, Cancelled, Skipped };
  Status status = Status::Skipped;
  double seconds = 0.0;
  double value = 0.0;       // the computed fidelity / estimate when Ok
  std::string note;         // diagnostic (exception text)
  /// Contraction statistics the workload reported (run_guarded_stats);
  /// zeros otherwise. On MO/TO this holds whatever the workload wrote into
  /// the reference before throwing -- workloads that stream into it (e.g.
  /// exact_fidelity_tn's out-pointer) keep partial planning work visible,
  /// while ones assigning only on success report zeros.
  tn::ContractStats contract_stats;

  bool ok() const { return status == Status::Ok; }
};

/// Run `fn`, timing it and mapping MemoryOutError -> MO, TimeoutError -> TO,
/// CancelledError -> CX.
RunOutcome run_guarded(const std::function<double()>& fn);

/// run_guarded variant whose workload reports contraction stats through the
/// passed reference (aggregated into RunOutcome::contract_stats).
RunOutcome run_guarded_stats(const std::function<double(tn::ContractStats&)>& fn);

/// JSON object for a stats record, e.g. {"num_pairwise": 12, ...,
/// "plan_reuse_hits": 7, "flops": 123, "bytes_moved": 456,
/// "plan_cache_hits": 4, "plan_cache_misses": 0} -- spliced into the
/// BENCH_*.json outputs so plan-reuse/cache wins and arithmetic intensity
/// show up in the perf trajectory.
std::string stats_json(const tn::ContractStats& stats);

/// CPU model string from /proc/cpuinfo ("unknown" when unavailable).
std::string cpu_model();

/// JSON object describing the machine a bench ran on:
/// {"cpu_model": "...", "hardware_threads": N}. Every BENCH_*.json embeds
/// it, so results recorded on a single-core container (where parallel
/// speedups read as ~1x) are self-explanatory.
std::string machine_json();

/// "12.34" for Ok (seconds), "MO" / "TO" / "CX" / "-" otherwise.
std::string format_time(const RunOutcome& r);
/// Scientific-notation value ("1.55e-04") for Ok, "MO"/"TO"/"CX"/"-"
/// otherwise.
std::string format_value(const RunOutcome& r);
/// Format a double in the paper's precision style.
std::string sci(double v);
std::string fixed(double v, int digits = 2);

/// Minimal aligned-column table writer.
class Table {
 public:
  explicit Table(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  void print(std::ostream& os) const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Write rows as CSV next to the pretty table (for plotting).
void write_csv(std::ostream& os, const std::vector<std::vector<std::string>>& rows);

}  // namespace noisim::bench
