#pragma once
// Experiment harness: guarded runs (wall-clock timing, MO/TO mapping) and
// aligned table printing in the style of the paper's Tables II-IV.

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace noisim::bench {

struct RunOutcome {
  enum class Status { Ok, MemoryOut, Timeout, Skipped };
  Status status = Status::Skipped;
  double seconds = 0.0;
  double value = 0.0;       // the computed fidelity / estimate when Ok
  std::string note;         // diagnostic (exception text)

  bool ok() const { return status == Status::Ok; }
};

/// Run `fn`, timing it and mapping MemoryOutError -> MO, TimeoutError -> TO.
RunOutcome run_guarded(const std::function<double()>& fn);

/// "12.34" for Ok (seconds), "MO" / "TO" / "-" otherwise.
std::string format_time(const RunOutcome& r);
/// Scientific-notation value ("1.55e-04") for Ok, "MO"/"TO"/"-" otherwise.
std::string format_value(const RunOutcome& r);
/// Format a double in the paper's precision style.
std::string sci(double v);
std::string fixed(double v, int digits = 2);

/// Minimal aligned-column table writer.
class Table {
 public:
  explicit Table(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  void print(std::ostream& os) const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Write rows as CSV next to the pretty table (for plotting).
void write_csv(std::ostream& os, const std::vector<std::vector<std::string>>& rows);

}  // namespace noisim::bench
