#include "bench_support/harness.hpp"

#include <chrono>
#include <cstdio>
#include <ostream>

#include "linalg/complex.hpp"

namespace noisim::bench {

RunOutcome run_guarded_stats(const std::function<double(tn::ContractStats&)>& fn) {
  using Clock = std::chrono::steady_clock;
  RunOutcome out;
  const auto start = Clock::now();
  try {
    out.value = fn(out.contract_stats);
    out.status = RunOutcome::Status::Ok;
  } catch (const MemoryOutError& e) {
    out.status = RunOutcome::Status::MemoryOut;
    out.note = e.what();
  } catch (const TimeoutError& e) {
    out.status = RunOutcome::Status::Timeout;
    out.note = e.what();
  }
  out.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return out;
}

RunOutcome run_guarded(const std::function<double()>& fn) {
  return run_guarded_stats([&](tn::ContractStats&) { return fn(); });
}

std::string stats_json(const tn::ContractStats& stats) {
  std::string out = "{";
  out += "\"num_pairwise\": " + std::to_string(stats.num_pairwise);
  out += ", \"peak_elems\": " + std::to_string(stats.peak_elems);
  out += ", \"plans_compiled\": " + std::to_string(stats.plans_compiled);
  out += ", \"plan_executions\": " + std::to_string(stats.plan_executions);
  out += ", \"plan_reuse_hits\": " + std::to_string(stats.plan_reuse_hits);
  out += "}";
  return out;
}

namespace {
std::string status_label(const RunOutcome& r) {
  switch (r.status) {
    case RunOutcome::Status::MemoryOut: return "MO";
    case RunOutcome::Status::Timeout: return "TO";
    case RunOutcome::Status::Skipped: return "-";
    case RunOutcome::Status::Ok: return "";
  }
  return "?";
}
}  // namespace

std::string sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

std::string fixed(double v, int digits) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string format_time(const RunOutcome& r) { return r.ok() ? fixed(r.seconds) : status_label(r); }

std::string format_value(const RunOutcome& r) { return r.ok() ? sci(r.value) : status_label(r); }

Table::Table(std::vector<std::string> header) { rows_.push_back(std::move(header)); }

void Table::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width;
  for (const auto& row : rows_) {
    if (width.size() < row.size()) width.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) width[i] = std::max(width[i], row[i].size());
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t i = 0; i < rows_[r].size(); ++i) {
      std::string cell = rows_[r][i];
      cell.resize(width[i], ' ');
      os << cell << (i + 1 < rows_[r].size() ? "  " : "");
    }
    os << "\n";
    if (r == 0) {
      std::size_t total = 0;
      for (std::size_t w : width) total += w + 2;
      os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    }
  }
}

void write_csv(std::ostream& os, const std::vector<std::vector<std::string>>& rows) {
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) os << row[i] << (i + 1 < row.size() ? "," : "");
    os << "\n";
  }
}

}  // namespace noisim::bench
