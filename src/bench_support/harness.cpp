#include "bench_support/harness.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <thread>

#include "linalg/complex.hpp"
#include "tensor/kernels.hpp"

namespace noisim::bench {

RunOutcome run_guarded_stats(const std::function<double(tn::ContractStats&)>& fn) {
  using Clock = std::chrono::steady_clock;
  RunOutcome out;
  const auto start = Clock::now();
  try {
    out.value = fn(out.contract_stats);
    out.status = RunOutcome::Status::Ok;
  } catch (const MemoryOutError& e) {
    out.status = RunOutcome::Status::MemoryOut;
    out.note = e.what();
  } catch (const TimeoutError& e) {
    out.status = RunOutcome::Status::Timeout;
    out.note = e.what();
  } catch (const CancelledError& e) {
    out.status = RunOutcome::Status::Cancelled;
    out.note = e.what();
  }
  out.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return out;
}

RunOutcome run_guarded(const std::function<double()>& fn) {
  return run_guarded_stats([&](tn::ContractStats&) { return fn(); });
}

std::string stats_json(const tn::ContractStats& stats) {
  std::string out = "{";
  out += "\"num_pairwise\": " + std::to_string(stats.num_pairwise);
  out += ", \"peak_elems\": " + std::to_string(stats.peak_elems);
  out += ", \"plans_compiled\": " + std::to_string(stats.plans_compiled);
  out += ", \"plan_executions\": " + std::to_string(stats.plan_executions);
  out += ", \"plan_reuse_hits\": " + std::to_string(stats.plan_reuse_hits);
  out += ", \"flops\": " + std::to_string(stats.flops);
  out += ", \"bytes_moved\": " + std::to_string(stats.bytes_moved);
  out += ", \"plan_cache_hits\": " + std::to_string(stats.plan_cache_hits);
  out += ", \"plan_cache_misses\": " + std::to_string(stats.plan_cache_misses);
  out += ", \"kernels_scalar\": " + std::to_string(stats.kernels_scalar);
  out += ", \"kernels_avx2\": " + std::to_string(stats.kernels_avx2);
  out += ", \"kernels_avx512\": " + std::to_string(stats.kernels_avx512);
  // 8 real flops per complex multiply-add (4 mul + 4 add/sub).
  const double gflops = stats.elapsed_seconds > 0.0
                            ? 8.0 * static_cast<double>(stats.flops) /
                                  stats.elapsed_seconds / 1e9
                            : 0.0;
  out += ", \"effective_gflops\": " + sci(gflops);
  // Portfolio accounting: per-strategy win counts and summed best-candidate
  // flop estimates, keyed by strategy name (zero-only strategies omitted).
  out += ", \"strategy_chosen\": {";
  bool first = true;
  for (std::size_t s = 0; s < tn::kNumOrderStrategies; ++s) {
    if (stats.strategy_chosen[s] == 0) continue;
    out += std::string(first ? "" : ", ") + "\"" +
           tn::order_strategy_name(static_cast<tn::OrderStrategy>(s)) +
           "\": " + std::to_string(stats.strategy_chosen[s]);
    first = false;
  }
  out += "}, \"strategy_flops\": {";
  first = true;
  for (std::size_t s = 0; s < tn::kNumOrderStrategies; ++s) {
    if (stats.strategy_flops[s] == 0) continue;
    out += std::string(first ? "" : ", ") + "\"" +
           tn::order_strategy_name(static_cast<tn::OrderStrategy>(s)) +
           "\": " + std::to_string(stats.strategy_flops[s]);
    first = false;
  }
  out += "}";
  out += "}";
  return out;
}

std::string cpu_model() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos || line.compare(0, 10, "model name") != 0) continue;
    std::string model = line.substr(colon + 1);
    // Trim and drop characters that would break the JSON string.
    std::string clean;
    for (char c : model)
      if (c != '"' && c != '\\' && static_cast<unsigned char>(c) >= 0x20) clean += c;
    const std::size_t first = clean.find_first_not_of(' ');
    if (first == std::string::npos) break;
    return clean.substr(first, clean.find_last_not_of(' ') - first + 1);
  }
  return "unknown";
}

std::string machine_json() {
  return "{\"cpu_model\": \"" + cpu_model() +
         "\", \"hardware_threads\": " + std::to_string(std::thread::hardware_concurrency()) +
         ", \"isa\": \"" + tsr::kernel_tier_name(tsr::detected_kernel_tier()) +
         "\", \"kernel_tier\": \"" + tsr::kernel_tier_name(tsr::active_kernel_tier()) + "\"}";
}

namespace {
std::string status_label(const RunOutcome& r) {
  switch (r.status) {
    case RunOutcome::Status::MemoryOut: return "MO";
    case RunOutcome::Status::Timeout: return "TO";
    case RunOutcome::Status::Cancelled: return "CX";
    case RunOutcome::Status::Skipped: return "-";
    case RunOutcome::Status::Ok: return "";
  }
  return "?";
}
}  // namespace

std::string sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

std::string fixed(double v, int digits) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string format_time(const RunOutcome& r) { return r.ok() ? fixed(r.seconds) : status_label(r); }

std::string format_value(const RunOutcome& r) { return r.ok() ? sci(r.value) : status_label(r); }

Table::Table(std::vector<std::string> header) { rows_.push_back(std::move(header)); }

void Table::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width;
  for (const auto& row : rows_) {
    if (width.size() < row.size()) width.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) width[i] = std::max(width[i], row[i].size());
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t i = 0; i < rows_[r].size(); ++i) {
      std::string cell = rows_[r][i];
      cell.resize(width[i], ' ');
      os << cell << (i + 1 < rows_[r].size() ? "  " : "");
    }
    os << "\n";
    if (r == 0) {
      std::size_t total = 0;
      for (std::size_t w : width) total += w + 2;
      os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    }
  }
}

void write_csv(std::ostream& os, const std::vector<std::vector<std::string>>& rows) {
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) os << row[i] << (i + 1 < row.size() ? "," : "");
    os << "\n";
  }
}

}  // namespace noisim::bench
