#pragma once
// Benchmark circuit families (stand-ins for the paper's ReCirq circuits)
// and noise injection.
//
// The paper evaluates on three circuit families taken from ReCirq:
//  * qaoa_N    -- hardware-grid QAOA; N in {64, 121, 225} are all perfect
//                 squares, i.e. sqrt(N) x sqrt(N) grids (Fig. 1 pattern);
//  * hf_N      -- Hartree-Fock VQE basis-rotation (Givens) networks;
//  * inst_RxC_D -- random circuits from the quantum supremacy experiments
//                 (Boixo et al. staggered CZ patterns).
// The generators below produce the same structures with seeded random
// parameters; gate counts are within a small factor of the paper's Table II
// rows (see DESIGN.md for the substitution note).

#include <cstdint>
#include <functional>
#include <random>

#include "channels/noisy_circuit.hpp"
#include "circuit/circuit.hpp"

namespace noisim::bench {

/// Hardware-grid QAOA on rows x cols qubits (Fig. 1 pattern): an initial
/// RY(-pi/2) RZ(pi/2) layer, then per round the ZZ interaction CZ-RZ-CZ on
/// every grid edge (4 staggered orientations) followed by an RX mixer layer.
/// Angles are seeded pseudo-random.
qc::Circuit qaoa_grid(int rows, int cols, int rounds, std::uint64_t seed);

/// qaoa_N on a sqrt(N) x sqrt(N) grid (N must be a perfect square).
qc::Circuit qaoa(int n, int rounds, std::uint64_t seed);

/// Hartree-Fock VQE ansatz on n qubits with n/2 occupied orbitals: an X
/// preparation layer followed by the triangular Givens-rotation network of
/// a basis rotation (n(n-1)/2 Givens, each with a trailing RZ phase).
qc::Circuit hf_vqe(int n, std::uint64_t seed);

/// Supremacy-style random circuit on a rows x cols grid with `depth` clock
/// layers: H everywhere, then staggered CZ patterns with single-qubit gates
/// from {T, sqrt(X), sqrt(Y)} under the usual rules (first 1q gate is T, no
/// immediate repetition, only on qubits idle in the current CZ layer).
qc::Circuit supremacy_inst(int rows, int cols, int depth, std::uint64_t seed);

/// A noise model draws a fresh channel per insertion site.
using NoiseModel = std::function<ch::Channel(std::mt19937_64&)>;

/// The realistic superconducting decoherence model [31]: thermal relaxation
/// with gate duration jittered around `mean_rate` (approximate noise rate).
NoiseModel realistic_noise(double mean_rate = 7e-3);

/// Depolarizing model with fixed probability p (noise rate 4p/3).
NoiseModel depolarizing_noise(double p);

/// Append `count` channels drawn from `model` after distinct uniformly
/// chosen gates (each on a random qubit of that gate), like the paper's
/// fault-injection procedure.
ch::NoisyCircuit insert_noises(const qc::Circuit& c, std::size_t count, const NoiseModel& model,
                               std::uint64_t seed);

}  // namespace noisim::bench
