#pragma once
// Amplitude evaluation <v| G_d ... G_1 |psi> for gate lists, with two
// backends:
//  * TensorNetwork -- builds the circuit's tensor network and contracts it
//    (the paper's method; scales with treewidth, not qubit count);
//  * StateVector   -- Schrodinger simulation (exact reference, exponential
//    in qubit count but cheap for small circuits).
//
// Gate lists here are plain vectors of qc::Gate so that the approximation
// engine can splice in non-unitary 1-qubit insertions (the SVD factors).

#include <cstdint>
#include <functional>
#include <vector>

#include "circuit/circuit.hpp"
#include "tn/contractor.hpp"

namespace noisim::core {

struct EvalOptions {
  enum class Backend { Auto, StateVector, TensorNetwork };
  Backend backend = Backend::Auto;
  /// Auto uses the state vector up to this qubit count, TN beyond. For the
  /// paper's shallow benchmark circuits TN contraction beats the 2^n sweep
  /// well before 16 qubits, so the cutoff sits at 12.
  int sv_max_qubits = 12;
  tn::ContractOptions tn;
  /// Run inverse-pair cancellation on the gate list before evaluating
  /// (pays off when the list embeds C then C^dagger around insertions).
  bool simplify = false;
  /// Structure-aware node ordering (e.g. core::make_grid_sweep): called
  /// with the final (post-simplify) gate list; a non-empty result switches
  /// the contraction to Sequential with that absorption order. Ignored by
  /// the state-vector backend.
  std::function<std::vector<std::size_t>(int, const std::vector<qc::Gate>&)> sequence_for;
};

/// Bit of qubit q in an n-qubit basis label: qubit 0 is the most significant
/// bit. For n > 64 only the *last* 64 qubits are addressable through the
/// std::uint64_t label; qubits 0..n-65 are fixed to |0> (which covers the
/// paper's experiments -- they all use |0...0> inputs and outputs).
inline bool basis_bit(std::uint64_t bits, int n, int q) {
  const int shift = n - 1 - q;
  return shift < 64 && ((bits >> shift) & 1);
}

/// Build the tensor network of <v| gates |psi> over n qubits with
/// computational-basis product states |psi_bits>, |v_bits>.
/// If `conjugate` is set every tensor entry is conjugated, which evaluates
/// <v| conj(G_d) ... conj(G_1) |psi> (the bottom layer of the doubled
/// diagram; basis states are real so they are unaffected).
tn::Network amplitude_network(int n, const std::vector<qc::Gate>& gates,
                              std::uint64_t psi_bits, std::uint64_t v_bits,
                              bool conjugate = false);

/// Evaluate <v| gates |psi> (or its conjugated-gates variant).
cplx amplitude(int n, const std::vector<qc::Gate>& gates, std::uint64_t psi_bits,
               std::uint64_t v_bits, bool conjugate = false, const EvalOptions& opts = {},
               tn::ContractStats* stats = nullptr);

}  // namespace noisim::core
