#pragma once
// Amplitude evaluation <v| G_d ... G_1 |psi> for gate lists, with two
// backends:
//  * TensorNetwork -- builds the circuit's tensor network and contracts it
//    (the paper's method; scales with treewidth, not qubit count);
//  * StateVector   -- Schrodinger simulation (exact reference, exponential
//    in qubit count but cheap for small circuits).
//
// Gate lists here are plain vectors of qc::Gate so that the approximation
// engine can splice in non-unitary 1-qubit insertions (the SVD factors).

#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "circuit/circuit.hpp"
#include "tn/contractor.hpp"
#include "tn/plan.hpp"

namespace noisim::core {

struct EvalOptions {
  enum class Backend { Auto, StateVector, TensorNetwork };
  Backend backend = Backend::Auto;
  /// Auto uses the state vector up to this qubit count, TN beyond. For the
  /// paper's shallow benchmark circuits TN contraction beats the 2^n sweep
  /// well before 16 qubits, so the cutoff sits at 12.
  int sv_max_qubits = 12;
  tn::ContractOptions tn;
  /// Run inverse-pair cancellation on the gate list before evaluating
  /// (pays off when the list embeds C then C^dagger around insertions).
  bool simplify = false;
  /// Structure-aware node ordering (e.g. core::make_grid_sweep): called
  /// with the final (post-simplify) gate list; a non-empty result switches
  /// the contraction to Sequential with that absorption order. Ignored by
  /// the state-vector backend.
  std::function<std::vector<std::size_t>(int, const std::vector<qc::Gate>&)> sequence_for;
};

/// Bit of qubit q in an n-qubit basis label: qubit 0 is the most significant
/// bit. For n > 64 only the *last* 64 qubits are addressable through the
/// std::uint64_t label; qubits 0..n-65 are fixed to |0> (which covers the
/// paper's experiments -- they all use |0...0> inputs and outputs).
inline bool basis_bit(std::uint64_t bits, int n, int q) {
  const int shift = n - 1 - q;
  return shift < 64 && ((bits >> shift) & 1);
}

/// Build the tensor network of <v| gates |psi> over n qubits with
/// computational-basis product states |psi_bits>, |v_bits>.
/// If `conjugate` is set every tensor entry is conjugated, which evaluates
/// <v| conj(G_d) ... conj(G_1) |psi> (the bottom layer of the doubled
/// diagram; basis states are real so they are unaffected).
tn::Network amplitude_network(int n, const std::vector<qc::Gate>& gates,
                              std::uint64_t psi_bits, std::uint64_t v_bits,
                              bool conjugate = false);

/// Evaluate <v| gates |psi> (or its conjugated-gates variant).
cplx amplitude(int n, const std::vector<qc::Gate>& gates, std::uint64_t psi_bits,
               std::uint64_t v_bits, bool conjugate = false, const EvalOptions& opts = {},
               tn::ContractStats* stats = nullptr);

/// Evaluate <v_t| gates |psi> for EVERY output bitstring v_t in `v_bits`
/// with the circuit evaluated once: the state-vector backend runs the
/// single forward evolution and reads all amplitudes off the final state;
/// the tensor-network backend compiles the skeleton once and replays it
/// output-batched (the basis caps become varying slots of a
/// tn::BatchedPlan, so steps outside every cap's light cone run once per
/// batch -- see AmplitudeTemplate::compile_batched_outputs). Element t is
/// bit-identical to amplitude(n, gates, psi_bits, v_bits[t], ...) with the
/// same options; if the output-batched workspace exceeds
/// opts.tn.max_workspace_elems the call falls back to per-bitstring plan
/// replay, which is bit-identical too.
std::vector<cplx> batch_amplitudes(int n, const std::vector<qc::Gate>& gates,
                                   std::uint64_t psi_bits,
                                   std::span<const std::uint64_t> v_bits, bool conjugate = false,
                                   const EvalOptions& opts = {},
                                   tn::ContractStats* stats = nullptr);

/// |0> or |1> as a rank-1 tensor (the networks' input/output caps).
tsr::Tensor basis_state_tensor(bool one);

/// A gate matrix as the tensor its network node carries: 2x2 matrices stay
/// rank-2 [out, in]; 4x4 (2-qubit) matrices become the rank-4
/// [out_a, out_b, in_a, in_b] gate tensor. This is the single definition of
/// the node layout amplitude_network uses -- substitution paths (Algorithm-1
/// insertions, trajectory samples) must build their tensors through it.
tsr::Tensor gate_matrix_tensor(const la::Matrix& m, int num_qubits);

/// True iff `opts` resolves to the tensor-network backend for n qubits
/// (explicit TensorNetwork, or Auto past the state-vector cutoff).
inline bool uses_tensor_network(const EvalOptions& opts, int n) {
  return opts.backend == EvalOptions::Backend::TensorNetwork ||
         (opts.backend == EvalOptions::Backend::Auto && n > opts.sv_max_qubits);
}

/// The tn::ContractOptions an AmplitudeTemplate for this gate list would
/// compile under: opts.tn with opts.sequence_for (structure-aware ordering)
/// resolved into a Sequential custom sequence. Plan compilation is a pure
/// function of (network topology, these options), which is what makes the
/// resolved options a valid plan-cache key component (core::PlanCache).
tn::ContractOptions resolved_contract_options(int n, const std::vector<qc::Gate>& gates,
                                              const EvalOptions& opts);

/// `opts` in boundary-resolved form: tn replaced by resolved_contract_options
/// and sequence_for cleared. The evaluation engines (Algorithm-1 sweeps,
/// simulate() adapters) call this ONCE where the gate list is fixed and
/// thread the result through, so a skeleton-walking sequence function never
/// runs per template, per layer, or per call. Idempotent: resolving an
/// already-resolved EvalOptions is a pass-through copy.
EvalOptions resolved_eval_options(int n, const std::vector<qc::Gate>& gates,
                                  const EvalOptions& opts);

/// Caller policy shared by the output-batching paths (batch_amplitudes,
/// approximate_fidelity_outputs, trajectories_tn_outputs): a compiled batch
/// whose schedule is essentially ALL sequential (per-term) work -- the
/// compile-time variant bounds found no step that terms could share -- can
/// only add bookkeeping over plain per-bitstring plan replay, so those
/// callers drop to their (bit-identical) per-bitstring path instead.
inline bool output_batch_worthwhile(const tn::BatchedPlan& bp) {
  return bp.sequential_flop_fraction() < 0.999;
}

/// Plan-once / replay-per-term amplitude evaluation.
///
/// Builds the tensor network of <v| skeleton |psi> once, compiles its
/// contraction plan once, and replays the plan with per-call tensor
/// substitutions at chosen nodes. Every Algorithm-1 term and every TN
/// trajectory sample shares one topology (only the noise-site insertions
/// change), so this turns O(terms x (plan + contract)) into
/// O(plan + terms x contract).
///
/// The template is immutable after construction and safe to share across
/// worker threads; each worker evaluates through its own Session (which
/// owns the plan workspace). Construction compiles the plan, so
/// MemoryOutError / TimeoutError surface here -- at plan time -- exactly
/// like they would on a first contraction.
class AmplitudeTemplate {
 public:
  /// `skeleton` must stay shape-stable under substitution: replacement
  /// tensors carry the same shape as the gate they stand in for.
  /// `opts.sequence_for` (if set) is resolved once against the skeleton.
  AmplitudeTemplate(int n, const std::vector<qc::Gate>& skeleton, std::uint64_t psi_bits,
                    std::uint64_t v_bits, bool conjugate, const EvalOptions& opts);

  /// Network node carrying skeleton gate `gate_index` (for substitutions).
  std::size_t node_of_gate(std::size_t gate_index) const {
    return static_cast<std::size_t>(n_) + gate_index;
  }

  /// Network node carrying qubit q's output cap <v_q| (for substitutions
  /// and output-batched evaluation). Node order is: n input caps, the
  /// skeleton's gates, n output caps.
  std::size_t node_of_output_cap(int q) const {
    return static_cast<std::size_t>(n_) + num_gates_ + static_cast<std::size_t>(q);
  }

  /// The n output-cap nodes in qubit order -- the varying slots
  /// compile_batched_outputs declares.
  std::vector<std::size_t> output_cap_nodes() const;

  /// Shared <0| / <1| cap tensor (same values basis_state_tensor builds).
  /// fill_output_caps hands out these two objects, so the batched
  /// executor's pointer-identity compaction shares rows across bitstrings
  /// that agree on a qubit.
  const tsr::Tensor& output_cap(bool one) const { return one ? cap_one_ : cap_zero_; }

  /// Write the n cap-tensor pointers for output bitstring `v_bits` to
  /// ptrs[0..n): ptrs[q] = &output_cap(bit q of v_bits). The span must
  /// hold at least n entries; extra entries are left untouched (callers
  /// batching terms fill term-major blocks of a larger table).
  void fill_output_caps(std::uint64_t v_bits, std::span<const tsr::Tensor*> ptrs) const;

  const tn::ContractionPlan& plan() const { return plan_; }
  /// Stats recorded while compiling the plan (plans_compiled = 1).
  const tn::ContractStats& compile_stats() const { return compile_stats_; }

  /// Compile a batched replay of the template's plan: up to `capacity`
  /// terms differing only at the given (network node) slots execute per
  /// traversal. `variant_counts[v]` (optional) promises at most that many
  /// distinct tensors ever substituted at nodes[v], shrinking the batched
  /// arena to each step's variant product (see
  /// tn::ContractionPlan::compile_batched). Throws MemoryOutError when the
  /// batched arena exceeds the template's max_workspace_elems budget -- the
  /// per-term path may fit a budget its batched counterpart exceeds.
  tn::BatchedPlan compile_batched(std::span<const std::size_t> nodes, std::size_t capacity,
                                  tn::ContractStats* stats = nullptr,
                                  std::span<const std::size_t> variant_counts = {},
                                  std::size_t max_varied_per_term =
                                      static_cast<std::size_t>(-1),
                                  std::span<const char> unconstrained = {}) const {
    return plan_.compile_batched(nodes, capacity, copts_, stats, variant_counts,
                                 max_varied_per_term, unconstrained);
  }

  /// Batched replay across OUTPUT BITSTRINGS: the n output-cap nodes become
  /// the varying slots (2 variants each -- <0| and <1| -- exempt from any
  /// per-term deviation promise, since a bitstring flips caps freely), so
  /// one traversal evaluates the skeleton amplitude at up to `capacity`
  /// output bitstrings. Steps outside every cap's light cone run once per
  /// batch; cap-cone steps store one row per distinct projection of the
  /// batch's bitstrings onto the cone's qubits. Throws MemoryOutError when
  /// the batched arena exceeds the template's max_workspace_elems budget.
  tn::BatchedPlan compile_batched_outputs(std::size_t capacity,
                                          tn::ContractStats* stats = nullptr) const;

  /// (node index, replacement tensor) pair for Session::evaluate.
  using Substitution = std::pair<std::size_t, const tsr::Tensor*>;

  /// Per-thread evaluation state: plan workspace + input pointer table.
  class Session {
   public:
    /// Evaluate the skeleton amplitude with each subs[i].first node's
    /// tensor replaced by *subs[i].second (shapes must match). Replays the
    /// compiled plan; no planning, near-zero allocation in steady state.
    cplx evaluate(std::span<const Substitution> subs);
    /// Cooperative run-time control: every plan replay through this session
    /// polls it at step granularity (tn::PlanWorkspace::control). Sessions
    /// are per-call state, so the control lives here and never on the
    /// (cached, shared) template. Null disables.
    void set_control(const RunControl* control) { ws_.control = control; }
    /// Contraction stats accumulated across evaluate calls.
    const tn::ContractStats& stats() const { return stats_; }

   private:
    friend class AmplitudeTemplate;
    explicit Session(const AmplitudeTemplate& tmpl);
    const AmplitudeTemplate* tmpl_;
    tn::PlanWorkspace ws_;
    std::vector<const tsr::Tensor*> inputs_;
    tn::ContractStats stats_;
  };

  /// A fresh session; the template must outlive it.
  Session session() const { return Session(*this); }

  /// Per-thread batched evaluation state over a compiled BatchedPlan:
  /// workspace plus the shared-input table. Evaluates K same-topology
  /// amplitudes (e.g. K Algorithm-1 terms or K trajectory samples) in one
  /// plan traversal; each amplitude is bit-identical to Session::evaluate
  /// with the same substitutions.
  class BatchedSession {
   public:
    /// Template and batched plan must outlive the session; `bplan` must
    /// have been compiled from this template's plan.
    BatchedSession(const AmplitudeTemplate& tmpl, const tn::BatchedPlan& bplan);
    /// Evaluate k <= bplan.capacity() amplitudes: ptrs[t * V + v] stands in
    /// at varying node bplan.varying_slots()[v] for term t (V = number of
    /// varying nodes). Writes the k amplitudes to `out`.
    void evaluate(std::span<const tsr::Tensor* const> ptrs, std::size_t k,
                  std::span<cplx> out);
    /// Like evaluate(ptrs, k, out) but with per-call substitutions at
    /// SHARED (non-varying) nodes first: every term of the batch sees
    /// subs[i].first's tensor replaced by *subs[i].second (shapes must
    /// match). This is how one output-batched traversal evaluates a single
    /// Algorithm-1 term or trajectory sample at many bitstrings -- the
    /// term's noise-site tensors go in as shared substitutions, the caps
    /// as varying slots. The substitutions are undone before returning.
    void evaluate(std::span<const Substitution> subs,
                  std::span<const tsr::Tensor* const> ptrs, std::size_t k,
                  std::span<cplx> out);
    /// Cooperative run-time control, polled at step granularity by every
    /// batched replay through this session (see Session::set_control).
    void set_control(const RunControl* control) { ws_.control = control; }
    /// Contraction stats accumulated across evaluate calls.
    const tn::ContractStats& stats() const { return stats_; }

   private:
    const AmplitudeTemplate* tmpl_;
    const tn::BatchedPlan* bplan_;
    tn::PlanWorkspace ws_;
    std::vector<const tsr::Tensor*> shared_;
    tn::ContractStats stats_;
  };

 private:
  // Declaration order matters: compile_stats_ is written while plan_
  // initializes, and plan_ compiles from net_; copts_ is resolved before
  // plan_ compiles and kept for compile_batched.
  tn::Network net_;
  tn::ContractStats compile_stats_;
  tn::ContractOptions copts_;
  tn::ContractionPlan plan_;
  int n_ = 0;
  std::size_t num_gates_ = 0;
  // Shared <0| / <1| caps for output-batched evaluation (see output_cap).
  tsr::Tensor cap_zero_, cap_one_;
};

}  // namespace noisim::core
