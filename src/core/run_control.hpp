#pragma once
// Cooperative cancellation / deadline / memory-ceiling control block.
//
// A RunControl is a small, caller-owned object shared (by pointer) between
// the thread that launches a computation and the threads executing it. The
// execution stack polls it at natural quiescent points -- the plan executor
// per contraction step (via tn::PlanWorkspace::control), the sharded sweep
// queue per work-item claim, the trajectory runners per chunk -- so a
// triggered control stops the run within one step/chunk/item rather than at
// the next top-level call boundary.
//
// Semantics:
//   * cancel      -- sticky flag; poll() raises CancelledError. Cancel is a
//                    caller decision, so it propagates through simulate()'s
//                    escalation ladder instead of being retried elsewhere.
//   * deadline    -- absolute steady_clock instant; poll() raises
//                    TimeoutError once passed. Unlike the plan-time deadline
//                    in ContractOptions::timeout_seconds (which is baked
//                    into compiled plans and participates in PlanCache
//                    keys), a RunControl deadline is pure run-time state and
//                    never affects plan contents.
//   * memory ceiling -- optional high-water element budget checked by
//                    check_memory() before large arena commitments; raises
//                    MemoryOutError (escalation-eligible in simulate()).
//
// Determinism contract: a control that never fires changes nothing -- every
// result is bit-identical to a run with control == nullptr. All fields are
// atomics, so request_cancel()/set_deadline_*() may race freely with polls
// from worker threads.
//
// This header is a leaf (linalg + <atomic>/<chrono> only) so that tn/ and
// sim/ can accept a const core::RunControl* without depending on core/.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "linalg/complex.hpp"

namespace noisim::core {

class RunControl {
 public:
  using Clock = std::chrono::steady_clock;

  RunControl() = default;
  RunControl(const RunControl&) = delete;
  RunControl& operator=(const RunControl&) = delete;

  /// Request cancellation. Sticky: every subsequent poll() on any thread
  /// raises CancelledError until reset().
  void request_cancel() noexcept { cancel_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const noexcept {
    return cancel_.load(std::memory_order_relaxed);
  }

  /// Arm a wall-clock deadline `seconds` from now (seconds <= 0 clears it).
  void set_deadline_after(double seconds) noexcept {
    if (seconds <= 0.0) {
      deadline_ns_.store(0, std::memory_order_relaxed);
      return;
    }
    const auto now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            Clock::now().time_since_epoch())
                            .count();
    const auto delta_ns = static_cast<std::int64_t>(seconds * 1e9);
    deadline_ns_.store(now_ns + delta_ns, std::memory_order_relaxed);
  }

  /// Arm an absolute deadline.
  void set_deadline(Clock::time_point when) noexcept {
    deadline_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           when.time_since_epoch())
                           .count(),
                       std::memory_order_relaxed);
  }

  void clear_deadline() noexcept { deadline_ns_.store(0, std::memory_order_relaxed); }

  bool deadline_expired() const noexcept {
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d == 0) return false;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
               .count() >= d;
  }

  /// Arm a high-water memory ceiling in scalar elements (0 disables).
  void set_memory_ceiling_elems(std::size_t elems) noexcept {
    ceiling_elems_.store(elems, std::memory_order_relaxed);
  }

  std::size_t memory_ceiling_elems() const noexcept {
    return ceiling_elems_.load(std::memory_order_relaxed);
  }

  /// Drop every armed condition (useful for test fixtures that reuse one
  /// control across cases; production callers make a fresh control per run).
  void reset() noexcept {
    cancel_.store(false, std::memory_order_relaxed);
    deadline_ns_.store(0, std::memory_order_relaxed);
    ceiling_elems_.store(0, std::memory_order_relaxed);
  }

  /// Raise CancelledError on a requested cancel, TimeoutError on an expired
  /// deadline; otherwise return. Cancel wins over deadline when both fire.
  void poll() const {
    if (cancel_requested())
      throw CancelledError("run cancelled via RunControl");
    if (deadline_expired())
      throw TimeoutError("run exceeded RunControl deadline");
  }

  /// Raise MemoryOutError when `elems` would exceed the armed ceiling.
  /// Checked before arena commitments, not on every small allocation.
  void check_memory(std::size_t elems, const char* what) const {
    const std::size_t ceiling = memory_ceiling_elems();
    if (ceiling != 0 && elems > ceiling)
      throw MemoryOutError(std::string(what) + " needs " + std::to_string(elems) +
                           " elems, above RunControl memory ceiling of " +
                           std::to_string(ceiling));
  }

 private:
  std::atomic<bool> cancel_{false};
  // Deadline as nanoseconds since the steady_clock epoch; 0 = unarmed.
  std::atomic<std::int64_t> deadline_ns_{0};
  std::atomic<std::size_t> ceiling_elems_{0};
};

}  // namespace noisim::core
