#include "core/circuit_network.hpp"

#include "circuit/simplify.hpp"
#include "sim/statevector.hpp"
#include "tensor/contract.hpp"

namespace noisim::core {

tn::Network amplitude_network(int n, const std::vector<qc::Gate>& gates,
                              std::uint64_t psi_bits, std::uint64_t v_bits, bool conjugate) {
  la::detail::require(n > 0, "amplitude_network: qubit count out of range");
  tn::Network net;

  auto basis_tensor = [](bool one) {
    tsr::Tensor t{{2}};
    t[one ? 1 : 0] = cplx{1.0, 0.0};
    return t;
  };

  // Input caps |psi_q> establish the initial wire edges.
  std::vector<tn::EdgeId> wire(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) {
    wire[static_cast<std::size_t>(q)] = net.new_edge();
    const bool one = basis_bit(psi_bits, n, q);
    net.add_node(basis_tensor(one), {wire[static_cast<std::size_t>(q)]},
                 "psi[q" + std::to_string(q) + "]");
  }

  for (const qc::Gate& g : gates) {
    la::Matrix m = g.matrix();
    if (conjugate) m = m.conj();
    if (g.num_qubits() == 1) {
      const auto q = static_cast<std::size_t>(g.qubits[0]);
      const tn::EdgeId out = net.new_edge();
      // Axes: [out, in]; m(out, in).
      net.add_node(tsr::Tensor::from_matrix(m), {out, wire[q]}, g.description());
      wire[q] = out;
    } else {
      const auto a = static_cast<std::size_t>(g.qubits[0]);
      const auto b = static_cast<std::size_t>(g.qubits[1]);
      const tn::EdgeId out_a = net.new_edge();
      const tn::EdgeId out_b = net.new_edge();
      // Row-major reshape of the 4x4: axes [out_a, out_b, in_a, in_b].
      tsr::Tensor t = tsr::Tensor::from_matrix(m).reshape({2, 2, 2, 2});
      net.add_node(std::move(t), {out_a, out_b, wire[a], wire[b]}, g.description());
      wire[a] = out_a;
      wire[b] = out_b;
    }
  }

  // Output caps <v_q|. For computational basis states the bra is real, so
  // conjugation is a no-op and the same tensor serves both layers.
  for (int q = 0; q < n; ++q) {
    const bool one = basis_bit(v_bits, n, q);
    net.add_node(basis_tensor(one), {wire[static_cast<std::size_t>(q)]},
                 "v[q" + std::to_string(q) + "]");
  }
  return net;
}

namespace {

cplx amplitude_sv(int n, const std::vector<qc::Gate>& gates, std::uint64_t psi_bits,
                  std::uint64_t v_bits, bool conjugate) {
  sim::Statevector sv = sim::Statevector::basis(n, psi_bits);
  for (const qc::Gate& g : gates) {
    la::Matrix m = g.matrix();
    if (conjugate) m = m.conj();
    if (g.num_qubits() == 1)
      sv.apply_matrix1(m, g.qubits[0]);
    else
      sv.apply_matrix2(m, g.qubits[0], g.qubits[1]);
  }
  return sv.amplitude(v_bits);
}

}  // namespace

cplx amplitude(int n, const std::vector<qc::Gate>& gates, std::uint64_t psi_bits,
               std::uint64_t v_bits, bool conjugate, const EvalOptions& opts,
               tn::ContractStats* stats) {
  const std::vector<qc::Gate>* use = &gates;
  std::vector<qc::Gate> reduced;
  if (opts.simplify) {
    reduced = qc::cancel_inverse_pairs(gates);
    use = &reduced;
  }

  auto contract_tn = [&] {
    tn::ContractOptions copts = opts.tn;
    if (opts.sequence_for) {
      std::vector<std::size_t> seq = opts.sequence_for(n, *use);
      if (!seq.empty()) {
        copts.strategy = tn::OrderStrategy::Sequential;
        copts.custom_sequence = std::move(seq);
      }
    }
    return tn::contract_to_scalar(amplitude_network(n, *use, psi_bits, v_bits, conjugate),
                                  copts, stats);
  };

  switch (opts.backend) {
    case EvalOptions::Backend::StateVector:
      return amplitude_sv(n, *use, psi_bits, v_bits, conjugate);
    case EvalOptions::Backend::TensorNetwork:
      return contract_tn();
    case EvalOptions::Backend::Auto:
      if (n <= opts.sv_max_qubits) return amplitude_sv(n, *use, psi_bits, v_bits, conjugate);
      return contract_tn();
  }
  la::detail::fail("amplitude: unknown backend");
}

}  // namespace noisim::core
