#include "core/circuit_network.hpp"

#include <optional>

#include "circuit/simplify.hpp"
#include "sim/statevector.hpp"
#include "tensor/contract.hpp"

namespace noisim::core {

tsr::Tensor basis_state_tensor(bool one) {
  tsr::Tensor t{{2}};
  t[one ? 1 : 0] = cplx{1.0, 0.0};
  return t;
}

tsr::Tensor gate_matrix_tensor(const la::Matrix& m, int num_qubits) {
  tsr::Tensor t = tsr::Tensor::from_matrix(m);
  if (num_qubits == 2) t = std::move(t).reshape({2, 2, 2, 2});
  return t;
}

tn::Network amplitude_network(int n, const std::vector<qc::Gate>& gates,
                              std::uint64_t psi_bits, std::uint64_t v_bits, bool conjugate) {
  la::detail::require(n > 0, "amplitude_network: qubit count out of range");
  tn::Network net;

  // Input caps |psi_q> establish the initial wire edges.
  std::vector<tn::EdgeId> wire(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) {
    wire[static_cast<std::size_t>(q)] = net.new_edge();
    const bool one = basis_bit(psi_bits, n, q);
    net.add_node(basis_state_tensor(one), {wire[static_cast<std::size_t>(q)]},
                 "psi[q" + std::to_string(q) + "]");
  }

  for (const qc::Gate& g : gates) {
    la::Matrix m = g.matrix();
    if (conjugate) m = m.conj();
    if (g.num_qubits() == 1) {
      const auto q = static_cast<std::size_t>(g.qubits[0]);
      const tn::EdgeId out = net.new_edge();
      net.add_node(gate_matrix_tensor(m, 1), {out, wire[q]}, g.description());
      wire[q] = out;
    } else {
      const auto a = static_cast<std::size_t>(g.qubits[0]);
      const auto b = static_cast<std::size_t>(g.qubits[1]);
      const tn::EdgeId out_a = net.new_edge();
      const tn::EdgeId out_b = net.new_edge();
      net.add_node(gate_matrix_tensor(m, 2), {out_a, out_b, wire[a], wire[b]}, g.description());
      wire[a] = out_a;
      wire[b] = out_b;
    }
  }

  // Output caps <v_q|. For computational basis states the bra is real, so
  // conjugation is a no-op and the same tensor serves both layers.
  for (int q = 0; q < n; ++q) {
    const bool one = basis_bit(v_bits, n, q);
    net.add_node(basis_state_tensor(one), {wire[static_cast<std::size_t>(q)]},
                 "v[q" + std::to_string(q) + "]");
  }
  return net;
}

tn::ContractOptions resolved_contract_options(int n, const std::vector<qc::Gate>& gates,
                                              const EvalOptions& opts) {
  tn::ContractOptions copts = opts.tn;
  if (opts.sequence_for) {
    std::vector<std::size_t> seq = opts.sequence_for(n, gates);
    if (!seq.empty()) {
      copts.strategy = tn::OrderStrategy::Sequential;
      copts.custom_sequence = std::move(seq);
    }
  }
  return copts;
}

EvalOptions resolved_eval_options(int n, const std::vector<qc::Gate>& gates,
                                  const EvalOptions& opts) {
  EvalOptions out = opts;
  out.tn = resolved_contract_options(n, gates, opts);
  out.sequence_for = nullptr;
  return out;
}

AmplitudeTemplate::AmplitudeTemplate(int n, const std::vector<qc::Gate>& skeleton,
                                     std::uint64_t psi_bits, std::uint64_t v_bits,
                                     bool conjugate, const EvalOptions& opts)
    : net_(amplitude_network(n, skeleton, psi_bits, v_bits, conjugate)),
      copts_(resolved_contract_options(n, skeleton, opts)),
      plan_(tn::ContractionPlan::compile(net_, copts_, &compile_stats_)),
      n_(n),
      num_gates_(skeleton.size()),
      cap_zero_(basis_state_tensor(false)),
      cap_one_(basis_state_tensor(true)) {
  // Templates are cached (core::PlanCache) and outlive the call that built
  // them, so the caller's RunControl -- which the compile above honored --
  // must not survive on the stored options: a later compile_batched through
  // a cache hit would poll a dangling pointer. Run-time control reaches
  // replays through each Session's workspace instead (set_control).
  copts_.control = nullptr;
}

std::vector<std::size_t> AmplitudeTemplate::output_cap_nodes() const {
  std::vector<std::size_t> nodes(static_cast<std::size_t>(n_));
  for (int q = 0; q < n_; ++q) nodes[static_cast<std::size_t>(q)] = node_of_output_cap(q);
  return nodes;
}

void AmplitudeTemplate::fill_output_caps(std::uint64_t v_bits,
                                         std::span<const tsr::Tensor*> ptrs) const {
  la::detail::require(ptrs.size() >= static_cast<std::size_t>(n_),
                      "fill_output_caps: pointer span too small");
  for (int q = 0; q < n_; ++q)
    ptrs[static_cast<std::size_t>(q)] = basis_bit(v_bits, n_, q) ? &cap_one_ : &cap_zero_;
}

tn::BatchedPlan AmplitudeTemplate::compile_batched_outputs(std::size_t capacity,
                                                           tn::ContractStats* stats) const {
  const std::vector<std::size_t> nodes = output_cap_nodes();
  // Every cap is <0| or <1| and flips freely across a batch of bitstrings,
  // so each slot carries 2 variants with no per-term deviation promise.
  const std::vector<std::size_t> counts(nodes.size(), 2);
  const std::vector<char> unconstrained(nodes.size(), 1);
  return compile_batched(nodes, capacity, stats, counts, static_cast<std::size_t>(-1),
                         unconstrained);
}

AmplitudeTemplate::Session::Session(const AmplitudeTemplate& tmpl) : tmpl_(&tmpl) {
  inputs_.reserve(tmpl.net_.num_nodes());
  for (std::size_t i = 0; i < tmpl.net_.num_nodes(); ++i)
    inputs_.push_back(&tmpl.net_.node(i).tensor);
}

AmplitudeTemplate::BatchedSession::BatchedSession(const AmplitudeTemplate& tmpl,
                                                  const tn::BatchedPlan& bplan)
    : tmpl_(&tmpl), bplan_(&bplan) {
  shared_.reserve(tmpl.net_.num_nodes());
  for (std::size_t i = 0; i < tmpl.net_.num_nodes(); ++i)
    shared_.push_back(&tmpl.net_.node(i).tensor);
}

void AmplitudeTemplate::BatchedSession::evaluate(std::span<const Substitution> subs,
                                                 std::span<const tsr::Tensor* const> ptrs,
                                                 std::size_t k, std::span<cplx> out) {
  // Validate every index BEFORE applying anything: a mid-application throw
  // would leave earlier substitutions silently active in later calls.
  for (const Substitution& s : subs)
    la::detail::require(s.first < shared_.size(),
                        "BatchedSession: substitution out of range");
  for (const Substitution& s : subs) shared_[s.first] = s.second;
  try {
    evaluate(ptrs, k, out);
  } catch (...) {
    for (const Substitution& s : subs) shared_[s.first] = &tmpl_->net_.node(s.first).tensor;
    throw;
  }
  for (const Substitution& s : subs) shared_[s.first] = &tmpl_->net_.node(s.first).tensor;
}

void AmplitudeTemplate::BatchedSession::evaluate(std::span<const tsr::Tensor* const> ptrs,
                                                 std::size_t k, std::span<cplx> out) {
  la::detail::require(out.size() >= k, "BatchedSession: output span too small");
  const tsr::Tensor amps = bplan_->execute(shared_, ptrs, k, ws_, &stats_);
  la::detail::require(amps.size() == k, "BatchedSession: template output is not scalar");
  std::copy(amps.data(), amps.data() + k, out.data());
}

cplx AmplitudeTemplate::Session::evaluate(std::span<const Substitution> subs) {
  // Validate every index BEFORE applying anything: a mid-application throw
  // would leave earlier substitutions silently active in later calls.
  for (const Substitution& s : subs)
    la::detail::require(s.first < inputs_.size(), "AmplitudeTemplate: substitution out of range");
  for (const Substitution& s : subs) inputs_[s.first] = s.second;
  cplx value;
  try {
    value = tmpl_->plan_
                .execute(std::span<const tsr::Tensor* const>(inputs_), ws_, &stats_)
                .to_scalar();
  } catch (...) {
    for (const Substitution& s : subs) inputs_[s.first] = &tmpl_->net_.node(s.first).tensor;
    throw;
  }
  for (const Substitution& s : subs) inputs_[s.first] = &tmpl_->net_.node(s.first).tensor;
  return value;
}

namespace {

sim::Statevector evolve_sv(int n, const std::vector<qc::Gate>& gates, std::uint64_t psi_bits,
                           bool conjugate) {
  sim::Statevector sv = sim::Statevector::basis(n, psi_bits);
  for (const qc::Gate& g : gates) {
    la::Matrix m = g.matrix();
    if (conjugate) m = m.conj();
    if (g.num_qubits() == 1)
      sv.apply_matrix1(m, g.qubits[0]);
    else
      sv.apply_matrix2(m, g.qubits[0], g.qubits[1]);
  }
  return sv;
}

cplx amplitude_sv(int n, const std::vector<qc::Gate>& gates, std::uint64_t psi_bits,
                  std::uint64_t v_bits, bool conjugate) {
  return evolve_sv(n, gates, psi_bits, conjugate).amplitude(v_bits);
}

}  // namespace

cplx amplitude(int n, const std::vector<qc::Gate>& gates, std::uint64_t psi_bits,
               std::uint64_t v_bits, bool conjugate, const EvalOptions& opts,
               tn::ContractStats* stats) {
  const std::vector<qc::Gate>* use = &gates;
  std::vector<qc::Gate> reduced;
  if (opts.simplify) {
    reduced = qc::cancel_inverse_pairs(gates);
    use = &reduced;
  }

  auto contract_tn = [&] {
    return tn::contract_to_scalar(amplitude_network(n, *use, psi_bits, v_bits, conjugate),
                                  resolved_contract_options(n, *use, opts), stats);
  };

  switch (opts.backend) {
    case EvalOptions::Backend::StateVector:
      return amplitude_sv(n, *use, psi_bits, v_bits, conjugate);
    case EvalOptions::Backend::TensorNetwork:
      return contract_tn();
    case EvalOptions::Backend::Auto:
      if (n <= opts.sv_max_qubits) return amplitude_sv(n, *use, psi_bits, v_bits, conjugate);
      return contract_tn();
  }
  la::detail::fail("amplitude: unknown backend");
}

std::vector<cplx> batch_amplitudes(int n, const std::vector<qc::Gate>& gates,
                                   std::uint64_t psi_bits,
                                   std::span<const std::uint64_t> v_bits, bool conjugate,
                                   const EvalOptions& opts, tn::ContractStats* stats) {
  std::vector<cplx> out(v_bits.size());
  if (v_bits.empty()) return out;

  const std::vector<qc::Gate>* use = &gates;
  std::vector<qc::Gate> reduced;
  if (opts.simplify) {
    reduced = qc::cancel_inverse_pairs(gates);
    use = &reduced;
  }
  EvalOptions eval = opts;
  eval.simplify = false;  // already applied to the shared gate list

  if (!uses_tensor_network(eval, n)) {
    // One forward evolution; every amplitude read off the same final state
    // is bit-identical to its standalone amplitude() evaluation.
    const sim::Statevector sv = evolve_sv(n, *use, psi_bits, conjugate);
    for (std::size_t t = 0; t < v_bits.size(); ++t) out[t] = sv.amplitude(v_bits[t]);
    return out;
  }

  // One compiled skeleton for every bitstring; the template's own caps are
  // placeholders (the varying slots always substitute them).
  const AmplitudeTemplate tmpl(n, *use, psi_bits, v_bits[0], conjugate, eval);
  if (stats) stats->merge(tmpl.compile_stats());
  const std::size_t nn = static_cast<std::size_t>(n);

  // Output-batched chunks; per-bitstring plan replay (bit-identical) when
  // the output-batched arena exceeds the workspace budget.
  constexpr std::size_t kOutputBatch = 64;
  const std::size_t cap = std::min(v_bits.size(), kOutputBatch);
  std::optional<tn::BatchedPlan> bplan;
  try {
    bplan.emplace(tmpl.compile_batched_outputs(cap, stats));
    if (!output_batch_worthwhile(*bplan)) bplan.reset();
  } catch (const MemoryOutError&) {
    // Batch-aware workspace budget exceeded; fall through to replay.
  }
  if (bplan) {
    AmplitudeTemplate::BatchedSession session(tmpl, *bplan);
    std::vector<const tsr::Tensor*> ptrs(cap * nn);
    for (std::size_t b = 0; b < v_bits.size(); b += cap) {
      const std::size_t k = std::min(cap, v_bits.size() - b);
      for (std::size_t t = 0; t < k; ++t)
        tmpl.fill_output_caps(v_bits[b + t], std::span(ptrs).subspan(t * nn, nn));
      session.evaluate(std::span<const tsr::Tensor* const>(ptrs).first(k * nn), k,
                       std::span<cplx>(out).subspan(b, k));
    }
    if (stats) stats->merge(session.stats());
    return out;
  }

  AmplitudeTemplate::Session session = tmpl.session();
  std::vector<AmplitudeTemplate::Substitution> subs(nn);
  std::vector<const tsr::Tensor*> caps(nn);
  for (std::size_t t = 0; t < v_bits.size(); ++t) {
    tmpl.fill_output_caps(v_bits[t], caps);
    for (int q = 0; q < n; ++q)
      subs[static_cast<std::size_t>(q)] = {tmpl.node_of_output_cap(q),
                                           caps[static_cast<std::size_t>(q)]};
    out[t] = session.evaluate(subs);
  }
  if (stats) stats->merge(session.stats());
  return out;
}

}  // namespace noisim::core
