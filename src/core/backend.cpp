#include "core/backend.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "core/doubled_network.hpp"
#include "core/plan_cache.hpp"
#include "core/trajectories_tn.hpp"
#include "fault/fault.hpp"
#include "mps/mps_trajectories.hpp"
#include "sim/density.hpp"
#include "sim/trajectories.hpp"
#include "tdd/tdd_sim.hpp"

namespace noisim::core {

namespace {

// Deadline checks convert modeled flops to modeled seconds with one
// deliberately conservative throughput constant: selection only needs the
// RELATIVE ordering of backends (all estimates share the scale), and a low
// constant rejects configurations near the wire instead of discovering the
// timeout mid-run.
constexpr double kModelFlopsPerSecond = 2e8;

std::string format_double(double x) {
  std::ostringstream os;
  os.precision(3);
  os << x;
  return os.str();
}

// Shared memory/deadline gate: marks the estimate feasible, or infeasible
// with the violated budget named. Call after flops/peak_elems are filled.
void check_budgets(CostEstimate& est, const SimulateOptions& opts) {
  if (est.peak_elems > opts.memory_budget) {
    est.feasible = false;
    est.reason = "modeled peak " + std::to_string(est.peak_elems) +
                 " elems exceeds memory_budget " + std::to_string(opts.memory_budget);
    return;
  }
  if (opts.deadline > 0.0 && est.flops / kModelFlopsPerSecond > opts.deadline) {
    est.feasible = false;
    est.reason = "modeled time " + format_double(est.flops / kModelFlopsPerSecond) +
                 "s exceeds deadline " + format_double(opts.deadline) + "s";
    return;
  }
  est.feasible = true;
  est.reason.clear();
}

// Shared sampler sizing: Hoeffding sample count for the error budget,
// capped by max_samples, times the engine's per-sample cost model. Peak
// memory scales with the worker count (each worker owns its state).
CostEstimate sampler_estimate(const sim::TrajectoryCost& cost, const SimulateOptions& opts) {
  CostEstimate est;
  const std::size_t needed = sim::hoeffding_samples(opts.error_budget, opts.failure_prob);
  if (needed > opts.max_samples) {
    est.reason = "needs " + std::to_string(needed) + " samples, above max_samples " +
                 std::to_string(opts.max_samples);
    return est;
  }
  est.samples = needed;
  est.achievable_error = sim::hoeffding_accuracy(needed, opts.failure_prob);
  est.flops = cost.per_sample_flops * static_cast<double>(needed);
  const std::size_t workers = std::min<std::size_t>(sim::resolve_threads(opts.threads), needed);
  est.peak_elems = cost.peak_elems * std::max<std::size_t>(workers, 1);
  check_budgets(est, opts);
  return est;
}

sim::ParallelOptions parallel_options(const SimulateOptions& opts) {
  sim::ParallelOptions popts;
  popts.threads = opts.threads;
  popts.control = opts.control;
  return popts;
}

class DensityBackend final : public Backend {
 public:
  BackendKind kind() const override { return BackendKind::Density; }

  CostEstimate estimate(const ch::NoisyCircuit& nc, std::uint64_t, std::uint64_t,
                        const SimulateOptions& opts) const override {
    CostEstimate est;
    const int n = nc.num_qubits();
    if (n > sim::kDensityMaxQubits) {
      est.reason = "circuit has " + std::to_string(n) + " qubits, density matrices cap at " +
                   std::to_string(sim::kDensityMaxQubits);
      return est;
    }
    est.flops = sim::density_evolution_flops(nc);
    // rho plus the local-update scratch buffer, each 4^n elements.
    est.peak_elems = std::size_t{2} << (2 * n);
    check_budgets(est, opts);
    return est;
  }

  void run(const ch::NoisyCircuit& nc, std::uint64_t psi_bits, std::uint64_t v_bits,
           const SimulateOptions&, const CostEstimate&, SimResult& out) const override {
    out.value = sim::exact_fidelity_mm(nc, psi_bits, v_bits);
    out.error_bound = 0.0;
  }
};

class TddBackend final : public Backend {
 public:
  BackendKind kind() const override { return BackendKind::Tdd; }

  CostEstimate estimate(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                        std::uint64_t v_bits, const SimulateOptions& opts) const override {
    CostEstimate est;
    const tdd::TddCostProxy proxy =
        tdd::sequential_cost_proxy(doubled_network(nc, psi_bits, v_bits));
    est.flops = proxy.flops;
    est.peak_elems =
        proxy.peak_elems >= static_cast<double>(std::numeric_limits<std::size_t>::max())
            ? std::numeric_limits<std::size_t>::max()
            : static_cast<std::size_t>(proxy.peak_elems);
    check_budgets(est, opts);
    return est;
  }

  void run(const ch::NoisyCircuit& nc, std::uint64_t psi_bits, std::uint64_t v_bits,
           const SimulateOptions& opts, const CostEstimate&, SimResult& out) const override {
    tdd::TddSimOptions topts;
    topts.timeout_seconds = opts.deadline;
    out.value = tdd::exact_fidelity_tdd(nc, psi_bits, v_bits, topts);
    out.error_bound = 0.0;
  }
};

class TnApproxBackend final : public Backend {
 public:
  BackendKind kind() const override { return BackendKind::TnApprox; }

  CostEstimate estimate(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                        std::uint64_t v_bits, const SimulateOptions& opts) const override {
    CostEstimate est;
    const ApproxCostModel model =
        approx_cost_model(nc, psi_bits, v_bits, tn_approx_options(opts, 0));
    est.peak_elems = model.peak_elems;  // level-independent: one layer at a time
    if (est.peak_elems > opts.memory_budget) {
      check_budgets(est, opts);
      return est;
    }
    // Walk the level ladder to the cheapest (lowest) level meeting the
    // error budget; cost grows combinatorially with the level, so the
    // first hit is the best bid.
    const std::size_t top = std::min(opts.max_level, model.num_sites);
    double best_bound = std::numeric_limits<double>::infinity();
    for (std::size_t level = 0; level <= top; ++level) {
      if (model.term_count(level) > opts.max_terms) {
        est.reason = "level " + std::to_string(level) + " needs " +
                     format_double(model.term_count(level)) +
                     " terms, above max_terms (best bound " + format_double(best_bound) + ")";
        return est;
      }
      const double bound = model.error_bound(level);
      best_bound = std::min(best_bound, bound);
      if (bound > opts.error_budget) continue;
      est.level = level;
      est.achievable_error = bound;
      est.flops = model.sweep_flops(level);
      check_budgets(est, opts);
      return est;
    }
    est.reason = "error bound " + format_double(best_bound) + " at level " +
                 std::to_string(top) + " still above error_budget " +
                 format_double(opts.error_budget);
    return est;
  }

  void run(const ch::NoisyCircuit& nc, std::uint64_t psi_bits, std::uint64_t v_bits,
           const SimulateOptions& opts, const CostEstimate& config,
           SimResult& out) const override {
    const ApproxResult r =
        approximate_fidelity(nc, psi_bits, v_bits, tn_approx_options(opts, config.level));
    out.value = r.value;
    out.error_bound = r.tight_error_bound;
    out.stats = r.contract_stats;
  }
};

class TnTrajectoriesBackend final : public Backend {
 public:
  BackendKind kind() const override { return BackendKind::TnTrajectories; }

  CostEstimate estimate(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                        std::uint64_t v_bits, const SimulateOptions& opts) const override {
    CostEstimate est;
    if (!trajectories_tn_eligible(nc)) {
      est.reason = "a channel is not a normalized mixture of unitaries";
      return est;
    }
    if (opts.eval.simplify) {
      est.reason = "eval.simplify is not applied by the trajectories skeleton";
      return est;
    }
    // Each trajectory is ONE single-layer amplitude evaluation of the same
    // topology Algorithm 1 contracts, so the cost model's layer figures
    // apply verbatim (and compiling them pre-warms the shared plan cache).
    const ApproxCostModel model =
        approx_cost_model(nc, psi_bits, v_bits, tn_approx_options(opts, 0));
    sim::TrajectoryCost cost;
    cost.per_sample_flops = model.layer_flops;
    cost.peak_elems = model.peak_elems;
    return sampler_estimate(cost, opts);
  }

  void run(const ch::NoisyCircuit& nc, std::uint64_t psi_bits, std::uint64_t v_bits,
           const SimulateOptions& opts, const CostEstimate& config,
           SimResult& out) const override {
    out.traj = trajectories_tn(nc, psi_bits, v_bits, config.samples, opts.seed,
                               parallel_options(opts), opts.eval);
    out.value = out.traj.mean;
    out.error_bound = config.achievable_error;
  }
};

class SvTrajectoriesBackend final : public Backend {
 public:
  BackendKind kind() const override { return BackendKind::SvTrajectories; }

  CostEstimate estimate(const ch::NoisyCircuit& nc, std::uint64_t, std::uint64_t,
                        const SimulateOptions& opts) const override {
    return sampler_estimate(sim::sv_trajectory_cost(nc), opts);
  }

  void run(const ch::NoisyCircuit& nc, std::uint64_t psi_bits, std::uint64_t v_bits,
           const SimulateOptions& opts, const CostEstimate& config,
           SimResult& out) const override {
    out.traj = sim::trajectories_sv(nc, psi_bits, v_bits, config.samples, opts.seed,
                                    parallel_options(opts));
    out.value = out.traj.mean;
    out.error_bound = config.achievable_error;
  }
};

class MpsTrajectoriesBackend final : public Backend {
 public:
  BackendKind kind() const override { return BackendKind::MpsTrajectories; }

  CostEstimate estimate(const ch::NoisyCircuit& nc, std::uint64_t, std::uint64_t,
                        const SimulateOptions& opts) const override {
    CostEstimate est;
    const int n = nc.num_qubits();
    // Only bid in the exact-bond regime: with chi below 2^ceil(n/2) the
    // SVD truncations would silently void the Hoeffding guarantee.
    const double exact_bond = std::pow(2.0, std::min((n + 1) / 2, 60));
    if (exact_bond > static_cast<double>(opts.mps.max_bond)) {
      est.reason = "mps.max_bond " + std::to_string(opts.mps.max_bond) +
                   " below the exact regime 2^ceil(n/2) = " + format_double(exact_bond);
      return est;
    }
    return sampler_estimate(mps::mps_trajectory_cost(nc, opts.mps), opts);
  }

  void run(const ch::NoisyCircuit& nc, std::uint64_t psi_bits, std::uint64_t v_bits,
           const SimulateOptions& opts, const CostEstimate& config,
           SimResult& out) const override {
    out.traj = mps::trajectories_mps(nc, psi_bits, v_bits, config.samples, opts.seed,
                                     parallel_options(opts), opts.mps);
    out.value = out.traj.mean;
    out.error_bound = config.achievable_error;
  }
};

}  // namespace

const char* backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::Density: return "density";
    case BackendKind::Tdd: return "tdd";
    case BackendKind::TnApprox: return "tn-approx";
    case BackendKind::TnTrajectories: return "tn-trajectories";
    case BackendKind::SvTrajectories: return "sv-trajectories";
    case BackendKind::MpsTrajectories: return "mps-trajectories";
  }
  return "unknown";
}

const std::vector<const Backend*>& default_backends() {
  static const DensityBackend density;
  static const TddBackend tdd_backend;
  static const TnApproxBackend tn_approx;
  static const TnTrajectoriesBackend tn_trajectories;
  static const SvTrajectoriesBackend sv_trajectories;
  static const MpsTrajectoriesBackend mps_trajectories;
  static const std::vector<const Backend*> all{&density,         &tdd_backend,
                                               &tn_approx,       &tn_trajectories,
                                               &sv_trajectories, &mps_trajectories};
  return all;
}

ApproxOptions tn_approx_options(const SimulateOptions& opts, std::size_t level) {
  ApproxOptions a;
  a.level = level;
  a.eval = opts.eval;
  // Thread the wall-clock budget into the TN engine's own deadline unless
  // the caller already set one. Part of the plan-cache key, so estimate and
  // run MUST derive eval through this same helper.
  if (opts.deadline > 0.0 && a.eval.tn.timeout_seconds == 0.0)
    a.eval.tn.timeout_seconds = opts.deadline;
  a.threads = opts.threads;
  a.plan_cache = opts.plan_cache;
  a.control = opts.control;
  return a;
}

void validate_simulate_options(const SimulateOptions& opts) {
  la::detail::require(std::isfinite(opts.error_budget) && opts.error_budget > 0.0,
                      "simulate: error_budget must be positive and finite");
  la::detail::require(opts.memory_budget != 0, "simulate: memory_budget must be nonzero");
  la::detail::require(std::isfinite(opts.deadline) && opts.deadline >= 0.0,
                      "simulate: deadline must be finite and nonnegative");
  la::detail::require(opts.failure_prob > 0.0 && opts.failure_prob < 2.0,
                      "simulate: failure_prob must be in (0, 2)");
  la::detail::require(std::isfinite(opts.max_terms) && opts.max_terms >= 1.0,
                      "simulate: max_terms must be at least 1");
}

SimResult simulate(const ch::NoisyCircuit& nc, std::uint64_t psi_bits, std::uint64_t v_bits,
                   const SimulateOptions& opts) {
  validate_simulate_options(opts);
  // A pre-cancelled or pre-expired control fails fast, before any backend
  // bids (estimation can compile plans, which is real work).
  if (opts.control) opts.control->poll();

  // A call-local plan cache keeps estimation's compiled templates alive for
  // the run even when the caller shares none; results are bit-identical
  // with or without one (the PlanCache contract), so this is free accuracy.
  SimulateOptions ropts = opts;
  PlanCache local_cache(8);
  if (!ropts.plan_cache) ropts.plan_cache = &local_cache;

  std::vector<const Backend*> pool;
  for (const Backend* b : default_backends())
    if (!ropts.force_backend || b->kind() == *ropts.force_backend) pool.push_back(b);

  std::vector<BackendChoice> bids(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    bids[i].kind = pool[i]->kind();
    try {
      bids[i].estimate = pool[i]->estimate(nc, psi_bits, v_bits, ropts);
    } catch (const std::exception& e) {
      // Plan-time MO/TO (or an engine precondition) rules the backend out;
      // selection proceeds with the others.
      bids[i].estimate = CostEstimate{};
      bids[i].estimate.reason = e.what();
    }
  }

  if (ropts.force_backend && !bids.empty() && !bids.front().estimate.feasible)
    la::detail::fail(std::string("simulate: forced backend ") +
                     backend_name(*ropts.force_backend) + " infeasible: " +
                     bids.front().estimate.reason);

  // Selection order: feasible bids by modeled flops (BackendKind order
  // breaking ties -- deterministic engines first), then the ruled-out bids
  // for the audit trail.
  std::vector<std::size_t> order(bids.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const CostEstimate& ea = bids[a].estimate;
    const CostEstimate& eb = bids[b].estimate;
    if (ea.feasible != eb.feasible) return ea.feasible;
    if (!ea.feasible) return false;
    return ea.flops < eb.flops;
  });

  SimResult out;
  for (const std::size_t i : order) out.considered.push_back(bids[i]);

  for (const std::size_t i : order) {
    if (!bids[i].estimate.feasible) break;  // order is feasible-first
    try {
      // Injection site at the winner's entry (run-density, run-tdd, ...):
      // fires before the engine touches its state, so escalation recovers
      // through the next bid exactly as a real first-instruction failure
      // would. The enabled() guard keeps the disarmed path allocation-free.
      if (fault::enabled()) fault::poke(std::string("run-") + backend_name(bids[i].kind));
      pool[i]->run(nc, psi_bits, v_bits, ropts, bids[i].estimate, out);
      out.backend = bids[i].kind;
      out.config = bids[i].estimate;
      return out;
    } catch (const MemoryOutError& e) {
      out.escalations.emplace_back(bids[i].kind, e.what());
    } catch (const TimeoutError& e) {
      out.escalations.emplace_back(bids[i].kind, e.what());
    }
  }

  std::string msg = "simulate: no backend meets the budgets --";
  for (const BackendChoice& c : out.considered) {
    std::string why = c.estimate.reason;
    for (const auto& [kind, err] : out.escalations)
      if (kind == c.kind) why = "run escalated: " + err;
    if (why.empty()) why = "feasible but not reached";
    msg += std::string(" ") + backend_name(c.kind) + ": " + why + ";";
  }
  la::detail::fail(msg);
}

}  // namespace noisim::core
