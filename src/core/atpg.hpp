#pragma once
// Fault detection for noisy circuits (the ATPG application the paper's
// conclusion motivates, cf. its refs [34]-[36]).
//
// A manufacturing fault is modeled as a noise channel at a known site. A
// test consists of preparing |t>, running the circuit, and measuring in the
// computational basis against the ideal outcome U|t>: the fault *escapes*
// with probability F = <v|E(|t><t|)|v> (v = U|t>) and is *detected* with
// probability 1 - F. Algorithm 1 evaluates F cheaply (level-1 with the
// light-cone reduction), which makes scanning candidate test patterns
// practical on circuits far past density-matrix scale.

#include <cstdint>
#include <vector>

#include "core/approx.hpp"
#include "core/backend.hpp"

namespace noisim::core {

/// Detection probability 1 - <U t|E(|t><t|)|U t> of the test pattern |t>.
/// Evaluated through the ideal-output projector rewrite + Algorithm 1.
double fault_detection_probability(const ch::NoisyCircuit& nc, std::uint64_t test_bits,
                                   const ApproxOptions& opts = {});

/// Budget-driven variant: the escape probability is evaluated through the
/// simulate() front door on the projected circuit (with the light-cone
/// simplification enabled), so the backend and its configuration are chosen
/// to meet `opts` instead of hard-coding Algorithm 1. Faults that are not
/// unitary mixtures (e.g. amplitude damping) simply rule the TN-trajectories
/// backend out; selection proceeds with the rest.
double fault_detection_probability(const ch::NoisyCircuit& nc, std::uint64_t test_bits,
                                   const SimulateOptions& opts);

struct TestPatternResult {
  std::uint64_t pattern = 0;
  double detection_probability = 0.0;
  /// Detection probability of every candidate, parallel to `candidates`.
  std::vector<double> all;
};

/// Evaluate the given candidate test patterns and return the best detector.
/// (Exhaustive pattern search is exponential; callers typically pass a
/// small pool of random or structured patterns, like classical ATPG.)
TestPatternResult best_test_pattern(const ch::NoisyCircuit& nc,
                                    const std::vector<std::uint64_t>& candidates,
                                    const ApproxOptions& opts = {});

/// Budget-driven variant of the pattern scan through simulate(). When
/// opts.plan_cache is null a scan-local cache is shared across candidates,
/// so each pattern's estimate pre-warms exactly the template its run
/// replays and repeated patterns skip planning entirely.
TestPatternResult best_test_pattern(const ch::NoisyCircuit& nc,
                                    const std::vector<std::uint64_t>& candidates,
                                    const SimulateOptions& opts);

}  // namespace noisim::core
