#pragma once
// Pauli-string observables on noisy circuits: tr(P . E(|psi><psi|)).
//
// The paper's conclusion points at ATPG / verification workflows, which ask
// for expectation values rather than single fidelities. The doubled diagram
// supports them directly: capping qubit q's top and bottom output wires
// with the rank-2 tensor P_q^T (and the partial-trace tensor delta for
// identity factors) evaluates tr(P sigma) exactly.
//
// Note: the *approximation* algorithm does not extend to these caps -- the
// trace couples the layers at every qubit, so the split-network trick only
// applies to fidelity-type quantities (see DESIGN.md). Evaluation here is
// exact contraction only.

#include <cstdint>
#include <string>

#include "channels/noisy_circuit.hpp"
#include "tn/contractor.hpp"

namespace noisim::core {

/// A Pauli string like "IXYZ" (one letter per qubit, qubit 0 first).
struct PauliString {
  std::string ops;

  /// Parse and validate; only characters I, X, Y, Z are allowed.
  static PauliString parse(const std::string& s);
  std::size_t num_qubits() const { return ops.size(); }
  /// Number of non-identity factors.
  std::size_t weight() const;
};

/// Build the doubled network for tr(P . E(|psi_bits><psi_bits|)).
tn::Network observable_network(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                               const PauliString& pauli);

/// Exact expectation value <P> = tr(P . E(|psi><psi|)). Real for Hermitian
/// observables; the real part is returned.
double expectation_pauli(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                         const PauliString& pauli, const tn::ContractOptions& opts = {},
                         tn::ContractStats* stats = nullptr);

}  // namespace noisim::core
