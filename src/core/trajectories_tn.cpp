#include "core/trajectories_tn.hpp"

#include <cmath>
#include <memory>

namespace noisim::core {

namespace {

// Skeleton gate list with one identity placeholder per noise site, plus the
// per-site unitary mixtures. Built once per estimate and shared read-only by
// all workers (each worker samples into its own copy of `gates`).
struct TnSkeleton {
  std::vector<qc::Gate> gates;
  std::vector<std::size_t> site_gate_index;
  std::vector<ch::UnitaryMixture> mixtures;
};

TnSkeleton build_skeleton(const ch::NoisyCircuit& nc) {
  TnSkeleton sk;
  for (const ch::Op& op : nc.ops()) {
    if (const qc::Gate* g = std::get_if<qc::Gate>(&op)) {
      sk.gates.push_back(*g);
      continue;
    }
    const ch::NoiseOp& noise = std::get<ch::NoiseOp>(op);
    auto mix = noise.channel.unitary_mixture();
    la::detail::require(mix.has_value(),
                        "trajectories_tn: channel is not a mixture of unitaries");
    sk.site_gate_index.push_back(sk.gates.size());
    if (noise.num_qubits() == 1)
      sk.gates.push_back(qc::u1q(noise.qubit, la::Matrix::identity(2)));
    else
      sk.gates.push_back(qc::u2q(noise.qubit, noise.qubit2, la::Matrix::identity(4)));
    sk.mixtures.push_back(std::move(*mix));
  }
  return sk;
}

// Inverse-CDF draw from a (normalized) probability vector. Unlike
// std::discrete_distribution, this carries no state across calls, so the
// engine's per-chunk RNG reseeding fully determines every draw.
std::size_t sample_index(const std::vector<double>& probs, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  const double u = unif(rng);
  double cumulative = 0.0;
  for (std::size_t k = 0; k < probs.size(); ++k) {
    cumulative += probs[k];
    if (u < cumulative) return k;
  }
  return probs.size() - 1;  // rounding fall-through
}

// One trajectory: sample a unitary per site into `gates` (a worker-private
// copy) and evaluate the resulting noiseless amplitude.
double sample_once(const TnSkeleton& sk, std::vector<qc::Gate>& gates, int n,
                   std::uint64_t psi_bits, std::uint64_t v_bits, std::mt19937_64& rng,
                   const EvalOptions& eval) {
  for (std::size_t site = 0; site < sk.mixtures.size(); ++site) {
    const std::size_t k = sample_index(sk.mixtures[site].probs, rng);
    gates[sk.site_gate_index[site]].custom = sk.mixtures[site].unitaries[k];
  }
  return std::norm(amplitude(n, gates, psi_bits, v_bits, false, eval));
}

}  // namespace

sim::TrajectoryResult trajectories_tn(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                      std::uint64_t v_bits, std::size_t samples,
                                      std::mt19937_64& rng, const EvalOptions& eval) {
  la::detail::require(samples > 0, "trajectories_tn: need at least one sample");
  const int n = nc.num_qubits();
  TnSkeleton sk = build_skeleton(nc);

  std::vector<qc::Gate> gates = sk.gates;
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    const double f = sample_once(sk, gates, n, psi_bits, v_bits, rng, eval);
    sum += f;
    sum_sq += f * f;
  }

  sim::TrajectoryResult out;
  out.samples = samples;
  out.mean = sum / static_cast<double>(samples);
  if (samples > 1) {
    const double var =
        (sum_sq - sum * sum / static_cast<double>(samples)) / static_cast<double>(samples - 1);
    out.std_error = std::sqrt(std::max(0.0, var) / static_cast<double>(samples));
  }
  return out;
}

sim::TrajectoryResult trajectories_tn(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                      std::uint64_t v_bits, std::size_t samples,
                                      std::uint64_t seed, const sim::ParallelOptions& popts,
                                      const EvalOptions& eval) {
  const int n = nc.num_qubits();
  const TnSkeleton sk = build_skeleton(nc);

  auto make_sampler = [&](std::size_t) -> sim::Sampler {
    // Worker-private scratch: the gate list the sampled unitaries land in.
    auto gates = std::make_shared<std::vector<qc::Gate>>(sk.gates);
    return [&sk, gates, n, psi_bits, v_bits, eval](std::mt19937_64& rng) {
      return sample_once(sk, *gates, n, psi_bits, v_bits, rng, eval);
    };
  };
  return sim::run_trajectories(samples, seed, make_sampler, popts);
}

}  // namespace noisim::core
