#include "core/trajectories_tn.hpp"

#include <cmath>

namespace noisim::core {

sim::TrajectoryResult trajectories_tn(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                      std::uint64_t v_bits, std::size_t samples,
                                      std::mt19937_64& rng, const EvalOptions& eval) {
  la::detail::require(samples > 0, "trajectories_tn: need at least one sample");
  const int n = nc.num_qubits();

  // Skeleton gate list with one placeholder per noise site + its mixture.
  std::vector<qc::Gate> gates;
  std::vector<std::size_t> site_gate_index;
  std::vector<ch::UnitaryMixture> mixtures;
  std::vector<std::discrete_distribution<std::size_t>> samplers;
  for (const ch::Op& op : nc.ops()) {
    if (const qc::Gate* g = std::get_if<qc::Gate>(&op)) {
      gates.push_back(*g);
      continue;
    }
    const ch::NoiseOp& noise = std::get<ch::NoiseOp>(op);
    auto mix = noise.channel.unitary_mixture();
    la::detail::require(mix.has_value(),
                        "trajectories_tn: channel is not a mixture of unitaries");
    site_gate_index.push_back(gates.size());
    if (noise.num_qubits() == 1)
      gates.push_back(qc::u1q(noise.qubit, la::Matrix::identity(2)));
    else
      gates.push_back(qc::u2q(noise.qubit, noise.qubit2, la::Matrix::identity(4)));
    samplers.emplace_back(mix->probs.begin(), mix->probs.end());
    mixtures.push_back(std::move(*mix));
  }

  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    for (std::size_t site = 0; site < mixtures.size(); ++site) {
      const std::size_t k = samplers[site](rng);
      gates[site_gate_index[site]].custom = mixtures[site].unitaries[k];
    }
    const double f = std::norm(amplitude(n, gates, psi_bits, v_bits, false, eval));
    sum += f;
    sum_sq += f * f;
  }

  sim::TrajectoryResult out;
  out.samples = samples;
  out.mean = sum / static_cast<double>(samples);
  if (samples > 1) {
    const double var =
        (sum_sq - sum * sum / static_cast<double>(samples)) / static_cast<double>(samples - 1);
    out.std_error = std::sqrt(std::max(0.0, var) / static_cast<double>(samples));
  }
  return out;
}

}  // namespace noisim::core
