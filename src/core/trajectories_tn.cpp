#include "core/trajectories_tn.hpp"

#include <cmath>
#include <memory>
#include <optional>
#include <span>

namespace noisim::core {

namespace {

// Skeleton gate list with one identity placeholder per noise site, plus the
// per-site unitary mixtures. Built once per estimate and shared read-only by
// all workers (each worker samples into its own copy of `gates`).
struct TnSkeleton {
  std::vector<qc::Gate> gates;
  std::vector<std::size_t> site_gate_index;
  std::vector<ch::UnitaryMixture> mixtures;
};

TnSkeleton build_skeleton(const ch::NoisyCircuit& nc) {
  TnSkeleton sk;
  for (const ch::Op& op : nc.ops()) {
    if (const qc::Gate* g = std::get_if<qc::Gate>(&op)) {
      sk.gates.push_back(*g);
      continue;
    }
    const ch::NoiseOp& noise = std::get<ch::NoiseOp>(op);
    auto mix = noise.channel.unitary_mixture();
    la::detail::require(mix.has_value(),
                        "trajectories_tn: channel is not a mixture of unitaries");
    sk.site_gate_index.push_back(sk.gates.size());
    if (noise.num_qubits() == 1)
      sk.gates.push_back(qc::u1q(noise.qubit, la::Matrix::identity(2)));
    else
      sk.gates.push_back(qc::u2q(noise.qubit, noise.qubit2, la::Matrix::identity(4)));
    sk.mixtures.push_back(std::move(*mix));
  }
  return sk;
}

// Inverse-CDF draw from a (normalized) probability vector. Unlike
// std::discrete_distribution, this carries no state across calls, so the
// engine's per-chunk RNG reseeding fully determines every draw.
std::size_t sample_index(const std::vector<double>& probs, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  const double u = unif(rng);
  double cumulative = 0.0;
  for (std::size_t k = 0; k < probs.size(); ++k) {
    cumulative += probs[k];
    if (u < cumulative) return k;
  }
  return probs.size() - 1;  // rounding fall-through
}

// One trajectory through the per-call-planned path: sample a unitary per
// site into `gates` (a worker-private copy) and evaluate the resulting
// noiseless amplitude from scratch.
double sample_once(const TnSkeleton& sk, std::vector<qc::Gate>& gates, int n,
                   std::uint64_t psi_bits, std::uint64_t v_bits, std::mt19937_64& rng,
                   const EvalOptions& eval) {
  for (std::size_t site = 0; site < sk.mixtures.size(); ++site) {
    const std::size_t k = sample_index(sk.mixtures[site].probs, rng);
    gates[sk.site_gate_index[site]].custom = sk.mixtures[site].unitaries[k];
  }
  return std::norm(amplitude(n, gates, psi_bits, v_bits, false, eval));
}

// Plan-replay machinery for the tensor-network backend: every sample shares
// the skeleton's topology, so the contraction plan is compiled once and
// replayed per trajectory with only the sampled site tensors substituted.
// When `batch_capacity` > 1 a batched replay is compiled on top, executing
// up to that many samples per plan traversal (chunk-at-a-time sampling);
// if the batched arena exceeds the workspace budget the per-sample path
// fits, the context silently falls back to sample-at-a-time replay, which
// produces bit-identical estimates.
struct TnPlanContext {
  AmplitudeTemplate tmpl;
  std::vector<std::size_t> site_node;
  // Tensorized mixture unitaries per (site, mixture index) -- sampling then
  // allocates nothing per trajectory.
  std::vector<std::vector<tsr::Tensor>> site_tensors;
  std::optional<tn::BatchedPlan> bplan;

  TnPlanContext(const ch::NoisyCircuit& nc, const TnSkeleton& sk, std::uint64_t psi_bits,
                std::uint64_t v_bits, const EvalOptions& eval, std::size_t batch_capacity)
      : tmpl(nc.num_qubits(), sk.gates, psi_bits, v_bits, /*conjugate=*/false, eval) {
    site_node.reserve(sk.mixtures.size());
    site_tensors.reserve(sk.mixtures.size());
    for (std::size_t site = 0; site < sk.mixtures.size(); ++site) {
      site_node.push_back(tmpl.node_of_gate(sk.site_gate_index[site]));
      const qc::Gate& g = sk.gates[sk.site_gate_index[site]];
      std::vector<tsr::Tensor> tensors;
      tensors.reserve(sk.mixtures[site].unitaries.size());
      for (const la::Matrix& u : sk.mixtures[site].unitaries)
        tensors.push_back(gate_matrix_tensor(u, g.num_qubits()));
      site_tensors.push_back(std::move(tensors));
    }
    if (batch_capacity > 1) {
      // Each site draws from its fixed unitary mixture, which bounds every
      // step's distinct rows by the mixture-size product of its cone.
      std::vector<std::size_t> variant_counts(sk.mixtures.size());
      for (std::size_t site = 0; site < sk.mixtures.size(); ++site)
        variant_counts[site] = sk.mixtures[site].unitaries.size();
      try {
        bplan.emplace(tmpl.compile_batched(site_node, batch_capacity, nullptr, variant_counts));
      } catch (const MemoryOutError&) {
        // Batch-aware workspace budget exceeded; per-sample replay still fits.
      }
    }
  }
};

// One trajectory through the plan-replay path. Draws the same RNG stream in
// the same order as sample_once, so both paths produce identical estimates.
double sample_once_plan(const TnSkeleton& sk, const TnPlanContext& ctx,
                        AmplitudeTemplate::Session& session,
                        std::vector<AmplitudeTemplate::Substitution>& subs,
                        std::mt19937_64& rng) {
  for (std::size_t site = 0; site < sk.mixtures.size(); ++site) {
    const std::size_t k = sample_index(sk.mixtures[site].probs, rng);
    subs[site] = {ctx.site_node[site], &ctx.site_tensors[site][k]};
  }
  return std::norm(session.evaluate(subs));
}

// A whole chunk of trajectories in one batched plan traversal: the per-site
// draws happen sample-by-sample in the same RNG order as sample_once_plan,
// then all sampled networks execute at once (shared gates broadcast,
// repeated unitary draws deduplicated). Each sample's amplitude is
// bit-identical to the per-sample replay.
void sample_chunk_plan(const TnSkeleton& sk, const TnPlanContext& ctx,
                       AmplitudeTemplate::BatchedSession& session,
                       std::vector<const tsr::Tensor*>& ptrs, std::vector<cplx>& amps,
                       std::mt19937_64& rng, std::span<double> out) {
  const std::size_t num_sites = sk.mixtures.size();
  const std::size_t k = out.size();
  for (std::size_t t = 0; t < k; ++t)
    for (std::size_t site = 0; site < num_sites; ++site) {
      const std::size_t j = sample_index(sk.mixtures[site].probs, rng);
      ptrs[t * num_sites + site] = &ctx.site_tensors[site][j];
    }
  session.evaluate(std::span(ptrs).first(k * num_sites), k, amps);
  for (std::size_t t = 0; t < k; ++t) out[t] = std::norm(amps[t]);
}

// Plan reuse applies when the contraction backend runs and the gate list is
// shape-stable per sample (simplify would cancel differently per draw).
bool plan_replay_applies(const EvalOptions& eval, int n) {
  return uses_tensor_network(eval, n) && !eval.simplify;
}

}  // namespace

sim::TrajectoryResult trajectories_tn(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                      std::uint64_t v_bits, std::size_t samples,
                                      std::mt19937_64& rng, const EvalOptions& eval) {
  la::detail::require(samples > 0, "trajectories_tn: need at least one sample");
  const int n = nc.num_qubits();
  TnSkeleton sk = build_skeleton(nc);

  // Batch granularity of the streaming overload; mirrors the parallel
  // engine's default chunk size.
  constexpr std::size_t kStreamBatch = 32;

  std::optional<TnPlanContext> ctx;
  std::optional<AmplitudeTemplate::Session> session;
  std::vector<AmplitudeTemplate::Substitution> subs(sk.mixtures.size());
  std::vector<qc::Gate> gates;
  if (plan_replay_applies(eval, n)) {
    ctx.emplace(nc, sk, psi_bits, v_bits, eval, std::min(kStreamBatch, samples));
    if (!ctx->bplan) session.emplace(ctx->tmpl.session());
  } else {
    gates = sk.gates;
  }

  double sum = 0.0, sum_sq = 0.0;
  if (ctx && ctx->bplan) {
    const std::size_t cap = ctx->bplan->capacity();
    AmplitudeTemplate::BatchedSession batched(ctx->tmpl, *ctx->bplan);
    std::vector<const tsr::Tensor*> ptrs(cap * sk.mixtures.size());
    std::vector<cplx> amps(cap);
    std::vector<double> values(cap);
    for (std::size_t s = 0; s < samples; s += cap) {
      const std::size_t k = std::min(cap, samples - s);
      sample_chunk_plan(sk, *ctx, batched, ptrs, amps, rng,
                        std::span<double>(values.data(), k));
      for (std::size_t t = 0; t < k; ++t) {
        sum += values[t];
        sum_sq += values[t] * values[t];
      }
    }
  } else {
    for (std::size_t s = 0; s < samples; ++s) {
      const double f = ctx ? sample_once_plan(sk, *ctx, *session, subs, rng)
                           : sample_once(sk, gates, n, psi_bits, v_bits, rng, eval);
      sum += f;
      sum_sq += f * f;
    }
  }

  sim::TrajectoryResult out;
  out.samples = samples;
  out.mean = sum / static_cast<double>(samples);
  if (samples > 1) {
    const double var =
        (sum_sq - sum * sum / static_cast<double>(samples)) / static_cast<double>(samples - 1);
    out.std_error = std::sqrt(std::max(0.0, var) / static_cast<double>(samples));
  }
  return out;
}

sim::TrajectoryResult trajectories_tn(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                      std::uint64_t v_bits, std::size_t samples,
                                      std::uint64_t seed, const sim::ParallelOptions& popts,
                                      const EvalOptions& eval) {
  const int n = nc.num_qubits();
  const TnSkeleton sk = build_skeleton(nc);

  if (plan_replay_applies(eval, n)) {
    // Shared immutable plans; per-worker sessions (workspace + input table)
    // and substitution buffers, so replays never contend. Whole RNG chunks
    // evaluate through one batched traversal when the batched plan fits the
    // workspace budget; either way the estimate is bit-identical.
    const std::size_t cap = std::min(std::max<std::size_t>(popts.chunk_size, 1), samples);
    const TnPlanContext ctx(nc, sk, psi_bits, v_bits, eval, cap);
    if (ctx.bplan) {
      auto make_sampler = [&](std::size_t) -> sim::ChunkSampler {
        auto session =
            std::make_shared<AmplitudeTemplate::BatchedSession>(ctx.tmpl, *ctx.bplan);
        auto ptrs =
            std::make_shared<std::vector<const tsr::Tensor*>>(cap * sk.mixtures.size());
        auto amps = std::make_shared<std::vector<cplx>>(cap);
        return [&sk, &ctx, session, ptrs, amps](std::mt19937_64& rng, std::span<double> out) {
          sample_chunk_plan(sk, ctx, *session, *ptrs, *amps, rng, out);
        };
      };
      return sim::run_trajectories_chunked(samples, seed, make_sampler, popts);
    }
    auto make_sampler = [&](std::size_t) -> sim::Sampler {
      auto session = std::make_shared<AmplitudeTemplate::Session>(ctx.tmpl.session());
      auto subs = std::make_shared<std::vector<AmplitudeTemplate::Substitution>>(
          sk.mixtures.size());
      return [&sk, &ctx, session, subs](std::mt19937_64& rng) {
        return sample_once_plan(sk, ctx, *session, *subs, rng);
      };
    };
    return sim::run_trajectories(samples, seed, make_sampler, popts);
  }

  auto make_sampler = [&](std::size_t) -> sim::Sampler {
    // Worker-private scratch: the gate list the sampled unitaries land in.
    auto gates = std::make_shared<std::vector<qc::Gate>>(sk.gates);
    return [&sk, gates, n, psi_bits, v_bits, eval](std::mt19937_64& rng) {
      return sample_once(sk, *gates, n, psi_bits, v_bits, rng, eval);
    };
  };
  return sim::run_trajectories(samples, seed, make_sampler, popts);
}

}  // namespace noisim::core
