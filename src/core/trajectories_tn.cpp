#include "core/trajectories_tn.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <span>
#include <string>

namespace noisim::core {

namespace {

// Skeleton gate list with one identity placeholder per noise site, plus the
// per-site unitary mixtures. Built once per estimate and shared read-only by
// all workers (each worker samples into its own copy of `gates`).
struct TnSkeleton {
  std::vector<qc::Gate> gates;
  std::vector<std::size_t> site_gate_index;
  std::vector<ch::UnitaryMixture> mixtures;
};

// Mixture probabilities may deviate from sum 1 by roundoff (tiny Kraus
// terms are dropped by unitary_mixture, completeness is validated to 1e-9);
// anything past this is an unnormalized channel, not noise.
constexpr double kMixtureSumTol = 1e-6;

TnSkeleton build_skeleton(const ch::NoisyCircuit& nc) {
  TnSkeleton sk;
  for (const ch::Op& op : nc.ops()) {
    if (const qc::Gate* g = std::get_if<qc::Gate>(&op)) {
      sk.gates.push_back(*g);
      continue;
    }
    const ch::NoiseOp& noise = std::get<ch::NoiseOp>(op);
    auto mix = noise.channel.unitary_mixture();
    la::detail::require(mix.has_value(),
                        "trajectories_tn: channel is not a mixture of unitaries");
    // Validate and normalize the mixture up front: the inverse-CDF sampler
    // below assumes a probability distribution. An unnormalized mixture
    // (e.g. a non-CPTP Kraus set) used to fall through sample_index and
    // silently sample the LAST unitary with the whole missing mass.
    la::detail::require(!mix->probs.empty(),
                        "trajectories_tn: channel has no unitary component");
    double sum = 0.0;
    for (const double p : mix->probs) {
      la::detail::require(p >= 0.0, "trajectories_tn: negative mixture probability");
      sum += p;
    }
    if (std::abs(sum - 1.0) > kMixtureSumTol)
      la::detail::fail("trajectories_tn: mixture probabilities sum to " +
                       std::to_string(sum) + ", not 1 (unnormalized channel)");
    for (double& p : mix->probs) p /= sum;
    sk.site_gate_index.push_back(sk.gates.size());
    if (noise.num_qubits() == 1)
      sk.gates.push_back(qc::u1q(noise.qubit, la::Matrix::identity(2)));
    else
      sk.gates.push_back(qc::u2q(noise.qubit, noise.qubit2, la::Matrix::identity(4)));
    sk.mixtures.push_back(std::move(*mix));
  }
  return sk;
}

// Inverse-CDF draw from a normalized probability vector. Unlike
// std::discrete_distribution, this carries no state across calls, so the
// engine's per-chunk RNG reseeding fully determines every draw. The
// skeleton builder normalizes every mixture, so running past the last
// bucket can only be top-of-CDF roundoff (u within a few ulp of 1);
// anything bigger means the distribution is corrupted and fails loudly
// instead of silently returning the last index.
std::size_t sample_index(const std::vector<double>& probs, std::mt19937_64& rng) {
  la::detail::require(!probs.empty(), "sample_index: empty probability vector");
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  const double u = unif(rng);
  double cumulative = 0.0;
  for (std::size_t k = 0; k < probs.size(); ++k) {
    cumulative += probs[k];
    if (u < cumulative) return k;
  }
  if (u >= cumulative + 1e-12)
    la::detail::fail("sample_index: cumulative probability " + std::to_string(cumulative) +
                     " leaves the draw uncovered (unnormalized distribution)");
  return probs.size() - 1;  // top-of-CDF rounding only
}

// One trajectory through the per-call-planned path: sample a unitary per
// site into `gates` (a worker-private copy) and evaluate the resulting
// noiseless amplitude from scratch.
double sample_once(const TnSkeleton& sk, std::vector<qc::Gate>& gates, int n,
                   std::uint64_t psi_bits, std::uint64_t v_bits, std::mt19937_64& rng,
                   const EvalOptions& eval) {
  for (std::size_t site = 0; site < sk.mixtures.size(); ++site) {
    const std::size_t k = sample_index(sk.mixtures[site].probs, rng);
    gates[sk.site_gate_index[site]].custom = sk.mixtures[site].unitaries[k];
  }
  return std::norm(amplitude(n, gates, psi_bits, v_bits, false, eval));
}

// Plan-replay machinery for the tensor-network backend: every sample shares
// the skeleton's topology, so the contraction plan is compiled once and
// replayed per trajectory with only the sampled site tensors substituted.
// When `batch_capacity` > 1 a batched replay is compiled on top, executing
// up to that many samples per plan traversal (chunk-at-a-time sampling);
// if the batched arena exceeds the workspace budget the per-sample path
// fits, the context silently falls back to sample-at-a-time replay, which
// produces bit-identical estimates.
struct TnPlanContext {
  AmplitudeTemplate tmpl;
  std::vector<std::size_t> site_node;
  // Tensorized mixture unitaries per (site, mixture index) -- sampling then
  // allocates nothing per trajectory.
  std::vector<std::vector<tsr::Tensor>> site_tensors;
  std::optional<tn::BatchedPlan> bplan;

  TnPlanContext(const ch::NoisyCircuit& nc, const TnSkeleton& sk, std::uint64_t psi_bits,
                std::uint64_t v_bits, const EvalOptions& eval, std::size_t batch_capacity)
      : tmpl(nc.num_qubits(), sk.gates, psi_bits, v_bits, /*conjugate=*/false, eval) {
    site_node.reserve(sk.mixtures.size());
    site_tensors.reserve(sk.mixtures.size());
    for (std::size_t site = 0; site < sk.mixtures.size(); ++site) {
      site_node.push_back(tmpl.node_of_gate(sk.site_gate_index[site]));
      const qc::Gate& g = sk.gates[sk.site_gate_index[site]];
      std::vector<tsr::Tensor> tensors;
      tensors.reserve(sk.mixtures[site].unitaries.size());
      for (const la::Matrix& u : sk.mixtures[site].unitaries)
        tensors.push_back(gate_matrix_tensor(u, g.num_qubits()));
      site_tensors.push_back(std::move(tensors));
    }
    if (batch_capacity > 1) {
      // Each site draws from its fixed unitary mixture, which bounds every
      // step's distinct rows by the mixture-size product of its cone.
      std::vector<std::size_t> variant_counts(sk.mixtures.size());
      for (std::size_t site = 0; site < sk.mixtures.size(); ++site)
        variant_counts[site] = sk.mixtures[site].unitaries.size();
      try {
        bplan.emplace(tmpl.compile_batched(site_node, batch_capacity, nullptr, variant_counts));
      } catch (const MemoryOutError&) {
        // Batch-aware workspace budget exceeded; per-sample replay still fits.
      }
    }
  }
};

// One trajectory through the plan-replay path. Draws the same RNG stream in
// the same order as sample_once, so both paths produce identical estimates.
double sample_once_plan(const TnSkeleton& sk, const TnPlanContext& ctx,
                        AmplitudeTemplate::Session& session,
                        std::vector<AmplitudeTemplate::Substitution>& subs,
                        std::mt19937_64& rng) {
  for (std::size_t site = 0; site < sk.mixtures.size(); ++site) {
    const std::size_t k = sample_index(sk.mixtures[site].probs, rng);
    subs[site] = {ctx.site_node[site], &ctx.site_tensors[site][k]};
  }
  return std::norm(session.evaluate(subs));
}

// A whole chunk of trajectories in one batched plan traversal: the per-site
// draws happen sample-by-sample in the same RNG order as sample_once_plan,
// then all sampled networks execute at once (shared gates broadcast,
// repeated unitary draws deduplicated). Each sample's amplitude is
// bit-identical to the per-sample replay.
void sample_chunk_plan(const TnSkeleton& sk, const TnPlanContext& ctx,
                       AmplitudeTemplate::BatchedSession& session,
                       std::vector<const tsr::Tensor*>& ptrs, std::vector<cplx>& amps,
                       std::mt19937_64& rng, std::span<double> out) {
  const std::size_t num_sites = sk.mixtures.size();
  const std::size_t k = out.size();
  for (std::size_t t = 0; t < k; ++t)
    for (std::size_t site = 0; site < num_sites; ++site) {
      const std::size_t j = sample_index(sk.mixtures[site].probs, rng);
      ptrs[t * num_sites + site] = &ctx.site_tensors[site][j];
    }
  session.evaluate(std::span(ptrs).first(k * num_sites), k, amps);
  for (std::size_t t = 0; t < k; ++t) out[t] = std::norm(amps[t]);
}

// Plan reuse applies when the contraction backend runs and the gate list is
// shape-stable per sample (simplify would cancel differently per draw).
bool plan_replay_applies(const EvalOptions& eval, int n) {
  return uses_tensor_network(eval, n) && !eval.simplify;
}

}  // namespace

bool trajectories_tn_eligible(const ch::NoisyCircuit& nc) {
  // Mirrors build_skeleton's channel validation without throwing.
  for (const ch::Op& op : nc.ops()) {
    const ch::NoiseOp* noise = std::get_if<ch::NoiseOp>(&op);
    if (!noise) continue;
    const auto mix = noise->channel.unitary_mixture();
    if (!mix.has_value() || mix->probs.empty()) return false;
    double sum = 0.0;
    for (const double p : mix->probs) {
      if (p < 0.0) return false;
      sum += p;
    }
    if (std::abs(sum - 1.0) > kMixtureSumTol) return false;
  }
  return true;
}

sim::TrajectoryResult trajectories_tn(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                      std::uint64_t v_bits, std::size_t samples,
                                      std::mt19937_64& rng, const EvalOptions& eval) {
  // Zero samples is a well-defined empty estimate; in particular it must
  // not reach the plan context below (a capacity-0 batched plan).
  if (samples == 0) return {};
  const int n = nc.num_qubits();
  TnSkeleton sk = build_skeleton(nc);

  // Batch granularity of the streaming overload; mirrors the parallel
  // engine's default chunk size.
  constexpr std::size_t kStreamBatch = 32;

  std::optional<TnPlanContext> ctx;
  std::optional<AmplitudeTemplate::Session> session;
  std::vector<AmplitudeTemplate::Substitution> subs(sk.mixtures.size());
  std::vector<qc::Gate> gates;
  if (plan_replay_applies(eval, n)) {
    ctx.emplace(nc, sk, psi_bits, v_bits, eval, std::min(kStreamBatch, samples));
    if (!ctx->bplan) session.emplace(ctx->tmpl.session());
  } else {
    gates = sk.gates;
  }

  double sum = 0.0, sum_sq = 0.0;
  if (ctx && ctx->bplan) {
    const std::size_t cap = ctx->bplan->capacity();
    AmplitudeTemplate::BatchedSession batched(ctx->tmpl, *ctx->bplan);
    std::vector<const tsr::Tensor*> ptrs(cap * sk.mixtures.size());
    std::vector<cplx> amps(cap);
    std::vector<double> values(cap);
    for (std::size_t s = 0; s < samples; s += cap) {
      const std::size_t k = std::min(cap, samples - s);
      sample_chunk_plan(sk, *ctx, batched, ptrs, amps, rng,
                        std::span<double>(values.data(), k));
      for (std::size_t t = 0; t < k; ++t) {
        sum += values[t];
        sum_sq += values[t] * values[t];
      }
    }
  } else {
    for (std::size_t s = 0; s < samples; ++s) {
      const double f = ctx ? sample_once_plan(sk, *ctx, *session, subs, rng)
                           : sample_once(sk, gates, n, psi_bits, v_bits, rng, eval);
      sum += f;
      sum_sq += f * f;
    }
  }

  sim::TrajectoryResult out;
  out.samples = samples;
  out.mean = sum / static_cast<double>(samples);
  if (samples > 1) {
    const double var =
        (sum_sq - sum * sum / static_cast<double>(samples)) / static_cast<double>(samples - 1);
    out.std_error = std::sqrt(std::max(0.0, var) / static_cast<double>(samples));
  }
  return out;
}

sim::TrajectoryResult trajectories_tn(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                      std::uint64_t v_bits, std::size_t samples,
                                      std::uint64_t seed, const sim::ParallelOptions& popts,
                                      const EvalOptions& eval) {
  // Guard before the plan context: samples == 0 used to compile a
  // capacity-0 batched plan through std::min(chunk_size, samples).
  if (samples == 0) return {};
  const int n = nc.num_qubits();
  const TnSkeleton sk = build_skeleton(nc);

  if (plan_replay_applies(eval, n)) {
    // Shared immutable plans; per-worker sessions (workspace + input table)
    // and substitution buffers, so replays never contend. Whole RNG chunks
    // evaluate through one batched traversal when the batched plan fits the
    // workspace budget; either way the estimate is bit-identical.
    const std::size_t cap = std::min(std::max<std::size_t>(popts.chunk_size, 1), samples);
    const TnPlanContext ctx(nc, sk, psi_bits, v_bits, eval, cap);
    if (ctx.bplan) {
      auto make_sampler = [&](std::size_t) -> sim::ChunkSampler {
        auto session =
            std::make_shared<AmplitudeTemplate::BatchedSession>(ctx.tmpl, *ctx.bplan);
        auto ptrs =
            std::make_shared<std::vector<const tsr::Tensor*>>(cap * sk.mixtures.size());
        auto amps = std::make_shared<std::vector<cplx>>(cap);
        return [&sk, &ctx, session, ptrs, amps](std::mt19937_64& rng, std::span<double> out) {
          sample_chunk_plan(sk, ctx, *session, *ptrs, *amps, rng, out);
        };
      };
      return sim::run_trajectories_chunked(samples, seed, make_sampler, popts);
    }
    auto make_sampler = [&](std::size_t) -> sim::Sampler {
      auto session = std::make_shared<AmplitudeTemplate::Session>(ctx.tmpl.session());
      auto subs = std::make_shared<std::vector<AmplitudeTemplate::Substitution>>(
          sk.mixtures.size());
      return [&sk, &ctx, session, subs](std::mt19937_64& rng) {
        return sample_once_plan(sk, ctx, *session, *subs, rng);
      };
    };
    return sim::run_trajectories(samples, seed, make_sampler, popts);
  }

  auto make_sampler = [&](std::size_t) -> sim::Sampler {
    // Worker-private scratch: the gate list the sampled unitaries land in.
    auto gates = std::make_shared<std::vector<qc::Gate>>(sk.gates);
    return [&sk, gates, n, psi_bits, v_bits, eval](std::mt19937_64& rng) {
      return sample_once(sk, *gates, n, psi_bits, v_bits, rng, eval);
    };
  };
  return sim::run_trajectories(samples, seed, make_sampler, popts);
}

std::vector<sim::TrajectoryResult> trajectories_tn_outputs(
    const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
    std::span<const std::uint64_t> v_bits, std::size_t samples, std::uint64_t seed,
    const sim::ParallelOptions& popts, const EvalOptions& eval) {
  const std::size_t K = v_bits.size();
  if (K == 0) return {};
  if (samples == 0) return std::vector<sim::TrajectoryResult>(K);
  const int n = nc.num_qubits();
  const std::size_t nn = static_cast<std::size_t>(n);
  const TnSkeleton sk = build_skeleton(nc);
  const std::size_t num_sites = sk.mixtures.size();

  if (plan_replay_applies(eval, n)) {
    // Template + per-site tensors (batch_capacity 1: the term-batched plan
    // of the single-output path is replaced by the output-batched plan
    // below). The template's caps are placeholders -- always substituted.
    const TnPlanContext ctx(nc, sk, psi_bits, v_bits[0], eval, /*batch_capacity=*/1);

    // Shared read-only cap table: ptr identity drives row sharing across
    // bitstrings that agree on a qubit.
    std::vector<const tsr::Tensor*> caps_of_output(K * nn);
    for (std::size_t o = 0; o < K; ++o)
      ctx.tmpl.fill_output_caps(v_bits[o], std::span(caps_of_output).subspan(o * nn, nn));

    constexpr std::size_t kOutputBatch = 32;
    const std::size_t ocap = std::min(K, kOutputBatch);
    std::optional<tn::BatchedPlan> obplan;
    try {
      obplan.emplace(ctx.tmpl.compile_batched_outputs(ocap));
      if (!output_batch_worthwhile(*obplan)) obplan.reset();
    } catch (const MemoryOutError&) {
      // Batch-aware workspace budget exceeded; the per-output session
      // replay below fits and produces bit-identical estimates.
    }

    if (obplan) {
      auto make_sampler = [&](std::size_t) -> sim::MultiChunkSampler {
        auto session =
            std::make_shared<AmplitudeTemplate::BatchedSession>(ctx.tmpl, *obplan);
        auto subs = std::make_shared<std::vector<AmplitudeTemplate::Substitution>>(num_sites);
        auto ptrs = std::make_shared<std::vector<const tsr::Tensor*>>(ocap * nn);
        auto amps = std::make_shared<std::vector<cplx>>(ocap);
        return [&sk, &ctx, &caps_of_output, K, nn, ocap, num_sites, session, subs, ptrs,
                amps](std::mt19937_64& rng, std::size_t count, std::span<double> out) {
          for (std::size_t s = 0; s < count; ++s) {
            // One draw set per trajectory, in sample order -- the same RNG
            // consumption as every single-output path.
            for (std::size_t site = 0; site < num_sites; ++site) {
              const std::size_t j = sample_index(sk.mixtures[site].probs, rng);
              (*subs)[site] = {ctx.site_node[site], &ctx.site_tensors[site][j]};
            }
            for (std::size_t o0 = 0; o0 < K; o0 += ocap) {
              const std::size_t k = std::min(ocap, K - o0);
              std::copy(caps_of_output.begin() + static_cast<std::ptrdiff_t>(o0 * nn),
                        caps_of_output.begin() + static_cast<std::ptrdiff_t>((o0 + k) * nn),
                        ptrs->begin());
              session->evaluate(*subs, std::span(*ptrs).first(k * nn), k,
                                std::span<cplx>(*amps));
              for (std::size_t t = 0; t < k; ++t)
                out[s * K + o0 + t] = std::norm((*amps)[t]);
            }
          }
        };
      };
      return sim::run_trajectories_multi(samples, K, seed, make_sampler, popts);
    }

    auto make_sampler = [&](std::size_t) -> sim::MultiChunkSampler {
      auto session = std::make_shared<AmplitudeTemplate::Session>(ctx.tmpl.session());
      auto subs =
          std::make_shared<std::vector<AmplitudeTemplate::Substitution>>(num_sites + nn);
      return [&sk, &ctx, &caps_of_output, K, nn, num_sites, session, subs](
                 std::mt19937_64& rng, std::size_t count, std::span<double> out) {
        for (std::size_t s = 0; s < count; ++s) {
          for (std::size_t site = 0; site < num_sites; ++site) {
            const std::size_t j = sample_index(sk.mixtures[site].probs, rng);
            (*subs)[site] = {ctx.site_node[site], &ctx.site_tensors[site][j]};
          }
          for (std::size_t o = 0; o < K; ++o) {
            for (std::size_t q = 0; q < nn; ++q)
              (*subs)[num_sites + q] = {ctx.tmpl.node_of_output_cap(static_cast<int>(q)),
                                        caps_of_output[o * nn + q]};
            out[s * K + o] = std::norm(session->evaluate(*subs));
          }
        }
      };
    };
    return sim::run_trajectories_multi(samples, K, seed, make_sampler, popts);
  }

  // Non-replay backends: sample the gate list once per trajectory and score
  // every bitstring through batch_amplitudes (the state-vector backend runs
  // one evolution per sample instead of K).
  auto make_sampler = [&](std::size_t) -> sim::MultiChunkSampler {
    auto gates = std::make_shared<std::vector<qc::Gate>>(sk.gates);
    return [&sk, gates, n, psi_bits, v_bits, K, eval](std::mt19937_64& rng,
                                                      std::size_t count,
                                                      std::span<double> out) {
      for (std::size_t s = 0; s < count; ++s) {
        for (std::size_t site = 0; site < sk.mixtures.size(); ++site) {
          const std::size_t j = sample_index(sk.mixtures[site].probs, rng);
          (*gates)[sk.site_gate_index[site]].custom = sk.mixtures[site].unitaries[j];
        }
        const std::vector<cplx> amps =
            batch_amplitudes(n, *gates, psi_bits, v_bits, /*conjugate=*/false, eval);
        for (std::size_t o = 0; o < K; ++o) out[s * K + o] = std::norm(amps[o]);
      }
    };
  };
  return sim::run_trajectories_multi(samples, K, seed, make_sampler, popts);
}

std::vector<sim::TrajectoryResult> trajectories_tn_sweep(
    const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
    std::span<const std::uint64_t> v_bits, std::size_t samples, std::uint64_t seed,
    const sim::ParallelOptions& popts, const EvalOptions& eval,
    std::size_t shard_outputs) {
  const std::size_t K = v_bits.size();
  if (K == 0) return {};
  if (samples == 0) return std::vector<sim::TrajectoryResult>(K);
  const int n = nc.num_qubits();
  const std::size_t nn = static_cast<std::size_t>(n);
  const TnSkeleton sk = build_skeleton(nc);
  const std::size_t num_sites = sk.mixtures.size();
  constexpr std::size_t kOutputBatch = 32;

  if (plan_replay_applies(eval, n)) {
    const std::size_t shard = std::min(K, shard_outputs > 0 ? shard_outputs : kOutputBatch);
    const TnPlanContext ctx(nc, sk, psi_bits, v_bits[0], eval, /*batch_capacity=*/1);

    std::vector<const tsr::Tensor*> caps_of_output(K * nn);
    for (std::size_t o = 0; o < K; ++o)
      ctx.tmpl.fill_output_caps(v_bits[o], std::span(caps_of_output).subspan(o * nn, nn));

    // One traversal covers up to the output-batched width; shards wider
    // than it walk sub-chunks, narrower ones just underfill the plan.
    const std::size_t ocap = std::min(shard, kOutputBatch);
    std::optional<tn::BatchedPlan> obplan;
    try {
      obplan.emplace(ctx.tmpl.compile_batched_outputs(ocap));
      if (!output_batch_worthwhile(*obplan)) obplan.reset();
    } catch (const MemoryOutError&) {
      // Batch-aware workspace budget exceeded; the per-output session
      // replay below fits and produces bit-identical estimates.
    }

    if (obplan) {
      auto make_sampler = [&](std::size_t) -> sim::ShardChunkSampler {
        auto session =
            std::make_shared<AmplitudeTemplate::BatchedSession>(ctx.tmpl, *obplan);
        auto subs = std::make_shared<std::vector<AmplitudeTemplate::Substitution>>(num_sites);
        auto ptrs = std::make_shared<std::vector<const tsr::Tensor*>>(ocap * nn);
        auto amps = std::make_shared<std::vector<cplx>>(ocap);
        return [&sk, &ctx, &caps_of_output, nn, ocap, num_sites, session, subs, ptrs, amps](
                   std::mt19937_64& rng, std::size_t shard_begin, std::size_t shard_count,
                   std::size_t count, std::span<double> out) {
          for (std::size_t s = 0; s < count; ++s) {
            // One draw set per trajectory, in sample order -- the same RNG
            // consumption as every single-output path.
            for (std::size_t site = 0; site < num_sites; ++site) {
              const std::size_t j = sample_index(sk.mixtures[site].probs, rng);
              (*subs)[site] = {ctx.site_node[site], &ctx.site_tensors[site][j]};
            }
            for (std::size_t o0 = 0; o0 < shard_count; o0 += ocap) {
              const std::size_t k = std::min(ocap, shard_count - o0);
              const std::size_t cap0 = (shard_begin + o0) * nn;
              std::copy(caps_of_output.begin() + static_cast<std::ptrdiff_t>(cap0),
                        caps_of_output.begin() + static_cast<std::ptrdiff_t>(cap0 + k * nn),
                        ptrs->begin());
              session->evaluate(*subs, std::span(*ptrs).first(k * nn), k,
                                std::span<cplx>(*amps));
              for (std::size_t t = 0; t < k; ++t)
                out[s * shard_count + o0 + t] = std::norm((*amps)[t]);
            }
          }
        };
      };
      return sim::run_trajectories_sharded(samples, K, shard, seed, make_sampler, popts);
    }

    auto make_sampler = [&](std::size_t) -> sim::ShardChunkSampler {
      auto session = std::make_shared<AmplitudeTemplate::Session>(ctx.tmpl.session());
      auto subs =
          std::make_shared<std::vector<AmplitudeTemplate::Substitution>>(num_sites + nn);
      return [&sk, &ctx, &caps_of_output, nn, num_sites, session, subs](
                 std::mt19937_64& rng, std::size_t shard_begin, std::size_t shard_count,
                 std::size_t count, std::span<double> out) {
        for (std::size_t s = 0; s < count; ++s) {
          for (std::size_t site = 0; site < num_sites; ++site) {
            const std::size_t j = sample_index(sk.mixtures[site].probs, rng);
            (*subs)[site] = {ctx.site_node[site], &ctx.site_tensors[site][j]};
          }
          for (std::size_t o = 0; o < shard_count; ++o) {
            for (std::size_t q = 0; q < nn; ++q)
              (*subs)[num_sites + q] = {ctx.tmpl.node_of_output_cap(static_cast<int>(q)),
                                        caps_of_output[(shard_begin + o) * nn + q]};
            out[s * shard_count + o] = std::norm(session->evaluate(*subs));
          }
        }
      };
    };
    return sim::run_trajectories_sharded(samples, K, shard, seed, make_sampler, popts);
  }

  // Non-replay backends: one evolution scores a whole shard, so the default
  // shard is all K (sharding would repeat the evolution per shard; explicit
  // shards stay bit-identical, just costlier).
  const std::size_t shard = std::min(K, shard_outputs > 0 ? shard_outputs : K);
  auto make_sampler = [&](std::size_t) -> sim::ShardChunkSampler {
    auto gates = std::make_shared<std::vector<qc::Gate>>(sk.gates);
    return [&sk, gates, n, psi_bits, v_bits, eval](std::mt19937_64& rng,
                                                   std::size_t shard_begin,
                                                   std::size_t shard_count,
                                                   std::size_t count, std::span<double> out) {
      for (std::size_t s = 0; s < count; ++s) {
        for (std::size_t site = 0; site < sk.mixtures.size(); ++site) {
          const std::size_t j = sample_index(sk.mixtures[site].probs, rng);
          (*gates)[sk.site_gate_index[site]].custom = sk.mixtures[site].unitaries[j];
        }
        const std::vector<cplx> amps =
            batch_amplitudes(n, *gates, psi_bits, v_bits.subspan(shard_begin, shard_count),
                             /*conjugate=*/false, eval);
        for (std::size_t o = 0; o < shard_count; ++o)
          out[s * shard_count + o] = std::norm(amps[o]);
      }
    };
  };
  return sim::run_trajectories_sharded(samples, K, shard, seed, make_sampler, popts);
}

}  // namespace noisim::core
