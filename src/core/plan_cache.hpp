#pragma once
// Session-level plan/template cache for Algorithm-1 sweeps.
//
// Repeated approximate_fidelity / approximate_fidelity_outputs / xeb_sweep
// calls over the same circuit skeleton (level ladders, accuracy sweeps, XEB
// batches arriving over time) recompile identical AmplitudeTemplates and
// batched plans on every call: the plan is a pure function of the network
// topology and the contraction options, so all of that work is cacheable.
// A PlanCache memoizes both layers:
//
//  * template entries -- one compiled AmplitudeTemplate per distinct
//    (qubit count, skeleton gate list, |psi>/<v| basis labels, conjugation,
//    resolved tn::ContractOptions) key; the key serializes every input that
//    enters plan compilation byte for byte (gate matrices included), so two
//    keys compare equal exactly when the compiled plans would be identical
//    -- there is no hash-collision failure mode, lookups compare full keys;
//  * batched plans -- compiled from a cached template's plan and memoized
//    inside its entry, keyed on the varying-slot layout, batch capacity,
//    variant counts, per-term deviation bound, and unconstrained flags.
//    A different slot layout or capacity (e.g. another approximation level
//    or batch_terms) misses and compiles its own plan.
//
// Replaying a cached plan is bit-identical to compiling it fresh (plan
// determinism: equal topologies compile to equal fingerprints), so results
// with a cache attached equal the cache-free results bit for bit.
//
// Thread safety: all PlanCache methods are safe to call concurrently; the
// index is mutex-protected and entries are immutable-after-build except for
// their internal batched-plan memo (itself mutex-protected). Misses compile
// OUTSIDE the cache lock, so two threads racing on the same key may both
// compile; the first insert wins and the loser adopts the winner's entry
// (wasted work, never wrong). Eviction is LRU over template entries; an
// evicted entry stays alive for callers still holding its shared_ptr.
// Entries must not outlive the cache that handed them out.

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>

#include "core/circuit_network.hpp"
#include "support/mutex.hpp"

namespace noisim::core {

class PlanCache {
 public:
  /// `max_entries` bounds the number of RESIDENT template entries (each
  /// with its batched-plan memo); least-recently-used entries are evicted
  /// past the bound. Must be >= 1.
  explicit PlanCache(std::size_t max_entries = 64);

  /// One cached unit: a compiled template plus the batched plans compiled
  /// from its plan. Handed out as shared_ptr<const Entry>; the template is
  /// immutable and the batched memo is internally synchronized, so an entry
  /// may be used from many threads at once.
  class Entry {
   public:
    const AmplitudeTemplate& tmpl() const { return tmpl_; }

    /// Memoized compile_batched: returns the plan cached under `key`, or
    /// runs `compile` and caches its result. `hit` (optional) reports
    /// whether the plan came from the memo; the owning cache's counters are
    /// updated either way. If `compile` throws (e.g. MemoryOutError from a
    /// batch-aware workspace budget) nothing is cached and the exception
    /// propagates -- the next lookup with the same key retries. The memo is
    /// bounded (kMaxBatchedPlans distinct keys; compiled plans are large):
    /// inserting past the bound resets it, so a pathological stream of
    /// distinct capacities recompiles instead of growing without limit.
    std::shared_ptr<const tn::BatchedPlan> batched(
        const std::string& key, const std::function<tn::BatchedPlan()>& compile,
        bool* hit = nullptr) const EXCLUDES(mutex_);

    /// Bound on memoized batched plans per entry (a level ladder or a
    /// handful of K/batch_terms shapes fit comfortably; see batched()).
    static constexpr std::size_t kMaxBatchedPlans = 16;

   private:
    friend class PlanCache;
    Entry(PlanCache* owner, AmplitudeTemplate tmpl)
        : owner_(owner), tmpl_(std::move(tmpl)) {}

    PlanCache* const owner_;       // immutable back-pointer (counters only)
    const AmplitudeTemplate tmpl_;  // immutable after construction
    mutable support::Mutex mutex_;
    mutable std::unordered_map<std::string, std::shared_ptr<const tn::BatchedPlan>> plans_
        GUARDED_BY(mutex_);
  };

  /// Look up the template entry for `key`, building it with `build` on a
  /// miss (outside the cache lock). `hit` (optional) reports whether the
  /// template was served from the cache. If `build` throws, nothing is
  /// cached and the exception propagates.
  std::shared_ptr<const Entry> entry(const std::string& key,
                                     const std::function<AmplitudeTemplate()>& build,
                                     bool* hit = nullptr) EXCLUDES(mutex_);

  /// Cumulative lookup counters across template AND batched-plan lookups.
  std::size_t hits() const EXCLUDES(mutex_);
  std::size_t misses() const EXCLUDES(mutex_);
  /// Resident template entries / the eviction bound.
  std::size_t size() const EXCLUDES(mutex_);
  std::size_t max_entries() const { return max_entries_; }
  /// Drop every entry (in-flight shared_ptr holders keep theirs alive).
  /// Counters are preserved.
  void clear() EXCLUDES(mutex_);

  /// Serialize a template identity into a cache key: every input that
  /// enters AmplitudeTemplate construction, byte for byte (gate kinds,
  /// qubits, parameters, custom matrices, basis labels, conjugation, and
  /// the RESOLVED contraction options -- pass the gate list through
  /// resolved_contract_options first so sequence_for is materialized).
  static std::string template_key(int n, const std::vector<qc::Gate>& skeleton,
                                  std::uint64_t psi_bits, std::uint64_t v_bits,
                                  bool conjugate, const tn::ContractOptions& copts);

  /// Serialize a compile_batched parameter set into an Entry::batched key.
  static std::string batched_key(std::span<const std::size_t> varying_slots,
                                 std::size_t capacity,
                                 std::span<const std::size_t> variant_counts,
                                 std::size_t max_varied_per_term,
                                 std::span<const char> unconstrained);

 private:
  void note(bool hit) EXCLUDES(mutex_);

  mutable support::Mutex mutex_;
  const std::size_t max_entries_;  // immutable eviction bound
  std::size_t hits_ GUARDED_BY(mutex_) = 0;
  std::size_t misses_ GUARDED_BY(mutex_) = 0;
  // LRU order, most recently used first; index_ points into lru_.
  std::list<std::pair<std::string, std::shared_ptr<const Entry>>> lru_ GUARDED_BY(mutex_);
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, std::shared_ptr<const Entry>>>::iterator>
      index_ GUARDED_BY(mutex_);
};

}  // namespace noisim::core
