#include "core/bounds.hpp"

#include <cmath>

#include "linalg/complex.hpp"

namespace noisim::core {

double binomial(std::size_t n, std::size_t k) {
  if (k > n) return 0.0;
  if (k > n - k) k = n - k;
  double r = 1.0;
  for (std::size_t i = 0; i < k; ++i)
    r = r * static_cast<double>(n - i) / static_cast<double>(i + 1);
  return r;
}

double theorem1_error_bound(std::size_t num_noises, double p, std::size_t level) {
  la::detail::require(p >= 0.0, "theorem1_error_bound: negative noise rate");
  const auto n = num_noises;
  double kept = 0.0;
  for (std::size_t i = 0; i <= level && i <= n; ++i)
    kept += binomial(n, i) * std::pow(4.0 * p, static_cast<double>(i)) *
            std::pow(1.0 + 4.0 * p, static_cast<double>(n - i));
  const double total = std::pow(1.0 + 8.0 * p, static_cast<double>(n));
  return std::max(0.0, total - kept);
}

double level1_asymptotic_bound(std::size_t num_noises, double p) {
  const double n = static_cast<double>(num_noises);
  return 32.0 * std::sqrt(std::exp(1.0)) * n * n * p * p;
}

double contraction_count(std::size_t num_noises, std::size_t level) {
  double sum = 0.0;
  for (std::size_t i = 0; i <= level && i <= num_noises; ++i)
    sum += binomial(num_noises, i) * std::pow(3.0, static_cast<double>(i));
  return 2.0 * sum;
}

double trajectories_samples_calibrated(std::size_t num_noises, double p) {
  const double eps = theorem1_error_bound(num_noises, p, 1);
  la::detail::require(eps > 0.0, "trajectories_samples_calibrated: zero error target");
  return 1.0 / eps;
}

double trajectories_samples_hoeffding(std::size_t num_noises, double p, double failure_prob) {
  const double eps = theorem1_error_bound(num_noises, p, 1);
  la::detail::require(eps > 0.0 && failure_prob > 0.0 && failure_prob < 1.0,
                      "trajectories_samples_hoeffding: bad arguments");
  return std::log(2.0 / failure_prob) / (2.0 * eps * eps);
}

double generalized_error_bound(const std::vector<double>& dominant_norms,
                               const std::vector<double>& subdominant_norms,
                               std::size_t level) {
  la::detail::require(dominant_norms.size() == subdominant_norms.size(),
                      "generalized_error_bound: size mismatch");
  const std::size_t n = dominant_norms.size();
  // dp[i] = sum over subsets S of processed sites with |S| = i of
  //         prod_{s in S} b_s * prod_{s not in S} a_s.
  std::vector<double> dp{1.0};
  double total = 1.0;
  for (std::size_t s = 0; s < n; ++s) {
    const double a = dominant_norms[s], b = subdominant_norms[s];
    la::detail::require(a >= 0.0 && b >= 0.0, "generalized_error_bound: negative norm");
    total *= a + b;
    std::vector<double> next(dp.size() + 1, 0.0);
    for (std::size_t i = 0; i < dp.size(); ++i) {
      next[i] += dp[i] * a;
      next[i + 1] += dp[i] * b;
    }
    dp = std::move(next);
  }
  double kept = 0.0;
  for (std::size_t i = 0; i <= level && i < dp.size(); ++i) kept += dp[i];
  return std::max(0.0, total - kept);
}

}  // namespace noisim::core
