#pragma once
// Unified backend interface and the budget-driven simulate() front door.
//
// Every engine the repo grew -- exact density matrices, TDD contraction,
// Algorithm-1 tensor-network approximation, and the three trajectory
// baselines -- estimates the same quantity <v|E(|psi><psi|)|v>, but until
// this layer each had its own entry point, option struct, and failure mode,
// and callers had to know which one fits their circuit. core::simulate()
// removes that: it asks every eligible backend for a PLAN-TIME cost
// estimate (flops, transient memory, achievable error bound), picks the
// cheapest configuration that meets the caller's budgets, runs it, and
// escalates to the next candidate if the model was wrong (MemoryOutError /
// TimeoutError at run time).
//
// Estimation is cheap by construction: the Algorithm-1 adapters reuse the
// compiled tn::ContractionPlan's flop/arena accounting through the shared
// PlanCache (so estimating pre-warms exactly the template the run replays),
// trajectory adapters combine sim::hoeffding_samples with closed-form
// per-sample sweep models, and the TDD adapter walks the doubled network's
// sequential absorb order without building a single diagram.
//
// The selection never changes results: run() enters each engine's public
// entry point with the same options a direct caller would pass, so
// simulate()'s value is bit-identical to invoking the chosen backend
// directly with the reported config (a property the test suite asserts).

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "channels/noisy_circuit.hpp"
#include "core/approx.hpp"
#include "mps/mps.hpp"
#include "sim/parallel.hpp"

namespace noisim::core {

class PlanCache;

/// The engines simulate() arbitrates between. Enumeration order is the
/// tie-break priority on equal modeled cost: deterministic engines first
/// (their error bounds are certain), samplers last.
enum class BackendKind {
  Density,          ///< sim::exact_fidelity_mm (exact, 4^n memory)
  Tdd,              ///< tdd::exact_fidelity_tdd (exact, diagram-sized)
  TnApprox,         ///< core::approximate_fidelity (Algorithm 1, level ladder)
  TnTrajectories,   ///< core::trajectories_tn (unitary-mixture channels only)
  SvTrajectories,   ///< sim::trajectories_sv
  MpsTrajectories,  ///< mps::trajectories_mps (exact-bond regime only)
};

/// Stable display name ("density", "tdd", "tn-approx", ...).
const char* backend_name(BackendKind kind);

/// Budgets and knobs of one simulate() call. The defaults ask for a 1e-3
/// error bound within 1 GiB of transient complex elements and no deadline.
struct SimulateOptions {
  /// Largest acceptable error bound on the returned value. Deterministic
  /// backends must prove a bound <= this; trajectory backends size their
  /// sample count so the Hoeffding confidence half-width at failure_prob
  /// meets it. Must be positive and finite.
  double error_budget = 1e-3;
  /// Transient memory budget in complex elements (2^26 = 1 GiB). A backend
  /// whose modeled peak exceeds it is not considered. Must be nonzero.
  std::size_t memory_budget = std::size_t{1} << 26;
  /// Wall-clock budget in seconds; 0 disables. Rules out configurations
  /// whose modeled flops cannot finish in time and is threaded into the
  /// engines' own deadline checks (TN replay timeouts, TDD deadline).
  double deadline = 0.0;
  /// Confidence parameter of the trajectory backends' Hoeffding sizing:
  /// the returned half-width holds with probability 1 - failure_prob.
  double failure_prob = 0.01;
  /// Worker threads handed to the engines (1 = serial). Fixed-seed results
  /// are bit-identical at any thread count, so this never changes values.
  std::size_t threads = 1;
  /// RNG seed for the trajectory backends.
  std::uint64_t seed = 12345;
  /// Highest Algorithm-1 level the TnApprox ladder searches.
  std::size_t max_level = 8;
  /// Term-count guard of the ladder: levels whose enumerated term count
  /// exceeds this are not considered (terms are materialized per level).
  double max_terms = 1048576.0;
  /// Sample-count cap of the trajectory backends; a budget needing more
  /// samples than this marks them infeasible.
  std::size_t max_samples = std::size_t{1} << 24;
  /// Evaluation options threaded to the TN engines (contract options,
  /// sv/tn crossover, simplify). Leave default unless forcing a topology.
  EvalOptions eval;
  /// Optional shared plan/template cache. When null, simulate() uses a
  /// call-local cache so estimation still pre-warms the run; pass one to
  /// amortize planning across calls. Never changes results.
  PlanCache* plan_cache = nullptr;
  /// Skip selection and use this backend (still budget-checked: throws
  /// LinalgError if the forced backend is infeasible, naming the reason).
  std::optional<BackendKind> force_backend;
  /// MPS trajectory options. The MPS backend only competes in the exact
  /// regime 2^ceil(n/2) <= mps.max_bond, where no truncation can occur;
  /// raise max_bond to let it bid on wider circuits.
  mps::MpsOptions mps;
  /// Cooperative cancellation / deadline control (core/run_control.hpp),
  /// threaded into every engine simulate() runs: the TN plan executors poll
  /// it per step, the sweep queue per claimed item, and the trajectory
  /// runners per chunk. An expired deadline raises TimeoutError (which the
  /// escalation ladder treats like any run-time timeout); a cancel raises
  /// CancelledError, which simulate() never absorbs -- it propagates to the
  /// caller. Null disables; a control that never fires leaves results
  /// bit-identical. Caller-owned, must outlive the call.
  const RunControl* control = nullptr;
};

/// One backend's plan-time bid: what it would cost and what it can promise.
/// flops are modeled complex multiply-adds on a commensurate scale across
/// backends (the selection's sort key); peak_elems are transient complex
/// elements (TDD: dense-equivalent upper bound).
struct CostEstimate {
  bool feasible = false;
  /// Why the backend is out (empty when feasible): ineligible circuit,
  /// budget exceeded, plan-time MO/TO, ...
  std::string reason;
  double flops = 0.0;
  std::size_t peak_elems = 0;
  /// Trajectory sample count; 0 for deterministic backends.
  std::size_t samples = 0;
  /// Chosen Algorithm-1 level (TnApprox only).
  std::size_t level = 0;
  /// Error bound the configuration achieves: 0 for exact backends, the
  /// generalized level bound for TnApprox, the Hoeffding half-width at
  /// failure_prob for samplers. Always <= error_budget when feasible.
  double achievable_error = 0.0;
};

/// A backend together with its bid, in the order selection considered it.
struct BackendChoice {
  BackendKind kind = BackendKind::Density;
  CostEstimate estimate;
};

/// What simulate() returns: the value, the bound it achieved, which backend
/// produced it and under which config, plus the full audit trail.
struct SimResult {
  double value = 0.0;
  /// Achieved error bound: exact backends report 0, TnApprox the tight
  /// generalized bound of the executed sweep, samplers the Hoeffding
  /// half-width of the executed sample count.
  double error_bound = 0.0;
  BackendKind backend = BackendKind::Density;
  /// The winning bid (the exact configuration run() executed).
  CostEstimate config;
  /// Every backend's bid in selection order (feasible sorted by modeled
  /// flops first, then the infeasible ones with their reasons).
  std::vector<BackendChoice> considered;
  /// Backends that won selection but failed at run time (MemoryOutError /
  /// TimeoutError), with the error text; selection escalated past them.
  std::vector<std::pair<BackendKind, std::string>> escalations;
  /// Sampler statistics (mean/std_error/samples) when a trajectory backend
  /// ran; empty otherwise.
  sim::TrajectoryResult traj;
  /// TN contraction statistics when the TnApprox backend ran.
  tn::ContractStats stats;
};

/// Uniform adapter over one engine. estimate() must be cheap (plan-time
/// models only, no full contractions or sampling) and never throw for an
/// ineligible circuit -- it reports infeasibility through the estimate.
/// run() enters the engine's public entry point with exactly the options a
/// direct caller would derive from (opts, config), so results are
/// bit-identical to direct invocation.
class Backend {
 public:
  virtual ~Backend() = default;
  virtual BackendKind kind() const = 0;
  virtual CostEstimate estimate(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                std::uint64_t v_bits, const SimulateOptions& opts) const = 0;
  virtual void run(const ch::NoisyCircuit& nc, std::uint64_t psi_bits, std::uint64_t v_bits,
                   const SimulateOptions& opts, const CostEstimate& config,
                   SimResult& out) const = 0;
};

/// The registry simulate() consults, in BackendKind tie-break order.
/// Static storage; the pointers stay valid for the program's lifetime.
const std::vector<const Backend*>& default_backends();

/// The ApproxOptions the TnApprox adapter derives from (opts, level) -- both
/// for estimation and for the run, so plan-cache keys match and tests can
/// reproduce simulate()'s exact direct-invocation arguments.
ApproxOptions tn_approx_options(const SimulateOptions& opts, std::size_t level);

/// Validate budgets up front; throws LinalgError naming the offending field
/// ("simulate: error_budget must be positive and finite", ...).
void validate_simulate_options(const SimulateOptions& opts);

/// The front door: estimate every backend, pick the cheapest feasible
/// configuration, run it, escalate on run-time MO/TO. Throws LinalgError
/// when no backend can meet the budgets (the message lists every backend's
/// reason) or when a forced backend is infeasible.
SimResult simulate(const ch::NoisyCircuit& nc, std::uint64_t psi_bits, std::uint64_t v_bits,
                   const SimulateOptions& opts = {});

}  // namespace noisim::core
