#pragma once
// The paper's Fig. 3 decomposition: tensor permutation + SVD of a 1-qubit
// noise superoperator.
//
// A 1-qubit channel E with Kraus set {E_k} has the 4x4 superoperator
// M = sum_k E_k (x) conj(E_k), indexed M[(i,j), (k,l)] where (i, k) are the
// top wire's (out, in) and (j, l) the bottom wire's (out, in) in the doubled
// diagram. The *tensor permutation* regroups to Mt[(i,k), (j,l)]; an SVD
// Mt = sum_s d_s u_s v_s^dag then yields M = sum_s U_s (x) V_s with
//   U_s[i,k] = sqrt(d_s) u_s[2i+k],   V_s[j,l] = sqrt(d_s) conj(v_s[2j+l]).
// U_0 (x) V_0 is the paper's dominant approximation of the noise
// (||M - U_0 (x) V_0|| < 4 delta when the noise rate ||M - I|| < delta,
// Lemma 2).

#include "channels/channel.hpp"

namespace noisim::core {

/// Tensor permutation of a 4x4 matrix: out[(i,k),(j,l)] = in[(i,j),(k,l)].
/// The operation is an involution: applying it twice returns the input.
la::Matrix tensor_permutation(const la::Matrix& m);

/// Tensor permutation of a d^2 x d^2 superoperator (d = 2 for 1-qubit
/// noise, d = 4 for the 2-qubit extension).
la::Matrix tensor_permutation_general(const la::Matrix& m, std::size_t d);

/// Rank-1 Kronecker split of a noise superoperator.
struct SplitNoise {
  std::vector<la::Matrix> u;     // top factors (2x2), dominant first
  std::vector<la::Matrix> v;     // bottom factors (2x2)
  std::vector<double> weights;   // singular values of the permuted matrix

  std::size_t terms() const { return u.size(); }
  /// The Kronecker term U_s (x) V_s as a 4x4 matrix.
  la::Matrix term(std::size_t s) const;
  /// sum_s U_s (x) V_s (equals the superoperator; for testing).
  la::Matrix reconstruct() const;
  /// ||M - U_0 (x) V_0||_2, the actual dominant-term error.
  double dominant_term_error() const;
};

/// Decompose a 1- or 2-qubit channel into d^2 Kronecker terms (d = channel
/// dimension; the 2-qubit case is this library's extension beyond the
/// paper). Terms with singular value <= drop_tol are dropped (the paper
/// keeps all; dropping is exposed for ablations).
SplitNoise split_noise(const ch::Channel& channel, double drop_tol = 0.0);

/// Split an arbitrary d^2 x d^2 superoperator (testing / ablation entry).
SplitNoise split_superoperator(const la::Matrix& superop, double drop_tol = 0.0);

}  // namespace noisim::core
