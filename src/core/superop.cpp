#include "core/superop.hpp"

#include <cmath>

#include "linalg/svd.hpp"

namespace noisim::core {

la::Matrix tensor_permutation_general(const la::Matrix& m, std::size_t d) {
  la::detail::require(m.rows() == d * d && m.cols() == d * d,
                      "tensor_permutation_general: shape mismatch");
  la::Matrix out(d * d, d * d);
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = 0; j < d; ++j)
      for (std::size_t k = 0; k < d; ++k)
        for (std::size_t l = 0; l < d; ++l) out(d * i + k, d * j + l) = m(d * i + j, d * k + l);
  return out;
}

la::Matrix tensor_permutation(const la::Matrix& m) {
  la::detail::require(m.rows() == 4 && m.cols() == 4, "tensor_permutation: need 4x4");
  return tensor_permutation_general(m, 2);
}

la::Matrix SplitNoise::term(std::size_t s) const { return la::kron(u[s], v[s]); }

la::Matrix SplitNoise::reconstruct() const {
  const std::size_t dd = u.front().rows() * v.front().rows();
  la::Matrix m(dd, dd);
  for (std::size_t s = 0; s < terms(); ++s) m += term(s);
  return m;
}

double SplitNoise::dominant_term_error() const {
  const std::size_t dd = u.front().rows() * v.front().rows();
  la::Matrix rest(dd, dd);
  for (std::size_t s = 1; s < terms(); ++s) rest += term(s);
  return la::spectral_norm(rest);
}

SplitNoise split_superoperator(const la::Matrix& superop, double drop_tol) {
  std::size_t dim = 0;
  if (superop.rows() == 4) dim = 2;
  if (superop.rows() == 16) dim = 4;
  la::detail::require(dim != 0 && superop.cols() == superop.rows(),
                      "split_superoperator: need a 4x4 or 16x16 superoperator");
  const la::Matrix permuted = tensor_permutation_general(superop, dim);
  const la::SvdResult d = la::svd(permuted);

  SplitNoise out;
  for (std::size_t s = 0; s < d.s.size(); ++s) {
    // Keep zero-weight terms at drop_tol == 0: Algorithm 1 indexes every
    // term of the split, and a dropped zero term is a zero matrix there.
    if (d.s[s] < drop_tol || (drop_tol > 0.0 && d.s[s] == 0.0)) continue;
    const double w = std::sqrt(d.s[s]);
    la::Matrix us(dim, dim), vs(dim, dim);
    for (std::size_t i = 0; i < dim; ++i)
      for (std::size_t k = 0; k < dim; ++k) us(i, k) = w * d.u(dim * i + k, s);
    for (std::size_t j = 0; j < dim; ++j)
      for (std::size_t l = 0; l < dim; ++l) vs(j, l) = w * std::conj(d.v(dim * j + l, s));
    out.u.push_back(std::move(us));
    out.v.push_back(std::move(vs));
    out.weights.push_back(d.s[s]);
  }
  la::detail::require(!out.u.empty(), "split_superoperator: all terms dropped");
  return out;
}

SplitNoise split_noise(const ch::Channel& channel, double drop_tol) {
  la::detail::require(channel.dim() == 2 || channel.dim() == 4,
                      "split_noise: 1- or 2-qubit channels only");
  return split_superoperator(channel.superoperator(), drop_tol);
}

}  // namespace noisim::core
