#include "core/doubled_network.hpp"

#include "core/circuit_network.hpp"
#include "tensor/contract.hpp"

namespace noisim::core {

OpenDoubledNetwork doubled_network_open(const ch::NoisyCircuit& nc, std::uint64_t psi_bits) {
  const int n = nc.num_qubits();
  la::detail::require(n > 0, "doubled_network: qubit count out of range");
  tn::Network net;

  std::vector<tn::EdgeId> top(static_cast<std::size_t>(n)), bot(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) {
    const bool one = basis_bit(psi_bits, n, q);
    top[static_cast<std::size_t>(q)] = net.new_edge();
    net.add_node(basis_state_tensor(one), {top[static_cast<std::size_t>(q)]}, "psi.top");
    bot[static_cast<std::size_t>(q)] = net.new_edge();
    // |psi*> = |psi> for computational basis inputs.
    net.add_node(basis_state_tensor(one), {bot[static_cast<std::size_t>(q)]}, "psi.bot");
  }

  auto add_gate_layer = [&](const qc::Gate& g, std::vector<tn::EdgeId>& wire, bool conjugate) {
    la::Matrix m = g.matrix();
    if (conjugate) m = m.conj();
    if (g.num_qubits() == 1) {
      const auto q = static_cast<std::size_t>(g.qubits[0]);
      const tn::EdgeId out = net.new_edge();
      net.add_node(gate_matrix_tensor(m, 1), {out, wire[q]},
                   (conjugate ? "conj:" : "") + g.description());
      wire[q] = out;
    } else {
      const auto a = static_cast<std::size_t>(g.qubits[0]);
      const auto b = static_cast<std::size_t>(g.qubits[1]);
      const tn::EdgeId out_a = net.new_edge();
      const tn::EdgeId out_b = net.new_edge();
      net.add_node(gate_matrix_tensor(m, 2), {out_a, out_b, wire[a], wire[b]},
                   (conjugate ? "conj:" : "") + g.description());
      wire[a] = out_a;
      wire[b] = out_b;
    }
  };

  for (const ch::Op& op : nc.ops()) {
    if (const qc::Gate* g = std::get_if<qc::Gate>(&op)) {
      add_gate_layer(*g, top, /*conjugate=*/false);
      add_gate_layer(*g, bot, /*conjugate=*/true);
      continue;
    }
    const ch::NoiseOp& noise = std::get<ch::NoiseOp>(op);
    const auto q = static_cast<std::size_t>(noise.qubit);
    if (noise.num_qubits() == 1) {
      // M_E[(i,j),(k,l)]: i/k top out/in, j/l bottom out/in. Row-major
      // reshape gives axes [top_out, bot_out, top_in, bot_in].
      tsr::Tensor m =
          tsr::Tensor::from_matrix(noise.channel.superoperator()).reshape({2, 2, 2, 2});
      const tn::EdgeId top_out = net.new_edge();
      const tn::EdgeId bot_out = net.new_edge();
      net.add_node(std::move(m), {top_out, bot_out, top[q], bot[q]},
                   "M[" + noise.channel.name() + "]");
      top[q] = top_out;
      bot[q] = bot_out;
    } else {
      // 2-qubit extension: the 16x16 superoperator, reshaped row-major into
      // eight dimension-2 axes [topA_out, topB_out, botA_out, botB_out,
      // topA_in, topB_in, botA_in, botB_in].
      const auto q2 = static_cast<std::size_t>(noise.qubit2);
      tsr::Tensor m = tsr::Tensor::from_matrix(noise.channel.superoperator())
                          .reshape({2, 2, 2, 2, 2, 2, 2, 2});
      const tn::EdgeId ta = net.new_edge(), tb = net.new_edge();
      const tn::EdgeId ba = net.new_edge(), bb = net.new_edge();
      net.add_node(std::move(m), {ta, tb, ba, bb, top[q], top[q2], bot[q], bot[q2]},
                   "M2[" + noise.channel.name() + "]");
      top[q] = ta;
      top[q2] = tb;
      bot[q] = ba;
      bot[q2] = bb;
    }
  }

  return OpenDoubledNetwork{std::move(net), std::move(top), std::move(bot)};
}

tn::Network doubled_network(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                            std::uint64_t v_bits) {
  OpenDoubledNetwork open = doubled_network_open(nc, psi_bits);
  const int n = nc.num_qubits();
  for (int q = 0; q < n; ++q) {
    const bool one = basis_bit(v_bits, n, q);
    open.net.add_node(basis_state_tensor(one), {open.top[static_cast<std::size_t>(q)]}, "v.top");
    open.net.add_node(basis_state_tensor(one), {open.bottom[static_cast<std::size_t>(q)]},
                      "v.bot");
  }
  return std::move(open.net);
}

double exact_fidelity_tn(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                         std::uint64_t v_bits, const tn::ContractOptions& opts,
                         tn::ContractStats* stats) {
  return tn::contract_to_scalar(doubled_network(nc, psi_bits, v_bits), opts, stats).real();
}

}  // namespace noisim::core
