#include "core/observables.hpp"

#include "core/doubled_network.hpp"

namespace noisim::core {

PauliString PauliString::parse(const std::string& s) {
  la::detail::require(!s.empty(), "PauliString: empty string");
  for (char c : s)
    la::detail::require(c == 'I' || c == 'X' || c == 'Y' || c == 'Z',
                        "PauliString: only I, X, Y, Z allowed");
  return PauliString{s};
}

std::size_t PauliString::weight() const {
  std::size_t w = 0;
  for (char c : ops)
    if (c != 'I') ++w;
  return w;
}

namespace {

// Cap tensor T[i_top, j_bottom] = P^T[i, j]: tr(P sigma) = sum_{ij}
// P[j,i] sigma[i,j], and the doubled network's open pair (top, bottom)
// carries sigma[i, j].
tsr::Tensor pauli_cap(char op) {
  tsr::Tensor t({2, 2});
  switch (op) {
    case 'I':
      t.at({0, 0}) = t.at({1, 1}) = cplx{1.0, 0.0};
      break;
    case 'X':
      t.at({0, 1}) = t.at({1, 0}) = cplx{1.0, 0.0};
      break;
    case 'Y':
      // Y^T = [[0, i], [-i, 0]].
      t.at({0, 1}) = cplx{0.0, 1.0};
      t.at({1, 0}) = cplx{0.0, -1.0};
      break;
    case 'Z':
      t.at({0, 0}) = cplx{1.0, 0.0};
      t.at({1, 1}) = cplx{-1.0, 0.0};
      break;
    default:
      la::detail::fail("pauli_cap: invalid operator");
  }
  return t;
}

}  // namespace

tn::Network observable_network(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                               const PauliString& pauli) {
  const int n = nc.num_qubits();
  la::detail::require(pauli.num_qubits() == static_cast<std::size_t>(n),
                      "observable_network: Pauli string width mismatch");

  // The doubled diagram body; close each (top, bottom) output pair with the
  // qubit's Pauli cap (partial trace for identity factors).
  OpenDoubledNetwork open = doubled_network_open(nc, psi_bits);
  for (int q = 0; q < n; ++q) {
    open.net.add_node(pauli_cap(pauli.ops[static_cast<std::size_t>(q)]),
                      {open.top[static_cast<std::size_t>(q)],
                       open.bottom[static_cast<std::size_t>(q)]},
                      std::string("P[") + pauli.ops[static_cast<std::size_t>(q)] + "]");
  }
  return std::move(open.net);
}

double expectation_pauli(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                         const PauliString& pauli, const tn::ContractOptions& opts,
                         tn::ContractStats* stats) {
  return tn::contract_to_scalar(observable_network(nc, psi_bits, pauli), opts, stats).real();
}

}  // namespace noisim::core
