#pragma once
// Algorithm 1: ApproximationNoisySimulation(E_N, |psi>, |v>, l).
//
// After SVD-splitting every noise superoperator M_{E_s} = sum_i U_i^s (x)
// V_i^s, the l-level approximation A(l) = sum_{u=0..l} T_u substitutes the
// dominant term at all but u noise sites and one of the three subdominant
// terms at the chosen u sites. Every substitution splits the doubled
// diagram into two *independent* single-layer networks (top: U insertions;
// bottom: V insertions), each contracted on its own -- this is what gives
// the method its scalability (Fig. 4).

#include <cstdint>
#include <functional>
#include <span>

#include "channels/noisy_circuit.hpp"
#include "core/circuit_network.hpp"
#include "core/superop.hpp"

namespace noisim::core {

class PlanCache;

struct ApproxOptions {
  std::size_t level = 1;
  EvalOptions eval;
  /// Worker threads for the (independent) term evaluations; 1 = serial.
  /// Results are reduced in deterministic enumeration order either way.
  std::size_t threads = 1;
  /// Optional progress callback invoked after each term with the number of
  /// terms evaluated so far (benchmarks use it for long sweeps). With
  /// threads > 1 the callback runs on worker threads but calls are
  /// SERIALIZED behind an internal mutex -- never concurrent -- and the
  /// reported counter is incremented inside that lock, so the observed
  /// values are strictly increasing by one (call i sees exactly i). The
  /// callback therefore needs no synchronization of its own; a slow
  /// callback stalls the workers.
  std::function<void(std::size_t)> progress;
  /// Compile each layer's contraction plan once and replay it across all
  /// enumerated terms (every term's single-layer network shares one
  /// topology, differing only in the u inserted noise tensors). Disable to
  /// re-plan every term -- the reference path mirroring the pre-refactor
  /// per-term planning structure, kept for the bench_contract_plan speedup
  /// baseline and equivalence tests; both paths share one planner and
  /// executor, so they produce bit-identical values. Only affects the
  /// tensor-network backend.
  bool reuse_plans = true;
  /// Terms replayed per batched plan traversal (tensor-network backend with
  /// reuse_plans only). Each worker chunks its term range into batches of
  /// this size and executes every batch in ONE plan traversal: steps
  /// outside the noise sites' light cone run once per batch, duplicate
  /// slices are memcpy'd, and per-step dispatch/permutation work amortizes
  /// over the batch -- results stay bit-identical to per-term replay at any
  /// batch size or thread count. <= 1 disables batching (the PR-2 per-term
  /// replay path, kept as the speedup baseline and equivalence reference).
  /// Note the batched workspace grows with the batch size: with
  /// max_workspace_elems set, a batch can exceed a budget the per-term
  /// path fits (MemoryOutError at batched-plan compile time). The
  /// per-replay timeout_seconds budget scales with the batch (k terms get
  /// k replay budgets), so TO behavior does not depend on batch size.
  std::size_t batch_terms = 32;
  /// Optional session-level plan/template cache (core/plan_cache.hpp).
  /// When set, approximate_fidelity / approximate_fidelity_outputs /
  /// xeb_sweep look their compiled AmplitudeTemplates and batched plans up
  /// by topology key instead of recompiling them, so repeated calls over
  /// the same skeleton (level ladders, accuracy sweeps, XEB batches
  /// arriving over time) pay the planning cost once. Results are
  /// bit-identical with or without a cache (plan compilation is
  /// deterministic); the caller owns the cache and may share one instance
  /// across concurrent calls (PlanCache is thread-safe). Cache traffic is
  /// reported in ContractStats::plan_cache_hits / plan_cache_misses; calls
  /// served from the cache report plans_compiled == 0. Only consulted on
  /// the tensor-network reuse_plans path.
  PlanCache* plan_cache = nullptr;
  /// Cooperative control (core/run_control.hpp): polled by the sweep work
  /// queue at every item claim, by plan compilation, and at step
  /// granularity inside every plan replay (threaded into each worker
  /// session's workspace). An expired deadline raises TimeoutError and a
  /// cancel raises CancelledError from approximate_fidelity /
  /// approximate_fidelity_outputs; xeb_sweep instead SALVAGES completed
  /// output-chunks on cancel (see ApproxBatchResult::cancelled). A control
  /// that never fires changes nothing: results stay bit-identical to
  /// control == nullptr. Caller-owned; null disables.
  const RunControl* control = nullptr;
};

struct ApproxResult {
  /// A(l): the approximation of <v|E(|psi><psi|)|v> (real part).
  double value = 0.0;
  /// Complex value before dropping the imaginary roundoff.
  cplx raw{0.0, 0.0};
  /// Partial sums A(0), A(1), ..., A(l): level_values[k] = A(k).
  std::vector<double> level_values;
  /// Per-level term sums T_0, ..., T_l.
  std::vector<cplx> term_sums;
  /// Number of single-layer network contractions performed
  /// (2 per enumerated term, matching Theorem 1's cost model).
  std::size_t contractions = 0;
  /// Theorem 1 bound evaluated at the circuit's max noise rate (for
  /// circuits with only 1-qubit noise; otherwise equals tight_error_bound).
  double error_bound = 0.0;
  /// Generalized per-site product bound using the numerically computed
  /// dominant/subdominant norms -- always valid, usually tighter.
  double tight_error_bound = 0.0;
  /// Aggregated tensor-network contraction statistics across all term
  /// evaluations and worker threads (plan compilations, replays, reuse
  /// hits). Zero when the state-vector backend evaluated the terms.
  tn::ContractStats contract_stats;
  /// Wall-clock split of the evaluation: upfront setup (network build +
  /// plan and batched-plan compilation, paid once per sweep) vs the
  /// per-term evaluation loop. Per-term throughput is terms/eval_seconds;
  /// the re-planning reference path plans inside the loop, so its
  /// plan_seconds is 0.
  double plan_seconds = 0.0;
  double eval_seconds = 0.0;
};

/// Run Algorithm 1 on a noisy circuit with computational-basis input and
/// output states.
ApproxResult approximate_fidelity(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                  std::uint64_t v_bits, const ApproxOptions& opts = {});

/// approximate_fidelity evaluated at MANY output bitstrings in one sweep
/// (sampling / cross-entropy workloads: the same circuit skeleton probed at
/// every sampled bitstring). Output-independent work is shared:
///  * the term enumeration, SVD splits, templates, and plans are built once;
///  * on the tensor-network fast path the output-basis caps join the noise
///    sites as varying slots of the batched plan, so each chunk of
///    batch_terms terms x (up to 32) outputs executes in ONE traversal --
///    steps outside every cone run once per chunk, noise-cone rows are
///    shared across outputs, cap-cone rows across terms.
/// outputs[o] is bit-identical to approximate_fidelity(nc, psi_bits,
/// v_bits[o], opts) (same enumeration-order reduction per output); the
/// progress callback still counts TERMS, not term x output pairs (a term is
/// reported once its value has been folded for every output). When the
/// combined batch exceeds max_workspace_elems the sweep falls back to
/// per-output plan replay, which is bit-identical too.
///
/// Since the sharded sweep engine this is a thin wrapper over xeb_sweep
/// with the default shard size: work is scheduled as a 2-D (term-range x
/// output-chunk) queue, the output axis is threaded alongside the term
/// axis, and each chunk's per-output level sums are reduced streaming in
/// chunk-ordered term-enumeration order -- peak memory for the value table
/// is O(outputs), not O(terms x outputs). Arbitrarily large v_bits spans
/// are fine in one call; pair with ApproxOptions::plan_cache so repeated
/// calls skip plan recompilation too.
struct ApproxBatchResult {
  /// A(l) per output bitstring (real part of raw[o]).
  std::vector<double> values;
  std::vector<cplx> raw;
  /// Per-output partial sums: level_values[o][u] = A(u) at output o.
  std::vector<std::vector<double>> level_values;
  /// Per-output per-level term sums: term_sums[o][u] = T_u at output o.
  std::vector<std::vector<cplx>> term_sums;
  /// Logical single-layer contractions: 2 per enumerated term per output
  /// (what the per-output reference path would perform; batching shares
  /// work across them without changing the count).
  std::size_t contractions = 0;
  /// Error bounds are output-independent (Theorem 1 bounds the operator
  /// deviation): same meaning as in ApproxResult.
  double error_bound = 0.0;
  double tight_error_bound = 0.0;
  tn::ContractStats contract_stats;
  double plan_seconds = 0.0;
  double eval_seconds = 0.0;
  /// Salvage contract (xeb_sweep only): true when a RunControl cancel
  /// stopped the sweep before every item was folded. Workers stop claiming
  /// items within one work item of the cancel, drain their in-flight item,
  /// and the completed output-chunks are returned: valid[o] != 0 iff output
  /// o's chunk folded its full term range, and every such values[o] /
  /// raw[o] / level_values[o] / term_sums[o] is bitwise equal to the
  /// uncancelled run at the same configuration (the chunk-ordered fold is
  /// deterministic). Outputs with valid[o] == 0 hold partial sums and must
  /// be ignored. A deadline or any worker error still THROWS (TimeoutError
  /// / the worker's exception) -- only an explicit cancel salvages.
  bool cancelled = false;
  /// Per-output validity mask; sized like values, all 1 when !cancelled.
  std::vector<char> valid;
};
ApproxBatchResult approximate_fidelity_outputs(const ch::NoisyCircuit& nc,
                                               std::uint64_t psi_bits,
                                               std::span<const std::uint64_t> v_bits,
                                               const ApproxOptions& opts = {});

/// Sharded XEB sweep: Algorithm 1 scored at an arbitrarily large set of
/// output bitstrings through a single 2-D work queue.
struct SweepOptions {
  /// Term evaluation options (level, backend, threads, batch_terms,
  /// plan_cache) -- identical semantics to approximate_fidelity. The
  /// progress callback counts TERMS: a term is reported once its value has
  /// been folded for every output, so the observed counts are strictly
  /// increasing by one up to the term total exactly like the single-output
  /// sweep's.
  ApproxOptions approx;
  /// Output-shard size: the bitstring set is partitioned into chunks of
  /// this many outputs, and the work queue is the cross product of term
  /// ranges (batch_terms wide) and output chunks -- workers drain (term
  /// range x output chunk) items, so a low-level sweep with few terms and
  /// thousands of bitstrings fills every thread instead of idling on a
  /// term-only partition. 0 picks the default: 32 on the tensor-network
  /// fast path (the batched-traversal knee), the whole set on the
  /// state-vector / re-planning reference paths (whose per-term evaluation
  /// already covers all outputs in one evolution). The shard size never
  /// changes results, only scheduling granularity and transient memory.
  std::size_t shard_outputs = 0;
};

/// Evaluate A(l) at every bitstring of `v_bits` over the 2-D (term-range x
/// output-chunk) work queue described by `opts`. result[o] is bit-identical
/// to approximate_fidelity(nc, psi_bits, v_bits[o], opts.approx) at EVERY
/// thread count, shard size, and plan-cache state: each chunk folds its
/// term values in global term-enumeration order (out-of-order item
/// completions are stash-buffered through a bounded pool and folded in
/// order), so every output reproduces the reference reduction arithmetic
/// exactly. Peak memory for the sweep value table is O(outputs) -- per-chunk
/// running level sums plus a buffer pool of O(threads) in-flight items --
/// never the O(terms x outputs) table the pre-sharding sweep materialized.
ApproxBatchResult xeb_sweep(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                            std::span<const std::uint64_t> v_bits,
                            const SweepOptions& opts = {});

/// Plan-time cost/accuracy model of an Algorithm-1 sweep: what the
/// simulate() front door's TN adapters consult to search the level ladder
/// WITHOUT contracting anything. Built from the same skeleton, boundary-
/// resolved options, and plan-cache key approximate_fidelity itself uses, so
/// a template compiled during estimation is exactly the one the subsequent
/// run replays (estimation pre-warms the cache).
struct ApproxCostModel {
  std::size_t num_sites = 0;
  /// Every noise site is 1-qubit, i.e. the paper's Theorem 1 applies.
  bool all_1q = true;
  double max_rate = 0.0;
  /// Per-site split norms: ||U_0 (x) V_0||_2 and ||M - U_0 (x) V_0||_2.
  std::vector<double> dominant_norms;
  std::vector<double> subdominant_norms;
  /// Per-site Kronecker term count (4 for 1-qubit noise, 16 for 2-qubit).
  std::vector<std::size_t> split_terms;
  /// Cost of ONE single-layer evaluation in complex multiply-adds: the
  /// compiled plan's total_flops on the tensor-network path, the 2^n
  /// gate-sweep model on the state-vector path.
  double layer_flops = 0.0;
  /// Transient memory of one evaluation in complex elements: the plan's
  /// liveness-packed arena high-water mark / the state-vector size.
  std::size_t peak_elems = 0;
  /// Which per-term path the sweep takes for this circuit + options.
  bool tensor_network = false;

  /// Error bound the level-l sweep reports: the generalized per-site product
  /// bound, computed from the same norms fill_error_bounds uses, so it
  /// matches ApproxResult::tight_error_bound exactly.
  double error_bound(std::size_t level) const;
  /// Number of enumerated terms of the level-l sum (sum of elementary
  /// symmetric sums over the per-site subdominant choices; C(N,u) 3^u terms
  /// at level u when every site is 1-qubit). Returned as double -- the count
  /// grows combinatorially.
  double term_count(std::size_t level) const;
  /// Modeled work of the level-l sweep: two single-layer evaluations per
  /// enumerated term (Theorem 1's cost model).
  double sweep_flops(std::size_t level) const { return 2.0 * term_count(level) * layer_flops; }
};

/// Build the cost model for approximate_fidelity(nc, psi_bits, v_bits,
/// opts). On the tensor-network path this compiles (or fetches from
/// opts.plan_cache) the top-layer AmplitudeTemplate under the sweep's own
/// cache key, so MemoryOutError / TimeoutError surface here exactly as they
/// would at the start of the run. opts.level is ignored -- the model answers
/// for every level through error_bound/term_count/sweep_flops.
ApproxCostModel approx_cost_model(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                  std::uint64_t v_bits, const ApproxOptions& opts = {});

/// Rewrite <v|E(rho)|v> with v = U_ideal |v_bits> into basis form by
/// appending U_ideal^dagger to the circuit: <v|E(rho)|v> =
/// <v_bits| (U^dag . E)(rho) |v_bits>. Combined with EvalOptions::simplify
/// this is what makes the Table IV level sweep tractable (the appended
/// adjoint cancels against the circuit outside the insertions' light cone).
ch::NoisyCircuit with_ideal_output_projector(const ch::NoisyCircuit& nc);

}  // namespace noisim::core
