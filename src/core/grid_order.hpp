#pragma once
// Structure-aware contraction sequences for grid circuits.
//
// Greedy ordering handles the paper's benchmark networks but degrades on
// large hardware grids (11x11 and up). For grid circuits the classic
// boundary-sweep order -- absorb tensors row by row -- keeps the frontier
// at O(cols) wires, which is what makes the 225-qubit runs fast. The
// sequence generator below maps a gate list to the node order produced by
// core::amplitude_network (psi caps, then one node per gate, then v caps).

#include <functional>
#include <vector>

#include "circuit/gate.hpp"

namespace noisim::core {

/// Generator signature used by EvalOptions::sequence_for: given the qubit
/// count and gate list, return the node absorption order for the network
/// built by amplitude_network(), or an empty vector to fall back to the
/// default strategy.
using SequenceFor =
    std::function<std::vector<std::size_t>(int n, const std::vector<qc::Gate>& gates)>;

/// Row-sweep sequence for an amplitude network over a rows x cols grid
/// (qubit q sits at row q / cols). Absorption order: for ascending rows,
/// the row's input caps, then every gate whose lowest-row qubit is in that
/// row (stable in time order), then the row's output caps.
std::vector<std::size_t> grid_sweep_sequence(int rows, int cols,
                                             const std::vector<qc::Gate>& gates);

/// Bind grid dimensions into a SequenceFor for EvalOptions.
SequenceFor make_grid_sweep(int rows, int cols);

}  // namespace noisim::core
