#include "core/atpg.hpp"

#include <algorithm>

#include "core/plan_cache.hpp"

namespace noisim::core {

double fault_detection_probability(const ch::NoisyCircuit& nc, std::uint64_t test_bits,
                                   const ApproxOptions& opts) {
  const ch::NoisyCircuit projected = with_ideal_output_projector(nc);
  ApproxOptions run = opts;
  run.eval.simplify = true;  // the projector rewrite makes this pay off
  const double escape = approximate_fidelity(projected, test_bits, test_bits, run).value;
  // Clamp: the approximation can overshoot [0, 1] by its error bound.
  return std::clamp(1.0 - escape, 0.0, 1.0);
}

TestPatternResult best_test_pattern(const ch::NoisyCircuit& nc,
                                    const std::vector<std::uint64_t>& candidates,
                                    const ApproxOptions& opts) {
  la::detail::require(!candidates.empty(), "best_test_pattern: no candidates");
  TestPatternResult out;
  out.all.reserve(candidates.size());
  for (std::uint64_t pattern : candidates) {
    const double p = fault_detection_probability(nc, pattern, opts);
    out.all.push_back(p);
    if (p > out.detection_probability) {
      out.detection_probability = p;
      out.pattern = pattern;
    }
  }
  return out;
}

double fault_detection_probability(const ch::NoisyCircuit& nc, std::uint64_t test_bits,
                                   const SimulateOptions& opts) {
  const ch::NoisyCircuit projected = with_ideal_output_projector(nc);
  SimulateOptions run = opts;
  run.eval.simplify = true;  // the projector rewrite makes this pay off
  const double escape = simulate(projected, test_bits, test_bits, run).value;
  // Clamp: an approximate backend can overshoot [0, 1] by its error bound.
  return std::clamp(1.0 - escape, 0.0, 1.0);
}

TestPatternResult best_test_pattern(const ch::NoisyCircuit& nc,
                                    const std::vector<std::uint64_t>& candidates,
                                    const SimulateOptions& opts) {
  la::detail::require(!candidates.empty(), "best_test_pattern: no candidates");
  SimulateOptions run = opts;
  PlanCache scan_cache(16);
  if (!run.plan_cache) run.plan_cache = &scan_cache;
  TestPatternResult out;
  out.all.reserve(candidates.size());
  for (std::uint64_t pattern : candidates) {
    const double p = fault_detection_probability(nc, pattern, run);
    out.all.push_back(p);
    if (p > out.detection_probability) {
      out.detection_probability = p;
      out.pattern = pattern;
    }
  }
  return out;
}

}  // namespace noisim::core
