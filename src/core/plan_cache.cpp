#include "core/plan_cache.hpp"

#include <cstring>

namespace noisim::core {

namespace {

void put_bytes(std::string& s, const void* p, std::size_t n) {
  s.append(static_cast<const char*>(p), n);
}

void put_u64(std::string& s, std::uint64_t v) { put_bytes(s, &v, sizeof v); }

void put_f64(std::string& s, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(s, bits);
}

void put_matrix(std::string& s, const la::Matrix& m) {
  put_u64(s, m.rows());
  put_u64(s, m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c) {
      put_f64(s, m(r, c).real());
      put_f64(s, m(r, c).imag());
    }
}

}  // namespace

PlanCache::PlanCache(std::size_t max_entries) : max_entries_(max_entries) {
  la::detail::require(max_entries >= 1, "PlanCache: max_entries must be >= 1");
}

std::shared_ptr<const tn::BatchedPlan> PlanCache::Entry::batched(
    const std::string& key, const std::function<tn::BatchedPlan()>& compile,
    bool* hit) const {
  {
    const support::MutexLock lock(mutex_);
    const auto it = plans_.find(key);
    if (it != plans_.end()) {
      owner_->note(true);
      if (hit) *hit = true;
      return it->second;
    }
  }
  // Compile outside the lock (batched compiles can be expensive); a racing
  // thread may compile the same plan -- equal topologies compile to equal
  // plans, so whichever insert wins is interchangeable.
  auto plan = std::make_shared<const tn::BatchedPlan>(compile());
  const support::MutexLock lock(mutex_);
  if (plans_.size() >= kMaxBatchedPlans && !plans_.count(key)) plans_.clear();
  const auto [it, inserted] = plans_.emplace(key, plan);
  owner_->note(false);
  if (hit) *hit = false;
  return inserted ? plan : it->second;
}

std::shared_ptr<const PlanCache::Entry> PlanCache::entry(
    const std::string& key, const std::function<AmplitudeTemplate()>& build, bool* hit) {
  {
    const support::MutexLock lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // touch
      ++hits_;
      if (hit) *hit = true;
      return it->second->second;
    }
  }
  // Build outside the lock; on a lost race adopt the winner's entry so all
  // callers share one instance (and one batched-plan memo).
  std::shared_ptr<const Entry> built(new Entry(this, build()));
  const support::MutexLock lock(mutex_);
  ++misses_;
  if (hit) *hit = false;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  lru_.emplace_front(key, built);
  index_.emplace(key, lru_.begin());
  while (lru_.size() > max_entries_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
  return built;
}

std::size_t PlanCache::hits() const {
  const support::MutexLock lock(mutex_);
  return hits_;
}

std::size_t PlanCache::misses() const {
  const support::MutexLock lock(mutex_);
  return misses_;
}

std::size_t PlanCache::size() const {
  const support::MutexLock lock(mutex_);
  return lru_.size();
}

void PlanCache::clear() {
  const support::MutexLock lock(mutex_);
  lru_.clear();
  index_.clear();
}

void PlanCache::note(bool hit) {
  const support::MutexLock lock(mutex_);
  if (hit)
    ++hits_;
  else
    ++misses_;
}

std::string PlanCache::template_key(int n, const std::vector<qc::Gate>& skeleton,
                                    std::uint64_t psi_bits, std::uint64_t v_bits,
                                    bool conjugate, const tn::ContractOptions& copts) {
  std::string key;
  key.reserve(64 + skeleton.size() * 48);
  put_u64(key, 2);  // key-format version (2: portfolio knobs added)
  put_u64(key, static_cast<std::uint64_t>(n));
  put_u64(key, psi_bits);
  put_u64(key, v_bits);
  put_u64(key, conjugate ? 1 : 0);
  put_u64(key, static_cast<std::uint64_t>(copts.strategy));
  put_u64(key, copts.max_tensor_elems);
  put_f64(key, copts.timeout_seconds);
  put_u64(key, copts.max_workspace_elems);
  put_u64(key, copts.greedy_cost_weights.size());
  for (const double w : copts.greedy_cost_weights) put_f64(key, w);
  // Portfolio knobs steer which schedule Auto compiles to, so they are
  // part of the resolved-options identity like the greedy ladder above.
  put_u64(key, copts.portfolio ? 1 : 0);
  put_u64(key, copts.portfolio_strategies.size());
  for (const tn::OrderStrategy s : copts.portfolio_strategies)
    put_u64(key, static_cast<std::uint64_t>(s));
  put_u64(key, copts.random_restarts);
  put_u64(key, copts.custom_sequence.size());
  for (const std::size_t s : copts.custom_sequence) put_u64(key, s);
  put_u64(key, skeleton.size());
  for (const qc::Gate& g : skeleton) {
    put_u64(key, static_cast<std::uint64_t>(g.kind));
    put_u64(key, static_cast<std::uint64_t>(static_cast<std::int64_t>(g.qubits[0])));
    put_u64(key, static_cast<std::uint64_t>(static_cast<std::int64_t>(g.qubits[1])));
    put_u64(key, g.params.size());
    for (const double p : g.params) put_f64(key, p);
    put_matrix(key, g.custom);
  }
  return key;
}

std::string PlanCache::batched_key(std::span<const std::size_t> varying_slots,
                                   std::size_t capacity,
                                   std::span<const std::size_t> variant_counts,
                                   std::size_t max_varied_per_term,
                                   std::span<const char> unconstrained) {
  std::string key;
  key.reserve(32 + varying_slots.size() * 17);
  put_u64(key, capacity);
  put_u64(key, max_varied_per_term);
  put_u64(key, varying_slots.size());
  for (const std::size_t s : varying_slots) put_u64(key, s);
  put_u64(key, variant_counts.size());
  for (const std::size_t c : variant_counts) put_u64(key, c);
  put_u64(key, unconstrained.size());
  if (!unconstrained.empty()) put_bytes(key, unconstrained.data(), unconstrained.size());
  return key;
}

}  // namespace noisim::core
