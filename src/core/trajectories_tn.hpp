#pragma once
// TN-based quantum trajectories: the paper's "Traj (TN)" baseline
// (Table III).
//
// For channels that are probabilistic mixtures of unitaries (depolarizing,
// Pauli channels, ...) the Kraus sampling probabilities are state
// independent, so each trajectory reduces to one noiseless amplitude
// evaluation of the circuit with sampled unitary insertions -- computed by
// tensor network contraction, which is what lets this baseline scale past
// the state-vector variant's memory wall.

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "channels/noisy_circuit.hpp"
#include "core/circuit_network.hpp"
#include "sim/trajectories.hpp"

namespace noisim::core {

/// Estimate <v|E(|psi><psi|)|v> with `samples` TN trajectories. Throws
/// LinalgError if any noise channel is not a mixture of unitaries or if a
/// mixture's probabilities do not sum to 1 beyond roundoff (unnormalized
/// channels would silently skew the inverse-CDF sampling).
/// samples == 0 returns the well-defined empty estimate.
sim::TrajectoryResult trajectories_tn(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                      std::uint64_t v_bits, std::size_t samples,
                                      std::mt19937_64& rng, const EvalOptions& eval = {});

/// Non-throwing precheck of trajectories_tn's channel requirements: true iff
/// every noise channel is a mixture of unitaries with probabilities summing
/// to 1 within the engine's tolerance. Backend selection uses this to rule
/// the TN-trajectories backend in or out without paying an exception.
bool trajectories_tn_eligible(const ch::NoisyCircuit& nc);

/// Multithreaded variant on the shared engine (sim/parallel.hpp): each
/// worker owns a private copy of the sampled gate list, so no shared state
/// is mutated; reproducible for a fixed `seed` across thread counts.
sim::TrajectoryResult trajectories_tn(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                      std::uint64_t v_bits, std::size_t samples,
                                      std::uint64_t seed, const sim::ParallelOptions& popts,
                                      const EvalOptions& eval = {});

/// Estimate <v_t|E(|psi><psi|)|v_t> for EVERY output bitstring in `v_bits`
/// from ONE set of sampled trajectories: each trajectory draws its site
/// unitaries once and scores all K bitstrings on the same sampled circuit
/// -- on the tensor-network path through ONE output-batched plan traversal
/// per sample (the basis caps are the varying slots; the sampled unitaries
/// enter as shared substitutions). Element t is bit-identical to
/// trajectories_tn(nc, psi_bits, v_bits[t], samples, seed, popts, eval):
/// the per-sample draws depend only on (seed, chunk_size). Estimates are
/// correlated across bitstrings (they share the noise realizations), which
/// is exactly what sampling / XEB workloads want. samples == 0 returns K
/// well-defined empty estimates.
std::vector<sim::TrajectoryResult> trajectories_tn_outputs(
    const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
    std::span<const std::uint64_t> v_bits, std::size_t samples, std::uint64_t seed,
    const sim::ParallelOptions& popts, const EvalOptions& eval = {});

/// Sharded variant of trajectories_tn_outputs for very large bitstring
/// sets: the bitstrings are partitioned into shards of `shard_outputs` and
/// the (bitstring-shard x sample-chunk) grid forms a single 2-D work queue
/// (sim::run_trajectories_sharded). Each item draws its chunk's noise
/// realizations once -- the same streams every shard and the unsharded path
/// draw, since the site draws are independent of the scored outputs -- and
/// scores the shard's bitstrings via the shared-substitution output-batched
/// traversals. Element t is bit-identical to trajectories_tn_outputs and to
/// trajectories_tn(nc, psi_bits, v_bits[t], ...) at EVERY thread count and
/// shard size; per-worker transient storage is O(chunk_size x shard)
/// instead of O(chunk_size x K). shard_outputs 0 picks the default: 32
/// (the output-batched traversal width) on the plan-replay path, all K on
/// the other backends (whose per-sample evaluation covers every output in
/// one evolution, so sharding would repeat it).
std::vector<sim::TrajectoryResult> trajectories_tn_sweep(
    const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
    std::span<const std::uint64_t> v_bits, std::size_t samples, std::uint64_t seed,
    const sim::ParallelOptions& popts, const EvalOptions& eval = {},
    std::size_t shard_outputs = 0);

}  // namespace noisim::core
