#pragma once
// TN-based quantum trajectories: the paper's "Traj (TN)" baseline
// (Table III).
//
// For channels that are probabilistic mixtures of unitaries (depolarizing,
// Pauli channels, ...) the Kraus sampling probabilities are state
// independent, so each trajectory reduces to one noiseless amplitude
// evaluation of the circuit with sampled unitary insertions -- computed by
// tensor network contraction, which is what lets this baseline scale past
// the state-vector variant's memory wall.

#include <cstdint>
#include <random>

#include "channels/noisy_circuit.hpp"
#include "core/circuit_network.hpp"
#include "sim/trajectories.hpp"

namespace noisim::core {

/// Estimate <v|E(|psi><psi|)|v> with `samples` TN trajectories. Throws
/// LinalgError if any noise channel is not a mixture of unitaries.
sim::TrajectoryResult trajectories_tn(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                      std::uint64_t v_bits, std::size_t samples,
                                      std::mt19937_64& rng, const EvalOptions& eval = {});

/// Multithreaded variant on the shared engine (sim/parallel.hpp): each
/// worker owns a private copy of the sampled gate list, so no shared state
/// is mutated; reproducible for a fixed `seed` across thread counts.
sim::TrajectoryResult trajectories_tn(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                      std::uint64_t v_bits, std::size_t samples,
                                      std::uint64_t seed, const sim::ParallelOptions& popts,
                                      const EvalOptions& eval = {});

}  // namespace noisim::core
