#include "core/grid_order.hpp"

#include <algorithm>
#include <numeric>

#include "linalg/complex.hpp"

namespace noisim::core {

std::vector<std::size_t> grid_sweep_sequence(int rows, int cols,
                                             const std::vector<qc::Gate>& gates) {
  const int n = rows * cols;
  la::detail::require(rows > 0 && cols > 0, "grid_sweep_sequence: bad grid");
  const std::size_t num_nodes = static_cast<std::size_t>(n) + gates.size() + static_cast<std::size_t>(n);

  // Sort key: (2*row, phase, tiebreak). Input caps at (2r, 0), gates at
  // (2*max_row + 1, 1), output caps at (2r + 1, 2) -- a row's output caps
  // come after every gate that finishes in that row but before gates
  // reaching deeper rows.
  struct Key {
    int major;
    int phase;
    std::size_t tie;
  };
  std::vector<Key> keys(num_nodes);

  auto row_of = [cols](int q) { return q / cols; };

  for (int q = 0; q < n; ++q)
    keys[static_cast<std::size_t>(q)] = {2 * row_of(q), 0, static_cast<std::size_t>(q)};
  for (std::size_t g = 0; g < gates.size(); ++g) {
    int max_row = row_of(gates[g].qubits[0]);
    if (gates[g].qubits[1] >= 0) max_row = std::max(max_row, row_of(gates[g].qubits[1]));
    keys[static_cast<std::size_t>(n) + g] = {2 * max_row + 1, 1, g};
  }
  for (int q = 0; q < n; ++q)
    keys[static_cast<std::size_t>(n) + gates.size() + static_cast<std::size_t>(q)] = {
        2 * row_of(q) + 1, 2, static_cast<std::size_t>(q)};

  std::vector<std::size_t> order(num_nodes);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (keys[a].major != keys[b].major) return keys[a].major < keys[b].major;
    if (keys[a].phase != keys[b].phase) return keys[a].phase < keys[b].phase;
    return keys[a].tie < keys[b].tie;
  });
  return order;
}

SequenceFor make_grid_sweep(int rows, int cols) {
  return [rows, cols](int n, const std::vector<qc::Gate>& gates) -> std::vector<std::size_t> {
    if (n != rows * cols) return {};
    return grid_sweep_sequence(rows, cols, gates);
  };
}

}  // namespace noisim::core
