#pragma once
// Theorem 1 error bounds and the cost/sample models used by Fig. 5.

#include <cstddef>
#include <vector>

namespace noisim::core {

/// Binomial coefficient as double (N up to a few hundred).
double binomial(std::size_t n, std::size_t k);

/// Theorem 1: for N noises with every noise rate < p,
///   |F - A(l)| <= (1+8p)^N - sum_{i=0..l} C(N,i) (4p)^i (1+4p)^(N-i).
double theorem1_error_bound(std::size_t num_noises, double p, std::size_t level);

/// Asymptotic level-1 bound 32 sqrt(e) N^2 p^2, valid for p <= 1/(8N).
double level1_asymptotic_bound(std::size_t num_noises, double p);

/// Number of single-layer tensor-network contractions of the level-l
/// approximation: 2 * sum_{i=0..l} C(N,i) 3^i (Theorem 1).
double contraction_count(std::size_t num_noises, std::size_t level);

/// Fig. 5 sample models, both using the level-1 Theorem-1 bound as the
/// common error target eps:
///  * ours: contraction_count(N, 1) = 2 (1 + 3N);
///  * trajectories, paper-calibrated: accuracy ~ 1/sqrt(r) with unit
///    constant gives r = 1/eps (this reproduces the magnitudes and the
///    N ~ 26 crossover of the paper's Fig. 5; see EXPERIMENTS.md);
///  * trajectories, Hoeffding: r = ln(2/delta) / (2 eps^2) for a
///    (1-delta)-confidence interval (the textbook-rigorous count).
double trajectories_samples_calibrated(std::size_t num_noises, double p);
double trajectories_samples_hoeffding(std::size_t num_noises, double p, double failure_prob);

/// Generalized Theorem-1-style bound with per-site norms: site s contributes
/// a dominant factor a_s = ||U_0 (x) V_0||_2 and a subdominant factor
/// b_s = ||M - U_0 (x) V_0||_2. Then
///   |F - A(l)| <= prod_s (a_s + b_s)
///                 - sum_{|S| <= l} prod_{s in S} b_s prod_{s not in S} a_s,
/// evaluated exactly by dynamic programming over elementary symmetric
/// sums. With uniform a = 1+4p, b = 4p this reduces to the paper's formula;
/// with numerically computed norms it is tighter and also covers the
/// 2-qubit noise extension.
double generalized_error_bound(const std::vector<double>& dominant_norms,
                               const std::vector<double>& subdominant_norms, std::size_t level);

}  // namespace noisim::core
