#include "core/approx.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <thread>

#include "circuit/simplify.hpp"
#include "core/bounds.hpp"
#include "core/plan_cache.hpp"
#include "fault/fault.hpp"
#include "linalg/svd.hpp"
#include "support/mutex.hpp"

namespace noisim::core {

namespace {

// Placeholder matrices for not-yet-assigned noise insertions. Deliberately
// non-unitary so inverse-pair cancellation can never pair them with a gate.
la::Matrix placeholder_1q() { return la::Matrix{{2.0, 0.0}, {0.0, 3.0}}; }
la::Matrix placeholder_2q() {
  la::Matrix m(4, 4);
  m(0, 0) = 2.0;
  m(1, 1) = 3.0;
  m(2, 2) = 5.0;
  m(3, 3) = 7.0;
  return m;
}

struct Site {
  std::size_t arity;  // 1 or 2 qubits
  SplitNoise split;
  double rate;  // noise rate of the channel (for the Theorem-1 bound)
};

struct BaseLists {
  std::vector<qc::Gate> gates;  // circuit gates + tagged placeholders
  std::vector<Site> sites;
};

// Gate-list skeleton with one tagged placeholder per noise site. The tag
// (params[0]) survives simplification, so insertion positions can be
// located after inverse-pair cancellation.
BaseLists build_base(const ch::NoisyCircuit& nc) {
  BaseLists base;
  for (const ch::Op& op : nc.ops()) {
    if (const qc::Gate* g = std::get_if<qc::Gate>(&op)) {
      base.gates.push_back(*g);
      continue;
    }
    const ch::NoiseOp& noise = std::get<ch::NoiseOp>(op);
    qc::Gate tag = noise.num_qubits() == 1
                       ? qc::u1q(noise.qubit, placeholder_1q())
                       : qc::u2q(noise.qubit, noise.qubit2, placeholder_2q());
    tag.params = {static_cast<double>(base.sites.size())};
    base.gates.push_back(std::move(tag));

    Site site;
    site.arity = static_cast<std::size_t>(noise.num_qubits());
    site.split = split_noise(noise.channel);
    site.rate = noise.channel.noise_rate();
    const std::size_t want = site.arity == 1 ? 4 : 16;
    la::detail::require(site.split.terms() == want,
                        "approximate_fidelity: unexpected split term count");
    base.sites.push_back(std::move(site));
  }
  return base;
}

// All size-k subsets of {0, ..., n-1} in lexicographic order.
std::vector<std::vector<std::size_t>> combinations(std::size_t n, std::size_t k) {
  std::vector<std::vector<std::size_t>> out;
  if (k > n) return out;
  std::vector<std::size_t> cur(k);
  for (std::size_t i = 0; i < k; ++i) cur[i] = i;
  while (true) {
    out.push_back(cur);
    if (k == 0) break;
    std::size_t i = k;
    bool advanced = false;
    while (i-- > 0) {
      if (cur[i] + (k - i) < n) {
        ++cur[i];
        for (std::size_t j = i + 1; j < k; ++j) cur[j] = cur[j - 1] + 1;
        advanced = true;
        break;
      }
    }
    if (!advanced) break;
  }
  return out;
}

// Indices of the tagged placeholders inside a (possibly simplified) list.
std::vector<std::size_t> locate_sites(const std::vector<qc::Gate>& gates,
                                      std::size_t num_sites) {
  std::vector<std::size_t> pos(num_sites, static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const qc::Gate& g = gates[i];
    if ((g.kind == qc::GateKind::U1q || g.kind == qc::GateKind::U2q) && g.params.size() == 1)
      pos[static_cast<std::size_t>(g.params[0])] = i;
  }
  for (std::size_t p : pos)
    la::detail::require(p != static_cast<std::size_t>(-1),
                        "approximate_fidelity: insertion lost during simplification");
  return pos;
}

// One enumerated term: which sites carry which subdominant index.
struct Term {
  std::size_t level;
  std::vector<std::size_t> sites;
  std::vector<std::size_t> term_idx;
};

std::vector<Term> enumerate_terms(const std::vector<Site>& sites, std::size_t level) {
  std::vector<Term> out;
  for (std::size_t u = 0; u <= level; ++u) {
    for (const std::vector<std::size_t>& chosen : combinations(sites.size(), u)) {
      std::vector<std::size_t> idx(u, 1);
      while (true) {
        out.push_back(Term{u, chosen, idx});
        std::size_t pos = 0;
        while (pos < u && idx[pos] + 1 == sites[chosen[pos]].split.terms()) idx[pos++] = 1;
        if (pos == u) break;
        ++idx[pos];
      }
    }
  }
  return out;
}

// Deterministic static partition shared by both sweeps: worker w owns a
// contiguous, balanced index range (sizes differ by at most one, so no
// worker sits idle), and the index-to-worker assignment is a pure function
// of (total, threads). No two workers share an output slot, and reductions
// run on the joined values in enumeration order either way.
void run_partitioned(std::size_t threads, std::size_t total,
                     const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (threads <= 1) {
    body(0, 0, total);
    return;
  }
  const std::size_t base_size = total / threads;
  const std::size_t remainder = total % threads;
  std::vector<std::future<void>> workers;
  std::size_t begin = 0;
  for (std::size_t w = 0; w < threads; ++w) {
    const std::size_t end = begin + base_size + (w < remainder ? 1 : 0);
    workers.push_back(
        std::async(std::launch::async, [&body, w, begin, end] { body(w, begin, end); }));
    begin = end;
  }
  for (auto& f : workers) f.get();  // rethrows worker exceptions
}

// Shared progress accounting (the contract ApproxOptions::progress
// documents): the counter is atomic and the possibly-not-thread-safe user
// callback is serialized behind a mutex, incremented inside the lock so
// observed values are strictly increasing by one.
class SerializedProgress {
 public:
  explicit SerializedProgress(const std::function<void(std::size_t)>& callback)
      : callback_(callback) {}
  void note() EXCLUDES(mutex_) {
    if (callback_) {
      const support::MutexLock lock(mutex_);
      callback_(++done_);
    } else {
      ++done_;
    }
  }

 private:
  // Immutable reference; the (possibly not thread-safe) callee is what the
  // mutex serializes, not the member itself.
  const std::function<void(std::size_t)>& callback_;
  std::atomic<std::size_t> done_{0};
  support::Mutex mutex_;
};

// Wall-clock split of a sweep: everything before eval_started() is the
// upfront setup (network build + plan compilation -- or plan-cache lookups
// -- paid once per sweep), everything after is the per-term evaluation loop.
class SweepTimer {
 public:
  SweepTimer(double& plan_seconds, double& eval_seconds)
      : plan_seconds_(plan_seconds), eval_seconds_(eval_seconds) {}
  void eval_started() {
    eval_started_ = Clock::now();
    plan_seconds_ = std::chrono::duration<double>(eval_started_ - setup_started_).count();
  }
  void eval_done() {
    eval_seconds_ = std::chrono::duration<double>(Clock::now() - eval_started_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  double& plan_seconds_;
  double& eval_seconds_;
  Clock::time_point setup_started_ = Clock::now();
  Clock::time_point eval_started_{};
};

// Tensorized SVD factors per (site, term index) and the network node each
// site substitutes, shared by both sweeps. The bottom template is built
// with conjugate=true, which conjugates whatever matrix the site gate
// carries; the seed path stored conj(V) there to apply V itself, and
// conj(conj(V)) == V bitwise, so V enters the substitution directly.
struct SiteFactors {
  std::vector<std::size_t> node;                   // network node per site
  std::vector<std::vector<tsr::Tensor>> top, bot;  // U / V factor tensors
};
SiteFactors build_site_factors(const std::vector<Site>& sites,
                               const std::vector<std::size_t>& site_pos,
                               const AmplitudeTemplate& tmpl) {
  SiteFactors f;
  const std::size_t num_sites = sites.size();
  f.node.resize(num_sites);
  f.top.resize(num_sites);
  f.bot.resize(num_sites);
  for (std::size_t s = 0; s < num_sites; ++s) {
    f.node[s] = tmpl.node_of_gate(site_pos[s]);
    const Site& site = sites[s];
    for (std::size_t t = 0; t < site.split.terms(); ++t) {
      f.top[s].push_back(gate_matrix_tensor(site.split.u[t], static_cast<int>(site.arity)));
      f.bot[s].push_back(gate_matrix_tensor(site.split.v[t], static_cast<int>(site.arity)));
    }
  }
  return f;
}

// Error bounds: the paper's Theorem 1 when every site is 1-qubit, and the
// generalized per-site product bound (numerically tight) always.
void fill_error_bounds(const std::vector<Site>& sites, std::size_t level, double max_rate,
                       double& error_bound, double& tight_error_bound) {
  std::vector<double> dominant_norms, subdominant_norms;
  bool all_1q = true;
  for (const Site& s : sites) {
    dominant_norms.push_back(la::spectral_norm(s.split.term(0)));
    subdominant_norms.push_back(s.split.dominant_term_error());
    if (s.arity != 1) all_1q = false;
  }
  tight_error_bound = generalized_error_bound(dominant_norms, subdominant_norms, level);
  error_bound =
      all_1q ? theorem1_error_bound(sites.size(), max_rate, level) : tight_error_bound;
}

// --- plan-cache acquisition ---------------------------------------------------

// A template either served from an ApproxOptions::plan_cache entry (shared,
// kept alive by the entry pointer) or compiled for this call. Both hand out
// a stable reference; cached batched plans are memoized inside the entry.
struct AcquiredTemplate {
  std::shared_ptr<const PlanCache::Entry> entry;  // cached case
  std::shared_ptr<const AmplitudeTemplate> owned;  // cache-free case
  const AmplitudeTemplate& tmpl() const { return entry ? entry->tmpl() : *owned; }
};

AcquiredTemplate acquire_template(PlanCache* cache, int n,
                                  const std::vector<qc::Gate>& skeleton,
                                  std::uint64_t psi_bits, std::uint64_t v_bits,
                                  bool conjugate, const EvalOptions& eval,
                                  tn::ContractStats& setup_stats) {
  // `eval` arrives boundary-resolved (resolved_eval_options ran once where
  // the sweep fixed its skeleton), so eval.tn is already in plan-cache key
  // form and the template's own resolution is a pass-through.
  AcquiredTemplate out;
  if (cache) {
    bool hit = false;
    out.entry = cache->entry(
        PlanCache::template_key(n, skeleton, psi_bits, v_bits, conjugate, eval.tn),
        [&] {
          return AmplitudeTemplate(n, skeleton, psi_bits, v_bits, conjugate, eval);
        },
        &hit);
    if (hit) {
      ++setup_stats.plan_cache_hits;
    } else {
      ++setup_stats.plan_cache_misses;
      setup_stats.merge(out.entry->tmpl().compile_stats());
    }
  } else {
    out.owned =
        std::make_shared<const AmplitudeTemplate>(n, skeleton, psi_bits, v_bits, conjugate, eval);
    setup_stats.merge(out.owned->compile_stats());
  }
  return out;
}

std::shared_ptr<const tn::BatchedPlan> acquire_batched(
    const AcquiredTemplate& at, std::span<const std::size_t> slots, std::size_t capacity,
    std::span<const std::size_t> variant_counts, std::size_t max_varied_per_term,
    std::span<const char> unconstrained, tn::ContractStats& setup_stats) {
  if (at.entry) {
    bool hit = false;
    tn::ContractStats compile_stats;
    auto plan = at.entry->batched(
        PlanCache::batched_key(slots, capacity, variant_counts, max_varied_per_term,
                               unconstrained),
        [&] {
          return at.tmpl().compile_batched(slots, capacity, &compile_stats, variant_counts,
                                           max_varied_per_term, unconstrained);
        },
        &hit);
    if (hit) {
      ++setup_stats.plan_cache_hits;
    } else {
      ++setup_stats.plan_cache_misses;
      setup_stats.merge(compile_stats);
    }
    return plan;
  }
  return std::make_shared<const tn::BatchedPlan>(at.tmpl().compile_batched(
      slots, capacity, &setup_stats, variant_counts, max_varied_per_term, unconstrained));
}

// --- the sharded 2-D sweep engine ---------------------------------------------

// Output-batched traversal bounds shared with the PR-4 paths: up to 32
// outputs per traversal, at most ~256 (term, output) pairs per traversal
// (the measured batched-arena knee on the Fig. 4-style grids).
constexpr std::size_t kOutputChunk = 32;
constexpr std::size_t kMaxPairs = 256;

// One work item evaluates terms [t0, t0 + tcount) at outputs
// [obegin, obegin + ocount): out[t * ocount + o] = term value at output o.
// Every value is bit-identical to the single-output reference's value for
// that (term, output) pair -- batching only shares work, never changes bits.
using ItemEval = std::function<void(std::size_t t0, std::size_t tcount, std::size_t obegin,
                                    std::size_t ocount, std::span<cplx> out,
                                    tn::ContractStats& stats)>;
struct WorkerEval {
  ItemEval eval;
  // Merge any session-held stats into the worker's record (called once,
  // after the worker drains the queue).
  std::function<void(tn::ContractStats&)> flush;
};

// Streaming fold state for one output chunk (guarded by SweepQueue::mutex_).
// The stash is an ORDERED map on purpose: folding walks completed ranges in
// ascending term-enumeration order (lint rule unordered-fold).
struct ChunkFold {
  std::size_t begin = 0, count = 0;  // output range of the chunk
  std::size_t cursor = 0;            // next term range to fold
  std::vector<cplx> sums;            // count x (level + 1), output-major
  std::map<std::size_t, std::size_t> stash;  // completed range -> buffer
};

// Scheduler for the sharded (term-range x output-chunk) work queue: item
// claims, the bounded buffer pool, the cooperative cancel/abort flags, the
// first-exception slot, the per-chunk streaming folds, and the
// outstanding-chunk progress counters all live behind ONE annotated mutex,
// so -Wthread-safety proves every cross-worker access is locked. Workers
// call claim() -- which also polls the RunControl, the poll point of the
// engine's cancellation contract -- evaluate the claimed item into their
// pool buffer WITHOUT the lock (buffer ownership travels with the claim),
// and hand the buffer back through fold_item(). After the join, the owning
// thread runs finish() (stash drain + pool-integrity check + rethrow) and
// moves the fold results out by value via take_folds().
class SweepQueue {
 public:
  SweepQueue(const std::vector<Term>& terms, std::size_t K, std::size_t shard,
             std::size_t level, std::size_t term_batch, std::size_t num_ranges,
             std::size_t num_chunks, std::size_t pool_size, const RunControl* control)
      : terms_(terms),
        num_terms_(terms.size()),
        num_chunks_(num_chunks),
        num_ranges_(num_ranges),
        num_items_(num_ranges * num_chunks),
        level_(level),
        term_batch_(term_batch),
        pool_size_(pool_size),
        control_(control) {
    folds_.resize(num_chunks_);
    for (std::size_t c = 0; c < num_chunks_; ++c) {
      folds_[c].begin = c * shard;
      folds_[c].count = std::min(shard, K - folds_[c].begin);
      folds_[c].sums.assign(folds_[c].count * (level_ + 1), cplx{0.0, 0.0});
    }
    // Outstanding chunk folds per term, for the TERM-counting progress
    // contract: a term is reported once every chunk has folded it.
    term_pending_.assign(num_terms_, num_chunks_);
    free_bufs_.resize(pool_size_);
    for (std::size_t b = 0; b < pool_size_; ++b) free_bufs_[b] = b;
  }

  /// Claim the next (range, chunk) item together with a pool buffer,
  /// blocking while the pool is empty. Polls the RunControl first
  /// (cancellation/deadline at item-claim granularity: a cancel drains the
  /// queue for salvage, a deadline or any other control error aborts).
  /// Returns false when the worker should stop claiming: queue exhausted,
  /// a sibling aborted, or a cancel was observed.
  bool claim(std::size_t* range, std::size_t* chunk, std::size_t* buf) EXCLUDES(mutex_) {
    if (control_) {
      try {
        control_->poll();
      } catch (const CancelledError&) {
        record_cancel();
        return false;
      } catch (...) {
        // A non-cancel control error (deadline, memory ceiling) aborts the
        // sweep; stash the exception OBJECT explicitly so finish() rethrows
        // the TimeoutError/MemoryOutError that actually fired, never a
        // generic "a worker stopped".
        record_abort(std::current_exception());
        return false;
      }
    }
    const support::MutexLock lock(mutex_);
    while (!(aborted_ || cancelled_ || next_item_ >= num_items_ || !free_bufs_.empty()))
      cv_.wait(mutex_);
    if (aborted_ || cancelled_ || next_item_ >= num_items_) return false;
    const std::size_t item = next_item_++;
    *buf = free_bufs_.back();
    free_bufs_.pop_back();
    if (next_item_ >= num_items_) cv_.notify_all();
    // Range-major item order: for any chunk, lower term ranges are
    // dispensed first, so every stashed buffer's predecessor is already in
    // flight -- the fold below always advances.
    *range = item / num_chunks_;
    *chunk = item % num_chunks_;
    return true;
  }

  /// Record the first worker/control exception (passed explicitly, never
  /// fished out of ambient state) and tell siblings to drain; finish()
  /// rethrows exactly that object after the join. The buffer-returning
  /// overload hands the claimed buffer back to the pool (an abandoned item
  /// computes nothing, so its buffer is clean).
  void record_abort(std::exception_ptr err) EXCLUDES(mutex_) {
    const support::MutexLock lock(mutex_);
    abort_locked(std::move(err));
  }
  void record_abort(std::size_t buf, std::exception_ptr err) EXCLUDES(mutex_) {
    const support::MutexLock lock(mutex_);
    free_bufs_.push_back(buf);
    abort_locked(std::move(err));
  }

  /// Record an explicit cancel: the queue drains and the caller SALVAGES
  /// completed chunks instead of throwing (xeb_sweep's salvage contract).
  void record_cancel() EXCLUDES(mutex_) {
    const support::MutexLock lock(mutex_);
    cancel_locked();
  }
  void record_cancel(std::size_t buf) EXCLUDES(mutex_) {
    const support::MutexLock lock(mutex_);
    free_bufs_.push_back(buf);
    cancel_locked();
  }

  /// Stash the completed item's buffer and fold every consecutively ready
  /// range in term-enumeration order -- the same arithmetic, in the same
  /// order, as the per-bitstring reference's reduction. Returns how many
  /// terms completed their LAST outstanding chunk (progress accounting;
  /// the caller reports them outside the lock). `buffers` is the pool
  /// storage: the claiming worker wrote values[buf] without the lock, and
  /// this mutex hand-off is what publishes them to whichever worker folds.
  std::size_t fold_item(std::size_t range, std::size_t chunk, std::size_t buf,
                        const std::vector<std::vector<cplx>>& buffers) EXCLUDES(mutex_) {
    const support::MutexLock lock(mutex_);
    ChunkFold& cf = folds_[chunk];
    cf.stash.emplace(range, buf);
    std::size_t terms_done = 0;
    for (auto it = cf.stash.find(cf.cursor); it != cf.stash.end();
         it = cf.stash.find(cf.cursor)) {
      const std::size_t fbuf = it->second;
      const std::size_t f0 = cf.cursor * term_batch_;
      const std::size_t fcount = std::min(term_batch_, num_terms_ - f0);
      const std::vector<cplx>& fv = buffers[fbuf];
      for (std::size_t t = 0; t < fcount; ++t) {
        const std::size_t u = terms_[f0 + t].level;
        for (std::size_t o = 0; o < cf.count; ++o)
          cf.sums[o * (level_ + 1) + u] += fv[t * cf.count + o];
        if (--term_pending_[f0 + t] == 0) ++terms_done;
      }
      cf.stash.erase(it);
      free_bufs_.push_back(fbuf);
      ++cf.cursor;
    }
    cv_.notify_all();
    return terms_done;
  }

  /// Teardown, called once after every worker joined: stashed buffers whose
  /// predecessor range never arrived (abort / cancel) go back to the pool,
  /// after which every buffer must be accounted for -- a leak here would
  /// strand values across reruns. Rethrows the first worker exception.
  void finish() EXCLUDES(mutex_) {
    std::exception_ptr err;
    {
      const support::MutexLock lock(mutex_);
      for (ChunkFold& cf : folds_) {
        for (const auto& [range, fbuf] : cf.stash) free_bufs_.push_back(fbuf);
        cf.stash.clear();
      }
      la::detail::require(free_bufs_.size() == pool_size_,
                          "sweep_outputs: buffer pool integrity lost during teardown");
      err = abort_error_;
    }
    if (err) std::rethrow_exception(err);
  }

  bool was_cancelled() const EXCLUDES(mutex_) {
    const support::MutexLock lock(mutex_);
    return cancelled_;
  }

  /// Move the fold results out (by value, per the no-references-into-
  /// guarded-state convention). Call after finish().
  std::vector<ChunkFold> take_folds() EXCLUDES(mutex_) {
    const support::MutexLock lock(mutex_);
    return std::move(folds_);
  }

 private:
  void abort_locked(std::exception_ptr err) REQUIRES(mutex_) {
    aborted_ = true;
    if (!abort_error_) abort_error_ = std::move(err);
    cv_.notify_all();
  }
  void cancel_locked() REQUIRES(mutex_) {
    cancelled_ = true;
    cv_.notify_all();
  }

  const std::vector<Term>& terms_;  // immutable enumeration-order term list
  const std::size_t num_terms_;
  const std::size_t num_chunks_;
  const std::size_t num_ranges_;
  const std::size_t num_items_;
  const std::size_t level_;
  const std::size_t term_batch_;
  const std::size_t pool_size_;
  const RunControl* const control_;  // polled, never written

  mutable support::Mutex mutex_;
  support::CondVar cv_;  // lint: not-guarded(condvar; always signalled with mutex_ held)
  std::size_t next_item_ GUARDED_BY(mutex_) = 0;
  bool aborted_ GUARDED_BY(mutex_) = false;    // worker threw: drain, rethrow after join
  bool cancelled_ GUARDED_BY(mutex_) = false;  // explicit cancel: drain, then SALVAGE
  std::exception_ptr abort_error_ GUARDED_BY(mutex_);
  std::vector<std::size_t> free_bufs_ GUARDED_BY(mutex_);  // bounded buffer pool
  std::vector<ChunkFold> folds_ GUARDED_BY(mutex_);
  std::vector<std::size_t> term_pending_ GUARDED_BY(mutex_);
};

// The engine behind approximate_fidelity_outputs and xeb_sweep: a single
// 2-D (term-range x output-chunk) work queue drained by `threads` workers,
// with a streaming chunk-ordered reduction.
//
//  * Items are dispensed in range-major order together with a buffer from a
//    bounded pool (threads + 2 buffers): a worker only claims an item when
//    a buffer is free, so every in-flight item is actually computing --
//    which is what guarantees the fold below always makes progress and the
//    transient value storage stays O(threads x item), never O(terms x K).
//  * Each chunk folds its term values strictly in global term-enumeration
//    order: completed items land in a per-chunk stash and are folded as
//    soon as they become the chunk's next range, reproducing the reference
//    reduction arithmetic (term_sums[level] += value, term by term) exactly
//    -- at any thread count, shard size, or completion order.
//  * A term's progress callback fires once its value has been folded for
//    every output chunk (term counts stay strictly increasing by one).
ApproxBatchResult sweep_outputs(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                std::span<const std::uint64_t> v_bits,
                                const ApproxOptions& opts, std::size_t shard_outputs) {
  const int n = nc.num_qubits();
  const std::size_t K = v_bits.size();
  BaseLists base = build_base(nc);
  const std::size_t num_sites = base.sites.size();
  const std::size_t level = std::min(opts.level, num_sites);

  ApproxBatchResult result;
  fill_error_bounds(base.sites, level, nc.max_noise_rate(), result.error_bound,
                    result.tight_error_bound);
  // K == 0 is a well-defined empty sweep: bounds only, no compiled plans
  // (a capacity-0 batched plan must never be requested).
  if (K == 0) return result;

  std::vector<qc::Gate> skeleton = base.gates;
  if (opts.eval.simplify) skeleton = qc::cancel_inverse_pairs(std::move(skeleton));
  const std::vector<std::size_t> site_pos = locate_sites(skeleton, num_sites);

  // Resolve the evaluation options once at the sweep boundary: sequence_for
  // is materialized against the final skeleton here and never re-run by the
  // templates, cache keys, or per-term evaluations below.
  EvalOptions eval = resolved_eval_options(n, skeleton, opts.eval);
  eval.simplify = false;  // already applied to the skeleton

  // Cooperative control for this sweep. Threading it through eval.tn covers
  // plan compilation; cached templates null it out of their stored options
  // (circuit_network.cpp), so a PlanCache hit can never replay a dangling
  // pointer -- per-execution polling flows through Session::set_control.
  const RunControl* control = opts.control;
  eval.tn.control = control;

  const std::vector<Term> terms = enumerate_terms(base.sites, level);
  const std::size_t num_terms = terms.size();
  const std::size_t nn = static_cast<std::size_t>(n);

  SerializedProgress progress(opts.progress);
  tn::ContractStats setup_stats;
  SweepTimer timer(result.plan_seconds, result.eval_seconds);

  const bool tn_path = opts.reuse_plans && uses_tensor_network(eval, n);

  // Output shards (work-queue granularity along the bitstring axis). The
  // reference paths default to one shard: their per-term evaluation already
  // covers every output in one evolution / one compiled template, so
  // chunking would only repeat that per-term setup.
  const std::size_t shard =
      std::min(K, shard_outputs > 0 ? shard_outputs : (tn_path ? kOutputChunk : K));
  const std::size_t num_chunks = (K + shard - 1) / shard;

  // Term ranges: batch_terms wide, additionally capped so one batched
  // traversal holds at most kMaxPairs (term, output) pairs.
  const std::size_t out_chunk = std::min(shard, kOutputChunk);
  const std::size_t term_batch =
      std::min({std::max<std::size_t>(opts.batch_terms, 1), num_terms,
                std::max<std::size_t>(kMaxPairs / out_chunk, 1)});
  const std::size_t num_ranges = (num_terms + term_batch - 1) / term_batch;

  // --- per-strategy setup (templates, plans, factor tensors) ---------------
  // A cancel that lands during setup (template/batched-plan compilation
  // polls the control) salvages the well-defined "nothing completed yet"
  // result instead of leaking a throw: cancelled = true, every output
  // invalid. Deadlines and real errors still throw from here.
  auto salvage_empty = [&]() -> ApproxBatchResult {
    result.cancelled = true;
    result.valid.assign(K, 0);
    result.values.assign(K, 0.0);
    result.raw.assign(K, cplx{0.0, 0.0});
    result.term_sums.assign(K, std::vector<cplx>(level + 1, cplx{0.0, 0.0}));
    result.level_values.assign(K, std::vector<double>(level + 1, 0.0));
    return result;
  };

  AcquiredTemplate top_at, bot_at;
  std::shared_ptr<const tn::BatchedPlan> top_bplan, bot_bplan;
  SiteFactors fac;
  std::vector<const tsr::Tensor*> caps_of_output;
  std::vector<std::size_t> slots, cap_nodes;
  std::size_t V = 0, capacity = 0;

  try {
  if (tn_path) {
    // Canonical v = 0 templates: the output caps are placeholders (always
    // substituted below), so one cached entry serves EVERY bitstring set
    // over this skeleton -- that is what makes the plan cache hit across
    // XEB batches arriving over time.
    top_at = acquire_template(opts.plan_cache, n, skeleton, psi_bits, 0, /*conjugate=*/false,
                              eval, setup_stats);
    bot_at = acquire_template(opts.plan_cache, n, skeleton, psi_bits, 0, /*conjugate=*/true,
                              eval, setup_stats);
    fac = build_site_factors(base.sites, site_pos, top_at.tmpl());

    // Per-output cap pointer table (the template's shared <0|/<1| objects,
    // so the executor's pointer compaction shares rows across bitstrings).
    // Basis caps are real, so the same tensors serve the conjugated bottom
    // layer.
    caps_of_output.resize(K * nn);
    for (std::size_t o = 0; o < K; ++o)
      top_at.tmpl().fill_output_caps(v_bits[o],
                                     std::span(caps_of_output).subspan(o * nn, nn));

    // Combined varying slots: the noise sites keep Algorithm 1's per-term
    // deviation promise (<= level), the output caps flip freely.
    cap_nodes = top_at.tmpl().output_cap_nodes();
    slots = fac.node;
    slots.insert(slots.end(), cap_nodes.begin(), cap_nodes.end());
    V = slots.size();
    std::vector<std::size_t> counts(V, 2);
    std::vector<char> unconstrained(V, 0);
    for (std::size_t s = 0; s < num_sites; ++s) counts[s] = base.sites[s].split.terms();
    for (std::size_t v = num_sites; v < V; ++v) unconstrained[v] = 1;
    capacity = term_batch * out_chunk;

    try {
      top_bplan =
          acquire_batched(top_at, slots, capacity, counts, level, unconstrained, setup_stats);
      bot_bplan =
          acquire_batched(bot_at, slots, capacity, counts, level, unconstrained, setup_stats);
      if (!output_batch_worthwhile(*top_bplan) || !output_batch_worthwhile(*bot_bplan)) {
        top_bplan.reset();
        bot_bplan.reset();
      }
    } catch (const MemoryOutError&) {
      // Combined batch exceeds the workspace budget; the per-output plan
      // replay below fits and is bit-identical.
      top_bplan.reset();
      bot_bplan.reset();
    }
  }
  } catch (const CancelledError&) {
    return salvage_empty();
  }

  // Per-worker evaluator factory for the three (bit-identical) strategies.
  std::function<WorkerEval(std::size_t)> make_eval;
  if (tn_path && top_bplan) {
    // Batched traversals: each item covers (term range x <= out_chunk
    // outputs) pairs per traversal -- noise slots level-capped, cap slots
    // unconstrained.
    make_eval = [&](std::size_t) -> WorkerEval {
      auto top_session =
          std::make_shared<AmplitudeTemplate::BatchedSession>(top_at.tmpl(), *top_bplan);
      auto bot_session =
          std::make_shared<AmplitudeTemplate::BatchedSession>(bot_at.tmpl(), *bot_bplan);
      top_session->set_control(control);
      bot_session->set_control(control);
      auto top_ptrs = std::make_shared<std::vector<const tsr::Tensor*>>(capacity * V);
      auto bot_ptrs = std::make_shared<std::vector<const tsr::Tensor*>>(capacity * V);
      auto top_amp = std::make_shared<std::vector<cplx>>(capacity);
      auto bot_amp = std::make_shared<std::vector<cplx>>(capacity);
      WorkerEval we;
      we.eval = [&, top_session, bot_session, top_ptrs, bot_ptrs, top_amp, bot_amp](
                    std::size_t t0, std::size_t tcount, std::size_t obegin,
                    std::size_t ocount, std::span<cplx> out, tn::ContractStats&) {
        for (std::size_t o0 = 0; o0 < ocount; o0 += out_chunk) {
          const std::size_t oc = std::min(out_chunk, ocount - o0);
          const std::size_t kk = tcount * oc;
          for (std::size_t t = 0; t < tcount; ++t) {
            const Term& term = terms[t0 + t];
            for (std::size_t o = 0; o < oc; ++o) {
              const std::size_t p = (t * oc + o) * V;
              // Dominant factor everywhere, subdominant at the chosen
              // sites; the output chunk's caps in the trailing slots.
              for (std::size_t s = 0; s < num_sites; ++s) {
                (*top_ptrs)[p + s] = &fac.top[s][0];
                (*bot_ptrs)[p + s] = &fac.bot[s][0];
              }
              for (std::size_t c = 0; c < term.sites.size(); ++c) {
                const std::size_t s = term.sites[c];
                (*top_ptrs)[p + s] = &fac.top[s][term.term_idx[c]];
                (*bot_ptrs)[p + s] = &fac.bot[s][term.term_idx[c]];
              }
              for (std::size_t q = 0; q < nn; ++q) {
                const tsr::Tensor* cap = caps_of_output[(obegin + o0 + o) * nn + q];
                (*top_ptrs)[p + num_sites + q] = cap;
                (*bot_ptrs)[p + num_sites + q] = cap;
              }
            }
          }
          top_session->evaluate(
              std::span<const tsr::Tensor* const>(*top_ptrs).first(kk * V), kk, *top_amp);
          bot_session->evaluate(
              std::span<const tsr::Tensor* const>(*bot_ptrs).first(kk * V), kk, *bot_amp);
          for (std::size_t t = 0; t < tcount; ++t)
            for (std::size_t o = 0; o < oc; ++o)
              out[t * ocount + o0 + o] = (*top_amp)[t * oc + o] * (*bot_amp)[t * oc + o];
        }
      };
      we.flush = [top_session, bot_session](tn::ContractStats& stats) {
        stats.merge(top_session->stats());
        stats.merge(bot_session->stats());
      };
      return we;
    };
  } else if (tn_path) {
    // Per-output plan replay: site tensors and the output's caps go in as
    // per-call session substitutions (MO'd or hopeless batched plan).
    make_eval = [&](std::size_t) -> WorkerEval {
      auto top_session = std::make_shared<AmplitudeTemplate::Session>(top_at.tmpl().session());
      auto bot_session = std::make_shared<AmplitudeTemplate::Session>(bot_at.tmpl().session());
      top_session->set_control(control);
      bot_session->set_control(control);
      auto top_subs =
          std::make_shared<std::vector<AmplitudeTemplate::Substitution>>(num_sites + nn);
      auto bot_subs =
          std::make_shared<std::vector<AmplitudeTemplate::Substitution>>(num_sites + nn);
      WorkerEval we;
      we.eval = [&, top_session, bot_session, top_subs, bot_subs](
                    std::size_t t0, std::size_t tcount, std::size_t obegin,
                    std::size_t ocount, std::span<cplx> out, tn::ContractStats&) {
        for (std::size_t t = 0; t < tcount; ++t) {
          const Term& term = terms[t0 + t];
          for (std::size_t s = 0; s < num_sites; ++s) {
            (*top_subs)[s] = {fac.node[s], &fac.top[s][0]};
            (*bot_subs)[s] = {fac.node[s], &fac.bot[s][0]};
          }
          for (std::size_t c = 0; c < term.sites.size(); ++c) {
            const std::size_t s = term.sites[c];
            (*top_subs)[s].second = &fac.top[s][term.term_idx[c]];
            (*bot_subs)[s].second = &fac.bot[s][term.term_idx[c]];
          }
          for (std::size_t o = 0; o < ocount; ++o) {
            for (std::size_t q = 0; q < nn; ++q) {
              const AmplitudeTemplate::Substitution cap{cap_nodes[q],
                                                        caps_of_output[(obegin + o) * nn + q]};
              (*top_subs)[num_sites + q] = cap;
              (*bot_subs)[num_sites + q] = cap;
            }
            const cplx top_amp = top_session->evaluate(*top_subs);
            const cplx bot_amp = bot_session->evaluate(*bot_subs);
            out[t * ocount + o] = top_amp * bot_amp;
          }
        }
      };
      we.flush = [top_session, bot_session](tn::ContractStats& stats) {
        stats.merge(top_session->stats());
        stats.merge(bot_session->stats());
      };
      return we;
    };
  } else {
    // Reference path (state-vector backend, or reuse_plans disabled): each
    // term materializes its gate lists and evaluates the chunk's outputs
    // through batch_amplitudes (one evolution / one template per layer per
    // term per chunk).
    make_eval = [&](std::size_t) -> WorkerEval {
      auto top = std::make_shared<std::vector<qc::Gate>>(skeleton);
      auto bottom = std::make_shared<std::vector<qc::Gate>>(skeleton);
      WorkerEval we;
      we.eval = [&, top, bottom](std::size_t t0, std::size_t tcount, std::size_t obegin,
                                 std::size_t ocount, std::span<cplx> out,
                                 tn::ContractStats& stats) {
        const std::span<const std::uint64_t> chunk_outputs = v_bits.subspan(obegin, ocount);
        for (std::size_t t = 0; t < tcount; ++t) {
          const Term& term = terms[t0 + t];
          for (std::size_t s = 0; s < num_sites; ++s) {
            std::size_t ti = 0;
            for (std::size_t c = 0; c < term.sites.size(); ++c)
              if (term.sites[c] == s) ti = term.term_idx[c];
            (*top)[site_pos[s]].custom = base.sites[s].split.u[ti];
            // The bottom layer is evaluated with conjugate=true (which
            // conjugates every matrix), so store conj(V) to apply V itself.
            (*bottom)[site_pos[s]].custom = base.sites[s].split.v[ti].conj();
          }
          const std::vector<cplx> top_amp = batch_amplitudes(
              n, *top, psi_bits, chunk_outputs, /*conjugate=*/false, eval, &stats);
          const std::vector<cplx> bot_amp = batch_amplitudes(
              n, *bottom, psi_bits, chunk_outputs, /*conjugate=*/true, eval, &stats);
          for (std::size_t o = 0; o < ocount; ++o) out[t * ocount + o] = top_amp[o] * bot_amp[o];
        }
      };
      we.flush = [](tn::ContractStats&) {};
      return we;
    };
  }

  // --- scheduler + streaming fold ------------------------------------------
  const std::size_t num_items = num_ranges * num_chunks;
  const std::size_t threads =
      std::max<std::size_t>(1, std::min<std::size_t>(opts.threads, num_items));
  std::vector<tn::ContractStats> worker_stats(threads);

  // Bounded buffer pool: claiming an item claims a buffer with it, so a
  // stalled chunk can never strand completed-but-unfoldable values beyond
  // the pool -- the O(outputs) table bound of the engine contract. The pool
  // STORAGE lives out here (workers write their claimed slot lock-free);
  // the free list and all other shared scheduler state live inside the
  // annotated SweepQueue above.
  const std::size_t pool_size = std::min(num_items, threads + 2);
  std::vector<std::vector<cplx>> buffers(pool_size);

  SweepQueue queue(terms, K, shard, level, term_batch, num_ranges, num_chunks,
                   pool_size, control);

  timer.eval_started();
  auto worker = [&](std::size_t w) {
    WorkerEval we;
    try {
      we = make_eval(w);  // session construction allocates; it can fail too
    } catch (...) {
      queue.record_abort(std::current_exception());
      return;
    }
    while (true) {
      std::size_t r = 0, c = 0, buf = 0;
      if (!queue.claim(&r, &c, &buf)) break;
      const std::size_t t0 = r * term_batch;
      const std::size_t tcount = std::min(term_batch, num_terms - t0);
      const std::size_t obegin = c * shard;
      const std::size_t ocount = std::min(shard, K - obegin);
      std::vector<cplx>& vbuf = buffers[buf];
      try {
        fault::poke("sweep-worker");
        vbuf.resize(tcount * ocount);
        we.eval(t0, tcount, obegin, ocount, std::span<cplx>(vbuf), worker_stats[w]);
      } catch (const CancelledError&) {
        // Step-granularity cancel inside the plan executor: the claimed item
        // is abandoned (its chunk stays short of num_ranges, so it reports
        // invalid), the buffer goes straight back to the pool, and the queue
        // drains for salvage like the claim-time cancel inside claim().
        queue.record_cancel(buf);
        break;
      } catch (...) {
        queue.record_abort(buf, std::current_exception());
        break;
      }
      std::size_t terms_done = queue.fold_item(r, c, buf, buffers);
      // The user callback runs OUTSIDE the scheduler lock: a slow callback
      // only delays this worker (the documented contract), and a throwing
      // one unwinds after the fold state and buffers are already
      // consistent, so the other workers drain the queue and the exception
      // surfaces through the join below.
      for (; terms_done > 0; --terms_done) progress.note();
    }
    we.flush(worker_stats[w]);
  };

  if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::future<void>> futures;
    futures.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w)
      futures.push_back(std::async(std::launch::async, worker, w));
    for (auto& f : futures) f.get();
  }
  queue.finish();
  timer.eval_done();

  // Deterministic stats reduction: setup first, then workers in order.
  result.contract_stats.merge(setup_stats);
  for (const tn::ContractStats& ws : worker_stats) result.contract_stats.merge(ws);

  // Per-output assembly from the streamed level sums -- the same arithmetic,
  // in the same order, as the output's single-output sweep.
  const std::vector<ChunkFold> folds = queue.take_folds();
  result.values.assign(K, 0.0);
  result.raw.assign(K, cplx{0.0, 0.0});
  result.term_sums.assign(K, std::vector<cplx>(level + 1, cplx{0.0, 0.0}));
  result.level_values.assign(K, {});
  result.cancelled = queue.was_cancelled();
  result.valid.assign(K, 1);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const ChunkFold& cf = folds[c];
    // Salvage contract: a chunk's outputs are valid only once every term
    // range has been folded into it -- those sums are then bitwise equal to
    // the uncancelled run's, because the fold order per chunk is fixed.
    const bool chunk_valid = cf.cursor == num_ranges;
    for (std::size_t o = 0; o < cf.count; ++o) {
      const std::size_t go = cf.begin + o;
      if (!chunk_valid) result.valid[go] = 0;
      for (std::size_t u = 0; u <= level; ++u)
        result.term_sums[go][u] = cf.sums[o * (level + 1) + u];
      for (std::size_t u = 0; u <= level; ++u) {
        result.raw[go] += result.term_sums[go][u];
        result.level_values[go].push_back(result.raw[go].real());
      }
      result.values[go] = result.raw[go].real();
    }
  }
  result.contractions = 2 * num_terms * K;
  return result;
}

}  // namespace

double ApproxCostModel::error_bound(std::size_t level) const {
  return generalized_error_bound(dominant_norms, subdominant_norms,
                                 std::min(level, num_sites));
}

double ApproxCostModel::term_count(std::size_t level) const {
  // Elementary symmetric sums over the per-site subdominant choice counts
  // (split_terms[s] - 1): e_u sums the products over every u-subset of
  // sites, so the level-l sweep enumerates sum_{u<=l} e_u terms -- equal to
  // sum_{u<=l} C(N,u) 3^u (contraction_count / 2) when every site is
  // 1-qubit.
  const std::size_t l = std::min(level, num_sites);
  std::vector<double> e(l + 1, 0.0);
  e[0] = 1.0;
  for (std::size_t s = 0; s < num_sites; ++s) {
    const double choices = static_cast<double>(split_terms[s] - 1);
    for (std::size_t u = std::min(l, s + 1); u > 0; --u) e[u] += e[u - 1] * choices;
  }
  double total = 0.0;
  for (const double x : e) total += x;
  return total;
}

ApproxCostModel approx_cost_model(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                  std::uint64_t v_bits, const ApproxOptions& opts) {
  const int n = nc.num_qubits();
  BaseLists base = build_base(nc);

  ApproxCostModel model;
  model.num_sites = base.sites.size();
  model.max_rate = nc.max_noise_rate();
  for (const Site& s : base.sites) {
    model.dominant_norms.push_back(la::spectral_norm(s.split.term(0)));
    model.subdominant_norms.push_back(s.split.dominant_term_error());
    model.split_terms.push_back(s.split.terms());
    if (s.arity != 1) model.all_1q = false;
  }

  // Same skeleton pipeline as the sweeps: simplify once, locate the (guarded)
  // insertions, resolve the options at the boundary.
  std::vector<qc::Gate> skeleton = std::move(base.gates);
  if (opts.eval.simplify) skeleton = qc::cancel_inverse_pairs(std::move(skeleton));
  locate_sites(skeleton, model.num_sites);
  EvalOptions eval = resolved_eval_options(n, skeleton, opts.eval);
  eval.simplify = false;

  model.tensor_network = uses_tensor_network(eval, n);
  if (model.tensor_network) {
    // Compile (or fetch) the top-layer template under the sweep's own cache
    // key: the plan's flops/arena ARE the per-layer cost, and a cache miss
    // here is work the run would have paid anyway.
    tn::ContractStats setup_stats;
    const AcquiredTemplate top = acquire_template(opts.plan_cache, n, skeleton, psi_bits,
                                                  v_bits, /*conjugate=*/false, eval,
                                                  setup_stats);
    const tn::ContractionPlan& plan = top.tmpl().plan();
    model.layer_flops = static_cast<double>(plan.total_flops());
    model.peak_elems = plan.workspace_elems();
  } else {
    // State-vector path: one forward evolution per layer, a 2x2 (4x4) row
    // update per amplitude per gate.
    const double dim = std::pow(2.0, std::min(n, 62));
    double flops = 0.0;
    for (const qc::Gate& g : skeleton) flops += (g.num_qubits() == 1 ? 2.0 : 4.0) * dim;
    model.layer_flops = flops;
    model.peak_elems = static_cast<std::size_t>(dim);
  }
  return model;
}

ApproxResult approximate_fidelity(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                  std::uint64_t v_bits, const ApproxOptions& opts) {
  const int n = nc.num_qubits();
  BaseLists base = build_base(nc);
  const std::size_t num_sites = base.sites.size();
  const std::size_t level = std::min(opts.level, num_sites);

  // Simplify once: every noise site carries an insertion in every term, so
  // the cancellation structure is term-independent.
  std::vector<qc::Gate> skeleton = base.gates;
  if (opts.eval.simplify) skeleton = qc::cancel_inverse_pairs(std::move(skeleton));
  const std::vector<std::size_t> site_pos = locate_sites(skeleton, num_sites);

  // Resolve the evaluation options once at the sweep boundary (see
  // sweep_outputs): downstream resolution sites become pass-throughs.
  EvalOptions eval = resolved_eval_options(n, skeleton, opts.eval);
  eval.simplify = false;  // already applied to the skeleton

  // Cooperative control (see sweep_outputs): plan compiles poll through
  // eval.tn, per-term execution polls through the sessions / workspaces.
  const RunControl* control = opts.control;
  eval.tn.control = control;

  const std::vector<Term> terms = enumerate_terms(base.sites, level);

  ApproxResult result;
  result.term_sums.assign(level + 1, cplx{0.0, 0.0});

  SerializedProgress progress(opts.progress);
  auto note_progress = [&] { progress.note(); };

  std::vector<cplx> values(terms.size());
  const std::size_t threads =
      std::max<std::size_t>(1, std::min<std::size_t>(opts.threads, terms.size()));
  auto run_workers = [&](const std::function<void(std::size_t, std::size_t, std::size_t)>&
                             body) { run_partitioned(threads, terms.size(), body); };

  std::vector<tn::ContractStats> worker_stats(threads);
  tn::ContractStats setup_stats;
  SweepTimer timer(result.plan_seconds, result.eval_seconds);

  if (opts.reuse_plans && uses_tensor_network(eval, n)) {
    // Plan/execute fast path: every term's top (bottom) network shares one
    // topology -- only the tensors at the u chosen noise sites change. Plan
    // each single-layer network once (or fetch it from the plan cache),
    // then replay the plan per term with substituted site tensors, one
    // workspace per worker.
    const AcquiredTemplate top_at = acquire_template(
        opts.plan_cache, n, skeleton, psi_bits, v_bits, /*conjugate=*/false, eval, setup_stats);
    const AcquiredTemplate bot_at = acquire_template(
        opts.plan_cache, n, skeleton, psi_bits, v_bits, /*conjugate=*/true, eval, setup_stats);
    const AmplitudeTemplate& top_tmpl = top_at.tmpl();
    const AmplitudeTemplate& bot_tmpl = bot_at.tmpl();

    const SiteFactors fac = build_site_factors(base.sites, site_pos, top_tmpl);
    const std::vector<std::size_t>& site_node = fac.node;
    const std::vector<std::vector<tsr::Tensor>>& top_fac = fac.top;
    const std::vector<std::vector<tsr::Tensor>>& bot_fac = fac.bot;

    // Batch size: ApproxOptions::batch_terms clamped to the term count;
    // <= 1 selects the per-term replay reference path below.
    const std::size_t batch =
        std::min(std::max<std::size_t>(opts.batch_terms, 1), terms.size());
    if (batch > 1) {
      // Batched replay: each worker chunks its range and executes every
      // chunk in one plan traversal (shared-cone steps once per chunk,
      // duplicate slices memcpy'd). Bit-identical to the per-term path at
      // any batch size -- the reduction below still runs per term in
      // enumeration order.
      // Each site only ever substitutes one of its split factors, which
      // bounds every step's distinct rows by the variant product of its
      // cone -- most of the batched arena shrinks accordingly.
      std::vector<std::size_t> variant_counts(num_sites);
      for (std::size_t s = 0; s < num_sites; ++s)
        variant_counts[s] = base.sites[s].split.terms();
      // At level l every term deviates from the dominant assignment at u <=
      // l sites, which tightens the batched row bounds substantially.
      const std::shared_ptr<const tn::BatchedPlan> top_bplan =
          acquire_batched(top_at, site_node, batch, variant_counts, level, {}, setup_stats);
      const std::shared_ptr<const tn::BatchedPlan> bot_bplan =
          acquire_batched(bot_at, site_node, batch, variant_counts, level, {}, setup_stats);

      timer.eval_started();
      run_workers([&](std::size_t w, std::size_t begin, std::size_t end) {
        AmplitudeTemplate::BatchedSession top_session(top_tmpl, *top_bplan);
        AmplitudeTemplate::BatchedSession bot_session(bot_tmpl, *bot_bplan);
        top_session.set_control(control);
        bot_session.set_control(control);
        std::vector<const tsr::Tensor*> top_ptrs(batch * num_sites);
        std::vector<const tsr::Tensor*> bot_ptrs(batch * num_sites);
        std::vector<cplx> top_amp(batch), bot_amp(batch);
        for (std::size_t b0 = begin; b0 < end; b0 += batch) {
          const std::size_t kk = std::min(batch, end - b0);
          for (std::size_t t = 0; t < kk; ++t) {
            const Term& term = terms[b0 + t];
            // Dominant factor everywhere, subdominant at the chosen sites.
            for (std::size_t s = 0; s < num_sites; ++s) {
              top_ptrs[t * num_sites + s] = &top_fac[s][0];
              bot_ptrs[t * num_sites + s] = &bot_fac[s][0];
            }
            for (std::size_t c = 0; c < term.sites.size(); ++c) {
              const std::size_t s = term.sites[c];
              top_ptrs[t * num_sites + s] = &top_fac[s][term.term_idx[c]];
              bot_ptrs[t * num_sites + s] = &bot_fac[s][term.term_idx[c]];
            }
          }
          top_session.evaluate(std::span(top_ptrs).first(kk * num_sites), kk, top_amp);
          bot_session.evaluate(std::span(bot_ptrs).first(kk * num_sites), kk, bot_amp);
          for (std::size_t t = 0; t < kk; ++t) {
            values[b0 + t] = top_amp[t] * bot_amp[t];
            note_progress();
          }
        }
        worker_stats[w].merge(top_session.stats());
        worker_stats[w].merge(bot_session.stats());
      });
      timer.eval_done();
    } else {
      timer.eval_started();
      run_workers([&](std::size_t w, std::size_t begin, std::size_t end) {
        AmplitudeTemplate::Session top_session = top_tmpl.session();
        AmplitudeTemplate::Session bot_session = bot_tmpl.session();
        top_session.set_control(control);
        bot_session.set_control(control);
        std::vector<AmplitudeTemplate::Substitution> top_subs(num_sites), bot_subs(num_sites);
        for (std::size_t i = begin; i < end; ++i) {
          const Term& term = terms[i];
          // Dominant factor everywhere, subdominant at the chosen sites.
          for (std::size_t s = 0; s < num_sites; ++s) {
            top_subs[s] = {site_node[s], &top_fac[s][0]};
            bot_subs[s] = {site_node[s], &bot_fac[s][0]};
          }
          for (std::size_t c = 0; c < term.sites.size(); ++c) {
            const std::size_t s = term.sites[c];
            top_subs[s].second = &top_fac[s][term.term_idx[c]];
            bot_subs[s].second = &bot_fac[s][term.term_idx[c]];
          }
          const cplx top_amp = top_session.evaluate(top_subs);
          const cplx bot_amp = bot_session.evaluate(bot_subs);
          note_progress();
          values[i] = top_amp * bot_amp;
        }
        worker_stats[w].merge(top_session.stats());
        worker_stats[w].merge(bot_session.stats());
      });
      timer.eval_done();
    }
  } else {
    // Reference path (state-vector backend, or reuse_plans disabled):
    // each term materializes its gate lists and evaluates them standalone,
    // re-planning any tensor-network contraction from scratch. Each worker
    // owns private copies of the skeleton.
    auto eval_term = [&](const Term& term, std::vector<qc::Gate>& top,
                         std::vector<qc::Gate>& bottom, tn::ContractStats* stats) {
      if (control) control->poll();  // SV terms have no inner poll points
      for (std::size_t s = 0; s < num_sites; ++s) {
        std::size_t t = 0;
        for (std::size_t c = 0; c < term.sites.size(); ++c)
          if (term.sites[c] == s) t = term.term_idx[c];
        top[site_pos[s]].custom = base.sites[s].split.u[t];
        // The bottom layer is evaluated with conjugate=true (which
        // conjugates every matrix), so store conj(V) to apply V itself.
        bottom[site_pos[s]].custom = base.sites[s].split.v[t].conj();
      }
      const cplx top_amp = amplitude(n, top, psi_bits, v_bits, /*conjugate=*/false, eval, stats);
      const cplx bot_amp = amplitude(n, bottom, psi_bits, v_bits, /*conjugate=*/true, eval, stats);
      note_progress();
      return top_amp * bot_amp;
    };

    timer.eval_started();
    run_workers([&](std::size_t w, std::size_t begin, std::size_t end) {
      std::vector<qc::Gate> top = skeleton, bottom = skeleton;
      for (std::size_t i = begin; i < end; ++i)
        values[i] = eval_term(terms[i], top, bottom, &worker_stats[w]);
    });
    timer.eval_done();
  }

  // Deterministic stats reduction: setup first, then workers in order.
  result.contract_stats.merge(setup_stats);
  for (const tn::ContractStats& ws : worker_stats) result.contract_stats.merge(ws);

  // Deterministic reduction in enumeration order.
  for (std::size_t i = 0; i < terms.size(); ++i) result.term_sums[terms[i].level] += values[i];
  for (std::size_t u = 0; u <= level; ++u) {
    result.raw += result.term_sums[u];
    result.level_values.push_back(result.raw.real());
  }
  result.contractions = 2 * terms.size();
  result.value = result.raw.real();

  fill_error_bounds(base.sites, level, nc.max_noise_rate(), result.error_bound,
                    result.tight_error_bound);
  return result;
}

ApproxBatchResult approximate_fidelity_outputs(const ch::NoisyCircuit& nc,
                                               std::uint64_t psi_bits,
                                               std::span<const std::uint64_t> v_bits,
                                               const ApproxOptions& opts) {
  ApproxBatchResult r = sweep_outputs(nc, psi_bits, v_bits, opts, /*shard_outputs=*/0);
  // This entry point's contract matches approximate_fidelity: a cancel
  // raises. Salvage semantics (partial results + validity mask) are
  // xeb_sweep's contract only.
  if (r.cancelled)
    throw CancelledError("approximate_fidelity_outputs cancelled via RunControl");
  return r;
}

ApproxBatchResult xeb_sweep(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                            std::span<const std::uint64_t> v_bits, const SweepOptions& opts) {
  return sweep_outputs(nc, psi_bits, v_bits, opts.approx, opts.shard_outputs);
}

ch::NoisyCircuit with_ideal_output_projector(const ch::NoisyCircuit& nc) {
  ch::NoisyCircuit out = nc;
  const qc::Circuit inverse = nc.gates_only().adjoint();
  for (const qc::Gate& g : inverse.gates()) out.add_gate(g);
  return out;
}

}  // namespace noisim::core
