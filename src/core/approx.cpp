#include "core/approx.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <mutex>
#include <optional>
#include <thread>

#include "circuit/simplify.hpp"
#include "core/bounds.hpp"
#include "linalg/svd.hpp"

namespace noisim::core {

namespace {

// Placeholder matrices for not-yet-assigned noise insertions. Deliberately
// non-unitary so inverse-pair cancellation can never pair them with a gate.
la::Matrix placeholder_1q() { return la::Matrix{{2.0, 0.0}, {0.0, 3.0}}; }
la::Matrix placeholder_2q() {
  la::Matrix m(4, 4);
  m(0, 0) = 2.0;
  m(1, 1) = 3.0;
  m(2, 2) = 5.0;
  m(3, 3) = 7.0;
  return m;
}

struct Site {
  std::size_t arity;  // 1 or 2 qubits
  SplitNoise split;
  double rate;  // noise rate of the channel (for the Theorem-1 bound)
};

struct BaseLists {
  std::vector<qc::Gate> gates;  // circuit gates + tagged placeholders
  std::vector<Site> sites;
};

// Gate-list skeleton with one tagged placeholder per noise site. The tag
// (params[0]) survives simplification, so insertion positions can be
// located after inverse-pair cancellation.
BaseLists build_base(const ch::NoisyCircuit& nc) {
  BaseLists base;
  for (const ch::Op& op : nc.ops()) {
    if (const qc::Gate* g = std::get_if<qc::Gate>(&op)) {
      base.gates.push_back(*g);
      continue;
    }
    const ch::NoiseOp& noise = std::get<ch::NoiseOp>(op);
    qc::Gate tag = noise.num_qubits() == 1
                       ? qc::u1q(noise.qubit, placeholder_1q())
                       : qc::u2q(noise.qubit, noise.qubit2, placeholder_2q());
    tag.params = {static_cast<double>(base.sites.size())};
    base.gates.push_back(std::move(tag));

    Site site;
    site.arity = static_cast<std::size_t>(noise.num_qubits());
    site.split = split_noise(noise.channel);
    site.rate = noise.channel.noise_rate();
    const std::size_t want = site.arity == 1 ? 4 : 16;
    la::detail::require(site.split.terms() == want,
                        "approximate_fidelity: unexpected split term count");
    base.sites.push_back(std::move(site));
  }
  return base;
}

// All size-k subsets of {0, ..., n-1} in lexicographic order.
std::vector<std::vector<std::size_t>> combinations(std::size_t n, std::size_t k) {
  std::vector<std::vector<std::size_t>> out;
  if (k > n) return out;
  std::vector<std::size_t> cur(k);
  for (std::size_t i = 0; i < k; ++i) cur[i] = i;
  while (true) {
    out.push_back(cur);
    if (k == 0) break;
    std::size_t i = k;
    bool advanced = false;
    while (i-- > 0) {
      if (cur[i] + (k - i) < n) {
        ++cur[i];
        for (std::size_t j = i + 1; j < k; ++j) cur[j] = cur[j - 1] + 1;
        advanced = true;
        break;
      }
    }
    if (!advanced) break;
  }
  return out;
}

// Indices of the tagged placeholders inside a (possibly simplified) list.
std::vector<std::size_t> locate_sites(const std::vector<qc::Gate>& gates,
                                      std::size_t num_sites) {
  std::vector<std::size_t> pos(num_sites, static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const qc::Gate& g = gates[i];
    if ((g.kind == qc::GateKind::U1q || g.kind == qc::GateKind::U2q) && g.params.size() == 1)
      pos[static_cast<std::size_t>(g.params[0])] = i;
  }
  for (std::size_t p : pos)
    la::detail::require(p != static_cast<std::size_t>(-1),
                        "approximate_fidelity: insertion lost during simplification");
  return pos;
}

// One enumerated term: which sites carry which subdominant index.
struct Term {
  std::size_t level;
  std::vector<std::size_t> sites;
  std::vector<std::size_t> term_idx;
};

std::vector<Term> enumerate_terms(const std::vector<Site>& sites, std::size_t level) {
  std::vector<Term> out;
  for (std::size_t u = 0; u <= level; ++u) {
    for (const std::vector<std::size_t>& chosen : combinations(sites.size(), u)) {
      std::vector<std::size_t> idx(u, 1);
      while (true) {
        out.push_back(Term{u, chosen, idx});
        std::size_t pos = 0;
        while (pos < u && idx[pos] + 1 == sites[chosen[pos]].split.terms()) idx[pos++] = 1;
        if (pos == u) break;
        ++idx[pos];
      }
    }
  }
  return out;
}

// Deterministic static partition shared by both sweeps: worker w owns a
// contiguous, balanced index range (sizes differ by at most one, so no
// worker sits idle), and the index-to-worker assignment is a pure function
// of (total, threads). No two workers share an output slot, and reductions
// run on the joined values in enumeration order either way.
void run_partitioned(std::size_t threads, std::size_t total,
                     const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (threads <= 1) {
    body(0, 0, total);
    return;
  }
  const std::size_t base_size = total / threads;
  const std::size_t remainder = total % threads;
  std::vector<std::future<void>> workers;
  std::size_t begin = 0;
  for (std::size_t w = 0; w < threads; ++w) {
    const std::size_t end = begin + base_size + (w < remainder ? 1 : 0);
    workers.push_back(
        std::async(std::launch::async, [&body, w, begin, end] { body(w, begin, end); }));
    begin = end;
  }
  for (auto& f : workers) f.get();  // rethrows worker exceptions
}

// Shared progress accounting (the contract ApproxOptions::progress
// documents): the counter is atomic and the possibly-not-thread-safe user
// callback is serialized behind a mutex, incremented inside the lock so
// observed values are strictly increasing by one.
class SerializedProgress {
 public:
  explicit SerializedProgress(const std::function<void(std::size_t)>& callback)
      : callback_(callback) {}
  void note() {
    if (callback_) {
      const std::lock_guard<std::mutex> lock(mutex_);
      callback_(++done_);
    } else {
      ++done_;
    }
  }

 private:
  const std::function<void(std::size_t)>& callback_;
  std::atomic<std::size_t> done_{0};
  std::mutex mutex_;
};

// Wall-clock split of a sweep: everything before eval_started() is the
// upfront setup (network build + plan compilation, paid once per sweep),
// everything after is the per-term evaluation loop.
class SweepTimer {
 public:
  SweepTimer(double& plan_seconds, double& eval_seconds)
      : plan_seconds_(plan_seconds), eval_seconds_(eval_seconds) {}
  void eval_started() {
    eval_started_ = Clock::now();
    plan_seconds_ = std::chrono::duration<double>(eval_started_ - setup_started_).count();
  }
  void eval_done() {
    eval_seconds_ = std::chrono::duration<double>(Clock::now() - eval_started_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  double& plan_seconds_;
  double& eval_seconds_;
  Clock::time_point setup_started_ = Clock::now();
  Clock::time_point eval_started_{};
};

// Tensorized SVD factors per (site, term index) and the network node each
// site substitutes, shared by both sweeps. The bottom template is built
// with conjugate=true, which conjugates whatever matrix the site gate
// carries; the seed path stored conj(V) there to apply V itself, and
// conj(conj(V)) == V bitwise, so V enters the substitution directly.
struct SiteFactors {
  std::vector<std::size_t> node;                   // network node per site
  std::vector<std::vector<tsr::Tensor>> top, bot;  // U / V factor tensors
};
SiteFactors build_site_factors(const std::vector<Site>& sites,
                               const std::vector<std::size_t>& site_pos,
                               const AmplitudeTemplate& tmpl) {
  SiteFactors f;
  const std::size_t num_sites = sites.size();
  f.node.resize(num_sites);
  f.top.resize(num_sites);
  f.bot.resize(num_sites);
  for (std::size_t s = 0; s < num_sites; ++s) {
    f.node[s] = tmpl.node_of_gate(site_pos[s]);
    const Site& site = sites[s];
    for (std::size_t t = 0; t < site.split.terms(); ++t) {
      f.top[s].push_back(gate_matrix_tensor(site.split.u[t], static_cast<int>(site.arity)));
      f.bot[s].push_back(gate_matrix_tensor(site.split.v[t], static_cast<int>(site.arity)));
    }
  }
  return f;
}

// Error bounds: the paper's Theorem 1 when every site is 1-qubit, and the
// generalized per-site product bound (numerically tight) always.
void fill_error_bounds(const std::vector<Site>& sites, std::size_t level, double max_rate,
                       double& error_bound, double& tight_error_bound) {
  std::vector<double> dominant_norms, subdominant_norms;
  bool all_1q = true;
  for (const Site& s : sites) {
    dominant_norms.push_back(la::spectral_norm(s.split.term(0)));
    subdominant_norms.push_back(s.split.dominant_term_error());
    if (s.arity != 1) all_1q = false;
  }
  tight_error_bound = generalized_error_bound(dominant_norms, subdominant_norms, level);
  error_bound =
      all_1q ? theorem1_error_bound(sites.size(), max_rate, level) : tight_error_bound;
}

}  // namespace

ApproxResult approximate_fidelity(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                  std::uint64_t v_bits, const ApproxOptions& opts) {
  const int n = nc.num_qubits();
  BaseLists base = build_base(nc);
  const std::size_t num_sites = base.sites.size();
  const std::size_t level = std::min(opts.level, num_sites);

  // Simplify once: every noise site carries an insertion in every term, so
  // the cancellation structure is term-independent.
  std::vector<qc::Gate> skeleton = base.gates;
  if (opts.eval.simplify) skeleton = qc::cancel_inverse_pairs(std::move(skeleton));
  const std::vector<std::size_t> site_pos = locate_sites(skeleton, num_sites);

  EvalOptions eval = opts.eval;
  eval.simplify = false;  // already applied to the skeleton

  const std::vector<Term> terms = enumerate_terms(base.sites, level);

  ApproxResult result;
  result.term_sums.assign(level + 1, cplx{0.0, 0.0});

  SerializedProgress progress(opts.progress);
  auto note_progress = [&] { progress.note(); };

  std::vector<cplx> values(terms.size());
  const std::size_t threads =
      std::max<std::size_t>(1, std::min<std::size_t>(opts.threads, terms.size()));
  auto run_workers = [&](const std::function<void(std::size_t, std::size_t, std::size_t)>&
                             body) { run_partitioned(threads, terms.size(), body); };

  std::vector<tn::ContractStats> worker_stats(threads);
  SweepTimer timer(result.plan_seconds, result.eval_seconds);

  if (opts.reuse_plans && uses_tensor_network(eval, n)) {
    // Plan/execute fast path: every term's top (bottom) network shares one
    // topology -- only the tensors at the u chosen noise sites change. Plan
    // each single-layer network once, then replay the plan per term with
    // substituted site tensors, one workspace per worker.
    const AmplitudeTemplate top_tmpl(n, skeleton, psi_bits, v_bits, /*conjugate=*/false, eval);
    const AmplitudeTemplate bot_tmpl(n, skeleton, psi_bits, v_bits, /*conjugate=*/true, eval);

    const SiteFactors fac = build_site_factors(base.sites, site_pos, top_tmpl);
    const std::vector<std::size_t>& site_node = fac.node;
    const std::vector<std::vector<tsr::Tensor>>& top_fac = fac.top;
    const std::vector<std::vector<tsr::Tensor>>& bot_fac = fac.bot;

    // Batch size: ApproxOptions::batch_terms clamped to the term count;
    // <= 1 selects the per-term replay reference path below.
    const std::size_t batch =
        std::min(std::max<std::size_t>(opts.batch_terms, 1), terms.size());
    if (batch > 1) {
      // Batched replay: each worker chunks its range and executes every
      // chunk in one plan traversal (shared-cone steps once per chunk,
      // duplicate slices memcpy'd). Bit-identical to the per-term path at
      // any batch size -- the reduction below still runs per term in
      // enumeration order.
      // Each site only ever substitutes one of its split factors, which
      // bounds every step's distinct rows by the variant product of its
      // cone -- most of the batched arena shrinks accordingly.
      std::vector<std::size_t> variant_counts(num_sites);
      for (std::size_t s = 0; s < num_sites; ++s)
        variant_counts[s] = base.sites[s].split.terms();
      // At level l every term deviates from the dominant assignment at u <=
      // l sites, which tightens the batched row bounds substantially.
      tn::ContractStats batched_compile_stats;
      const tn::BatchedPlan top_bplan = top_tmpl.compile_batched(
          site_node, batch, &batched_compile_stats, variant_counts, level);
      const tn::BatchedPlan bot_bplan = bot_tmpl.compile_batched(
          site_node, batch, &batched_compile_stats, variant_counts, level);

      timer.eval_started();
      run_workers([&](std::size_t w, std::size_t begin, std::size_t end) {
        AmplitudeTemplate::BatchedSession top_session(top_tmpl, top_bplan);
        AmplitudeTemplate::BatchedSession bot_session(bot_tmpl, bot_bplan);
        std::vector<const tsr::Tensor*> top_ptrs(batch * num_sites);
        std::vector<const tsr::Tensor*> bot_ptrs(batch * num_sites);
        std::vector<cplx> top_amp(batch), bot_amp(batch);
        for (std::size_t b0 = begin; b0 < end; b0 += batch) {
          const std::size_t kk = std::min(batch, end - b0);
          for (std::size_t t = 0; t < kk; ++t) {
            const Term& term = terms[b0 + t];
            // Dominant factor everywhere, subdominant at the chosen sites.
            for (std::size_t s = 0; s < num_sites; ++s) {
              top_ptrs[t * num_sites + s] = &top_fac[s][0];
              bot_ptrs[t * num_sites + s] = &bot_fac[s][0];
            }
            for (std::size_t c = 0; c < term.sites.size(); ++c) {
              const std::size_t s = term.sites[c];
              top_ptrs[t * num_sites + s] = &top_fac[s][term.term_idx[c]];
              bot_ptrs[t * num_sites + s] = &bot_fac[s][term.term_idx[c]];
            }
          }
          top_session.evaluate(std::span(top_ptrs).first(kk * num_sites), kk, top_amp);
          bot_session.evaluate(std::span(bot_ptrs).first(kk * num_sites), kk, bot_amp);
          for (std::size_t t = 0; t < kk; ++t) {
            values[b0 + t] = top_amp[t] * bot_amp[t];
            note_progress();
          }
        }
        worker_stats[w].merge(top_session.stats());
        worker_stats[w].merge(bot_session.stats());
      });
      timer.eval_done();
      result.contract_stats.merge(batched_compile_stats);
    } else {
      timer.eval_started();
      run_workers([&](std::size_t w, std::size_t begin, std::size_t end) {
        AmplitudeTemplate::Session top_session = top_tmpl.session();
        AmplitudeTemplate::Session bot_session = bot_tmpl.session();
        std::vector<AmplitudeTemplate::Substitution> top_subs(num_sites), bot_subs(num_sites);
        for (std::size_t i = begin; i < end; ++i) {
          const Term& term = terms[i];
          // Dominant factor everywhere, subdominant at the chosen sites.
          for (std::size_t s = 0; s < num_sites; ++s) {
            top_subs[s] = {site_node[s], &top_fac[s][0]};
            bot_subs[s] = {site_node[s], &bot_fac[s][0]};
          }
          for (std::size_t c = 0; c < term.sites.size(); ++c) {
            const std::size_t s = term.sites[c];
            top_subs[s].second = &top_fac[s][term.term_idx[c]];
            bot_subs[s].second = &bot_fac[s][term.term_idx[c]];
          }
          const cplx top_amp = top_session.evaluate(top_subs);
          const cplx bot_amp = bot_session.evaluate(bot_subs);
          note_progress();
          values[i] = top_amp * bot_amp;
        }
        worker_stats[w].merge(top_session.stats());
        worker_stats[w].merge(bot_session.stats());
      });
      timer.eval_done();
    }
    result.contract_stats.merge(top_tmpl.compile_stats());
    result.contract_stats.merge(bot_tmpl.compile_stats());
  } else {
    // Reference path (state-vector backend, or reuse_plans disabled):
    // each term materializes its gate lists and evaluates them standalone,
    // re-planning any tensor-network contraction from scratch. Each worker
    // owns private copies of the skeleton.
    auto eval_term = [&](const Term& term, std::vector<qc::Gate>& top,
                         std::vector<qc::Gate>& bottom, tn::ContractStats* stats) {
      for (std::size_t s = 0; s < num_sites; ++s) {
        std::size_t t = 0;
        for (std::size_t c = 0; c < term.sites.size(); ++c)
          if (term.sites[c] == s) t = term.term_idx[c];
        top[site_pos[s]].custom = base.sites[s].split.u[t];
        // The bottom layer is evaluated with conjugate=true (which
        // conjugates every matrix), so store conj(V) to apply V itself.
        bottom[site_pos[s]].custom = base.sites[s].split.v[t].conj();
      }
      const cplx top_amp = amplitude(n, top, psi_bits, v_bits, /*conjugate=*/false, eval, stats);
      const cplx bot_amp = amplitude(n, bottom, psi_bits, v_bits, /*conjugate=*/true, eval, stats);
      note_progress();
      return top_amp * bot_amp;
    };

    timer.eval_started();
    run_workers([&](std::size_t w, std::size_t begin, std::size_t end) {
      std::vector<qc::Gate> top = skeleton, bottom = skeleton;
      for (std::size_t i = begin; i < end; ++i)
        values[i] = eval_term(terms[i], top, bottom, &worker_stats[w]);
    });
    timer.eval_done();
  }

  // Deterministic stats reduction in worker order.
  for (const tn::ContractStats& ws : worker_stats) result.contract_stats.merge(ws);

  // Deterministic reduction in enumeration order.
  for (std::size_t i = 0; i < terms.size(); ++i) result.term_sums[terms[i].level] += values[i];
  for (std::size_t u = 0; u <= level; ++u) {
    result.raw += result.term_sums[u];
    result.level_values.push_back(result.raw.real());
  }
  result.contractions = 2 * terms.size();
  result.value = result.raw.real();

  fill_error_bounds(base.sites, level, nc.max_noise_rate(), result.error_bound,
                    result.tight_error_bound);
  return result;
}

ApproxBatchResult approximate_fidelity_outputs(const ch::NoisyCircuit& nc,
                                               std::uint64_t psi_bits,
                                               std::span<const std::uint64_t> v_bits,
                                               const ApproxOptions& opts) {
  const int n = nc.num_qubits();
  const std::size_t K = v_bits.size();
  BaseLists base = build_base(nc);
  const std::size_t num_sites = base.sites.size();
  const std::size_t level = std::min(opts.level, num_sites);

  ApproxBatchResult result;
  fill_error_bounds(base.sites, level, nc.max_noise_rate(), result.error_bound,
                    result.tight_error_bound);
  if (K == 0) return result;

  std::vector<qc::Gate> skeleton = base.gates;
  if (opts.eval.simplify) skeleton = qc::cancel_inverse_pairs(std::move(skeleton));
  const std::vector<std::size_t> site_pos = locate_sites(skeleton, num_sites);

  EvalOptions eval = opts.eval;
  eval.simplify = false;  // already applied to the skeleton

  const std::vector<Term> terms = enumerate_terms(base.sites, level);

  // Progress counts TERMS (each term covers all K outputs), serialized and
  // monotone exactly like the single-output sweep.
  SerializedProgress progress(opts.progress);
  auto note_progress = [&] { progress.note(); };

  // Term-major value table: values[i * K + o] = term i at output o. Workers
  // own disjoint term ranges; the per-output reduction below runs in
  // enumeration order, so every output reproduces its single-output sweep
  // bit for bit. (That contract is why the whole table is materialized --
  // partial-sum merges would change the floating-point fold; very large
  // K x terms sweeps should shard v_bits across calls instead.)
  std::vector<cplx> values(terms.size() * K);
  const std::size_t threads =
      std::max<std::size_t>(1, std::min<std::size_t>(opts.threads, terms.size()));
  auto run_workers = [&](const std::function<void(std::size_t, std::size_t, std::size_t)>&
                             body) { run_partitioned(threads, terms.size(), body); };

  std::vector<tn::ContractStats> worker_stats(threads);
  SweepTimer timer(result.plan_seconds, result.eval_seconds);

  if (opts.reuse_plans && uses_tensor_network(eval, n)) {
    // The templates' own caps are placeholders: the output caps are always
    // substituted (batched varying slots or per-output session subs).
    const AmplitudeTemplate top_tmpl(n, skeleton, psi_bits, v_bits[0], /*conjugate=*/false,
                                     eval);
    const AmplitudeTemplate bot_tmpl(n, skeleton, psi_bits, v_bits[0], /*conjugate=*/true,
                                     eval);

    const SiteFactors fac = build_site_factors(base.sites, site_pos, top_tmpl);
    const std::vector<std::size_t>& site_node = fac.node;
    const std::vector<std::vector<tsr::Tensor>>& top_fac = fac.top;
    const std::vector<std::vector<tsr::Tensor>>& bot_fac = fac.bot;

    // Per-output cap pointer table (the template's shared <0|/<1| objects,
    // so the executor's pointer compaction shares rows across bitstrings).
    // Basis caps are real, so the same tensors serve the conjugated bottom
    // layer.
    const std::size_t nn = static_cast<std::size_t>(n);
    std::vector<const tsr::Tensor*> caps_of_output(K * nn);
    for (std::size_t o = 0; o < K; ++o)
      top_tmpl.fill_output_caps(v_bits[o],
                                std::span(caps_of_output).subspan(o * nn, nn));

    // Combined varying slots: the noise sites keep Algorithm 1's per-term
    // deviation promise (<= level), the output caps flip freely.
    std::vector<std::size_t> slots = site_node;
    const std::vector<std::size_t> cap_nodes = top_tmpl.output_cap_nodes();
    slots.insert(slots.end(), cap_nodes.begin(), cap_nodes.end());
    const std::size_t V = slots.size();
    std::vector<std::size_t> counts(V, 2);
    std::vector<char> unconstrained(V, 0);
    for (std::size_t s = 0; s < num_sites; ++s) counts[s] = base.sites[s].split.terms();
    for (std::size_t v = num_sites; v < V; ++v) unconstrained[v] = 1;

    // One traversal covers a chunk of terms x (up to kOutputChunk) outputs.
    // The term axis is additionally capped so a traversal holds at most
    // kMaxPairs (term, output) pairs: past that the batched arena outgrows
    // the cache and the per-row dispatch on near-distinct steps costs more
    // than the cross-term sharing recovers (measured on the Fig. 4-style
    // grid: ~256 pairs is the knee). batch_terms <= 1 keeps the term axis
    // unbatched; each term still evaluates a whole output chunk at once.
    constexpr std::size_t kOutputChunk = 32;
    constexpr std::size_t kMaxPairs = 256;
    const std::size_t out_chunk = std::min(K, kOutputChunk);
    const std::size_t term_batch =
        std::min({std::max<std::size_t>(opts.batch_terms, 1), terms.size(),
                  std::max<std::size_t>(kMaxPairs / out_chunk, 1)});
    const std::size_t capacity = term_batch * out_chunk;

    tn::ContractStats batched_compile_stats;
    std::optional<tn::BatchedPlan> top_bplan, bot_bplan;
    try {
      top_bplan.emplace(top_tmpl.compile_batched(slots, capacity, &batched_compile_stats,
                                                 counts, level, unconstrained));
      bot_bplan.emplace(bot_tmpl.compile_batched(slots, capacity, &batched_compile_stats,
                                                 counts, level, unconstrained));
      if (!output_batch_worthwhile(*top_bplan) || !output_batch_worthwhile(*bot_bplan)) {
        top_bplan.reset();
        bot_bplan.reset();
      }
    } catch (const MemoryOutError&) {
      // Combined batch exceeds the workspace budget; the per-output plan
      // replay below fits and is bit-identical.
      top_bplan.reset();
      bot_bplan.reset();
    }

    if (top_bplan && bot_bplan) {
      timer.eval_started();
      run_workers([&](std::size_t w, std::size_t begin, std::size_t end) {
        AmplitudeTemplate::BatchedSession top_session(top_tmpl, *top_bplan);
        AmplitudeTemplate::BatchedSession bot_session(bot_tmpl, *bot_bplan);
        std::vector<const tsr::Tensor*> top_ptrs(capacity * V), bot_ptrs(capacity * V);
        std::vector<cplx> top_amp(capacity), bot_amp(capacity);
        for (std::size_t b0 = begin; b0 < end; b0 += term_batch) {
          const std::size_t tcount = std::min(term_batch, end - b0);
          for (std::size_t o0 = 0; o0 < K; o0 += out_chunk) {
            const std::size_t ocount = std::min(out_chunk, K - o0);
            const std::size_t kk = tcount * ocount;
            for (std::size_t t = 0; t < tcount; ++t) {
              const Term& term = terms[b0 + t];
              for (std::size_t o = 0; o < ocount; ++o) {
                const std::size_t p = (t * ocount + o) * V;
                // Dominant factor everywhere, subdominant at the chosen
                // sites; the output chunk's caps in the trailing slots.
                for (std::size_t s = 0; s < num_sites; ++s) {
                  top_ptrs[p + s] = &top_fac[s][0];
                  bot_ptrs[p + s] = &bot_fac[s][0];
                }
                for (std::size_t c = 0; c < term.sites.size(); ++c) {
                  const std::size_t s = term.sites[c];
                  top_ptrs[p + s] = &top_fac[s][term.term_idx[c]];
                  bot_ptrs[p + s] = &bot_fac[s][term.term_idx[c]];
                }
                for (std::size_t q = 0; q < nn; ++q) {
                  top_ptrs[p + num_sites + q] = caps_of_output[(o0 + o) * nn + q];
                  bot_ptrs[p + num_sites + q] = caps_of_output[(o0 + o) * nn + q];
                }
              }
            }
            top_session.evaluate(std::span(top_ptrs).first(kk * V), kk, top_amp);
            bot_session.evaluate(std::span(bot_ptrs).first(kk * V), kk, bot_amp);
            for (std::size_t t = 0; t < tcount; ++t)
              for (std::size_t o = 0; o < ocount; ++o)
                values[(b0 + t) * K + o0 + o] =
                    top_amp[t * ocount + o] * bot_amp[t * ocount + o];
          }
          for (std::size_t t = 0; t < tcount; ++t) note_progress();
        }
        worker_stats[w].merge(top_session.stats());
        worker_stats[w].merge(bot_session.stats());
      });
      timer.eval_done();
      result.contract_stats.merge(batched_compile_stats);
    } else {
      // Per-output plan replay: site tensors and the output's caps go in as
      // per-call session substitutions.
      timer.eval_started();
      run_workers([&](std::size_t w, std::size_t begin, std::size_t end) {
        AmplitudeTemplate::Session top_session = top_tmpl.session();
        AmplitudeTemplate::Session bot_session = bot_tmpl.session();
        std::vector<AmplitudeTemplate::Substitution> top_subs(num_sites + nn),
            bot_subs(num_sites + nn);
        for (std::size_t i = begin; i < end; ++i) {
          const Term& term = terms[i];
          for (std::size_t s = 0; s < num_sites; ++s) {
            top_subs[s] = {site_node[s], &top_fac[s][0]};
            bot_subs[s] = {site_node[s], &bot_fac[s][0]};
          }
          for (std::size_t c = 0; c < term.sites.size(); ++c) {
            const std::size_t s = term.sites[c];
            top_subs[s].second = &top_fac[s][term.term_idx[c]];
            bot_subs[s].second = &bot_fac[s][term.term_idx[c]];
          }
          for (std::size_t o = 0; o < K; ++o) {
            for (std::size_t q = 0; q < nn; ++q) {
              const AmplitudeTemplate::Substitution cap{cap_nodes[q],
                                                        caps_of_output[o * nn + q]};
              top_subs[num_sites + q] = cap;
              bot_subs[num_sites + q] = cap;
            }
            const cplx top_amp = top_session.evaluate(top_subs);
            const cplx bot_amp = bot_session.evaluate(bot_subs);
            values[i * K + o] = top_amp * bot_amp;
          }
          note_progress();
        }
        worker_stats[w].merge(top_session.stats());
        worker_stats[w].merge(bot_session.stats());
      });
      timer.eval_done();
    }
    result.contract_stats.merge(top_tmpl.compile_stats());
    result.contract_stats.merge(bot_tmpl.compile_stats());
  } else {
    // Reference path (state-vector backend, or reuse_plans disabled): each
    // term materializes its gate lists and evaluates every output through
    // batch_amplitudes (one evolution / one template per layer per term).
    auto eval_term = [&](const Term& term, std::vector<qc::Gate>& top,
                         std::vector<qc::Gate>& bottom, tn::ContractStats* stats,
                         std::size_t i) {
      for (std::size_t s = 0; s < num_sites; ++s) {
        std::size_t t = 0;
        for (std::size_t c = 0; c < term.sites.size(); ++c)
          if (term.sites[c] == s) t = term.term_idx[c];
        top[site_pos[s]].custom = base.sites[s].split.u[t];
        // The bottom layer is evaluated with conjugate=true (which
        // conjugates every matrix), so store conj(V) to apply V itself.
        bottom[site_pos[s]].custom = base.sites[s].split.v[t].conj();
      }
      const std::vector<cplx> top_amp =
          batch_amplitudes(n, top, psi_bits, v_bits, /*conjugate=*/false, eval, stats);
      const std::vector<cplx> bot_amp =
          batch_amplitudes(n, bottom, psi_bits, v_bits, /*conjugate=*/true, eval, stats);
      for (std::size_t o = 0; o < K; ++o) values[i * K + o] = top_amp[o] * bot_amp[o];
      note_progress();
    };

    timer.eval_started();
    run_workers([&](std::size_t w, std::size_t begin, std::size_t end) {
      std::vector<qc::Gate> top = skeleton, bottom = skeleton;
      for (std::size_t i = begin; i < end; ++i)
        eval_term(terms[i], top, bottom, &worker_stats[w], i);
    });
    timer.eval_done();
  }

  // Deterministic stats reduction in worker order.
  for (const tn::ContractStats& ws : worker_stats) result.contract_stats.merge(ws);

  // Per-output deterministic reduction in enumeration order -- the same
  // arithmetic, in the same order, as the output's single-output sweep.
  result.values.assign(K, 0.0);
  result.raw.assign(K, cplx{0.0, 0.0});
  result.term_sums.assign(K, std::vector<cplx>(level + 1, cplx{0.0, 0.0}));
  result.level_values.assign(K, {});
  for (std::size_t o = 0; o < K; ++o) {
    for (std::size_t i = 0; i < terms.size(); ++i)
      result.term_sums[o][terms[i].level] += values[i * K + o];
    for (std::size_t u = 0; u <= level; ++u) {
      result.raw[o] += result.term_sums[o][u];
      result.level_values[o].push_back(result.raw[o].real());
    }
    result.values[o] = result.raw[o].real();
  }
  result.contractions = 2 * terms.size() * K;
  return result;
}

ch::NoisyCircuit with_ideal_output_projector(const ch::NoisyCircuit& nc) {
  ch::NoisyCircuit out = nc;
  const qc::Circuit inverse = nc.gates_only().adjoint();
  for (const qc::Gate& g : inverse.gates()) out.add_gate(g);
  return out;
}

}  // namespace noisim::core
