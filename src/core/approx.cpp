#include "core/approx.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <mutex>
#include <thread>

#include "circuit/simplify.hpp"
#include "core/bounds.hpp"
#include "linalg/svd.hpp"

namespace noisim::core {

namespace {

// Placeholder matrices for not-yet-assigned noise insertions. Deliberately
// non-unitary so inverse-pair cancellation can never pair them with a gate.
la::Matrix placeholder_1q() { return la::Matrix{{2.0, 0.0}, {0.0, 3.0}}; }
la::Matrix placeholder_2q() {
  la::Matrix m(4, 4);
  m(0, 0) = 2.0;
  m(1, 1) = 3.0;
  m(2, 2) = 5.0;
  m(3, 3) = 7.0;
  return m;
}

struct Site {
  std::size_t arity;  // 1 or 2 qubits
  SplitNoise split;
  double rate;  // noise rate of the channel (for the Theorem-1 bound)
};

struct BaseLists {
  std::vector<qc::Gate> gates;  // circuit gates + tagged placeholders
  std::vector<Site> sites;
};

// Gate-list skeleton with one tagged placeholder per noise site. The tag
// (params[0]) survives simplification, so insertion positions can be
// located after inverse-pair cancellation.
BaseLists build_base(const ch::NoisyCircuit& nc) {
  BaseLists base;
  for (const ch::Op& op : nc.ops()) {
    if (const qc::Gate* g = std::get_if<qc::Gate>(&op)) {
      base.gates.push_back(*g);
      continue;
    }
    const ch::NoiseOp& noise = std::get<ch::NoiseOp>(op);
    qc::Gate tag = noise.num_qubits() == 1
                       ? qc::u1q(noise.qubit, placeholder_1q())
                       : qc::u2q(noise.qubit, noise.qubit2, placeholder_2q());
    tag.params = {static_cast<double>(base.sites.size())};
    base.gates.push_back(std::move(tag));

    Site site;
    site.arity = static_cast<std::size_t>(noise.num_qubits());
    site.split = split_noise(noise.channel);
    site.rate = noise.channel.noise_rate();
    const std::size_t want = site.arity == 1 ? 4 : 16;
    la::detail::require(site.split.terms() == want,
                        "approximate_fidelity: unexpected split term count");
    base.sites.push_back(std::move(site));
  }
  return base;
}

// All size-k subsets of {0, ..., n-1} in lexicographic order.
std::vector<std::vector<std::size_t>> combinations(std::size_t n, std::size_t k) {
  std::vector<std::vector<std::size_t>> out;
  if (k > n) return out;
  std::vector<std::size_t> cur(k);
  for (std::size_t i = 0; i < k; ++i) cur[i] = i;
  while (true) {
    out.push_back(cur);
    if (k == 0) break;
    std::size_t i = k;
    bool advanced = false;
    while (i-- > 0) {
      if (cur[i] + (k - i) < n) {
        ++cur[i];
        for (std::size_t j = i + 1; j < k; ++j) cur[j] = cur[j - 1] + 1;
        advanced = true;
        break;
      }
    }
    if (!advanced) break;
  }
  return out;
}

// Indices of the tagged placeholders inside a (possibly simplified) list.
std::vector<std::size_t> locate_sites(const std::vector<qc::Gate>& gates,
                                      std::size_t num_sites) {
  std::vector<std::size_t> pos(num_sites, static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const qc::Gate& g = gates[i];
    if ((g.kind == qc::GateKind::U1q || g.kind == qc::GateKind::U2q) && g.params.size() == 1)
      pos[static_cast<std::size_t>(g.params[0])] = i;
  }
  for (std::size_t p : pos)
    la::detail::require(p != static_cast<std::size_t>(-1),
                        "approximate_fidelity: insertion lost during simplification");
  return pos;
}

// One enumerated term: which sites carry which subdominant index.
struct Term {
  std::size_t level;
  std::vector<std::size_t> sites;
  std::vector<std::size_t> term_idx;
};

std::vector<Term> enumerate_terms(const std::vector<Site>& sites, std::size_t level) {
  std::vector<Term> out;
  for (std::size_t u = 0; u <= level; ++u) {
    for (const std::vector<std::size_t>& chosen : combinations(sites.size(), u)) {
      std::vector<std::size_t> idx(u, 1);
      while (true) {
        out.push_back(Term{u, chosen, idx});
        std::size_t pos = 0;
        while (pos < u && idx[pos] + 1 == sites[chosen[pos]].split.terms()) idx[pos++] = 1;
        if (pos == u) break;
        ++idx[pos];
      }
    }
  }
  return out;
}

}  // namespace

ApproxResult approximate_fidelity(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                  std::uint64_t v_bits, const ApproxOptions& opts) {
  const int n = nc.num_qubits();
  BaseLists base = build_base(nc);
  const std::size_t num_sites = base.sites.size();
  const std::size_t level = std::min(opts.level, num_sites);

  // Simplify once: every noise site carries an insertion in every term, so
  // the cancellation structure is term-independent.
  std::vector<qc::Gate> skeleton = base.gates;
  if (opts.eval.simplify) skeleton = qc::cancel_inverse_pairs(std::move(skeleton));
  const std::vector<std::size_t> site_pos = locate_sites(skeleton, num_sites);

  EvalOptions eval = opts.eval;
  eval.simplify = false;  // already applied to the skeleton

  const std::vector<Term> terms = enumerate_terms(base.sites, level);

  ApproxResult result;
  result.term_sums.assign(level + 1, cplx{0.0, 0.0});

  // Shared progress accounting: the `done` counter is atomic and the
  // (possibly user-supplied, not necessarily thread-safe) progress callback
  // is serialized behind a mutex, incremented inside the lock so callback
  // values are monotonic.
  std::atomic<std::size_t> done{0};
  std::mutex progress_mutex;
  auto note_progress = [&] {
    if (opts.progress) {
      const std::lock_guard<std::mutex> lock(progress_mutex);
      opts.progress(++done);
    } else {
      ++done;
    }
  };

  // Deterministic static partition: worker w owns a contiguous, balanced
  // index range (sizes differ by at most one, so no worker sits idle), and
  // the term-to-worker assignment is a pure function of (terms, threads).
  // No two workers share an output slot, and the reduction below runs on
  // the joined values in enumeration order either way.
  std::vector<cplx> values(terms.size());
  const std::size_t threads =
      std::max<std::size_t>(1, std::min<std::size_t>(opts.threads, terms.size()));
  auto run_partitioned = [&](const std::function<void(std::size_t, std::size_t, std::size_t)>&
                                 body) {
    if (threads <= 1) {
      body(0, 0, terms.size());
      return;
    }
    const std::size_t base_size = terms.size() / threads;
    const std::size_t remainder = terms.size() % threads;
    std::vector<std::future<void>> workers;
    std::size_t begin = 0;
    for (std::size_t w = 0; w < threads; ++w) {
      const std::size_t end = begin + base_size + (w < remainder ? 1 : 0);
      workers.push_back(
          std::async(std::launch::async, [&body, w, begin, end] { body(w, begin, end); }));
      begin = end;
    }
    for (auto& f : workers) f.get();  // rethrows worker exceptions
  };

  std::vector<tn::ContractStats> worker_stats(threads);

  using Clock = std::chrono::steady_clock;
  const auto setup_started = Clock::now();
  auto note_setup_done = [&] {
    result.plan_seconds =
        std::chrono::duration<double>(Clock::now() - setup_started).count();
    return Clock::now();
  };
  auto note_eval_done = [&](Clock::time_point eval_started) {
    result.eval_seconds =
        std::chrono::duration<double>(Clock::now() - eval_started).count();
  };

  if (opts.reuse_plans && uses_tensor_network(eval, n)) {
    // Plan/execute fast path: every term's top (bottom) network shares one
    // topology -- only the tensors at the u chosen noise sites change. Plan
    // each single-layer network once, then replay the plan per term with
    // substituted site tensors, one workspace per worker.
    const AmplitudeTemplate top_tmpl(n, skeleton, psi_bits, v_bits, /*conjugate=*/false, eval);
    const AmplitudeTemplate bot_tmpl(n, skeleton, psi_bits, v_bits, /*conjugate=*/true, eval);

    // Tensorized SVD factors per (site, term index). The bottom template is
    // built with conjugate=true, which conjugates whatever matrix the site
    // gate carries; the seed path stored conj(V) there to apply V itself,
    // and conj(conj(V)) == V bitwise, so V enters the substitution directly.
    std::vector<std::size_t> site_node(num_sites);
    std::vector<std::vector<tsr::Tensor>> top_fac(num_sites), bot_fac(num_sites);
    for (std::size_t s = 0; s < num_sites; ++s) {
      site_node[s] = top_tmpl.node_of_gate(site_pos[s]);
      const Site& site = base.sites[s];
      for (std::size_t t = 0; t < site.split.terms(); ++t) {
        top_fac[s].push_back(gate_matrix_tensor(site.split.u[t], static_cast<int>(site.arity)));
        bot_fac[s].push_back(gate_matrix_tensor(site.split.v[t], static_cast<int>(site.arity)));
      }
    }

    // Batch size: ApproxOptions::batch_terms clamped to the term count;
    // <= 1 selects the per-term replay reference path below.
    const std::size_t batch =
        std::min(std::max<std::size_t>(opts.batch_terms, 1), terms.size());
    if (batch > 1) {
      // Batched replay: each worker chunks its range and executes every
      // chunk in one plan traversal (shared-cone steps once per chunk,
      // duplicate slices memcpy'd). Bit-identical to the per-term path at
      // any batch size -- the reduction below still runs per term in
      // enumeration order.
      // Each site only ever substitutes one of its split factors, which
      // bounds every step's distinct rows by the variant product of its
      // cone -- most of the batched arena shrinks accordingly.
      std::vector<std::size_t> variant_counts(num_sites);
      for (std::size_t s = 0; s < num_sites; ++s)
        variant_counts[s] = base.sites[s].split.terms();
      // At level l every term deviates from the dominant assignment at u <=
      // l sites, which tightens the batched row bounds substantially.
      tn::ContractStats batched_compile_stats;
      const tn::BatchedPlan top_bplan = top_tmpl.compile_batched(
          site_node, batch, &batched_compile_stats, variant_counts, level);
      const tn::BatchedPlan bot_bplan = bot_tmpl.compile_batched(
          site_node, batch, &batched_compile_stats, variant_counts, level);

      const auto eval_started = note_setup_done();
      run_partitioned([&](std::size_t w, std::size_t begin, std::size_t end) {
        AmplitudeTemplate::BatchedSession top_session(top_tmpl, top_bplan);
        AmplitudeTemplate::BatchedSession bot_session(bot_tmpl, bot_bplan);
        std::vector<const tsr::Tensor*> top_ptrs(batch * num_sites);
        std::vector<const tsr::Tensor*> bot_ptrs(batch * num_sites);
        std::vector<cplx> top_amp(batch), bot_amp(batch);
        for (std::size_t b0 = begin; b0 < end; b0 += batch) {
          const std::size_t kk = std::min(batch, end - b0);
          for (std::size_t t = 0; t < kk; ++t) {
            const Term& term = terms[b0 + t];
            // Dominant factor everywhere, subdominant at the chosen sites.
            for (std::size_t s = 0; s < num_sites; ++s) {
              top_ptrs[t * num_sites + s] = &top_fac[s][0];
              bot_ptrs[t * num_sites + s] = &bot_fac[s][0];
            }
            for (std::size_t c = 0; c < term.sites.size(); ++c) {
              const std::size_t s = term.sites[c];
              top_ptrs[t * num_sites + s] = &top_fac[s][term.term_idx[c]];
              bot_ptrs[t * num_sites + s] = &bot_fac[s][term.term_idx[c]];
            }
          }
          top_session.evaluate(std::span(top_ptrs).first(kk * num_sites), kk, top_amp);
          bot_session.evaluate(std::span(bot_ptrs).first(kk * num_sites), kk, bot_amp);
          for (std::size_t t = 0; t < kk; ++t) {
            values[b0 + t] = top_amp[t] * bot_amp[t];
            note_progress();
          }
        }
        worker_stats[w].merge(top_session.stats());
        worker_stats[w].merge(bot_session.stats());
      });
      note_eval_done(eval_started);
      result.contract_stats.merge(batched_compile_stats);
    } else {
      const auto eval_started = note_setup_done();
      run_partitioned([&](std::size_t w, std::size_t begin, std::size_t end) {
        AmplitudeTemplate::Session top_session = top_tmpl.session();
        AmplitudeTemplate::Session bot_session = bot_tmpl.session();
        std::vector<AmplitudeTemplate::Substitution> top_subs(num_sites), bot_subs(num_sites);
        for (std::size_t i = begin; i < end; ++i) {
          const Term& term = terms[i];
          // Dominant factor everywhere, subdominant at the chosen sites.
          for (std::size_t s = 0; s < num_sites; ++s) {
            top_subs[s] = {site_node[s], &top_fac[s][0]};
            bot_subs[s] = {site_node[s], &bot_fac[s][0]};
          }
          for (std::size_t c = 0; c < term.sites.size(); ++c) {
            const std::size_t s = term.sites[c];
            top_subs[s].second = &top_fac[s][term.term_idx[c]];
            bot_subs[s].second = &bot_fac[s][term.term_idx[c]];
          }
          const cplx top_amp = top_session.evaluate(top_subs);
          const cplx bot_amp = bot_session.evaluate(bot_subs);
          note_progress();
          values[i] = top_amp * bot_amp;
        }
        worker_stats[w].merge(top_session.stats());
        worker_stats[w].merge(bot_session.stats());
      });
      note_eval_done(eval_started);
    }
    result.contract_stats.merge(top_tmpl.compile_stats());
    result.contract_stats.merge(bot_tmpl.compile_stats());
  } else {
    // Reference path (state-vector backend, or reuse_plans disabled):
    // each term materializes its gate lists and evaluates them standalone,
    // re-planning any tensor-network contraction from scratch. Each worker
    // owns private copies of the skeleton.
    auto eval_term = [&](const Term& term, std::vector<qc::Gate>& top,
                         std::vector<qc::Gate>& bottom, tn::ContractStats* stats) {
      for (std::size_t s = 0; s < num_sites; ++s) {
        std::size_t t = 0;
        for (std::size_t c = 0; c < term.sites.size(); ++c)
          if (term.sites[c] == s) t = term.term_idx[c];
        top[site_pos[s]].custom = base.sites[s].split.u[t];
        // The bottom layer is evaluated with conjugate=true (which
        // conjugates every matrix), so store conj(V) to apply V itself.
        bottom[site_pos[s]].custom = base.sites[s].split.v[t].conj();
      }
      const cplx top_amp = amplitude(n, top, psi_bits, v_bits, /*conjugate=*/false, eval, stats);
      const cplx bot_amp = amplitude(n, bottom, psi_bits, v_bits, /*conjugate=*/true, eval, stats);
      note_progress();
      return top_amp * bot_amp;
    };

    const auto eval_started = note_setup_done();
    run_partitioned([&](std::size_t w, std::size_t begin, std::size_t end) {
      std::vector<qc::Gate> top = skeleton, bottom = skeleton;
      for (std::size_t i = begin; i < end; ++i)
        values[i] = eval_term(terms[i], top, bottom, &worker_stats[w]);
    });
    note_eval_done(eval_started);
  }

  // Deterministic stats reduction in worker order.
  for (const tn::ContractStats& ws : worker_stats) result.contract_stats.merge(ws);

  // Deterministic reduction in enumeration order.
  for (std::size_t i = 0; i < terms.size(); ++i) result.term_sums[terms[i].level] += values[i];
  for (std::size_t u = 0; u <= level; ++u) {
    result.raw += result.term_sums[u];
    result.level_values.push_back(result.raw.real());
  }
  result.contractions = 2 * terms.size();
  result.value = result.raw.real();

  // Error bounds: the paper's Theorem 1 when every site is 1-qubit, and the
  // generalized per-site product bound (numerically tight) always.
  std::vector<double> dominant_norms, subdominant_norms;
  bool all_1q = true;
  for (const Site& s : base.sites) {
    dominant_norms.push_back(la::spectral_norm(s.split.term(0)));
    subdominant_norms.push_back(s.split.dominant_term_error());
    if (s.arity != 1) all_1q = false;
  }
  result.tight_error_bound = generalized_error_bound(dominant_norms, subdominant_norms, level);
  result.error_bound = all_1q
                           ? theorem1_error_bound(num_sites, nc.max_noise_rate(), level)
                           : result.tight_error_bound;
  return result;
}

ch::NoisyCircuit with_ideal_output_projector(const ch::NoisyCircuit& nc) {
  ch::NoisyCircuit out = nc;
  const qc::Circuit inverse = nc.gates_only().adjoint();
  for (const qc::Gate& g : inverse.gates()) out.add_gate(g);
  return out;
}

}  // namespace noisim::core
