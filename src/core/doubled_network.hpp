#pragma once
// The paper's doubled tensor-network diagram (Section III, Fig. 2) and the
// exact "TN-based" noisy simulator built on it:
//
//   <v| E_N(|psi><psi|) |v>
//     = (<v| (x) <v*|) M_{E_d} ... M_{E_1} (|psi> (x) |psi*>)
//
// Unitary gates contribute two uncoupled tensors (U on the top layer, U* on
// the bottom); every noise contributes one rank-4 superoperator tensor M_E
// coupling its top and bottom wires. Contracting the whole diagram yields
// the exact fidelity; this is the accurate baseline of Table II and the
// blow-up curve of Fig. 4.

#include <cstdint>

#include "channels/noisy_circuit.hpp"
#include "tn/contractor.hpp"

namespace noisim::core {

/// The doubled diagram body without output caps: the open (top, bottom)
/// wire pair per qubit carries the evolved density matrix sigma[i, j].
struct OpenDoubledNetwork {
  tn::Network net;
  std::vector<tn::EdgeId> top;     // final top wire of each qubit
  std::vector<tn::EdgeId> bottom;  // final bottom wire of each qubit
};

OpenDoubledNetwork doubled_network_open(const ch::NoisyCircuit& nc, std::uint64_t psi_bits);

/// Build the doubled diagram for <v_bits| E(|psi_bits><psi_bits|) |v_bits>.
tn::Network doubled_network(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                            std::uint64_t v_bits);

/// Contract the doubled diagram exactly. The result of the contraction is a
/// fidelity, hence real up to roundoff; the real part is returned.
double exact_fidelity_tn(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                         std::uint64_t v_bits, const tn::ContractOptions& opts = {},
                         tn::ContractStats* stats = nullptr);

}  // namespace noisim::core
