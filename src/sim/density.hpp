#pragma once
// Exact density-matrix simulation: the paper's "MM-based" accurate baseline.
//
// rho is stored row-major as a 4^n vector; a unitary U acts as
// rho -> U rho U^dagger, a channel as rho -> sum_k E_k rho E_k^dagger.
// Operators are applied locally (row index = "row qubits", column index =
// "column qubits"), so each gate costs O(4^n) instead of dense O(8^n)
// matrix products. The 4^n memory footprint is what makes this method "MO"
// on the paper's larger benchmarks.

#include <cstdint>

#include "channels/noisy_circuit.hpp"
#include "sim/statevector.hpp"

namespace noisim::sim {

class DensityMatrix {
 public:
  /// |0..0><0..0| on n qubits (n <= 13 to bound memory at ~1 GiB).
  explicit DensityMatrix(int n);
  static DensityMatrix from_statevector(const Statevector& sv);

  int num_qubits() const { return n_; }
  std::size_t dim() const { return std::size_t{1} << n_; }

  /// rho -> U rho U^dagger.
  void apply_gate(const qc::Gate& g);
  /// rho -> sum_k E_k rho E_k^dagger for a 1-qubit channel on qubit q.
  void apply_channel(const ch::Channel& channel, int q);
  /// 2-qubit channel on (a, b); a indexes the Kraus operators' high bit.
  void apply_channel_2q(const ch::Channel& channel, int a, int b);
  /// Run a whole noisy circuit.
  void evolve(const ch::NoisyCircuit& nc);

  cplx element(std::uint64_t row, std::uint64_t col) const;
  double trace() const;
  /// <v|rho|v> for a computational basis state |v_bits>.
  double fidelity_basis(std::uint64_t v_bits) const;
  /// <v|rho|v> for an arbitrary state vector of dimension 2^n.
  double fidelity(const la::Vector& v) const;

  la::Matrix to_matrix() const;

 private:
  // Apply 2x2 (or 4x4) matrix m to the row index bits of rho.
  void apply_left1(const la::Matrix& m, int q, std::vector<cplx>& buf) const;
  void apply_left2(const la::Matrix& m, int a, int b, std::vector<cplx>& buf) const;
  // Apply conj(m) to the column index bits (right-multiplication by m^dag).
  void apply_right1(const la::Matrix& m, int q, std::vector<cplx>& buf) const;
  void apply_right2(const la::Matrix& m, int a, int b, std::vector<cplx>& buf) const;

  int n_ = 0;
  std::vector<cplx> rho_;  // row-major, size 4^n
};

/// End-to-end exact value of <v|E(|psi><psi|)|v> for basis psi/v
/// (the reference used by the accuracy experiments).
double exact_fidelity_mm(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                         std::uint64_t v_bits);

/// Widest circuit DensityMatrix accepts (memory bounded at ~1 GiB).
inline constexpr int kDensityMaxQubits = 13;

/// Plan-time flop model of DensityMatrix::evolve, in modeled complex
/// multiply-adds: every op touches all 4^n elements twice (row- and
/// column-side local updates); channels repeat that per Kraus operator.
double density_evolution_flops(const ch::NoisyCircuit& nc);

}  // namespace noisim::sim
