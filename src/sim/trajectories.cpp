#include "sim/trajectories.hpp"

#include <cmath>

namespace noisim::sim {

double sample_trajectory_sv(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                            std::uint64_t v_bits, std::mt19937_64& rng) {
  Statevector sv = Statevector::basis(nc.num_qubits(), psi_bits);
  std::uniform_real_distribution<double> unif(0.0, 1.0);

  for (const ch::Op& op : nc.ops()) {
    if (const qc::Gate* g = std::get_if<qc::Gate>(&op)) {
      sv.apply_gate(*g);
      continue;
    }
    const ch::NoiseOp& noise = std::get<ch::NoiseOp>(op);
    const auto& kraus = noise.channel.kraus();
    const bool two_qubit = noise.num_qubits() == 2;

    // Born probabilities p_k = <psi| E_k^dag E_k |psi>. The 1-qubit case
    // uses a local 2x2 expectation (no copies); the 2-qubit case applies
    // each candidate to a scratch copy and reads the norm.
    auto born = [&](std::size_t k) {
      if (!two_qubit) return sv.expectation1(kraus[k].adjoint() * kraus[k], noise.qubit).real();
      Statevector scratch = sv;
      scratch.apply_matrix2(kraus[k], noise.qubit, noise.qubit2);
      return scratch.norm2();
    };

    double cumulative = 0.0;
    const double u = unif(rng);
    std::size_t chosen = kraus.size() - 1;
    double p_chosen = 0.0;
    for (std::size_t k = 0; k < kraus.size(); ++k) {
      const double pk = born(k);
      cumulative += pk;
      if (u < cumulative) {
        chosen = k;
        p_chosen = pk;
        break;
      }
      p_chosen = pk;  // fall through to the last operator on rounding
    }
    if (two_qubit)
      sv.apply_matrix2(kraus[chosen], noise.qubit, noise.qubit2);
    else
      sv.apply_matrix1(kraus[chosen], noise.qubit);
    if (p_chosen > 0.0) {
      const double scale = 1.0 / std::sqrt(p_chosen);
      sv.apply_matrix1(la::Matrix{{scale, 0}, {0, scale}}, noise.qubit);
    }
  }
  return std::norm(sv.amplitude(v_bits));
}

TrajectoryResult trajectories_sv(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                 std::uint64_t v_bits, std::size_t samples,
                                 std::mt19937_64& rng) {
  // Zero samples is a well-defined (empty) estimate, not an error.
  if (samples == 0) return {};
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    const double f = sample_trajectory_sv(nc, psi_bits, v_bits, rng);
    sum += f;
    sum_sq += f * f;
  }
  TrajectoryResult out;
  out.samples = samples;
  out.mean = sum / static_cast<double>(samples);
  if (samples > 1) {
    const double var =
        (sum_sq - sum * sum / static_cast<double>(samples)) / static_cast<double>(samples - 1);
    out.std_error = std::sqrt(std::max(0.0, var) / static_cast<double>(samples));
  }
  return out;
}

TrajectoryResult trajectories_sv(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                 std::uint64_t v_bits, std::size_t samples, std::uint64_t seed,
                                 const ParallelOptions& opts) {
  return run_trajectories(
      samples, seed,
      [&](std::mt19937_64& rng) { return sample_trajectory_sv(nc, psi_bits, v_bits, rng); },
      opts);
}

std::size_t hoeffding_samples(double accuracy, double failure_prob) {
  la::detail::require(accuracy > 0.0, "hoeffding_samples: accuracy must be positive");
  // ln(2/failure) must be positive: failure_prob >= 2 would yield a
  // non-positive sample count (and a huge bogus value once cast to size_t).
  la::detail::require(failure_prob > 0.0 && failure_prob < 2.0,
                      "hoeffding_samples: failure_prob must be in (0, 2)");
  const double r = std::log(2.0 / failure_prob) / (2.0 * accuracy * accuracy);
  return static_cast<std::size_t>(std::ceil(r));
}

double hoeffding_accuracy(std::size_t samples, double failure_prob) {
  la::detail::require(samples > 0, "hoeffding_accuracy: samples must be positive");
  la::detail::require(failure_prob > 0.0 && failure_prob < 2.0,
                      "hoeffding_accuracy: failure_prob must be in (0, 2)");
  return std::sqrt(std::log(2.0 / failure_prob) / (2.0 * static_cast<double>(samples)));
}

TrajectoryCost sv_trajectory_cost(const ch::NoisyCircuit& nc) {
  // 2^n clamped so the double model stays finite and the size_t cast below
  // cannot overflow; at such widths every memory budget fails anyway.
  const double dim = std::pow(2.0, std::min(nc.num_qubits(), 62));
  TrajectoryCost out;
  bool scratch_copy = false;
  for (const ch::Op& op : nc.ops()) {
    if (const qc::Gate* g = std::get_if<qc::Gate>(&op)) {
      out.per_sample_flops += (g->num_qubits() == 1 ? 2.0 : 4.0) * dim;
      continue;
    }
    const ch::NoiseOp& noise = std::get<ch::NoiseOp>(op);
    const double apply = (noise.num_qubits() == 1 ? 2.0 : 4.0) * dim;
    if (noise.num_qubits() == 2) scratch_copy = true;
    // Born sampling evaluates each candidate (a local expectation or a
    // scratch apply + norm), then applies and renormalizes the winner.
    out.per_sample_flops +=
        (static_cast<double>(noise.channel.kraus().size()) + 2.0) * apply;
  }
  out.peak_elems = static_cast<std::size_t>(dim * (scratch_copy ? 2.0 : 1.0));
  return out;
}

}  // namespace noisim::sim
