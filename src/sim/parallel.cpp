#include "sim/parallel.hpp"

#include <atomic>
#include <cmath>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "linalg/complex.hpp"
#include "support/env.hpp"
#include "support/mutex.hpp"

namespace noisim::sim {

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  // Strict validation via the shared parser (support/env.hpp): a value that
  // is set but unusable is a misconfiguration worth failing on, not
  // silently coercing to the hardware default.
  if (const std::optional<std::size_t> env =
          support::env_positive_int("NOISIM_THREADS", "thread count"))
    return *env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void Welford::add(double x) {
  ++count;
  const double delta = x - mean;
  mean += delta / static_cast<double>(count);
  m2 += delta * (x - mean);
}

void Welford::merge(const Welford& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count), nb = static_cast<double>(other.count);
  const double delta = other.mean - mean;
  const double total = na + nb;
  mean += delta * nb / total;
  m2 += other.m2 + delta * delta * na * nb / total;
  count += other.count;
}

double Welford::variance() const {
  if (count < 2) return 0.0;
  return m2 / static_cast<double>(count - 1);
}

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Shared failure gate for a worker pool: the first exception any worker
/// hits is recorded and the abort flag tells siblings to stop claiming
/// chunks, so a failed run drains within one chunk per worker instead of
/// computing the whole remaining budget for a result that will be thrown
/// away. Workers never throw out of their thread; the recorded exception is
/// rethrown on the calling thread after every worker joined (futures and
/// accumulators are all settled by then -- no leaks, no torn state).
class AbortGate {
 public:
  bool stopping() const { return abort_.load(std::memory_order_relaxed); }
  void record() noexcept EXCLUDES(mutex_) {
    abort_.store(true, std::memory_order_relaxed);
    const support::MutexLock lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  void rethrow() EXCLUDES(mutex_) {
    // Copy the slot out under the lock (callers run after the join, but the
    // analysis holds every access to the guarded slot to the same rule).
    std::exception_ptr err;
    {
      const support::MutexLock lock(mutex_);
      err = first_error_;
    }
    if (err) std::rethrow_exception(err);
  }

 private:
  std::atomic<bool> abort_{false};
  support::Mutex mutex_;
  std::exception_ptr first_error_ GUARDED_BY(mutex_);
};

}  // namespace

std::mt19937_64 chunk_rng(std::uint64_t seed, std::uint64_t chunk_index) {
  return std::mt19937_64(splitmix64(seed ^ splitmix64(chunk_index)));
}

TrajectoryResult run_trajectories_chunked(std::size_t samples, std::uint64_t seed,
                                          const ChunkSamplerFactory& make_sampler,
                                          const ParallelOptions& opts) {
  la::detail::require(opts.chunk_size > 0, "run_trajectories: chunk_size must be positive");
  // Zero samples is a well-defined (empty) estimate, not an error: sweep
  // drivers that partition a sample budget can land on empty shards.
  if (samples == 0) return {};

  const std::size_t num_chunks = (samples + opts.chunk_size - 1) / opts.chunk_size;
  const std::size_t threads =
      std::max<std::size_t>(1, std::min(resolve_threads(opts.threads), num_chunks));

  std::vector<Welford> chunk_stats(num_chunks);
  std::atomic<std::size_t> next{0};
  AbortGate gate;

  auto worker = [&](std::size_t w) {
    try {
      ChunkSampler sampler = make_sampler(w);
      std::vector<double> values(opts.chunk_size);
      while (!gate.stopping()) {
        const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
        if (c >= num_chunks) break;
        if (opts.control) opts.control->poll();
        fault::poke("traj-chunk");
        const std::size_t begin = c * opts.chunk_size;
        const std::size_t end = std::min(begin + opts.chunk_size, samples);
        std::mt19937_64 rng = chunk_rng(seed, c);
        sampler(rng, std::span<double>(values.data(), end - begin));
        Welford& stats = chunk_stats[c];
        for (std::size_t s = 0; s < end - begin; ++s) stats.add(values[s]);
      }
    } catch (...) {
      gate.record();
    }
  };

  if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::future<void>> futures;
    futures.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w)
      futures.push_back(std::async(std::launch::async, worker, w));
    for (auto& f : futures) f.get();  // workers trap their own exceptions
  }
  gate.rethrow();  // first worker exception, after every worker joined

  // Deterministic reduction: merge in chunk order, independent of which
  // worker computed which chunk.
  Welford total;
  for (const Welford& stats : chunk_stats) total.merge(stats);

  TrajectoryResult out;
  out.samples = total.count;
  out.mean = total.mean;
  if (total.count > 1)
    out.std_error = std::sqrt(total.variance() / static_cast<double>(total.count));
  return out;
}

std::vector<TrajectoryResult> run_trajectories_multi(
    std::size_t samples, std::size_t num_estimates, std::uint64_t seed,
    const MultiChunkSamplerFactory& make_sampler, const ParallelOptions& opts) {
  la::detail::require(opts.chunk_size > 0, "run_trajectories: chunk_size must be positive");
  std::vector<TrajectoryResult> out(num_estimates);
  if (samples == 0 || num_estimates == 0) return out;

  const std::size_t num_chunks = (samples + opts.chunk_size - 1) / opts.chunk_size;
  const std::size_t threads =
      std::max<std::size_t>(1, std::min(resolve_threads(opts.threads), num_chunks));

  // Per-chunk per-estimate accumulators: estimate o's stream through chunk
  // c is exactly what the single-estimate runner would accumulate, so the
  // chunk-order merge below reproduces it bit for bit.
  std::vector<Welford> chunk_stats(num_chunks * num_estimates);
  std::atomic<std::size_t> next{0};
  AbortGate gate;

  auto worker = [&](std::size_t w) {
    try {
      MultiChunkSampler sampler = make_sampler(w);
      std::vector<double> values(opts.chunk_size * num_estimates);
      while (!gate.stopping()) {
        const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
        if (c >= num_chunks) break;
        if (opts.control) opts.control->poll();
        fault::poke("traj-chunk");
        const std::size_t begin = c * opts.chunk_size;
        const std::size_t count = std::min(begin + opts.chunk_size, samples) - begin;
        std::mt19937_64 rng = chunk_rng(seed, c);
        sampler(rng, count, std::span<double>(values.data(), count * num_estimates));
        for (std::size_t o = 0; o < num_estimates; ++o) {
          Welford& stats = chunk_stats[c * num_estimates + o];
          for (std::size_t s = 0; s < count; ++s) stats.add(values[s * num_estimates + o]);
        }
      }
    } catch (...) {
      gate.record();
    }
  };

  if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::future<void>> futures;
    futures.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w)
      futures.push_back(std::async(std::launch::async, worker, w));
    for (auto& f : futures) f.get();  // workers trap their own exceptions
  }
  gate.rethrow();  // first worker exception, after every worker joined

  for (std::size_t o = 0; o < num_estimates; ++o) {
    Welford total;
    for (std::size_t c = 0; c < num_chunks; ++c)
      total.merge(chunk_stats[c * num_estimates + o]);
    out[o].samples = total.count;
    out[o].mean = total.mean;
    if (total.count > 1)
      out[o].std_error = std::sqrt(total.variance() / static_cast<double>(total.count));
  }
  return out;
}

std::vector<TrajectoryResult> run_trajectories_sharded(
    std::size_t samples, std::size_t num_estimates, std::size_t shard_size,
    std::uint64_t seed, const ShardChunkSamplerFactory& make_sampler,
    const ParallelOptions& opts) {
  la::detail::require(opts.chunk_size > 0, "run_trajectories: chunk_size must be positive");
  std::vector<TrajectoryResult> out(num_estimates);
  if (samples == 0 || num_estimates == 0) return out;

  const std::size_t shard =
      std::min(num_estimates, shard_size > 0 ? shard_size : num_estimates);
  const std::size_t num_shards = (num_estimates + shard - 1) / shard;
  const std::size_t num_chunks = (samples + opts.chunk_size - 1) / opts.chunk_size;
  const std::size_t num_items = num_shards * num_chunks;
  const std::size_t threads =
      std::max<std::size_t>(1, std::min(resolve_threads(opts.threads), num_items));

  // The same per-(chunk, estimate) accumulators run_trajectories_multi
  // keeps; only the work decomposition (and the per-worker value buffer)
  // is sharded, so the chunk-order merge below is unchanged.
  std::vector<Welford> chunk_stats(num_chunks * num_estimates);
  std::atomic<std::size_t> next{0};
  AbortGate gate;

  auto worker = [&](std::size_t w) {
    try {
      ShardChunkSampler sampler = make_sampler(w);
      std::vector<double> values(opts.chunk_size * shard);
      while (!gate.stopping()) {
        const std::size_t item = next.fetch_add(1, std::memory_order_relaxed);
        if (item >= num_items) break;
        if (opts.control) opts.control->poll();
        fault::poke("traj-chunk");
        const std::size_t c = item / num_shards;
        const std::size_t sh = item % num_shards;
        const std::size_t shard_begin = sh * shard;
        const std::size_t shard_count = std::min(shard, num_estimates - shard_begin);
        const std::size_t begin = c * opts.chunk_size;
        const std::size_t count = std::min(begin + opts.chunk_size, samples) - begin;
        std::mt19937_64 rng = chunk_rng(seed, c);
        sampler(rng, shard_begin, shard_count, count,
                std::span<double>(values.data(), count * shard_count));
        for (std::size_t j = 0; j < shard_count; ++j) {
          Welford& stats = chunk_stats[c * num_estimates + shard_begin + j];
          for (std::size_t s = 0; s < count; ++s) stats.add(values[s * shard_count + j]);
        }
      }
    } catch (...) {
      gate.record();
    }
  };

  if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::future<void>> futures;
    futures.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w)
      futures.push_back(std::async(std::launch::async, worker, w));
    for (auto& f : futures) f.get();  // workers trap their own exceptions
  }
  gate.rethrow();  // first worker exception, after every worker joined

  for (std::size_t o = 0; o < num_estimates; ++o) {
    Welford total;
    for (std::size_t c = 0; c < num_chunks; ++c)
      total.merge(chunk_stats[c * num_estimates + o]);
    out[o].samples = total.count;
    out[o].mean = total.mean;
    if (total.count > 1)
      out[o].std_error = std::sqrt(total.variance() / static_cast<double>(total.count));
  }
  return out;
}

TrajectoryResult run_trajectories(std::size_t samples, std::uint64_t seed,
                                  const SamplerFactory& make_sampler,
                                  const ParallelOptions& opts) {
  return run_trajectories_chunked(
      samples, seed,
      [&make_sampler](std::size_t w) -> ChunkSampler {
        return [sampler = make_sampler(w)](std::mt19937_64& rng, std::span<double> values) {
          for (double& v : values) v = sampler(rng);
        };
      },
      opts);
}

TrajectoryResult run_trajectories(std::size_t samples, std::uint64_t seed,
                                  const Sampler& sampler, const ParallelOptions& opts) {
  return run_trajectories(
      samples, seed, [&sampler](std::size_t) { return sampler; }, opts);
}

}  // namespace noisim::sim
