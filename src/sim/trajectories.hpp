#pragma once
// Quantum trajectories (Monte-Carlo wave function) method [Isakov et al.],
// the paper's approximate baseline.
//
// Each trajectory runs the circuit on a state vector; at every noise site a
// Kraus operator E_k is sampled with its exact Born probability
// p_k = ||E_k |psi>||^2 and the state is renormalized. The estimator
// mean(|<v|psi_traj>|^2) is unbiased for <v| E(|psi><psi|) |v>, with
// standard error O(1/sqrt(samples)) -- the scaling the paper compares
// against in Fig. 5 and Tables III.
//
// This is the "MM-based" trajectories variant (statevector); the TN-based
// variant lives in core/trajectories_tn.hpp because it reuses the tensor
// network amplitude machinery.

#include <cstdint>
#include <random>

#include "sim/parallel.hpp"
#include "sim/statevector.hpp"

namespace noisim::sim {

/// Run `samples` trajectories of the noisy circuit starting from |psi_bits>
/// and estimate <v_bits| E(|psi><psi|) |v_bits>.
TrajectoryResult trajectories_sv(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                 std::uint64_t v_bits, std::size_t samples,
                                 std::mt19937_64& rng);

/// Multithreaded variant on the shared engine (sim/parallel.hpp): same
/// estimator, reproducible for a fixed `seed` across thread counts.
TrajectoryResult trajectories_sv(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                 std::uint64_t v_bits, std::size_t samples, std::uint64_t seed,
                                 const ParallelOptions& opts);

/// Single-trajectory sample (exposed for tests of the sampling step).
double sample_trajectory_sv(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                            std::uint64_t v_bits, std::mt19937_64& rng);

/// Number of samples needed so that a (1 - failure_prob) confidence interval
/// of half-width `accuracy` covers the estimate, by Hoeffding's inequality
/// on outcomes bounded in [0, 1]: r = ln(2/failure) / (2 accuracy^2).
/// Throws LinalgError for degenerate inputs (`accuracy <= 0`,
/// `failure_prob <= 0` or `>= 2`, where the bound is vacuous or negative).
std::size_t hoeffding_samples(double accuracy, double failure_prob);

/// Inverse of hoeffding_samples: the confidence half-width `samples` i.i.d.
/// [0, 1] draws achieve at (1 - failure_prob) confidence,
/// sqrt(ln(2/failure) / (2 samples)). Same input guards as
/// hoeffding_samples; additionally requires samples > 0.
double hoeffding_accuracy(std::size_t samples, double failure_prob);

/// Plan-time cost model of one trajectory engine, in the commensurate units
/// the backend-selection front door (core/backend.hpp) compares: flops are
/// modeled complex multiply-adds, peak_elems transient complex elements.
/// Shared by the statevector (sv_trajectory_cost) and MPS
/// (mps::mps_trajectory_cost) models.
struct TrajectoryCost {
  double per_sample_flops = 0.0;
  std::size_t peak_elems = 0;
};

/// Cost model of sample_trajectory_sv: every gate updates all 2^n
/// amplitudes; every noise site additionally evaluates each Kraus
/// candidate's Born probability and renormalizes the winner. Peak memory is
/// the state plus the 2-qubit Born scratch copy.
TrajectoryCost sv_trajectory_cost(const ch::NoisyCircuit& nc);

}  // namespace noisim::sim
