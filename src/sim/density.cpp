#include "sim/density.hpp"

#include <cmath>

namespace noisim::sim {

namespace {

// Statevector-style kernels on a raw flat buffer: apply a 2x2 / 4x4 matrix
// at the given bit position(s) of the flat index.
void kernel1(std::vector<cplx>& v, const la::Matrix& m, std::size_t bit) {
  const cplx m00 = m(0, 0), m01 = m(0, 1), m10 = m(1, 0), m11 = m(1, 1);
  const std::size_t size = v.size();
  for (std::size_t i = 0; i < size; ++i) {
    if (i & bit) continue;
    const cplx a0 = v[i], a1 = v[i | bit];
    v[i] = m00 * a0 + m01 * a1;
    v[i | bit] = m10 * a0 + m11 * a1;
  }
}

void kernel2(std::vector<cplx>& v, const la::Matrix& m, std::size_t bit_hi, std::size_t bit_lo) {
  const std::size_t size = v.size();
  for (std::size_t i = 0; i < size; ++i) {
    if (i & (bit_hi | bit_lo)) continue;
    cplx old[4], neu[4];
    for (std::size_t t = 0; t < 4; ++t)
      old[t] = v[i | ((t & 2) ? bit_hi : 0) | ((t & 1) ? bit_lo : 0)];
    for (std::size_t r = 0; r < 4; ++r) {
      neu[r] = cplx{0.0, 0.0};
      for (std::size_t c = 0; c < 4; ++c) neu[r] += m(r, c) * old[c];
    }
    for (std::size_t t = 0; t < 4; ++t)
      v[i | ((t & 2) ? bit_hi : 0) | ((t & 1) ? bit_lo : 0)] = neu[t];
  }
}

}  // namespace

DensityMatrix::DensityMatrix(int n) : n_(n) {
  la::detail::require(n > 0 && n <= kDensityMaxQubits,
                      "DensityMatrix: qubit count out of range [1, 13]");
  rho_.assign(std::size_t{1} << (2 * n), cplx{0.0, 0.0});
  rho_[0] = cplx{1.0, 0.0};
}

DensityMatrix DensityMatrix::from_statevector(const Statevector& sv) {
  DensityMatrix dm(sv.num_qubits());
  const std::size_t d = dm.dim();
  for (std::size_t r = 0; r < d; ++r)
    for (std::size_t c = 0; c < d; ++c)
      dm.rho_[r * d + c] = sv.amplitude(r) * std::conj(sv.amplitude(c));
  return dm;
}

void DensityMatrix::apply_gate(const qc::Gate& g) {
  const la::Matrix u = g.matrix();
  const int two_n = 2 * n_;
  if (g.num_qubits() == 1) {
    const std::size_t row_bit = std::size_t{1} << (two_n - 1 - g.qubits[0]);
    const std::size_t col_bit = std::size_t{1} << (n_ - 1 - g.qubits[0]);
    kernel1(rho_, u, row_bit);
    kernel1(rho_, u.conj(), col_bit);
  } else {
    const std::size_t row_a = std::size_t{1} << (two_n - 1 - g.qubits[0]);
    const std::size_t row_b = std::size_t{1} << (two_n - 1 - g.qubits[1]);
    const std::size_t col_a = std::size_t{1} << (n_ - 1 - g.qubits[0]);
    const std::size_t col_b = std::size_t{1} << (n_ - 1 - g.qubits[1]);
    kernel2(rho_, u, row_a, row_b);
    kernel2(rho_, u.conj(), col_a, col_b);
  }
}

void DensityMatrix::apply_channel(const ch::Channel& channel, int q) {
  la::detail::require(channel.dim() == 2, "DensityMatrix::apply_channel: 1-qubit channels only");
  la::detail::require(q >= 0 && q < n_, "DensityMatrix::apply_channel: qubit out of range");
  const std::size_t row_bit = std::size_t{1} << (2 * n_ - 1 - q);
  const std::size_t col_bit = std::size_t{1} << (n_ - 1 - q);

  std::vector<cplx> acc(rho_.size(), cplx{0.0, 0.0});
  std::vector<cplx> buf;
  for (const la::Matrix& k : channel.kraus()) {
    buf = rho_;
    kernel1(buf, k, row_bit);
    kernel1(buf, k.conj(), col_bit);
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += buf[i];
  }
  rho_ = std::move(acc);
}

void DensityMatrix::apply_channel_2q(const ch::Channel& channel, int a, int b) {
  la::detail::require(channel.dim() == 4, "DensityMatrix::apply_channel_2q: need dim 4");
  la::detail::require(a >= 0 && a < n_ && b >= 0 && b < n_ && a != b,
                      "DensityMatrix::apply_channel_2q: bad qubits");
  const std::size_t row_a = std::size_t{1} << (2 * n_ - 1 - a);
  const std::size_t row_b = std::size_t{1} << (2 * n_ - 1 - b);
  const std::size_t col_a = std::size_t{1} << (n_ - 1 - a);
  const std::size_t col_b = std::size_t{1} << (n_ - 1 - b);

  std::vector<cplx> acc(rho_.size(), cplx{0.0, 0.0});
  std::vector<cplx> buf;
  for (const la::Matrix& k : channel.kraus()) {
    buf = rho_;
    kernel2(buf, k, row_a, row_b);
    kernel2(buf, k.conj(), col_a, col_b);
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += buf[i];
  }
  rho_ = std::move(acc);
}

void DensityMatrix::evolve(const ch::NoisyCircuit& nc) {
  la::detail::require(nc.num_qubits() == n_, "DensityMatrix::evolve: width mismatch");
  for (const ch::Op& op : nc.ops()) {
    if (const qc::Gate* g = std::get_if<qc::Gate>(&op)) {
      apply_gate(*g);
      continue;
    }
    const ch::NoiseOp& noise = std::get<ch::NoiseOp>(op);
    if (noise.num_qubits() == 1)
      apply_channel(noise.channel, noise.qubit);
    else
      apply_channel_2q(noise.channel, noise.qubit, noise.qubit2);
  }
}

cplx DensityMatrix::element(std::uint64_t row, std::uint64_t col) const {
  return rho_[row * dim() + col];
}

double DensityMatrix::trace() const {
  const std::size_t d = dim();
  cplx s{0.0, 0.0};
  for (std::size_t i = 0; i < d; ++i) s += rho_[i * d + i];
  return s.real();
}

double DensityMatrix::fidelity_basis(std::uint64_t v_bits) const {
  return rho_[v_bits * dim() + v_bits].real();
}

double DensityMatrix::fidelity(const la::Vector& v) const {
  const std::size_t d = dim();
  la::detail::require(v.size() == d, "DensityMatrix::fidelity: size mismatch");
  cplx s{0.0, 0.0};
  for (std::size_t r = 0; r < d; ++r) {
    cplx w{0.0, 0.0};
    const cplx* row = rho_.data() + r * d;
    for (std::size_t c = 0; c < d; ++c) w += row[c] * v[c];
    s += std::conj(v[r]) * w;
  }
  return s.real();
}

la::Matrix DensityMatrix::to_matrix() const {
  const std::size_t d = dim();
  la::Matrix m(d, d);
  for (std::size_t r = 0; r < d; ++r)
    for (std::size_t c = 0; c < d; ++c) m(r, c) = rho_[r * d + c];
  return m;
}

double exact_fidelity_mm(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                         std::uint64_t v_bits) {
  DensityMatrix dm(nc.num_qubits());
  if (psi_bits != 0) {
    DensityMatrix from = DensityMatrix::from_statevector(
        Statevector::basis(nc.num_qubits(), psi_bits));
    dm = std::move(from);
  }
  dm.evolve(nc);
  return dm.fidelity_basis(v_bits);
}

double density_evolution_flops(const ch::NoisyCircuit& nc) {
  const double dim_sq = std::pow(4.0, std::min(nc.num_qubits(), 31));
  double flops = 0.0;
  for (const ch::Op& op : nc.ops()) {
    if (const qc::Gate* g = std::get_if<qc::Gate>(&op)) {
      // U rho U^dag: one row-side and one column-side local update.
      flops += (g->num_qubits() == 1 ? 2.0 : 4.0) * 2.0 * dim_sq;
      continue;
    }
    const ch::NoiseOp& noise = std::get<ch::NoiseOp>(op);
    const double per_kraus = (noise.num_qubits() == 1 ? 2.0 : 4.0) * 2.0 * dim_sq;
    flops += static_cast<double>(noise.channel.kraus().size()) * per_kraus;
  }
  return flops;
}

}  // namespace noisim::sim
