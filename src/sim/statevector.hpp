#pragma once
// Schrodinger state-vector simulator.
//
// Bit convention: qubit 0 is the MOST significant bit of the amplitude
// index, so the state of qubits (q0, q1, ...) is kron(q0, q1, ...). This
// matches qc::circuit_unitary and la::kron throughout the library.
//
// apply_matrix* accept arbitrary (including non-unitary) matrices: the
// trajectories method applies Kraus operators and renormalizes, and the
// paper's approximation algorithm inserts non-unitary SVD factors.

#include <cstdint>
#include <vector>

#include "channels/noisy_circuit.hpp"
#include "circuit/circuit.hpp"

namespace noisim::sim {

class Statevector {
 public:
  /// |0...0> on n qubits (n <= 26 guarded by allocation size).
  explicit Statevector(int n);
  /// Computational basis state |bits>, bit of qubit 0 most significant.
  static Statevector basis(int n, std::uint64_t bits);
  /// Adopt an explicit amplitude vector (size must be 2^n).
  static Statevector from_vector(int n, const la::Vector& v);

  int num_qubits() const { return n_; }
  std::size_t size() const { return amps_.size(); }
  const cplx* data() const { return amps_.data(); }

  cplx amplitude(std::uint64_t bits) const { return amps_[bits]; }

  /// Apply an arbitrary 2x2 matrix to qubit q.
  void apply_matrix1(const la::Matrix& m, int q);
  /// Apply an arbitrary 4x4 matrix to qubits (a, b); a indexes the
  /// high-order bit of the matrix.
  void apply_matrix2(const la::Matrix& m, int a, int b);
  /// Apply a gate (dispatches on arity).
  void apply_gate(const qc::Gate& g);
  /// Apply every gate of a circuit in order.
  void apply_circuit(const qc::Circuit& c);

  /// <this|other>.
  cplx inner(const Statevector& other) const;
  /// <psi| M_q |psi> for a 2x2 operator M on qubit q (no copy).
  cplx expectation1(const la::Matrix& m, int q) const;

  double norm2() const;
  double norm() const;
  void normalize();

  la::Vector to_vector() const;

 private:
  int n_ = 0;
  std::vector<cplx> amps_;
};

/// <v|C|psi> for computational basis states |psi> = |psi_bits>,
/// |v> = |v_bits> (reference amplitude for tests and small benchmarks).
cplx basis_amplitude(const qc::Circuit& c, std::uint64_t psi_bits, std::uint64_t v_bits);

}  // namespace noisim::sim
