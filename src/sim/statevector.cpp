#include "sim/statevector.hpp"

#include <cmath>

namespace noisim::sim {

Statevector::Statevector(int n) : n_(n) {
  la::detail::require(n > 0 && n <= 26, "Statevector: qubit count out of range [1, 26]");
  amps_.assign(std::size_t{1} << n, cplx{0.0, 0.0});
  amps_[0] = cplx{1.0, 0.0};
}

Statevector Statevector::basis(int n, std::uint64_t bits) {
  Statevector sv(n);
  la::detail::require(bits < sv.amps_.size(), "Statevector::basis: bits out of range");
  sv.amps_[0] = cplx{0.0, 0.0};
  sv.amps_[bits] = cplx{1.0, 0.0};
  return sv;
}

Statevector Statevector::from_vector(int n, const la::Vector& v) {
  Statevector sv(n);
  la::detail::require(v.size() == sv.amps_.size(), "Statevector::from_vector: size mismatch");
  for (std::size_t i = 0; i < v.size(); ++i) sv.amps_[i] = v[i];
  return sv;
}

void Statevector::apply_matrix1(const la::Matrix& m, int q) {
  la::detail::require(m.rows() == 2 && m.cols() == 2, "apply_matrix1: need 2x2");
  la::detail::require(q >= 0 && q < n_, "apply_matrix1: qubit out of range");
  const std::size_t bit = std::size_t{1} << (n_ - 1 - q);
  const cplx m00 = m(0, 0), m01 = m(0, 1), m10 = m(1, 0), m11 = m(1, 1);
  const std::size_t size = amps_.size();
  for (std::size_t i = 0; i < size; ++i) {
    if (i & bit) continue;
    const cplx a0 = amps_[i];
    const cplx a1 = amps_[i | bit];
    amps_[i] = m00 * a0 + m01 * a1;
    amps_[i | bit] = m10 * a0 + m11 * a1;
  }
}

void Statevector::apply_matrix2(const la::Matrix& m, int a, int b) {
  la::detail::require(m.rows() == 4 && m.cols() == 4, "apply_matrix2: need 4x4");
  la::detail::require(a >= 0 && a < n_ && b >= 0 && b < n_ && a != b,
                      "apply_matrix2: qubits out of range");
  const std::size_t bit_a = std::size_t{1} << (n_ - 1 - a);
  const std::size_t bit_b = std::size_t{1} << (n_ - 1 - b);
  const std::size_t size = amps_.size();
  for (std::size_t i = 0; i < size; ++i) {
    if (i & (bit_a | bit_b)) continue;
    cplx old[4], neu[4];
    for (std::size_t t = 0; t < 4; ++t)
      old[t] = amps_[i | ((t & 2) ? bit_a : 0) | ((t & 1) ? bit_b : 0)];
    for (std::size_t r = 0; r < 4; ++r) {
      neu[r] = cplx{0.0, 0.0};
      for (std::size_t c = 0; c < 4; ++c) neu[r] += m(r, c) * old[c];
    }
    for (std::size_t t = 0; t < 4; ++t)
      amps_[i | ((t & 2) ? bit_a : 0) | ((t & 1) ? bit_b : 0)] = neu[t];
  }
}

void Statevector::apply_gate(const qc::Gate& g) {
  if (g.num_qubits() == 1)
    apply_matrix1(g.matrix(), g.qubits[0]);
  else
    apply_matrix2(g.matrix(), g.qubits[0], g.qubits[1]);
}

void Statevector::apply_circuit(const qc::Circuit& c) {
  la::detail::require(c.num_qubits() == n_, "apply_circuit: width mismatch");
  for (const qc::Gate& g : c.gates()) apply_gate(g);
}

cplx Statevector::inner(const Statevector& other) const {
  la::detail::require(n_ == other.n_, "Statevector::inner: width mismatch");
  cplx s{0.0, 0.0};
  for (std::size_t i = 0; i < amps_.size(); ++i) s += std::conj(amps_[i]) * other.amps_[i];
  return s;
}

cplx Statevector::expectation1(const la::Matrix& m, int q) const {
  la::detail::require(m.rows() == 2 && m.cols() == 2, "expectation1: need 2x2");
  const std::size_t bit = std::size_t{1} << (n_ - 1 - q);
  cplx s{0.0, 0.0};
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if (i & bit) continue;
    const cplx a0 = amps_[i], a1 = amps_[i | bit];
    s += std::conj(a0) * (m(0, 0) * a0 + m(0, 1) * a1);
    s += std::conj(a1) * (m(1, 0) * a0 + m(1, 1) * a1);
  }
  return s;
}

double Statevector::norm2() const {
  double s = 0.0;
  for (const cplx& a : amps_) s += std::norm(a);
  return s;
}

double Statevector::norm() const { return std::sqrt(norm2()); }

void Statevector::normalize() {
  const double n = norm();
  la::detail::require(n > 0.0, "Statevector::normalize: zero state");
  for (cplx& a : amps_) a /= n;
}

la::Vector Statevector::to_vector() const {
  la::Vector v(amps_.size());
  for (std::size_t i = 0; i < amps_.size(); ++i) v[i] = amps_[i];
  return v;
}

cplx basis_amplitude(const qc::Circuit& c, std::uint64_t psi_bits, std::uint64_t v_bits) {
  Statevector sv = Statevector::basis(c.num_qubits(), psi_bits);
  sv.apply_circuit(c);
  return sv.amplitude(v_bits);
}

}  // namespace noisim::sim
