#pragma once
// Shared multithreaded Monte-Carlo trajectory engine.
//
// All three trajectory baselines (statevector, MPS, tensor network) draw
// i.i.d. fidelity samples in an outer loop; this engine parallelizes that
// loop while keeping the estimate bit-for-bit reproducible for a fixed seed
// regardless of the number of worker threads:
//
//  * the sample budget is split into fixed-size chunks, and chunk c always
//    draws from its own std::mt19937_64 seeded from splitmix64(seed, c) --
//    the set of random streams is a function of (seed, chunk_size) only,
//    never of the thread count;
//  * idle workers steal the next unclaimed chunk from a shared atomic
//    counter, so uneven per-sample costs (e.g. MPS bond growth) balance
//    out without a static partition;
//  * each chunk accumulates its own Welford mean/M2 and the per-chunk
//    statistics are merged in chunk order (Chan's parallel variance
//    update) after all workers join; the merge order is deterministic, so
//    the floating-point result is too.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <random>
#include <span>

#include "core/run_control.hpp"

namespace noisim::sim {

struct TrajectoryResult {
  double mean = 0.0;       // estimate of <v|E(rho)|v>
  double std_error = 0.0;  // sample standard error of the mean
  std::size_t samples = 0;
};

struct ParallelOptions {
  /// Worker threads; 0 = NOISIM_THREADS env var if set, else
  /// std::thread::hardware_concurrency().
  std::size_t threads = 0;
  /// Samples per RNG chunk. Part of the reproducibility contract: the same
  /// (seed, chunk_size) pair always draws the same streams, so changing it
  /// changes the (equally valid) estimate.
  std::size_t chunk_size = 32;
  /// Cooperative control (core/run_control.hpp), polled by every worker
  /// once per claimed chunk: a cancel raises CancelledError and an expired
  /// deadline TimeoutError from the runner, within one chunk of the
  /// trigger. Workers that observe a sibling's exception stop claiming
  /// chunks (cooperative drain) and the FIRST exception is rethrown after
  /// all workers join. Null disables; a control that never fires leaves
  /// results bit-identical. Caller-owned.
  const core::RunControl* control = nullptr;
};

/// Resolve ParallelOptions::threads (0 -> env/hardware default).
std::size_t resolve_threads(std::size_t requested);

/// Streaming mean/variance accumulator with a deterministic pairwise merge.
struct Welford {
  std::size_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;  // sum of squared deviations from the running mean

  void add(double x);
  void merge(const Welford& other);
  /// Unbiased sample variance (n-1 denominator); 0 when count < 2.
  double variance() const;
};

/// Derived RNG for one chunk: decorrelates consecutive chunk indices far
/// better than seeding mt19937_64 with seed + c directly.
std::mt19937_64 chunk_rng(std::uint64_t seed, std::uint64_t chunk_index);

/// One fidelity sample in [0, 1] drawn with the supplied RNG.
using Sampler = std::function<double(std::mt19937_64&)>;
/// Per-worker sampler factory: called once per worker thread so a sampler
/// can own scratch state (e.g. a gate-list copy) without synchronization.
using SamplerFactory = std::function<Sampler(std::size_t worker)>;

/// Fill one chunk's fidelity samples (values.size() <= chunk_size) drawing
/// from `rng` exactly as the per-sample path would, in sample order --
/// backends that evaluate a whole chunk at once (the batched TN plan
/// executor) pre-draw per-sample randomness in order and then fill the
/// values in one shot, which keeps the estimate bit-identical to
/// sample-at-a-time evaluation.
using ChunkSampler = std::function<void(std::mt19937_64&, std::span<double>)>;
/// Per-worker chunk-sampler factory (owns scratch, like SamplerFactory).
using ChunkSamplerFactory = std::function<ChunkSampler(std::size_t worker)>;

/// Run `samples` trajectories with work-stealing over seed-indexed chunks.
/// The result is identical for any `opts.threads` (including 1).
/// samples == 0 returns the well-defined empty estimate (0 samples, mean 0,
/// no error bar) without invoking the sampler.
TrajectoryResult run_trajectories(std::size_t samples, std::uint64_t seed,
                                  const SamplerFactory& make_sampler,
                                  const ParallelOptions& opts = {});

/// Convenience overload for samplers without per-worker scratch.
TrajectoryResult run_trajectories(std::size_t samples, std::uint64_t seed,
                                  const Sampler& sampler, const ParallelOptions& opts = {});

/// Chunk-at-a-time variant of run_trajectories: same chunking, RNG streams,
/// and deterministic Welford merge, but each chunk's samples are produced
/// by one ChunkSampler call (enabling batched evaluation across the chunk).
TrajectoryResult run_trajectories_chunked(std::size_t samples, std::uint64_t seed,
                                          const ChunkSamplerFactory& make_sampler,
                                          const ParallelOptions& opts = {});

/// Fill one chunk's samples for MANY estimates at once:
/// values[s * num_estimates + o] = trajectory s scored for estimate o
/// (s < the passed sample count). Per-sample randomness must be drawn in
/// sample order exactly as the single-estimate path would -- one draw set
/// per trajectory, shared by every estimate -- so each estimate's stream
/// matches its standalone run bit for bit.
using MultiChunkSampler =
    std::function<void(std::mt19937_64&, std::size_t, std::span<double>)>;
/// Per-worker multi-estimate sampler factory (owns scratch).
using MultiChunkSamplerFactory = std::function<MultiChunkSampler(std::size_t worker)>;

/// run_trajectories_chunked over `num_estimates` estimates that share every
/// trajectory's randomness (e.g. one sampled noise realization scored at
/// many output bitstrings). Returns one TrajectoryResult per estimate;
/// estimate o is bit-identical to the single-estimate runner fed stream o
/// (same chunking, same per-chunk Welford accumulation, same chunk-order
/// merge). samples == 0 yields well-defined empty estimates (0 samples,
/// mean 0).
std::vector<TrajectoryResult> run_trajectories_multi(
    std::size_t samples, std::size_t num_estimates, std::uint64_t seed,
    const MultiChunkSamplerFactory& make_sampler, const ParallelOptions& opts = {});

/// Fill one chunk's samples for the estimates of ONE shard:
/// values[s * shard_count + j] = trajectory s scored for estimate
/// shard_begin + j (s < sample_count). Per-sample randomness must be drawn
/// in sample order exactly as the single-estimate path would -- one draw
/// set per trajectory, independent of which shard is being scored -- so
/// every estimate's stream matches its standalone run bit for bit. Shards
/// of the same chunk redraw the same per-sample randomness (draws are cheap
/// next to scoring).
using ShardChunkSampler =
    std::function<void(std::mt19937_64&, std::size_t, std::size_t, std::size_t,
                       std::span<double>)>;
/// Per-worker shard-chunk sampler factory (owns scratch).
using ShardChunkSamplerFactory = std::function<ShardChunkSampler(std::size_t worker)>;

/// run_trajectories_multi over a single 2-D (estimate-shard x sample-chunk)
/// work queue: the estimates are partitioned into shards of `shard_size`
/// (0 = one shard holding all of them) and workers steal (shard, chunk)
/// items, so a sweep with few sample chunks but many estimates fills every
/// thread instead of idling on a chunk-only partition, and a worker's value
/// buffer holds chunk_size x shard_size samples instead of chunk_size x
/// num_estimates. Estimate o is bit-identical to run_trajectories_multi and
/// to the single-estimate runner fed stream o, at every thread count and
/// shard size: per-(estimate, chunk) Welford accumulation and the
/// chunk-order merge are unchanged, and the chunk RNG streams depend only
/// on (seed, chunk_size).
std::vector<TrajectoryResult> run_trajectories_sharded(
    std::size_t samples, std::size_t num_estimates, std::size_t shard_size,
    std::uint64_t seed, const ShardChunkSamplerFactory& make_sampler,
    const ParallelOptions& opts = {});

}  // namespace noisim::sim
