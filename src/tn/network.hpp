#pragma once
// Tensor network graph: tensors (nodes) joined by shared indices (edges).
//
// This module replaces the role Google TensorNetwork plays in the paper's
// implementation: it stores the network and hands it to a contractor
// (contractor.hpp) that picks a pairwise contraction order.
//
// Conventions:
//  * An edge id may appear on at most two node axes in the whole network.
//  * An edge appearing once is "open" (a free index of the final result).
//  * Self-loops (same edge twice on one node) are rejected; use
//    tsr::trace_axes before adding such a tensor.

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.hpp"

namespace noisim::tn {

using EdgeId = std::size_t;

struct Node {
  tsr::Tensor tensor;
  std::vector<EdgeId> edges;  // edges[i] labels tensor axis i
  std::string label;          // for diagnostics
};

/// (node index, axis) endpoint of an edge.
struct Endpoint {
  std::size_t node;
  std::size_t axis;
};

class Network {
 public:
  /// Allocate a fresh edge id (not yet attached to any node).
  EdgeId new_edge() { return next_edge_++; }
  /// Allocate `count` fresh consecutive edge ids, returning the first.
  EdgeId new_edges(std::size_t count) {
    const EdgeId first = next_edge_;
    next_edge_ += count;
    return first;
  }

  /// Add a tensor whose axis i is labeled edges[i]. Returns the node index.
  std::size_t add_node(tsr::Tensor tensor, std::vector<EdgeId> edges, std::string label = {});

  std::size_t num_nodes() const { return nodes_.size(); }
  const Node& node(std::size_t i) const { return nodes_[i]; }
  Node& node(std::size_t i) { return nodes_[i]; }
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Current endpoints of an edge (0, 1, or 2 entries).
  const std::vector<Endpoint>& endpoints(EdgeId e) const;

  /// Edge ids appearing exactly once (free indices of the contraction),
  /// in ascending edge-id order.
  std::vector<EdgeId> open_edges() const;

  /// Total number of tensor elements stored (diagnostics).
  std::size_t total_elements() const;

  /// FNV-1a digest of the network's TOPOLOGY (node count, per-node edge
  /// ids and axis dims; tensor contents never enter). Equal topologies
  /// hash equal, and the value involves no wall clock or process entropy,
  /// so it can seed randomized planning without breaking the
  /// plan-is-a-pure-function-of-topology contract.
  std::uint64_t topology_hash() const;

 private:
  std::vector<Node> nodes_;
  std::unordered_map<EdgeId, std::vector<Endpoint>> endpoints_;
  EdgeId next_edge_ = 0;
};

}  // namespace noisim::tn
