#include "tn/plan.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <queue>
#include <sstream>
#include <unordered_map>

#include "tensor/contract.hpp"

namespace noisim::tn {

namespace {

using Clock = std::chrono::steady_clock;

/// Compile-time arena allocator: first-fit over a sorted free list with
/// coalescing, so each intermediate gets a fixed offset and the high-water
/// mark equals the peak live-intermediate footprint of the schedule.
class ArenaLayout {
 public:
  std::size_t alloc(std::size_t elems) {
    for (std::size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].elems >= elems) {
        const std::size_t offset = free_[i].offset;
        free_[i].offset += elems;
        free_[i].elems -= elems;
        if (free_[i].elems == 0) free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
        return offset;
      }
    }
    const std::size_t offset = end_;
    end_ += elems;
    return offset;
  }

  void release(std::size_t offset, std::size_t elems) {
    if (elems == 0) return;
    auto it = std::lower_bound(free_.begin(), free_.end(), offset,
                               [](const Region& r, std::size_t o) { return r.offset < o; });
    it = free_.insert(it, Region{offset, elems});
    // Coalesce with the following region, then the preceding one.
    const std::size_t i = static_cast<std::size_t>(it - free_.begin());
    if (i + 1 < free_.size() && free_[i].offset + free_[i].elems == free_[i + 1].offset) {
      free_[i].elems += free_[i + 1].elems;
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i + 1));
    }
    if (i > 0 && free_[i - 1].offset + free_[i - 1].elems == free_[i].offset) {
      free_[i - 1].elems += free_[i].elems;
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }

  std::size_t high_water() const { return end_; }

 private:
  struct Region {
    std::size_t offset, elems;
  };
  std::vector<Region> free_;  // sorted by offset
  std::size_t end_ = 0;
};

struct Candidate {
  double score;
  std::size_t result;
  std::size_t u, v;
  bool operator>(const Candidate& o) const {
    if (score != o.score) return score > o.score;
    return result > o.result;
  }
};

/// Deterministic 64-bit generator (splitmix64) for RandomGreedy. The
/// standard <random> distributions are implementation-defined, which would
/// make the chosen plan depend on the C++ runtime; drawing uniforms
/// directly from the raw stream keeps plan selection a pure function of
/// the seed on every toolchain.
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, 1) with 53 significant bits.
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }
};

/// First-occurrence probe table for the batched executor's dedup scans:
/// maps a 64-bit key to the first index that inserted it, with collisions
/// re-checked through the caller's equality predicate. Replacing the
/// executor's linear first-occurrence scans with this keeps the mapping --
/// and therefore every replayed bit -- IDENTICAL (the stored entry is
/// always the earliest index with equal keys) while dropping the scans
/// from O(k^2) to O(k), which is what keeps wide batches (terms x output
/// bitstrings) from drowning in bookkeeping.
class DedupTable {
 public:
  DedupTable(std::vector<std::uint32_t>& slots, std::size_t expected) : slots_(slots) {
    std::size_t cap = 16;
    while (cap < 2 * expected) cap <<= 1;
    mask_ = cap - 1;
    slots_.assign(cap, 0);
  }

  /// Returns the first index previously inserted with an equal key (as
  /// decided by `same`), or inserts `value` and returns it.
  template <class Eq>
  std::uint32_t find_or_insert(std::uint64_t key, std::uint32_t value, Eq&& same) {
    std::size_t h = mix(key) & mask_;
    while (slots_[h] != 0) {
      const std::uint32_t cand = slots_[h] - 1;
      if (same(cand)) return cand;
      h = (h + 1) & mask_;
    }
    slots_[h] = value + 1;
    return value;
  }

 private:
  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  }
  std::vector<std::uint32_t>& slots_;
  std::size_t mask_ = 0;
};

}  // namespace

/// Shape-and-edge-only replica of the contractor's working state: merges
/// emit PlanSteps instead of performing arithmetic. The pairwise order,
/// tie-breaking, and budget checks mirror the eager contractor exactly, so
/// a compiled plan replays to bit-identical results.
struct PlanCompiler {
  struct MetaNode {
    std::vector<EdgeId> edges;
    std::vector<std::size_t> dims;
    std::size_t elems = 1;
  };

  const ContractOptions& opts;
  std::vector<MetaNode> nodes;  // indexed by slot
  std::vector<bool> alive;
  std::unordered_map<EdgeId, std::vector<std::size_t>> edge_nodes;
  std::size_t num_inputs = 0;

  std::vector<PlanStep> steps;
  ArenaLayout arena;
  std::vector<std::size_t> slot_offset;  // arena offset (intermediates only)
  std::size_t peak = 0;
  std::size_t flops = 0;  // sum of m*k*n over all steps (schedule cost)
  std::size_t bytes = 0;  // modeled memory traffic of one replay
  std::size_t scratch_a = 0, scratch_b = 0;
  std::size_t max_rank = 0;

  Clock::time_point deadline{};
  bool has_deadline = false;

  // `deadline` is shared by every planning attempt of one compile() call
  // (all greedy cost weights plus the Auto fallback), so timeout_seconds
  // bounds total planning time, not each attempt.
  PlanCompiler(const Network& net, const ContractOptions& o, Clock::time_point shared_deadline,
               bool deadline_set)
      : opts(o), deadline(shared_deadline), has_deadline(deadline_set) {
    num_inputs = net.num_nodes();
    nodes.reserve(num_inputs);
    for (std::size_t i = 0; i < num_inputs; ++i) {
      MetaNode mn;
      mn.edges = net.node(i).edges;
      mn.dims.assign(net.node(i).tensor.shape().begin(), net.node(i).tensor.shape().end());
      mn.elems = net.node(i).tensor.size();
      for (EdgeId e : mn.edges) edge_nodes[e].push_back(i);
      nodes.push_back(std::move(mn));
      alive.push_back(true);
      slot_offset.push_back(0);
    }
  }

  void check_deadline() const {
    if (opts.control) opts.control->poll();
    if (has_deadline && Clock::now() > deadline)
      throw TimeoutError("tensor network contraction exceeded deadline");
  }

  bool connected(std::size_t u, std::size_t v) const {
    for (EdgeId e : nodes[u].edges)
      if (std::find(nodes[v].edges.begin(), nodes[v].edges.end(), e) != nodes[v].edges.end())
        return true;
    return false;
  }

  /// Product of the dims shared between u and v (edge lists are tiny, so a
  /// linear scan beats hashing; this is the memoization-friendly scorer --
  /// only pairs adjacent to a merge are ever (re)scored).
  std::size_t shared_dims(std::size_t u, std::size_t v) const {
    std::size_t prod = 1;
    for (std::size_t ax = 0; ax < nodes[u].edges.size(); ++ax) {
      const EdgeId e = nodes[u].edges[ax];
      if (std::find(nodes[v].edges.begin(), nodes[v].edges.end(), e) != nodes[v].edges.end())
        prod *= nodes[u].dims[ax];
    }
    return prod;
  }

  std::size_t result_size(std::size_t u, std::size_t v) const {
    const std::size_t shared = shared_dims(u, v);
    return (nodes[u].elems / shared) * (nodes[v].elems / shared);
  }

  std::vector<std::size_t> neighbors(std::size_t i) const {
    std::vector<std::size_t> out;
    for (EdgeId e : nodes[i].edges) {
      const auto it = edge_nodes.find(e);
      if (it == edge_nodes.end()) continue;
      for (std::size_t n : it->second)
        if (n != i && alive[n]) out.push_back(n);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  std::vector<std::size_t> alive_nodes() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < alive.size(); ++i)
      if (alive[i]) out.push_back(i);
    return out;
  }

  /// Plan the contraction of slots u and v; returns the new slot index.
  std::size_t merge(std::size_t u, std::size_t v) {
    check_deadline();
    const MetaNode& nu = nodes[u];
    const MetaNode& nv = nodes[v];

    // Shared edges in u-axis order; v axes located per shared edge -- the
    // same pairing the eager contractor fed to tsr::contract.
    std::vector<std::size_t> axes_u, axes_v, free_a, free_b;
    for (std::size_t ax = 0; ax < nu.edges.size(); ++ax) {
      const auto it = std::find(nv.edges.begin(), nv.edges.end(), nu.edges[ax]);
      if (it != nv.edges.end()) {
        axes_u.push_back(ax);
        axes_v.push_back(static_cast<std::size_t>(it - nv.edges.begin()));
      } else {
        free_a.push_back(ax);
      }
    }
    for (std::size_t ax = 0; ax < nv.edges.size(); ++ax)
      if (std::find(axes_v.begin(), axes_v.end(), ax) == axes_v.end()) free_b.push_back(ax);

    PlanStep step;
    step.lhs = u;
    step.rhs = v;
    step.a_elems = nu.elems;
    step.b_elems = nv.elems;

    MetaNode merged;
    for (std::size_t ax : free_a) {
      step.m *= nu.dims[ax];
      merged.edges.push_back(nu.edges[ax]);
      merged.dims.push_back(nu.dims[ax]);
    }
    for (std::size_t ax : axes_u) step.k *= nu.dims[ax];
    for (std::size_t ax : free_b) {
      step.n *= nv.dims[ax];
      merged.edges.push_back(nv.edges[ax]);
      merged.dims.push_back(nv.dims[ax]);
    }
    merged.elems = step.m * step.n;
    step.out_elems = merged.elems;

    if (step.out_elems > opts.max_tensor_elems)
      throw MemoryOutError("tensor network contraction exceeded memory budget (intermediate of " +
                           std::to_string(step.out_elems) + " elements)");

    // Operand permutations: lhs to [free..., contracted...], rhs to
    // [contracted..., free...]. Identity permutations are recorded as
    // in-place reads (no scratch, no copy at execution).
    std::vector<std::size_t> perm_a = free_a;
    perm_a.insert(perm_a.end(), axes_u.begin(), axes_u.end());
    std::vector<std::size_t> perm_b = axes_v;
    perm_b.insert(perm_b.end(), free_b.begin(), free_b.end());

    step.identity_a = tsr::is_identity_permutation(perm_a);
    if (!step.identity_a) {
      const std::vector<std::size_t> strides = tsr::row_major_strides(nu.dims);
      for (std::size_t p : perm_a) {
        step.a_perm_shape.push_back(nu.dims[p]);
        step.a_src_stride.push_back(strides[p]);
      }
      scratch_a = std::max(scratch_a, nu.elems);
      max_rank = std::max(max_rank, perm_a.size());
    }
    step.identity_b = tsr::is_identity_permutation(perm_b);
    if (!step.identity_b) {
      const std::vector<std::size_t> strides = tsr::row_major_strides(nv.dims);
      for (std::size_t p : perm_b) {
        step.b_perm_shape.push_back(nv.dims[p]);
        step.b_src_stride.push_back(strides[p]);
      }
      scratch_b = std::max(scratch_b, nv.elems);
      max_rank = std::max(max_rank, perm_b.size());
    }

    // Arena: the output region is claimed while both operands are still
    // live (no overlap), then consumed operand regions are recycled.
    step.out_offset = arena.alloc(step.out_elems);
    if (opts.max_workspace_elems > 0 && arena.high_water() > opts.max_workspace_elems)
      throw MemoryOutError("contraction plan workspace exceeded budget (arena of " +
                           std::to_string(arena.high_water()) + " elements)");
    if (u >= num_inputs) arena.release(slot_offset[u], nodes[u].elems);
    if (v >= num_inputs) arena.release(slot_offset[v], nodes[v].elems);

    peak = std::max(peak, step.out_elems);
    flops += step.m * step.k * step.n;
    // Traffic model: operand reads (plus a read+write permutation copy when
    // not identity), output zero-fill + accumulate write.
    bytes += sizeof(cplx) * (step.a_elems * (step.identity_a ? 1 : 3) +
                             step.b_elems * (step.identity_b ? 1 : 3) + 2 * step.out_elems);

    alive[u] = alive[v] = false;
    const std::size_t idx = nodes.size();
    for (EdgeId e : merged.edges) {
      auto& owners = edge_nodes[e];
      owners.erase(std::remove_if(owners.begin(), owners.end(),
                                  [&](std::size_t n) { return n == u || n == v; }),
                   owners.end());
      owners.push_back(idx);
    }
    for (std::size_t ax : axes_u) edge_nodes.erase(nu.edges[ax]);

    slot_offset.push_back(step.out_offset);
    nodes.push_back(std::move(merged));
    alive.push_back(true);
    steps.push_back(std::move(step));
    return idx;
  }

  /// Greedy ordering with score = result - alpha * (size_a + size_b).
  /// alpha = 1 is the classic opt_einsum heuristic; larger alphas favor
  /// consuming big operands early, which on grid-like layers often yields
  /// far cheaper schedules. compile() tries a deterministic alpha ladder
  /// and keeps the cheapest plan -- planning runs once per topology, so the
  /// extra search amortizes over every replay.
  ///
  /// With `rng` set (RandomGreedy), the operand-size term of every scored
  /// pair is multiplied by exp(jitter * u), u uniform in [-1, 1) -- the
  /// CoTenGra-style perturbation that lets restarts escape the
  /// deterministic heuristic's local choices. Draws happen in push order,
  /// which is itself deterministic, so a fixed seed fixes the schedule.
  void greedy(double alpha, SplitMix64* rng = nullptr, double jitter = 0.0) {
    std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>> heap;

    auto push_pair = [&](std::size_t u, std::size_t v) {
      if (u > v) std::swap(u, v);
      const std::size_t rs = result_size(u, v);
      double weight = alpha;
      if (rng) weight *= std::exp(jitter * (2.0 * rng->uniform() - 1.0));
      const double score = static_cast<double>(rs) -
                           weight * (static_cast<double>(nodes[u].elems) +
                                     static_cast<double>(nodes[v].elems));
      heap.push(Candidate{score, rs, u, v});
    };

    for (std::size_t i = 0; i < num_inputs; ++i)
      if (alive[i]) {
        check_deadline();
        for (std::size_t nb : neighbors(i))
          if (nb > i) push_pair(i, nb);
      }

    bool saw_over_budget = false;
    while (!heap.empty()) {
      // Polled per candidate, not just per merge: stale/over-budget
      // candidates can dominate the drain on dense networks, and the
      // deadline contract is bounded-latency abandonment of the whole
      // compile (all strategies share one deadline).
      check_deadline();
      const Candidate c = heap.top();
      heap.pop();
      if (!alive[c.u] || !alive[c.v]) continue;
      if (c.result > opts.max_tensor_elems) {
        saw_over_budget = true;
        continue;
      }
      const std::size_t merged = merge(c.u, c.v);
      for (std::size_t nb : neighbors(merged)) push_pair(merged, nb);
    }

    // Remaining alive nodes are mutually disconnected. If that is only
    // because every connected pair was over budget, report MO rather than
    // planning a wrong outer product.
    std::vector<std::size_t> rest = alive_nodes();
    for (std::size_t i = 0; i < rest.size(); ++i)
      for (std::size_t j = i + 1; j < rest.size(); ++j)
        if (connected(rest[i], rest[j])) {
          if (saw_over_budget)
            throw MemoryOutError("greedy contraction: all remaining pairs exceed memory budget");
          la::detail::fail("greedy contraction: internal error, connected pair left behind");
        }

    // Fold disconnected components smallest-first (outer products).
    while (true) {
      rest = alive_nodes();
      if (rest.size() <= 1) break;
      std::sort(rest.begin(), rest.end(),
                [&](std::size_t a, std::size_t b) { return nodes[a].elems < nodes[b].elems; });
      merge(rest[0], rest[1]);
    }
  }

  void sequential(const std::vector<std::size_t>& sequence) {
    std::vector<std::size_t> order = sequence;
    if (order.empty()) {
      order.resize(num_inputs);
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    } else {
      la::detail::require(order.size() == num_inputs,
                          "sequential contraction: sequence must cover all nodes");
      for (std::size_t i : order)
        la::detail::require(i < num_inputs, "sequential contraction: sequence index out of range");
    }
    std::size_t acc = order[0];
    for (std::size_t i = 1; i < order.size(); ++i) acc = merge(acc, order[i]);
  }

  /// Balanced binary reduction over insertion order: merge adjacent pairs,
  /// carry an odd leftover, repeat on the halved level (ddsim's pairwise
  /// simulation-path grouping). Depth log2(n), so early intermediates stay
  /// small on layered circuit networks.
  void pairwise_recursive() {
    std::vector<std::size_t> level(num_inputs);
    for (std::size_t i = 0; i < num_inputs; ++i) level[i] = i;
    while (level.size() > 1) {
      std::vector<std::size_t> next;
      next.reserve((level.size() + 1) / 2);
      for (std::size_t i = 0; i + 1 < level.size(); i += 2)
        next.push_back(merge(level[i], level[i + 1]));
      if (level.size() % 2 != 0) next.push_back(level.back());
      level = std::move(next);
    }
  }

  /// Consecutive brackets of `width` nodes in insertion order: contract
  /// within each bracket sequentially, then fold the bracket results
  /// sequentially -- the bracketed grouping of ddsim's simulation-path
  /// framework (gate blocks absorb locally before touching the growing
  /// accumulator).
  void bracket(std::size_t width) {
    std::vector<std::size_t> groups;
    for (std::size_t start = 0; start < num_inputs; start += width) {
      std::size_t acc = start;
      const std::size_t stop = std::min(start + width, num_inputs);
      for (std::size_t i = start + 1; i < stop; ++i) acc = merge(acc, i);
      groups.push_back(acc);
    }
    std::size_t acc = groups[0];
    for (std::size_t g = 1; g < groups.size(); ++g) acc = merge(acc, groups[g]);
  }

  /// Two accumulators absorb nodes from the front and the back of
  /// insertion order alternately, merged at the end. On amplitude networks
  /// (caps at both ends of the gate list) this contracts both boundaries
  /// inward instead of dragging one accumulator across the whole circuit.
  void alternating() {
    if (num_inputs < 2) return;
    std::size_t facc = 0;
    std::size_t bacc = num_inputs - 1;
    std::size_t lo = 1, hi = num_inputs - 2;
    bool take_front = true;
    while (lo <= hi) {
      if (take_front)
        facc = merge(facc, lo++);
      else
        bacc = merge(bacc, hi--);
      take_front = !take_front;
    }
    merge(facc, bacc);
  }

  ContractionPlan finalize(const Network& net) {
    const std::vector<std::size_t> rest = alive_nodes();
    la::detail::require(rest.size() == 1, "contract plan: network did not reduce to one node");
    const MetaNode& result = nodes[rest[0]];

    ContractionPlan plan;
    plan.steps_ = std::move(steps);
    plan.input_elems_.reserve(num_inputs);
    for (std::size_t i = 0; i < num_inputs; ++i) plan.input_elems_.push_back(nodes[i].elems);
    plan.arena_elems_ = arena.high_water();
    plan.scratch_a_elems_ = scratch_a;
    plan.scratch_b_elems_ = scratch_b;
    plan.peak_elems_ = peak;
    plan.total_flops_ = flops;
    std::size_t out_total = 1;
    for (std::size_t d : result.dims) out_total *= d;
    plan.total_bytes_ = bytes + sizeof(cplx) * 2 * out_total;  // final materialization
    plan.timeout_seconds_ = opts.timeout_seconds;
    plan.executions_ = std::make_shared<std::atomic<std::size_t>>(0);

    // Deterministic output: axes in ascending open-edge order.
    const std::vector<EdgeId> open = net.open_edges();
    la::detail::require(open.size() == result.edges.size(),
                        "contract plan: open edge bookkeeping mismatch");
    std::vector<std::size_t> perm(open.size());
    for (std::size_t i = 0; i < open.size(); ++i) {
      const auto it = std::find(result.edges.begin(), result.edges.end(), open[i]);
      la::detail::require(it != result.edges.end(), "contract plan: open edge missing");
      perm[i] = static_cast<std::size_t>(it - result.edges.begin());
    }
    plan.output_identity_ = tsr::is_identity_permutation(perm);
    const std::vector<std::size_t> strides = tsr::row_major_strides(result.dims);
    for (std::size_t p : perm) {
      plan.output_shape_.push_back(result.dims[p]);
      if (!plan.output_identity_) plan.output_src_stride_.push_back(strides[p]);
    }
    if (!plan.output_identity_) max_rank = std::max(max_rank, perm.size());
    plan.max_rank_ = max_rank;
    return plan;
  }
};

ContractionPlan ContractionPlan::compile(const Network& net, const ContractOptions& opts,
                                         ContractStats* stats) {
  la::detail::require(net.num_nodes() > 0, "ContractionPlan: empty network has no nodes");
  fault::poke("plan-mo");
  fault::poke("plan-to");
  if (opts.control) opts.control->poll();

  // One deadline across every planning attempt below, so timeout_seconds
  // bounds the whole compile (each replay later gets its own budget).
  Clock::time_point deadline{};
  const bool has_deadline = opts.timeout_seconds > 0.0;
  if (has_deadline)
    deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(opts.timeout_seconds));

  // Keep `plan` if it beats `best` by (total flops, peak intermediate);
  // strict comparisons keep the EARLIER candidate on full ties, which is
  // what makes every ladder and the portfolio tie-break stable in
  // enumeration order.
  auto keep_cheapest = [](ContractionPlan& best, bool& have_best, ContractionPlan&& plan) {
    if (!have_best || plan.total_flops_ < best.total_flops_ ||
        (plan.total_flops_ == best.total_flops_ && plan.peak_elems_ < best.peak_elems_)) {
      best = std::move(plan);
      have_best = true;
    }
  };

  auto build_sequential = [&] {
    PlanCompiler compiler(net, opts, deadline, has_deadline);
    compiler.sequential(opts.custom_sequence);
    ContractionPlan plan = compiler.finalize(net);
    plan.chosen_strategy_ = OrderStrategy::Sequential;
    return plan;
  };

  // Greedy = a deterministic ladder of score weights; keep the cheapest
  // schedule by (total flops, peak intermediate). Planning happens once per
  // topology while the plan replays per term, so a several-fold deeper
  // search at plan time is almost free -- and routinely finds schedules
  // several times cheaper than the single alpha = 1 heuristic.
  auto build_greedy = [&]() -> ContractionPlan {
    ContractionPlan best;
    bool have_best = false;
    bool saw_memory_out = false;
    for (const double alpha : opts.greedy_cost_weights) {
      try {
        PlanCompiler compiler(net, opts, deadline, has_deadline);
        compiler.greedy(alpha);
        keep_cheapest(best, have_best, compiler.finalize(net));
      } catch (const MemoryOutError&) {
        saw_memory_out = true;  // other weights may still fit the budget
      }
    }
    if (!have_best) {
      la::detail::require(saw_memory_out, "ContractionPlan: no greedy cost weights configured");
      throw MemoryOutError("tensor network contraction exceeded memory budget for every "
                           "greedy cost weight");
    }
    best.chosen_strategy_ = OrderStrategy::Greedy;
    return best;
  };

  auto build_pairwise = [&] {
    PlanCompiler compiler(net, opts, deadline, has_deadline);
    compiler.pairwise_recursive();
    ContractionPlan plan = compiler.finalize(net);
    plan.chosen_strategy_ = OrderStrategy::PairwiseRecursive;
    return plan;
  };

  // Bracket widths form an internal ladder like the greedy score weights:
  // three fixed widths, cheapest schedule wins, earlier width wins ties.
  auto build_bracket = [&]() -> ContractionPlan {
    ContractionPlan best;
    bool have_best = false;
    for (const std::size_t width : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      try {
        PlanCompiler compiler(net, opts, deadline, has_deadline);
        compiler.bracket(width);
        keep_cheapest(best, have_best, compiler.finalize(net));
      } catch (const MemoryOutError&) {
        // narrower/wider brackets may still fit the budget
      }
    }
    if (!have_best)
      throw MemoryOutError("tensor network contraction exceeded memory budget for every "
                           "bracket width");
    best.chosen_strategy_ = OrderStrategy::Bracket;
    return best;
  };

  auto build_alternating = [&] {
    PlanCompiler compiler(net, opts, deadline, has_deadline);
    compiler.alternating();
    ContractionPlan plan = compiler.finalize(net);
    plan.chosen_strategy_ = OrderStrategy::Alternating;
    return plan;
  };

  // Restarted jittered greedy. Every restart's generator is seeded from
  // the network's topology hash and the restart index alone -- no wall
  // clock, no process entropy -- so the restart ladder (and therefore the
  // kept schedule) is a pure function of topology + options, as the
  // PlanCache replay contract requires.
  auto build_random_greedy = [&]() -> ContractionPlan {
    la::detail::require(opts.random_restarts > 0,
                        "ContractionPlan: random_restarts must be >= 1");
    const std::uint64_t topology_seed = net.topology_hash();
    ContractionPlan best;
    bool have_best = false;
    for (std::size_t restart = 0; restart < opts.random_restarts; ++restart) {
      SplitMix64 rng{topology_seed + 0x9e3779b97f4a7c15ULL * (restart + 1)};
      // alpha log-uniform in [0.5, 8]: spans well past both ends of the
      // deterministic ladder, which is where restarts find schedules the
      // fixed weights miss.
      const double alpha = 0.5 * std::exp(rng.uniform() * std::log(16.0));
      try {
        PlanCompiler compiler(net, opts, deadline, has_deadline);
        compiler.greedy(alpha, &rng, 0.25);
        keep_cheapest(best, have_best, compiler.finalize(net));
      } catch (const MemoryOutError&) {
        // other restarts may still fit the budget
      }
    }
    if (!have_best)
      throw MemoryOutError("tensor network contraction exceeded memory budget for every "
                           "randomized greedy restart");
    best.chosen_strategy_ = OrderStrategy::RandomGreedy;
    return best;
  };

  auto build_for = [&](OrderStrategy s) -> ContractionPlan {
    switch (s) {
      case OrderStrategy::Greedy:
        return build_greedy();
      case OrderStrategy::Sequential:
        return build_sequential();
      case OrderStrategy::PairwiseRecursive:
        return build_pairwise();
      case OrderStrategy::Bracket:
        return build_bracket();
      case OrderStrategy::Alternating:
        return build_alternating();
      case OrderStrategy::RandomGreedy:
        return build_random_greedy();
      case OrderStrategy::Auto:
        break;
    }
    la::detail::fail("ContractionPlan: invalid portfolio strategy");
  };

  // Portfolio search: try every configured strategy under the ONE shared
  // deadline, keep the minimum-total-flop schedule (ties: peak elems, then
  // enumeration order). A strategy that exceeds the memory budget is
  // skipped -- some orders legitimately cannot fit budgets others can --
  // but TimeoutError always propagates: returning a best-so-far at the
  // deadline would make plan selection depend on wall clock, breaking the
  // purity contract PlanCache and bit-identical replay rest on.
  auto build_portfolio = [&]() -> ContractionPlan {
    la::detail::require(!opts.portfolio_strategies.empty(),
                        "ContractionPlan: portfolio_strategies must be non-empty");
    for (const OrderStrategy s : opts.portfolio_strategies)
      la::detail::require(s != OrderStrategy::Auto,
                          "ContractionPlan: portfolio_strategies may not contain Auto");
    ContractionPlan best;
    bool have_best = false;
    for (const OrderStrategy s : opts.portfolio_strategies) {
      ContractionPlan plan;
      try {
        plan = build_for(s);
      } catch (const MemoryOutError&) {
        continue;
      }
      if (stats) stats->strategy_flops[static_cast<std::size_t>(s)] += plan.total_flops_;
      keep_cheapest(best, have_best, std::move(plan));
    }
    if (have_best) return best;
    // Every portfolio strategy exceeded the memory budget; the Auto
    // contract keeps its pre-portfolio fallback of last resort.
    ContractionPlan plan = build_sequential();
    if (stats)
      stats->strategy_flops[static_cast<std::size_t>(OrderStrategy::Sequential)] +=
          plan.total_flops_;
    return plan;
  };

  auto build = [&]() -> ContractionPlan {
    if (opts.strategy == OrderStrategy::Auto) {
      if (opts.portfolio) return build_portfolio();
      try {
        return build_greedy();
      } catch (const MemoryOutError&) {
        // Greedy painted itself into a corner; a time-ordered sweep can
        // succeed on few-qubit deep circuits where greedy fails.
        return build_sequential();
      }
    }
    return build_for(opts.strategy);
  };

  ContractionPlan plan = build();
  if (stats) {
    ++stats->plans_compiled;
    ++stats->strategy_chosen[static_cast<std::size_t>(plan.chosen_strategy_)];
    // The portfolio path records each attempt's estimate itself (the
    // winner's is already in); direct strategies record theirs here, so
    // strategy_flops is always "summed best-candidate flops per compile".
    if (!(opts.strategy == OrderStrategy::Auto && opts.portfolio))
      stats->strategy_flops[static_cast<std::size_t>(plan.chosen_strategy_)] +=
          plan.total_flops_;
  }
  return plan;
}

namespace {

/// Attribute `count` kernel invocations to the tier that executed them.
void tally_kernels(ContractStats& stats, tsr::KernelTier tier, std::size_t count) {
  switch (tier) {
    case tsr::KernelTier::Scalar:
      stats.kernels_scalar += count;
      break;
    case tsr::KernelTier::Avx2:
      stats.kernels_avx2 += count;
      break;
    case tsr::KernelTier::Avx512:
      stats.kernels_avx512 += count;
      break;
  }
}

}  // namespace

const cplx* ContractionPlan::slot_data(std::size_t slot,
                                       std::span<const tsr::Tensor* const> inputs,
                                       const PlanWorkspace& ws) const {
  if (slot < inputs.size()) return inputs[slot]->data();
  return ws.arena.data() + steps_[slot - inputs.size()].out_offset;
}

tsr::Tensor ContractionPlan::execute(std::span<const tsr::Tensor* const> inputs,
                                     PlanWorkspace& ws, ContractStats* stats) const {
  la::detail::require(inputs.size() == input_elems_.size(),
                      "ContractionPlan::execute: input count mismatch");
  for (std::size_t i = 0; i < inputs.size(); ++i)
    la::detail::require(inputs[i]->size() == input_elems_[i],
                        "ContractionPlan::execute: input tensor size mismatch");

  const auto started = Clock::now();
  Clock::time_point deadline{};
  const bool has_deadline = timeout_seconds_ > 0.0;
  if (has_deadline)
    deadline = started + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(timeout_seconds_));

  if (ws.control) ws.control->check_memory(arena_elems_, "contraction arena");
  ws.arena.resize(arena_elems_);
  ws.scratch_a.resize(scratch_a_elems_);
  ws.scratch_b.resize(scratch_b_elems_);
  ws.idx.resize(max_rank_);

  // Executor seam: an injected table (ws.kernels) wins, otherwise the
  // process-wide dispatched tier. Resolved per replay, never baked into the
  // plan, so cached plans honor tier switches.
  const tsr::KernelTable& kt = ws.kernels ? *ws.kernels : tsr::active_kernels();

  for (const PlanStep& step : steps_) {
    fault::poke("exec-step-mo");
    fault::poke("exec-step-to");
    if (ws.control) ws.control->poll();
    if (has_deadline && Clock::now() > deadline)
      throw TimeoutError("tensor network contraction exceeded deadline");
    const cplx* pa = slot_data(step.lhs, inputs, ws);
    if (!step.identity_a) {
      tsr::permute_walk(pa, step.a_perm_shape, step.a_src_stride, ws.scratch_a.data(),
                        step.a_elems, ws.idx.data());
      pa = ws.scratch_a.data();
    }
    const cplx* pb = slot_data(step.rhs, inputs, ws);
    if (!step.identity_b) {
      tsr::permute_walk(pb, step.b_perm_shape, step.b_src_stride, ws.scratch_b.data(),
                        step.b_elems, ws.idx.data());
      pb = ws.scratch_b.data();
    }
    cplx* out = ws.arena.data() + step.out_offset;
    std::fill(out, out + step.out_elems, cplx{0.0, 0.0});
    kt.matmul(pa, pb, out, step.m, step.k, step.n);
  }

  // Materialize the result with axes in ascending open-edge order.
  const cplx* src =
      steps_.empty() ? inputs[0]->data() : ws.arena.data() + steps_.back().out_offset;
  tsr::Tensor result(output_shape_);
  if (output_identity_)
    std::copy(src, src + result.size(), result.data());
  else
    tsr::permute_walk(src, output_shape_, output_src_stride_, result.data(), result.size(),
                      ws.idx.data());

  const std::size_t prior = executions_->fetch_add(1, std::memory_order_relaxed);
  if (stats) {
    stats->num_pairwise += steps_.size();
    tally_kernels(*stats, kt.tier, steps_.size());
    stats->peak_elems = std::max(stats->peak_elems, peak_elems_);
    ++stats->plan_executions;
    if (prior > 0) ++stats->plan_reuse_hits;
    stats->flops += total_flops_;
    stats->bytes_moved += total_bytes_;
    stats->elapsed_seconds += std::chrono::duration<double>(Clock::now() - started).count();
  }
  return result;
}

tsr::Tensor ContractionPlan::execute(const Network& net, PlanWorkspace& ws,
                                     ContractStats* stats) const {
  ws.input_ptrs.clear();
  ws.input_ptrs.reserve(net.num_nodes());
  for (std::size_t i = 0; i < net.num_nodes(); ++i) ws.input_ptrs.push_back(&net.node(i).tensor);
  return execute(std::span<const tsr::Tensor* const>(ws.input_ptrs), ws, stats);
}

BatchedPlan ContractionPlan::compile_batched(std::span<const std::size_t> varying_slots,
                                             std::size_t capacity, const ContractOptions& opts,
                                             ContractStats* stats,
                                             std::span<const std::size_t> variant_counts,
                                             std::size_t max_varied_per_term,
                                             std::span<const char> unconstrained) const {
  la::detail::require(capacity >= 1, "compile_batched: capacity must be positive");
  fault::poke("plan-mo");
  fault::poke("plan-to");
  if (opts.control) opts.control->poll();
  la::detail::require(variant_counts.empty() || variant_counts.size() == varying_slots.size(),
                      "compile_batched: one variant count per varying slot");
  la::detail::require(unconstrained.empty() || unconstrained.size() == varying_slots.size(),
                      "compile_batched: one unconstrained flag per varying slot");
  for (std::size_t c : variant_counts)
    la::detail::require(c >= 1, "compile_batched: variant counts must be positive");
  const std::size_t num_in = input_elems_.size();

  BatchedPlan bp;
  bp.capacity_ = capacity;
  bp.input_elems_ = input_elems_;
  bp.timeout_seconds_ = timeout_seconds_;
  bp.scratch_a_elems_ = scratch_a_elems_;
  bp.scratch_b_elems_ = scratch_b_elems_;
  bp.max_rank_ = max_rank_;
  bp.output_identity_ = output_identity_;
  bp.output_shape_ = output_shape_;
  bp.output_src_stride_ = output_src_stride_;
  bp.varying_index_of_input_.assign(num_in, -1);
  for (std::size_t v = 0; v < varying_slots.size(); ++v) {
    const std::size_t slot = varying_slots[v];
    la::detail::require(slot < num_in, "compile_batched: varying slot out of range");
    la::detail::require(bp.varying_index_of_input_[slot] < 0,
                        "compile_batched: repeated varying slot");
    bp.varying_index_of_input_[slot] = static_cast<std::ptrdiff_t>(v);
  }
  bp.varying_slots_.assign(varying_slots.begin(), varying_slots.end());

  // Replay the schedule shape-only to lay out the arenas and check their
  // combined high-water mark against the (batch-aware) workspace budget.
  //
  // Each step's ROW BOUND is the number of distinct values its output can
  // take across a batch: the variant structure of the varying slots in its
  // dependency cone (tracked as a bitmask while V <= 64), truncated by the
  // per-term variation promise (at most `max_varied_per_term` slots differ
  // from variant 0 in any one term -- Algorithm 1's level), capped at the
  // capacity. Steps whose bound stays small are BATCHED: their [rows, ...]
  // buffer holds every distinct value at once and terms share rows. Steps
  // whose bound approaches the capacity (the merged-cone "root" region,
  // where every term is distinct) gain nothing from sharing but would
  // stream rows*out_elems bytes of single-use data; they are marked
  // SEQUENTIAL and replayed per term through a small per-term arena that
  // stays cache-hot -- exactly like per-term replay, minus the work already
  // hoisted into the batched region. Sequential-ness is downstream-closed
  // (cone masks only grow), so execution is two clean passes.
  std::vector<char> slot_varying(num_in + steps_.size(), 0);
  std::vector<char> slot_seq(num_in + steps_.size(), 0);
  // Cone masks are multi-word bitsets over the varying slots, so the
  // tracking (and the row bounds it buys) works at any slot count -- the
  // output-batching axis alone contributes n slots, which blows past a
  // single word well inside the XEB regime.
  const bool track_cones = !variant_counts.empty();
  const std::size_t words = track_cones ? (varying_slots.size() + 63) / 64 : 1;
  std::vector<std::uint64_t> slot_mask((num_in + steps_.size()) * words, 0);
  for (std::size_t i = 0; i < num_in; ++i)
    slot_varying[i] = bp.varying_index_of_input_[i] >= 0 ? 1 : 0;
  if (track_cones)
    for (std::size_t v = 0; v < varying_slots.size(); ++v)
      slot_mask[varying_slots[v] * words + v / 64] |= std::uint64_t{1} << (v % 64);
  const std::size_t degree = std::min(max_varied_per_term, varying_slots.size());
  std::vector<std::size_t> coeff;  // e_j DP scratch for mask_bound
  auto mask_bound = [&](const std::uint64_t* mask) -> std::size_t {
    // Distinct values = (product of the unconstrained cone slots' variant
    // counts -- those flip freely per term) times the sum over j <= degree
    // of the j-th elementary symmetric sum of (count_v - 1) over the
    // cone's constrained slots (choose which j sites deviate from variant
    // 0 and which deviation each takes), everything clamped at the
    // capacity.
    std::size_t free_prod = 1;
    coeff.assign(1, 1);
    for (std::size_t v = 0; v < varying_slots.size(); ++v) {
      if (!(mask[v / 64] & (std::uint64_t{1} << (v % 64)))) continue;
      if (!unconstrained.empty() && unconstrained[v]) {
        free_prod = std::min(capacity, free_prod * variant_counts[v]);
        continue;
      }
      const std::size_t d = variant_counts[v] - 1;
      if (coeff.size() <= degree) coeff.push_back(0);
      for (std::size_t j = coeff.size() - 1; j >= 1; --j)
        coeff[j] = std::min(capacity, coeff[j] + coeff[j - 1] * d);
    }
    std::size_t bound = 0;
    for (std::size_t c : coeff) bound = std::min(capacity, bound + c);
    return std::min(capacity, free_prod * bound);
  };
  // A step goes sequential when batching it would stream big, barely
  // shared buffers through memory: sharing below ~2x (row bound near the
  // capacity) AND an output too large for its rows to stay cache-resident.
  // Small tensors stay batched at any row count -- their whole row set is
  // cache-sized, so even weak sharing is free. Consumers of sequential
  // outputs are sequential by construction (downstream closure).
  const std::size_t seq_threshold = std::max<std::size_t>(2, capacity / 2);
  constexpr std::size_t kSeqMinElems = 512;
  std::vector<std::size_t> slot_offset(num_in + steps_.size(), 0);
  std::vector<std::size_t> slot_belems(num_in + steps_.size(), 0);
  ArenaLayout batched_arena, seq_arena;
  auto check_budget = [&] {
    if (opts.max_workspace_elems > 0 &&
        batched_arena.high_water() + seq_arena.high_water() > opts.max_workspace_elems)
      throw MemoryOutError("batched contraction plan workspace exceeded budget (arena of " +
                           std::to_string(batched_arena.high_water() + seq_arena.high_water()) +
                           " elements for batch of " + std::to_string(capacity) + ")");
  };

  bp.steps_.reserve(steps_.size());
  for (std::size_t s = 0; s < steps_.size(); ++s) {
    const PlanStep& step = steps_[s];
    BatchedStep bs;
    bs.lhs = step.lhs;
    bs.rhs = step.rhs;
    bs.varying_a = slot_varying[step.lhs] != 0;
    bs.varying_b = slot_varying[step.rhs] != 0;
    bs.varying_out = bs.varying_a || bs.varying_b;
    bs.identity_a = step.identity_a;
    bs.identity_b = step.identity_b;
    bs.a_perm_shape = step.a_perm_shape;
    bs.a_src_stride = step.a_src_stride;
    bs.b_perm_shape = step.b_perm_shape;
    bs.b_src_stride = step.b_src_stride;
    bs.a_elems = step.a_elems;
    bs.b_elems = step.b_elems;
    bs.m = step.m;
    bs.k = step.k;
    bs.n = step.n;
    bs.out_elems = step.out_elems;
    if (!step.identity_a && tsr::permute_gather_applies(step.a_elems))
      bs.a_gather = tsr::permute_gather(step.a_perm_shape, step.a_src_stride);
    if (!step.identity_b && tsr::permute_gather_applies(step.b_elems))
      bs.b_gather = tsr::permute_gather(step.b_perm_shape, step.b_src_stride);

    std::uint64_t* mask = slot_mask.data() + (num_in + s) * words;
    for (std::size_t w = 0; w < words; ++w)
      mask[w] = slot_mask[step.lhs * words + w] | slot_mask[step.rhs * words + w];
    if (!bs.varying_out)
      bs.row_bound = 1;
    else if (track_cones)
      bs.row_bound = mask_bound(mask);
    else
      bs.row_bound = capacity;
    const bool operand_seq = (step.lhs >= num_in && slot_seq[step.lhs]) ||
                             (step.rhs >= num_in && slot_seq[step.rhs]);
    bs.sequential = operand_seq || (bs.varying_out && bs.row_bound >= seq_threshold &&
                                    step.out_elems >= kSeqMinElems);

    if (bs.sequential) {
      // One row per step, NEVER recycled: the cross-term variant skip keeps
      // a step's last computed value alive across terms, so sequential
      // buffers must not alias. Operands from the batched region also stay
      // live through the whole sequential pass.
      bs.out_offset = seq_arena.alloc(step.out_elems);
      slot_belems[num_in + s] = step.out_elems;
    } else {
      const std::size_t belems = step.out_elems * bs.row_bound;
      bs.out_offset = batched_arena.alloc(belems);
      if (step.lhs >= num_in) batched_arena.release(slot_offset[step.lhs], slot_belems[step.lhs]);
      if (step.rhs >= num_in) batched_arena.release(slot_offset[step.rhs], slot_belems[step.rhs]);
      slot_belems[num_in + s] = belems;
    }
    check_budget();
    slot_varying[num_in + s] = bs.varying_out ? 1 : 0;
    slot_seq[num_in + s] = bs.sequential ? 1 : 0;
    slot_offset[num_in + s] = bs.out_offset;
    bp.term_flops_ += step.m * step.k * step.n;
    if (bs.sequential) bp.seq_flops_ += step.m * step.k * step.n;
    bp.steps_.push_back(std::move(bs));
  }
  // Sequential buffers live above the batched region in one allocation.
  const std::size_t batched_hw = batched_arena.high_water();
  for (BatchedStep& bs : bp.steps_)
    if (bs.sequential) bs.out_offset += batched_hw;
  bp.arena_elems_ = batched_hw + seq_arena.high_water();
  bp.has_seq_ = false;
  for (const BatchedStep& bs : bp.steps_) bp.has_seq_ = bp.has_seq_ || bs.sequential;
  // Boundary slots: varying non-sequential slots read by the sequential
  // pass. Their per-term variant keys form the signature that deduplicates
  // whole per-term passes (terms with equal signatures are bit-identical).
  for (const BatchedStep& bs : bp.steps_) {
    if (!bs.sequential) continue;
    for (const std::size_t slot : {bs.lhs, bs.rhs}) {
      const bool seq_slot = slot >= num_in && slot_seq[slot];
      if (!seq_slot && slot_varying[slot]) bp.boundary_.push_back(slot);
    }
  }
  std::sort(bp.boundary_.begin(), bp.boundary_.end());
  bp.boundary_.erase(std::unique(bp.boundary_.begin(), bp.boundary_.end()),
                     bp.boundary_.end());
  if (!output_identity_) {
    std::size_t out_total = 1;
    for (std::size_t d : output_shape_) out_total *= d;
    if (tsr::permute_gather_applies(out_total))
      bp.output_gather_ = tsr::permute_gather(output_shape_, output_src_stride_);
  }
  bp.executions_ = std::make_shared<std::atomic<std::size_t>>(0);
  if (stats) ++stats->plans_compiled;
  return bp;
}

tsr::Tensor BatchedPlan::execute(std::span<const tsr::Tensor* const> shared,
                                 std::span<const tsr::Tensor* const> varying, std::size_t k,
                                 PlanWorkspace& ws, ContractStats* stats) const {
  const std::size_t num_in = input_elems_.size();
  const std::size_t V = varying_slots_.size();
  la::detail::require(k >= 1 && k <= capacity_, "BatchedPlan::execute: batch size out of range");
  la::detail::require(shared.size() == num_in, "BatchedPlan::execute: input count mismatch");
  la::detail::require(varying.size() == k * V,
                      "BatchedPlan::execute: varying input count mismatch");
  for (std::size_t i = 0; i < num_in; ++i)
    if (varying_index_of_input_[i] < 0)
      la::detail::require(shared[i]->size() == input_elems_[i],
                          "BatchedPlan::execute: shared input size mismatch");
  for (std::size_t t = 0; t < k; ++t)
    for (std::size_t v = 0; v < V; ++v)
      la::detail::require(varying[t * V + v]->size() == input_elems_[varying_slots_[v]],
                          "BatchedPlan::execute: varying input size mismatch");

  const auto started = Clock::now();
  Clock::time_point deadline{};
  const bool has_deadline = timeout_seconds_ > 0.0;
  if (has_deadline)
    // A batched traversal stands in for k replays, so it gets k replay
    // budgets -- a timeout every term individually meets cannot start
    // failing just because terms were batched.
    deadline = started + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 timeout_seconds_ * static_cast<double>(k)));

  if (ws.control) ws.control->check_memory(arena_elems_, "batched contraction arena");
  ws.batch_arena.ensure(arena_elems_);
  ws.scratch_a.resize(scratch_a_elems_);
  ws.scratch_b.resize(scratch_b_elems_);
  ws.idx.resize(max_rank_);
  // Executor seam: resolve the kernel table and the per-step shape-
  // specialized kernels once per traversal (not at compile_batched time --
  // PlanCache entries outlive NOISIM_KERNELS / set_kernel_tier changes).
  const tsr::KernelTable& kt = ws.kernels ? *ws.kernels : tsr::active_kernels();
  ws.step_kernels.resize(steps_.size());
  for (std::size_t s = 0; s < steps_.size(); ++s)
    ws.step_kernels[s] = kt.select(steps_[s].m, steps_[s].k, steps_[s].n);
  ws.vids.resize(steps_.size() * k);
  ws.key_a.resize(k);
  ws.key_b.resize(k);
  ws.ukey_a.resize(k);
  ws.ukey_b.resize(k);
  ws.urep.resize(k);

  // Variant keys of the varying inputs: in_vids[v*k + t] is the first term
  // whose substituted tensor at varying slot v is the same object as term
  // t's. Identical pointers => identical bits downstream, which is what the
  // per-step compaction scan propagates.
  ws.in_vids.resize(V * k);
  for (std::size_t v = 0; v < V; ++v) {
    DedupTable table(ws.htab, k);
    for (std::size_t t = 0; t < k; ++t) {
      const tsr::Tensor* ptr = varying[t * V + v];
      const std::uint32_t first = table.find_or_insert(
          reinterpret_cast<std::uintptr_t>(ptr), static_cast<std::uint32_t>(t),
          [&](std::uint32_t cand) { return varying[cand * V + v] == ptr; });
      ws.in_vids[v * k + t] = first == t ? static_cast<std::uint32_t>(t)
                                         : ws.in_vids[v * k + first];
    }
  }

  // Variant key of a slot for term t (uniform slots are key 0; varying
  // intermediates the unique-row index, varying inputs the first term with
  // the same pointer) and the buffer of a slot's row for term t. A varying
  // step stores ONE row per distinct variant, so terms sharing operands
  // share storage instead of duplicating it.
  auto slot_key = [&](std::size_t slot, std::size_t t) -> std::uint32_t {
    if (slot < num_in) {
      const std::ptrdiff_t vi = varying_index_of_input_[slot];
      return vi < 0 ? 0u : ws.in_vids[static_cast<std::size_t>(vi) * k + t];
    }
    const std::size_t ps = slot - num_in;
    return steps_[ps].varying_out ? ws.vids[ps * k + t] : 0u;
  };
  auto slot_row_ptr = [&](std::size_t slot, std::size_t t) -> const cplx* {
    if (slot < num_in) {
      const std::ptrdiff_t vi = varying_index_of_input_[slot];
      return vi < 0 ? shared[slot]->data()
                    : varying[t * V + static_cast<std::size_t>(vi)]->data();
    }
    const BatchedStep& ps = steps_[slot - num_in];
    if (ps.sequential) return ws.batch_arena.data() + ps.out_offset;  // current term's row
    return ws.batch_arena.data() + ps.out_offset +
           (ps.varying_out ? ws.vids[(slot - num_in) * k + t] * ps.out_elems : 0);
  };

  std::size_t kernels = 0, flops = 0, bytes = 0, peak = 0;
  auto kernel_bytes = [](const BatchedStep& st) {
    return sizeof(cplx) * (st.a_elems + st.b_elems + 2 * st.out_elems);
  };

  // PASS 1: batched steps (uniform and shared-cone), one traversal for the
  // whole batch. Sequential (root-region) steps are skipped here and
  // replayed per term in pass 2 -- they never feed a batched step.
  for (std::size_t s = 0; s < steps_.size(); ++s) {
    fault::poke("exec-step-mo");
    fault::poke("exec-step-to");
    if (ws.control) ws.control->poll();
    if (has_deadline && Clock::now() > deadline)
      throw TimeoutError("batched tensor network contraction exceeded deadline");
    const BatchedStep& st = steps_[s];
    if (st.sequential) continue;
    cplx* out0 = ws.batch_arena.data() + st.out_offset;
    std::uint32_t* vid = ws.vids.data() + s * k;

    // Variant compaction: terms whose operand variant pairs match share one
    // output row (bit-identical by construction), so the step computes and
    // stores only the distinct rows. rows == k only where every term truly
    // differs (after the per-site cones merge near the root).
    std::size_t rows = 1;
    bool rows_linear = st.varying_out;  // row r reads operand slice r
    if (st.varying_out) {
      for (std::size_t t = 0; t < k; ++t) {
        ws.key_a[t] = slot_key(st.lhs, t);
        ws.key_b[t] = slot_key(st.rhs, t);
      }
      rows = 0;
      DedupTable table(ws.htab, k);
      for (std::size_t t = 0; t < k; ++t) {
        const std::uint64_t key =
            static_cast<std::uint64_t>(ws.key_a[t]) |
            (static_cast<std::uint64_t>(ws.key_b[t]) << 32);
        const std::uint32_t row = table.find_or_insert(
            key, static_cast<std::uint32_t>(rows), [&](std::uint32_t cand) {
              return ws.ukey_a[cand] == ws.key_a[t] && ws.ukey_b[cand] == ws.key_b[t];
            });
        if (row == rows) {
          la::detail::require(rows < st.row_bound,
                              "BatchedPlan::execute: more distinct substituted tensors than "
                              "the declared variant counts allow");
          ws.ukey_a[rows] = ws.key_a[t];
          ws.ukey_b[rows] = ws.key_b[t];
          ws.urep[rows] = static_cast<std::uint32_t>(t);
          if ((st.varying_a && ws.key_a[t] != t) || (st.varying_b && ws.key_b[t] != t))
            rows_linear = false;
          ++rows;
        }
        vid[t] = row;
      }
      if (rows != k) rows_linear = false;
    }

    std::fill(out0, out0 + rows * st.out_elems, cplx{0.0, 0.0});
    peak = std::max(peak, rows * st.out_elems);

    // Fast path: rows map 1:1 onto operand slices laid out contiguously in
    // the arena (uniform operands broadcast with stride 0) -- one
    // strided-batched call for the whole step.
    const bool a_strided = !st.varying_a || st.lhs >= num_in;
    const bool b_strided = !st.varying_b || st.rhs >= num_in;
    if (rows_linear && st.identity_a && st.identity_b && a_strided && b_strided) {
      const std::size_t a_stride = st.varying_a ? steps_[st.lhs - num_in].out_elems : 0;
      const std::size_t b_stride = st.varying_b ? steps_[st.rhs - num_in].out_elems : 0;
      kt.batched(slot_row_ptr(st.lhs, 0), slot_row_ptr(st.rhs, 0), out0, st.m, st.k, st.n,
                 rows, a_stride, b_stride, st.out_elems);
      kernels += rows;
      flops += rows * st.m * st.k * st.n;
      bytes += rows * kernel_bytes(st);
      continue;
    }

    // General path: one kernel call per distinct row, operands resolved
    // through the row's representative term, gather-table permutation into
    // slice-sized scratch (re-gathered only when the operand's variant
    // changes), and the kernel selected once per traversal.
    std::ptrdiff_t last_a = -1, last_b = -1;
    for (std::size_t u = 0; u < rows; ++u) {
      const std::size_t t = st.varying_out ? ws.urep[u] : 0;
      const cplx* pa = slot_row_ptr(st.lhs, t);
      if (!st.identity_a) {
        const std::ptrdiff_t cur = st.varying_a ? static_cast<std::ptrdiff_t>(ws.ukey_a[u]) : 0;
        if (cur != last_a) {
          if (!st.a_gather.empty())
            tsr::gather_walk(pa, st.a_gather, ws.scratch_a.data());
          else
            tsr::permute_walk(pa, st.a_perm_shape, st.a_src_stride, ws.scratch_a.data(),
                              st.a_elems, ws.idx.data());
          bytes += sizeof(cplx) * 2 * st.a_elems;
          last_a = cur;
        }
        pa = ws.scratch_a.data();
      }
      const cplx* pb = slot_row_ptr(st.rhs, t);
      if (!st.identity_b) {
        const std::ptrdiff_t cur = st.varying_b ? static_cast<std::ptrdiff_t>(ws.ukey_b[u]) : 0;
        if (cur != last_b) {
          if (!st.b_gather.empty())
            tsr::gather_walk(pb, st.b_gather, ws.scratch_b.data());
          else
            tsr::permute_walk(pb, st.b_perm_shape, st.b_src_stride, ws.scratch_b.data(),
                              st.b_elems, ws.idx.data());
          bytes += sizeof(cplx) * 2 * st.b_elems;
          last_b = cur;
        }
        pb = ws.scratch_b.data();
      }
      ws.step_kernels[s](pa, pb, out0 + u * st.out_elems, st.m, st.k, st.n);
      ++kernels;
      flops += st.m * st.k * st.n;
      bytes += kernel_bytes(st);
    }
  }

  // Result tensor [k, <output shape>...] with every term's axes in
  // ascending open-edge order.
  std::vector<std::size_t> result_shape;
  result_shape.reserve(1 + output_shape_.size());
  result_shape.push_back(k);
  result_shape.insert(result_shape.end(), output_shape_.begin(), output_shape_.end());
  tsr::Tensor result(result_shape);
  const std::size_t out_elems = result.size() / k;
  auto materialize = [&](const cplx* src, cplx* dst) {
    if (output_identity_)
      std::copy(src, src + out_elems, dst);
    else if (!output_gather_.empty())
      tsr::gather_walk(src, output_gather_, dst);
    else
      tsr::permute_walk(src, output_shape_, output_src_stride_, dst, out_elems, ws.idx.data());
  };

  // PASS 2: the sequential (root) region, term by term through the reused
  // per-term arena segment -- the same locality as per-term replay, but
  // reading its cone inputs from the rows pass 1 already computed. Terms
  // whose boundary signature (variant keys of every batched slot the
  // region reads) matches an earlier term's are bit-identical end to end:
  // their pass is skipped and the finished output slice copied.
  if (has_seq_) {
    const std::size_t B = boundary_.size();
    ws.sig.resize(k * B);
    ws.term_rep.resize(k);
    for (std::size_t t = 0; t < k; ++t)
      for (std::size_t b = 0; b < B; ++b) ws.sig[t * B + b] = slot_key(boundary_[b], t);
    {
      DedupTable table(ws.htab, k);
      for (std::size_t t = 0; t < k; ++t) {
        std::uint64_t key = 0xcbf29ce484222325ULL;  // FNV-1a fold of the row
        for (std::size_t b = 0; b < B; ++b)
          key = (key ^ ws.sig[t * B + b]) * 0x100000001b3ULL;
        ws.term_rep[t] = table.find_or_insert(
            key, static_cast<std::uint32_t>(t), [&](std::uint32_t cand) {
              for (std::size_t b = 0; b < B; ++b)
                if (ws.sig[cand * B + b] != ws.sig[t * B + b]) return false;
              return true;
            });
      }
    }

    // Per-step variant representatives: vids[s*k + t] is the first term
    // whose operand variants at step s match term t's. A sequential buffer
    // holding variant r can be REUSED by every later term mapping to r
    // (enumeration orders that group related terms make these runs long) --
    // the step's kernel is skipped and the buffer read as-is, which is the
    // same bits by induction.
    for (std::size_t s = 0; s < steps_.size(); ++s) {
      const BatchedStep& st = steps_[s];
      if (!st.sequential) continue;
      std::uint32_t* vid = ws.vids.data() + s * k;
      for (std::size_t t = 0; t < k; ++t) {
        ws.key_a[t] = slot_key(st.lhs, t);
        ws.key_b[t] = slot_key(st.rhs, t);
      }
      DedupTable table(ws.htab, k);
      for (std::size_t t = 0; t < k; ++t) {
        const std::uint64_t key =
            static_cast<std::uint64_t>(ws.key_a[t]) |
            (static_cast<std::uint64_t>(ws.key_b[t]) << 32);
        vid[t] = table.find_or_insert(
            key, static_cast<std::uint32_t>(t), [&](std::uint32_t cand) {
              return ws.key_a[cand] == ws.key_a[t] && ws.key_b[cand] == ws.key_b[t];
            });
      }
    }
    ws.seq_last.assign(steps_.size(), static_cast<std::uint32_t>(-1));

    for (std::size_t t = 0; t < k; ++t) {
      fault::poke("exec-step-mo");
      fault::poke("exec-step-to");
      if (ws.control) ws.control->poll();
      if (has_deadline && Clock::now() > deadline)
        throw TimeoutError("batched tensor network contraction exceeded deadline");
      if (ws.term_rep[t] != t) {
        std::copy(result.data() + ws.term_rep[t] * out_elems,
                  result.data() + (ws.term_rep[t] + 1) * out_elems,
                  result.data() + t * out_elems);
        bytes += sizeof(cplx) * 2 * out_elems;
        continue;
      }
      for (std::size_t s = 0; s < steps_.size(); ++s) {
        const BatchedStep& st = steps_[s];
        if (!st.sequential) continue;
        const std::uint32_t rep = ws.vids[s * k + t];
        if (ws.seq_last[s] == rep) continue;  // buffer already holds this variant
        cplx* out0 = ws.batch_arena.data() + st.out_offset;
        std::fill(out0, out0 + st.out_elems, cplx{0.0, 0.0});
        peak = std::max(peak, st.out_elems);
        // Operands change every term here, so permutations are fused into
        // the kernel through the gather tables (each operand read once in
        // place) rather than copied to scratch; only permutations too big
        // for a table still go through the walk.
        const cplx* pa = slot_row_ptr(st.lhs, t);
        const std::uint32_t* a_idx = nullptr;
        if (!st.identity_a) {
          if (!st.a_gather.empty()) {
            a_idx = st.a_gather.data();
          } else {
            tsr::permute_walk(pa, st.a_perm_shape, st.a_src_stride, ws.scratch_a.data(),
                              st.a_elems, ws.idx.data());
            bytes += sizeof(cplx) * 2 * st.a_elems;
            pa = ws.scratch_a.data();
          }
        }
        const cplx* pb = slot_row_ptr(st.rhs, t);
        const std::uint32_t* b_idx = nullptr;
        if (!st.identity_b) {
          if (!st.b_gather.empty()) {
            b_idx = st.b_gather.data();
          } else {
            tsr::permute_walk(pb, st.b_perm_shape, st.b_src_stride, ws.scratch_b.data(),
                              st.b_elems, ws.idx.data());
            bytes += sizeof(cplx) * 2 * st.b_elems;
            pb = ws.scratch_b.data();
          }
        }
        if (a_idx || b_idx)
          kt.gathered(pa, a_idx, pb, b_idx, out0, st.m, st.k, st.n);
        else
          ws.step_kernels[s](pa, pb, out0, st.m, st.k, st.n);
        ws.seq_last[s] = rep;
        ++kernels;
        flops += st.m * st.k * st.n;
        bytes += kernel_bytes(st);
      }
      // The sequential buffers hold term t's values right now; materialize
      // before the next term overwrites them. (When any step is
      // sequential, the final step is: cone masks only grow.)
      materialize(slot_row_ptr(num_in + steps_.size() - 1, t), result.data() + t * out_elems);
    }
  } else {
    const std::size_t src_slot = steps_.empty() ? 0 : num_in + steps_.size() - 1;
    for (std::size_t t = 0; t < k; ++t)
      materialize(slot_row_ptr(src_slot, t), result.data() + t * out_elems);
  }
  bytes += sizeof(cplx) * 2 * out_elems * k;

  const std::size_t prior = executions_->fetch_add(k, std::memory_order_relaxed);
  if (stats) {
    stats->num_pairwise += kernels;
    tally_kernels(*stats, kt.tier, kernels);
    stats->peak_elems = std::max(stats->peak_elems, peak);
    stats->plan_executions += k;
    stats->plan_reuse_hits += prior > 0 ? k : k - 1;
    stats->flops += flops;
    stats->bytes_moved += bytes;
    stats->elapsed_seconds += std::chrono::duration<double>(Clock::now() - started).count();
  }
  return result;
}

std::string ContractionPlan::fingerprint() const {
  std::ostringstream os;
  os << "inputs:" << input_elems_.size() << ";arena:" << arena_elems_ << ";peak:" << peak_elems_;
  for (const PlanStep& s : steps_) {
    os << "|" << s.lhs << "x" << s.rhs << ":" << s.m << "," << s.k << "," << s.n << "@"
       << s.out_offset;
    os << ";pa=";
    if (s.identity_a)
      os << "id";
    else
      for (std::size_t i = 0; i < s.a_perm_shape.size(); ++i)
        os << s.a_perm_shape[i] << "/" << s.a_src_stride[i] << (i + 1 < s.a_perm_shape.size() ? "," : "");
    os << ";pb=";
    if (s.identity_b)
      os << "id";
    else
      for (std::size_t i = 0; i < s.b_perm_shape.size(); ++i)
        os << s.b_perm_shape[i] << "/" << s.b_src_stride[i] << (i + 1 < s.b_perm_shape.size() ? "," : "");
  }
  os << "|out:";
  if (output_identity_)
    os << "id";
  else
    for (std::size_t i = 0; i < output_shape_.size(); ++i)
      os << output_shape_[i] << "/" << output_src_stride_[i]
         << (i + 1 < output_shape_.size() ? "," : "");
  return os.str();
}

}  // namespace noisim::tn
