#include "tn/plan.hpp"

#include <algorithm>
#include <chrono>
#include <queue>
#include <sstream>
#include <unordered_map>

#include "tensor/contract.hpp"

namespace noisim::tn {

namespace {

using Clock = std::chrono::steady_clock;

/// Compile-time arena allocator: first-fit over a sorted free list with
/// coalescing, so each intermediate gets a fixed offset and the high-water
/// mark equals the peak live-intermediate footprint of the schedule.
class ArenaLayout {
 public:
  std::size_t alloc(std::size_t elems) {
    for (std::size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].elems >= elems) {
        const std::size_t offset = free_[i].offset;
        free_[i].offset += elems;
        free_[i].elems -= elems;
        if (free_[i].elems == 0) free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
        return offset;
      }
    }
    const std::size_t offset = end_;
    end_ += elems;
    return offset;
  }

  void release(std::size_t offset, std::size_t elems) {
    if (elems == 0) return;
    auto it = std::lower_bound(free_.begin(), free_.end(), offset,
                               [](const Region& r, std::size_t o) { return r.offset < o; });
    it = free_.insert(it, Region{offset, elems});
    // Coalesce with the following region, then the preceding one.
    const std::size_t i = static_cast<std::size_t>(it - free_.begin());
    if (i + 1 < free_.size() && free_[i].offset + free_[i].elems == free_[i + 1].offset) {
      free_[i].elems += free_[i + 1].elems;
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i + 1));
    }
    if (i > 0 && free_[i - 1].offset + free_[i - 1].elems == free_[i].offset) {
      free_[i - 1].elems += free_[i].elems;
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }

  std::size_t high_water() const { return end_; }

 private:
  struct Region {
    std::size_t offset, elems;
  };
  std::vector<Region> free_;  // sorted by offset
  std::size_t end_ = 0;
};

struct Candidate {
  double score;
  std::size_t result;
  std::size_t u, v;
  bool operator>(const Candidate& o) const {
    if (score != o.score) return score > o.score;
    return result > o.result;
  }
};

}  // namespace

/// Shape-and-edge-only replica of the contractor's working state: merges
/// emit PlanSteps instead of performing arithmetic. The pairwise order,
/// tie-breaking, and budget checks mirror the eager contractor exactly, so
/// a compiled plan replays to bit-identical results.
struct PlanCompiler {
  struct MetaNode {
    std::vector<EdgeId> edges;
    std::vector<std::size_t> dims;
    std::size_t elems = 1;
  };

  const ContractOptions& opts;
  std::vector<MetaNode> nodes;  // indexed by slot
  std::vector<bool> alive;
  std::unordered_map<EdgeId, std::vector<std::size_t>> edge_nodes;
  std::size_t num_inputs = 0;

  std::vector<PlanStep> steps;
  ArenaLayout arena;
  std::vector<std::size_t> slot_offset;  // arena offset (intermediates only)
  std::size_t peak = 0;
  std::size_t flops = 0;  // sum of m*k*n over all steps (schedule cost)
  std::size_t scratch_a = 0, scratch_b = 0;
  std::size_t max_rank = 0;

  Clock::time_point deadline{};
  bool has_deadline = false;

  // `deadline` is shared by every planning attempt of one compile() call
  // (all greedy cost weights plus the Auto fallback), so timeout_seconds
  // bounds total planning time, not each attempt.
  PlanCompiler(const Network& net, const ContractOptions& o, Clock::time_point shared_deadline,
               bool deadline_set)
      : opts(o), deadline(shared_deadline), has_deadline(deadline_set) {
    num_inputs = net.num_nodes();
    nodes.reserve(num_inputs);
    for (std::size_t i = 0; i < num_inputs; ++i) {
      MetaNode mn;
      mn.edges = net.node(i).edges;
      mn.dims.assign(net.node(i).tensor.shape().begin(), net.node(i).tensor.shape().end());
      mn.elems = net.node(i).tensor.size();
      for (EdgeId e : mn.edges) edge_nodes[e].push_back(i);
      nodes.push_back(std::move(mn));
      alive.push_back(true);
      slot_offset.push_back(0);
    }
  }

  void check_deadline() const {
    if (has_deadline && Clock::now() > deadline)
      throw TimeoutError("tensor network contraction exceeded deadline");
  }

  bool connected(std::size_t u, std::size_t v) const {
    for (EdgeId e : nodes[u].edges)
      if (std::find(nodes[v].edges.begin(), nodes[v].edges.end(), e) != nodes[v].edges.end())
        return true;
    return false;
  }

  /// Product of the dims shared between u and v (edge lists are tiny, so a
  /// linear scan beats hashing; this is the memoization-friendly scorer --
  /// only pairs adjacent to a merge are ever (re)scored).
  std::size_t shared_dims(std::size_t u, std::size_t v) const {
    std::size_t prod = 1;
    for (std::size_t ax = 0; ax < nodes[u].edges.size(); ++ax) {
      const EdgeId e = nodes[u].edges[ax];
      if (std::find(nodes[v].edges.begin(), nodes[v].edges.end(), e) != nodes[v].edges.end())
        prod *= nodes[u].dims[ax];
    }
    return prod;
  }

  std::size_t result_size(std::size_t u, std::size_t v) const {
    const std::size_t shared = shared_dims(u, v);
    return (nodes[u].elems / shared) * (nodes[v].elems / shared);
  }

  std::vector<std::size_t> neighbors(std::size_t i) const {
    std::vector<std::size_t> out;
    for (EdgeId e : nodes[i].edges) {
      const auto it = edge_nodes.find(e);
      if (it == edge_nodes.end()) continue;
      for (std::size_t n : it->second)
        if (n != i && alive[n]) out.push_back(n);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  std::vector<std::size_t> alive_nodes() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < alive.size(); ++i)
      if (alive[i]) out.push_back(i);
    return out;
  }

  /// Plan the contraction of slots u and v; returns the new slot index.
  std::size_t merge(std::size_t u, std::size_t v) {
    check_deadline();
    const MetaNode& nu = nodes[u];
    const MetaNode& nv = nodes[v];

    // Shared edges in u-axis order; v axes located per shared edge -- the
    // same pairing the eager contractor fed to tsr::contract.
    std::vector<std::size_t> axes_u, axes_v, free_a, free_b;
    for (std::size_t ax = 0; ax < nu.edges.size(); ++ax) {
      const auto it = std::find(nv.edges.begin(), nv.edges.end(), nu.edges[ax]);
      if (it != nv.edges.end()) {
        axes_u.push_back(ax);
        axes_v.push_back(static_cast<std::size_t>(it - nv.edges.begin()));
      } else {
        free_a.push_back(ax);
      }
    }
    for (std::size_t ax = 0; ax < nv.edges.size(); ++ax)
      if (std::find(axes_v.begin(), axes_v.end(), ax) == axes_v.end()) free_b.push_back(ax);

    PlanStep step;
    step.lhs = u;
    step.rhs = v;
    step.a_elems = nu.elems;
    step.b_elems = nv.elems;

    MetaNode merged;
    for (std::size_t ax : free_a) {
      step.m *= nu.dims[ax];
      merged.edges.push_back(nu.edges[ax]);
      merged.dims.push_back(nu.dims[ax]);
    }
    for (std::size_t ax : axes_u) step.k *= nu.dims[ax];
    for (std::size_t ax : free_b) {
      step.n *= nv.dims[ax];
      merged.edges.push_back(nv.edges[ax]);
      merged.dims.push_back(nv.dims[ax]);
    }
    merged.elems = step.m * step.n;
    step.out_elems = merged.elems;

    if (step.out_elems > opts.max_tensor_elems)
      throw MemoryOutError("tensor network contraction exceeded memory budget (intermediate of " +
                           std::to_string(step.out_elems) + " elements)");

    // Operand permutations: lhs to [free..., contracted...], rhs to
    // [contracted..., free...]. Identity permutations are recorded as
    // in-place reads (no scratch, no copy at execution).
    std::vector<std::size_t> perm_a = free_a;
    perm_a.insert(perm_a.end(), axes_u.begin(), axes_u.end());
    std::vector<std::size_t> perm_b = axes_v;
    perm_b.insert(perm_b.end(), free_b.begin(), free_b.end());

    step.identity_a = tsr::is_identity_permutation(perm_a);
    if (!step.identity_a) {
      const std::vector<std::size_t> strides = tsr::row_major_strides(nu.dims);
      for (std::size_t p : perm_a) {
        step.a_perm_shape.push_back(nu.dims[p]);
        step.a_src_stride.push_back(strides[p]);
      }
      scratch_a = std::max(scratch_a, nu.elems);
      max_rank = std::max(max_rank, perm_a.size());
    }
    step.identity_b = tsr::is_identity_permutation(perm_b);
    if (!step.identity_b) {
      const std::vector<std::size_t> strides = tsr::row_major_strides(nv.dims);
      for (std::size_t p : perm_b) {
        step.b_perm_shape.push_back(nv.dims[p]);
        step.b_src_stride.push_back(strides[p]);
      }
      scratch_b = std::max(scratch_b, nv.elems);
      max_rank = std::max(max_rank, perm_b.size());
    }

    // Arena: the output region is claimed while both operands are still
    // live (no overlap), then consumed operand regions are recycled.
    step.out_offset = arena.alloc(step.out_elems);
    if (opts.max_workspace_elems > 0 && arena.high_water() > opts.max_workspace_elems)
      throw MemoryOutError("contraction plan workspace exceeded budget (arena of " +
                           std::to_string(arena.high_water()) + " elements)");
    if (u >= num_inputs) arena.release(slot_offset[u], nodes[u].elems);
    if (v >= num_inputs) arena.release(slot_offset[v], nodes[v].elems);

    peak = std::max(peak, step.out_elems);
    flops += step.m * step.k * step.n;

    alive[u] = alive[v] = false;
    const std::size_t idx = nodes.size();
    for (EdgeId e : merged.edges) {
      auto& owners = edge_nodes[e];
      owners.erase(std::remove_if(owners.begin(), owners.end(),
                                  [&](std::size_t n) { return n == u || n == v; }),
                   owners.end());
      owners.push_back(idx);
    }
    for (std::size_t ax : axes_u) edge_nodes.erase(nu.edges[ax]);

    slot_offset.push_back(step.out_offset);
    nodes.push_back(std::move(merged));
    alive.push_back(true);
    steps.push_back(std::move(step));
    return idx;
  }

  /// Greedy ordering with score = result - alpha * (size_a + size_b).
  /// alpha = 1 is the classic opt_einsum heuristic; larger alphas favor
  /// consuming big operands early, which on grid-like layers often yields
  /// far cheaper schedules. compile() tries a deterministic alpha ladder
  /// and keeps the cheapest plan -- planning runs once per topology, so the
  /// extra search amortizes over every replay.
  void greedy(double alpha) {
    std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>> heap;

    auto push_pair = [&](std::size_t u, std::size_t v) {
      if (u > v) std::swap(u, v);
      const std::size_t rs = result_size(u, v);
      const double score = static_cast<double>(rs) -
                           alpha * (static_cast<double>(nodes[u].elems) +
                                    static_cast<double>(nodes[v].elems));
      heap.push(Candidate{score, rs, u, v});
    };

    for (std::size_t i = 0; i < num_inputs; ++i)
      if (alive[i])
        for (std::size_t nb : neighbors(i))
          if (nb > i) push_pair(i, nb);

    bool saw_over_budget = false;
    while (!heap.empty()) {
      const Candidate c = heap.top();
      heap.pop();
      if (!alive[c.u] || !alive[c.v]) continue;
      if (c.result > opts.max_tensor_elems) {
        saw_over_budget = true;
        continue;
      }
      const std::size_t merged = merge(c.u, c.v);
      for (std::size_t nb : neighbors(merged)) push_pair(merged, nb);
    }

    // Remaining alive nodes are mutually disconnected. If that is only
    // because every connected pair was over budget, report MO rather than
    // planning a wrong outer product.
    std::vector<std::size_t> rest = alive_nodes();
    for (std::size_t i = 0; i < rest.size(); ++i)
      for (std::size_t j = i + 1; j < rest.size(); ++j)
        if (connected(rest[i], rest[j])) {
          if (saw_over_budget)
            throw MemoryOutError("greedy contraction: all remaining pairs exceed memory budget");
          la::detail::fail("greedy contraction: internal error, connected pair left behind");
        }

    // Fold disconnected components smallest-first (outer products).
    while (true) {
      rest = alive_nodes();
      if (rest.size() <= 1) break;
      std::sort(rest.begin(), rest.end(),
                [&](std::size_t a, std::size_t b) { return nodes[a].elems < nodes[b].elems; });
      merge(rest[0], rest[1]);
    }
  }

  void sequential(const std::vector<std::size_t>& sequence) {
    std::vector<std::size_t> order = sequence;
    if (order.empty()) {
      order.resize(num_inputs);
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    } else {
      la::detail::require(order.size() == num_inputs,
                          "sequential contraction: sequence must cover all nodes");
      for (std::size_t i : order)
        la::detail::require(i < num_inputs, "sequential contraction: sequence index out of range");
    }
    std::size_t acc = order[0];
    for (std::size_t i = 1; i < order.size(); ++i) acc = merge(acc, order[i]);
  }

  ContractionPlan finalize(const Network& net) {
    const std::vector<std::size_t> rest = alive_nodes();
    la::detail::require(rest.size() == 1, "contract plan: network did not reduce to one node");
    const MetaNode& result = nodes[rest[0]];

    ContractionPlan plan;
    plan.steps_ = std::move(steps);
    plan.input_elems_.reserve(num_inputs);
    for (std::size_t i = 0; i < num_inputs; ++i) plan.input_elems_.push_back(nodes[i].elems);
    plan.arena_elems_ = arena.high_water();
    plan.scratch_a_elems_ = scratch_a;
    plan.scratch_b_elems_ = scratch_b;
    plan.peak_elems_ = peak;
    plan.total_flops_ = flops;
    plan.timeout_seconds_ = opts.timeout_seconds;
    plan.executions_ = std::make_shared<std::atomic<std::size_t>>(0);

    // Deterministic output: axes in ascending open-edge order.
    const std::vector<EdgeId> open = net.open_edges();
    la::detail::require(open.size() == result.edges.size(),
                        "contract plan: open edge bookkeeping mismatch");
    std::vector<std::size_t> perm(open.size());
    for (std::size_t i = 0; i < open.size(); ++i) {
      const auto it = std::find(result.edges.begin(), result.edges.end(), open[i]);
      la::detail::require(it != result.edges.end(), "contract plan: open edge missing");
      perm[i] = static_cast<std::size_t>(it - result.edges.begin());
    }
    plan.output_identity_ = tsr::is_identity_permutation(perm);
    const std::vector<std::size_t> strides = tsr::row_major_strides(result.dims);
    for (std::size_t p : perm) {
      plan.output_shape_.push_back(result.dims[p]);
      if (!plan.output_identity_) plan.output_src_stride_.push_back(strides[p]);
    }
    if (!plan.output_identity_) max_rank = std::max(max_rank, perm.size());
    plan.max_rank_ = max_rank;
    return plan;
  }
};

ContractionPlan ContractionPlan::compile(const Network& net, const ContractOptions& opts,
                                         ContractStats* stats) {
  la::detail::require(net.num_nodes() > 0, "ContractionPlan: empty network has no nodes");

  // One deadline across every planning attempt below, so timeout_seconds
  // bounds the whole compile (each replay later gets its own budget).
  Clock::time_point deadline{};
  const bool has_deadline = opts.timeout_seconds > 0.0;
  if (has_deadline)
    deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(opts.timeout_seconds));

  auto build_sequential = [&] {
    PlanCompiler compiler(net, opts, deadline, has_deadline);
    compiler.sequential(opts.custom_sequence);
    ContractionPlan plan = compiler.finalize(net);
    if (stats) ++stats->plans_compiled;
    return plan;
  };

  // Greedy = a deterministic ladder of score weights; keep the cheapest
  // schedule by (total flops, peak intermediate). Planning happens once per
  // topology while the plan replays per term, so a several-fold deeper
  // search at plan time is almost free -- and routinely finds schedules
  // several times cheaper than the single alpha = 1 heuristic.
  auto build_greedy = [&]() -> ContractionPlan {
    ContractionPlan best;
    bool have_best = false;
    bool saw_memory_out = false;
    for (const double alpha : opts.greedy_cost_weights) {
      try {
        PlanCompiler compiler(net, opts, deadline, has_deadline);
        compiler.greedy(alpha);
        ContractionPlan plan = compiler.finalize(net);
        if (!have_best || plan.total_flops_ < best.total_flops_ ||
            (plan.total_flops_ == best.total_flops_ && plan.peak_elems_ < best.peak_elems_)) {
          best = std::move(plan);
          have_best = true;
        }
      } catch (const MemoryOutError&) {
        saw_memory_out = true;  // other weights may still fit the budget
      }
    }
    if (!have_best) {
      la::detail::require(saw_memory_out, "ContractionPlan: no greedy cost weights configured");
      throw MemoryOutError("tensor network contraction exceeded memory budget for every "
                           "greedy cost weight");
    }
    if (stats) ++stats->plans_compiled;
    return best;
  };

  switch (opts.strategy) {
    case OrderStrategy::Greedy:
      return build_greedy();
    case OrderStrategy::Sequential:
      return build_sequential();
    case OrderStrategy::Auto:
      try {
        return build_greedy();
      } catch (const MemoryOutError&) {
        // Greedy painted itself into a corner; a time-ordered sweep can
        // succeed on few-qubit deep circuits where greedy fails.
        return build_sequential();
      }
  }
  la::detail::fail("ContractionPlan: unknown strategy");
}

const cplx* ContractionPlan::slot_data(std::size_t slot,
                                       std::span<const tsr::Tensor* const> inputs,
                                       const PlanWorkspace& ws) const {
  if (slot < inputs.size()) return inputs[slot]->data();
  return ws.arena.data() + steps_[slot - inputs.size()].out_offset;
}

tsr::Tensor ContractionPlan::execute(std::span<const tsr::Tensor* const> inputs,
                                     PlanWorkspace& ws, ContractStats* stats) const {
  la::detail::require(inputs.size() == input_elems_.size(),
                      "ContractionPlan::execute: input count mismatch");
  for (std::size_t i = 0; i < inputs.size(); ++i)
    la::detail::require(inputs[i]->size() == input_elems_[i],
                        "ContractionPlan::execute: input tensor size mismatch");

  const auto started = Clock::now();
  Clock::time_point deadline{};
  const bool has_deadline = timeout_seconds_ > 0.0;
  if (has_deadline)
    deadline = started + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(timeout_seconds_));

  ws.arena.resize(arena_elems_);
  ws.scratch_a.resize(scratch_a_elems_);
  ws.scratch_b.resize(scratch_b_elems_);
  ws.idx.resize(max_rank_);

  for (const PlanStep& step : steps_) {
    if (has_deadline && Clock::now() > deadline)
      throw TimeoutError("tensor network contraction exceeded deadline");
    const cplx* pa = slot_data(step.lhs, inputs, ws);
    if (!step.identity_a) {
      tsr::permute_walk(pa, step.a_perm_shape, step.a_src_stride, ws.scratch_a.data(),
                        step.a_elems, ws.idx.data());
      pa = ws.scratch_a.data();
    }
    const cplx* pb = slot_data(step.rhs, inputs, ws);
    if (!step.identity_b) {
      tsr::permute_walk(pb, step.b_perm_shape, step.b_src_stride, ws.scratch_b.data(),
                        step.b_elems, ws.idx.data());
      pb = ws.scratch_b.data();
    }
    cplx* out = ws.arena.data() + step.out_offset;
    std::fill(out, out + step.out_elems, cplx{0.0, 0.0});
    tsr::detail::matmul_accumulate(pa, pb, out, step.m, step.k, step.n);
  }

  // Materialize the result with axes in ascending open-edge order.
  const cplx* src =
      steps_.empty() ? inputs[0]->data() : ws.arena.data() + steps_.back().out_offset;
  tsr::Tensor result(output_shape_);
  if (output_identity_)
    std::copy(src, src + result.size(), result.data());
  else
    tsr::permute_walk(src, output_shape_, output_src_stride_, result.data(), result.size(),
                      ws.idx.data());

  const std::size_t prior = executions_->fetch_add(1, std::memory_order_relaxed);
  if (stats) {
    stats->num_pairwise += steps_.size();
    stats->peak_elems = std::max(stats->peak_elems, peak_elems_);
    ++stats->plan_executions;
    if (prior > 0) ++stats->plan_reuse_hits;
    stats->elapsed_seconds += std::chrono::duration<double>(Clock::now() - started).count();
  }
  return result;
}

tsr::Tensor ContractionPlan::execute(const Network& net, PlanWorkspace& ws,
                                     ContractStats* stats) const {
  ws.input_ptrs.clear();
  ws.input_ptrs.reserve(net.num_nodes());
  for (std::size_t i = 0; i < net.num_nodes(); ++i) ws.input_ptrs.push_back(&net.node(i).tensor);
  return execute(std::span<const tsr::Tensor* const>(ws.input_ptrs), ws, stats);
}

std::string ContractionPlan::fingerprint() const {
  std::ostringstream os;
  os << "inputs:" << input_elems_.size() << ";arena:" << arena_elems_ << ";peak:" << peak_elems_;
  for (const PlanStep& s : steps_) {
    os << "|" << s.lhs << "x" << s.rhs << ":" << s.m << "," << s.k << "," << s.n << "@"
       << s.out_offset;
    os << ";pa=";
    if (s.identity_a)
      os << "id";
    else
      for (std::size_t i = 0; i < s.a_perm_shape.size(); ++i)
        os << s.a_perm_shape[i] << "/" << s.a_src_stride[i] << (i + 1 < s.a_perm_shape.size() ? "," : "");
    os << ";pb=";
    if (s.identity_b)
      os << "id";
    else
      for (std::size_t i = 0; i < s.b_perm_shape.size(); ++i)
        os << s.b_perm_shape[i] << "/" << s.b_src_stride[i] << (i + 1 < s.b_perm_shape.size() ? "," : "");
  }
  os << "|out:";
  if (output_identity_)
    os << "id";
  else
    for (std::size_t i = 0; i < output_shape_.size(); ++i)
      os << output_shape_[i] << "/" << output_src_stride_[i]
         << (i + 1 < output_shape_.size() ? "," : "");
  return os.str();
}

}  // namespace noisim::tn
