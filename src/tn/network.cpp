#include "tn/network.hpp"

#include <algorithm>

namespace noisim::tn {

std::size_t Network::add_node(tsr::Tensor tensor, std::vector<EdgeId> edges, std::string label) {
  la::detail::require(tensor.rank() == edges.size(), "Network::add_node: edge/axis count mismatch");
  for (std::size_t i = 0; i < edges.size(); ++i)
    for (std::size_t j = i + 1; j < edges.size(); ++j)
      la::detail::require(edges[i] != edges[j], "Network::add_node: self-loop edge");

  const std::size_t idx = nodes_.size();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    la::detail::require(edges[i] < next_edge_, "Network::add_node: unknown edge id");
    auto& eps = endpoints_[edges[i]];
    la::detail::require(eps.size() < 2, "Network::add_node: edge already has two endpoints");
    if (!eps.empty()) {
      const Endpoint other = eps.front();
      la::detail::require(nodes_[other.node].tensor.dim(other.axis) == tensor.dim(i),
                          "Network::add_node: edge dimension mismatch");
    }
    eps.push_back(Endpoint{idx, i});
  }
  nodes_.push_back(Node{std::move(tensor), std::move(edges), std::move(label)});
  return idx;
}

const std::vector<Endpoint>& Network::endpoints(EdgeId e) const {
  static const std::vector<Endpoint> kEmpty;
  const auto it = endpoints_.find(e);
  return it == endpoints_.end() ? kEmpty : it->second;
}

std::vector<EdgeId> Network::open_edges() const {
  std::vector<EdgeId> open;
  // lint: unordered-iter-ok(order-insensitive collect; sorted below)
  for (const auto& [edge, eps] : endpoints_)
    if (eps.size() == 1) open.push_back(edge);
  std::sort(open.begin(), open.end());
  return open;
}

std::size_t Network::total_elements() const {
  std::size_t total = 0;
  for (const Node& n : nodes_) total += n.tensor.size();
  return total;
}

std::uint64_t Network::topology_hash() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffULL;
      h *= 1099511628211ULL;  // FNV-1a prime
    }
  };
  mix(nodes_.size());
  for (const Node& n : nodes_) {
    mix(n.edges.size());
    for (std::size_t ax = 0; ax < n.edges.size(); ++ax) {
      mix(n.edges[ax]);
      mix(n.tensor.dim(ax));
    }
  }
  return h;
}

}  // namespace noisim::tn
