#pragma once
// Compiled contraction plans: planning (pairwise order, axis pairing,
// permutations, workspace layout) is split from execution (the arithmetic).
//
// A plan is a pure function of the network's *topology* -- node shapes and
// edge structure; tensor contents never enter planning. Compiling once and
// replaying against fresh tensor contents is what makes Algorithm 1 cheap:
// every enumerated term's single-layer network shares one topology and
// differs only in the tensors at the chosen noise sites, so the l-level
// sweep costs O(plan + terms x replay) instead of O(terms x (plan + contract)).
//
// Execution is allocation-free in steady state: all intermediates live in a
// liveness-packed arena inside a caller-owned PlanWorkspace (one per
// thread), operand permutations are precomputed stride walks into reused
// scratch buffers (skipped entirely when the permutation is the identity),
// and the pairwise kernel is the cache-blocked matmul of tensor/contract.hpp.
// Replaying a plan is bit-identical to contracting the network from scratch
// with the same options.

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tensor/aligned.hpp"
#include "tensor/contract.hpp"
#include "tensor/kernels.hpp"
#include "tn/contractor.hpp"

namespace noisim::tn {

/// One pairwise contraction of a compiled plan. Slots 0..num_inputs-1 are
/// the network's nodes (in node-index order); slot num_inputs + s is the
/// output of step s.
struct PlanStep {
  std::size_t lhs = 0, rhs = 0;  // operand slots
  // Precomputed permutation walks bringing lhs to [free..., contracted...]
  // and rhs to [contracted..., free...]; empty when the permutation is the
  // identity (the operand is used in place, no copy).
  bool identity_a = true, identity_b = true;
  std::vector<std::size_t> a_perm_shape, a_src_stride;
  std::vector<std::size_t> b_perm_shape, b_src_stride;
  std::size_t a_elems = 1, b_elems = 1;  // operand sizes (scratch sizing)
  std::size_t m = 1, k = 1, n = 1;       // matrix-shaped contraction dims
  std::size_t out_offset = 0;            // element offset into the arena
  std::size_t out_elems = 1;
};

/// Grow-only buffer of *uninitialized* complex elements. The batched arena
/// is written row by row (each output row is zero-filled immediately before
/// its accumulation), so value-initializing the whole allocation -- sized
/// for the worst-case batch, usually far beyond the rows a variant-compacted
/// replay touches -- would fault and zero pages that are never read.
/// Storage is tsr::kKernelAlignment (64-byte) aligned like every other
/// executor buffer, so aligned vector loads are safe in any arena segment.
class ArenaBuffer {
 public:
  void ensure(std::size_t elems) {
    if (elems <= cap_) return;
    fault::poke("arena-alloc");
    raw_.reset(static_cast<double*>(
        ::operator new(2 * elems * sizeof(double), std::align_val_t{tsr::kKernelAlignment})));
    cap_ = elems;
  }
  cplx* data() { return reinterpret_cast<cplx*>(raw_.get()); }
  const cplx* data() const { return reinterpret_cast<const cplx*>(raw_.get()); }

 private:
  struct AlignedDelete {
    void operator()(double* p) const noexcept {
      ::operator delete(p, std::align_val_t{tsr::kKernelAlignment});
    }
  };
  std::unique_ptr<double[], AlignedDelete> raw_;
  std::size_t cap_ = 0;
};

/// Per-thread scratch a plan executes in: the intermediate arena plus the
/// permutation scratch buffers. Buffers only grow, so replaying a plan
/// through the same workspace allocates nothing in steady state. All
/// kernel-visible buffers are 64-byte aligned (tsr::aligned_vector /
/// ArenaBuffer), so every tier's vector loads see aligned arena segments.
struct PlanWorkspace {
  /// Executor seam: when set, plans replay their kernels through THIS
  /// table instead of the runtime-dispatched tsr::active_kernels() -- the
  /// indirection a GPU/remote executor slots in behind (any table must
  /// honor the bit-identity contract of tensor/kernels.hpp). Null selects
  /// the dispatched CPU tier.
  const tsr::KernelTable* kernels = nullptr;
  /// Cooperative run-time control (core/run_control.hpp), polled once per
  /// contraction step by ContractionPlan::execute and both BatchedPlan
  /// passes, so a cancel or expired deadline stops a replay within one
  /// step. Lives on the workspace -- per-execution state -- rather than on
  /// the (cached, shared) plan or its compile options. Null disables.
  const core::RunControl* control = nullptr;
  tsr::aligned_vector<cplx> arena;
  ArenaBuffer batch_arena;  // batched replays only
  tsr::aligned_vector<cplx> scratch_a, scratch_b;
  std::vector<tsr::detail::MatmulFn> step_kernels;  // per-traversal dispatch
  std::vector<std::size_t> idx;                // odometer scratch
  std::vector<const tsr::Tensor*> input_ptrs;  // for execute(const Network&)
  // Batched-replay scratch: variant keys of the varying inputs (in_vids),
  // every batched step's term -> unique-row map (vids), the per-step key /
  // unique-row buffers the variant compaction scan works on, and the
  // per-term boundary signatures / representatives of the sequential pass.
  std::vector<std::uint32_t> in_vids, vids, key_a, key_b, ukey_a, ukey_b, urep;
  std::vector<std::uint32_t> sig, term_rep, seq_last;
  std::vector<std::uint32_t> htab;  // first-occurrence probe table (dedup scans)
};

/// One pairwise step of a batched replay: the parent PlanStep plus the
/// batch-dependent layout (batched arena offset, varying flags) and the
/// materialized permutation gather tables. The step's (m, k, n) kernel is
/// resolved from the ACTIVE kernel table once per traversal (not baked in
/// at compile time), so plans cached across tier switches -- PlanCache
/// entries outlive NOISIM_KERNELS overrides in tests and benchmarks --
/// always execute on the tier the caller selected.
struct BatchedStep {
  std::size_t lhs = 0, rhs = 0;
  bool varying_a = false, varying_b = false, varying_out = false;
  bool identity_a = true, identity_b = true;
  // Gather tables (source offset per flat output position) when the
  // operand permutation is small enough to materialize; otherwise the
  // odometer walk below runs per slice.
  std::vector<std::uint32_t> a_gather, b_gather;
  std::vector<std::size_t> a_perm_shape, a_src_stride;
  std::vector<std::size_t> b_perm_shape, b_src_stride;
  std::size_t a_elems = 1, b_elems = 1;
  std::size_t m = 1, k = 1, n = 1;
  std::size_t out_offset = 0;  // element offset into the *batched* arena
  std::size_t out_elems = 1;   // per-row output size
  /// Compile-time bound on distinct rows this step can hold: the variant
  /// structure of the varying slots in the step's dependency cone, capped
  /// at the batch capacity. Sizes the arena buffer for batched steps.
  std::size_t row_bound = 1;
  /// Root-region steps (row bound near the capacity: terms share almost
  /// nothing) replay per term through the small reused per-term arena
  /// segment instead of materializing a rows-wide batch buffer.
  bool sequential = false;
};

/// Batched replay of a ContractionPlan: K terms that share the plan's
/// topology and differ only in the tensors substituted at the declared
/// varying input slots execute in ONE traversal of the schedule.
///
///  * Intermediates downstream of a varying slot live as [K, ...] batched
///    buffers in a liveness-packed arena laid out at compile time (the
///    whole batched arena is checked against max_workspace_elems there, so
///    batch-induced MO surfaces before any arithmetic);
///  * steps untouched by any varying slot run ONCE per batch and broadcast
///    into their consumers (stride-0 operands), instead of once per term;
///  * slices are variant-compacted: terms whose operands are
///    known-identical (same substituted tensor pointers, recursively) map
///    to ONE stored row per step, so each distinct value is computed and
///    materialized exactly once -- Algorithm-1 batches are dominated by
///    the shared dominant factor, so most per-site cones collapse to a
///    handful of rows regardless of the batch size;
///  * permutation walks are materialized as gather tables and operand
///    dispatch/kernel selection happens once per step, not once per term;
///  * the merged-cone "root" region -- steps whose variant bound says every
///    term is distinct, so batching would only stream single-use rows
///    through memory -- replays per term through a small reused arena
///    segment that stays cache-hot, with whole per-term passes skipped
///    when a term's boundary signature matches an earlier term's.
///
/// Every term reproduces the per-term replay bit for bit: broadcast and
/// row-shared slices are the same deterministic arithmetic computed once,
/// and the per-row kernels accumulate ascending-k exactly like the
/// per-term kernel. Thread-safe like ContractionPlan: concurrent replays
/// need distinct workspaces.
class BatchedPlan {
 public:
  std::size_t capacity() const { return capacity_; }
  std::size_t num_varying() const { return varying_slots_.size(); }
  const std::vector<std::size_t>& varying_slots() const { return varying_slots_; }
  /// Batched arena high-water mark (elements) for a full-capacity replay.
  std::size_t workspace_elems() const { return arena_elems_; }
  /// Fraction of one term's schedule flops that fall in the SEQUENTIAL
  /// (per-term replayed) region. Near 1.0 the compile-time variant bounds
  /// say essentially every step is distinct across terms -- batching can
  /// save at most the remaining fraction, so callers holding a per-term
  /// fallback path (e.g. output-bitstring batching over a root-dominated
  /// plan) should prefer it.
  double sequential_flop_fraction() const {
    return term_flops_ > 0
               ? static_cast<double>(seq_flops_) / static_cast<double>(term_flops_)
               : 0.0;
  }

  /// Replay k <= capacity() terms. `shared[i]` supplies input slot i
  /// (ignored at varying slots); `varying[t * num_varying() + v]` supplies
  /// varying slot varying_slots()[v] for term t (term-major). Returns a
  /// tensor of shape [k, <plan output shape>...]; slice t is bit-identical
  /// to a per-term ContractionPlan::execute with term t's inputs.
  tsr::Tensor execute(std::span<const tsr::Tensor* const> shared,
                      std::span<const tsr::Tensor* const> varying, std::size_t k,
                      PlanWorkspace& ws, ContractStats* stats = nullptr) const;

 private:
  friend class ContractionPlan;
  BatchedPlan() = default;

  std::vector<BatchedStep> steps_;
  std::vector<std::size_t> input_elems_;
  std::vector<std::size_t> varying_slots_;
  std::vector<std::ptrdiff_t> varying_index_of_input_;  // -1 = shared slot
  std::vector<std::size_t> boundary_;  // varying batched slots read by the sequential pass
  bool has_seq_ = false;
  std::size_t capacity_ = 0;
  std::size_t arena_elems_ = 0;
  std::size_t term_flops_ = 0, seq_flops_ = 0;  // one term's schedule split
  std::size_t scratch_a_elems_ = 0, scratch_b_elems_ = 0;
  std::size_t max_rank_ = 0;
  bool output_identity_ = true;
  std::vector<std::size_t> output_shape_;
  std::vector<std::size_t> output_src_stride_;
  std::vector<std::uint32_t> output_gather_;
  double timeout_seconds_ = 0.0;
  std::shared_ptr<std::atomic<std::size_t>> executions_;
};

class ContractionPlan {
 public:
  /// Compile a plan for the network's topology. Ordering follows
  /// opts.strategy exactly as contract_network does (Auto = the strategy
  /// portfolio when opts.portfolio is set, keeping the min-total-flop
  /// schedule; otherwise Greedy with a Sequential fallback on memory-out).
  /// Throws MemoryOutError when any
  /// intermediate exceeds opts.max_tensor_elems (or the arena exceeds
  /// opts.max_workspace_elems) and TimeoutError past opts.timeout_seconds,
  /// so MO/TO surface at plan time, before any arithmetic runs.
  static ContractionPlan compile(const Network& net, const ContractOptions& opts = {},
                                 ContractStats* stats = nullptr);

  /// Replay the plan against the tensors of `net` (topology must match the
  /// compiled one; sizes are checked).
  tsr::Tensor execute(const Network& net, PlanWorkspace& ws, ContractStats* stats = nullptr) const;

  /// Replay against substituted contents: inputs[i] stands in for node i.
  /// Thread-safe; concurrent replays need distinct workspaces.
  tsr::Tensor execute(std::span<const tsr::Tensor* const> inputs, PlanWorkspace& ws,
                      ContractStats* stats = nullptr) const;

  /// Compile a batched replay of this plan: up to `capacity` terms that
  /// differ only at the `varying_slots` input slots execute per traversal.
  /// `variant_counts[v]` (optional) promises that at most that many
  /// *distinct* tensors will ever be substituted at varying_slots[v] across
  /// a batch -- e.g. the 4 SVD factors of an Algorithm-1 noise site, or a
  /// channel's unitary-mixture size. The promise tightens each step's
  /// arena buffer from `capacity` rows to the variant product of its
  /// dependency cone (execute() checks it and fails loudly if violated);
  /// empty means no promise (every varying buffer gets `capacity` rows).
  /// `max_varied_per_term` additionally promises that within any one term
  /// at most that many varying slots carry something other than their
  /// first (index-0) tensor -- Algorithm 1's approximation level: all but
  /// u <= l sites carry the dominant factor. It tightens the row bounds
  /// further and decides which steps replay per term (see BatchedPlan).
  /// `unconstrained[v]` (optional, aligned with varying_slots) exempts slot
  /// v from that per-term promise: the slot may carry ANY of its declared
  /// variants in every term (e.g. an output-basis cap, which flips freely
  /// across a batch of bitstrings), so its variant count enters each cone's
  /// row bound as a full multiplicative factor instead of a deviation.
  /// Throws MemoryOutError when the batched arena exceeds
  /// opts.max_workspace_elems (batch-aware enforcement: the per-term plan
  /// may fit a budget its batched counterpart exceeds).
  BatchedPlan compile_batched(std::span<const std::size_t> varying_slots, std::size_t capacity,
                              const ContractOptions& opts = {}, ContractStats* stats = nullptr,
                              std::span<const std::size_t> variant_counts = {},
                              std::size_t max_varied_per_term = static_cast<std::size_t>(-1),
                              std::span<const char> unconstrained = {}) const;

  const std::vector<PlanStep>& steps() const { return steps_; }
  std::size_t num_inputs() const { return input_elems_.size(); }
  /// Largest single intermediate (elements).
  std::size_t peak_elems() const { return peak_elems_; }
  /// Schedule cost: sum of m*k*n over all pairwise steps.
  std::size_t total_flops() const { return total_flops_; }
  /// Modeled memory traffic of one replay, in bytes (operand reads -- 3x
  /// for operands copied through a permutation -- plus output zero-fill and
  /// write per step, plus the final output materialization).
  std::size_t total_bytes() const { return total_bytes_; }
  /// Arena high-water mark (elements): peak memory of all live
  /// intermediates under the liveness-packed layout.
  std::size_t workspace_elems() const { return arena_elems_; }
  /// Printable digest of the full schedule; equal topologies compile to
  /// equal fingerprints (plan determinism).
  std::string fingerprint() const;
  /// The ordering strategy that produced this schedule. Direct compiles
  /// report their strategy; an Auto portfolio compile reports the winning
  /// portfolio entry (never Auto itself), and the pre-portfolio Auto
  /// fallback reports Greedy or Sequential.
  OrderStrategy chosen_strategy() const { return chosen_strategy_; }

 private:
  ContractionPlan() = default;

  const cplx* slot_data(std::size_t slot, std::span<const tsr::Tensor* const> inputs,
                        const PlanWorkspace& ws) const;

  std::vector<PlanStep> steps_;
  std::vector<std::size_t> input_elems_;  // expected size per input node
  std::size_t arena_elems_ = 0;
  std::size_t scratch_a_elems_ = 0, scratch_b_elems_ = 0;
  std::size_t max_rank_ = 0;
  std::size_t peak_elems_ = 0;
  std::size_t total_flops_ = 0;
  std::size_t total_bytes_ = 0;
  // Final axis reorder to ascending open-edge order.
  bool output_identity_ = true;
  std::vector<std::size_t> output_shape_;
  std::vector<std::size_t> output_src_stride_;
  double timeout_seconds_ = 0.0;
  OrderStrategy chosen_strategy_ = OrderStrategy::Greedy;
  // Replay counter for plan-reuse accounting; shared so plans stay movable.
  std::shared_ptr<std::atomic<std::size_t>> executions_;

  friend struct PlanCompiler;
};

}  // namespace noisim::tn
