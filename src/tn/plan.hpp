#pragma once
// Compiled contraction plans: planning (pairwise order, axis pairing,
// permutations, workspace layout) is split from execution (the arithmetic).
//
// A plan is a pure function of the network's *topology* -- node shapes and
// edge structure; tensor contents never enter planning. Compiling once and
// replaying against fresh tensor contents is what makes Algorithm 1 cheap:
// every enumerated term's single-layer network shares one topology and
// differs only in the tensors at the chosen noise sites, so the l-level
// sweep costs O(plan + terms x replay) instead of O(terms x (plan + contract)).
//
// Execution is allocation-free in steady state: all intermediates live in a
// liveness-packed arena inside a caller-owned PlanWorkspace (one per
// thread), operand permutations are precomputed stride walks into reused
// scratch buffers (skipped entirely when the permutation is the identity),
// and the pairwise kernel is the cache-blocked matmul of tensor/contract.hpp.
// Replaying a plan is bit-identical to contracting the network from scratch
// with the same options.

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tn/contractor.hpp"

namespace noisim::tn {

/// One pairwise contraction of a compiled plan. Slots 0..num_inputs-1 are
/// the network's nodes (in node-index order); slot num_inputs + s is the
/// output of step s.
struct PlanStep {
  std::size_t lhs = 0, rhs = 0;  // operand slots
  // Precomputed permutation walks bringing lhs to [free..., contracted...]
  // and rhs to [contracted..., free...]; empty when the permutation is the
  // identity (the operand is used in place, no copy).
  bool identity_a = true, identity_b = true;
  std::vector<std::size_t> a_perm_shape, a_src_stride;
  std::vector<std::size_t> b_perm_shape, b_src_stride;
  std::size_t a_elems = 1, b_elems = 1;  // operand sizes (scratch sizing)
  std::size_t m = 1, k = 1, n = 1;       // matrix-shaped contraction dims
  std::size_t out_offset = 0;            // element offset into the arena
  std::size_t out_elems = 1;
};

/// Per-thread scratch a plan executes in: the intermediate arena plus the
/// permutation scratch buffers. Buffers only grow, so replaying a plan
/// through the same workspace allocates nothing in steady state.
struct PlanWorkspace {
  std::vector<cplx> arena;
  std::vector<cplx> scratch_a, scratch_b;
  std::vector<std::size_t> idx;                // odometer scratch
  std::vector<const tsr::Tensor*> input_ptrs;  // for execute(const Network&)
};

class ContractionPlan {
 public:
  /// Compile a plan for the network's topology. Ordering follows
  /// opts.strategy exactly as contract_network does (Auto = Greedy with a
  /// Sequential fallback on memory-out). Throws MemoryOutError when any
  /// intermediate exceeds opts.max_tensor_elems (or the arena exceeds
  /// opts.max_workspace_elems) and TimeoutError past opts.timeout_seconds,
  /// so MO/TO surface at plan time, before any arithmetic runs.
  static ContractionPlan compile(const Network& net, const ContractOptions& opts = {},
                                 ContractStats* stats = nullptr);

  /// Replay the plan against the tensors of `net` (topology must match the
  /// compiled one; sizes are checked).
  tsr::Tensor execute(const Network& net, PlanWorkspace& ws, ContractStats* stats = nullptr) const;

  /// Replay against substituted contents: inputs[i] stands in for node i.
  /// Thread-safe; concurrent replays need distinct workspaces.
  tsr::Tensor execute(std::span<const tsr::Tensor* const> inputs, PlanWorkspace& ws,
                      ContractStats* stats = nullptr) const;

  const std::vector<PlanStep>& steps() const { return steps_; }
  std::size_t num_inputs() const { return input_elems_.size(); }
  /// Largest single intermediate (elements).
  std::size_t peak_elems() const { return peak_elems_; }
  /// Schedule cost: sum of m*k*n over all pairwise steps.
  std::size_t total_flops() const { return total_flops_; }
  /// Arena high-water mark (elements): peak memory of all live
  /// intermediates under the liveness-packed layout.
  std::size_t workspace_elems() const { return arena_elems_; }
  /// Printable digest of the full schedule; equal topologies compile to
  /// equal fingerprints (plan determinism).
  std::string fingerprint() const;

 private:
  ContractionPlan() = default;

  const cplx* slot_data(std::size_t slot, std::span<const tsr::Tensor* const> inputs,
                        const PlanWorkspace& ws) const;

  std::vector<PlanStep> steps_;
  std::vector<std::size_t> input_elems_;  // expected size per input node
  std::size_t arena_elems_ = 0;
  std::size_t scratch_a_elems_ = 0, scratch_b_elems_ = 0;
  std::size_t max_rank_ = 0;
  std::size_t peak_elems_ = 0;
  std::size_t total_flops_ = 0;
  // Final axis reorder to ascending open-edge order.
  bool output_identity_ = true;
  std::vector<std::size_t> output_shape_;
  std::vector<std::size_t> output_src_stride_;
  double timeout_seconds_ = 0.0;
  // Replay counter for plan-reuse accounting; shared so plans stay movable.
  std::shared_ptr<std::atomic<std::size_t>> executions_;

  friend struct PlanCompiler;
};

}  // namespace noisim::tn
