#include "tn/contractor.hpp"

#include <chrono>

#include "tn/plan.hpp"

namespace noisim::tn {

// One-shot contraction: compile a plan for the topology, replay it once.
// All ordering logic lives in ContractionPlan::compile (tn/plan.cpp);
// callers that contract many same-topology networks hold on to the plan
// and replay it per instance instead of calling this.
tsr::Tensor contract_network(const Network& net, const ContractOptions& opts,
                             ContractStats* stats) {
  if (net.num_nodes() == 0) return tsr::Tensor::scalar(cplx{1.0, 0.0});
  using Clock = std::chrono::steady_clock;
  const auto started = Clock::now();

  const ContractionPlan plan = ContractionPlan::compile(net, opts, stats);
  if (stats)
    stats->elapsed_seconds += std::chrono::duration<double>(Clock::now() - started).count();
  PlanWorkspace ws;
  ws.control = opts.control;  // one-shot contraction: replay under the same control
  return plan.execute(net, ws, stats);  // adds its own elapsed time
}

cplx contract_to_scalar(const Network& net, const ContractOptions& opts, ContractStats* stats) {
  la::detail::require(net.open_edges().empty(), "contract_to_scalar: network has open edges");
  return contract_network(net, opts, stats).to_scalar();
}

}  // namespace noisim::tn
