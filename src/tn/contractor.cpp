#include "tn/contractor.hpp"

#include <algorithm>
#include <chrono>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "tensor/contract.hpp"

namespace noisim::tn {

namespace {

using Clock = std::chrono::steady_clock;

/// Mutable working copy of the network during contraction.
struct Work {
  std::vector<tsr::Tensor> tensors;
  std::vector<std::vector<EdgeId>> edges;
  std::vector<bool> alive;
  std::vector<std::size_t> version;
  // Edge id -> alive node indices currently carrying it (size <= 2).
  std::unordered_map<EdgeId, std::vector<std::size_t>> edge_nodes;
  Clock::time_point deadline{};
  bool has_deadline = false;
  std::size_t max_elems = 0;
  ContractStats* stats = nullptr;

  explicit Work(const Network& net, const ContractOptions& opts, ContractStats* st) {
    tensors.reserve(net.num_nodes());
    edges.reserve(net.num_nodes());
    for (std::size_t i = 0; i < net.num_nodes(); ++i) {
      tensors.push_back(net.node(i).tensor);
      edges.push_back(net.node(i).edges);
      alive.push_back(true);
      version.push_back(0);
      for (EdgeId e : net.node(i).edges) edge_nodes[e].push_back(i);
    }
    max_elems = opts.max_tensor_elems;
    if (opts.timeout_seconds > 0.0) {
      has_deadline = true;
      deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(opts.timeout_seconds));
    }
    stats = st;
  }

  void check_deadline() const {
    if (has_deadline && Clock::now() > deadline)
      throw TimeoutError("tensor network contraction exceeded deadline");
  }

  std::size_t node_size(std::size_t i) const { return tensors[i].size(); }

  /// Edges contracted when u and v merge (both endpoints inside {u, v}).
  std::vector<EdgeId> shared_edges(std::size_t u, std::size_t v) const {
    std::vector<EdgeId> shared;
    const std::unordered_set<EdgeId> vset(edges[v].begin(), edges[v].end());
    for (EdgeId e : edges[u])
      if (vset.count(e)) shared.push_back(e);
    return shared;
  }

  std::size_t result_size(std::size_t u, std::size_t v) const {
    const std::unordered_set<EdgeId> uset(edges[u].begin(), edges[u].end());
    const std::unordered_set<EdgeId> vset(edges[v].begin(), edges[v].end());
    std::size_t size = 1;
    for (std::size_t ax = 0; ax < edges[u].size(); ++ax)
      if (!vset.count(edges[u][ax])) size *= tensors[u].dim(ax);
    for (std::size_t ax = 0; ax < edges[v].size(); ++ax)
      if (!uset.count(edges[v][ax])) size *= tensors[v].dim(ax);
    return size;
  }

  /// Contract nodes u and v; returns the new node index.
  std::size_t merge(std::size_t u, std::size_t v) {
    check_deadline();
    const std::vector<EdgeId> shared = shared_edges(u, v);

    std::vector<std::size_t> axes_u, axes_v;
    for (EdgeId e : shared) {
      axes_u.push_back(static_cast<std::size_t>(
          std::find(edges[u].begin(), edges[u].end(), e) - edges[u].begin()));
      axes_v.push_back(static_cast<std::size_t>(
          std::find(edges[v].begin(), edges[v].end(), e) - edges[v].begin()));
    }

    const std::size_t out_size = tsr::contract_result_size(tensors[u], axes_u, tensors[v], axes_v);
    if (out_size > max_elems)
      throw MemoryOutError("tensor network contraction exceeded memory budget (intermediate of " +
                           std::to_string(out_size) + " elements)");

    tsr::Tensor merged = tsr::contract(tensors[u], axes_u, tensors[v], axes_v);

    // Result edge order mirrors contract(): u's free axes then v's free axes.
    std::vector<EdgeId> merged_edges;
    const std::unordered_set<EdgeId> removed(shared.begin(), shared.end());
    for (EdgeId e : edges[u])
      if (!removed.count(e)) merged_edges.push_back(e);
    for (EdgeId e : edges[v])
      if (!removed.count(e)) merged_edges.push_back(e);

    alive[u] = alive[v] = false;
    const std::size_t idx = tensors.size();
    tensors.push_back(std::move(merged));
    edges.push_back(merged_edges);
    alive.push_back(true);
    version.push_back(0);

    for (EdgeId e : merged_edges) {
      auto& owners = edge_nodes[e];
      owners.erase(std::remove_if(owners.begin(), owners.end(),
                                  [&](std::size_t n) { return n == u || n == v; }),
                   owners.end());
      owners.push_back(idx);
    }
    for (EdgeId e : shared) edge_nodes.erase(e);

    if (stats) {
      ++stats->num_pairwise;
      stats->peak_elems = std::max(stats->peak_elems, out_size);
    }
    return idx;
  }

  std::vector<std::size_t> alive_nodes() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < alive.size(); ++i)
      if (alive[i]) out.push_back(i);
    return out;
  }

  /// Neighbors of node i through shared edges.
  std::vector<std::size_t> neighbors(std::size_t i) const {
    std::vector<std::size_t> out;
    for (EdgeId e : edges[i]) {
      const auto it = edge_nodes.find(e);
      if (it == edge_nodes.end()) continue;
      for (std::size_t n : it->second)
        if (n != i && alive[n]) out.push_back(n);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }
};

struct Candidate {
  double score;
  std::size_t result;
  std::size_t u, v;
  std::size_t ver_u, ver_v;
  bool operator>(const Candidate& o) const {
    if (score != o.score) return score > o.score;
    return result > o.result;
  }
};

void greedy_contract(Work& w) {
  std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>> heap;

  auto push_pair = [&](std::size_t u, std::size_t v) {
    if (u > v) std::swap(u, v);
    const std::size_t rs = w.result_size(u, v);
    const double score = static_cast<double>(rs) - static_cast<double>(w.node_size(u)) -
                         static_cast<double>(w.node_size(v));
    heap.push(Candidate{score, rs, u, v, w.version[u], w.version[v]});
  };

  for (std::size_t i = 0; i < w.tensors.size(); ++i)
    if (w.alive[i])
      for (std::size_t nb : w.neighbors(i))
        if (nb > i) push_pair(i, nb);

  bool saw_over_budget = false;
  while (!heap.empty()) {
    const Candidate c = heap.top();
    heap.pop();
    if (!w.alive[c.u] || !w.alive[c.v]) continue;
    if (w.version[c.u] != c.ver_u || w.version[c.v] != c.ver_v) continue;
    if (c.result > w.max_elems) {
      saw_over_budget = true;
      continue;
    }
    const std::size_t merged = w.merge(c.u, c.v);
    for (std::size_t nb : w.neighbors(merged)) push_pair(merged, nb);
  }

  // Remaining alive nodes are mutually disconnected. If that is only because
  // every connected pair was over budget, report MO rather than computing a
  // wrong outer product.
  std::vector<std::size_t> rest = w.alive_nodes();
  for (std::size_t i = 0; i < rest.size(); ++i)
    for (std::size_t j = i + 1; j < rest.size(); ++j)
      if (!w.shared_edges(rest[i], rest[j]).empty()) {
        if (saw_over_budget)
          throw MemoryOutError("greedy contraction: all remaining pairs exceed memory budget");
        la::detail::fail("greedy contraction: internal error, connected pair left behind");
      }

  // Fold disconnected components smallest-first (outer products).
  while (true) {
    rest = w.alive_nodes();
    if (rest.size() <= 1) break;
    std::sort(rest.begin(), rest.end(),
              [&](std::size_t a, std::size_t b) { return w.node_size(a) < w.node_size(b); });
    w.merge(rest[0], rest[1]);
  }
}

void sequential_contract(Work& w, const std::vector<std::size_t>& sequence) {
  std::vector<std::size_t> order = sequence;
  if (order.empty()) {
    order.resize(w.tensors.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  } else {
    la::detail::require(order.size() == w.tensors.size(),
                        "sequential contraction: sequence must cover all nodes");
  }

  std::size_t acc = order[0];
  for (std::size_t i = 1; i < order.size(); ++i) acc = w.merge(acc, order[i]);
}

tsr::Tensor finish(Work& w, const Network& net) {
  const std::vector<std::size_t> rest = w.alive_nodes();
  la::detail::require(rest.size() == 1, "contract_network: empty network has no nodes");
  tsr::Tensor result = std::move(w.tensors[rest[0]]);
  const std::vector<EdgeId>& result_edges = w.edges[rest[0]];

  // Deterministic output: permute axes to ascending open-edge order.
  const std::vector<EdgeId> open = net.open_edges();
  la::detail::require(open.size() == result_edges.size(),
                      "contract_network: open edge bookkeeping mismatch");
  std::vector<std::size_t> perm(open.size());
  for (std::size_t i = 0; i < open.size(); ++i) {
    const auto it = std::find(result_edges.begin(), result_edges.end(), open[i]);
    la::detail::require(it != result_edges.end(), "contract_network: open edge missing");
    perm[i] = static_cast<std::size_t>(it - result_edges.begin());
  }
  return result.permute(perm);
}

}  // namespace

tsr::Tensor contract_network(const Network& net, const ContractOptions& opts,
                             ContractStats* stats) {
  if (net.num_nodes() == 0) return tsr::Tensor::scalar(cplx{1.0, 0.0});
  const auto started = Clock::now();
  auto record_elapsed = [&](ContractStats* st) {
    if (st)
      st->elapsed_seconds = std::chrono::duration<double>(Clock::now() - started).count();
  };

  auto run = [&](OrderStrategy strat) {
    Work w(net, opts, stats);
    if (strat == OrderStrategy::Greedy)
      greedy_contract(w);
    else
      sequential_contract(w, opts.custom_sequence);
    tsr::Tensor out = finish(w, net);
    record_elapsed(stats);
    return out;
  };

  switch (opts.strategy) {
    case OrderStrategy::Greedy:
      return run(OrderStrategy::Greedy);
    case OrderStrategy::Sequential:
      return run(OrderStrategy::Sequential);
    case OrderStrategy::Auto:
      try {
        return run(OrderStrategy::Greedy);
      } catch (const MemoryOutError&) {
        // Greedy painted itself into a corner; a time-ordered sweep can
        // succeed on few-qubit deep circuits where greedy fails.
        return run(OrderStrategy::Sequential);
      }
  }
  la::detail::fail("contract_network: unknown strategy");
}

cplx contract_to_scalar(const Network& net, const ContractOptions& opts, ContractStats* stats) {
  la::detail::require(net.open_edges().empty(), "contract_to_scalar: network has open edges");
  return contract_network(net, opts, stats).to_scalar();
}

}  // namespace noisim::tn
