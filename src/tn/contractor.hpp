#pragma once
// Tensor network contraction with pluggable ordering strategies.
//
// Strategies:
//  * Greedy     — repeatedly contract the connected pair with the best
//                 (result_size - size_a - size_b) score; this is the classic
//                 opt_einsum-style greedy heuristic and works well on the
//                 quasi-1D / shallow-grid circuit networks in the paper.
//  * Sequential — absorb nodes into an accumulator in insertion order. The
//                 circuit builders insert gate tensors in time order, which
//                 makes this equivalent to Schrodinger simulation (optimal
//                 for few qubits / deep circuits). Builders that tag nodes
//                 with grid coordinates can pass a custom sequence for
//                 row-sweep (boundary) contraction instead.
//  * Auto       — Greedy, falling back across strategies on memory-out.
//
// Guard rails: the contractor enforces a tensor-size budget and a wall-clock
// deadline, throwing MemoryOutError / TimeoutError; the benchmark harness
// maps these to the paper's "MO" / "TO" table entries.
//
// Since the plan/execute split, contract_network is a thin wrapper: it
// compiles a ContractionPlan (tn/plan.hpp) for the network's topology and
// replays it once. Callers contracting many networks that share a topology
// should compile the plan themselves and replay it per instance.

#include <cstddef>
#include <vector>

#include "core/run_control.hpp"
#include "tn/network.hpp"

namespace noisim::tn {

enum class OrderStrategy { Auto, Greedy, Sequential };

struct ContractOptions {
  OrderStrategy strategy = OrderStrategy::Auto;
  /// Maximum number of complex elements a single intermediate may hold.
  /// 2^26 elements = 1 GiB of complex<double>.
  std::size_t max_tensor_elems = std::size_t{1} << 26;
  /// Wall-clock budget in seconds; 0 disables the deadline. Bounds the
  /// whole planning phase (all strategy attempts of one compile share a
  /// deadline) and, separately, each plan replay.
  double timeout_seconds = 0.0;
  /// When non-empty: node indices in the order Sequential should absorb
  /// them (must be a permutation of all node indices).
  std::vector<std::size_t> custom_sequence;
  /// Budget for the plan's whole intermediate arena (the liveness-packed
  /// workspace all intermediates live in), in complex elements; exceeding
  /// it raises MemoryOutError at plan time. 0 disables the check --
  /// max_tensor_elems alone then bounds the largest single intermediate.
  std::size_t max_workspace_elems = 0;
  /// Score weights the Greedy planner tries (score = result_size -
  /// weight * (size_a + size_b)); the cheapest schedule by total flops
  /// wins, earlier entries winning ties -- weight 1.0 (the classic
  /// opt_einsum heuristic) leads so a different schedule is only chosen
  /// when strictly cheaper. Every entry multiplies one-shot planning cost,
  /// so the default stays at two; callers that compile once and replay
  /// many times can afford a deeper ladder. Must be non-empty for
  /// Greedy/Auto.
  std::vector<double> greedy_cost_weights{1.0, 4.0};
  /// Cooperative control polled during PLANNING (compile-time cancel /
  /// deadline / memory ceiling); caller-owned, may be null. Run-time
  /// (replay) control travels through tn::PlanWorkspace::control instead,
  /// because compiled plans are cached and shared across calls whose
  /// controls differ -- nothing execution-scoped may be baked into a plan.
  /// Deliberately excluded from PlanCache keys (core/plan_cache.cpp
  /// serializes these options field by field): an armed control never
  /// changes what a plan computes, only whether it is allowed to finish.
  const core::RunControl* control = nullptr;
};

/// Counters accumulate across calls sharing one ContractStats (peak_elems
/// maxes); drivers that contract many same-topology networks report their
/// aggregate through a single struct.
struct ContractStats {
  std::size_t num_pairwise = 0;     // pairwise matmul kernel invocations performed
  std::size_t peak_elems = 0;       // largest intermediate buffer produced
  double elapsed_seconds = 0.0;     // total time planning + contracting
  std::size_t plans_compiled = 0;   // contraction plans compiled (topology planning)
  std::size_t plan_executions = 0;  // plan replays (one per network contraction / batched term)
  std::size_t plan_reuse_hits = 0;  // replays that reused an already-executed plan
  /// Complex multiply-add operations executed: sum of m*k*n over every
  /// kernel invocation (batched replay counts the slices it actually ran,
  /// so deduplicated/broadcast work is visible as *missing* flops).
  std::size_t flops = 0;
  /// Modeled memory traffic of the executed steps, in bytes: operand reads
  /// (3x for operands that go through a permutation copy), output zero-fill
  /// + write, and the final output materialization. Together with `flops`
  /// this records the arithmetic intensity of a run.
  std::size_t bytes_moved = 0;
  /// Session-level plan-cache accounting (core::PlanCache): lookups served
  /// from the cache vs lookups that had to compile a template or batched
  /// plan. Zero when the sweep ran without a cache. Cached calls report
  /// plans_compiled == 0 alongside plan_cache_hits > 0, which is how the
  /// bench ladder verifies the recompilation actually disappeared.
  std::size_t plan_cache_hits = 0;
  std::size_t plan_cache_misses = 0;
  /// Kernel invocations by dispatched instruction-set tier
  /// (tensor/kernels.hpp). kernels_scalar + kernels_avx2 + kernels_avx512
  /// == num_pairwise for plan-executor work; which bucket fills records
  /// what cpuid + NOISIM_KERNELS actually selected -- every tier computes
  /// identical bits, so these are the only observable difference. Paired
  /// with `flops` and `elapsed_seconds` they give effective GFLOP/s
  /// (bench::stats_json reports it directly).
  std::size_t kernels_scalar = 0;
  std::size_t kernels_avx2 = 0;
  std::size_t kernels_avx512 = 0;

  /// Fold another record into this one (counters add, peaks max) -- used
  /// to aggregate per-worker stats deterministically.
  void merge(const ContractStats& o) {
    num_pairwise += o.num_pairwise;
    peak_elems = peak_elems > o.peak_elems ? peak_elems : o.peak_elems;
    elapsed_seconds += o.elapsed_seconds;
    plans_compiled += o.plans_compiled;
    plan_executions += o.plan_executions;
    plan_reuse_hits += o.plan_reuse_hits;
    flops += o.flops;
    bytes_moved += o.bytes_moved;
    plan_cache_hits += o.plan_cache_hits;
    plan_cache_misses += o.plan_cache_misses;
    kernels_scalar += o.kernels_scalar;
    kernels_avx2 += o.kernels_avx2;
    kernels_avx512 += o.kernels_avx512;
  }
};

/// Contract the whole network down to a single tensor whose axes are the
/// network's open edges in ascending edge-id order.
tsr::Tensor contract_network(const Network& net, const ContractOptions& opts = {},
                             ContractStats* stats = nullptr);

/// Contract a closed network (no open edges) to its scalar value.
cplx contract_to_scalar(const Network& net, const ContractOptions& opts = {},
                        ContractStats* stats = nullptr);

}  // namespace noisim::tn
