#pragma once
// Tensor network contraction with pluggable ordering strategies.
//
// Strategies:
//  * Greedy     — repeatedly contract the connected pair with the best
//                 (result_size - size_a - size_b) score; this is the classic
//                 opt_einsum-style greedy heuristic and works well on the
//                 quasi-1D / shallow-grid circuit networks in the paper.
//  * Sequential — absorb nodes into an accumulator in insertion order. The
//                 circuit builders insert gate tensors in time order, which
//                 makes this equivalent to Schrodinger simulation (optimal
//                 for few qubits / deep circuits). Builders that tag nodes
//                 with grid coordinates can pass a custom sequence for
//                 row-sweep (boundary) contraction instead.
//  * Auto       — Greedy, falling back across strategies on memory-out.
//
// Guard rails: the contractor enforces a tensor-size budget and a wall-clock
// deadline, throwing MemoryOutError / TimeoutError; the benchmark harness
// maps these to the paper's "MO" / "TO" table entries.

#include <cstddef>
#include <vector>

#include "tn/network.hpp"

namespace noisim::tn {

enum class OrderStrategy { Auto, Greedy, Sequential };

struct ContractOptions {
  OrderStrategy strategy = OrderStrategy::Auto;
  /// Maximum number of complex elements a single intermediate may hold.
  /// 2^26 elements = 1 GiB of complex<double>.
  std::size_t max_tensor_elems = std::size_t{1} << 26;
  /// Wall-clock budget in seconds; 0 disables the deadline.
  double timeout_seconds = 0.0;
  /// When non-empty: node indices in the order Sequential should absorb
  /// them (must be a permutation of all node indices).
  std::vector<std::size_t> custom_sequence;
};

struct ContractStats {
  std::size_t num_pairwise = 0;   // pairwise contractions performed
  std::size_t peak_elems = 0;     // largest intermediate produced
  double elapsed_seconds = 0.0;
};

/// Contract the whole network down to a single tensor whose axes are the
/// network's open edges in ascending edge-id order.
tsr::Tensor contract_network(const Network& net, const ContractOptions& opts = {},
                             ContractStats* stats = nullptr);

/// Contract a closed network (no open edges) to its scalar value.
cplx contract_to_scalar(const Network& net, const ContractOptions& opts = {},
                        ContractStats* stats = nullptr);

}  // namespace noisim::tn
