#pragma once
// Tensor network contraction with pluggable ordering strategies.
//
// Strategies:
//  * Greedy     — repeatedly contract the connected pair with the best
//                 (result_size - size_a - size_b) score; this is the classic
//                 opt_einsum-style greedy heuristic and works well on the
//                 quasi-1D / shallow-grid circuit networks in the paper.
//  * Sequential — absorb nodes into an accumulator in insertion order. The
//                 circuit builders insert gate tensors in time order, which
//                 makes this equivalent to Schrodinger simulation (optimal
//                 for few qubits / deep circuits). Builders that tag nodes
//                 with grid coordinates can pass a custom sequence for
//                 row-sweep (boundary) contraction instead.
//  * PairwiseRecursive — balanced binary reduction over insertion order
//                 (merge adjacent pairs, repeat on the halved level), the
//                 pairwise grouping of ddsim's simulation-path framework.
//  * Bracket    — partition insertion order into consecutive brackets
//                 (sizes 2/4/8 tried as an internal ladder), contract
//                 within each bracket sequentially, then fold the bracket
//                 results sequentially.
//  * Alternating — two accumulators absorb nodes from the front and the
//                 back of insertion order alternately, merged at the end
//                 (the gate-cap-balanced order of the same framework).
//  * RandomGreedy — restarted greedy with a deterministically seeded score
//                 jitter and a per-restart alpha drawn from a wide range
//                 (CoTenGra-style randomized search); the seed is a pure
//                 function of the network topology, never wall clock or
//                 entropy, so the chosen plan stays a pure function of
//                 topology + options.
//  * Auto       — portfolio search across the strategies above (see
//                 ContractOptions::portfolio), keeping the schedule with
//                 minimum total flops; with the portfolio disabled, Greedy
//                 with a Sequential fallback on memory-out.
//
// Guard rails: the contractor enforces a tensor-size budget and a wall-clock
// deadline, throwing MemoryOutError / TimeoutError; the benchmark harness
// maps these to the paper's "MO" / "TO" table entries.
//
// Since the plan/execute split, contract_network is a thin wrapper: it
// compiles a ContractionPlan (tn/plan.hpp) for the network's topology and
// replays it once. Callers contracting many networks that share a topology
// should compile the plan themselves and replay it per instance.

#include <array>
#include <cstddef>
#include <vector>

#include "core/run_control.hpp"
#include "tn/network.hpp"

namespace noisim::tn {

enum class OrderStrategy {
  Auto,
  Greedy,
  Sequential,
  PairwiseRecursive,
  Bracket,
  Alternating,
  RandomGreedy,
};

/// Number of OrderStrategy values (fixed-size per-strategy stats arrays).
inline constexpr std::size_t kNumOrderStrategies = 7;

/// Stable display name (stats_json keys, bench tables, test diagnostics).
inline const char* order_strategy_name(OrderStrategy s) {
  switch (s) {
    case OrderStrategy::Auto: return "auto";
    case OrderStrategy::Greedy: return "greedy";
    case OrderStrategy::Sequential: return "sequential";
    case OrderStrategy::PairwiseRecursive: return "pairwise_recursive";
    case OrderStrategy::Bracket: return "bracket";
    case OrderStrategy::Alternating: return "alternating";
    case OrderStrategy::RandomGreedy: return "random_greedy";
  }
  return "unknown";
}

struct ContractOptions {
  OrderStrategy strategy = OrderStrategy::Auto;
  /// Maximum number of complex elements a single intermediate may hold.
  /// 2^26 elements = 1 GiB of complex<double>.
  std::size_t max_tensor_elems = std::size_t{1} << 26;
  /// Wall-clock budget in seconds; 0 disables the deadline. Bounds the
  /// whole planning phase (all strategy attempts of one compile share a
  /// deadline) and, separately, each plan replay.
  double timeout_seconds = 0.0;
  /// When non-empty: node indices in the order Sequential should absorb
  /// them (must be a permutation of all node indices).
  std::vector<std::size_t> custom_sequence;
  /// Budget for the plan's whole intermediate arena (the liveness-packed
  /// workspace all intermediates live in), in complex elements; exceeding
  /// it raises MemoryOutError at plan time. 0 disables the check --
  /// max_tensor_elems alone then bounds the largest single intermediate.
  std::size_t max_workspace_elems = 0;
  /// Score weights the Greedy planner tries (score = result_size -
  /// weight * (size_a + size_b)); the cheapest schedule by total flops
  /// wins, earlier entries winning ties -- weight 1.0 (the classic
  /// opt_einsum heuristic) leads so a different schedule is only chosen
  /// when strictly cheaper. Every entry multiplies one-shot planning cost,
  /// so the default stays at two; callers that compile once and replay
  /// many times can afford a deeper ladder. Must be non-empty for
  /// Greedy/Auto.
  std::vector<double> greedy_cost_weights{1.0, 4.0};
  /// Auto runs a portfolio search over `portfolio_strategies` (sharing the
  /// one planning deadline above) and keeps the schedule with minimum total
  /// flops, ties broken by peak intermediate and then by enumeration order
  /// -- selection is a pure function of topology + these options, never of
  /// wall clock or attempt timing, so cached plans and fresh compiles
  /// always agree. Off restores the pre-portfolio Auto (Greedy with a
  /// Sequential fallback on memory-out). Direct strategies ignore it.
  bool portfolio = true;
  /// Strategy subset the Auto portfolio tries, in tie-break order. Entries
  /// must not be Auto; must be non-empty when the portfolio runs. Keeping
  /// Greedy in the set guarantees the portfolio never selects a schedule
  /// with more flops than the greedy ladder alone.
  std::vector<OrderStrategy> portfolio_strategies{
      OrderStrategy::Greedy, OrderStrategy::PairwiseRecursive, OrderStrategy::Bracket,
      OrderStrategy::Alternating, OrderStrategy::RandomGreedy};
  /// Restart count for RandomGreedy: each restart reseeds the score jitter
  /// and redraws alpha from a deterministic per-restart stream (seeded by
  /// the network's topology hash, restart index, and nothing else).
  std::size_t random_restarts = 4;
  /// Cooperative control polled during PLANNING (compile-time cancel /
  /// deadline / memory ceiling); caller-owned, may be null. Run-time
  /// (replay) control travels through tn::PlanWorkspace::control instead,
  /// because compiled plans are cached and shared across calls whose
  /// controls differ -- nothing execution-scoped may be baked into a plan.
  /// Deliberately excluded from PlanCache keys (core/plan_cache.cpp
  /// serializes these options field by field): an armed control never
  /// changes what a plan computes, only whether it is allowed to finish.
  const core::RunControl* control = nullptr;
};

/// Counters accumulate across calls sharing one ContractStats (peak_elems
/// maxes); drivers that contract many same-topology networks report their
/// aggregate through a single struct.
struct ContractStats {
  std::size_t num_pairwise = 0;     // pairwise matmul kernel invocations performed
  std::size_t peak_elems = 0;       // largest intermediate buffer produced
  double elapsed_seconds = 0.0;     // total time planning + contracting
  std::size_t plans_compiled = 0;   // contraction plans compiled (topology planning)
  std::size_t plan_executions = 0;  // plan replays (one per network contraction / batched term)
  std::size_t plan_reuse_hits = 0;  // replays that reused an already-executed plan
  /// Complex multiply-add operations executed: sum of m*k*n over every
  /// kernel invocation (batched replay counts the slices it actually ran,
  /// so deduplicated/broadcast work is visible as *missing* flops).
  std::size_t flops = 0;
  /// Modeled memory traffic of the executed steps, in bytes: operand reads
  /// (3x for operands that go through a permutation copy), output zero-fill
  /// + write, and the final output materialization. Together with `flops`
  /// this records the arithmetic intensity of a run.
  std::size_t bytes_moved = 0;
  /// Session-level plan-cache accounting (core::PlanCache): lookups served
  /// from the cache vs lookups that had to compile a template or batched
  /// plan. Zero when the sweep ran without a cache. Cached calls report
  /// plans_compiled == 0 alongside plan_cache_hits > 0, which is how the
  /// bench ladder verifies the recompilation actually disappeared.
  std::size_t plan_cache_hits = 0;
  std::size_t plan_cache_misses = 0;
  /// Kernel invocations by dispatched instruction-set tier
  /// (tensor/kernels.hpp). kernels_scalar + kernels_avx2 + kernels_avx512
  /// == num_pairwise for plan-executor work; which bucket fills records
  /// what cpuid + NOISIM_KERNELS actually selected -- every tier computes
  /// identical bits, so these are the only observable difference. Paired
  /// with `flops` and `elapsed_seconds` they give effective GFLOP/s
  /// (bench::stats_json reports it directly).
  std::size_t kernels_scalar = 0;
  std::size_t kernels_avx2 = 0;
  std::size_t kernels_avx512 = 0;
  /// Portfolio accounting, indexed by static_cast<std::size_t>(strategy):
  /// compiles whose winning schedule came from each strategy, and the
  /// summed flop estimate of each strategy's best candidate schedule per
  /// compile (0 while a strategy never produced a feasible schedule --
  /// skipped, memory-out, or not in the portfolio subset). Together they
  /// record which orders actually win and by how much, which is what
  /// bench_ablation_orders gates on.
  std::array<std::size_t, kNumOrderStrategies> strategy_chosen{};
  std::array<std::size_t, kNumOrderStrategies> strategy_flops{};

  /// Fold another record into this one (counters add, peaks max) -- used
  /// to aggregate per-worker stats deterministically.
  void merge(const ContractStats& o) {
    num_pairwise += o.num_pairwise;
    peak_elems = peak_elems > o.peak_elems ? peak_elems : o.peak_elems;
    elapsed_seconds += o.elapsed_seconds;
    plans_compiled += o.plans_compiled;
    plan_executions += o.plan_executions;
    plan_reuse_hits += o.plan_reuse_hits;
    flops += o.flops;
    bytes_moved += o.bytes_moved;
    plan_cache_hits += o.plan_cache_hits;
    plan_cache_misses += o.plan_cache_misses;
    kernels_scalar += o.kernels_scalar;
    kernels_avx2 += o.kernels_avx2;
    kernels_avx512 += o.kernels_avx512;
    for (std::size_t s = 0; s < kNumOrderStrategies; ++s) {
      strategy_chosen[s] += o.strategy_chosen[s];
      strategy_flops[s] += o.strategy_flops[s];
    }
  }
};

/// Contract the whole network down to a single tensor whose axes are the
/// network's open edges in ascending edge-id order.
tsr::Tensor contract_network(const Network& net, const ContractOptions& opts = {},
                             ContractStats* stats = nullptr);

/// Contract a closed network (no open edges) to its scalar value.
cplx contract_to_scalar(const Network& net, const ContractOptions& opts = {},
                        ContractStats* stats = nullptr);

}  // namespace noisim::tn
