#pragma once
// OpenQASM 2.0 interoperability (subset).
//
// Export writes any noisim circuit as a qelib1-style program (gates without
// a native QASM spelling are decomposed or emitted as comments+unitaries are
// rejected -- see to_qasm). Import parses the common single-register subset:
// qreg, the 1-qubit gates of Table I, cx/cz/... and rotation gates with
// constant-expression angles (multiples and fractions of pi).
//
// This is the interchange path to run circuits from Qiskit/Cirq exports
// through the paper's algorithm.

#include <string>

#include "circuit/circuit.hpp"

namespace noisim::qc {

/// Serialize to OpenQASM 2.0. Throws LinalgError for gates with no QASM
/// spelling (U1q/U2q custom matrices).
std::string to_qasm(const Circuit& c);

/// Parse an OpenQASM 2.0 program (single quantum register, the gate subset
/// produced by to_qasm plus id/s/sdg/t/tdg/x/y/z/h/rx/ry/rz/u1/cx/cz/cp/
/// crz/rzz/swap). Comments and barriers are ignored; classical registers
/// and measurements are rejected.
Circuit from_qasm(const std::string& text);

}  // namespace noisim::qc
