#pragma once
// Circuit container: an ordered gate list over n qubits.
//
// Circuits are plain value types; composition, adjoint and statistics are
// the only operations -- simulation lives in sim/, tn/ and core/.

#include <cstddef>
#include <vector>

#include "circuit/gate.hpp"

namespace noisim::qc {

class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(int num_qubits);

  int num_qubits() const { return n_; }
  const std::vector<Gate>& gates() const { return gates_; }
  std::size_t size() const { return gates_.size(); }

  /// Append a gate; qubits must be within range.
  Circuit& add(Gate g);

  /// Append all gates of another circuit of the same width.
  Circuit& append(const Circuit& other);

  /// Circuit implementing the inverse: gates reversed and adjointed.
  Circuit adjoint() const;

  /// ASAP-layered circuit depth (gates on disjoint qubits share a layer).
  std::size_t depth() const;

  /// Number of 2-qubit gates.
  std::size_t two_qubit_count() const;

 private:
  int n_ = 0;
  std::vector<Gate> gates_;
};

/// Full 2^n x 2^n unitary of a small circuit (n <= 12; testing/reference).
la::Matrix circuit_unitary(const Circuit& c);

}  // namespace noisim::qc
