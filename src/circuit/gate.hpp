#pragma once
// Quantum gates: the operations of Table I plus the two-qubit gates used by
// the paper's benchmark families (CZ for QAOA, Givens rotations for HF-VQE,
// fSim / sqrt-Pauli gates for the supremacy circuits).
//
// A Gate stores its kind, target qubits and parameters; matrix() returns the
// 2x2 (1-qubit) or 4x4 (2-qubit) unitary, with qubits[0] the most
// significant index of the 4x4 matrix.

#include <array>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace noisim::qc {

enum class GateKind {
  // 1-qubit
  I,
  H,
  X,
  Y,
  Z,
  S,
  Sdg,
  T,
  Tdg,
  SqrtX,   // X^(1/2), used by supremacy circuits
  SqrtY,   // Y^(1/2)
  SqrtW,   // W^(1/2), W = (X + Y)/sqrt(2)
  Rx,      // exp(-i theta X / 2)
  Ry,
  Rz,
  Phase,   // diag(1, e^{i phi})
  U1q,     // arbitrary user 2x2 (not necessarily unitary; used for noise-term insertions)
  // 2-qubit
  CZ,
  CX,      // control = qubits[0]
  CPhase,  // diag(1,1,1,e^{i phi})
  ZZ,      // exp(-i gamma Z(x)Z / 2)
  FSim,    // fSim(theta, phi)
  Givens,  // planar rotation on {|01>,|10>}
  CU,      // controlled arbitrary 2x2
  U2q,     // arbitrary user 4x4
};

struct Gate {
  GateKind kind = GateKind::I;
  std::array<int, 2> qubits{-1, -1};
  std::vector<double> params;
  la::Matrix custom;  // payload for U1q / U2q / CU

  int num_qubits() const { return qubits[1] < 0 ? 1 : 2; }
  bool acts_on(int q) const { return qubits[0] == q || qubits[1] == q; }

  /// The gate's (2x2 or 4x4) matrix; qubits[0] indexes the high-order bit.
  la::Matrix matrix() const;

  /// Gate implementing the adjoint (inverse for unitary kinds). Kinds with
  /// no named inverse fall back to a U1q/U2q gate holding the adjoint matrix.
  Gate adjoint() const;

  /// Human-readable name, e.g. "Rz(0.5) q3" or "CZ q0,q1".
  std::string description() const;

  bool same_qubits(const Gate& o) const { return qubits == o.qubits; }
};

// --- 1-qubit factories ------------------------------------------------------
Gate h(int q);
Gate x(int q);
Gate y(int q);
Gate z(int q);
Gate s(int q);
Gate sdg(int q);
Gate t(int q);
Gate tdg(int q);
Gate sqrt_x(int q);
Gate sqrt_y(int q);
Gate sqrt_w(int q);
Gate rx(int q, double theta);
Gate ry(int q, double theta);
Gate rz(int q, double theta);
Gate phase(int q, double phi);
Gate u1q(int q, la::Matrix m);

// --- 2-qubit factories ------------------------------------------------------
Gate cz(int a, int b);
Gate cx(int control, int target);
Gate cphase(int a, int b, double phi);
Gate zz(int a, int b, double gamma);
Gate fsim(int a, int b, double theta, double phi);
Gate givens(int a, int b, double theta);
Gate cu(int control, int target, la::Matrix u);
Gate u2q(int a, int b, la::Matrix m);

/// True iff b equals a's inverse on the same qubits (matrix product == I).
bool is_inverse_pair(const Gate& a, const Gate& b);

}  // namespace noisim::qc
