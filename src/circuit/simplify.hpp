#pragma once
// Peephole circuit simplification: inverse-pair cancellation modulo
// disjoint-support commutation.
//
// Why this matters for the paper: Table IV evaluates amplitudes of the form
// <0| U_ideal^dagger C' |0> where C' is the ideal circuit with a handful of
// 1-qubit noise-term insertions. Concatenating C' with the reversed adjoint
// of U_ideal produces a gate list in which every gate outside the light cone
// of the insertions meets its own inverse; cancelling those pairs shrinks a
// ~2d-gate network down to the insertions' light cones, which is exactly the
// reduction that makes the paper's level sweeps tractable.

#include <vector>

#include "circuit/circuit.hpp"

namespace noisim::qc {

/// Repeatedly remove gate pairs (g_i, g_j), i < j, where g_j is the exact
/// inverse of g_i on the same qubits and every gate between them acts on
/// disjoint qubits (hence commutes with g_i). Runs to a fixpoint.
std::vector<Gate> cancel_inverse_pairs(std::vector<Gate> gates);

/// Convenience overload operating on a Circuit.
Circuit cancel_inverse_pairs(const Circuit& c);

/// Qubits reachable backwards from `seeds` through the gate list
/// (the light cone); used for diagnostics and tests.
std::vector<int> light_cone(const std::vector<Gate>& gates, const std::vector<int>& seeds);

}  // namespace noisim::qc
