#include "circuit/circuit.hpp"

#include <algorithm>

namespace noisim::qc {

Circuit::Circuit(int num_qubits) : n_(num_qubits) {
  la::detail::require(num_qubits > 0, "Circuit: need at least one qubit");
}

Circuit& Circuit::add(Gate g) {
  la::detail::require(g.qubits[0] >= 0 && g.qubits[0] < n_, "Circuit::add: qubit out of range");
  la::detail::require(g.qubits[1] < n_, "Circuit::add: qubit out of range");
  gates_.push_back(std::move(g));
  return *this;
}

Circuit& Circuit::append(const Circuit& other) {
  la::detail::require(other.n_ == n_, "Circuit::append: width mismatch");
  gates_.insert(gates_.end(), other.gates_.begin(), other.gates_.end());
  return *this;
}

Circuit Circuit::adjoint() const {
  Circuit out(n_);
  out.gates_.reserve(gates_.size());
  for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) out.gates_.push_back(it->adjoint());
  return out;
}

std::size_t Circuit::depth() const {
  std::vector<std::size_t> layer(static_cast<std::size_t>(n_), 0);
  std::size_t depth = 0;
  for (const Gate& g : gates_) {
    std::size_t at = layer[static_cast<std::size_t>(g.qubits[0])];
    if (g.qubits[1] >= 0) at = std::max(at, layer[static_cast<std::size_t>(g.qubits[1])]);
    ++at;
    layer[static_cast<std::size_t>(g.qubits[0])] = at;
    if (g.qubits[1] >= 0) layer[static_cast<std::size_t>(g.qubits[1])] = at;
    depth = std::max(depth, at);
  }
  return depth;
}

std::size_t Circuit::two_qubit_count() const {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(), [](const Gate& g) { return g.num_qubits() == 2; }));
}

la::Matrix circuit_unitary(const Circuit& c) {
  la::detail::require(c.num_qubits() <= 12, "circuit_unitary: too many qubits for a dense unitary");
  const std::size_t dim = std::size_t{1} << c.num_qubits();
  la::Matrix u = la::Matrix::identity(dim);

  const int n = c.num_qubits();
  for (const Gate& g : c.gates()) {
    // Lift the gate to the full space: for each computational basis column,
    // scatter through the gate matrix on its qubit(s). Qubit 0 is the most
    // significant bit, matching kron(q0, q1, ...).
    const la::Matrix gm = g.matrix();
    la::Matrix lifted(dim, dim);
    if (g.num_qubits() == 1) {
      const std::size_t bit = std::size_t{1} << (n - 1 - g.qubits[0]);
      for (std::size_t col = 0; col < dim; ++col) {
        const std::size_t b = (col & bit) ? 1 : 0;
        for (std::size_t rb = 0; rb < 2; ++rb) {
          const std::size_t row = (col & ~bit) | (rb ? bit : 0);
          lifted(row, col) += gm(rb, b);
        }
      }
    } else {
      const std::size_t bit_a = std::size_t{1} << (n - 1 - g.qubits[0]);
      const std::size_t bit_b = std::size_t{1} << (n - 1 - g.qubits[1]);
      for (std::size_t col = 0; col < dim; ++col) {
        const std::size_t in = ((col & bit_a) ? 2 : 0) | ((col & bit_b) ? 1 : 0);
        for (std::size_t out = 0; out < 4; ++out) {
          const std::size_t row =
              (col & ~(bit_a | bit_b)) | ((out & 2) ? bit_a : 0) | ((out & 1) ? bit_b : 0);
          lifted(row, col) += gm(out, in);
        }
      }
    }
    u = lifted * u;
  }
  return u;
}

}  // namespace noisim::qc
