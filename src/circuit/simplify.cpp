#include "circuit/simplify.hpp"

#include <algorithm>

namespace noisim::qc {

namespace {

bool disjoint(const Gate& a, const Gate& b) {
  for (int qa : a.qubits) {
    if (qa < 0) continue;
    if (b.acts_on(qa)) return false;
  }
  return true;
}

}  // namespace

std::vector<Gate> cancel_inverse_pairs(std::vector<Gate> gates) {
  std::vector<bool> removed(gates.size(), false);

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < gates.size(); ++i) {
      if (removed[i]) continue;
      // Scan forward for the first gate sharing a qubit with gates[i];
      // everything in between commutes with it by disjointness.
      for (std::size_t j = i + 1; j < gates.size(); ++j) {
        if (removed[j]) continue;
        if (disjoint(gates[i], gates[j])) continue;
        if (is_inverse_pair(gates[i], gates[j])) {
          removed[i] = removed[j] = true;
          changed = true;
        }
        break;  // blocked (or cancelled); move to next i either way
      }
    }
  }

  std::vector<Gate> out;
  out.reserve(gates.size());
  for (std::size_t i = 0; i < gates.size(); ++i)
    if (!removed[i]) out.push_back(std::move(gates[i]));
  return out;
}

Circuit cancel_inverse_pairs(const Circuit& c) {
  Circuit out(c.num_qubits());
  for (Gate& g : cancel_inverse_pairs(c.gates())) out.add(std::move(g));
  return out;
}

std::vector<int> light_cone(const std::vector<Gate>& gates, const std::vector<int>& seeds) {
  std::vector<bool> in_cone;
  for (int q : seeds) {
    if (q >= static_cast<int>(in_cone.size())) in_cone.resize(static_cast<std::size_t>(q) + 1);
    in_cone[static_cast<std::size_t>(q)] = true;
  }
  auto touch = [&](int q) {
    if (q < 0) return false;
    if (q >= static_cast<int>(in_cone.size())) in_cone.resize(static_cast<std::size_t>(q) + 1);
    return static_cast<bool>(in_cone[static_cast<std::size_t>(q)]);
  };

  // Walk backwards: a gate is in the cone if it touches a cone qubit, and
  // then drags its other qubit in.
  for (auto it = gates.rbegin(); it != gates.rend(); ++it) {
    const bool hit = touch(it->qubits[0]) || touch(it->qubits[1]);
    if (hit) {
      for (int q : it->qubits)
        if (q >= 0) in_cone[static_cast<std::size_t>(q)] = true;
    }
  }

  std::vector<int> cone;
  for (std::size_t q = 0; q < in_cone.size(); ++q)
    if (in_cone[q]) cone.push_back(static_cast<int>(q));
  return cone;
}

}  // namespace noisim::qc
