#include "circuit/gate.hpp"

#include <cmath>
#include <numbers>
#include <sstream>

namespace noisim::qc {

namespace {

constexpr cplx kI{0.0, 1.0};

la::Matrix mat2(cplx a, cplx b, cplx c, cplx d) { return la::Matrix{{a, b}, {c, d}}; }

la::Matrix diag4(cplx a, cplx b, cplx c, cplx d) {
  la::Matrix m(4, 4);
  m(0, 0) = a;
  m(1, 1) = b;
  m(2, 2) = c;
  m(3, 3) = d;
  return m;
}

double param(const Gate& g, std::size_t i) {
  la::detail::require(i < g.params.size(), "Gate: missing parameter");
  return g.params[i];
}

}  // namespace

la::Matrix Gate::matrix() const {
  static const double inv_sqrt2 = 1.0 / std::numbers::sqrt2;
  switch (kind) {
    case GateKind::I:
      return la::Matrix::identity(2);
    case GateKind::H:
      return mat2(inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2);
    case GateKind::X:
      return mat2(0, 1, 1, 0);
    case GateKind::Y:
      return mat2(0, -kI, kI, 0);
    case GateKind::Z:
      return mat2(1, 0, 0, -1);
    case GateKind::S:
      return mat2(1, 0, 0, kI);
    case GateKind::Sdg:
      return mat2(1, 0, 0, -kI);
    case GateKind::T:
      return mat2(1, 0, 0, std::polar(1.0, std::numbers::pi / 4));
    case GateKind::Tdg:
      return mat2(1, 0, 0, std::polar(1.0, -std::numbers::pi / 4));
    case GateKind::SqrtX: {
      const cplx p{0.5, 0.5}, m{0.5, -0.5};
      return mat2(p, m, m, p);
    }
    case GateKind::SqrtY: {
      const cplx p{0.5, 0.5};
      return mat2(p, -p, p, p);
    }
    case GateKind::SqrtW: {
      // Principal square root of W = (X + Y)/sqrt(2) (supremacy circuits):
      // W is a Hermitian involution, so sqrt(W) = (1+i)/2 I + (1-i)/2 W.
      const cplx a{0.5, 0.5};
      return mat2(a, cplx{0.0, -inv_sqrt2}, cplx{inv_sqrt2, 0.0}, a);
    }
    case GateKind::Rx: {
      const double th = param(*this, 0) / 2;
      return mat2(std::cos(th), -kI * std::sin(th), -kI * std::sin(th), std::cos(th));
    }
    case GateKind::Ry: {
      const double th = param(*this, 0) / 2;
      return mat2(std::cos(th), -std::sin(th), std::sin(th), std::cos(th));
    }
    case GateKind::Rz: {
      const double th = param(*this, 0) / 2;
      return mat2(std::polar(1.0, -th), 0, 0, std::polar(1.0, th));
    }
    case GateKind::Phase:
      return mat2(1, 0, 0, std::polar(1.0, param(*this, 0)));
    case GateKind::U1q:
      return custom;
    case GateKind::CZ:
      return diag4(1, 1, 1, -1);
    case GateKind::CX: {
      la::Matrix m(4, 4);
      m(0, 0) = m(1, 1) = 1;
      m(2, 3) = m(3, 2) = 1;
      return m;
    }
    case GateKind::CPhase:
      return diag4(1, 1, 1, std::polar(1.0, param(*this, 0)));
    case GateKind::ZZ: {
      const double g = param(*this, 0) / 2;
      const cplx e_m = std::polar(1.0, -g), e_p = std::polar(1.0, g);
      return diag4(e_m, e_p, e_p, e_m);
    }
    case GateKind::FSim: {
      const double th = param(*this, 0), phi = param(*this, 1);
      la::Matrix m(4, 4);
      m(0, 0) = 1;
      m(1, 1) = std::cos(th);
      m(1, 2) = -kI * std::sin(th);
      m(2, 1) = -kI * std::sin(th);
      m(2, 2) = std::cos(th);
      m(3, 3) = std::polar(1.0, -phi);
      return m;
    }
    case GateKind::Givens: {
      const double th = param(*this, 0);
      la::Matrix m(4, 4);
      m(0, 0) = m(3, 3) = 1;
      m(1, 1) = std::cos(th);
      m(1, 2) = -std::sin(th);
      m(2, 1) = std::sin(th);
      m(2, 2) = std::cos(th);
      return m;
    }
    case GateKind::CU: {
      la::Matrix m(4, 4);
      m(0, 0) = m(1, 1) = 1;
      m(2, 2) = custom(0, 0);
      m(2, 3) = custom(0, 1);
      m(3, 2) = custom(1, 0);
      m(3, 3) = custom(1, 1);
      return m;
    }
    case GateKind::U2q:
      return custom;
  }
  la::detail::fail("Gate::matrix: unknown kind");
}

Gate Gate::adjoint() const {
  Gate g = *this;
  switch (kind) {
    case GateKind::I:
    case GateKind::H:
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
    case GateKind::CZ:
    case GateKind::CX:
      return g;  // self-inverse
    case GateKind::S:
      g.kind = GateKind::Sdg;
      return g;
    case GateKind::Sdg:
      g.kind = GateKind::S;
      return g;
    case GateKind::T:
      g.kind = GateKind::Tdg;
      return g;
    case GateKind::Tdg:
      g.kind = GateKind::T;
      return g;
    case GateKind::Rx:
    case GateKind::Ry:
    case GateKind::Rz:
    case GateKind::Phase:
    case GateKind::CPhase:
    case GateKind::ZZ:
    case GateKind::Givens:
      g.params[0] = -g.params[0];
      return g;
    case GateKind::FSim:
      g.params[0] = -g.params[0];
      g.params[1] = -g.params[1];
      return g;
    case GateKind::SqrtX:
    case GateKind::SqrtY:
    case GateKind::SqrtW:
      g.kind = GateKind::U1q;
      g.custom = matrix().adjoint();
      return g;
    case GateKind::CU:
      g.custom = custom.adjoint();
      return g;
    case GateKind::U1q:
    case GateKind::U2q:
      g.custom = custom.adjoint();
      return g;
  }
  la::detail::fail("Gate::adjoint: unknown kind");
}

std::string Gate::description() const {
  static const char* names[] = {"I",  "H",  "X",     "Y",     "Z",     "S",      "Sdg",
                                "T",  "Tdg", "SqrtX", "SqrtY", "SqrtW", "Rx",     "Ry",
                                "Rz", "Phase", "U1q", "CZ",    "CX",    "CPhase", "ZZ",
                                "FSim", "Givens", "CU", "U2q"};
  std::ostringstream os;
  os << names[static_cast<int>(kind)];
  if (!params.empty()) {
    os << "(";
    for (std::size_t i = 0; i < params.size(); ++i) os << (i ? "," : "") << params[i];
    os << ")";
  }
  os << " q" << qubits[0];
  if (qubits[1] >= 0) os << ",q" << qubits[1];
  return os.str();
}

namespace {
Gate make1(GateKind k, int q, std::vector<double> p = {}, la::Matrix m = {}) {
  la::detail::require(q >= 0, "gate: negative qubit");
  Gate g;
  g.kind = k;
  g.qubits = {q, -1};
  g.params = std::move(p);
  g.custom = std::move(m);
  return g;
}
Gate make2(GateKind k, int a, int b, std::vector<double> p = {}, la::Matrix m = {}) {
  la::detail::require(a >= 0 && b >= 0 && a != b, "gate: invalid qubit pair");
  Gate g;
  g.kind = k;
  g.qubits = {a, b};
  g.params = std::move(p);
  g.custom = std::move(m);
  return g;
}
}  // namespace

Gate h(int q) { return make1(GateKind::H, q); }
Gate x(int q) { return make1(GateKind::X, q); }
Gate y(int q) { return make1(GateKind::Y, q); }
Gate z(int q) { return make1(GateKind::Z, q); }
Gate s(int q) { return make1(GateKind::S, q); }
Gate sdg(int q) { return make1(GateKind::Sdg, q); }
Gate t(int q) { return make1(GateKind::T, q); }
Gate tdg(int q) { return make1(GateKind::Tdg, q); }
Gate sqrt_x(int q) { return make1(GateKind::SqrtX, q); }
Gate sqrt_y(int q) { return make1(GateKind::SqrtY, q); }
Gate sqrt_w(int q) { return make1(GateKind::SqrtW, q); }
Gate rx(int q, double theta) { return make1(GateKind::Rx, q, {theta}); }
Gate ry(int q, double theta) { return make1(GateKind::Ry, q, {theta}); }
Gate rz(int q, double theta) { return make1(GateKind::Rz, q, {theta}); }
Gate phase(int q, double phi) { return make1(GateKind::Phase, q, {phi}); }

Gate u1q(int q, la::Matrix m) {
  la::detail::require(m.rows() == 2 && m.cols() == 2, "u1q: matrix must be 2x2");
  return make1(GateKind::U1q, q, {}, std::move(m));
}

Gate cz(int a, int b) { return make2(GateKind::CZ, a, b); }
Gate cx(int control, int target) { return make2(GateKind::CX, control, target); }
Gate cphase(int a, int b, double phi) { return make2(GateKind::CPhase, a, b, {phi}); }
Gate zz(int a, int b, double gamma) { return make2(GateKind::ZZ, a, b, {gamma}); }
Gate fsim(int a, int b, double theta, double phi) {
  return make2(GateKind::FSim, a, b, {theta, phi});
}
Gate givens(int a, int b, double theta) { return make2(GateKind::Givens, a, b, {theta}); }

Gate cu(int control, int target, la::Matrix u) {
  la::detail::require(u.rows() == 2 && u.cols() == 2, "cu: matrix must be 2x2");
  return make2(GateKind::CU, control, target, {}, std::move(u));
}

Gate u2q(int a, int b, la::Matrix m) {
  la::detail::require(m.rows() == 4 && m.cols() == 4, "u2q: matrix must be 4x4");
  return make2(GateKind::U2q, a, b, {}, std::move(m));
}

bool is_inverse_pair(const Gate& a, const Gate& b) {
  if (a.num_qubits() != b.num_qubits()) return false;
  if (!a.same_qubits(b)) return false;
  return (a.matrix() * b.matrix()).is_identity(1e-12);
}

}  // namespace noisim::qc
