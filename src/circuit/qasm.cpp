#include "circuit/qasm.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <numbers>
#include <sstream>
#include <string>

namespace noisim::qc {

namespace {

constexpr double kPi = std::numbers::pi;

std::string fmt_angle(double a) {
  std::ostringstream os;
  os.precision(17);
  os << a;
  return os.str();
}

}  // namespace

std::string to_qasm(const Circuit& c) {
  std::ostringstream os;
  os << "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[" << c.num_qubits() << "];\n";
  for (const Gate& g : c.gates()) {
    const int a = g.qubits[0], b = g.qubits[1];
    switch (g.kind) {
      case GateKind::I: os << "id q[" << a << "];\n"; break;
      case GateKind::H: os << "h q[" << a << "];\n"; break;
      case GateKind::X: os << "x q[" << a << "];\n"; break;
      case GateKind::Y: os << "y q[" << a << "];\n"; break;
      case GateKind::Z: os << "z q[" << a << "];\n"; break;
      case GateKind::S: os << "s q[" << a << "];\n"; break;
      case GateKind::Sdg: os << "sdg q[" << a << "];\n"; break;
      case GateKind::T: os << "t q[" << a << "];\n"; break;
      case GateKind::Tdg: os << "tdg q[" << a << "];\n"; break;
      case GateKind::SqrtX: os << "rx(" << fmt_angle(kPi / 2) << ") q[" << a << "];\n"; break;
      case GateKind::SqrtY: os << "ry(" << fmt_angle(kPi / 2) << ") q[" << a << "];\n"; break;
      case GateKind::Rx: os << "rx(" << fmt_angle(g.params[0]) << ") q[" << a << "];\n"; break;
      case GateKind::Ry: os << "ry(" << fmt_angle(g.params[0]) << ") q[" << a << "];\n"; break;
      case GateKind::Rz: os << "rz(" << fmt_angle(g.params[0]) << ") q[" << a << "];\n"; break;
      case GateKind::Phase: os << "u1(" << fmt_angle(g.params[0]) << ") q[" << a << "];\n"; break;
      case GateKind::CZ: os << "cz q[" << a << "],q[" << b << "];\n"; break;
      case GateKind::CX: os << "cx q[" << a << "],q[" << b << "];\n"; break;
      case GateKind::CPhase:
        os << "cp(" << fmt_angle(g.params[0]) << ") q[" << a << "],q[" << b << "];\n";
        break;
      case GateKind::ZZ:
        os << "rzz(" << fmt_angle(g.params[0]) << ") q[" << a << "],q[" << b << "];\n";
        break;
      case GateKind::Givens:
      case GateKind::SqrtW:
      case GateKind::FSim:
      case GateKind::CU:
      case GateKind::U1q:
      case GateKind::U2q:
        la::detail::fail("to_qasm: gate kind has no QASM 2.0 spelling: " + g.description());
    }
  }
  return os.str();
}

namespace {

/// Minimal tokenizer/parser state over the program text.
struct Parser {
  const std::string& text;
  std::size_t pos = 0;

  bool eof() const { return pos >= text.size(); }

  void skip_ws() {
    while (!eof()) {
      if (std::isspace(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      } else if (text.compare(pos, 2, "//") == 0) {
        while (!eof() && text[pos] != '\n') ++pos;
      } else if (text.compare(pos, 2, "/*") == 0) {
        pos += 2;
        while (!eof() && text.compare(pos, 2, "*/") != 0) ++pos;
        la::detail::require(!eof(), "qasm: unterminated block comment");
        pos += 2;
      } else {
        break;
      }
    }
  }

  std::string ident() {
    skip_ws();
    std::size_t start = pos;
    while (!eof() && (std::isalnum(static_cast<unsigned char>(text[pos])) || text[pos] == '_'))
      ++pos;
    return text.substr(start, pos - start);
  }

  bool try_consume(char c) {
    skip_ws();
    if (!eof() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  void expect(char c, const char* ctx) {
    la::detail::require(try_consume(c), ctx);
  }

  /// Constant arithmetic expression: numbers, pi, + - * / and parentheses.
  double expr() { return parse_sum(); }

  double parse_sum() {
    double v = parse_product();
    while (true) {
      skip_ws();
      if (try_consume('+'))
        v += parse_product();
      else if (try_consume('-'))
        v -= parse_product();
      else
        return v;
    }
  }

  double parse_product() {
    double v = parse_atom();
    while (true) {
      skip_ws();
      if (try_consume('*'))
        v *= parse_atom();
      else if (try_consume('/'))
        v /= parse_atom();
      else
        return v;
    }
  }

  double parse_atom() {
    skip_ws();
    if (try_consume('(')) {
      const double v = expr();
      expect(')', "qasm: expected ')'");
      return v;
    }
    if (try_consume('-')) return -parse_atom();
    if (try_consume('+')) return parse_atom();  // stod accepted a leading '+'; keep that
    if (text.compare(pos, 2, "pi") == 0) {
      pos += 2;
      return kPi;
    }
    // In-place parse (no substr copy, no std::stod exceptions escaping the
    // parser's LinalgError category).
    double v = 0.0;
    const auto [ptr, ec] = std::from_chars(text.data() + pos, text.data() + text.size(), v);
    if (ec != std::errc())
      la::detail::fail("qasm: expected number at position " + std::to_string(pos));
    pos = static_cast<std::size_t>(ptr - text.data());
    return v;
  }

  int qubit(const std::string& reg) {
    const std::string name = ident();
    la::detail::require(name == reg, "qasm: unknown register");
    expect('[', "qasm: expected '['");
    const double idx = parse_atom();
    expect(']', "qasm: expected ']'");
    // parse_atom accepts arbitrary reals; only exact machine-int values are
    // valid indices (fractions would silently truncate, huge values are UB
    // in the cast).
    la::detail::require(idx >= 0.0 && idx <= 2147483647.0 && idx == std::floor(idx),
                        "qasm: qubit index must be a non-negative integer");
    return static_cast<int>(idx);
  }
};

/// qelib1's generic single-qubit gate U(theta, phi, lambda).
la::Matrix u3_matrix(double theta, double phi, double lambda) {
  // cos/sin of theta/2 may be negative, so build e^{i*arg} explicitly
  // (std::polar requires a non-negative magnitude).
  const double c = std::cos(theta / 2), s = std::sin(theta / 2);
  const cplx eil{std::cos(lambda), std::sin(lambda)};
  const cplx eip{std::cos(phi), std::sin(phi)};
  la::Matrix m(2, 2);
  m(0, 0) = cplx{c, 0.0};
  m(0, 1) = -s * eil;
  m(1, 0) = s * eip;
  m(1, 1) = c * eip * eil;
  return m;
}

}  // namespace

Circuit from_qasm(const std::string& text) {
  Parser p{text};

  // Header.
  p.skip_ws();
  la::detail::require(p.ident() == "OPENQASM", "qasm: missing OPENQASM header");
  p.expr();  // version number
  p.expect(';', "qasm: expected ';' after version");
  p.skip_ws();
  if (text.compare(p.pos, 7, "include") == 0) {
    while (!p.eof() && text[p.pos] != ';') ++p.pos;
    p.expect(';', "qasm: expected ';' after include");
  }

  // Single quantum register.
  la::detail::require(p.ident() == "qreg", "qasm: expected qreg");
  const std::string reg = p.ident();
  p.expect('[', "qasm: expected '[' in qreg");
  const double width = p.parse_atom();
  la::detail::require(width >= 0.0 && width <= 2147483647.0 && width == std::floor(width),
                      "qasm: qreg size must be a non-negative integer");
  const int n = static_cast<int>(width);
  p.expect(']', "qasm: expected ']' in qreg");
  p.expect(';', "qasm: expected ';' after qreg");

  Circuit c(n);
  while (true) {
    p.skip_ws();
    if (p.eof()) break;
    const std::string op = p.ident();
    la::detail::require(!op.empty(), "qasm: unexpected character");
    if (op == "barrier") {  // ignore to ';'
      while (!p.eof() && text[p.pos] != ';') ++p.pos;
      p.expect(';', "qasm: expected ';' after barrier");
      continue;
    }
    la::detail::require(op != "creg" && op != "measure",
                        "qasm: classical registers/measurements unsupported");

    std::vector<double> params;
    if (p.try_consume('(')) {
      params.push_back(p.expr());
      while (p.try_consume(',')) params.push_back(p.expr());
      p.expect(')', "qasm: expected ')' after params");
    }
    std::vector<int> qs;
    qs.push_back(p.qubit(reg));
    while (p.try_consume(',')) qs.push_back(p.qubit(reg));
    p.expect(';', "qasm: expected ';' after statement");

    auto need = [&](std::size_t nq, std::size_t np) {
      la::detail::require(qs.size() == nq && params.size() == np,
                          "qasm: wrong arity for gate");
    };
    if (op == "id") { need(1, 0); /* identity: skip */ }
    else if (op == "h") { need(1, 0); c.add(h(qs[0])); }
    else if (op == "x") { need(1, 0); c.add(x(qs[0])); }
    else if (op == "y") { need(1, 0); c.add(y(qs[0])); }
    else if (op == "z") { need(1, 0); c.add(z(qs[0])); }
    else if (op == "s") { need(1, 0); c.add(s(qs[0])); }
    else if (op == "sdg") { need(1, 0); c.add(sdg(qs[0])); }
    else if (op == "t") { need(1, 0); c.add(t(qs[0])); }
    else if (op == "tdg") { need(1, 0); c.add(tdg(qs[0])); }
    else if (op == "rx") { need(1, 1); c.add(rx(qs[0], params[0])); }
    else if (op == "ry") { need(1, 1); c.add(ry(qs[0], params[0])); }
    else if (op == "rz") { need(1, 1); c.add(rz(qs[0], params[0])); }
    else if (op == "u1" || op == "p") { need(1, 1); c.add(phase(qs[0], params[0])); }
    else if (op == "cx" || op == "CX") { need(2, 0); c.add(cx(qs[0], qs[1])); }
    else if (op == "cz") { need(2, 0); c.add(cz(qs[0], qs[1])); }
    else if (op == "cp" || op == "cu1") { need(2, 1); c.add(cphase(qs[0], qs[1], params[0])); }
    else if (op == "crz") {
      need(2, 1);
      // crz(t) = cp(t) up to a phase on the control's |1> branch:
      // crz = rz(t/2) on target, conditioned; emit the exact qelib1 def.
      c.add(cx(qs[0], qs[1]));
      c.add(rz(qs[1], -params[0] / 2));
      c.add(cx(qs[0], qs[1]));
      c.add(rz(qs[1], params[0] / 2));
    }
    else if (op == "u3" || op == "u" || op == "U") {
      need(1, 3);
      c.add(u1q(qs[0], u3_matrix(params[0], params[1], params[2])));
    }
    else if (op == "u2") {
      need(1, 2);
      c.add(u1q(qs[0], u3_matrix(kPi / 2, params[0], params[1])));
    }
    else if (op == "rzz") { need(2, 1); c.add(zz(qs[0], qs[1], params[0])); }
    else if (op == "swap") {
      need(2, 0);
      c.add(cx(qs[0], qs[1]));
      c.add(cx(qs[1], qs[0]));
      c.add(cx(qs[0], qs[1]));
    }
    else {
      la::detail::fail("qasm: unsupported gate '" + op + "'");
    }
  }
  return c;
}

}  // namespace noisim::qc
