#include "mps/mps_trajectories.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace noisim::mps {

namespace {

double sample_once(const ch::NoisyCircuit& nc, std::uint64_t psi_bits, std::uint64_t v_bits,
                   std::mt19937_64& rng, const MpsOptions& opts) {
  MpsState state = MpsState::basis(nc.num_qubits(), psi_bits, opts);
  std::uniform_real_distribution<double> unif(0.0, 1.0);

  for (const ch::Op& op : nc.ops()) {
    if (const qc::Gate* g = std::get_if<qc::Gate>(&op)) {
      state.apply_gate(*g);
      continue;
    }
    const ch::NoiseOp& noise = std::get<ch::NoiseOp>(op);
    const auto& kraus = noise.channel.kraus();

    auto apply_kraus = [&](MpsState& s, std::size_t k) {
      if (noise.num_qubits() == 1)
        s.apply_1q(kraus[k], noise.qubit);
      else
        s.apply_2q(kraus[k], noise.qubit, noise.qubit2);
    };

    const double u = unif(rng);
    double cumulative = 0.0;
    std::size_t chosen = kraus.size() - 1;
    double p_chosen = 0.0;
    for (std::size_t k = 0; k < kraus.size(); ++k) {
      MpsState scratch = state;
      apply_kraus(scratch, k);
      const double pk = scratch.norm2();
      cumulative += pk;
      p_chosen = pk;
      if (u < cumulative) {
        chosen = k;
        break;
      }
    }
    apply_kraus(state, chosen);
    if (p_chosen > 0.0) {
      const double scale = 1.0 / std::sqrt(p_chosen);
      state.apply_1q(la::Matrix{{scale, 0.0}, {0.0, scale}}, noise.qubit);
    }
  }
  return std::norm(state.amplitude(v_bits));
}

}  // namespace

sim::TrajectoryResult trajectories_mps(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                       std::uint64_t v_bits, std::size_t samples,
                                       std::uint64_t seed, const sim::ParallelOptions& popts,
                                       const MpsOptions& opts) {
  return sim::run_trajectories(
      samples, seed,
      [&](std::mt19937_64& rng) { return sample_once(nc, psi_bits, v_bits, rng, opts); }, popts);
}

sim::TrajectoryCost mps_trajectory_cost(const ch::NoisyCircuit& nc, const MpsOptions& opts) {
  const int n = nc.num_qubits();
  // Worst-case bond dimension: exact needs 2^(ceil(n/2)), capped by opts.
  double chi = std::pow(2.0, std::min((n + 1) / 2, 60));
  chi = std::min(chi, static_cast<double>(std::max<std::size_t>(opts.max_bond, 1)));
  const double cost_1q = 4.0 * chi * chi;
  const double cost_2q_adj = 40.0 * chi * chi * chi;  // contract + SVD split
  // A pair at distance d is routed adjacent and back: 2 (d - 1) swaps, each
  // itself an adjacent 2-qubit op.
  auto cost_2q = [&](int a, int b) {
    const int d = std::abs(a - b);
    return cost_2q_adj * (1.0 + 2.0 * static_cast<double>(d > 0 ? d - 1 : 0));
  };

  sim::TrajectoryCost out;
  for (const ch::Op& op : nc.ops()) {
    if (const qc::Gate* g = std::get_if<qc::Gate>(&op)) {
      out.per_sample_flops +=
          g->num_qubits() == 1 ? cost_1q : cost_2q(g->qubits[0], g->qubits[1]);
      continue;
    }
    const ch::NoiseOp& noise = std::get<ch::NoiseOp>(op);
    const double apply =
        noise.num_qubits() == 1 ? cost_1q : cost_2q(noise.qubit, noise.qubit2);
    // Born sampling applies every candidate to a scratch copy (apply + norm),
    // then applies and renormalizes the winner.
    out.per_sample_flops +=
        (static_cast<double>(noise.channel.kraus().size()) + 2.0) * apply;
  }
  // Two live states (state + Born scratch), each ~ n tensors of 2 chi^2.
  out.peak_elems = static_cast<std::size_t>(4.0 * static_cast<double>(n) * chi * chi);
  return out;
}

sim::TrajectoryResult trajectories_mps(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                       std::uint64_t v_bits, std::size_t samples,
                                       std::mt19937_64& rng, const MpsOptions& opts) {
  // Zero samples is a well-defined (empty) estimate, not an error.
  if (samples == 0) return {};
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    const double f = sample_once(nc, psi_bits, v_bits, rng, opts);
    sum += f;
    sum_sq += f * f;
  }
  sim::TrajectoryResult out;
  out.samples = samples;
  out.mean = sum / static_cast<double>(samples);
  if (samples > 1) {
    const double var =
        (sum_sq - sum * sum / static_cast<double>(samples)) / static_cast<double>(samples - 1);
    out.std_error = std::sqrt(std::max(0.0, var) / static_cast<double>(samples));
  }
  return out;
}

}  // namespace noisim::mps
