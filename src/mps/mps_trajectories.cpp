#include "mps/mps_trajectories.hpp"

#include <cmath>

namespace noisim::mps {

namespace {

double sample_once(const ch::NoisyCircuit& nc, std::uint64_t psi_bits, std::uint64_t v_bits,
                   std::mt19937_64& rng, const MpsOptions& opts) {
  MpsState state = MpsState::basis(nc.num_qubits(), psi_bits, opts);
  std::uniform_real_distribution<double> unif(0.0, 1.0);

  for (const ch::Op& op : nc.ops()) {
    if (const qc::Gate* g = std::get_if<qc::Gate>(&op)) {
      state.apply_gate(*g);
      continue;
    }
    const ch::NoiseOp& noise = std::get<ch::NoiseOp>(op);
    const auto& kraus = noise.channel.kraus();

    auto apply_kraus = [&](MpsState& s, std::size_t k) {
      if (noise.num_qubits() == 1)
        s.apply_1q(kraus[k], noise.qubit);
      else
        s.apply_2q(kraus[k], noise.qubit, noise.qubit2);
    };

    const double u = unif(rng);
    double cumulative = 0.0;
    std::size_t chosen = kraus.size() - 1;
    double p_chosen = 0.0;
    for (std::size_t k = 0; k < kraus.size(); ++k) {
      MpsState scratch = state;
      apply_kraus(scratch, k);
      const double pk = scratch.norm2();
      cumulative += pk;
      p_chosen = pk;
      if (u < cumulative) {
        chosen = k;
        break;
      }
    }
    apply_kraus(state, chosen);
    if (p_chosen > 0.0) {
      const double scale = 1.0 / std::sqrt(p_chosen);
      state.apply_1q(la::Matrix{{scale, 0.0}, {0.0, scale}}, noise.qubit);
    }
  }
  return std::norm(state.amplitude(v_bits));
}

}  // namespace

sim::TrajectoryResult trajectories_mps(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                       std::uint64_t v_bits, std::size_t samples,
                                       std::uint64_t seed, const sim::ParallelOptions& popts,
                                       const MpsOptions& opts) {
  return sim::run_trajectories(
      samples, seed,
      [&](std::mt19937_64& rng) { return sample_once(nc, psi_bits, v_bits, rng, opts); }, popts);
}

sim::TrajectoryResult trajectories_mps(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                       std::uint64_t v_bits, std::size_t samples,
                                       std::mt19937_64& rng, const MpsOptions& opts) {
  // Zero samples is a well-defined (empty) estimate, not an error.
  if (samples == 0) return {};
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    const double f = sample_once(nc, psi_bits, v_bits, rng, opts);
    sum += f;
    sum_sq += f * f;
  }
  sim::TrajectoryResult out;
  out.samples = samples;
  out.mean = sum / static_cast<double>(samples);
  if (samples > 1) {
    const double var =
        (sum_sq - sum * sum / static_cast<double>(samples)) / static_cast<double>(samples - 1);
    out.std_error = std::sqrt(std::max(0.0, var) / static_cast<double>(samples));
  }
  return out;
}

}  // namespace noisim::mps
