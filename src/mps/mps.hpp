#pragma once
// Matrix product state simulator with SVD truncation.
//
// This implements the approximation family the paper's related work
// compares against (MPS [20], and the backbone of MPO/MPDO methods
// [21-23]): the state is a chain of rank-3 tensors [left, physical, right];
// two-qubit gates act on adjacent sites via contraction + truncated SVD,
// non-adjacent gates are routed with swap chains. The bond cap chi trades
// accuracy for time/memory -- the trade-off bench_ablation_mps quantifies
// against the paper's SVD-splitting approach.

#include <cstdint>

#include "circuit/circuit.hpp"
#include "tensor/tensor.hpp"

namespace noisim::mps {

struct MpsOptions {
  /// Bond-dimension cap (chi). Exact simulation needs up to 2^(n/2).
  std::size_t max_bond = 64;
  /// Relative singular-value cutoff: values below tol * s_max are dropped.
  double truncation_tol = 1e-14;
};

class MpsState {
 public:
  /// |0...0> on n qubits.
  explicit MpsState(int n, MpsOptions opts = {});
  /// Computational basis state (qubit 0 = most significant bit; for n > 64
  /// the leading qubits are |0>).
  static MpsState basis(int n, std::uint64_t bits, MpsOptions opts = {});

  int num_qubits() const { return n_; }
  const MpsOptions& options() const { return opts_; }

  /// Bond dimension between sites i and i+1.
  std::size_t bond_dim(int i) const;
  std::size_t max_bond_dim() const;

  /// Apply an arbitrary 2x2 matrix to qubit q (never truncates).
  void apply_1q(const la::Matrix& m, int q);
  /// Apply an arbitrary 4x4 matrix to qubits (a, b); a indexes the high
  /// bit. Non-adjacent pairs are routed with swap chains; truncation to
  /// max_bond applies at every SVD.
  void apply_2q(const la::Matrix& m, int a, int b);
  void apply_gate(const qc::Gate& g);
  void apply_circuit(const qc::Circuit& c);

  /// <bits|psi>.
  cplx amplitude(std::uint64_t bits) const;
  /// <this|other> (same width required).
  cplx inner(const MpsState& other) const;
  double norm2() const;
  void normalize();

  /// Total squared singular weight discarded by truncations so far;
  /// zero means the simulation has been exact.
  double truncation_weight() const { return truncated_weight_; }

  /// Dense amplitude vector (n <= 20; testing).
  la::Vector to_vector() const;

 private:
  void apply_2q_adjacent(const la::Matrix& m, int q);  // acts on (q, q+1)
  void swap_adjacent(int q);

  int n_;
  MpsOptions opts_;
  std::vector<tsr::Tensor> sites_;  // rank-3: [left, phys, right]
  double truncated_weight_ = 0.0;
};

}  // namespace noisim::mps
