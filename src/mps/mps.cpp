#include "mps/mps.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/svd.hpp"
#include "tensor/contract.hpp"

namespace noisim::mps {

namespace {

bool bit_of(std::uint64_t bits, int n, int q) {
  const int shift = n - 1 - q;
  return shift < 64 && ((bits >> shift) & 1);
}

la::Matrix swap_matrix() {
  la::Matrix m(4, 4);
  m(0, 0) = m(3, 3) = 1;
  m(1, 2) = m(2, 1) = 1;
  return m;
}

// Reverse the roles of the two qubits of a 4x4 matrix:
// out[(i2 i1), (j2 j1)] = in[(i1 i2), (j1 j2)].
la::Matrix reverse_qubit_roles(const la::Matrix& m) {
  la::Matrix out(4, 4);
  for (std::size_t i1 = 0; i1 < 2; ++i1)
    for (std::size_t i2 = 0; i2 < 2; ++i2)
      for (std::size_t j1 = 0; j1 < 2; ++j1)
        for (std::size_t j2 = 0; j2 < 2; ++j2)
          out(i2 * 2 + i1, j2 * 2 + j1) = m(i1 * 2 + i2, j1 * 2 + j2);
  return out;
}

}  // namespace

MpsState::MpsState(int n, MpsOptions opts) : n_(n), opts_(opts) {
  la::detail::require(n > 0, "MpsState: need at least one qubit");
  la::detail::require(opts_.max_bond >= 1, "MpsState: max_bond must be positive");
  sites_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    tsr::Tensor t({1, 2, 1});
    t.at({0, 0, 0}) = cplx{1.0, 0.0};
    sites_.push_back(std::move(t));
  }
}

MpsState MpsState::basis(int n, std::uint64_t bits, MpsOptions opts) {
  MpsState s(n, opts);
  for (int q = 0; q < n; ++q) {
    if (bit_of(bits, n, q)) {
      tsr::Tensor t({1, 2, 1});
      t.at({0, 1, 0}) = cplx{1.0, 0.0};
      s.sites_[static_cast<std::size_t>(q)] = std::move(t);
    }
  }
  return s;
}

std::size_t MpsState::bond_dim(int i) const {
  la::detail::require(i >= 0 && i + 1 < n_, "MpsState::bond_dim: out of range");
  return sites_[static_cast<std::size_t>(i)].dim(2);
}

std::size_t MpsState::max_bond_dim() const {
  std::size_t m = 1;
  for (int i = 0; i + 1 < n_; ++i) m = std::max(m, bond_dim(i));
  return m;
}

void MpsState::apply_1q(const la::Matrix& m, int q) {
  la::detail::require(m.rows() == 2 && m.cols() == 2, "MpsState::apply_1q: need 2x2");
  la::detail::require(q >= 0 && q < n_, "MpsState::apply_1q: qubit out of range");
  tsr::Tensor& site = sites_[static_cast<std::size_t>(q)];
  // [out, left, right] <- sum_i m[out, i] site[left, i, right], then reorder.
  site = tsr::contract(tsr::Tensor::from_matrix(m), {1}, site, {1}).permute({1, 0, 2});
}

void MpsState::apply_2q_adjacent(const la::Matrix& m, int q) {
  const auto qi = static_cast<std::size_t>(q);
  const std::size_t dl = sites_[qi].dim(0);
  const std::size_t dr = sites_[qi + 1].dim(2);

  // theta[l, p1, p2, r]
  tsr::Tensor theta = tsr::contract(sites_[qi], {2}, sites_[qi + 1], {0});
  // gate as [o1, o2, i1, i2]; apply -> [o1, o2, l, r] -> [l, o1, o2, r]
  tsr::Tensor g = tsr::Tensor::from_matrix(m).reshape({2, 2, 2, 2});
  theta = tsr::contract(g, {2, 3}, theta, {1, 2}).permute({2, 0, 1, 3});

  // SVD across the bond.
  const la::SvdResult svd = la::svd(theta.reshape({dl * 2, 2 * dr}).to_matrix());

  // Truncate: relative tolerance + hard cap.
  const double smax = svd.s.empty() ? 0.0 : svd.s.front();
  std::size_t keep = 0;
  for (double s : svd.s)
    if (s > opts_.truncation_tol * smax) ++keep;
  keep = std::max<std::size_t>(1, std::min(keep, opts_.max_bond));
  for (std::size_t i = keep; i < svd.s.size(); ++i) truncated_weight_ += svd.s[i] * svd.s[i];

  tsr::Tensor a({dl, 2, keep});
  for (std::size_t row = 0; row < dl * 2; ++row)
    for (std::size_t k = 0; k < keep; ++k) a[row * keep + k] = svd.u(row, k);
  tsr::Tensor b({keep, 2, dr});
  for (std::size_t k = 0; k < keep; ++k)
    for (std::size_t col = 0; col < 2 * dr; ++col)
      b[k * 2 * dr + col] = svd.s[k] * std::conj(svd.v(col, k));

  sites_[qi] = std::move(a);
  sites_[qi + 1] = std::move(b);
}

void MpsState::swap_adjacent(int q) { apply_2q_adjacent(swap_matrix(), q); }

void MpsState::apply_2q(const la::Matrix& m, int a, int b) {
  la::detail::require(m.rows() == 4 && m.cols() == 4, "MpsState::apply_2q: need 4x4");
  la::detail::require(a >= 0 && a < n_ && b >= 0 && b < n_ && a != b,
                      "MpsState::apply_2q: qubits out of range");
  la::Matrix gate = m;
  int lo = a, hi = b;
  if (lo > hi) {
    std::swap(lo, hi);
    gate = reverse_qubit_roles(gate);
  }
  // Route qubit `hi` down to lo+1 with swaps, apply, route back.
  for (int k = hi - 1; k > lo; --k) swap_adjacent(k);
  apply_2q_adjacent(gate, lo);
  for (int k = lo + 1; k < hi; ++k) swap_adjacent(k);
}

void MpsState::apply_gate(const qc::Gate& g) {
  if (g.num_qubits() == 1)
    apply_1q(g.matrix(), g.qubits[0]);
  else
    apply_2q(g.matrix(), g.qubits[0], g.qubits[1]);
}

void MpsState::apply_circuit(const qc::Circuit& c) {
  la::detail::require(c.num_qubits() == n_, "MpsState::apply_circuit: width mismatch");
  for (const qc::Gate& g : c.gates()) apply_gate(g);
}

cplx MpsState::amplitude(std::uint64_t bits) const {
  // Row vector sweep: v <- v * site[:, bit, :].
  std::vector<cplx> v{cplx{1.0, 0.0}};
  for (int q = 0; q < n_; ++q) {
    const tsr::Tensor& site = sites_[static_cast<std::size_t>(q)];
    const std::size_t dl = site.dim(0), dr = site.dim(2);
    const std::size_t bit = bit_of(bits, n_, q) ? 1 : 0;
    std::vector<cplx> next(dr, cplx{0.0, 0.0});
    for (std::size_t l = 0; l < dl; ++l) {
      if (v[l] == cplx{0.0, 0.0}) continue;
      for (std::size_t r = 0; r < dr; ++r) next[r] += v[l] * site.at({l, bit, r});
    }
    v = std::move(next);
  }
  return v[0];
}

cplx MpsState::inner(const MpsState& other) const {
  la::detail::require(n_ == other.n_, "MpsState::inner: width mismatch");
  // Transfer-matrix sweep: T[a, b] across the bond.
  tsr::Tensor t({1, 1});
  t[0] = cplx{1.0, 0.0};
  for (int q = 0; q < n_; ++q) {
    const tsr::Tensor bra = sites_[static_cast<std::size_t>(q)].conj();
    const tsr::Tensor& ket = other.sites_[static_cast<std::size_t>(q)];
    // T'[a', b'] = sum_{a,b,p} conj(A)[a, p, a'] T[a, b] B[b, p, b']
    tsr::Tensor ta = tsr::contract(t, {0}, bra, {0});       // [b, p, a']
    t = tsr::contract(ta, {0, 1}, ket, {0, 1});             // [a', b']
  }
  return t[0];
}

double MpsState::norm2() const { return inner(*this).real(); }

void MpsState::normalize() {
  const double n2 = norm2();
  la::detail::require(n2 > 0.0, "MpsState::normalize: zero state");
  const double scale = 1.0 / std::sqrt(n2);
  la::Matrix m{{scale, 0.0}, {0.0, scale}};
  apply_1q(m, 0);
}

la::Vector MpsState::to_vector() const {
  la::detail::require(n_ <= 20, "MpsState::to_vector: too many qubits");
  la::Vector out(std::size_t{1} << n_);
  for (std::uint64_t b = 0; b < out.size(); ++b) out[b] = amplitude(b);
  return out;
}

}  // namespace noisim::mps
