#pragma once
// Quantum trajectories on matrix product states: the MPS analogue of the
// paper's trajectories baseline, usable past the state-vector memory wall
// when bond dimensions stay moderate.

#include <cstdint>
#include <random>

#include "channels/noisy_circuit.hpp"
#include "mps/mps.hpp"
#include "sim/trajectories.hpp"

namespace noisim::mps {

/// Estimate <v|E(|psi><psi|)|v> with `samples` MPS trajectories. Kraus
/// operators are sampled with their exact Born probabilities (computed by
/// applying each candidate to a scratch copy). 2-qubit noise is supported.
sim::TrajectoryResult trajectories_mps(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                       std::uint64_t v_bits, std::size_t samples,
                                       std::mt19937_64& rng, const MpsOptions& opts = {});

/// Multithreaded variant on the shared engine (sim/parallel.hpp): same
/// estimator, reproducible for a fixed `seed` across thread counts.
sim::TrajectoryResult trajectories_mps(const ch::NoisyCircuit& nc, std::uint64_t psi_bits,
                                       std::uint64_t v_bits, std::size_t samples,
                                       std::uint64_t seed, const sim::ParallelOptions& popts,
                                       const MpsOptions& opts = {});

/// Cost model of one MPS trajectory, assuming the worst-case bond dimension
/// chi = min(2^(n/2), opts.max_bond) everywhere: 1-qubit ops ~ 4 chi^2,
/// 2-qubit ops ~ 40 chi^3 (contract + SVD), non-adjacent pairs pay the swap
/// routing to bring the qubits together and back. Noise sites multiply by
/// (kraus + 2) for Born sampling on scratch copies plus the winner's apply
/// and renormalization. Peak memory is two full states (state + scratch).
sim::TrajectoryCost mps_trajectory_cost(const ch::NoisyCircuit& nc, const MpsOptions& opts = {});

}  // namespace noisim::mps
