#pragma once
// Deterministic fault injection for failure-path testing.
//
// Every failure boundary in the execution stack carries a named injection
// site -- a `fault::poke("site-name")` call that is a single relaxed atomic
// load when no fault is armed (the common case; the branch is perfectly
// predicted and the site string is never even materialized on hot paths
// that guard on fault::enabled()). Arming a site makes its poke throw a
// site-specific error type on the nth (1-based) hit, exactly once, after
// which the site goes dormant again. This turns "hand-craft a workload
// that happens to blow the memory budget inside backend X" into "arm
// run-<X>:1 and assert the escalation", deterministically.
//
// Sites and their error types:
//   arena-alloc          MemoryOutError   ArenaBuffer growth (tn/plan.hpp)
//   aligned-alloc        MemoryOutError   AlignedAllocator::allocate
//   plan-mo              MemoryOutError   ContractionPlan::compile entry
//   plan-to              TimeoutError     ContractionPlan::compile entry
//   exec-step-mo         MemoryOutError   per-step in plan/batched executors
//   exec-step-to         TimeoutError     per-step in plan/batched executors
//   sweep-worker         FaultError       sweep queue, before item eval
//   traj-chunk           FaultError       trajectory runners, before a chunk
//   run-density          MemoryOutError   simulate() before DensityBackend::run
//   run-tdd              MemoryOutError   simulate() before TddBackend::run
//   run-tn-approx        MemoryOutError   simulate() before TnApproxBackend::run
//   run-tn-trajectories  MemoryOutError   simulate() before TnTrajectoriesBackend::run
//   run-sv-trajectories  MemoryOutError   simulate() before SvTrajectoriesBackend::run
//   run-mps-trajectories MemoryOutError   simulate() before MpsTrajectoriesBackend::run
//
// The allocation sites throw MemoryOutError rather than std::bad_alloc on
// purpose: an injected allocation failure models "this backend cannot get
// the memory it bid for", which is exactly the condition simulate()'s
// escalation ladder is specified to absorb, and a typed error carries the
// site name for tests to assert on.
//
// Arming: programmatic `fault::arm("site", nth)` (tests), or the
// environment variable NOISIM_FAULTS=<site>:<nth>[,<site>:<nth>...] parsed
// once at static-initialization time (CI drills). A malformed NOISIM_FAULTS
// value cannot throw during static init, so the parse error is stashed and
// re-thrown as LinalgError (naming the variable) from the first poke --
// misconfiguration fails fast instead of silently running faultless.

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace noisim::fault {

/// Thrown by sites without a domain-specific error type (sweep-worker,
/// traj-chunk): "an arbitrary exception escaped a worker".
class FaultError : public std::runtime_error {
 public:
  explicit FaultError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
// True iff any site is armed (or an env parse error is pending). Relaxed
// loads suffice: arming happens-before the runs that observe it via the
// caller's own synchronization (tests arm before launching work).
extern std::atomic<bool> g_enabled;
void poke_slow(std::string_view site);
}  // namespace detail

/// Fast-path check: a single relaxed atomic load. Hot paths that would pay
/// to build the site string may guard on this explicitly.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Named injection site. No-op unless a fault is armed for `site` (one
/// relaxed load); an armed site counts hits and throws its configured
/// error on the nth, exactly once.
inline void poke(std::string_view site) {
  if (!enabled()) return;
  detail::poke_slow(site);
}

/// Arm `site` to fire on its nth (1-based) poke from now. Re-arming a site
/// resets its counter. Throws LinalgError for unknown sites or nth == 0.
void arm(std::string_view site, std::uint64_t nth);

/// Disarm every site and clear hit counters and any pending env error.
void disarm_all();

/// Re-read NOISIM_FAULTS and arm accordingly (on top of disarm_all()).
/// Throws LinalgError naming the variable on malformed grammar or unknown
/// sites. Called automatically at static-init (errors deferred to the
/// first poke); exposed for tests.
void arm_from_env();

/// Pokes observed at `site` since it was last armed (0 when never armed).
std::uint64_t hits(std::string_view site);

/// True once the fault armed at `site` has thrown.
bool fired(std::string_view site);

/// All valid site names, for documentation and error messages.
std::vector<std::string_view> known_sites();

}  // namespace noisim::fault
