#include "fault/fault.hpp"

#include "linalg/complex.hpp"
#include "support/env.hpp"
#include "support/mutex.hpp"

namespace noisim::fault {

namespace {

enum class Kind { MemoryOut, Timeout, Fault };

struct SiteSpec {
  std::string_view name;
  Kind kind;
};

// The full site table. Adding a site here is all it takes to document it in
// known_sites() and make arm()/NOISIM_FAULTS accept it.
constexpr SiteSpec kSites[] = {
    {"arena-alloc", Kind::MemoryOut},
    {"aligned-alloc", Kind::MemoryOut},
    {"plan-mo", Kind::MemoryOut},
    {"plan-to", Kind::Timeout},
    {"exec-step-mo", Kind::MemoryOut},
    {"exec-step-to", Kind::Timeout},
    {"sweep-worker", Kind::Fault},
    {"traj-chunk", Kind::Fault},
    {"run-density", Kind::MemoryOut},
    {"run-tdd", Kind::MemoryOut},
    {"run-tn-approx", Kind::MemoryOut},
    {"run-tn-trajectories", Kind::MemoryOut},
    {"run-sv-trajectories", Kind::MemoryOut},
    {"run-mps-trajectories", Kind::MemoryOut},
};
constexpr std::size_t kNumSites = sizeof(kSites) / sizeof(kSites[0]);

struct SiteState {
  bool armed = false;
  bool has_fired = false;
  std::uint64_t nth = 0;    // fire on this hit (1-based)
  std::uint64_t hits = 0;   // pokes observed since last arm
};

// All mutable state lives behind one mutex; poke()'s fast path never takes
// it. The pending env-parse error is delivered from the first poke so a
// typo'd NOISIM_FAULTS fails the run loudly instead of injecting nothing.
struct Registry {
  support::Mutex mutex;
  SiteState sites[kNumSites] GUARDED_BY(mutex);
  std::string env_error GUARDED_BY(mutex);  // empty = none pending
};

Registry& registry() {
  static Registry r;
  return r;
}

int site_index(std::string_view site) {
  for (std::size_t i = 0; i < kNumSites; ++i)
    if (kSites[i].name == site) return static_cast<int>(i);
  return -1;
}

void refresh_enabled_locked(const Registry& r) REQUIRES(r.mutex) {
  bool any = !r.env_error.empty();
  for (const SiteState& s : r.sites) any = any || s.armed;
  detail::g_enabled.store(any, std::memory_order_relaxed);
}

[[noreturn]] void throw_for(std::size_t idx) {
  const std::string msg =
      "injected fault at site '" + std::string(kSites[idx].name) + "'";
  switch (kSites[idx].kind) {
    case Kind::MemoryOut:
      throw MemoryOutError(msg);
    case Kind::Timeout:
      throw TimeoutError(msg);
    case Kind::Fault:
      break;
  }
  throw FaultError(msg);
}

void parse_env_locked(Registry& r, const char* env) REQUIRES(r.mutex) {
  // Grammar: <site>:<nth>[,<site>:<nth>...]  e.g. "exec-step-mo:2,plan-to:1"
  std::string_view rest(env);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view entry =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);

    const std::size_t colon = entry.find(':');
    if (colon == std::string_view::npos || colon == 0 || colon + 1 >= entry.size())
      throw LinalgError("NOISIM_FAULTS: expected <site>:<nth>[,...], got entry \"" +
                        std::string(entry) + "\"");
    const std::string_view site = entry.substr(0, colon);
    const std::string nth_str(entry.substr(colon + 1));
    const int idx = site_index(site);
    if (idx < 0)
      throw LinalgError("NOISIM_FAULTS: unknown site \"" + std::string(site) + "\"");
    // Shared strict grammar (support/env.hpp); the message stays byte-stable.
    const std::optional<long> nth = support::parse_positive_int(nth_str.c_str());
    if (!nth)
      throw LinalgError("NOISIM_FAULTS: nth must be a positive integer, got \"" +
                        nth_str + "\" for site \"" + std::string(site) + "\"");
    SiteState& s = r.sites[idx];
    s.armed = true;
    s.has_fired = false;
    s.nth = static_cast<std::uint64_t>(*nth);
    s.hits = 0;
  }
}

// Arm from the environment once at load time. Static-init order relative to
// other TUs does not matter: until this runs, g_enabled is false and pokes
// are no-ops, which only delays injection -- never corrupts it.
struct EnvInit {
  EnvInit() {
    try {
      arm_from_env();
    } catch (const LinalgError& e) {
      Registry& r = registry();
      const support::MutexLock lock(r.mutex);
      r.env_error = e.what();
      refresh_enabled_locked(r);
    }
  }
};
const EnvInit g_env_init;

}  // namespace

namespace detail {

std::atomic<bool> g_enabled{false};

void poke_slow(std::string_view site) {
  Registry& r = registry();
  std::string pending;
  {
    const support::MutexLock lock(r.mutex);
    if (!r.env_error.empty()) {
      pending = r.env_error;
    } else {
      const int idx = site_index(site);
      if (idx < 0) return;  // unknown site names poke as no-ops
      SiteState& s = r.sites[idx];
      if (!s.armed) return;
      ++s.hits;
      if (!s.has_fired && s.hits == s.nth) {
        s.has_fired = true;
        refresh_enabled_locked(r);  // keep enabled if other sites still armed
        // fall through to throw outside the registry bookkeeping
      } else {
        return;
      }
      throw_for(static_cast<std::size_t>(idx));
    }
  }
  throw LinalgError(pending);
}

}  // namespace detail

void arm(std::string_view site, std::uint64_t nth) {
  const int idx = site_index(site);
  if (idx < 0) {
    std::string all;
    for (const SiteSpec& s : kSites) {
      if (!all.empty()) all += ", ";
      all += s.name;
    }
    throw LinalgError("fault::arm: unknown site \"" + std::string(site) +
                      "\" (known: " + all + ")");
  }
  la::detail::require(nth > 0, "fault::arm: nth must be >= 1");
  Registry& r = registry();
  const support::MutexLock lock(r.mutex);
  SiteState& s = r.sites[static_cast<std::size_t>(idx)];
  s.armed = true;
  s.has_fired = false;
  s.nth = nth;
  s.hits = 0;
  refresh_enabled_locked(r);
}

void disarm_all() {
  Registry& r = registry();
  const support::MutexLock lock(r.mutex);
  for (SiteState& s : r.sites) s = SiteState{};
  r.env_error.clear();
  refresh_enabled_locked(r);
}

void arm_from_env() {
  Registry& r = registry();
  const support::MutexLock lock(r.mutex);
  r.env_error.clear();
  if (const char* env = support::env_get("NOISIM_FAULTS")) parse_env_locked(r, env);
  refresh_enabled_locked(r);
}

std::uint64_t hits(std::string_view site) {
  const int idx = site_index(site);
  if (idx < 0) return 0;
  Registry& r = registry();
  const support::MutexLock lock(r.mutex);
  return r.sites[static_cast<std::size_t>(idx)].hits;
}

bool fired(std::string_view site) {
  const int idx = site_index(site);
  if (idx < 0) return false;
  Registry& r = registry();
  const support::MutexLock lock(r.mutex);
  return r.sites[static_cast<std::size_t>(idx)].has_fired;
}

std::vector<std::string_view> known_sites() {
  std::vector<std::string_view> out;
  out.reserve(kNumSites);
  for (const SiteSpec& s : kSites) out.push_back(s.name);
  return out;
}

}  // namespace noisim::fault
