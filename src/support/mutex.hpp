#pragma once
// Annotated mutex / RAII-lock / condition-variable wrappers.
//
// libstdc++'s std::mutex and std::lock_guard carry no capability
// attributes, so Clang's thread-safety analysis cannot see through them:
// every GUARDED_BY member would warn on every access with no way to
// satisfy the analysis. These thin wrappers (zero overhead: each is
// exactly its std counterpart plus attributes) are the analyzable
// vocabulary the rest of the tree locks with:
//
//   support::Mutex mutex_;
//   int value_ GUARDED_BY(mutex_);
//
//   void bump() EXCLUDES(mutex_) {
//     const support::MutexLock lock(mutex_);
//     ++value_;  // analysis proves mutex_ is held here
//   }
//
// CondVar wraps std::condition_variable_any waiting directly on a Mutex
// (any BasicLockable works); wait() is annotated REQUIRES(mu), matching
// the standard contract that the caller holds the lock around the wait.
// The internal unlock/relock inside std::condition_variable_any::wait is
// invisible to the analysis (system header), which is exactly right: the
// capability is held at entry and at exit.

#include <condition_variable>
#include <mutex>

#include "support/thread_annotations.hpp"

namespace noisim::support {

/// std::mutex with capability annotations for -Wthread-safety.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// std::lock_guard equivalent the analysis can follow.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable waiting on a support::Mutex. Callers hold the mutex
/// across wait() (enforced by REQUIRES); notify_* never needs it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, block, and re-acquire before returning.
  void wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace noisim::support
