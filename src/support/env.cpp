#include "support/env.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "linalg/complex.hpp"

namespace noisim::support {

const char* env_get(const char* name) noexcept {
  // The single sanctioned std::getenv in the tree (linter rule env-getenv).
  return std::getenv(name);  // lint: allow-getenv(the central parser itself)
}

std::optional<long> parse_positive_int(const char* text) noexcept {
  if (text == nullptr) return std::nullopt;
  // strtol silently skips leading whitespace and saturates out-of-range
  // input to LONG_MAX/LONG_MIN (errno == ERANGE); both violate the strict
  // grammar -- "NOISIM_THREADS= 4" and a 20-digit thread count are
  // misconfigurations to reject, not values to reinterpret.
  if (std::isspace(static_cast<unsigned char>(text[0]))) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0' || v <= 0) return std::nullopt;
  return v;
}

std::optional<std::size_t> env_positive_int(const char* name, const char* what) {
  const char* value = env_get(name);
  if (value == nullptr) return std::nullopt;
  const std::optional<long> parsed = parse_positive_int(value);
  if (!parsed)
    throw LinalgError(std::string(name) + ": expected a positive integer " + what +
                      ", got \"" + value + "\"");
  return static_cast<std::size_t>(*parsed);
}

}  // namespace noisim::support
