#pragma once
// Clang thread-safety-analysis attribute macros.
//
// These expand to Clang's capability attributes when the compiler supports
// them (any recent Clang with -Wthread-safety) and to nothing everywhere
// else, so GCC and MSVC builds are unaffected. The analysis is purely
// static and intraprocedural: it checks, at compile time, that every read
// or write of a GUARDED_BY(mu) member happens while `mu` is held, that
// functions marked REQUIRES(mu) are only called with `mu` held, and that
// ACQUIRE/RELEASE pairs balance on every path. CI compiles the tree with
// -Wthread-safety -Werror=thread-safety, so a violation is a build break,
// not a lucky TSan catch.
//
// Conventions in this codebase (see README "Static analysis"):
//  * lock-protected state uses support::Mutex / support::MutexLock
//    (support/mutex.hpp) -- std::mutex is opaque to the analysis;
//  * every data member of a class that owns a Mutex is either
//    GUARDED_BY(that mutex), a std::atomic, immutable after construction,
//    or carries an explicit `// lint: not-guarded(<reason>)` marker -- the
//    repo-invariant linter (tools/lint_invariants.py, rule mutex-guards)
//    audits this;
//  * private helpers that assume the lock is already held are named
//    `*_locked` and annotated REQUIRES(mutex);
//  * functions must not return references/pointers into guarded state --
//    return by value while holding the lock instead.

#if defined(__clang__) && (!defined(SWIG))
#define NOISIM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define NOISIM_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a class as a synchronization capability (e.g. a mutex type).
#define CAPABILITY(x) NOISIM_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define SCOPED_CAPABILITY NOISIM_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define GUARDED_BY(x) NOISIM_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose POINTEE is protected by the given capability (the
/// pointer itself may be read freely).
#define PT_GUARDED_BY(x) NOISIM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that may only be called while holding the given capabilities
/// (and does not release them).
#define REQUIRES(...) NOISIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that may only be called while holding the capabilities shared.
#define REQUIRES_SHARED(...) NOISIM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the given capabilities and holds them on return.
#define ACQUIRE(...) NOISIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) NOISIM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function that releases the given capabilities (held on entry).
#define RELEASE(...) NOISIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) NOISIM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns the given value:
/// TRY_ACQUIRE(true) or TRY_ACQUIRE(true, mu) -- the success value rides in
/// the argument list so an omitted capability never leaves a dangling comma.
#define TRY_ACQUIRE(...) NOISIM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function that must NOT be called while holding the given capabilities
/// (deadlock prevention: e.g. a public method of the class owning them).
#define EXCLUDES(...) NOISIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the given capability.
#define RETURN_CAPABILITY(x) NOISIM_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use needs a
/// comment explaining why the analysis cannot see the invariant.
#define NO_THREAD_SAFETY_ANALYSIS NOISIM_THREAD_ANNOTATION(no_thread_safety_analysis)
