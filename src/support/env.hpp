#pragma once
// Centralized environment-variable access with the strict validation
// grammar shared by every NOISIM_* knob.
//
// Before this header existed, NOISIM_THREADS (sim/parallel.cpp),
// NOISIM_KERNELS (tensor/kernels_dispatch.cpp) and NOISIM_FAULTS
// (fault/fault.cpp) each carried their own std::getenv + strtol/strtoull
// copy of the same rule: a variable that is SET but unusable is a
// misconfiguration worth failing on loudly (LinalgError naming the
// variable), never a silent fallback. The grammar lives here once, and the
// repo-invariant linter (tools/lint_invariants.py, rule env-getenv)
// rejects naked std::getenv anywhere outside this component -- every
// environment read goes through env_get(), so there is exactly one place
// where "what does the process environment mean to noisim" is defined.

#include <cstddef>
#include <optional>

namespace noisim::support {

/// Read `name` from the process environment (nullptr when unset). The one
/// std::getenv call site in the tree.
const char* env_get(const char* name) noexcept;

/// Strict positive-integer grammar: base-10 digits with an optional sign,
/// the WHOLE string consumed (no leading whitespace, no trailing junk),
/// value > 0 and within range of long (out-of-range input is rejected, not
/// saturated). Returns nullopt on any violation -- callers own their
/// (byte-stable) error messages.
std::optional<long> parse_positive_int(const char* text) noexcept;

/// env_get + parse_positive_int + the shared diagnostic: returns nullopt
/// when `name` is unset, the parsed value when it is a strict positive
/// integer, and otherwise throws LinalgError
///   "<name>: expected a positive integer <what>, got \"<value>\""
/// naming the variable (`what` is the variable-specific noun, e.g.
/// "thread count").
std::optional<std::size_t> env_positive_int(const char* name, const char* what);

}  // namespace noisim::support
