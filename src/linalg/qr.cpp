#include "linalg/qr.hpp"

#include <cmath>

namespace noisim::la {

QrResult qr(const Matrix& a) {
  detail::require(a.rows() >= a.cols(), "qr: requires rows >= cols");
  const std::size_t m = a.rows(), n = a.cols();
  Matrix q = a;
  Matrix r(n, n);

  for (std::size_t j = 0; j < n; ++j) {
    // Re-orthogonalize against previous columns (twice-is-enough MGS).
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t k = 0; k < j; ++k) {
        cplx proj{0.0, 0.0};
        for (std::size_t i = 0; i < m; ++i) proj += std::conj(q(i, k)) * q(i, j);
        r(k, j) += proj;
        for (std::size_t i = 0; i < m; ++i) q(i, j) -= proj * q(i, k);
      }
    }
    double nj = 0.0;
    for (std::size_t i = 0; i < m; ++i) nj += std::norm(q(i, j));
    nj = std::sqrt(nj);
    r(j, j) = nj;
    detail::require(nj > 1e-300, "qr: rank-deficient input");
    for (std::size_t i = 0; i < m; ++i) q(i, j) /= nj;
  }
  return {std::move(q), std::move(r)};
}

Matrix random_ginibre(std::size_t rows, std::size_t cols, std::mt19937_64& rng) {
  std::normal_distribution<double> gauss(0.0, 1.0);
  Matrix g(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) g(i, j) = cplx{gauss(rng), gauss(rng)};
  return g;
}

Matrix random_unitary(std::size_t n, std::mt19937_64& rng) {
  const Matrix g = random_ginibre(n, n, rng);
  QrResult f = qr(g);
  // Fix the phases: multiply column j by conj(phase(R(j,j))) so that the
  // distribution is Haar rather than biased by QR's sign convention.
  for (std::size_t j = 0; j < n; ++j) {
    const cplx rjj = f.r(j, j);
    const double mag = std::abs(rjj);
    const cplx ph = (mag > 0.0) ? rjj / mag : cplx{1.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) f.q(i, j) *= std::conj(ph);
  }
  return std::move(f.q);
}

Vector random_state(std::size_t n, std::mt19937_64& rng) {
  std::normal_distribution<double> gauss(0.0, 1.0);
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = cplx{gauss(rng), gauss(rng)};
  v.normalize();
  return v;
}

}  // namespace noisim::la
