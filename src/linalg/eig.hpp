#pragma once
// Hermitian eigendecomposition via the classical (two-sided) Jacobi method.
//
// Used for CPTP validation (Choi-matrix positive semidefiniteness) and for
// analytic cross-checks of noise rates: for Hermitian M, the spectral norm
// equals max |eigenvalue|.

#include "linalg/matrix.hpp"

namespace noisim::la {

/// Result of A = V * diag(w) * V^dagger for Hermitian A;
/// eigenvalues ascend, eigenvectors are the columns of V.
struct EigResult {
  std::vector<double> w;
  Matrix v;
};

/// Eigendecomposition of a Hermitian matrix. Throws LinalgError when the
/// input is not Hermitian to `herm_tol`.
EigResult eigh(const Matrix& a, double herm_tol = 1e-8);

/// True iff the Hermitian matrix is positive semidefinite to tolerance.
bool is_positive_semidefinite(const Matrix& a, double tol = 1e-9);

}  // namespace noisim::la
