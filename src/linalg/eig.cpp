#include "linalg/eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace noisim::la {

EigResult eigh(const Matrix& a, double herm_tol) {
  detail::require(a.is_square(), "eigh: non-square matrix");
  detail::require(a.is_hermitian(herm_tol), "eigh: matrix is not Hermitian");
  const std::size_t n = a.rows();

  Matrix d = a;
  Matrix v = Matrix::identity(n);

  const int max_sweeps = 80;
  const double eps = 1e-14;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p + 1 < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += std::norm(d(p, q));
    if (off < eps * eps) break;

    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const cplx apq = d(p, q);
        const double mag = std::abs(apq);
        if (mag < eps) continue;

        const cplx phase = apq / mag;
        const double app = d(p, p).real();
        const double aqq = d(q, q).real();
        const double tau = (aqq - app) / (2.0 * mag);
        const double t = (tau >= 0 ? 1.0 : -1.0) / (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double cs = 1.0 / std::sqrt(1.0 + t * t);
        const double sn = cs * t;

        // Unitary plane rotation J acting on rows/cols p, q:
        //   J = [[cs, sn * phase], [-sn * conj(phase), cs]] applied as J^dag D J.
        for (std::size_t i = 0; i < n; ++i) {  // column update D <- D * J
          const cplx dip = d(i, p);
          const cplx diq = d(i, q) * std::conj(phase);
          d(i, p) = cs * dip - sn * diq;
          d(i, q) = sn * dip + cs * diq;
        }
        for (std::size_t i = 0; i < n; ++i) {  // row update D <- J^dag * D
          const cplx dpi = d(p, i);
          const cplx dqi = d(q, i) * phase;
          d(p, i) = cs * dpi - sn * dqi;
          d(q, i) = sn * dpi + cs * dqi;
        }
        for (std::size_t i = 0; i < n; ++i) {  // accumulate V <- V * J
          const cplx vip = v(i, p);
          const cplx viq = v(i, q) * std::conj(phase);
          v(i, p) = cs * vip - sn * viq;
          v(i, q) = sn * vip + cs * viq;
        }
      }
    }
  }

  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) w[i] = d(i, i).real();

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) { return w[x] < w[y]; });

  EigResult out;
  out.w.resize(n);
  out.v = Matrix(n, n);
  for (std::size_t jj = 0; jj < n; ++jj) {
    out.w[jj] = w[order[jj]];
    for (std::size_t i = 0; i < n; ++i) out.v(i, jj) = v(i, order[jj]);
  }
  return out;
}

bool is_positive_semidefinite(const Matrix& a, double tol) {
  if (!a.is_hermitian(tol)) return false;
  const EigResult e = eigh(a, tol);
  return e.w.empty() || e.w.front() >= -tol;
}

}  // namespace noisim::la
