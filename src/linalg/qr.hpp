#pragma once
// QR factorization (modified Gram-Schmidt) and Haar-random unitaries.
//
// Random unitaries drive the property-based tests: a Haar-random gate is the
// adversarial case for approximation identities that must hold for *all*
// unitaries, not just Cliffords.

#include <cstdint>
#include <random>

#include "linalg/matrix.hpp"

namespace noisim::la {

/// Thin QR: A = Q * R with Q having orthonormal columns (rows x cols,
/// requires rows >= cols) and R upper triangular.
struct QrResult {
  Matrix q;
  Matrix r;
};

QrResult qr(const Matrix& a);

/// Haar-distributed random unitary of dimension n (Ginibre + QR with the
/// standard phase fix so the distribution is exactly Haar).
Matrix random_unitary(std::size_t n, std::mt19937_64& rng);

/// Random complex matrix with iid standard normal entries.
Matrix random_ginibre(std::size_t rows, std::size_t cols, std::mt19937_64& rng);

/// Random normalized state vector of dimension n.
Vector random_state(std::size_t n, std::mt19937_64& rng);

}  // namespace noisim::la
