#pragma once
// Dense complex matrices and vectors.
//
// This is the numeric substrate for the whole library. Quantum objects are
// small (gates are 2x2 / 4x4, superoperators 4x4) but density-matrix
// simulation uses matrices up to 2^n x 2^n, so the implementation keeps
// cache-friendly row-major storage and an ikj-ordered multiply.

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

#include "linalg/complex.hpp"

namespace noisim::la {

/// Dense complex column vector.
class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n) : data_(n, cplx{0.0, 0.0}) {}
  Vector(std::initializer_list<cplx> xs) : data_(xs) {}

  std::size_t size() const { return data_.size(); }
  cplx& operator[](std::size_t i) { return data_[i]; }
  const cplx& operator[](std::size_t i) const { return data_[i]; }

  cplx* data() { return data_.data(); }
  const cplx* data() const { return data_.data(); }

  /// Entry-wise complex conjugate.
  Vector conj() const;
  /// Euclidean norm.
  double norm() const;
  /// Squared Euclidean norm.
  double norm2() const;
  /// Scale in place so that norm() == 1. Throws on the zero vector.
  void normalize();

  Vector& operator+=(const Vector& o);
  Vector& operator-=(const Vector& o);
  Vector& operator*=(cplx s);

  friend Vector operator+(Vector a, const Vector& b) { return a += b; }
  friend Vector operator-(Vector a, const Vector& b) { return a -= b; }
  friend Vector operator*(cplx s, Vector v) { return v *= s; }

  bool approx_equal(const Vector& o, double tol = kDefaultTol) const;

 private:
  std::vector<cplx> data_;
};

/// Hermitian inner product <a|b> (conjugate-linear in the first argument).
cplx dot(const Vector& a, const Vector& b);

/// Kronecker product of vectors: (a kron b)[i*nb + j] = a[i] * b[j].
Vector kron(const Vector& a, const Vector& b);

/// Dense row-major complex matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, cplx{0.0, 0.0}) {}
  /// Construct from nested initializer lists; all rows must agree in length.
  Matrix(std::initializer_list<std::initializer_list<cplx>> rows);

  static Matrix identity(std::size_t n);
  static Matrix zero(std::size_t rows, std::size_t cols);
  /// Diagonal matrix from the given entries.
  static Matrix diag(const std::vector<cplx>& d);
  /// Rank-1 outer product |a><b| (b enters conjugated).
  static Matrix outer(const Vector& a, const Vector& b);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool is_square() const { return rows_ == cols_; }

  cplx& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const cplx& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  cplx* data() { return data_.data(); }
  const cplx* data() const { return data_.data(); }
  cplx* row(std::size_t r) { return data_.data() + r * cols_; }
  const cplx* row(std::size_t r) const { return data_.data() + r * cols_; }

  Matrix transpose() const;
  /// Entry-wise conjugate (no transpose).
  Matrix conj() const;
  /// Conjugate transpose (dagger).
  Matrix adjoint() const;

  cplx trace() const;
  double frobenius_norm() const;
  /// Largest entry magnitude.
  double max_abs() const;

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(cplx s);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(cplx s, Matrix m) { return m *= s; }

  bool approx_equal(const Matrix& o, double tol = kDefaultTol) const;
  bool is_identity(double tol = kDefaultTol) const;
  bool is_hermitian(double tol = kDefaultTol) const;
  bool is_unitary(double tol = kDefaultTol) const;
  bool is_diagonal(double tol = kDefaultTol) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<cplx> data_;
};

/// Matrix product (ikj loop order; dimensions must agree).
Matrix operator*(const Matrix& a, const Matrix& b);
/// Matrix-vector product.
Vector operator*(const Matrix& m, const Vector& v);

/// Kronecker product: (A kron B)[(i*rB + k), (j*cB + l)] = A(i,j) * B(k,l).
Matrix kron(const Matrix& a, const Matrix& b);

/// Column-major vectorization is NOT used anywhere in noisim; vec() is
/// row-major: vec(M)[r*cols + c] = M(r, c). This matches the tensor module's
/// row-major reshape, which keeps the superoperator conventions consistent.
Vector vec(const Matrix& m);
/// Inverse of vec() for square matrices of dimension n.
Matrix unvec(const Vector& v, std::size_t rows, std::size_t cols);

std::ostream& operator<<(std::ostream& os, const Matrix& m);
std::ostream& operator<<(std::ostream& os, const Vector& v);

}  // namespace noisim::la
