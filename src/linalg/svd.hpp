#pragma once
// Complex singular value decomposition via one-sided Jacobi rotations.
//
// The paper's algorithm needs SVDs of 4x4 superoperator tensors and spectral
// norms of small matrices (noise rates). One-sided Jacobi is numerically
// robust for these sizes, has no external dependencies, and converges
// quadratically once the columns are nearly orthogonal.

#include "linalg/matrix.hpp"

namespace noisim::la {

/// Result of a thin SVD: A = U * diag(S) * V^dagger, with
///   U:  rows(A) x k,   S: k descending non-negative,   V: cols(A) x k,
/// where k = min(rows, cols).
struct SvdResult {
  Matrix u;
  std::vector<double> s;
  Matrix v;

  /// Reassemble U * diag(S) * V^dagger (for testing).
  Matrix reconstruct() const;
  /// Number of singular values greater than tol * s[0].
  std::size_t rank(double tol = 1e-12) const;
};

/// Thin SVD of an arbitrary complex matrix.
SvdResult svd(const Matrix& a);

/// Largest singular value (matrix 2-norm). This is the norm used by the
/// paper's definition of the noise rate ||M_E - I||.
double spectral_norm(const Matrix& a);

/// Best rank-r approximation in the 2-norm / Frobenius norm sense
/// (Eckart-Young-Mirsky): keep the r dominant singular triplets.
Matrix truncated_svd_approx(const Matrix& a, std::size_t r);

}  // namespace noisim::la
