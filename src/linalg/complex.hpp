#pragma once
// Scalar type and numeric helpers shared by the whole library.
//
// noisim uses double-precision complex arithmetic throughout; the paper's
// algorithm is sensitive to singular-value magnitudes near machine epsilon,
// so all tolerances are centralized here.

#include <cmath>
#include <complex>
#include <stdexcept>
#include <string>

namespace noisim {

using cplx = std::complex<double>;

inline constexpr double kDefaultTol = 1e-10;

/// |a - b| within tol, elementwise on complex scalars.
inline bool approx_equal(cplx a, cplx b, double tol = kDefaultTol) {
  return std::abs(a - b) <= tol;
}

inline bool approx_equal(double a, double b, double tol = kDefaultTol) {
  return std::abs(a - b) <= tol;
}

/// Exception thrown on violated preconditions (dimension mismatches etc.).
/// A dedicated type lets tests assert on the *category* of failure.
class LinalgError : public std::logic_error {
 public:
  explicit LinalgError(const std::string& what) : std::logic_error(what) {}
};

/// Exception thrown when an intermediate object would exceed the configured
/// memory budget. Benchmarks catch this to report "MO" like the paper.
class MemoryOutError : public std::runtime_error {
 public:
  explicit MemoryOutError(const std::string& what) : std::runtime_error(what) {}
};

/// Exception thrown when a computation exceeds its wall-clock deadline.
/// Benchmarks catch this to report "TO" like the paper.
class TimeoutError : public std::runtime_error {
 public:
  explicit TimeoutError(const std::string& what) : std::runtime_error(what) {}
};

/// Exception thrown when a run is abandoned through core::RunControl's
/// cancel flag. Deliberately NOT a MemoryOutError/TimeoutError sibling in
/// the escalation sense: simulate() treats MO/TO as "this backend lost its
/// bid, try the next one" but a cancel means the caller wants the whole
/// computation gone, so CancelledError propagates through every layer.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const std::string& msg) { throw LinalgError(msg); }

inline void require(bool cond, const char* msg) {
  if (!cond) fail(msg);
}
}  // namespace detail

// Every module refers to the precondition helpers as la::detail::require;
// keep them in one place and alias them into the linalg namespace.
namespace la {
namespace detail = noisim::detail;
}

}  // namespace noisim
