#include "linalg/matrix.hpp"

#include <cmath>
#include <ostream>

namespace noisim::la {

// ---------------------------------------------------------------------------
// Vector

Vector Vector::conj() const {
  Vector out(size());
  for (std::size_t i = 0; i < size(); ++i) out[i] = std::conj(data_[i]);
  return out;
}

double Vector::norm2() const {
  double s = 0.0;
  for (const cplx& x : data_) s += std::norm(x);
  return s;
}

double Vector::norm() const { return std::sqrt(norm2()); }

void Vector::normalize() {
  const double n = norm();
  detail::require(n > 0.0, "Vector::normalize: zero vector");
  for (cplx& x : data_) x /= n;
}

Vector& Vector::operator+=(const Vector& o) {
  detail::require(size() == o.size(), "Vector::operator+=: size mismatch");
  for (std::size_t i = 0; i < size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& o) {
  detail::require(size() == o.size(), "Vector::operator-=: size mismatch");
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Vector& Vector::operator*=(cplx s) {
  for (cplx& x : data_) x *= s;
  return *this;
}

bool Vector::approx_equal(const Vector& o, double tol) const {
  if (size() != o.size()) return false;
  for (std::size_t i = 0; i < size(); ++i)
    if (!noisim::approx_equal(data_[i], o.data_[i], tol)) return false;
  return true;
}

cplx dot(const Vector& a, const Vector& b) {
  detail::require(a.size() == b.size(), "dot: size mismatch");
  cplx s{0.0, 0.0};
  for (std::size_t i = 0; i < a.size(); ++i) s += std::conj(a[i]) * b[i];
  return s;
}

Vector kron(const Vector& a, const Vector& b) {
  Vector out(a.size() * b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j) out[i * b.size() + j] = a[i] * b[j];
  return out;
}

// ---------------------------------------------------------------------------
// Matrix

Matrix::Matrix(std::initializer_list<std::initializer_list<cplx>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    detail::require(r.size() == cols_, "Matrix: ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = cplx{1.0, 0.0};
  return m;
}

Matrix Matrix::zero(std::size_t rows, std::size_t cols) { return Matrix(rows, cols); }

Matrix Matrix::diag(const std::vector<cplx>& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::outer(const Vector& a, const Vector& b) {
  Matrix m(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j) m(i, j) = a[i] * std::conj(b[j]);
  return m;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

Matrix Matrix::conj() const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = std::conj(data_[i]);
  return out;
}

Matrix Matrix::adjoint() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = std::conj((*this)(r, c));
  return out;
}

cplx Matrix::trace() const {
  detail::require(is_square(), "Matrix::trace: non-square");
  cplx s{0.0, 0.0};
  for (std::size_t i = 0; i < rows_; ++i) s += (*this)(i, i);
  return s;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (const cplx& x : data_) s += std::norm(x);
  return std::sqrt(s);
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (const cplx& x : data_) m = std::max(m, std::abs(x));
  return m;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  detail::require(rows_ == o.rows_ && cols_ == o.cols_, "Matrix::operator+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  detail::require(rows_ == o.rows_ && cols_ == o.cols_, "Matrix::operator-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(cplx s) {
  for (cplx& x : data_) x *= s;
  return *this;
}

bool Matrix::approx_equal(const Matrix& o, double tol) const {
  if (rows_ != o.rows_ || cols_ != o.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i)
    if (!noisim::approx_equal(data_[i], o.data_[i], tol)) return false;
  return true;
}

bool Matrix::is_identity(double tol) const {
  if (!is_square()) return false;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) {
      const cplx want = (r == c) ? cplx{1.0, 0.0} : cplx{0.0, 0.0};
      if (!noisim::approx_equal((*this)(r, c), want, tol)) return false;
    }
  return true;
}

bool Matrix::is_hermitian(double tol) const {
  if (!is_square()) return false;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r; c < cols_; ++c)
      if (!noisim::approx_equal((*this)(r, c), std::conj((*this)(c, r)), tol)) return false;
  return true;
}

bool Matrix::is_unitary(double tol) const {
  if (!is_square()) return false;
  return (adjoint() * (*this)).is_identity(tol);
}

bool Matrix::is_diagonal(double tol) const {
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      if (r != c && std::abs((*this)(r, c)) > tol) return false;
  return true;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  detail::require(a.cols() == b.rows(), "Matrix::operator*: inner dimension mismatch");
  Matrix out(a.rows(), b.cols());
  // ikj order: stream over b's rows so the inner loop is contiguous.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    cplx* out_row = out.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const cplx aik = a(i, k);
      if (aik == cplx{0.0, 0.0}) continue;
      const cplx* b_row = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) out_row[j] += aik * b_row[j];
    }
  }
  return out;
}

Vector operator*(const Matrix& m, const Vector& v) {
  detail::require(m.cols() == v.size(), "Matrix*Vector: dimension mismatch");
  Vector out(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    cplx s{0.0, 0.0};
    const cplx* row = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) s += row[c] * v[c];
    out[r] = s;
  }
  return out;
}

Matrix kron(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows() * b.rows(), a.cols() * b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const cplx aij = a(i, j);
      if (aij == cplx{0.0, 0.0}) continue;
      for (std::size_t k = 0; k < b.rows(); ++k)
        for (std::size_t l = 0; l < b.cols(); ++l)
          out(i * b.rows() + k, j * b.cols() + l) = aij * b(k, l);
    }
  return out;
}

Vector vec(const Matrix& m) {
  Vector v(m.rows() * m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c) v[r * m.cols() + c] = m(r, c);
  return v;
}

Matrix unvec(const Vector& v, std::size_t rows, std::size_t cols) {
  detail::require(v.size() == rows * cols, "unvec: size mismatch");
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = v[r * cols + c];
  return m;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "[[" : " [");
    for (std::size_t c = 0; c < m.cols(); ++c) {
      const cplx x = m(r, c);
      os << x.real() << (x.imag() >= 0 ? "+" : "") << x.imag() << "i";
      if (c + 1 < m.cols()) os << ", ";
    }
    os << (r + 1 == m.rows() ? "]]" : "]\n");
  }
  return os;
}

std::ostream& operator<<(std::ostream& os, const Vector& v) {
  os << "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    const cplx x = v[i];
    os << x.real() << (x.imag() >= 0 ? "+" : "") << x.imag() << "i";
    if (i + 1 < v.size()) os << ", ";
  }
  return os << "]";
}

}  // namespace noisim::la
