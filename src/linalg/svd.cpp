#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace noisim::la {

Matrix SvdResult::reconstruct() const {
  Matrix sv(s.size(), v.rows());  // diag(S) * V^dagger
  for (std::size_t i = 0; i < s.size(); ++i)
    for (std::size_t j = 0; j < v.rows(); ++j) sv(i, j) = s[i] * std::conj(v(j, i));
  return u * sv;
}

std::size_t SvdResult::rank(double tol) const {
  if (s.empty() || s[0] == 0.0) return 0;
  std::size_t r = 0;
  for (double x : s)
    if (x > tol * s[0]) ++r;
  return r;
}

namespace {

// One-sided Jacobi on the columns of B (rows >= cols). Rotates column pairs
// until all pairs are orthogonal; accumulates the rotations into V so that
// A = B_final_normalized * diag(norms) * V^dagger.
SvdResult jacobi_svd_tall(const Matrix& a) {
  const std::size_t m = a.rows(), n = a.cols();
  Matrix b = a;
  Matrix v = Matrix::identity(n);

  const double eps = 1e-14;
  const int max_sweeps = 60;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // Gram entries of the (p, q) column pair.
        double app = 0.0, aqq = 0.0;
        cplx apq{0.0, 0.0};
        for (std::size_t i = 0; i < m; ++i) {
          app += std::norm(b(i, p));
          aqq += std::norm(b(i, q));
          apq += std::conj(b(i, p)) * b(i, q);
        }
        const double mag = std::abs(apq);
        if (mag <= eps * std::sqrt(app * aqq) || mag == 0.0) continue;
        off += mag;

        // Phase so the effective off-diagonal entry is real: apq = mag*e^{i*phi}.
        const cplx phase = apq / mag;
        // Jacobi rotation for the real symmetric 2x2 [[app, mag], [mag, aqq]].
        const double tau = (aqq - app) / (2.0 * mag);
        const double t = (tau >= 0 ? 1.0 : -1.0) / (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double cs = 1.0 / std::sqrt(1.0 + t * t);
        const double sn = cs * t;

        // Columns update: [bp, bq] <- [bp, bq] * [[cs, sn*phase], [-sn*conj(phase)... ]]
        // with the phase folded into column q first.
        for (std::size_t i = 0; i < m; ++i) {
          const cplx bp = b(i, p);
          const cplx bq = b(i, q) * std::conj(phase);
          b(i, p) = cs * bp - sn * bq;
          b(i, q) = sn * bp + cs * bq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const cplx vp = v(i, p);
          const cplx vq = v(i, q) * std::conj(phase);
          v(i, p) = cs * vp - sn * vq;
          v(i, q) = sn * vp + cs * vq;
        }
      }
    }
    if (off == 0.0) break;
  }

  // Column norms are the singular values; normalized columns form U.
  std::vector<double> s(n);
  for (std::size_t j = 0; j < n; ++j) {
    double nj = 0.0;
    for (std::size_t i = 0; i < m; ++i) nj += std::norm(b(i, j));
    s[j] = std::sqrt(nj);
  }

  // Sort descending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) { return s[x] > s[y]; });

  SvdResult out;
  out.s.resize(n);
  out.u = Matrix(m, n);
  out.v = Matrix(n, n);
  for (std::size_t jj = 0; jj < n; ++jj) {
    const std::size_t j = order[jj];
    out.s[jj] = s[j];
    if (s[j] > 0.0) {
      for (std::size_t i = 0; i < m; ++i) out.u(i, jj) = b(i, j) / s[j];
    } else {
      // Zero singular value: leave the U column zero; callers treat the
      // triplet as absent (rank() excludes it).
      for (std::size_t i = 0; i < m; ++i) out.u(i, jj) = cplx{0.0, 0.0};
    }
    for (std::size_t i = 0; i < n; ++i) out.v(i, jj) = v(i, j);
  }
  return out;
}

}  // namespace

SvdResult svd(const Matrix& a) {
  detail::require(a.rows() > 0 && a.cols() > 0, "svd: empty matrix");
  if (a.rows() >= a.cols()) return jacobi_svd_tall(a);
  // Wide matrix: SVD of the adjoint and swap factors.
  // A^dagger = U S V^dagger  =>  A = V S U^dagger.
  SvdResult t = jacobi_svd_tall(a.adjoint());
  SvdResult out;
  out.u = std::move(t.v);
  out.v = std::move(t.u);
  out.s = std::move(t.s);
  return out;
}

double spectral_norm(const Matrix& a) {
  const SvdResult r = svd(a);
  return r.s.empty() ? 0.0 : r.s.front();
}

Matrix truncated_svd_approx(const Matrix& a, std::size_t r) {
  const SvdResult d = svd(a);
  const std::size_t k = std::min(r, d.s.size());
  Matrix out(a.rows(), a.cols());
  for (std::size_t t = 0; t < k; ++t)
    for (std::size_t i = 0; i < a.rows(); ++i)
      for (std::size_t j = 0; j < a.cols(); ++j)
        out(i, j) += d.s[t] * d.u(i, t) * std::conj(d.v(j, t));
  return out;
}

}  // namespace noisim::la
