#pragma once
// Runtime-dispatched kernel tiers: one KernelTable per instruction-set
// tier (scalar, AVX2, AVX-512), all implementing the four matmul kernel
// families of tensor/contract.hpp with BIT-IDENTICAL results.
//
// The bit-identity contract: every tier accumulates ascending-k per output
// element with the scalar tier's zero-skip, and performs the complex
// multiply-accumulate as the same sequence of IEEE double operations
// (mul, mul, sub/add, add -- never contracted into FMA), only on wider
// registers. Lane-wise the arithmetic is the scalar arithmetic, so the
// tier choice NEVER changes bits -- the determinism contract of the plan
// executor (replay == recontract, batched == per-term, any thread count)
// survives dispatch, and a GPU or remote executor can later slot in behind
// the same reference path by satisfying the same table interface.
//
// Tier selection happens once at startup from cpuid, overridable with
// NOISIM_KERNELS={auto,scalar,avx2,avx512}: an unknown value throws
// LinalgError naming the variable; requesting a tier the host (or build)
// lacks falls back to the best supported tier with a one-time warning.

#include <cstddef>
#include <string_view>

#include "tensor/contract.hpp"

namespace noisim::tsr {

/// Instruction-set tiers, ordered: a host supporting a tier supports every
/// lower one.
enum class KernelTier { Scalar = 0, Avx2 = 1, Avx512 = 2 };

inline constexpr std::size_t kNumKernelTiers = 3;

namespace detail {

using SelectFn = MatmulFn (*)(std::size_t m, std::size_t k, std::size_t n);
using GatheredFn = void (*)(const cplx* a, const std::uint32_t* a_idx, const cplx* b,
                            const std::uint32_t* b_idx, cplx* out, std::size_t m, std::size_t k,
                            std::size_t n);
using BatchedFn = void (*)(const cplx* a, const cplx* b, cplx* out, std::size_t m, std::size_t k,
                           std::size_t n, std::size_t batch, std::size_t a_stride,
                           std::size_t b_stride, std::size_t out_stride);

}  // namespace detail

/// One tier's implementation of the four kernel families. The plan
/// executor calls kernels exclusively through a table (the executor seam):
/// replacing the table replaces the device the plan replays on, which is
/// the shape batched-contraction offload interfaces (cuTensorNet-style)
/// expose. Any table slotted in must honor the bit-identity contract
/// above to keep replays interchangeable with the CPU reference path.
struct KernelTable {
  detail::MatmulFn matmul;      // generic blocked matmul_accumulate
  detail::SelectFn select;      // fixed-shape microkernel dispatch
  detail::GatheredFn gathered;  // permutation-fused gather-table variant
  detail::BatchedFn batched;    // strided-batched (stride 0 = broadcast)
  KernelTier tier;
  const char* name;
};

/// Best tier the running CPU supports (cpuid), independent of any
/// NOISIM_KERNELS override.
KernelTier detected_kernel_tier();

/// Tier table, or nullptr when the tier is unsupported on this host or was
/// not compiled into this build. Scalar is always available.
const KernelTable* kernel_table(KernelTier tier);

/// Highest supported tier <= `requested` (what an unsupported request
/// falls back to).
KernelTier resolve_kernel_tier(KernelTier requested);

/// Parse a NOISIM_KERNELS value ("auto" resolves to the detected tier).
/// Throws LinalgError naming NOISIM_KERNELS on anything else.
KernelTier parse_kernel_tier(std::string_view value);

/// The dispatched table every execution path uses by default: resolved
/// once from cpuid + NOISIM_KERNELS on first use, then constant unless
/// set_kernel_tier intervenes. Thread-safe.
const KernelTable& active_kernels();

/// Tier of active_kernels().
KernelTier active_kernel_tier();

/// Force the active tier (tests, benchmarks). An unsupported request
/// resolves to the best supported tier with a one-time warning, mirroring
/// the NOISIM_KERNELS fallback. Returns the PREVIOUS active tier so
/// callers can restore it. Not intended to race concurrent executions:
/// switch tiers only between runs (any interleaving is still safe and
/// still bit-exact -- all tables compute identical bits -- but a run's
/// reported dispatch counters would straddle tiers).
KernelTier set_kernel_tier(KernelTier tier);

const char* kernel_tier_name(KernelTier tier);

}  // namespace noisim::tsr
