// AVX-512F kernel tier. Compiled with -mavx512f -ffp-contract=off (see
// CMakeLists.txt); see kernels_avx2.cpp for the lane arithmetic contract.
//
// One 512-bit register holds FOUR complex elements. AVX-512 has no addsub
// instruction, so the even-lane subtraction is expressed as an XOR of the
// real lanes' sign bits followed by an add: a + (-b) is IEEE-identical to
// a - b bit for bit, so the sequence per output element still matches the
// scalar kernel exactly. Remainders cascade through the 256-bit pair and
// 128-bit single-element paths -- identical lane arithmetic at every
// width, so results never depend on where the vector/tail boundary falls.

#include "tensor/kernels.hpp"

#if defined(__AVX512F__)

// GCC 12's -Wmaybe-uninitialized fires inside avx512fintrin.h itself when
// masked intrinsics inline at -O3 (the undefined-source idiom of
// _mm512_maskz_*); scoped to the header so our own code stays checked.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
#include <immintrin.h>
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#include <algorithm>

namespace noisim::tsr::detail {
namespace {

inline void axpy_one(double ar, double ai, const double* b, double* o) {
  const __m128d vb = _mm_loadu_pd(b);
  const __m128d vs = _mm_shuffle_pd(vb, vb, 0b01);
  const __m128d t1 = _mm_mul_pd(_mm_set1_pd(ar), vb);
  const __m128d t2 = _mm_mul_pd(_mm_set1_pd(ai), vs);
  const __m128d vo = _mm_loadu_pd(o);
  _mm_storeu_pd(o, _mm_add_pd(vo, _mm_addsub_pd(t1, t2)));
}

inline void axpy_two(double ar, double ai, const double* b, double* o) {
  const __m256d vb = _mm256_loadu_pd(b);
  const __m256d vs = _mm256_permute_pd(vb, 0b0101);
  const __m256d t1 = _mm256_mul_pd(_mm256_set1_pd(ar), vb);
  const __m256d t2 = _mm256_mul_pd(_mm256_set1_pd(ai), vs);
  const __m256d vo = _mm256_loadu_pd(o);
  _mm256_storeu_pd(o, _mm256_add_pd(vo, _mm256_addsub_pd(t1, t2)));
}

/// Sign mask over the real (even) lanes: XORing t2 with it negates exactly
/// the lanes the scalar kernel subtracts, turning add into addsub.
inline __m512d negate_even(__m512d v) {
  const __m512d mask =
      _mm512_set_pd(0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0);  // element 7 ... element 0
  return _mm512_castsi512_pd(
      _mm512_xor_si512(_mm512_castpd_si512(v), _mm512_castpd_si512(mask)));
}

inline void axpy_tail(double ar, double ai, const double* b, double* o, std::size_t n) {
  std::size_t j = 0;
  if (j + 2 <= n) {
    axpy_two(ar, ai, b, o);
    j += 2;
  }
  if (j < n) axpy_one(ar, ai, b + 2 * j, o + 2 * j);
}

inline void axpy(double ar, double ai, const double* b, double* o, std::size_t n) {
  const __m512d var = _mm512_set1_pd(ar);
  const __m512d vai = _mm512_set1_pd(ai);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m512d vb = _mm512_loadu_pd(b + 2 * j);
    const __m512d vs = _mm512_permute_pd(vb, 0x55);  // swap re/im per pair
    const __m512d t1 = _mm512_mul_pd(var, vb);
    const __m512d t2 = _mm512_mul_pd(vai, vs);
    const __m512d vo = _mm512_loadu_pd(o + 2 * j);
    _mm512_storeu_pd(o + 2 * j, _mm512_add_pd(vo, _mm512_add_pd(t1, negate_even(t2))));
  }
  axpy_tail(ar, ai, b + 2 * j, o + 2 * j, n - j);
}

inline void axpy_gathered(double ar, double ai, const double* pb, const std::uint32_t* bidx,
                          double* o, std::size_t n) {
  const __m512d var = _mm512_set1_pd(ar);
  const __m512d vai = _mm512_set1_pd(ai);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d lo = _mm256_set_m128d(_mm_loadu_pd(pb + 2 * bidx[j + 1]),
                                        _mm_loadu_pd(pb + 2 * bidx[j]));
    const __m256d hi = _mm256_set_m128d(_mm_loadu_pd(pb + 2 * bidx[j + 3]),
                                        _mm_loadu_pd(pb + 2 * bidx[j + 2]));
    const __m512d vb = _mm512_insertf64x4(_mm512_castpd256_pd512(lo), hi, 1);
    const __m512d vs = _mm512_permute_pd(vb, 0x55);
    const __m512d t1 = _mm512_mul_pd(var, vb);
    const __m512d t2 = _mm512_mul_pd(vai, vs);
    const __m512d vo = _mm512_loadu_pd(o + 2 * j);
    _mm512_storeu_pd(o + 2 * j, _mm512_add_pd(vo, _mm512_add_pd(t1, negate_even(t2))));
  }
  for (; j < n; ++j) axpy_one(ar, ai, pb + 2 * bidx[j], o + 2 * j);
}

#include "tensor/kernels_simd_body.inc"

}  // namespace

const KernelTable* avx512_table() {
  static const KernelTable table{&simd_matmul_accumulate, &simd_select_matmul,
                                 &simd_matmul_gathered, &simd_matmul_batched,
                                 KernelTier::Avx512, "avx512"};
  return &table;
}

}  // namespace noisim::tsr::detail

#else  // !__AVX512F__

namespace noisim::tsr::detail {
const KernelTable* avx512_table() { return nullptr; }
}  // namespace noisim::tsr::detail

#endif
