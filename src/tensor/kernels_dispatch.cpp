#include "tensor/kernels.hpp"

#include <atomic>
#include <cstdio>
#include <string>

#include "support/env.hpp"

namespace noisim::tsr {

namespace detail {

// Defined in kernels_avx2.cpp / kernels_avx512.cpp; each returns nullptr
// when its TU was compiled without the matching ISA (non-x86 targets, or a
// toolchain lacking the flag).
const KernelTable* avx2_table();
const KernelTable* avx512_table();

/// Scalar reference table: the contract.cpp kernels every other tier is
/// bit-checked against. Always present.
const KernelTable* scalar_table() {
  static const KernelTable table{&matmul_accumulate, &select_matmul, &matmul_accumulate_gathered,
                                 &matmul_accumulate_batched, KernelTier::Scalar, "scalar"};
  return &table;
}

}  // namespace detail

namespace {

bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") > 0;
#else
  return false;
#endif
}

bool cpu_supports_avx512f() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") > 0;
#else
  return false;
#endif
}

void warn_fallback_once(KernelTier requested, KernelTier got) {
  static std::atomic<bool> warned{false};
  if (warned.exchange(true)) return;
  std::fprintf(stderr,
               "noisim: kernel tier \"%s\" is not supported on this host/build; "
               "falling back to \"%s\"\n",
               kernel_tier_name(requested), kernel_tier_name(got));
}

/// Resolve cpuid + NOISIM_KERNELS once; later set_kernel_tier calls swap
/// the pointer atomically.
std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* initial_table() {
  KernelTier requested = detected_kernel_tier();
  if (const char* env = support::env_get("NOISIM_KERNELS")) requested = parse_kernel_tier(env);
  const KernelTier tier = resolve_kernel_tier(requested);
  if (tier != requested) warn_fallback_once(requested, tier);
  return kernel_table(tier);
}

}  // namespace

KernelTier detected_kernel_tier() {
  // Require the tier's table to exist too: a build without the AVX-512 TU
  // must not "detect" a tier it cannot execute.
  if (cpu_supports_avx512f() && detail::avx512_table()) return KernelTier::Avx512;
  if (cpu_supports_avx2() && detail::avx2_table()) return KernelTier::Avx2;
  return KernelTier::Scalar;
}

const KernelTable* kernel_table(KernelTier tier) {
  switch (tier) {
    case KernelTier::Scalar:
      return detail::scalar_table();
    case KernelTier::Avx2:
      return cpu_supports_avx2() ? detail::avx2_table() : nullptr;
    case KernelTier::Avx512:
      return cpu_supports_avx512f() ? detail::avx512_table() : nullptr;
  }
  return nullptr;
}

KernelTier resolve_kernel_tier(KernelTier requested) {
  for (int t = static_cast<int>(requested); t > 0; --t)
    if (kernel_table(static_cast<KernelTier>(t))) return static_cast<KernelTier>(t);
  return KernelTier::Scalar;
}

KernelTier parse_kernel_tier(std::string_view value) {
  if (value == "auto") return detected_kernel_tier();
  if (value == "scalar") return KernelTier::Scalar;
  if (value == "avx2") return KernelTier::Avx2;
  if (value == "avx512") return KernelTier::Avx512;
  throw LinalgError("NOISIM_KERNELS: unknown kernel tier \"" + std::string(value) +
                    "\" (expected auto, scalar, avx2, or avx512)");
}

const KernelTable& active_kernels() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    table = initial_table();
    const KernelTable* expected = nullptr;
    // First resolver wins; racing threads resolve to the same table anyway
    // (env + cpuid are stable), so the losing store is dropped harmlessly.
    g_active.compare_exchange_strong(expected, table, std::memory_order_acq_rel);
  }
  return *table;
}

KernelTier active_kernel_tier() { return active_kernels().tier; }

KernelTier set_kernel_tier(KernelTier tier) {
  const KernelTier previous = active_kernel_tier();
  const KernelTier resolved = resolve_kernel_tier(tier);
  if (resolved != tier) warn_fallback_once(tier, resolved);
  g_active.store(kernel_table(resolved), std::memory_order_release);
  return previous;
}

const char* kernel_tier_name(KernelTier tier) {
  switch (tier) {
    case KernelTier::Scalar:
      return "scalar";
    case KernelTier::Avx2:
      return "avx2";
    case KernelTier::Avx512:
      return "avx512";
  }
  return "unknown";
}

}  // namespace noisim::tsr
