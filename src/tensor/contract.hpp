#pragma once
// Pairwise tensor contraction (einsum over explicit axis pairs).
//
// contract(A, {a1, a2}, B, {b1, b2}) sums over A-axis a1 with B-axis b1 and
// A-axis a2 with B-axis b2 simultaneously; the result carries A's free axes
// (in order) followed by B's free axes. This is the single primitive the
// tensor-network contractor is built on.

#include <span>

#include "tensor/tensor.hpp"

namespace noisim::tsr {

/// Number of elements the contraction result will hold; callers use this to
/// enforce memory budgets *before* allocating.
std::size_t contract_result_size(const Tensor& a, std::span<const std::size_t> axes_a,
                                 const Tensor& b, std::span<const std::size_t> axes_b);

Tensor contract(const Tensor& a, std::span<const std::size_t> axes_a, const Tensor& b,
                std::span<const std::size_t> axes_b);

inline Tensor contract(const Tensor& a, std::initializer_list<std::size_t> axes_a,
                       const Tensor& b, std::initializer_list<std::size_t> axes_b) {
  return contract(a, std::span<const std::size_t>(axes_a.begin(), axes_a.size()), b,
                  std::span<const std::size_t>(axes_b.begin(), axes_b.size()));
}

namespace detail {

/// out[m x n] += a[m x k] * b[k x n]. `out` must be zero-initialized (or
/// hold a partial sum to accumulate onto). Cache-blocked over the k and j
/// loops; per output element the k-accumulation order is ascending
/// regardless of blocking, so results are bit-identical to the naive
/// triple loop. Shared by tsr::contract and the tn plan executor.
void matmul_accumulate(const cplx* a, const cplx* b, cplx* out, std::size_t m, std::size_t k,
                       std::size_t n);

}  // namespace detail

}  // namespace noisim::tsr
