#pragma once
// Pairwise tensor contraction (einsum over explicit axis pairs).
//
// contract(A, {a1, a2}, B, {b1, b2}) sums over A-axis a1 with B-axis b1 and
// A-axis a2 with B-axis b2 simultaneously; the result carries A's free axes
// (in order) followed by B's free axes. This is the single primitive the
// tensor-network contractor is built on.

#include <span>

#include "tensor/tensor.hpp"

namespace noisim::tsr {

/// Number of elements the contraction result will hold; callers use this to
/// enforce memory budgets *before* allocating.
std::size_t contract_result_size(const Tensor& a, std::span<const std::size_t> axes_a,
                                 const Tensor& b, std::span<const std::size_t> axes_b);

Tensor contract(const Tensor& a, std::span<const std::size_t> axes_a, const Tensor& b,
                std::span<const std::size_t> axes_b);

inline Tensor contract(const Tensor& a, std::initializer_list<std::size_t> axes_a,
                       const Tensor& b, std::initializer_list<std::size_t> axes_b) {
  return contract(a, std::span<const std::size_t>(axes_a.begin(), axes_a.size()), b,
                  std::span<const std::size_t>(axes_b.begin(), axes_b.size()));
}

namespace detail {

/// out[m x n] += a[m x k] * b[k x n]. `out` must be zero-initialized (or
/// hold a partial sum to accumulate onto). Cache-blocked over the k and j
/// loops; per output element the k-accumulation order is ascending
/// regardless of blocking, so results are bit-identical to the naive
/// triple loop. Shared by tsr::contract and the tn plan executor.
void matmul_accumulate(const cplx* a, const cplx* b, cplx* out, std::size_t m, std::size_t k,
                       std::size_t n);

/// Signature shared by the generic kernel and the small-shape microkernels.
using MatmulFn = void (*)(const cplx* a, const cplx* b, cplx* out, std::size_t m, std::size_t k,
                          std::size_t n);

/// Kernel dispatch: a specialized microkernel for the dominant small shapes
/// of circuit tensor networks (k in {2, 4}, m*n <= 64 -- dim-2 wire bundles
/// against rank-3/4 gate tensors), the generic cache-blocked kernel
/// otherwise. Every returned kernel accumulates ascending-k per output
/// element, so the choice never changes bits -- callers executing many
/// same-shape products (the batched plan executor) select once per step
/// instead of re-entering the blocked kernel's setup per term. The fixed-k
/// microkernels keep the inner j loop on raw contiguous doubles, which the
/// compiler turns into SIMD mul/add (no FMA contraction, preserving IEEE
/// semantics bit for bit).
MatmulFn select_matmul(std::size_t m, std::size_t k, std::size_t n);

/// Permutation-fused variant: reads operand elements through optional
/// gather tables instead of requiring pre-permuted copies -- a_idx[i*k+kk]
/// (when non-null) is the flat offset of logical element (i, kk) in `a`,
/// b_idx[kk*n+j] likewise for `b`. Per output element the accumulation is
/// still ascending-k with the same zero-skip, so results are bit-identical
/// to permuting into scratch and calling matmul_accumulate; what changes is
/// that each operand is read once in place instead of copied, written, and
/// re-read. The batched executor uses this for its per-term (sequential)
/// pass, where operands change every term and permuted copies would be
/// pure overhead.
void matmul_accumulate_gathered(const cplx* a, const std::uint32_t* a_idx, const cplx* b,
                                const std::uint32_t* b_idx, cplx* out, std::size_t m,
                                std::size_t k, std::size_t n);

/// Strided-batched variant: for each slice s < batch,
///   out[s*out_stride] += a[s*a_stride] * b[s*b_stride]
/// as one m x k x n matmul. A stride of 0 broadcasts that operand across
/// the batch (shared leaf tensors are read in place, never copied). Kernel
/// selection and dispatch happen once for the whole batch; each slice is
/// bit-identical to a standalone matmul_accumulate call on its operands.
void matmul_accumulate_batched(const cplx* a, const cplx* b, cplx* out, std::size_t m,
                               std::size_t k, std::size_t n, std::size_t batch,
                               std::size_t a_stride, std::size_t b_stride,
                               std::size_t out_stride);

}  // namespace detail

}  // namespace noisim::tsr
