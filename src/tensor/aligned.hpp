#pragma once
// 64-byte-aligned storage for kernel operands.
//
// complex<double> buffers allocated through plain operator new are only
// 16-byte aligned (__STDCPP_DEFAULT_NEW_ALIGNMENT__), which is fine for
// scalar code but pessimizes wide vector loads: a 512-bit access spanning
// a cache line splits into two line fills. The plan executor's arenas and
// permutation scratch -- where every kernel operand that is not a leaf
// tensor lives -- allocate through these helpers instead, so every arena
// segment starts on a 64-byte (cache-line / zmm) boundary and aligned
// vector loads are safe at any tier.

#include <cstddef>
#include <new>
#include <vector>

#include "fault/fault.hpp"

namespace noisim::tsr {

/// Cache-line / widest-vector-register alignment every kernel tier may
/// assume for arena and scratch buffers.
inline constexpr std::size_t kKernelAlignment = 64;

/// Minimal std::allocator replacement forcing kKernelAlignment. Stateless,
/// so all instances compare equal and vectors move freely.
template <class T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U>&) {}

  T* allocate(std::size_t n) {
    fault::poke("aligned-alloc");
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{kKernelAlignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kKernelAlignment});
  }

  template <class U>
  bool operator==(const AlignedAllocator<U>&) const {
    return true;
  }
};

/// std::vector whose storage is kKernelAlignment-aligned.
template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace noisim::tsr
