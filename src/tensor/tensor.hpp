#pragma once
// Dense rank-k complex tensors with row-major storage.
//
// Axis semantics: a tensor of rank r has axes 0..r-1; the *last* axis is
// contiguous in memory. All quantum wires in noisim carry dimension 2, but
// the tensor type is dimension-agnostic so bond indices produced by
// contraction (which can have any size) are first-class.

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"

namespace noisim::tsr {

using la::Matrix;
using la::Vector;

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);

  /// Rank-0 tensor holding one value.
  static Tensor scalar(cplx value);
  /// Rank-2 tensor copying a matrix (axis 0 = row, axis 1 = column).
  static Tensor from_matrix(const Matrix& m);
  /// Rank-1 tensor copying a vector.
  static Tensor from_vector(const Vector& v);
  /// Rank-2 identity of the given dimension.
  static Tensor identity(std::size_t dim);

  std::size_t rank() const { return shape_.size(); }
  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t dim(std::size_t axis) const { return shape_[axis]; }
  std::size_t size() const { return data_.size(); }

  cplx& operator[](std::size_t flat) { return data_[flat]; }
  const cplx& operator[](std::size_t flat) const { return data_[flat]; }
  cplx& at(std::span<const std::size_t> idx) { return data_[flat_index(idx)]; }
  const cplx& at(std::span<const std::size_t> idx) const { return data_[flat_index(idx)]; }
  cplx& at(std::initializer_list<std::size_t> idx) {
    return at(std::span<const std::size_t>(idx.begin(), idx.size()));
  }
  const cplx& at(std::initializer_list<std::size_t> idx) const {
    return at(std::span<const std::size_t>(idx.begin(), idx.size()));
  }

  cplx* data() { return data_.data(); }
  const cplx* data() const { return data_.data(); }

  /// Row-major flat index of a multi-index.
  std::size_t flat_index(std::span<const std::size_t> idx) const;

  /// New tensor with axes reordered: result axis i is this->axis perm[i].
  /// The rvalue overload moves the storage through identity permutations
  /// (no copy); non-identity permutations copy either way (the walk cannot
  /// run in place).
  Tensor permute(std::span<const std::size_t> perm) const&;
  Tensor permute(std::span<const std::size_t> perm) &&;
  Tensor permute(std::initializer_list<std::size_t> perm) const& {
    return permute(std::span<const std::size_t>(perm.begin(), perm.size()));
  }
  Tensor permute(std::initializer_list<std::size_t> perm) && {
    return std::move(*this).permute(std::span<const std::size_t>(perm.begin(), perm.size()));
  }

  /// Reinterpret the same data under a new shape (sizes must agree). The
  /// rvalue overload moves the storage instead of copying it.
  Tensor reshape(std::vector<std::size_t> new_shape) const&;
  Tensor reshape(std::vector<std::size_t> new_shape) &&;

  /// Entry-wise complex conjugate.
  Tensor conj() const;

  Tensor& operator*=(cplx s);
  Tensor& operator+=(const Tensor& o);
  friend Tensor operator*(cplx s, Tensor t) { return t *= s; }
  friend Tensor operator+(Tensor a, const Tensor& b) { return a += b; }

  /// View a rank-2 tensor as a Matrix copy.
  Matrix to_matrix() const;
  /// View a rank-1 tensor as a Vector copy.
  Vector to_vector() const;
  /// Value of a rank-0 tensor.
  cplx to_scalar() const;

  double frobenius_norm() const;
  double max_abs() const;
  bool approx_equal(const Tensor& o, double tol = kDefaultTol) const;

 private:
  std::vector<std::size_t> shape_;
  std::vector<cplx> data_;
};

/// True iff perm[i] == i for every axis (permutation is a no-op).
bool is_identity_permutation(std::span<const std::size_t> perm);

/// Row-major strides of a shape (last axis contiguous).
std::vector<std::size_t> row_major_strides(const std::vector<std::size_t>& shape);

/// Permute `src` (row-major under `shape`) into `dst` so that dst axis i is
/// src axis perm[i] — the same operation as Tensor::permute without
/// allocating a Tensor. `dst` must not alias `src`.
void permute_into(const cplx* src, std::span<const std::size_t> shape,
                  std::span<const std::size_t> perm, cplx* dst);

/// Odometer walk used by permute_into / the plan executor: copy `total`
/// elements into `dst` in row-major order of `out_shape`, reading `src` at
/// the precomputed per-axis source strides. `idx` is caller-provided scratch
/// of out_shape.size() entries (zeroed on entry by this function).
void permute_walk(const cplx* src, std::span<const std::size_t> out_shape,
                  std::span<const std::size_t> src_stride, cplx* dst, std::size_t total,
                  std::size_t* idx);

/// Materialized permutation walk: gather[f] is the source offset the walk
/// reads for flat output position f, so applying the permutation becomes
/// dst[f] = src[gather[f]] with no per-element index arithmetic. The
/// batched plan executor builds these once per plan step and replays them
/// per term/slice. Offsets are 32-bit; callers gate on element count
/// (permute_gather_applies) and fall back to the odometer walk beyond it.
std::vector<std::uint32_t> permute_gather(std::span<const std::size_t> out_shape,
                                          std::span<const std::size_t> src_stride);

/// True when a gather table is worth materializing: the element count fits
/// 32-bit offsets and the table stays small enough to live in cache.
inline bool permute_gather_applies(std::size_t total) { return total <= (std::size_t{1} << 16); }

/// Apply a gather table: dst[f] = src[gather[f]].
inline void gather_walk(const cplx* src, std::span<const std::uint32_t> gather, cplx* dst) {
  for (std::size_t f = 0; f < gather.size(); ++f) dst[f] = src[gather[f]];
}

/// Partial trace: contract axis a with axis b of the same tensor
/// (dimensions must match); the result drops both axes.
Tensor trace_axes(const Tensor& t, std::size_t a, std::size_t b);

/// Outer product: result shape = shape(a) ++ shape(b).
Tensor outer(const Tensor& a, const Tensor& b);

}  // namespace noisim::tsr
