#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace noisim::tsr {

namespace {

std::size_t shape_size(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) {
    la::detail::require(d > 0, "Tensor: zero-dimension axis");
    n *= d;
  }
  return n;
}

}  // namespace

std::vector<std::size_t> row_major_strides(const std::vector<std::size_t>& shape) {
  std::vector<std::size_t> st(shape.size());
  std::size_t acc = 1;
  for (std::size_t i = shape.size(); i-- > 0;) {
    st[i] = acc;
    acc *= shape[i];
  }
  return st;
}

bool is_identity_permutation(std::span<const std::size_t> perm) {
  for (std::size_t i = 0; i < perm.size(); ++i)
    if (perm[i] != i) return false;
  return true;
}

void permute_walk(const cplx* src, std::span<const std::size_t> out_shape,
                  std::span<const std::size_t> src_stride, cplx* dst, std::size_t total,
                  std::size_t* idx) {
  const std::size_t rank = out_shape.size();
  if (rank == 0) {
    if (total > 0) dst[0] = src[0];
    return;
  }
  std::fill(idx, idx + rank, 0);
  std::size_t at = 0;
  for (std::size_t flat = 0; flat < total; ++flat) {
    dst[flat] = src[at];
    for (std::size_t ax = rank; ax-- > 0;) {
      if (++idx[ax] < out_shape[ax]) {
        at += src_stride[ax];
        break;
      }
      at -= src_stride[ax] * (out_shape[ax] - 1);
      idx[ax] = 0;
    }
  }
}

std::vector<std::uint32_t> permute_gather(std::span<const std::size_t> out_shape,
                                          std::span<const std::size_t> src_stride) {
  const std::size_t rank = out_shape.size();
  std::size_t total = 1;
  for (std::size_t d : out_shape) total *= d;
  la::detail::require(permute_gather_applies(total), "permute_gather: table too large");
  std::vector<std::uint32_t> gather(rank == 0 ? 1 : total);
  std::vector<std::size_t> idx(rank, 0);
  std::size_t at = 0;
  for (std::size_t flat = 0; flat < gather.size(); ++flat) {
    gather[flat] = static_cast<std::uint32_t>(at);
    for (std::size_t ax = rank; ax-- > 0;) {
      if (++idx[ax] < out_shape[ax]) {
        at += src_stride[ax];
        break;
      }
      at -= src_stride[ax] * (out_shape[ax] - 1);
      idx[ax] = 0;
    }
  }
  return gather;
}

void permute_into(const cplx* src, std::span<const std::size_t> shape,
                  std::span<const std::size_t> perm, cplx* dst) {
  const std::size_t rank = shape.size();
  la::detail::require(perm.size() == rank, "permute_into: rank mismatch");
  const std::vector<std::size_t> strides =
      row_major_strides(std::vector<std::size_t>(shape.begin(), shape.end()));
  std::vector<std::size_t> out_shape(rank), src_stride(rank), idx(rank);
  std::size_t total = 1;
  for (std::size_t i = 0; i < rank; ++i) {
    out_shape[i] = shape[perm[i]];
    src_stride[i] = strides[perm[i]];
    total *= out_shape[i];
  }
  permute_walk(src, out_shape, src_stride, dst, rank == 0 ? 1 : total, idx.data());
}

Tensor::Tensor(std::vector<std::size_t> shape) : shape_(std::move(shape)) {
  data_.assign(shape_size(shape_), cplx{0.0, 0.0});
}

Tensor Tensor::scalar(cplx value) {
  Tensor t{std::vector<std::size_t>{}};
  t.data_[0] = value;
  return t;
}

Tensor Tensor::from_matrix(const Matrix& m) {
  Tensor t{{m.rows(), m.cols()}};
  std::copy(m.data(), m.data() + m.rows() * m.cols(), t.data_.begin());
  return t;
}

Tensor Tensor::from_vector(const Vector& v) {
  Tensor t{{v.size()}};
  std::copy(v.data(), v.data() + v.size(), t.data_.begin());
  return t;
}

Tensor Tensor::identity(std::size_t dim) {
  Tensor t{{dim, dim}};
  for (std::size_t i = 0; i < dim; ++i) t.data_[i * dim + i] = cplx{1.0, 0.0};
  return t;
}

std::size_t Tensor::flat_index(std::span<const std::size_t> idx) const {
  la::detail::require(idx.size() == shape_.size(), "Tensor::at: rank mismatch");
  std::size_t flat = 0;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    la::detail::require(idx[i] < shape_[i], "Tensor::at: index out of range");
    flat = flat * shape_[i] + idx[i];
  }
  return flat;
}

Tensor Tensor::permute(std::span<const std::size_t> perm) const& {
  la::detail::require(perm.size() == rank(), "Tensor::permute: rank mismatch");
  std::vector<bool> seen(rank(), false);
  for (std::size_t p : perm) {
    la::detail::require(p < rank() && !seen[p], "Tensor::permute: invalid permutation");
    seen[p] = true;
  }
  if (is_identity_permutation(perm)) return *this;

  std::vector<std::size_t> new_shape(rank());
  for (std::size_t i = 0; i < rank(); ++i) new_shape[i] = shape_[perm[i]];
  Tensor out(new_shape);
  permute_into(data_.data(), shape_, perm, out.data_.data());
  return out;
}

Tensor Tensor::permute(std::span<const std::size_t> perm) && {
  if (perm.size() == rank() && is_identity_permutation(perm)) return std::move(*this);
  return static_cast<const Tensor&>(*this).permute(perm);
}

Tensor Tensor::reshape(std::vector<std::size_t> new_shape) const& {
  la::detail::require(shape_size(new_shape) == size(), "Tensor::reshape: size mismatch");
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  return out;
}

Tensor Tensor::reshape(std::vector<std::size_t> new_shape) && {
  la::detail::require(shape_size(new_shape) == size(), "Tensor::reshape: size mismatch");
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = std::move(data_);
  return out;
}

Tensor Tensor::conj() const {
  Tensor out = *this;
  for (cplx& x : out.data_) x = std::conj(x);
  return out;
}

Tensor& Tensor::operator*=(cplx s) {
  for (cplx& x : data_) x *= s;
  return *this;
}

Tensor& Tensor::operator+=(const Tensor& o) {
  la::detail::require(shape_ == o.shape_, "Tensor::operator+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix Tensor::to_matrix() const {
  la::detail::require(rank() == 2, "Tensor::to_matrix: rank != 2");
  Matrix m(shape_[0], shape_[1]);
  std::copy(data_.begin(), data_.end(), m.data());
  return m;
}

Vector Tensor::to_vector() const {
  la::detail::require(rank() == 1, "Tensor::to_vector: rank != 1");
  Vector v(shape_[0]);
  std::copy(data_.begin(), data_.end(), v.data());
  return v;
}

cplx Tensor::to_scalar() const {
  la::detail::require(rank() == 0, "Tensor::to_scalar: rank != 0");
  return data_[0];
}

double Tensor::frobenius_norm() const {
  double s = 0.0;
  for (const cplx& x : data_) s += std::norm(x);
  return std::sqrt(s);
}

double Tensor::max_abs() const {
  double m = 0.0;
  for (const cplx& x : data_) m = std::max(m, std::abs(x));
  return m;
}

bool Tensor::approx_equal(const Tensor& o, double tol) const {
  if (shape_ != o.shape_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i)
    if (!noisim::approx_equal(data_[i], o.data_[i], tol)) return false;
  return true;
}

Tensor trace_axes(const Tensor& t, std::size_t a, std::size_t b) {
  la::detail::require(a != b && a < t.rank() && b < t.rank(), "trace_axes: bad axes");
  la::detail::require(t.dim(a) == t.dim(b), "trace_axes: dimension mismatch");
  if (a > b) std::swap(a, b);

  // Move axes a, b to the back, then sum the diagonal of the trailing pair.
  std::vector<std::size_t> perm;
  perm.reserve(t.rank());
  for (std::size_t i = 0; i < t.rank(); ++i)
    if (i != a && i != b) perm.push_back(i);
  perm.push_back(a);
  perm.push_back(b);
  const Tensor moved = t.permute(perm);

  std::vector<std::size_t> out_shape(moved.shape().begin(), moved.shape().end() - 2);
  Tensor out(out_shape);
  const std::size_t d = t.dim(a);
  for (std::size_t i = 0; i < out.size(); ++i) {
    cplx s{0.0, 0.0};
    for (std::size_t k = 0; k < d; ++k) s += moved[i * d * d + k * d + k];
    out[i] = s;
  }
  return out;
}

Tensor outer(const Tensor& a, const Tensor& b) {
  std::vector<std::size_t> shape = a.shape();
  shape.insert(shape.end(), b.shape().begin(), b.shape().end());
  Tensor out(shape);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const cplx ai = a[i];
    if (ai == cplx{0.0, 0.0}) continue;
    cplx* dst = out.data() + i * b.size();
    const cplx* src = b.data();
    for (std::size_t j = 0; j < b.size(); ++j) dst[j] += ai * src[j];
  }
  return out;
}

}  // namespace noisim::tsr
