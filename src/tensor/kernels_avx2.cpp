// AVX2 kernel tier. Compiled with -mavx2 -ffp-contract=off (see
// CMakeLists.txt): the contract-off flag guarantees the compiler never
// fuses the separate mul/add intrinsics below into FMA, which would break
// bit-identity with the scalar tier.
//
// Layout: complex<double> rows are interleaved (re, im) doubles, so one
// 256-bit register holds TWO complex elements. The complex axpy
//   o += (ar + i*ai) * b
// per lane-pair is t1 = ar*b, t2 = ai*swap(b), o += addsub(t1, t2) --
// addsub subtracts in the even (real) lanes and adds in the odd
// (imaginary) lanes, which is exactly the scalar sequence
//   o_re += ar*b_re - ai*b_im;  o_im += ar*b_im + ai*b_re
// as individual IEEE operations. Remainders run the identical arithmetic
// on one 128-bit complex element, so every output element sees the same
// operation sequence as the scalar kernel regardless of n.

#include "tensor/kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>

namespace noisim::tsr::detail {
namespace {

/// One complex element through SSE registers (the vector remainder): same
/// mul/mul/addsub/add sequence as the 256-bit path, one lane-pair wide.
inline void axpy_one(double ar, double ai, const double* b, double* o) {
  const __m128d vb = _mm_loadu_pd(b);
  const __m128d vs = _mm_shuffle_pd(vb, vb, 0b01);
  const __m128d t1 = _mm_mul_pd(_mm_set1_pd(ar), vb);
  const __m128d t2 = _mm_mul_pd(_mm_set1_pd(ai), vs);
  const __m128d vo = _mm_loadu_pd(o);
  _mm_storeu_pd(o, _mm_add_pd(vo, _mm_addsub_pd(t1, t2)));
}

inline void axpy(double ar, double ai, const double* b, double* o, std::size_t n) {
  const __m256d var = _mm256_set1_pd(ar);
  const __m256d vai = _mm256_set1_pd(ai);
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const __m256d vb = _mm256_loadu_pd(b + 2 * j);
    const __m256d vs = _mm256_permute_pd(vb, 0b0101);  // swap re/im per pair
    const __m256d t1 = _mm256_mul_pd(var, vb);
    const __m256d t2 = _mm256_mul_pd(vai, vs);
    const __m256d vo = _mm256_loadu_pd(o + 2 * j);
    _mm256_storeu_pd(o + 2 * j, _mm256_add_pd(vo, _mm256_addsub_pd(t1, t2)));
  }
  if (j < n) axpy_one(ar, ai, b + 2 * j, o + 2 * j);
}

inline void axpy_gathered(double ar, double ai, const double* pb, const std::uint32_t* bidx,
                          double* o, std::size_t n) {
  const __m256d var = _mm256_set1_pd(ar);
  const __m256d vai = _mm256_set1_pd(ai);
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const __m256d vb = _mm256_set_m128d(_mm_loadu_pd(pb + 2 * bidx[j + 1]),
                                        _mm_loadu_pd(pb + 2 * bidx[j]));
    const __m256d vs = _mm256_permute_pd(vb, 0b0101);
    const __m256d t1 = _mm256_mul_pd(var, vb);
    const __m256d t2 = _mm256_mul_pd(vai, vs);
    const __m256d vo = _mm256_loadu_pd(o + 2 * j);
    _mm256_storeu_pd(o + 2 * j, _mm256_add_pd(vo, _mm256_addsub_pd(t1, t2)));
  }
  if (j < n) axpy_one(ar, ai, pb + 2 * bidx[j], o + 2 * j);
}

#include "tensor/kernels_simd_body.inc"

}  // namespace

const KernelTable* avx2_table() {
  static const KernelTable table{&simd_matmul_accumulate, &simd_select_matmul,
                                 &simd_matmul_gathered, &simd_matmul_batched, KernelTier::Avx2,
                                 "avx2"};
  return &table;
}

}  // namespace noisim::tsr::detail

#else  // !__AVX2__ -- TU built without the flag (non-x86 target)

namespace noisim::tsr::detail {
const KernelTable* avx2_table() { return nullptr; }
}  // namespace noisim::tsr::detail

#endif
