#include "tensor/contract.hpp"

#include <algorithm>

namespace noisim::tsr {

namespace {

struct Plan {
  std::vector<std::size_t> free_a;   // axes of A kept
  std::vector<std::size_t> free_b;   // axes of B kept
  std::size_t m = 1;                 // product of A free dims
  std::size_t k = 1;                 // product of contracted dims
  std::size_t n = 1;                 // product of B free dims
  std::vector<std::size_t> out_shape;
};

Plan make_plan(const Tensor& a, std::span<const std::size_t> axes_a, const Tensor& b,
               std::span<const std::size_t> axes_b) {
  la::detail::require(axes_a.size() == axes_b.size(), "contract: axis count mismatch");
  std::vector<bool> used_a(a.rank(), false), used_b(b.rank(), false);
  for (std::size_t i = 0; i < axes_a.size(); ++i) {
    const std::size_t ax = axes_a[i], bx = axes_b[i];
    la::detail::require(ax < a.rank() && bx < b.rank(), "contract: axis out of range");
    la::detail::require(!used_a[ax] && !used_b[bx], "contract: repeated axis");
    la::detail::require(a.dim(ax) == b.dim(bx), "contract: contracted dims differ");
    used_a[ax] = used_b[bx] = true;
  }

  Plan p;
  for (std::size_t i = 0; i < a.rank(); ++i)
    if (!used_a[i]) {
      p.free_a.push_back(i);
      p.m *= a.dim(i);
      p.out_shape.push_back(a.dim(i));
    }
  for (std::size_t i = 0; i < b.rank(); ++i)
    if (!used_b[i]) {
      p.free_b.push_back(i);
      p.n *= b.dim(i);
      p.out_shape.push_back(b.dim(i));
    }
  for (std::size_t ax : axes_a) p.k *= a.dim(ax);
  return p;
}

}  // namespace

std::size_t contract_result_size(const Tensor& a, std::span<const std::size_t> axes_a,
                                 const Tensor& b, std::span<const std::size_t> axes_b) {
  const Plan p = make_plan(a, axes_a, b, axes_b);
  return p.m * p.n;
}

Tensor contract(const Tensor& a, std::span<const std::size_t> axes_a, const Tensor& b,
                std::span<const std::size_t> axes_b) {
  const Plan p = make_plan(a, axes_a, b, axes_b);

  // Bring A to [free..., contracted...] and B to [contracted..., free...],
  // then the contraction is a (m x k) * (k x n) matrix product.
  std::vector<std::size_t> perm_a = p.free_a;
  perm_a.insert(perm_a.end(), axes_a.begin(), axes_a.end());
  std::vector<std::size_t> perm_b(axes_b.begin(), axes_b.end());
  perm_b.insert(perm_b.end(), p.free_b.begin(), p.free_b.end());

  const Tensor at = a.permute(perm_a);
  const Tensor bt = b.permute(perm_b);

  Tensor out(p.out_shape.empty() ? std::vector<std::size_t>{} : p.out_shape);
  if (p.out_shape.empty()) out = Tensor::scalar(cplx{0.0, 0.0});

  // ikj loop: the inner loop streams contiguously over bt's row j-range.
  const cplx* pa = at.data();
  const cplx* pb = bt.data();
  cplx* po = out.data();
  for (std::size_t i = 0; i < p.m; ++i) {
    cplx* orow = po + i * p.n;
    const cplx* arow = pa + i * p.k;
    for (std::size_t kk = 0; kk < p.k; ++kk) {
      const cplx aik = arow[kk];
      if (aik == cplx{0.0, 0.0}) continue;
      const cplx* brow = pb + kk * p.n;
      for (std::size_t j = 0; j < p.n; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

}  // namespace noisim::tsr
