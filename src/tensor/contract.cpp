#include "tensor/contract.hpp"

#include <algorithm>

#include "tensor/kernels.hpp"

namespace noisim::tsr {

namespace {

struct Plan {
  std::vector<std::size_t> free_a;   // axes of A kept
  std::vector<std::size_t> free_b;   // axes of B kept
  std::size_t m = 1;                 // product of A free dims
  std::size_t k = 1;                 // product of contracted dims
  std::size_t n = 1;                 // product of B free dims
  std::vector<std::size_t> out_shape;
};

Plan make_plan(const Tensor& a, std::span<const std::size_t> axes_a, const Tensor& b,
               std::span<const std::size_t> axes_b) {
  la::detail::require(axes_a.size() == axes_b.size(), "contract: axis count mismatch");
  std::vector<bool> used_a(a.rank(), false), used_b(b.rank(), false);
  for (std::size_t i = 0; i < axes_a.size(); ++i) {
    const std::size_t ax = axes_a[i], bx = axes_b[i];
    la::detail::require(ax < a.rank() && bx < b.rank(), "contract: axis out of range");
    la::detail::require(!used_a[ax] && !used_b[bx], "contract: repeated axis");
    la::detail::require(a.dim(ax) == b.dim(bx), "contract: contracted dims differ");
    used_a[ax] = used_b[bx] = true;
  }

  Plan p;
  for (std::size_t i = 0; i < a.rank(); ++i)
    if (!used_a[i]) {
      p.free_a.push_back(i);
      p.m *= a.dim(i);
      p.out_shape.push_back(a.dim(i));
    }
  for (std::size_t i = 0; i < b.rank(); ++i)
    if (!used_b[i]) {
      p.free_b.push_back(i);
      p.n *= b.dim(i);
      p.out_shape.push_back(b.dim(i));
    }
  for (std::size_t ax : axes_a) p.k *= a.dim(ax);
  return p;
}

}  // namespace

namespace detail {

void matmul_accumulate(const cplx* a, const cplx* b, cplx* out, std::size_t m, std::size_t k,
                       std::size_t n) {
  // Panel sizes: a kBlockK x kBlockJ panel of b (64 KiB of complex<double>)
  // stays cache-resident across the whole i loop. Blocks are visited in
  // ascending order, so each out[i, j] still accumulates over kk = 0..k-1
  // ascending -- bit-identical to the unblocked ikj loop.
  //
  // The inner loop works on raw doubles: (ar*br - ai*bi, ar*bi + ai*br) is
  // the exact operation std::complex multiplication performs on finite
  // values (identical results bit for bit), but stated this way the
  // compiler vectorizes it instead of emitting __muldc3 calls.
  constexpr std::size_t kBlockK = 64;
  constexpr std::size_t kBlockJ = 64;
  const double* pa = reinterpret_cast<const double*>(a);
  const double* pb = reinterpret_cast<const double*>(b);
  double* po = reinterpret_cast<double*>(out);
  for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
    const std::size_t k1 = std::min(k, k0 + kBlockK);
    for (std::size_t j0 = 0; j0 < n; j0 += kBlockJ) {
      const std::size_t j1 = std::min(n, j0 + kBlockJ);
      for (std::size_t i = 0; i < m; ++i) {
        double* orow = po + 2 * i * n;
        const double* arow = pa + 2 * i * k;
        for (std::size_t kk = k0; kk < k1; ++kk) {
          const double ar = arow[2 * kk];
          const double ai = arow[2 * kk + 1];
          if (ar == 0.0 && ai == 0.0) continue;
          const double* brow = pb + 2 * kk * n;
          for (std::size_t j = j0; j < j1; ++j) {
            const double br = brow[2 * j];
            const double bi = brow[2 * j + 1];
            orow[2 * j] += ar * br - ai * bi;
            orow[2 * j + 1] += ar * bi + ai * br;
          }
        }
      }
    }
  }
}

namespace {

/// Fixed-k microkernel, k = Kc known at compile time. For k <= 64 and
/// n <= 64 the blocked kernel above degenerates to a single (k0, j0) block,
/// i.e. the plain i/kk/j loop with the same zero-skip -- this kernel is that
/// loop with the kk trip count baked in, so results are bit-identical while
/// the compiler fully unrolls kk and vectorizes the contiguous j loop.
template <std::size_t Kc>
void matmul_small_k(const cplx* a, const cplx* b, cplx* out, std::size_t m, std::size_t k,
                    std::size_t n) {
  (void)k;  // == Kc by dispatch contract
  const double* pa = reinterpret_cast<const double*>(a);
  const double* pb = reinterpret_cast<const double*>(b);
  double* po = reinterpret_cast<double*>(out);
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = pa + 2 * i * Kc;
    double* orow = po + 2 * i * n;
    for (std::size_t kk = 0; kk < Kc; ++kk) {
      const double ar = arow[2 * kk];
      const double ai = arow[2 * kk + 1];
      if (ar == 0.0 && ai == 0.0) continue;
      const double* brow = pb + 2 * kk * n;
      for (std::size_t j = 0; j < n; ++j) {
        const double br = brow[2 * j];
        const double bi = brow[2 * j + 1];
        orow[2 * j] += ar * br - ai * bi;
        orow[2 * j + 1] += ar * bi + ai * br;
      }
    }
  }
}

/// Fixed k x n panel microkernel for the circuit-network workhorse: a long
/// boundary tensor (any m) absorbing a 1- or 2-qubit gate (k, n in {2, 4}).
/// The whole b panel -- at most 4 x 4 complex -- is hoisted into locals
/// reused by every row of a, and the kk/j loops fully unroll, leaving one
/// streaming pass over a and out. Same single-block i/kk(zero-skip)/j
/// structure as the blocked kernel, so bits never change.
template <std::size_t Kc, std::size_t Nc>
void matmul_small_kn(const cplx* a, const cplx* b, cplx* out, std::size_t m, std::size_t k,
                     std::size_t n) {
  (void)k;  // == Kc by dispatch contract
  (void)n;  // == Nc by dispatch contract
  const double* pa = reinterpret_cast<const double*>(a);
  const double* pb = reinterpret_cast<const double*>(b);
  double* po = reinterpret_cast<double*>(out);
  double br[Kc * Nc], bi[Kc * Nc];
  for (std::size_t e = 0; e < Kc * Nc; ++e) {
    br[e] = pb[2 * e];
    bi[e] = pb[2 * e + 1];
  }
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = pa + 2 * i * Kc;
    double* orow = po + 2 * i * Nc;
    for (std::size_t kk = 0; kk < Kc; ++kk) {
      const double ar = arow[2 * kk];
      const double ai = arow[2 * kk + 1];
      if (ar == 0.0 && ai == 0.0) continue;
      for (std::size_t j = 0; j < Nc; ++j) {
        orow[2 * j] += ar * br[kk * Nc + j] - ai * bi[kk * Nc + j];
        orow[2 * j + 1] += ar * bi[kk * Nc + j] + ai * br[kk * Nc + j];
      }
    }
  }
}

}  // namespace

MatmulFn select_matmul(std::size_t m, std::size_t k, std::size_t n) {
  // The microkernels are only bit-identical while the blocked kernel stays
  // a single block: k inside one kBlockK panel, n inside one kBlockJ panel
  // (all shapes below satisfy both). Panel kernels cover gate absorption
  // into arbitrarily long boundary tensors; the fixed-k kernels cover the
  // remaining tiny outputs where blocked-kernel setup dominates.
  if (k == 2) {
    if (n == 2) return &matmul_small_kn<2, 2>;
    if (n == 4) return &matmul_small_kn<2, 4>;
    if (m * n <= 64) return &matmul_small_k<2>;
  }
  if (k == 4) {
    if (n == 2) return &matmul_small_kn<4, 2>;
    if (n == 4) return &matmul_small_kn<4, 4>;
    if (m * n <= 64) return &matmul_small_k<4>;
  }
  if (k == 8) {
    if (n == 2) return &matmul_small_kn<8, 2>;
    if (n == 4) return &matmul_small_kn<8, 4>;
  }
  if (k == 16) {
    if (n == 2) return &matmul_small_kn<16, 2>;
    if (n == 4) return &matmul_small_kn<16, 4>;
  }
  return &matmul_accumulate;
}

void matmul_accumulate_gathered(const cplx* a, const std::uint32_t* a_idx, const cplx* b,
                                const std::uint32_t* b_idx, cplx* out, std::size_t m,
                                std::size_t k, std::size_t n) {
  // Plain i/kk/j traversal: blocking only reorders (i, j) visits, never the
  // per-element kk order, so this is bit-identical to the blocked kernel.
  const double* pa = reinterpret_cast<const double*>(a);
  const double* pb = reinterpret_cast<const double*>(b);
  double* po = reinterpret_cast<double*>(out);
  for (std::size_t i = 0; i < m; ++i) {
    double* orow = po + 2 * i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const std::size_t ae = a_idx ? a_idx[i * k + kk] : i * k + kk;
      const double ar = pa[2 * ae];
      const double ai = pa[2 * ae + 1];
      if (ar == 0.0 && ai == 0.0) continue;
      if (b_idx) {
        const std::uint32_t* bidx_row = b_idx + kk * n;
        for (std::size_t j = 0; j < n; ++j) {
          const std::size_t be = bidx_row[j];
          const double br = pb[2 * be];
          const double bi = pb[2 * be + 1];
          orow[2 * j] += ar * br - ai * bi;
          orow[2 * j + 1] += ar * bi + ai * br;
        }
      } else {
        const double* brow = pb + 2 * kk * n;
        for (std::size_t j = 0; j < n; ++j) {
          const double br = brow[2 * j];
          const double bi = brow[2 * j + 1];
          orow[2 * j] += ar * br - ai * bi;
          orow[2 * j + 1] += ar * bi + ai * br;
        }
      }
    }
  }
}

void matmul_accumulate_batched(const cplx* a, const cplx* b, cplx* out, std::size_t m,
                               std::size_t k, std::size_t n, std::size_t batch,
                               std::size_t a_stride, std::size_t b_stride,
                               std::size_t out_stride) {
  const MatmulFn kernel = select_matmul(m, k, n);
  for (std::size_t s = 0; s < batch; ++s)
    kernel(a + s * a_stride, b + s * b_stride, out + s * out_stride, m, k, n);
}

}  // namespace detail

std::size_t contract_result_size(const Tensor& a, std::span<const std::size_t> axes_a,
                                 const Tensor& b, std::span<const std::size_t> axes_b) {
  const Plan p = make_plan(a, axes_a, b, axes_b);
  return p.m * p.n;
}

Tensor contract(const Tensor& a, std::span<const std::size_t> axes_a, const Tensor& b,
                std::span<const std::size_t> axes_b) {
  const Plan p = make_plan(a, axes_a, b, axes_b);

  // Bring A to [free..., contracted...] and B to [contracted..., free...],
  // then the contraction is a (m x k) * (k x n) matrix product. Operands
  // that are already in that order (e.g. matrix-shaped tensors contracted
  // along their natural axes) are used in place without a permuted copy.
  std::vector<std::size_t> perm_a = p.free_a;
  perm_a.insert(perm_a.end(), axes_a.begin(), axes_a.end());
  std::vector<std::size_t> perm_b(axes_b.begin(), axes_b.end());
  perm_b.insert(perm_b.end(), p.free_b.begin(), p.free_b.end());

  Tensor at_store, bt_store;
  const cplx* pa = a.data();
  if (!is_identity_permutation(perm_a)) {
    at_store = a.permute(perm_a);
    pa = at_store.data();
  }
  const cplx* pb = b.data();
  if (!is_identity_permutation(perm_b)) {
    bt_store = b.permute(perm_b);
    pb = bt_store.data();
  }

  Tensor out(p.out_shape);
  active_kernels().matmul(pa, pb, out.data(), p.m, p.k, p.n);
  return out;
}

}  // namespace noisim::tsr
