#include "tensor/contract.hpp"

#include <algorithm>

namespace noisim::tsr {

namespace {

struct Plan {
  std::vector<std::size_t> free_a;   // axes of A kept
  std::vector<std::size_t> free_b;   // axes of B kept
  std::size_t m = 1;                 // product of A free dims
  std::size_t k = 1;                 // product of contracted dims
  std::size_t n = 1;                 // product of B free dims
  std::vector<std::size_t> out_shape;
};

Plan make_plan(const Tensor& a, std::span<const std::size_t> axes_a, const Tensor& b,
               std::span<const std::size_t> axes_b) {
  la::detail::require(axes_a.size() == axes_b.size(), "contract: axis count mismatch");
  std::vector<bool> used_a(a.rank(), false), used_b(b.rank(), false);
  for (std::size_t i = 0; i < axes_a.size(); ++i) {
    const std::size_t ax = axes_a[i], bx = axes_b[i];
    la::detail::require(ax < a.rank() && bx < b.rank(), "contract: axis out of range");
    la::detail::require(!used_a[ax] && !used_b[bx], "contract: repeated axis");
    la::detail::require(a.dim(ax) == b.dim(bx), "contract: contracted dims differ");
    used_a[ax] = used_b[bx] = true;
  }

  Plan p;
  for (std::size_t i = 0; i < a.rank(); ++i)
    if (!used_a[i]) {
      p.free_a.push_back(i);
      p.m *= a.dim(i);
      p.out_shape.push_back(a.dim(i));
    }
  for (std::size_t i = 0; i < b.rank(); ++i)
    if (!used_b[i]) {
      p.free_b.push_back(i);
      p.n *= b.dim(i);
      p.out_shape.push_back(b.dim(i));
    }
  for (std::size_t ax : axes_a) p.k *= a.dim(ax);
  return p;
}

}  // namespace

namespace detail {

void matmul_accumulate(const cplx* a, const cplx* b, cplx* out, std::size_t m, std::size_t k,
                       std::size_t n) {
  // Panel sizes: a kBlockK x kBlockJ panel of b (64 KiB of complex<double>)
  // stays cache-resident across the whole i loop. Blocks are visited in
  // ascending order, so each out[i, j] still accumulates over kk = 0..k-1
  // ascending -- bit-identical to the unblocked ikj loop.
  //
  // The inner loop works on raw doubles: (ar*br - ai*bi, ar*bi + ai*br) is
  // the exact operation std::complex multiplication performs on finite
  // values (identical results bit for bit), but stated this way the
  // compiler vectorizes it instead of emitting __muldc3 calls.
  constexpr std::size_t kBlockK = 64;
  constexpr std::size_t kBlockJ = 64;
  const double* pa = reinterpret_cast<const double*>(a);
  const double* pb = reinterpret_cast<const double*>(b);
  double* po = reinterpret_cast<double*>(out);
  for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
    const std::size_t k1 = std::min(k, k0 + kBlockK);
    for (std::size_t j0 = 0; j0 < n; j0 += kBlockJ) {
      const std::size_t j1 = std::min(n, j0 + kBlockJ);
      for (std::size_t i = 0; i < m; ++i) {
        double* orow = po + 2 * i * n;
        const double* arow = pa + 2 * i * k;
        for (std::size_t kk = k0; kk < k1; ++kk) {
          const double ar = arow[2 * kk];
          const double ai = arow[2 * kk + 1];
          if (ar == 0.0 && ai == 0.0) continue;
          const double* brow = pb + 2 * kk * n;
          for (std::size_t j = j0; j < j1; ++j) {
            const double br = brow[2 * j];
            const double bi = brow[2 * j + 1];
            orow[2 * j] += ar * br - ai * bi;
            orow[2 * j + 1] += ar * bi + ai * br;
          }
        }
      }
    }
  }
}

}  // namespace detail

std::size_t contract_result_size(const Tensor& a, std::span<const std::size_t> axes_a,
                                 const Tensor& b, std::span<const std::size_t> axes_b) {
  const Plan p = make_plan(a, axes_a, b, axes_b);
  return p.m * p.n;
}

Tensor contract(const Tensor& a, std::span<const std::size_t> axes_a, const Tensor& b,
                std::span<const std::size_t> axes_b) {
  const Plan p = make_plan(a, axes_a, b, axes_b);

  // Bring A to [free..., contracted...] and B to [contracted..., free...],
  // then the contraction is a (m x k) * (k x n) matrix product. Operands
  // that are already in that order (e.g. matrix-shaped tensors contracted
  // along their natural axes) are used in place without a permuted copy.
  std::vector<std::size_t> perm_a = p.free_a;
  perm_a.insert(perm_a.end(), axes_a.begin(), axes_a.end());
  std::vector<std::size_t> perm_b(axes_b.begin(), axes_b.end());
  perm_b.insert(perm_b.end(), p.free_b.begin(), p.free_b.end());

  Tensor at_store, bt_store;
  const cplx* pa = a.data();
  if (!is_identity_permutation(perm_a)) {
    at_store = a.permute(perm_a);
    pa = at_store.data();
  }
  const cplx* pb = b.data();
  if (!is_identity_permutation(perm_b)) {
    bt_store = b.permute(perm_b);
    pb = bt_store.data();
  }

  Tensor out(p.out_shape);
  detail::matmul_accumulate(pa, pb, out.data(), p.m, p.k, p.n);
  return out;
}

}  // namespace noisim::tsr
