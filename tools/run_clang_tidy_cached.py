#!/usr/bin/env python3
"""clang-tidy driver with a content-hash result cache (CI).

run-clang-tidy re-analyzes every TU on every run; on a warm tree that is
minutes of CI for zero new information. This driver keys each TU on a
sha256 of everything that can change its verdict:

  * the TU's own bytes,
  * its exact compile command from compile_commands.json,
  * the .clang-tidy configuration,
  * a digest over EVERY first-party header (.hpp/.hh/.inc) -- one header
    edit invalidates the whole cache rather than tracking per-TU include
    graphs; safe over clever,
  * the clang-tidy version string.

A TU whose key has a stamp file in the cache directory is skipped; a TU
that analyzes clean writes its stamp. Findings (clang-tidy exit != 0, with
WarningsAsErrors: '*' any finding is fatal) leave no stamp, so reruns
re-analyze exactly the dirty files. The CI job persists the cache directory
with actions/cache keyed on the same hashes.

Usage: run_clang_tidy_cached.py --build-dir build [--cache-dir .tidy-cache]
                                [--clang-tidy clang-tidy-18] [--jobs N]
"""

import argparse
import concurrent.futures
import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

FIRST_PARTY_DIRS = ("src", "tests", "bench", "examples")
HEADER_SUFFIXES = {".hpp", ".hh", ".inc"}
EXCLUDED_PARTS = {"lint_fixtures"}  # deliberately-broken linter fixtures


def sha256(*chunks):
    h = hashlib.sha256()
    for chunk in chunks:
        h.update(chunk if isinstance(chunk, bytes) else chunk.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def headers_digest(root):
    parts = []
    for d in FIRST_PARTY_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in HEADER_SUFFIXES and path.is_file() \
                    and not EXCLUDED_PARTS & set(path.parts):
                parts.append(str(path.relative_to(root)))
                parts.append(path.read_bytes().hex())
    return sha256(*parts)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", type=Path, required=True,
                    help="directory containing compile_commands.json")
    ap.add_argument("--cache-dir", type=Path, default=Path(".tidy-cache"))
    ap.add_argument("--clang-tidy", default="clang-tidy")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    args = ap.parse_args()

    db_path = args.build_dir / "compile_commands.json"
    if not db_path.is_file():
        print(f"error: {db_path} not found (configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)", file=sys.stderr)
        return 2
    database = json.loads(db_path.read_text())

    root = Path.cwd().resolve()
    config = (root / ".clang-tidy").read_bytes()
    version = subprocess.run([args.clang_tidy, "--version"],
                             capture_output=True, text=True, check=True).stdout
    hdr_digest = headers_digest(root)
    args.cache_dir.mkdir(parents=True, exist_ok=True)

    jobs = []
    for entry in database:
        path = Path(entry["file"])
        if not path.is_absolute():
            path = (Path(entry["directory"]) / path).resolve()
        try:
            rel = path.relative_to(root)
        except ValueError:
            continue  # out-of-tree TU (in-tree googletest build, system files)
        if rel.parts[0] not in FIRST_PARTY_DIRS or EXCLUDED_PARTS & set(rel.parts):
            continue
        command = entry.get("command") or " ".join(entry.get("arguments", []))
        key = sha256(version, config.hex(), hdr_digest, command, path.read_bytes().hex())
        jobs.append((rel, path, key))

    if not jobs:
        print("error: no first-party TUs in the compilation database", file=sys.stderr)
        return 2

    def analyze(job):
        rel, path, key = job
        stamp = args.cache_dir / f"{key}.ok"
        if stamp.exists():
            return rel, True, True, ""
        proc = subprocess.run(
            [args.clang_tidy, "-p", str(args.build_dir), "--quiet", str(path)],
            capture_output=True, text=True)
        ok = proc.returncode == 0
        if ok:
            stamp.write_text(str(rel))
        return rel, ok, False, proc.stdout + proc.stderr

    failures = 0
    cached = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for rel, ok, from_cache, output in pool.map(analyze, jobs):
            if from_cache:
                cached += 1
            elif ok:
                print(f"clean: {rel}")
            else:
                failures += 1
                print(f"FINDINGS in {rel}:\n{output}", file=sys.stderr)

    print(f"run_clang_tidy_cached: {len(jobs)} TUs, {cached} cached, "
          f"{failures} with findings")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
