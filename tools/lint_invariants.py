#!/usr/bin/env python3
"""Repo-invariant linter for noisim (ctest label: lint).

Enforces the invariants the compiler cannot: the determinism contract
(bit-identical results at any thread/shard/cache/kernel-tier configuration)
and the concurrency conventions that back the thread-safety annotations.

Rules (each proven live by a negative fixture under tests/lint_fixtures/,
exercised by --self-test):

  ffp-contract      every TU that includes kernels_simd_body.inc must be
                    listed in CMake with -ffp-contract=off in its
                    COMPILE_OPTIONS -- otherwise the optimizer fuses the
                    mul/add intrinsics into FMA and breaks bit-identity
                    with the scalar kernels.
  no-fma            no fma()/std::fma/_mm*_fmadd* anywhere in first-party
                    C++ -- fused rounding differs from mul-then-add.
                    Marker: // lint: allow-fma(<reason>)
  unordered-fold    no range-for over a container declared unordered_*:
                    hash-order iteration makes any fold/merge over it
                    nondeterministic. Sort first, or mark an order-
                    insensitive walk with
                    // lint: unordered-iter-ok(<reason>)
  env-getenv        getenv() only inside support/env.cpp -- every other
                    site goes through support::env_get / env_positive_int
                    so validation grammar and error wording stay in one
                    place. Marker: // lint: allow-getenv(<reason>)
  claim-loop-polls  every worker claim loop (next*.fetch_add / next_item++
                    style dispensers) must poll a RunControl in the same
                    loop (or enclosing function) -- a claim loop without a
                    poll point cannot honor cancellation or deadlines.
  mutex-guards      every data member of a mutex-owning class must be
                    GUARDED_BY(...), const, atomic, a Mutex/CondVar, or
                    carry // lint: not-guarded(<reason>) -- the audit
                    behind the Clang thread-safety annotations, enforced
                    even on GCC-only checkouts.

Exit status: 0 = clean, 1 = findings (or a dead rule in --self-test).
"""

import argparse
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".inc"}
SCAN_DIRS = ("src", "tests", "bench", "examples")
FIXTURE_DIR_NAME = "lint_fixtures"

RULES = (
    "ffp-contract",
    "no-fma",
    "unordered-fold",
    "env-getenv",
    "claim-loop-polls",
    "mutex-guards",
)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(text):
    """Blank out comments, string and char literals (preserving layout), so
    rule regexes never match documentation or message text. Markers are
    collected from the raw text separately."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def marker_lines(raw_text, marker):
    """1-based line numbers carrying `// lint: <marker>(...)` (or the # CMake
    form)."""
    lines = set()
    pattern = re.compile(r"(?://|#)\s*lint:\s*" + re.escape(marker) + r"\(")
    for idx, line in enumerate(raw_text.splitlines(), start=1):
        if pattern.search(line):
            lines.add(idx)
    return lines


def has_marker(markers, line):
    """A marker covers its own line or the line directly above the match."""
    return line in markers or (line - 1) in markers


def brace_scopes(code):
    """All (open_pos, close_pos) brace pairs, via a simple matcher over
    comment/string-stripped code."""
    scopes = []
    stack = []
    for pos, ch in enumerate(code):
        if ch == "{":
            stack.append(pos)
        elif ch == "}" and stack:
            scopes.append((stack.pop(), pos))
    return scopes


def scope_kind(code, open_pos):
    """Classify the construct owning the brace at open_pos:
    'loop', 'skip' (if/switch/catch/try/do/else or unknown), 'boundary'
    (class/struct/namespace/enum/union), or 'function'."""
    header = code[max(0, open_pos - 300):open_pos].rstrip()
    if re.search(r"\b(?:class|struct|namespace|union|enum)\s+[\w:]*\s*(?:final\s*)?(?::[^;{}]*)?$",
                 header):
        return "boundary"
    if re.search(r"\b(?:else|try|do)\s*$", header):
        return "skip"
    if header.endswith(")"):
        # Walk back over the parenthesized tail to the introducing token.
        depth = 0
        k = len(header) - 1
        while k >= 0:
            if header[k] == ")":
                depth += 1
            elif header[k] == "(":
                depth -= 1
                if depth == 0:
                    break
            k -= 1
        word = re.search(r"(\w+)\s*$", header[:k])
        token = word.group(1) if word else ""
        if token in ("while", "for"):
            return "loop"
        if token in ("if", "switch", "catch"):
            return "skip"
        return "function"  # fn decl, lambda intro, or annotation macro tail
    return "skip"


# --- rules -------------------------------------------------------------------

def check_ffp_contract(root, cxx_files, cmake_texts):
    """cmake_texts: list of (path, raw_text)."""
    findings = []
    for path, text in cxx_files:
        # Raw text, not strip_code: the include path IS a string literal.
        m = re.search(r'^\s*#\s*include\s+"[^"]*kernels_simd_body\.inc"',
                      text, re.MULTILINE)
        if not m:
            continue
        base = path.name
        covered = False
        mentioned = False
        for cmake_path, cmake in cmake_texts:
            for block in re.finditer(r"set_source_files_properties\s*\(", cmake):
                # Match the property call's closing paren.
                depth, k = 0, block.end() - 1
                while k < len(cmake):
                    if cmake[k] == "(":
                        depth += 1
                    elif cmake[k] == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    k += 1
                call = cmake[block.start():k + 1]
                if base in call:
                    mentioned = True
                    if "-ffp-contract=off" in call:
                        covered = True
        if not covered:
            why = ("is listed in set_source_files_properties without -ffp-contract=off"
                   if mentioned else
                   "has no set_source_files_properties entry in any CMakeLists.txt")
            findings.append(Finding(
                path, line_of(text, m.start()), "ffp-contract",
                f"{base} includes kernels_simd_body.inc but {why}; the optimizer "
                "may fuse mul/add into FMA and break scalar/SIMD bit-identity"))
    return findings


FMA_RE = re.compile(r"\bstd\s*::\s*fmaf?\b|(?<![\w.])fmaf?\s*\(|_mm\d*_f(?:n?madd|n?msub)_\w+")


def check_no_fma(cxx_files):
    findings = []
    for path, text in cxx_files:
        code = strip_code(text)
        markers = marker_lines(text, "allow-fma")
        for m in FMA_RE.finditer(code):
            ln = line_of(code, m.start())
            if has_marker(markers, ln):
                continue
            findings.append(Finding(
                path, ln, "no-fma",
                f"fused multiply-add '{m.group(0).strip()}' rounds once where the "
                "deterministic kernels round twice; use mul-then-add "
                "(// lint: allow-fma(<reason>) to override)"))
    return findings


UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")


def unordered_names(code):
    names = set()
    for m in UNORDERED_DECL_RE.finditer(code):
        # Skip to the matching '>' of the template argument list.
        depth, k = 0, m.end() - 1
        while k < len(code):
            if code[k] == "<":
                depth += 1
            elif code[k] == ">":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        tail = code[k + 1:k + 200]
        name = re.match(r"\s*[&*]?\s*(\w+)", tail)
        if name:
            names.add(name.group(1))
    return names


def check_unordered_fold(cxx_files):
    by_stem = {}
    for path, text in cxx_files:
        by_stem.setdefault(path.stem, []).append((path, text))
    findings = []
    for path, text in cxx_files:
        code = strip_code(text)
        # Names declared unordered here or in same-stem companions (the
        # foo.cpp / foo.hpp pairing catches members used in the TU).
        names = unordered_names(code)
        for other_path, other_text in by_stem.get(path.stem, []):
            if other_path != path:
                names |= unordered_names(strip_code(other_text))
        if not names:
            continue
        markers = marker_lines(text, "unordered-iter-ok")
        for m in re.finditer(r"for\s*\([^;()]*?:\s*(\w+)\s*\)", code):
            if m.group(1) not in names:
                continue
            ln = line_of(code, m.start())
            if has_marker(markers, ln):
                continue
            findings.append(Finding(
                path, ln, "unordered-fold",
                f"range-for over unordered container '{m.group(1)}' visits "
                "elements in hash order; any fold over it is nondeterministic "
                "-- sort first, or mark an order-insensitive walk with "
                "// lint: unordered-iter-ok(<reason>)"))
    return findings


GETENV_RE = re.compile(r"\bgetenv\s*\(")


def check_env_getenv(cxx_files):
    findings = []
    for path, text in cxx_files:
        if path.parts[-2:] == ("support", "env.cpp"):
            continue  # the single sanctioned call site
        code = strip_code(text)
        markers = marker_lines(text, "allow-getenv")
        for m in GETENV_RE.finditer(code):
            ln = line_of(code, m.start())
            if has_marker(markers, ln):
                continue
            findings.append(Finding(
                path, ln, "env-getenv",
                "naked getenv(); go through support::env_get / "
                "support::env_positive_int so the strict-validation grammar "
                "and error wording stay centralized "
                "(// lint: allow-getenv(<reason>) to override)"))
    return findings


CLAIM_RE = re.compile(
    r"\bnext_?(?:item|task|work|chunk|range)\w*\s*(?:\+\+|\.fetch_add\s*\()"
    r"|\bnext\s*\.\s*fetch_add\s*\(")


def check_claim_loop_polls(cxx_files):
    findings = []
    for path, text in cxx_files:
        code = strip_code(text)
        scopes = brace_scopes(code)
        for m in CLAIM_RE.finditer(code):
            enclosing = sorted((o, c) for o, c in scopes if o < m.start() < c)
            enclosing.reverse()  # innermost first
            verdict = None
            for open_pos, close_pos in enclosing:
                kind = scope_kind(code, open_pos)
                if kind == "skip":
                    continue
                if kind == "boundary":
                    verdict = False
                    break
                verdict = "poll" in code[open_pos:close_pos]
                break
            if verdict:
                continue
            findings.append(Finding(
                path, line_of(code, m.start()), "claim-loop-polls",
                f"work-claim '{m.group(0).strip()}' has no RunControl poll in "
                "its claim loop; a dispenser that never polls cannot honor "
                "cancellation or deadlines"))
    return findings


MUTEX_MEMBER_RE = re.compile(r"\b(?:support\s*::\s*Mutex|std\s*::\s*(?:shared_|recursive_)?mutex)\b")
MEMBER_OK_RE = re.compile(
    r"GUARDED_BY\s*\(|PT_GUARDED_BY\s*\(|\bconst\b|\batomic\b|\bCondVar\b|"
    r"\bMutex\b|\bmutex\b|\bstatic\b|\busing\b|\btypedef\b|\bfriend\b")


def check_mutex_guards(cxx_files):
    findings = []
    for path, text in cxx_files:
        if path.parts[-2:] == ("support", "mutex.hpp"):
            continue  # the capability wrappers themselves
        code = strip_code(text)
        if not MUTEX_MEMBER_RE.search(code):
            continue
        markers = marker_lines(text, "not-guarded")
        for open_pos, close_pos in brace_scopes(code):
            if scope_kind(code, open_pos) != "boundary":
                continue
            header = code[max(0, open_pos - 300):open_pos]
            if not re.search(r"\b(?:class|struct)\s+[\w:]*\s*(?:final\s*)?(?::[^;{}]*)?$",
                             header.rstrip()):
                continue
            body = code[open_pos + 1:close_pos]
            # Blank nested braces (method bodies, nested types, braced
            # initializers) so only direct member declarations remain.
            flat = []
            depth = 0
            for ch in body:
                if ch == "{":
                    depth += 1
                    flat.append(" ")
                elif ch == "}":
                    depth -= 1
                    flat.append(" ")
                else:
                    flat.append(ch if (depth == 0 or ch == "\n") else " ")
            flat = "".join(flat)
            if not MUTEX_MEMBER_RE.search(flat):
                continue  # the mutex lives in a nested type, not this one
            offset = 0
            for stmt in flat.split(";"):
                stmt_pos = open_pos + 1 + offset
                offset += len(stmt) + 1
                decl = stmt.strip()
                if not decl or MEMBER_OK_RE.search(decl):
                    continue
                # Drop access specifiers and skip nested type declarations
                # (they get their own audit as separate scopes).
                decl = re.sub(r"^(?:(?:public|private|protected)\s*:\s*)+", "", decl)
                if re.match(r"^(?:class|struct|enum|union)\b", decl):
                    continue
                # A data member: `Type name;`, `Type name = ...;`, or an
                # array -- anything with top-level parens is a function.
                dm = re.match(
                    r"^(?:mutable\s+)?[A-Za-z_][\w:<>,*&\s]*[\s&*>]"
                    r"(\w+)(?:\s*\[[^\]]*\])?\s*(?:=[^;]*)?$", decl)
                if not dm or "(" in decl:
                    continue
                ln = line_of(code, stmt_pos + stmt.find(stmt.strip()[0]) if stmt.strip() else stmt_pos)
                if has_marker(markers, ln):
                    continue
                findings.append(Finding(
                    path, ln, "mutex-guards",
                    f"member '{dm.group(1)}' of a mutex-owning class is neither "
                    "GUARDED_BY(...) nor const/atomic; annotate it, or mark a "
                    "deliberately unguarded member with "
                    "// lint: not-guarded(<reason>)"))
    return findings


# --- driver ------------------------------------------------------------------

def collect(root, fixture_mode):
    cxx_files = []
    cmake_texts = []
    if fixture_mode:
        walk_roots = [root]
    else:
        walk_roots = [root / d for d in SCAN_DIRS if (root / d).is_dir()]
        top = root / "CMakeLists.txt"
        if top.is_file():
            cmake_texts.append((top, top.read_text(encoding="utf-8", errors="replace")))
    for wr in walk_roots:
        for path in sorted(wr.rglob("*")):
            if not path.is_file():
                continue
            if not fixture_mode and FIXTURE_DIR_NAME in path.parts:
                continue
            if path.suffix in CXX_SUFFIXES:
                cxx_files.append((path, path.read_text(encoding="utf-8", errors="replace")))
            elif path.name == "CMakeLists.txt":
                cmake_texts.append((path, path.read_text(encoding="utf-8", errors="replace")))
    return cxx_files, cmake_texts


def run_rules(root, cxx_files, cmake_texts):
    findings = []
    findings += check_ffp_contract(root, cxx_files, cmake_texts)
    findings += check_no_fma(cxx_files)
    findings += check_unordered_fold(cxx_files)
    findings += check_env_getenv(cxx_files)
    findings += check_claim_loop_polls(cxx_files)
    findings += check_mutex_guards(cxx_files)
    return findings


def self_test(repo_root):
    """Prove every rule LIVE: scan tests/lint_fixtures/ as if it were a repo
    and require each fixture's `lint-fixture: expect(<rule>)` markers to be
    reported exactly -- a rule whose fixture stops firing is a dead rule."""
    fixture_root = repo_root / "tests" / FIXTURE_DIR_NAME
    if not fixture_root.is_dir():
        print(f"lint_invariants --self-test: missing {fixture_root}", file=sys.stderr)
        return 1
    cxx_files, cmake_texts = collect(fixture_root, fixture_mode=True)
    expected = {}  # path -> set of rules
    expect_re = re.compile(r"lint-fixture:\s*expect\((\S+?)\)")
    for path, text in cxx_files + cmake_texts:
        for m in expect_re.finditer(text):
            expected.setdefault(path, set()).add(m.group(1))
    findings = run_rules(fixture_root, cxx_files, cmake_texts)
    got = {}
    for f in findings:
        got.setdefault(f.path, set()).add(f.rule)

    failures = []
    for path, rules in sorted(expected.items()):
        missing = rules - got.get(path, set())
        for rule in sorted(missing):
            failures.append(f"{path}: rule '{rule}' did NOT fire on its fixture (dead rule?)")
    for path, rules in sorted(got.items()):
        surplus = rules - expected.get(path, set())
        for rule in sorted(surplus):
            failures.append(f"{path}: rule '{rule}' fired but the fixture does not expect it")
    covered = set().union(*expected.values()) if expected else set()
    for rule in RULES:
        if rule not in covered:
            failures.append(f"no fixture exercises rule '{rule}'")

    if failures:
        for f in failures:
            print(f, file=sys.stderr)
        print(f"lint_invariants --self-test: FAILED ({len(failures)} problem(s))",
              file=sys.stderr)
        return 1
    print(f"lint_invariants --self-test: all {len(RULES)} rules fire on their fixtures")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", type=Path, default=Path(__file__).resolve().parent.parent,
                    help="repository root (default: the checkout containing this script)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the rules against tests/lint_fixtures/ and require "
                         "every rule to fire where its fixture expects it")
    args = ap.parse_args()
    root = args.root.resolve()

    if args.self_test:
        return self_test(root)

    cxx_files, cmake_texts = collect(root, fixture_mode=False)
    findings = run_rules(root, cxx_files, cmake_texts)
    for f in findings:
        try:
            f.path = f.path.relative_to(root)
        except ValueError:
            pass
        print(f, file=sys.stderr)
    if findings:
        print(f"lint_invariants: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"lint_invariants: clean ({len(cxx_files)} C++ files, "
          f"{len(cmake_texts)} CMake files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
