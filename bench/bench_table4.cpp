// Table IV: accuracy/cost trade-off across approximation levels 0..3.
//
// Protocol (following the paper): a QAOA circuit with 10 realistic noises,
// |psi> = |0..0> and |v> = U|0..0> with U the ideal circuit. The projector
// rewrite <v|E(rho)|v> = <0|(U^dag . E)(rho)|0> plus inverse-pair
// cancellation shrinks every split network to the insertions' light cones,
// which is what makes the higher levels affordable.

#include "bench_common.hpp"
#include "core/approx.hpp"
#include "core/doubled_network.hpp"

namespace {
using namespace noisim;
}

int main() {
  bench::print_header("Table IV: accuracy per approximation level", "paper Table IV");

  const int n = bench::large_mode() ? 64 : 16;
  const qc::Circuit circuit = bench::qaoa(n, 1, 401);
  const std::size_t noises = 10;
  const ch::NoisyCircuit nc =
      bench::insert_noises(circuit, noises, bench::realistic_noise(), 402);
  const ch::NoisyCircuit projected = core::with_ideal_output_projector(nc);

  // Reference: exact contraction of the doubled diagram. v = U|0> keeps the
  // fidelity near 1 (this is why the paper's Table IV results sit at ~0.958).
  tn::ContractOptions exact_opts;
  exact_opts.timeout_seconds = bench::timeout_large();
  exact_opts.max_tensor_elems = bench::memory_budget();
  const auto exact =
      bench::run_guarded([&] { return core::exact_fidelity_tn(projected, 0, 0, exact_opts); });
  std::cout << "circuit qaoa_" << n << ", " << noises << " noises, exact fidelity = "
            << (exact.ok() ? bench::sci(exact.value) : "unavailable") << " ("
            << bench::fixed(exact.seconds) << " s)\n\n";

  const std::size_t max_level = 3;
  core::ApproxOptions opts;
  opts.level = max_level;
  opts.eval.simplify = true;  // light-cone reduction
  opts.eval.tn.timeout_seconds = bench::timeout_large();
  opts.eval.tn.max_tensor_elems = bench::memory_budget();

  // One engine run evaluates all partial sums A(0..3); per-level timing is
  // reconstructed from cumulative contraction counts on separate runs.
  bench::Table table({"level", "time(s)", "result", "error"});
  for (std::size_t level = 0; level <= max_level; ++level) {
    core::ApproxOptions lopts = opts;
    lopts.level = level;
    const auto run = bench::run_guarded(
        [&] { return core::approximate_fidelity(projected, 0, 0, lopts).value; });
    std::string error = "-";
    if (run.ok() && exact.ok()) error = bench::sci(std::abs(run.value - exact.value));
    table.add_row({std::to_string(level), bench::format_time(run),
                   run.ok() ? bench::fixed(run.value, 7) : "-", error});
  }

  table.print(std::cout);
  std::cout << "\nExpected shape (paper Table IV): each level costs roughly an order of\n"
            << "magnitude more time and removes roughly an order of magnitude of error,\n"
            << "with level 1 the recommended operating point.\n";
  return 0;
}
