// Ablation: MPS truncation (the related-work approximation family [20-23])
// vs. the paper's SVD-splitting approach on grid QAOA.
//
// MPS error comes from bond truncation and grows with circuit
// entanglement; the paper's level-l error comes from noise-tensor
// truncation and grows with the noise count/rate. This bench shows both
// axes: amplitude error vs. chi for MPS, and the wall-time ratio against a
// level-1 run at matched workload.

#include <iostream>
#include <random>

#include "bench_common.hpp"
#include "core/approx.hpp"
#include "mps/mps.hpp"
#include "sim/statevector.hpp"

namespace {
using namespace noisim;
}

int main() {
  bench::print_header("Ablation: MPS truncation vs SVD splitting", "related work [20-23]");

  const int side = 4;  // 16 qubits: exact reference via statevector
  const qc::Circuit circuit = bench::qaoa_grid(side, side, bench::large_mode() ? 2 : 1, 314);
  std::cout << "circuit: " << side << "x" << side << " grid QAOA, " << circuit.size()
            << " gates, depth " << circuit.depth() << "\n\n";

  sim::Statevector sv(circuit.num_qubits());
  sv.apply_circuit(circuit);

  bench::Table table({"chi", "max |amp err|", "trunc weight", "time(s)"});
  for (std::size_t chi : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    double err = 0.0, weight = 0.0;
    const auto run = bench::run_guarded([&] {
      mps::MpsState state(circuit.num_qubits(), {chi, 1e-14});
      state.apply_circuit(circuit);
      for (std::uint64_t b = 0; b < (1u << circuit.num_qubits()); b += 7)
        err = std::max(err, std::abs(state.amplitude(b) - sv.amplitude(b)));
      weight = state.truncation_weight();
      return err;
    });
    table.add_row({std::to_string(chi), bench::sci(err), bench::sci(weight),
                   bench::format_time(run)});
  }
  table.print(std::cout);

  // Contrast: the paper's approach on the same circuit with 10 noises.
  const ch::NoisyCircuit nc = bench::insert_noises(circuit, 10, bench::realistic_noise(), 315);
  core::ApproxOptions opts;
  opts.level = 1;
  const auto ours = bench::run_guarded(
      [&] { return core::approximate_fidelity(nc, 0, 0, opts).value; });
  std::cout << "\nSVD-splitting level-1 on the same circuit + 10 noises: "
            << bench::format_time(ours) << " s (error bounded by Theorem 1, "
            << "independent of entanglement growth)\n"
            << "MPS error grows with entanglement (depth); the split method's error\n"
            << "grows with the noise count -- complementary approximation axes.\n";
  return 0;
}
