// Backend-selection smoke bench: drive core::simulate() across a mixed
// workload pool (tiny exact-regime circuits, wide low-noise circuits, noisy
// trajectory-friendly circuits, supremacy-style grids, an ATPG-projected
// fault circuit) and record which backend the cost model picks for each,
// how long estimation + execution took, and -- the gate -- that no run ever
// violates its error budget against the exact density-matrix reference
// (checked wherever the reference is computable, n <= 13) or claims a bound
// above the budget. Exits non-zero on any violation. Per-backend pick
// counts land in BENCH_select.json (or the first argument) so drift in the
// cost model's arbitration shows up in the perf trajectory.

#include <chrono>
#include <cmath>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "channels/catalog.hpp"
#include "core/atpg.hpp"
#include "core/backend.hpp"
#include "core/plan_cache.hpp"
#include "sim/density.hpp"

namespace {

using namespace noisim;
using Clock = std::chrono::steady_clock;

double secs(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct Workload {
  std::string name;
  ch::NoisyCircuit nc;
  double error_budget = 1e-3;
};

struct Row {
  std::string name;
  std::string backend;
  std::size_t level = 0;
  std::size_t samples = 0;
  double value = 0.0;
  double error_bound = 0.0;
  double budget = 0.0;
  double seconds = 0.0;
  bool has_reference = false;
  double reference = 0.0;
  bool violation = false;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_select.json";
  if (argc > 1) out_path = argv[1];

  std::vector<Workload> pool;
  pool.push_back({"hf_6 tight (exact regime)",
                  bench::insert_noises(bench::hf_vqe(6, 11), 2,
                                       bench::depolarizing_noise(0.05), 13),
                  1e-9});
  pool.push_back({"hf_8 realistic",
                  bench::insert_noises(bench::hf_vqe(8, 3), 4, bench::realistic_noise(1e-2), 29),
                  2e-2});
  pool.push_back({"qaoa_16 low noise",
                  bench::insert_noises(bench::qaoa(16, 1, 77), 3,
                                       bench::depolarizing_noise(0.01), 601),
                  2e-2});
  pool.push_back({"qaoa_16 low noise, tight budget",
                  bench::insert_noises(bench::qaoa(16, 1, 77), 3,
                                       bench::depolarizing_noise(0.01), 601),
                  1e-4});
  pool.push_back({"hf_13 high noise (sampler regime)",
                  bench::insert_noises(bench::hf_vqe(13, 21), 10,
                                       bench::depolarizing_noise(0.1), 23),
                  5e-2});
  pool.push_back({"inst_3x3_8 supremacy",
                  bench::insert_noises(bench::supremacy_inst(3, 3, 8, 5), 4,
                                       bench::depolarizing_noise(0.02), 19),
                  2e-2});
  {
    // ATPG-style: projected fault circuit (amplitude damping is not a
    // unitary mixture, exercising the eligibility filter).
    ch::NoisyCircuit faulty(bench::hf_vqe(8, 5));
    faulty.add_noise(1, ch::amplitude_damping(0.25));
    pool.push_back({"hf_8 projected fault (atpg)",
                    core::with_ideal_output_projector(faulty), 2e-2});
  }

  bench::print_header("backend selection (simulate() front door)",
                      "the budget-driven arbitration across all engines");

  core::PlanCache cache;
  std::vector<Row> rows;
  std::map<std::string, std::size_t> picks;
  std::size_t violations = 0;

  bench::Table table({"workload", "backend", "lvl", "samples", "value", "bound", "time(s)"});
  for (const Workload& w : pool) {
    core::SimulateOptions opts;
    opts.error_budget = w.error_budget;
    opts.plan_cache = &cache;
    if (w.name.find("atpg") != std::string::npos) opts.eval.simplify = true;

    Row row;
    row.name = w.name;
    row.budget = w.error_budget;
    const auto t0 = Clock::now();
    const core::SimResult r = core::simulate(w.nc, 0, 0, opts);
    row.seconds = secs(t0, Clock::now());
    row.backend = core::backend_name(r.backend);
    row.level = r.config.level;
    row.samples = r.config.samples;
    row.value = r.value;
    row.error_bound = r.error_bound;
    ++picks[row.backend];

    // Gate 1: the achieved bound may never exceed the budget.
    if (row.error_bound > w.error_budget) row.violation = true;
    // Gate 2: against the exact reference where it is computable. Sampler
    // picks hold at the Hoeffding confidence; the fixed seeds here make the
    // outcome reproducible, so a trip of this gate is a real regression.
    if (w.nc.num_qubits() <= sim::kDensityMaxQubits) {
      row.has_reference = true;
      row.reference = sim::exact_fidelity_mm(w.nc, 0, 0);
      if (std::abs(row.value - row.reference) > w.error_budget + 1e-12) row.violation = true;
    }
    if (row.violation) ++violations;

    table.add_row({row.name, row.backend, std::to_string(row.level),
                   std::to_string(row.samples), bench::sci(row.value),
                   bench::sci(row.error_bound), bench::fixed(row.seconds, 3)});
    rows.push_back(row);
  }
  table.print(std::cout);

  std::cout << "\npicks:";
  for (const auto& [name, count] : picks) std::cout << " " << name << "=" << count;
  std::cout << "\nbudget violations: " << violations << "\n";

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"select\",\n"
      << "  \"workloads\": " << rows.size() << ",\n"
      << "  \"machine\": " << bench::machine_json() << ",\n"
      << "  \"violations\": " << violations << ",\n"
      << "  \"picks\": {";
  {
    bool first = true;
    for (const auto& [name, count] : picks) {
      out << (first ? "" : ", ") << "\"" << name << "\": " << count;
      first = false;
    }
  }
  out << "},\n  \"runs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"workload\": \"" << r.name << "\", \"backend\": \"" << r.backend
        << "\", \"level\": " << r.level << ", \"samples\": " << r.samples
        << ", \"value\": " << r.value << ", \"error_bound\": " << r.error_bound
        << ", \"budget\": " << r.budget << ", \"seconds\": " << r.seconds
        << ", \"reference\": " << (r.has_reference ? std::to_string(r.reference) : "null")
        << ", \"violation\": " << (r.violation ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";

  return violations == 0 ? 0 : 1;
}
