// Table II: Our algorithm vs. the accurate methods (MM-, TDD- and TN-based)
// on the three benchmark families, with 2 and 20 injected decoherence noises.
//
// The paper's reading of this table:
//  * the MM-based method memory-outs beyond ~13 qubits;
//  * the TDD-based method handles structured circuits but times out on
//    random (supremacy) circuits;
//  * the TN-based exact method wins outright at #Noise = 2;
//  * at #Noise = 20 the exact TN contraction degrades (more top/bottom
//    coupling => larger treewidth) while the level-1 approximation keeps
//    contracting two *noiseless-width* layers and stays feasible.

#include "bench_common.hpp"
#include "core/approx.hpp"
#include "core/doubled_network.hpp"
#include "sim/density.hpp"
#include "tdd/tdd_sim.hpp"

namespace {

using namespace noisim;

struct Row {
  std::string name;
  qc::Circuit circuit;
};

bench::RunOutcome run_mm(const ch::NoisyCircuit& nc) {
  return bench::run_guarded([&] {
    if (nc.num_qubits() > 13) throw MemoryOutError("density matrix needs > 1 GiB");
    return sim::exact_fidelity_mm(nc, 0, 0);
  });
}

bench::RunOutcome run_tdd(const ch::NoisyCircuit& nc, double timeout) {
  return bench::run_guarded([&] {
    tdd::TddSimOptions opts;
    opts.timeout_seconds = timeout;
    opts.max_nodes = bench::large_mode() ? (std::size_t{1} << 24) : (std::size_t{1} << 21);
    return tdd::exact_fidelity_tdd(nc, 0, 0, opts);
  });
}

bench::RunOutcome run_tn(const ch::NoisyCircuit& nc, double timeout) {
  return bench::run_guarded([&] {
    tn::ContractOptions opts;
    opts.timeout_seconds = timeout;
    opts.max_tensor_elems = bench::memory_budget();
    return core::exact_fidelity_tn(nc, 0, 0, opts);
  });
}

bench::RunOutcome run_ours(const ch::NoisyCircuit& nc, double timeout) {
  return bench::run_guarded([&] {
    core::ApproxOptions opts;
    opts.level = 1;
    opts.eval.tn.timeout_seconds = timeout;
    opts.eval.tn.max_tensor_elems = bench::memory_budget();
    return core::approximate_fidelity(nc, 0, 0, opts).value;
  });
}

}  // namespace

int main() {
  bench::print_header("Table II: ours vs accurate methods", "paper Table II");

  std::vector<Row> rows;
  rows.push_back({"hf_6", bench::hf_vqe(6, 1)});
  rows.push_back({"hf_8", bench::hf_vqe(8, 2)});
  if (bench::large_mode()) {
    rows.push_back({"hf_10", bench::hf_vqe(10, 3)});
    rows.push_back({"hf_12", bench::hf_vqe(12, 4)});
  }
  rows.push_back({"qaoa_16", bench::qaoa(16, 1, 5)});
  rows.push_back({"qaoa_36", bench::qaoa(36, 1, 6)});
  rows.push_back({"qaoa_64", bench::qaoa(64, 1, 7)});
  if (bench::large_mode()) {
    rows.push_back({"qaoa_121", bench::qaoa(121, 1, 8)});
    rows.push_back({"qaoa_225", bench::qaoa(225, 1, 9)});
  }
  rows.push_back({"inst_3x3_10", bench::supremacy_inst(3, 3, 10, 10)});
  rows.push_back({"inst_4x4_10", bench::supremacy_inst(4, 4, 10, 11)});
  if (bench::large_mode()) {
    rows.push_back({"inst_4x4_40", bench::supremacy_inst(4, 4, 40, 12)});
    rows.push_back({"inst_4x5_10", bench::supremacy_inst(4, 5, 10, 13)});
    rows.push_back({"inst_4x5_20", bench::supremacy_inst(4, 5, 20, 14)});
    rows.push_back({"inst_6x6_10", bench::supremacy_inst(6, 6, 10, 15)});
  }

  bench::Table table({"circuit", "qubits", "gates", "depth", "MM(2)", "TDD(2)", "TN(2)",
                      "Ours(2)", "TN(20)", "Ours(20)"});

  for (const Row& row : rows) {
    const auto model = bench::realistic_noise();
    const ch::NoisyCircuit two = bench::insert_noises(row.circuit, 2, model, 101);
    const std::size_t twenty_count = std::min<std::size_t>(20, row.circuit.size());
    const ch::NoisyCircuit twenty = bench::insert_noises(row.circuit, twenty_count, model, 102);

    const auto mm = run_mm(two);
    const auto tdd2 = run_tdd(two, bench::timeout_small());
    const auto tn2 = run_tn(two, bench::timeout_small());
    const auto ours2 = run_ours(two, bench::timeout_small());
    const auto tn20 = run_tn(twenty, bench::timeout_large());
    const auto ours20 = run_ours(twenty, bench::timeout_large());

    table.add_row({row.name, std::to_string(row.circuit.num_qubits()),
                   std::to_string(row.circuit.size()), std::to_string(row.circuit.depth()),
                   bench::format_time(mm), bench::format_time(tdd2), bench::format_time(tn2),
                   bench::format_time(ours2), bench::format_time(tn20),
                   bench::format_time(ours20)});

    // Cross-check: every accurate method that finished agrees; the level-1
    // value sits within the Theorem-1 bound of the exact result.
    if (tn2.ok() && mm.ok() && std::abs(tn2.value - mm.value) > 1e-6)
      std::cout << "WARNING: TN and MM disagree on " << row.name << "\n";
    if (tn2.ok() && tdd2.ok() && std::abs(tn2.value - tdd2.value) > 1e-6)
      std::cout << "WARNING: TN and TDD disagree on " << row.name << "\n";
  }

  table.print(std::cout);
  std::cout << "\nTimes in seconds; columns (k) give the injected noise count.\n"
            << "MO = exceeded memory budget, TO = exceeded time budget (like the paper).\n";
  return 0;
}
