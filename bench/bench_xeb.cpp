// Output-bitstring batching: linear cross-entropy benchmarking (XEB) over
// N sampled bitstrings through the three output-batched paths.
//
// Sampling workloads evaluate ONE circuit skeleton at MANY output
// bitstrings. This bench scores K sampled bitstrings (uniform random here;
// a real XEB run would use device measurements) three ways:
//
//  * ideal amplitudes p(x) = |<x|C|0>|^2 -- per-bitstring plan replay
//    (one Session::evaluate per bitstring, the pre-batching reference)
//    vs ONE output-batched traversal (AmplitudeTemplate::
//    compile_batched_outputs): the caps are varying slots, steps outside
//    every cap cone run once per batch, cap-cone rows are shared between
//    bitstrings that agree on the cone's qubits;
//  * noisy probabilities A(l) = <x|E(rho)|x> via Algorithm 1 --
//    per-bitstring approximate_fidelity vs approximate_fidelity_outputs
//    (terms x outputs batched in one traversal per chunk);
//  * trajectory estimates -- per-bitstring trajectories_tn vs
//    trajectories_tn_outputs (every sample scores all K bitstrings on one
//    sampled circuit).
//
// Every batched value must equal its per-bitstring reference BIT FOR BIT;
// the bench exits non-zero on any mismatch, or when the amplitude phase's
// batched eval throughput stays below 2x the per-bitstring reference for
// every K >= 16 row. --baseline <json> adds a > 20% regression gate on the
// batched per-bitstring amplitude throughput vs the committed
// BENCH_xeb.json (enforced only on the same CPU model, like
// bench_contract_plan). Results land in BENCH_xeb.json (or the first
// non-flag argument).

// --sweep additionally runs the sharded-sweep / plan-cache ladder: three
// XEB batches (fresh bitstring sets) scored back to back, uncached vs
// through one core::PlanCache -- the cached ladder must finish >= 2x faster
// (calls 2-3 skip every template and batched-plan compile; their stats must
// report plan_cache_hits > 0 and plans_compiled == 0) and core::xeb_sweep
// must reproduce the ladder's values bit for bit at several shard sizes
// and thread counts. With --baseline, the cached ladder time also joins
// the > 20% same-CPU regression gates.

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>

#include "bench_common.hpp"
#include "core/approx.hpp"
#include "core/plan_cache.hpp"
#include "core/trajectories_tn.hpp"
#include "sim/parallel.hpp"

namespace {

using namespace noisim;
using Clock = std::chrono::steady_clock;

double secs(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct KRun {
  std::size_t k = 0;
  double ref_eval_seconds = 0.0;      // per-bitstring plan replay, best round
  double batched_eval_seconds = 0.0;  // one batched traversal, best round
  double xeb_ideal = 0.0;             // 2^n * mean p(x) - 1 over the K samples
  double xeb_noisy = 0.0;             // same statistic on the A(l) values
  double approx_ref_eval_seconds = 0.0;
  double approx_batched_eval_seconds = 0.0;
  double approx_ref_total_seconds = 0.0;      // plan + eval, per-bitstring sweeps
  double approx_batched_total_seconds = 0.0;  // plan once + batched eval
  double traj_ref_seconds = 0.0;
  double traj_batched_seconds = 0.0;
  bool amp_identical = false;
  bool approx_identical = false;
  bool traj_identical = false;
  double speedup() const {
    return batched_eval_seconds > 0.0 ? ref_eval_seconds / batched_eval_seconds : 0.0;
  }
};

/// Minimal field scan: the number following `"<key>": ` in the object for
/// `"k": <k>` inside `path`. Returns false when absent.
bool baseline_field(const std::string& path, std::size_t k, const std::string& key,
                    double* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const std::string k_tag = "\"k\": " + std::to_string(k);
  std::size_t at = text.find(k_tag);
  if (at == std::string::npos) return false;
  const std::string key_tag = "\"" + key + "\": ";
  at = text.find(key_tag, at);
  if (at == std::string::npos) return false;
  *out = std::strtod(text.c_str() + at + key_tag.size(), nullptr);
  return true;
}

/// Top-level numeric field scan (fields outside the per-k run objects).
bool scan_field(const std::string& path, const std::string& key, double* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const std::string key_tag = "\"" + key + "\": ";
  const std::size_t at = text.find(key_tag);
  if (at == std::string::npos) return false;
  *out = std::strtod(text.c_str() + at + key_tag.size(), nullptr);
  return true;
}

std::string baseline_cpu(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const std::string tag = "\"cpu_model\": \"";
  const std::size_t at = text.find(tag);
  if (at == std::string::npos) return {};
  const std::size_t end = text.find('"', at + tag.size());
  if (end == std::string::npos) return {};
  return text.substr(at + tag.size(), end - at - tag.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_xeb.json";
  std::string baseline_path;
  bool sweep_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline") {
      if (i + 1 >= argc) {
        std::cerr << "error: --baseline requires a path\n";
        return 2;
      }
      baseline_path = argv[++i];
    } else if (arg == "--sweep") {
      sweep_mode = true;
    } else {
      out_path = arg;
    }
  }

  bench::print_header("Output-bitstring batching: linear XEB over sampled bitstrings",
                      "Fig. 5-style sampling workload, Porter-Thomas / XEB regime");

  const int n = 36;  // 6x6 grid; the output-batched regime the ROADMAP names
  const std::size_t noises = bench::large_mode() ? 12 : 6;
  const std::size_t traj_samples = bench::large_mode() ? 256 : 64;
  const qc::Circuit circuit = bench::qaoa(n, 1, 77);
  // Depolarizing noise: a unitary mixture, so the SAME circuit feeds all
  // three paths (Algorithm 1 and the trajectory baseline, like Fig. 5).
  const ch::NoisyCircuit nc =
      bench::insert_noises(circuit, noises, bench::depolarizing_noise(0.008), 900 + noises);
  std::cout << "circuit qaoa_" << n << " (" << circuit.size() << " gates, depth "
            << circuit.depth() << ", " << noises << " noises)\n\n";

  core::EvalOptions eval;
  eval.backend = core::EvalOptions::Backend::TensorNetwork;
  eval.tn.timeout_seconds = bench::timeout_large();
  eval.tn.max_tensor_elems = bench::memory_budget();

  core::ApproxOptions aopts;
  aopts.level = 1;
  aopts.eval = eval;

  sim::ParallelOptions popts;
  popts.threads = 1;

  std::vector<std::size_t> ks{4, 16, 32};
  if (bench::large_mode()) {
    ks.push_back(64);
    ks.push_back(128);
  }

  // One template serves every K: the reference path replays its plan per
  // bitstring, the batched path compiles an output-batched plan on top.
  const core::AmplitudeTemplate tmpl(n, circuit.gates(), 0, 0, /*conjugate=*/false, eval);
  const std::size_t nn = static_cast<std::size_t>(n);

  std::mt19937_64 sample_rng(2024);
  const std::uint64_t mask = n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
  const double pow2n = std::ldexp(1.0, n);

  std::vector<KRun> runs;
  bool all_identical = true;
  bool speedup_gate_ok = false;  // needs ONE K >= 16 row at >= 2x
  for (const std::size_t K : ks) {
    KRun run;
    run.k = K;
    std::vector<std::uint64_t> vb(K);
    for (auto& v : vb) v = sample_rng() & mask;

    // --- ideal amplitudes: per-bitstring replay vs one batched traversal.
    // Interleaved best-of rounds (deterministic repeats), like
    // bench_contract_plan, so a slow machine window hits both paths alike.
    core::AmplitudeTemplate::Session session = tmpl.session();
    std::vector<core::AmplitudeTemplate::Substitution> subs(nn);
    std::vector<const tsr::Tensor*> caps(nn);
    const tn::BatchedPlan bplan = tmpl.compile_batched_outputs(K);
    core::AmplitudeTemplate::BatchedSession batched(tmpl, bplan);
    std::vector<const tsr::Tensor*> ptrs(K * nn);
    std::vector<cplx> ref_amp(K), bat_amp(K);
    run.ref_eval_seconds = run.batched_eval_seconds = 1e300;
    for (int round = 0; round < 4; ++round) {
      auto t0 = Clock::now();
      for (std::size_t o = 0; o < K; ++o) {
        tmpl.fill_output_caps(vb[o], caps);
        for (std::size_t q = 0; q < nn; ++q)
          subs[q] = {tmpl.node_of_output_cap(static_cast<int>(q)), caps[q]};
        ref_amp[o] = session.evaluate(subs);
      }
      run.ref_eval_seconds = std::min(run.ref_eval_seconds, secs(t0, Clock::now()));
      t0 = Clock::now();
      for (std::size_t o = 0; o < K; ++o)
        tmpl.fill_output_caps(vb[o], std::span(ptrs).subspan(o * nn, nn));
      batched.evaluate(std::span<const tsr::Tensor* const>(ptrs), K, bat_amp);
      run.batched_eval_seconds = std::min(run.batched_eval_seconds, secs(t0, Clock::now()));
    }
    run.amp_identical = true;
    double mean_p = 0.0;
    for (std::size_t o = 0; o < K; ++o) {
      run.amp_identical = run.amp_identical && ref_amp[o] == bat_amp[o];
      mean_p += std::norm(bat_amp[o]);
    }
    mean_p /= static_cast<double>(K);
    run.xeb_ideal = pow2n * mean_p - 1.0;

    // --- noisy probabilities A(l): per-bitstring Algorithm-1 sweeps vs the
    // terms x outputs batched sweep. Interleaved best-of-2 rounds (repeats
    // are deterministic) to keep the informational timings stable.
    core::ApproxBatchResult abatch;
    run.approx_ref_eval_seconds = run.approx_batched_eval_seconds = 1e300;
    run.approx_ref_total_seconds = run.approx_batched_total_seconds = 1e300;
    run.approx_identical = true;
    for (int round = 0; round < 2; ++round) {
      abatch = core::approximate_fidelity_outputs(nc, 0, vb, aopts);
      run.approx_batched_eval_seconds =
          std::min(run.approx_batched_eval_seconds, abatch.eval_seconds);
      run.approx_batched_total_seconds =
          std::min(run.approx_batched_total_seconds, abatch.plan_seconds + abatch.eval_seconds);
      double ref_eval = 0.0, ref_total = 0.0;
      for (std::size_t o = 0; o < K; ++o) {
        const core::ApproxResult ref = core::approximate_fidelity(nc, 0, vb[o], aopts);
        ref_eval += ref.eval_seconds;
        ref_total += ref.plan_seconds + ref.eval_seconds;
        run.approx_identical = run.approx_identical && ref.raw == abatch.raw[o] &&
                               ref.level_values == abatch.level_values[o];
      }
      run.approx_ref_eval_seconds = std::min(run.approx_ref_eval_seconds, ref_eval);
      run.approx_ref_total_seconds = std::min(run.approx_ref_total_seconds, ref_total);
    }
    double mean_noisy = 0.0;
    for (std::size_t o = 0; o < K; ++o) mean_noisy += abatch.values[o];
    mean_noisy /= static_cast<double>(K);
    run.xeb_noisy = pow2n * mean_noisy - 1.0;

    // --- trajectory estimates: shared noise samples scored at all K
    // bitstrings vs K standalone runs with the same seed.
    run.traj_ref_seconds = run.traj_batched_seconds = 1e300;
    run.traj_identical = true;
    for (int round = 0; round < 2; ++round) {
      auto t0 = Clock::now();
      const std::vector<sim::TrajectoryResult> tbatch =
          core::trajectories_tn_outputs(nc, 0, vb, traj_samples, 7, popts, eval);
      run.traj_batched_seconds = std::min(run.traj_batched_seconds, secs(t0, Clock::now()));
      t0 = Clock::now();
      for (std::size_t o = 0; o < K; ++o) {
        const sim::TrajectoryResult ref =
            core::trajectories_tn(nc, 0, vb[o], traj_samples, 7, popts, eval);
        run.traj_identical = run.traj_identical && ref.mean == tbatch[o].mean &&
                             ref.std_error == tbatch[o].std_error;
      }
      run.traj_ref_seconds = std::min(run.traj_ref_seconds, secs(t0, Clock::now()));
    }

    all_identical =
        all_identical && run.amp_identical && run.approx_identical && run.traj_identical;
    if (K >= 16 && run.speedup() >= 2.0) speedup_gate_ok = true;
    runs.push_back(run);
  }

  bench::Table table({"K", "amp ref(s)", "amp batched(s)", "amp speedup", "approx eval",
                      "approx total", "traj", "xeb_ideal", "xeb_noisy", "bit-identical"});
  for (const KRun& r : runs) {
    const double s_approx = r.approx_batched_eval_seconds > 0.0
                                ? r.approx_ref_eval_seconds / r.approx_batched_eval_seconds
                                : 0.0;
    const double s_approx_total =
        r.approx_batched_total_seconds > 0.0
            ? r.approx_ref_total_seconds / r.approx_batched_total_seconds
            : 0.0;
    const double s_traj =
        r.traj_batched_seconds > 0.0 ? r.traj_ref_seconds / r.traj_batched_seconds : 0.0;
    table.add_row({std::to_string(r.k), bench::sci(r.ref_eval_seconds),
                   bench::sci(r.batched_eval_seconds), bench::fixed(r.speedup(), 2),
                   bench::fixed(s_approx, 2), bench::fixed(s_approx_total, 2),
                   bench::fixed(s_traj, 2), bench::fixed(r.xeb_ideal, 4),
                   bench::fixed(r.xeb_noisy, 4),
                   r.amp_identical && r.approx_identical && r.traj_identical ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\ncpu: " << bench::cpu_model() << "\n"
            << "Uniformly sampled bitstrings give XEB ~ 0 (the unconverged-device\n"
            << "baseline); the bench's contract is the bitwise equality of every batched\n"
            << "value against its per-bitstring reference and the >= 2x amplitude\n"
            << "eval-throughput gate at K >= 16. The approx sweep's eval phase ties its\n"
            << "per-bitstring reference (which already batches along the term axis) and\n"
            << "wins on total time by planning once instead of once per bitstring.\n";

  // --- sharded sweep + plan-cache ladder (--sweep) ----------------------------
  struct SweepRun {
    double uncached_seconds = 1e300;
    double cached_seconds = 1e300;
    std::size_t plan_cache_hits = 0;
    bool hits_every_round = true;
    bool identical = true;
    double speedup() const {
      return cached_seconds > 0.0 ? uncached_seconds / cached_seconds : 0.0;
    }
  };
  SweepRun sweep;
  bool sweep_gate_ok = true;
  if (sweep_mode) {
    // Three small XEB batches arriving over time on a 5x5 grid: each call
    // scores a fresh kLadderK-bitstring batch, so per-call planning
    // dominates -- exactly the regime ApproxOptions::plan_cache targets.
    // Every cached round starts COLD (fresh cache): the measured win is
    // the 3-call ladder's own amortization, not a pre-warmed cache.
    const int sn = 25;
    const qc::Circuit scirc = bench::qaoa(sn, 1, 177);
    const ch::NoisyCircuit snc =
        bench::insert_noises(scirc, 2, bench::depolarizing_noise(0.008), 911);
    core::ApproxOptions sopts;
    sopts.level = 1;
    sopts.eval = eval;
    const std::uint64_t smask = (std::uint64_t{1} << sn) - 1;
    constexpr std::size_t kLadderK = 3;
    std::vector<std::vector<std::uint64_t>> sets(3, std::vector<std::uint64_t>(kLadderK));
    for (auto& set : sets)
      for (auto& v : set) v = sample_rng() & smask;

    std::vector<core::ApproxBatchResult> uncached_results(sets.size());
    for (int round = 0; round < 4; ++round) {  // interleaved best-of rounds
      auto t0 = Clock::now();
      for (std::size_t s = 0; s < sets.size(); ++s)
        uncached_results[s] = core::approximate_fidelity_outputs(snc, 0, sets[s], sopts);
      sweep.uncached_seconds = std::min(sweep.uncached_seconds, secs(t0, Clock::now()));

      core::PlanCache cache;
      core::ApproxOptions copts = sopts;
      copts.plan_cache = &cache;
      std::size_t hits = 0, compiled_after_first = 0;
      t0 = Clock::now();
      for (std::size_t s = 0; s < sets.size(); ++s) {
        const core::ApproxBatchResult r =
            core::approximate_fidelity_outputs(snc, 0, sets[s], copts);
        hits += r.contract_stats.plan_cache_hits;
        if (s > 0) compiled_after_first += r.contract_stats.plans_compiled;
        for (std::size_t o = 0; o < kLadderK; ++o)
          sweep.identical = sweep.identical && r.raw[o] == uncached_results[s].raw[o];
      }
      sweep.cached_seconds = std::min(sweep.cached_seconds, secs(t0, Clock::now()));
      sweep.plan_cache_hits = hits;
      // Calls 2-3 must be served ENTIRELY from the cache: hits recorded,
      // zero plans compiled.
      sweep.hits_every_round =
          sweep.hits_every_round && hits > 0 && compiled_after_first == 0;
    }

    // xeb_sweep must reproduce the ladder's values bit for bit at several
    // shard sizes and thread counts (warm cache included).
    core::PlanCache xcache;
    for (const std::size_t shard : {std::size_t{1}, std::size_t{2}, kLadderK}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        core::SweepOptions xopts;
        xopts.approx = sopts;
        xopts.approx.threads = threads;
        xopts.approx.plan_cache = &xcache;
        xopts.shard_outputs = shard;
        for (std::size_t s = 0; s < sets.size(); ++s) {
          const core::ApproxBatchResult r = core::xeb_sweep(snc, 0, sets[s], xopts);
          for (std::size_t o = 0; o < kLadderK; ++o)
            sweep.identical = sweep.identical && r.raw[o] == uncached_results[s].raw[o];
        }
      }
    }

    std::cout << "\nsweep ladder (3 XEB batches, qaoa_" << sn << " + 2 noises, K "
              << kLadderK << "): uncached " << bench::sci(sweep.uncached_seconds)
              << "s, cached " << bench::sci(sweep.cached_seconds) << "s -> "
              << bench::fixed(sweep.speedup(), 2) << "x (plan-cache hits "
              << sweep.plan_cache_hits << ", bit-identical "
              << (sweep.identical ? "yes" : "NO") << ")\n";

    sweep_gate_ok = sweep.identical && sweep.hits_every_round && sweep.speedup() >= 2.0;
  }

  // Baseline regression gate (CI): > 20% batched per-bitstring amplitude
  // throughput loss vs the committed BENCH_xeb.json, same CPU model only.
  bool baseline_ok = true;
  if (!baseline_path.empty()) {
    const std::string base_cpu = baseline_cpu(baseline_path);
    const bool same_machine = base_cpu == bench::cpu_model();
    if (!same_machine)
      std::cout << "baseline recorded on \"" << base_cpu
                << "\" (different CPU) -- regression check informational only\n";
    for (const KRun& r : runs) {
      double base_per_bits = 0.0;
      if (!baseline_field(baseline_path, r.k, "batched_per_bitstring_seconds",
                          &base_per_bits) ||
          base_per_bits <= 0.0)
        continue;
      const double cur = r.batched_eval_seconds / static_cast<double>(r.k);
      const bool regressed = cur > base_per_bits * 1.25;
      std::cout << "baseline K " << r.k << ": batched per-bitstring " << bench::sci(cur)
                << "s vs committed " << bench::sci(base_per_bits) << "s"
                << (regressed ? "  REGRESSION > 20%" : "  ok") << "\n";
      baseline_ok = baseline_ok && (!regressed || !same_machine);
    }
    // Sweep ladder regression gate on the CACHE SPEEDUP (dimensionless --
    // both sides of the ratio are measured in the same run, so machine
    // load cancels; the ~4ms absolute ladder time is too noisy to gate):
    // > 20% speedup loss vs the committed run fails.
    double base_speedup = 0.0;
    if (sweep_mode && scan_field(baseline_path, "sweep_cache_speedup", &base_speedup) &&
        base_speedup > 0.0) {
      const bool regressed = sweep.speedup() < base_speedup * 0.8;
      std::cout << "baseline sweep ladder: cache speedup "
                << bench::fixed(sweep.speedup(), 2) << "x vs committed "
                << bench::fixed(base_speedup, 2) << "x"
                << (regressed ? "  REGRESSION > 20%" : "  ok") << "\n";
      baseline_ok = baseline_ok && (!regressed || !same_machine);
    }
  }

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"xeb\",\n"
      << "  \"workload\": \"qaoa_" << n << " + " << noises
      << " realistic noises, uniform sampled bitstrings\",\n"
      << "  \"qubits\": " << n << ",\n"
      << "  \"level\": " << aopts.level << ",\n"
      << "  \"traj_samples\": " << traj_samples << ",\n"
      << "  \"machine\": " << bench::machine_json() << ",\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const KRun& r = runs[i];
    out << "    {\"k\": " << r.k << ", \"amp_ref_eval_seconds\": " << r.ref_eval_seconds
        << ", \"amp_batched_eval_seconds\": " << r.batched_eval_seconds
        << ", \"batched_per_bitstring_seconds\": "
        << r.batched_eval_seconds / static_cast<double>(r.k)
        << ", \"amp_speedup\": " << r.speedup()
        << ",\n     \"approx_ref_eval_seconds\": " << r.approx_ref_eval_seconds
        << ", \"approx_batched_eval_seconds\": " << r.approx_batched_eval_seconds
        << ", \"approx_ref_total_seconds\": " << r.approx_ref_total_seconds
        << ", \"approx_batched_total_seconds\": " << r.approx_batched_total_seconds
        << ", \"traj_ref_seconds\": " << r.traj_ref_seconds
        << ", \"traj_batched_seconds\": " << r.traj_batched_seconds
        << ",\n     \"xeb_ideal\": " << r.xeb_ideal << ", \"xeb_noisy\": " << r.xeb_noisy
        << ", \"amp_identical\": " << (r.amp_identical ? "true" : "false")
        << ", \"approx_identical\": " << (r.approx_identical ? "true" : "false")
        << ", \"traj_identical\": " << (r.traj_identical ? "true" : "false") << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]";
  if (sweep_mode) {
    out << ",\n  \"sweep_uncached_seconds\": " << sweep.uncached_seconds
        << ",\n  \"sweep_cached_seconds\": " << sweep.cached_seconds
        << ",\n  \"sweep_cache_speedup\": " << sweep.speedup()
        << ",\n  \"sweep_plan_cache_hits\": " << sweep.plan_cache_hits
        << ",\n  \"sweep_identical\": " << (sweep.identical ? "true" : "false");
  }
  out << "\n}\n";
  std::cout << "wrote " << out_path << "\n";

  if (!all_identical) std::cout << "FAIL: batched / per-bitstring values not bit-identical\n";
  if (!speedup_gate_ok)
    std::cout << "FAIL: no K >= 16 row reached the 2x amplitude eval-throughput gate\n";
  if (!baseline_ok) std::cout << "FAIL: batched per-bitstring throughput regressed > 20%\n";
  if (!sweep_gate_ok)
    std::cout << "FAIL: sweep ladder missed the 2x plan-cache gate (or hits/bit-identity)\n";
  return all_identical && speedup_gate_ok && baseline_ok && sweep_gate_ok ? 0 : 1;
}
