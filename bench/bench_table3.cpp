// Table III: our algorithm vs. the quantum trajectories method (MM- and
// TN-based implementations) at matched precision.
//
// Protocol (following the paper): 20 depolarizing noises with p = 0.001 are
// injected into QAOA circuits; the trajectories sample count is chosen to
// match the precision of our level-1 approximation; precision is measured
// against the exact (TN-based) fidelity where computable.

#include "bench_common.hpp"
#include "core/approx.hpp"
#include "core/bounds.hpp"
#include "core/doubled_network.hpp"
#include "core/trajectories_tn.hpp"
#include "sim/trajectories.hpp"

namespace {
using namespace noisim;
}

int main() {
  bench::print_header("Table III: ours vs approximate methods", "paper Table III");

  struct Row {
    std::string name;
    qc::Circuit circuit;
  };
  std::vector<Row> rows;
  rows.push_back({"qaoa_4(2x2)", bench::qaoa_grid(2, 2, 1, 31)});
  rows.push_back({"qaoa_9(3x3)", bench::qaoa_grid(3, 3, 1, 32)});
  rows.push_back({"qaoa_16", bench::qaoa(16, 1, 33)});
  if (bench::large_mode()) {
    rows.push_back({"qaoa_36", bench::qaoa(36, 1, 34)});
    rows.push_back({"qaoa_64", bench::qaoa(64, 1, 35)});
  }

  const double p = 0.001;
  bench::Table table({"circuit", "prec:ours", "prec:traj(MM)", "prec:traj(TN)", "t:ours",
                      "t:traj(MM)", "t:traj(TN)", "samples"});

  for (const Row& row : rows) {
    const std::size_t noises = std::min<std::size_t>(20, row.circuit.size());
    const ch::NoisyCircuit nc =
        bench::insert_noises(row.circuit, noises, bench::depolarizing_noise(p), 201);

    // Reference: exact TN fidelity.
    tn::ContractOptions exact_opts;
    exact_opts.timeout_seconds = bench::timeout_large();
    exact_opts.max_tensor_elems = bench::memory_budget();
    const auto exact = bench::run_guarded([&] { return core::exact_fidelity_tn(nc, 0, 0, exact_opts); });

    // Ours, level 1.
    const auto ours = bench::run_guarded([&] {
      core::ApproxOptions opts;
      opts.level = 1;
      opts.eval.tn.timeout_seconds = bench::timeout_large();
      opts.eval.tn.max_tensor_elems = bench::memory_budget();
      return core::approximate_fidelity(nc, 0, 0, opts).value;
    });

    // Sample count matched to our level-1 precision (paper calibration).
    const std::size_t samples = static_cast<std::size_t>(
        std::max(8.0, core::trajectories_samples_calibrated(nc.noise_count(), nc.max_noise_rate())));

    std::mt19937_64 rng_mm(7), rng_tn(8);
    const auto traj_mm = bench::run_guarded([&] {
      if (nc.num_qubits() > 22) throw MemoryOutError("statevector needs > 100 MB");
      return sim::trajectories_sv(nc, 0, 0, samples, rng_mm).mean;
    });
    const auto traj_tn = bench::run_guarded([&] {
      core::EvalOptions eval;
      eval.tn.timeout_seconds = bench::timeout_large();
      eval.tn.max_tensor_elems = bench::memory_budget();
      return core::trajectories_tn(nc, 0, 0, samples, rng_tn, eval).mean;
    });

    auto precision = [&](const bench::RunOutcome& r) {
      if (!r.ok() || !exact.ok()) return std::string("-");
      return bench::sci(std::abs(r.value - exact.value));
    };

    table.add_row({row.name, precision(ours), precision(traj_mm), precision(traj_tn),
                   bench::format_time(ours), bench::format_time(traj_mm),
                   bench::format_time(traj_tn), std::to_string(samples)});
  }

  table.print(std::cout);
  std::cout << "\nPrecision = |estimate - exact TN fidelity|; times in seconds.\n"
            << "Trajectories sample count matched to the level-1 Theorem-1 bound\n"
            << "(r = 1/eps, the paper's Fig. 5 calibration; see EXPERIMENTS.md).\n";
  return 0;
}
