// Fig. 6: approximation error of the level-1 approximation vs. noise rate,
// under the realistic (thermal relaxation) fault model and the depolarizing
// model.
//
// The paper's claim: error grows with the noise rate (quadratically for the
// level-1 approximation, by Theorem 1), so higher-quality hardware means
// higher simulation precision.

#include "bench_common.hpp"
#include "core/approx.hpp"
#include "core/bounds.hpp"
#include "core/doubled_network.hpp"

namespace {
using namespace noisim;

void sweep(const std::string& label, const qc::Circuit& circuit, std::size_t noises,
           const std::vector<double>& rates, bool realistic) {
  std::cout << "--- " << label << " ---\n";
  bench::Table table({"noise-rate", "exact", "level-1", "error", "thm1-bound"});
  std::vector<std::vector<std::string>> csv{{"rate", "error"}};

  for (double rate : rates) {
    const bench::NoiseModel model =
        realistic ? bench::realistic_noise(rate) : bench::depolarizing_noise(rate);
    // v = ideal output keeps the fidelity near 1 so errors land on the
    // paper's 1e-4-ish scale rather than being suppressed by a vanishing
    // |<0|C|0>|^2.
    const ch::NoisyCircuit nc = core::with_ideal_output_projector(
        bench::insert_noises(circuit, noises, model, 600));

    tn::ContractOptions exact_opts;
    exact_opts.timeout_seconds = bench::timeout_large();
    exact_opts.max_tensor_elems = bench::memory_budget();
    const auto exact =
        bench::run_guarded([&] { return core::exact_fidelity_tn(nc, 0, 0, exact_opts); });

    core::ApproxOptions opts;
    opts.level = 1;
    opts.eval.simplify = true;
    opts.eval.tn.timeout_seconds = bench::timeout_large();
    opts.eval.tn.max_tensor_elems = bench::memory_budget();
    double bound = 0.0;
    const auto ours = bench::run_guarded([&] {
      const core::ApproxResult r = core::approximate_fidelity(nc, 0, 0, opts);
      bound = r.error_bound;
      return r.value;
    });

    std::string err = "-";
    if (exact.ok() && ours.ok()) err = bench::sci(std::abs(ours.value - exact.value));
    table.add_row({bench::sci(realistic ? rate : 4.0 * rate / 3.0),
                   exact.ok() ? bench::sci(exact.value) : bench::format_time(exact),
                   ours.ok() ? bench::sci(ours.value) : bench::format_time(ours), err,
                   bench::sci(bound)});
    csv.push_back({bench::sci(realistic ? rate : 4.0 * rate / 3.0), err});
  }
  table.print(std::cout);
  std::cout << "CSV:\n";
  bench::write_csv(std::cout, csv);
  std::cout << "\n";
}

}  // namespace

int main() {
  bench::print_header("Fig. 6: approximation error vs noise rate", "paper Fig. 6");

  const int n = bench::large_mode() ? 36 : 16;
  const qc::Circuit circuit = bench::qaoa(n, 1, 601);
  const std::size_t noises = 10;
  std::cout << "circuit qaoa_" << n << ", " << noises << " noises, level-1 approximation\n\n";

  // Realistic fault model: rates around the paper's 6e-3 .. 8e-3 window.
  sweep("realistic fault model (thermal relaxation)", circuit, noises,
        {0.006, 0.0065, 0.007, 0.0075, 0.008}, /*realistic=*/true);

  // Depolarizing model: p in 0 .. 1e-2 like the paper's right panel
  // (the x-axis below is the *noise rate* 4p/3).
  sweep("depolarizing noise model", circuit, noises,
        {0.001, 0.0025, 0.005, 0.0075, 0.01}, /*realistic=*/false);

  std::cout << "Expected shape (paper Fig. 6): error rises with the noise rate in both\n"
            << "models and stays below the Theorem-1 bound.\n";
  return 0;
}
