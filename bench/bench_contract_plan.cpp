// Plan/execute engine: plan-reuse vs re-plan throughput on the Fig. 4
// workload (hardware-grid QAOA with injected realistic noise).
//
// Every Algorithm-1 term contracts 2 single-layer networks that share one
// topology, so the engine compiles each layer's contraction plan once and
// replays it per term. This bench runs the same A(l) sweep through the
// replay path and through the per-term re-planning reference path, checks
// the values are bit-identical, and records per-term throughput plus the
// plan-reuse counters to BENCH_contract_plan.json (or argv[1]).

#include <chrono>
#include <fstream>

#include "bench_common.hpp"
#include "core/approx.hpp"
#include "sim/parallel.hpp"

namespace {

using namespace noisim;

struct LevelRun {
  std::size_t level = 0;
  std::size_t terms = 0;
  std::size_t contractions = 0;
  bench::RunOutcome replan, reuse;
  core::ApproxResult replan_result, reuse_result, threaded_result;
  bool bit_identical = false;
  bool threaded_identical = false;
};

bool same_bits(const core::ApproxResult& a, const core::ApproxResult& b) {
  if (a.raw != b.raw || a.level_values.size() != b.level_values.size()) return false;
  for (std::size_t i = 0; i < a.level_values.size(); ++i)
    if (a.level_values[i] != b.level_values[i]) return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("Plan/execute engine: plan once, replay per Algorithm-1 term",
                      "paper Fig. 4 workload, Theorem 1 cost model");

  const int n = bench::large_mode() ? 100 : 64;
  const std::size_t noises = bench::large_mode() ? 16 : 8;
  const qc::Circuit circuit = bench::qaoa(n, 1, 77);
  const ch::NoisyCircuit nc =
      bench::insert_noises(circuit, noises, bench::realistic_noise(), 500 + noises);
  std::cout << "circuit qaoa_" << n << " (" << circuit.size() << " gates, depth "
            << circuit.depth() << ", " << noises << " noises)\n\n";

  std::vector<std::size_t> levels{0, 1};
  if (bench::large_mode()) levels.push_back(2);
  const std::size_t hw = sim::resolve_threads(0);

  auto make_opts = [&](std::size_t level, bool reuse, std::size_t threads) {
    core::ApproxOptions opts;
    opts.level = level;
    opts.threads = threads;
    opts.reuse_plans = reuse;
    opts.eval.backend = core::EvalOptions::Backend::TensorNetwork;
    opts.eval.tn.timeout_seconds = bench::timeout_large();
    opts.eval.tn.max_tensor_elems = bench::memory_budget();
    return opts;
  };

  std::vector<LevelRun> runs;
  bool all_identical = true;
  for (const std::size_t level : levels) {
    LevelRun run;
    run.level = level;
    run.replan = bench::run_guarded_stats([&](tn::ContractStats& stats) {
      run.replan_result = core::approximate_fidelity(nc, 0, 0, make_opts(level, false, 1));
      stats = run.replan_result.contract_stats;
      return run.replan_result.value;
    });
    run.reuse = bench::run_guarded_stats([&](tn::ContractStats& stats) {
      run.reuse_result = core::approximate_fidelity(nc, 0, 0, make_opts(level, true, 1));
      stats = run.reuse_result.contract_stats;
      return run.reuse_result.value;
    });
    // Plan replay must be thread-safe: per-worker workspaces, bit-identical
    // reduction at any thread count. Guarded so a budget-constrained box
    // still emits its MO/TO rows and the JSON instead of crashing.
    const bench::RunOutcome threaded = bench::run_guarded([&] {
      run.threaded_result = core::approximate_fidelity(nc, 0, 0, make_opts(level, true, hw));
      return run.threaded_result.value;
    });

    run.contractions = run.reuse_result.contractions;
    run.terms = run.contractions / 2;
    run.bit_identical =
        run.replan.ok() && run.reuse.ok() && same_bits(run.replan_result, run.reuse_result);
    run.threaded_identical = threaded.ok() && same_bits(run.reuse_result, run.threaded_result);
    all_identical = all_identical && run.bit_identical && run.threaded_identical;
    runs.push_back(std::move(run));
  }

  bench::Table table({"level", "terms", "replan(s)", "reuse(s)", "per-term speedup",
                      "reuse hits", "bit-identical"});
  for (const LevelRun& r : runs) {
    const double speedup = r.reuse.seconds > 0.0 ? r.replan.seconds / r.reuse.seconds : 0.0;
    table.add_row({std::to_string(r.level), std::to_string(r.terms),
                   bench::fixed(r.replan.seconds, 3), bench::fixed(r.reuse.seconds, 3),
                   bench::fixed(speedup, 2),
                   std::to_string(r.reuse.contract_stats.plan_reuse_hits),
                   r.bit_identical && r.threaded_identical ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nhardware threads: " << hw << "\n"
            << "Expected shape: replay skips per-term ordering/allocation, so per-term\n"
            << "throughput should rise >= 2x at level >= 1 while values stay bit-identical.\n";

  const std::string out_path = argc > 1 ? argv[1] : "BENCH_contract_plan.json";
  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"contract_plan\",\n"
      << "  \"workload\": \"qaoa_" << n << " + " << noises
      << " realistic noises (Fig. 4 workload)\",\n"
      << "  \"qubits\": " << nc.num_qubits() << ",\n"
      << "  \"hardware_threads\": " << hw << ",\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const LevelRun& r = runs[i];
    const double speedup = r.reuse.seconds > 0.0 ? r.replan.seconds / r.reuse.seconds : 0.0;
    out << "    {\"level\": " << r.level << ", \"terms\": " << r.terms
        << ", \"contractions\": " << r.contractions
        << ", \"replan_seconds\": " << r.replan.seconds
        << ", \"reuse_seconds\": " << r.reuse.seconds
        << ", \"per_term_speedup\": " << speedup << ", \"value\": " << r.reuse.value
        << ", \"bit_identical\": " << (r.bit_identical ? "true" : "false")
        << ", \"threaded_identical\": " << (r.threaded_identical ? "true" : "false")
        << ",\n     \"replan_stats\": " << bench::stats_json(r.replan.contract_stats)
        << ",\n     \"reuse_stats\": " << bench::stats_json(r.reuse.contract_stats) << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return all_identical ? 0 : 1;
}
