// Plan/execute engine: re-plan vs per-term replay vs batched replay
// throughput on the Fig. 4 workload (hardware-grid QAOA with injected
// realistic noise).
//
// Every Algorithm-1 term contracts 2 single-layer networks that share one
// topology, so the engine compiles each layer's contraction plan once and
// replays it per term; batched replay executes a whole chunk of terms in
// ONE plan traversal (shared-cone steps once per batch, duplicate slices
// memcpy'd, per-step dispatch amortized). This bench runs the same A(l)
// sweep through all three paths, checks the values are bit-identical, and
// records per-term throughput plus the plan/flops counters to
// BENCH_contract_plan.json (or the first non-flag argument).
//
// Per-term throughput is terms / eval_seconds -- the evaluation phase of
// core::approximate_fidelity, excluding the per-sweep planning that both
// paths pay once and that vanishes as the term count grows with the
// level. Total wall-clock seconds are recorded alongside.
//
// A kernel-tier section then re-runs the level-1 batched sweep with the
// scalar tier forced vs the runtime-dispatched tier (tensor/kernels.hpp),
// checks the two agree bitwise, and gates the dispatched tier's eval
// throughput: >= 1.5x over scalar whenever the host detects AVX2 or
// better (on scalar-only hosts the tiers are the same table, so the gate
// passes trivially).
//
// Exit status is non-zero when any path disagrees bitwise, when the
// level-1 batched path fails the >= 2x per-term eval-throughput gate over
// the per-term replay path, when the dispatched kernel tier misses its
// speedup gate, or when --baseline <json> shows a > 20% batched per-term
// throughput regression against the committed baseline.

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "bench_common.hpp"
#include "core/approx.hpp"
#include "sim/parallel.hpp"
#include "tensor/kernels.hpp"

namespace {

using namespace noisim;

struct LevelRun {
  std::size_t level = 0;
  std::size_t terms = 0;
  std::size_t contractions = 0;
  bench::RunOutcome replan, reuse, batched;
  core::ApproxResult replan_result, reuse_result, batched_result, threaded_result;
  bool bit_identical = false;
  bool threaded_identical = false;
};

bool same_bits(const core::ApproxResult& a, const core::ApproxResult& b) {
  if (a.raw != b.raw || a.level_values.size() != b.level_values.size()) return false;
  for (std::size_t i = 0; i < a.level_values.size(); ++i)
    if (a.level_values[i] != b.level_values[i]) return false;
  return true;
}

/// Minimal field scan: the number following `"<key>": ` in the object for
/// `"level": <level>` inside `path`. Returns false when absent.
bool baseline_field(const std::string& path, std::size_t level, const std::string& key,
                    double* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const std::string level_tag = "\"level\": " + std::to_string(level);
  std::size_t at = text.find(level_tag);
  if (at == std::string::npos) return false;
  const std::string key_tag = "\"" + key + "\": ";
  at = text.find(key_tag, at);
  if (at == std::string::npos) return false;
  *out = std::strtod(text.c_str() + at + key_tag.size(), nullptr);
  return true;
}

double per_term_eval_seconds(const core::ApproxResult& r, std::size_t terms) {
  return terms > 0 ? r.eval_seconds / static_cast<double>(terms) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_contract_plan.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline") {
      if (i + 1 >= argc) {
        std::cerr << "error: --baseline requires a path\n";
        return 2;
      }
      baseline_path = argv[++i];
    } else {
      out_path = arg;
    }
  }

  bench::print_header("Plan/execute engine: replan vs per-term replay vs batched replay",
                      "paper Fig. 4 workload, Theorem 1 cost model");

  const int n = bench::large_mode() ? 100 : 64;
  const std::size_t noises = bench::large_mode() ? 16 : 8;
  const qc::Circuit circuit = bench::qaoa(n, 1, 77);
  const ch::NoisyCircuit nc =
      bench::insert_noises(circuit, noises, bench::realistic_noise(), 500 + noises);
  std::cout << "circuit qaoa_" << n << " (" << circuit.size() << " gates, depth "
            << circuit.depth() << ", " << noises << " noises)\n\n";

  std::vector<std::size_t> levels{0, 1};
  if (bench::large_mode()) levels.push_back(2);
  const std::size_t hw = sim::resolve_threads(0);
  const std::size_t batch_terms = core::ApproxOptions{}.batch_terms;

  auto make_opts = [&](std::size_t level, bool reuse, std::size_t threads, std::size_t batch) {
    core::ApproxOptions opts;
    opts.level = level;
    opts.threads = threads;
    opts.reuse_plans = reuse;
    opts.batch_terms = batch;
    opts.eval.backend = core::EvalOptions::Backend::TensorNetwork;
    opts.eval.tn.timeout_seconds = bench::timeout_large();
    opts.eval.tn.max_tensor_elems = bench::memory_budget();
    return opts;
  };

  std::vector<LevelRun> runs;
  bool all_identical = true;
  bool speedup_gate_ok = true;
  for (const std::size_t level : levels) {
    LevelRun run;
    run.level = level;
    // The three serial paths run in INTERLEAVED rounds and each keeps its
    // fastest eval phase (repeats are deterministic, so the kept results
    // are interchangeable): single-shot timings on small levels are
    // noise-dominated, and interleaving means a slow machine window (CPU
    // steal on shared boxes) hits all paths alike instead of skewing the
    // gated ratios.
    auto run_once = [&](core::ApproxResult& result, const core::ApproxOptions& opts,
                        bool first) {
      return bench::run_guarded_stats([&](tn::ContractStats& stats) {
        core::ApproxResult attempt = core::approximate_fidelity(nc, 0, 0, opts);
        if (first || attempt.eval_seconds < result.eval_seconds) result = std::move(attempt);
        stats = result.contract_stats;
        return result.value;
      });
    };
    const core::ApproxOptions replan_opts = make_opts(level, false, 1, 1);
    // The PR-2 per-term replay path (plan reuse, no batching): the speedup
    // baseline the batched executor is gated against.
    const core::ApproxOptions reuse_opts = make_opts(level, true, 1, 1);
    const core::ApproxOptions batched_opts = make_opts(level, true, 1, batch_terms);
    for (int round = 0; round < 4; ++round) {
      run.replan = run_once(run.replan_result, replan_opts, round == 0);
      run.reuse = run_once(run.reuse_result, reuse_opts, round == 0);
      run.batched = run_once(run.batched_result, batched_opts, round == 0);
      if (!run.replan.ok() || !run.reuse.ok() || !run.batched.ok()) break;
    }
    // Report each path's best single-run wall time, not the repeat total --
    // *_seconds in the JSON stays comparable across commits.
    auto single_seconds = [](bench::RunOutcome& out, const core::ApproxResult& result) {
      if (out.ok()) out.seconds = result.plan_seconds + result.eval_seconds;
    };
    single_seconds(run.replan, run.replan_result);
    single_seconds(run.reuse, run.reuse_result);
    single_seconds(run.batched, run.batched_result);
    // Batched replay must be thread-safe: per-worker workspaces,
    // bit-identical reduction at any thread count. Guarded so a
    // budget-constrained box still emits its MO/TO rows and the JSON
    // instead of crashing.
    const bench::RunOutcome threaded = bench::run_guarded([&] {
      run.threaded_result =
          core::approximate_fidelity(nc, 0, 0, make_opts(level, true, hw, batch_terms));
      return run.threaded_result.value;
    });

    run.contractions = run.reuse_result.contractions;
    run.terms = run.contractions / 2;
    run.bit_identical = run.replan.ok() && run.reuse.ok() && run.batched.ok() &&
                        same_bits(run.replan_result, run.reuse_result) &&
                        same_bits(run.reuse_result, run.batched_result);
    run.threaded_identical = threaded.ok() && same_bits(run.batched_result, run.threaded_result);
    all_identical = all_identical && run.bit_identical && run.threaded_identical;
    if (level >= 1 && run.reuse.ok() && run.batched.ok() &&
        run.batched_result.eval_seconds * 2.0 > run.reuse_result.eval_seconds)
      speedup_gate_ok = false;
    runs.push_back(std::move(run));
  }

  // --- kernel-tier gate: forced scalar vs runtime-dispatched -------------
  // Same interleaved best-of-rounds discipline as the path comparison, on
  // the level-1 batched configuration (the production path). Results must
  // be bit-identical -- the tiers' entire contract -- and on AVX2+ hosts
  // the dispatched tier must deliver >= 1.5x eval throughput.
  const tsr::KernelTier detected = tsr::detected_kernel_tier();
  const std::size_t tier_level = 1;
  core::ApproxResult scalar_result, dispatched_result;
  bench::RunOutcome scalar_run, dispatched_run;
  {
    const core::ApproxOptions tier_opts = make_opts(tier_level, true, 1, batch_terms);
    auto run_tier = [&](tsr::KernelTier tier, core::ApproxResult& result, bool first) {
      const tsr::KernelTier prev = tsr::set_kernel_tier(tier);
      bench::RunOutcome out = bench::run_guarded_stats([&](tn::ContractStats& stats) {
        core::ApproxResult attempt = core::approximate_fidelity(nc, 0, 0, tier_opts);
        if (first || attempt.eval_seconds < result.eval_seconds) result = std::move(attempt);
        stats = result.contract_stats;
        return result.value;
      });
      tsr::set_kernel_tier(prev);
      return out;
    };
    for (int round = 0; round < 4; ++round) {
      scalar_run = run_tier(tsr::KernelTier::Scalar, scalar_result, round == 0);
      dispatched_run = run_tier(detected, dispatched_result, round == 0);
      if (!scalar_run.ok() || !dispatched_run.ok()) break;
    }
  }
  const bool tier_identical = !scalar_run.ok() || !dispatched_run.ok() ||
                              same_bits(scalar_result, dispatched_result);
  all_identical = all_identical && tier_identical;
  const double tier_speedup = dispatched_result.eval_seconds > 0.0
                                  ? scalar_result.eval_seconds / dispatched_result.eval_seconds
                                  : 0.0;
  // MO/TO boxes skip the gate (they already failed the workload, and the
  // table rows say so); scalar-only hosts compare a table against itself.
  const bool tier_gate_ok = !scalar_run.ok() || !dispatched_run.ok() ||
                            detected == tsr::KernelTier::Scalar || tier_speedup >= 1.5;

  bench::Table table({"level", "terms", "replan(s)", "reuse eval(s)", "batched eval(s)",
                      "eval reuse/replan", "eval batched/reuse", "bit-identical"});
  for (const LevelRun& r : runs) {
    const double s_reuse = r.reuse_result.eval_seconds > 0.0
                               ? r.replan_result.eval_seconds / r.reuse_result.eval_seconds
                               : 0.0;
    const double s_batched = r.batched_result.eval_seconds > 0.0
                                 ? r.reuse_result.eval_seconds / r.batched_result.eval_seconds
                                 : 0.0;
    table.add_row({std::to_string(r.level), std::to_string(r.terms),
                   bench::fixed(r.replan.seconds, 3),
                   bench::fixed(r.reuse_result.eval_seconds, 3),
                   bench::fixed(r.batched_result.eval_seconds, 3), bench::fixed(s_reuse, 2),
                   bench::fixed(s_batched, 2),
                   r.bit_identical && r.threaded_identical ? "yes" : "NO"});
  }
  table.print(std::cout);

  bench::Table tier_table(
      {"kernel tier", "eval(s)", "speedup vs scalar", "bit-identical"});
  tier_table.add_row({"scalar (forced)",
                      scalar_run.ok() ? bench::fixed(scalar_result.eval_seconds, 3)
                                      : bench::format_time(scalar_run),
                      "1.00", "yes"});
  tier_table.add_row({std::string(tsr::kernel_tier_name(detected)) + " (dispatched)",
                      dispatched_run.ok() ? bench::fixed(dispatched_result.eval_seconds, 3)
                                          : bench::format_time(dispatched_run),
                      bench::fixed(tier_speedup, 2), tier_identical ? "yes" : "NO"});
  std::cout << "\n";
  tier_table.print(std::cout);
  std::cout << "\ncpu: " << bench::cpu_model() << " (" << hw << " hardware threads)\n"
            << "batch_terms: " << batch_terms << "\n"
            << "Expected shape: batched replay pays dispatch/permutations once per step and\n"
            << "runs shared-cone steps once per batch, so level >= 1 per-term throughput\n"
            << "must rise >= 2x over per-term replay while staying bit-identical.\n";

  // Baseline regression gate (CI): fail on > 20% batched per-term
  // throughput loss vs the committed BENCH_contract_plan.json. Absolute
  // wall times only compare like for like, so on a different CPU model
  // than the baseline's the comparison is reported but not enforced (the
  // ratio-based 2x gate above carries the cross-machine contract).
  bool baseline_ok = true;
  if (!baseline_path.empty()) {
    std::string baseline_cpu;
    {
      std::ifstream in(baseline_path);
      std::stringstream buf;
      buf << in.rdbuf();
      const std::string text = buf.str();
      const std::string tag = "\"cpu_model\": \"";
      const std::size_t at = text.find(tag);
      if (at != std::string::npos) {
        const std::size_t end = text.find('"', at + tag.size());
        if (end != std::string::npos) baseline_cpu = text.substr(at + tag.size(), end - at - tag.size());
      }
    }
    const bool same_machine = baseline_cpu == bench::cpu_model();
    if (!same_machine)
      std::cout << "baseline recorded on \"" << baseline_cpu
                << "\" (different CPU) -- regression check informational only\n";
    for (const LevelRun& r : runs) {
      double base_per_term = 0.0;
      if (!r.batched.ok() || r.level < 1 ||
          !baseline_field(baseline_path, r.level, "batched_per_term_seconds", &base_per_term) ||
          base_per_term <= 0.0)
        continue;
      const double cur = per_term_eval_seconds(r.batched_result, r.terms);
      const bool regressed = cur > base_per_term * 1.25;
      std::cout << "baseline level " << r.level << ": batched per-term " << bench::sci(cur)
                << "s vs committed " << bench::sci(base_per_term) << "s"
                << (regressed ? "  REGRESSION > 20%" : "  ok") << "\n";
      baseline_ok = baseline_ok && (!regressed || !same_machine);
    }
  }

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"contract_plan\",\n"
      << "  \"workload\": \"qaoa_" << n << " + " << noises
      << " realistic noises (Fig. 4 workload)\",\n"
      << "  \"qubits\": " << nc.num_qubits() << ",\n"
      << "  \"machine\": " << bench::machine_json() << ",\n"
      << "  \"batch_terms\": " << batch_terms << ",\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const LevelRun& r = runs[i];
    const double s_reuse = r.reuse_result.eval_seconds > 0.0
                               ? r.replan_result.eval_seconds / r.reuse_result.eval_seconds
                               : 0.0;
    const double s_batched = r.batched_result.eval_seconds > 0.0
                                 ? r.reuse_result.eval_seconds / r.batched_result.eval_seconds
                                 : 0.0;
    out << "    {\"level\": " << r.level << ", \"terms\": " << r.terms
        << ", \"contractions\": " << r.contractions
        << ", \"replan_seconds\": " << r.replan.seconds
        << ", \"reuse_seconds\": " << r.reuse.seconds
        << ", \"batched_seconds\": " << r.batched.seconds
        << ",\n     \"reuse_plan_seconds\": " << r.reuse_result.plan_seconds
        << ", \"reuse_eval_seconds\": " << r.reuse_result.eval_seconds
        << ", \"batched_plan_seconds\": " << r.batched_result.plan_seconds
        << ", \"batched_eval_seconds\": " << r.batched_result.eval_seconds
        << ", \"batched_per_term_seconds\": " << per_term_eval_seconds(r.batched_result, r.terms)
        << ",\n     \"speedup_reuse_vs_replan\": " << s_reuse
        << ", \"speedup_batched_vs_reuse\": " << s_batched
        << ", \"value\": " << r.batched.value
        << ", \"bit_identical\": " << (r.bit_identical ? "true" : "false")
        << ", \"threaded_identical\": " << (r.threaded_identical ? "true" : "false")
        << ",\n     \"replan_stats\": " << bench::stats_json(r.replan.contract_stats)
        << ",\n     \"reuse_stats\": " << bench::stats_json(r.reuse.contract_stats)
        << ",\n     \"batched_stats\": " << bench::stats_json(r.batched.contract_stats) << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"kernel_tiers\": {\"detected\": \"" << tsr::kernel_tier_name(detected)
      << "\", \"level\": " << tier_level
      << ", \"scalar_eval_seconds\": " << scalar_result.eval_seconds
      << ", \"dispatched_eval_seconds\": " << dispatched_result.eval_seconds
      << ",\n    \"speedup_dispatched_vs_scalar\": " << tier_speedup
      << ", \"bit_identical\": " << (tier_identical ? "true" : "false")
      << ",\n    \"scalar_stats\": " << bench::stats_json(scalar_run.contract_stats)
      << ",\n    \"dispatched_stats\": " << bench::stats_json(dispatched_run.contract_stats)
      << "}\n";
  out << "}\n";
  std::cout << "wrote " << out_path << "\n";

  if (!all_identical) std::cout << "FAIL: batched / per-term results not bit-identical\n";
  if (!speedup_gate_ok)
    std::cout << "FAIL: batched replay below the 2x per-term eval-throughput gate at level >= 1\n";
  if (!tier_gate_ok)
    std::cout << "FAIL: dispatched kernel tier below the 1.5x eval-throughput gate vs scalar\n";
  if (!baseline_ok) std::cout << "FAIL: batched per-term throughput regressed > 20%\n";
  return all_identical && speedup_gate_ok && tier_gate_ok && baseline_ok ? 0 : 1;
}
