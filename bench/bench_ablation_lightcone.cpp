// Ablation: light-cone (inverse-pair cancellation) reduction for
// ideal-output amplitudes.
//
// Table IV's protocol evaluates <0|U^dag C'|0> where C' is the circuit with
// noise-term insertions; outside the insertions' light cone U^dag cancels
// against C'. This benchmark measures the level-1 engine with and without
// the reduction -- the speedup is what makes the paper's level sweep on
// qaoa_64 tractable.

#include <benchmark/benchmark.h>

#include "bench_support/generators.hpp"
#include "circuit/simplify.hpp"
#include "core/approx.hpp"

namespace {

using namespace noisim;

ch::NoisyCircuit make_projected(int n) {
  const qc::Circuit circuit = bench::qaoa(n, 1, 88);
  const ch::NoisyCircuit nc = bench::insert_noises(circuit, 6, bench::realistic_noise(), 89);
  return core::with_ideal_output_projector(nc);
}

void run_level1(const ch::NoisyCircuit& projected, bool simplify, benchmark::State& state) {
  core::ApproxOptions opts;
  opts.level = 1;
  opts.eval.simplify = simplify;
  opts.eval.tn.max_tensor_elems = std::size_t{1} << 24;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::approximate_fidelity(projected, 0, 0, opts).value);
  }
}

void BM_Level1_WithLightcone_Qaoa16(benchmark::State& state) {
  run_level1(make_projected(16), true, state);
}
void BM_Level1_NoLightcone_Qaoa16(benchmark::State& state) {
  run_level1(make_projected(16), false, state);
}

// Direct measurement of the reduction factor.
void BM_CancelInversePairs_Qaoa36(benchmark::State& state) {
  const ch::NoisyCircuit projected = make_projected(36);
  // Build the tagged skeleton the engine sees.
  std::vector<qc::Gate> gates;
  for (const ch::Op& op : projected.ops()) {
    if (const qc::Gate* g = std::get_if<qc::Gate>(&op))
      gates.push_back(*g);
    else
      gates.push_back(qc::u1q(std::get<ch::NoiseOp>(op).qubit, la::Matrix{{2, 0}, {0, 3}}));
  }
  std::size_t reduced_size = 0;
  for (auto _ : state) {
    const auto reduced = qc::cancel_inverse_pairs(gates);
    reduced_size = reduced.size();
    benchmark::DoNotOptimize(reduced_size);
  }
  state.counters["gates_before"] = static_cast<double>(gates.size());
  state.counters["gates_after"] = static_cast<double>(reduced_size);
}

BENCHMARK(BM_Level1_WithLightcone_Qaoa16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Level1_NoLightcone_Qaoa16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CancelInversePairs_Qaoa36)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
