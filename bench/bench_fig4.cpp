// Fig. 4: runtime vs. number of injected noises.
//
// The paper's claim: the exact TN-based method blows up (memory-out past
// ~30 noises on qaoa_100) because every noise tensor couples the top and
// bottom layers of the doubled diagram and drives up the contraction
// treewidth, while the level-1 approximation contracts 2(1+3N)
// *single-layer* networks and scales linearly in N.
//
// Writes machine-readable rows (with contraction/plan-reuse stats) to
// BENCH_fig4.json (or argv[1]).

#include <fstream>

#include "bench_common.hpp"
#include "core/approx.hpp"
#include "core/doubled_network.hpp"

namespace {
using namespace noisim;
}

int main(int argc, char** argv) {
  bench::print_header("Fig. 4: runtime vs noise count", "paper Fig. 4");

  const int n = bench::large_mode() ? 100 : 64;
  const qc::Circuit circuit = bench::qaoa(n, 1, 77);
  std::cout << "circuit qaoa_" << n << " (" << circuit.size() << " gates, depth "
            << circuit.depth() << ")\n\n";

  std::vector<std::size_t> counts{0, 10, 20, 30, 40, 60, 80};

  bench::Table table({"noises", "TN-exact(s)", "Ours-lvl1(s)", "contractions", "plan reuse"});
  std::vector<std::vector<std::string>> csv{{"noises", "tn_seconds", "ours_seconds"}};

  struct Row {
    std::size_t noises = 0;
    std::size_t contractions = 0;
    bench::RunOutcome tn_run, ours_run;
  };
  std::vector<Row> rows;

  for (std::size_t count : counts) {
    const ch::NoisyCircuit nc =
        bench::insert_noises(circuit, count, bench::realistic_noise(), 500 + count);

    Row row;
    row.noises = count;
    row.tn_run = bench::run_guarded_stats([&](tn::ContractStats& stats) {
      tn::ContractOptions opts;
      opts.timeout_seconds = bench::timeout_large();
      opts.max_tensor_elems = bench::memory_budget();
      return core::exact_fidelity_tn(nc, 0, 0, opts, &stats);
    });

    row.ours_run = bench::run_guarded_stats([&](tn::ContractStats& stats) {
      core::ApproxOptions opts;
      opts.level = 1;
      opts.eval.tn.timeout_seconds = bench::timeout_large();
      opts.eval.tn.max_tensor_elems = bench::memory_budget();
      const core::ApproxResult r = core::approximate_fidelity(nc, 0, 0, opts);
      row.contractions = r.contractions;
      stats = r.contract_stats;
      return r.value;
    });

    table.add_row({std::to_string(count), bench::format_time(row.tn_run),
                   bench::format_time(row.ours_run), std::to_string(row.contractions),
                   std::to_string(row.ours_run.contract_stats.plan_reuse_hits)});
    csv.push_back({std::to_string(count), bench::format_time(row.tn_run),
                   bench::format_time(row.ours_run)});
    rows.push_back(std::move(row));
  }

  table.print(std::cout);
  std::cout << "\nCSV for plotting:\n";
  bench::write_csv(std::cout, csv);
  std::cout << "\nExpected shape (paper Fig. 4): TN-exact grows steeply / hits MO as the\n"
            << "noise count rises; ours grows linearly (contractions = 2(1+3N)).\n";

  const std::string out_path = argc > 1 ? argv[1] : "BENCH_fig4.json";
  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"fig4\",\n"
      << "  \"workload\": \"qaoa_" << n << " + realistic noises\",\n"
      << "  \"qubits\": " << n << ",\n"
      << "  \"machine\": " << bench::machine_json() << ",\n"
      << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"noises\": " << r.noises << ", \"tn_seconds\": " << r.tn_run.seconds
        << ", \"tn_status\": \"" << bench::format_time(r.tn_run) << "\""
        << ", \"ours_seconds\": " << r.ours_run.seconds
        << ", \"contractions\": " << r.contractions
        << ",\n     \"tn_stats\": " << bench::stats_json(r.tn_run.contract_stats)
        << ",\n     \"ours_stats\": " << bench::stats_json(r.ours_run.contract_stats) << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
