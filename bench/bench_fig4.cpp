// Fig. 4: runtime vs. number of injected noises.
//
// The paper's claim: the exact TN-based method blows up (memory-out past
// ~30 noises on qaoa_100) because every noise tensor couples the top and
// bottom layers of the doubled diagram and drives up the contraction
// treewidth, while the level-1 approximation contracts 2(1+3N)
// *single-layer* networks and scales linearly in N.

#include "bench_common.hpp"
#include "core/approx.hpp"
#include "core/doubled_network.hpp"

namespace {
using namespace noisim;
}

int main() {
  bench::print_header("Fig. 4: runtime vs noise count", "paper Fig. 4");

  const int n = bench::large_mode() ? 100 : 64;
  const qc::Circuit circuit = bench::qaoa(n, 1, 77);
  std::cout << "circuit qaoa_" << n << " (" << circuit.size() << " gates, depth "
            << circuit.depth() << ")\n\n";

  std::vector<std::size_t> counts{0, 10, 20, 30, 40, 60, 80};

  bench::Table table({"noises", "TN-exact(s)", "Ours-lvl1(s)", "contractions"});
  std::vector<std::vector<std::string>> csv{{"noises", "tn_seconds", "ours_seconds"}};

  for (std::size_t count : counts) {
    const ch::NoisyCircuit nc =
        bench::insert_noises(circuit, count, bench::realistic_noise(), 500 + count);

    const auto tn_run = bench::run_guarded([&] {
      tn::ContractOptions opts;
      opts.timeout_seconds = bench::timeout_large();
      opts.max_tensor_elems = bench::memory_budget();
      return core::exact_fidelity_tn(nc, 0, 0, opts);
    });

    std::size_t contractions = 0;
    const auto ours_run = bench::run_guarded([&] {
      core::ApproxOptions opts;
      opts.level = 1;
      opts.eval.tn.timeout_seconds = bench::timeout_large();
      opts.eval.tn.max_tensor_elems = bench::memory_budget();
      const core::ApproxResult r = core::approximate_fidelity(nc, 0, 0, opts);
      contractions = r.contractions;
      return r.value;
    });

    table.add_row({std::to_string(count), bench::format_time(tn_run),
                   bench::format_time(ours_run), std::to_string(contractions)});
    csv.push_back({std::to_string(count), bench::format_time(tn_run),
                   bench::format_time(ours_run)});
  }

  table.print(std::cout);
  std::cout << "\nCSV for plotting:\n";
  bench::write_csv(std::cout, csv);
  std::cout << "\nExpected shape (paper Fig. 4): TN-exact grows steeply / hits MO as the\n"
            << "noise count rises; ours grows linearly (contractions = 2(1+3N)).\n";
  return 0;
}
