// Fig. 5: number of samples (tensor network contractions) needed for the
// same error bound -- our level-1 approximation vs. quantum trajectories.
//
// Model (Theorem 1 + the paper's calibration):
//  * ours:          2 (1 + 3N) contractions, independent of p;
//  * trajectories:  accuracy ~ 1/sqrt(r) => r = 1/eps with eps the exact
//                   level-1 Theorem-1 bound (reproduces the paper's
//                   magnitudes and its N ~= 26 crossover at p = 0.001);
//  * a Hoeffding column (r = ln(2/delta)/(2 eps^2), 99% confidence) is
//    printed alongside as the textbook-rigorous count.

#include "bench_common.hpp"
#include "core/bounds.hpp"

namespace {
using namespace noisim;
}

int main() {
  bench::print_header("Fig. 5: sample number for the same error bound", "paper Fig. 5");

  for (const double p : {0.001, 0.0001}) {
    std::cout << "--- noise rate p = " << p << " ---\n";
    bench::Table table({"N", "ours", "traj(calibrated)", "traj(Hoeffding99)", "eps(level-1)"});
    std::vector<std::vector<std::string>> csv{{"N", "ours", "traj"}};
    std::size_t crossover = 0;
    for (std::size_t n = 10; n <= 40; n += 2) {
      const double ours = core::contraction_count(n, 1);
      const double traj = core::trajectories_samples_calibrated(n, p);
      const double hoeff = core::trajectories_samples_hoeffding(n, p, 0.01);
      const double eps = core::theorem1_error_bound(n, p, 1);
      table.add_row({std::to_string(n), bench::fixed(ours, 0), bench::fixed(traj, 0),
                     bench::sci(hoeff), bench::sci(eps)});
      csv.push_back({std::to_string(n), bench::fixed(ours, 0), bench::fixed(traj, 0)});
      if (crossover == 0 && ours > traj) crossover = n;
    }
    table.print(std::cout);
    if (crossover != 0)
      std::cout << "crossover: trajectories become cheaper at N ~= " << crossover
                << " (paper: N ~= 26 at p = 0.001)\n";
    else
      std::cout << "no crossover in N = 10..40 (ours cheaper throughout, as in the paper)\n";
    std::cout << "CSV:\n";
    bench::write_csv(std::cout, csv);
    std::cout << "\n";
  }
  return 0;
}
