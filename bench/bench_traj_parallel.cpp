// Parallel trajectory engine: wall-clock scaling of trajectories_sv on the
// Fig. 5 workload (hardware-grid QAOA with sparse depolarizing noise, the
// regime where the paper compares its approximation against trajectory
// sampling).
//
// Runs the same (seed-fixed) estimate serially and at several thread
// counts, checks the results are bit-identical (the engine's
// reproducibility contract), and writes machine-readable results to
// BENCH_traj_parallel.json (or argv[1]).

#include <chrono>
#include <fstream>

#include "bench_common.hpp"
#include "sim/trajectories.hpp"

namespace {

using namespace noisim;
using Clock = std::chrono::steady_clock;

double time_seconds(const std::function<void()>& fn) {
  const auto start = Clock::now();
  fn();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("Parallel trajectories: thread scaling on the Fig. 5 workload",
                      "paper Fig. 5 baseline");

  const int grid = bench::large_mode() ? 5 : 4;
  const std::size_t noises = 12;
  const double p = 0.001;
  const std::size_t samples = bench::large_mode() ? 2000 : 400;
  const std::uint64_t seed = 2024;

  const qc::Circuit c = bench::qaoa_grid(grid, grid, 1, 7);
  const ch::NoisyCircuit nc = bench::insert_noises(c, noises, bench::depolarizing_noise(p), 11);

  // Serial baseline: the original single-stream estimator.
  std::mt19937_64 rng(seed);
  sim::TrajectoryResult serial_result;
  const double serial_seconds =
      time_seconds([&] { serial_result = sim::trajectories_sv(nc, 0, 0, samples, rng); });

  const std::size_t hw = sim::resolve_threads(0);
  std::vector<std::size_t> thread_counts{1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);

  bench::Table table({"threads", "seconds", "speedup vs serial", "mean", "std_error"});
  table.add_row({"serial", bench::fixed(serial_seconds, 3), "1.00",
                 bench::sci(serial_result.mean), bench::sci(serial_result.std_error)});

  struct Row {
    std::size_t threads;
    double seconds;
    sim::TrajectoryResult result;
  };
  std::vector<Row> rows;
  bool deterministic = true;
  for (const std::size_t t : thread_counts) {
    sim::ParallelOptions opts;
    opts.threads = t;
    Row row;
    row.threads = t;
    row.seconds =
        time_seconds([&] { row.result = sim::trajectories_sv(nc, 0, 0, samples, seed, opts); });
    if (!rows.empty() &&
        (row.result.mean != rows.front().result.mean ||
         row.result.std_error != rows.front().result.std_error))
      deterministic = false;
    table.add_row({std::to_string(t), bench::fixed(row.seconds, 3),
                   bench::fixed(serial_seconds / row.seconds, 2), bench::sci(row.result.mean),
                   bench::sci(row.result.std_error)});
    rows.push_back(row);
  }
  table.print(std::cout);
  std::cout << "hardware threads: " << hw << "\n"
            << "deterministic across thread counts: " << (deterministic ? "yes" : "NO") << "\n";

  const std::string out_path = argc > 1 ? argv[1] : "BENCH_traj_parallel.json";
  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"traj_parallel\",\n"
      << "  \"workload\": \"qaoa_grid(" << grid << "x" << grid << ", 1 round) + " << noises
      << " depolarizing(p=" << p << ") noises (Fig. 5 regime)\",\n"
      << "  \"qubits\": " << nc.num_qubits() << ",\n"
      << "  \"samples\": " << samples << ",\n"
      << "  \"seed\": " << seed << ",\n"
      << "  \"machine\": " << bench::machine_json() << ",\n"
      << "  \"deterministic_across_threads\": " << (deterministic ? "true" : "false") << ",\n"
      << "  \"serial_seconds\": " << serial_seconds << ",\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"threads\": " << r.threads << ", \"seconds\": " << r.seconds
        << ", \"speedup_vs_serial\": " << serial_seconds / r.seconds
        << ", \"mean\": " << r.result.mean << ", \"std_error\": " << r.result.std_error << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return deterministic ? 0 : 1;
}
