// Ablation: contraction-order portfolio vs the plain greedy ladder.
//
// DESIGN.md calls the contraction order out as a load-bearing design
// choice: the TN-based methods' feasibility in Table II depends on it.
// PR 10 turned Auto planning into a portfolio search (greedy ladder,
// pairwise-recursive, bracket, alternating, seeded randomized greedy)
// under one shared planning deadline, keeping the minimum-total-flops
// schedule. This bench compiles forced-Greedy and Auto-portfolio plans
// for representative amplitude networks and gates the kept-cheapest
// contract:
//
//   1. portfolio total_flops <= greedy total_flops on EVERY workload
//      (Greedy is in the default subset, so the portfolio can never keep
//      a costlier schedule), and
//   2. the portfolio beats greedy outright on at least one workload:
//      strictly fewer flops (the randomized-greedy restarts win on the
//      deeper hf_vqe / qaoa grids), or compiling at all where the pure
//      greedy ladder memory-outs (the 4x5 supremacy grid).
//
// Plans are pure functions of topology + options, so the recorded flop
// counts are machine-independent; --baseline <json> additionally gates
// them for EXACT equality against the committed BENCH_orders.json (a
// mismatch means plan selection drifted -- a determinism bug or an
// unbaselined planner change). Plan wall times are reported and compared
// informationally (same-CPU only), never gated: these are millisecond
// compiles where timer noise dominates.
//
// Both plans replay to the same amplitude up to float reordering; the
// bench checks agreement to 1e-6 relative as a schedule-sanity guard
// (MO under the laptop-scale execution budget skips the check for that
// workload, flop gates still apply).

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>

#include "bench_common.hpp"
#include "core/circuit_network.hpp"
#include "tn/plan.hpp"

namespace {

using namespace noisim;

struct Workload {
  std::string name;
  qc::Circuit circuit;
};

struct OrderRun {
  std::string name;
  std::size_t nodes = 0;
  bool greedy_ok = false;      // forced-Greedy compiled under the budget
  bool portfolio_ok = false;   // Auto-portfolio compiled under the budget
  std::size_t greedy_flops = 0, portfolio_flops = 0;
  std::size_t greedy_peak = 0, portfolio_peak = 0;
  double greedy_plan_seconds = 0.0, portfolio_plan_seconds = 0.0;
  tn::OrderStrategy chosen = tn::OrderStrategy::Greedy;
  tn::ContractStats portfolio_stats;
  bool value_checked = false;  // execution fit the budget on both plans
  bool value_agrees = true;
};

/// The number following `"<key>": ` inside the object for
/// `"name": "<name>"` in `path`. Returns false when absent.
bool baseline_field(const std::string& path, const std::string& name, const std::string& key,
                    double* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::size_t at = text.find("\"name\": \"" + name + "\"");
  if (at == std::string::npos) return false;
  const std::string key_tag = "\"" + key + "\": ";
  at = text.find(key_tag, at);
  if (at == std::string::npos) return false;
  *out = std::strtod(text.c_str() + at + key_tag.size(), nullptr);
  return true;
}

std::string baseline_cpu_model(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const std::string tag = "\"cpu_model\": \"";
  const std::size_t at = text.find(tag);
  if (at == std::string::npos) return "";
  const std::size_t end = text.find('"', at + tag.size());
  return end == std::string::npos ? "" : text.substr(at + tag.size(), end - at - tag.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_orders.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline") {
      if (i + 1 >= argc) {
        std::cerr << "error: --baseline requires a path\n";
        return 2;
      }
      baseline_path = argv[++i];
    } else {
      out_path = arg;
    }
  }

  bench::print_header("Contraction-order ablation: greedy ladder vs Auto portfolio",
                      "DESIGN.md contraction-order feasibility, Table II workloads");

  std::vector<Workload> workloads;
  workloads.push_back({"qaoa_36", bench::qaoa(36, 1, 7)});
  workloads.push_back({"qaoa_64", bench::qaoa(64, 1, 11)});
  workloads.push_back({"hf_vqe_8", bench::hf_vqe(8, 3)});
  workloads.push_back({"hf_vqe_12", bench::hf_vqe(12, 3)});
  workloads.push_back({"inst_4x4_12", bench::supremacy_inst(4, 4, 12, 5)});
  workloads.push_back({"inst_4x5_16", bench::supremacy_inst(4, 5, 16, 5)});
  if (bench::large_mode()) {
    workloads.push_back({"qaoa_121", bench::qaoa(121, 1, 11)});
    workloads.push_back({"inst_5x5_20", bench::supremacy_inst(5, 5, 20, 5)});
  }

  tn::ContractOptions greedy_opts;
  greedy_opts.strategy = tn::OrderStrategy::Greedy;
  greedy_opts.max_tensor_elems = bench::memory_budget();
  tn::ContractOptions portfolio_opts;  // Auto with the portfolio on by default
  portfolio_opts.max_tensor_elems = bench::memory_budget();

  using Clock = std::chrono::steady_clock;
  std::vector<OrderRun> runs;
  bool cheapest_ok = true;    // portfolio <= greedy everywhere
  bool strict_win = false;    // portfolio < greedy somewhere
  for (const Workload& w : workloads) {
    OrderRun run;
    run.name = w.name;
    const tn::Network net =
        core::amplitude_network(w.circuit.num_qubits(), w.circuit.gates(), 0, 0);
    run.nodes = net.num_nodes();
    std::optional<tn::ContractionPlan> greedy_plan, portfolio_plan;
    // Guard the two compiles SEPARATELY: greedy memory-outing while the
    // portfolio survives is a result (the feasibility win on the 4x5
    // grid), not an aborted row. Interleaved best-of-3 compile timings:
    // plans are deterministic, so repeats differ only in wall time and
    // the kept plans are from the final round without loss of generality.
    for (int round = 0; round < 3; ++round) {
      const auto g0 = Clock::now();
      const bench::RunOutcome g = bench::run_guarded([&] {
        greedy_plan = tn::ContractionPlan::compile(net, greedy_opts);
        return 0.0;
      });
      const auto g1 = Clock::now();
      run.portfolio_stats = tn::ContractStats{};
      const bench::RunOutcome p = bench::run_guarded([&] {
        portfolio_plan = tn::ContractionPlan::compile(net, portfolio_opts, &run.portfolio_stats);
        return 0.0;
      });
      const auto p1 = Clock::now();
      run.greedy_ok = g.ok();
      run.portfolio_ok = p.ok();
      const double gs = std::chrono::duration<double>(g1 - g0).count();
      const double ps = std::chrono::duration<double>(p1 - g1).count();
      if (round == 0 || gs < run.greedy_plan_seconds) run.greedy_plan_seconds = gs;
      if (round == 0 || ps < run.portfolio_plan_seconds) run.portfolio_plan_seconds = ps;
      if (!run.greedy_ok && !run.portfolio_ok) break;
    }
    if (run.greedy_ok) {
      run.greedy_flops = greedy_plan->total_flops();
      run.greedy_peak = greedy_plan->peak_elems();
    }
    if (run.portfolio_ok) {
      run.portfolio_flops = portfolio_plan->total_flops();
      run.portfolio_peak = portfolio_plan->peak_elems();
      run.chosen = portfolio_plan->chosen_strategy();
    }
    // Kept-cheapest: Greedy is in the subset, so whenever greedy compiles
    // the portfolio must compile too and never cost more; a greedy MO the
    // portfolio survives is the outright feasibility win.
    if (run.greedy_ok && (!run.portfolio_ok || run.portfolio_flops > run.greedy_flops))
      cheapest_ok = false;
    if (run.portfolio_ok &&
        (!run.greedy_ok || run.portfolio_flops < run.greedy_flops))
      strict_win = true;
    if (run.greedy_ok && run.portfolio_ok) {
      // Schedule-sanity: both plans contract to the same amplitude (up to
      // float reordering). Guarded: an execution MO under the laptop-scale
      // budget skips the check, the flop gates above still apply.
      const bench::RunOutcome exec = bench::run_guarded([&] {
        tn::PlanWorkspace ws;
        const tsr::Tensor g = greedy_plan->execute(net, ws);
        const tsr::Tensor p = portfolio_plan->execute(net, ws);
        const double denom = std::max(std::abs(g[0]), 1e-300);
        return std::abs(g[0] - p[0]) / denom;
      });
      run.value_checked = exec.ok();
      run.value_agrees = !exec.ok() || exec.value < 1e-6;
    }
    runs.push_back(std::move(run));
  }

  bench::Table table({"workload", "nodes", "greedy flops", "portfolio flops", "ratio", "chosen",
                      "greedy plan(s)", "portfolio plan(s)", "value"});
  for (const OrderRun& r : runs) {
    const bool both = r.greedy_ok && r.portfolio_ok;
    const double ratio = both && r.greedy_flops > 0
                             ? static_cast<double>(r.portfolio_flops) /
                                   static_cast<double>(r.greedy_flops)
                             : 0.0;
    table.add_row({r.name, std::to_string(r.nodes),
                   r.greedy_ok ? std::to_string(r.greedy_flops) : "MO",
                   r.portfolio_ok ? std::to_string(r.portfolio_flops) : "MO",
                   both ? bench::fixed(ratio, 3) : "-",
                   r.portfolio_ok ? tn::order_strategy_name(r.chosen) : "-",
                   r.greedy_ok ? bench::sci(r.greedy_plan_seconds) : "-",
                   r.portfolio_ok ? bench::sci(r.portfolio_plan_seconds) : "-",
                   !both              ? "-"
                   : !r.value_checked ? "MO"
                   : r.value_agrees   ? "ok"
                                      : "DISAGREE"});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: the portfolio never keeps a schedule costlier than the\n"
            << "greedy ladder's (kept-cheapest under strict comparisons) and beats it\n"
            << "outright where greedy is weak: the randomized restarts find cheaper\n"
            << "orders on the deeper hf_vqe / qaoa grids, and on the 4x5 supremacy\n"
            << "grid the portfolio still compiles where pure greedy memory-outs.\n";

  // Baseline gate (CI): plan selection is a pure function of topology +
  // options, so the flop counts must match the committed baseline EXACTLY
  // on any machine. Plan times are informational (same-CPU note only).
  bool baseline_ok = true;
  bool values_ok = true;
  if (!baseline_path.empty()) {
    const std::string base_cpu = baseline_cpu_model(baseline_path);
    const bool same_machine = base_cpu == bench::cpu_model();
    if (!same_machine)
      std::cout << "baseline recorded on \"" << base_cpu
                << "\" (different CPU) -- plan-time comparison informational only\n";
    for (const OrderRun& r : runs) {
      double base_flops = 0.0;
      if (!r.portfolio_ok || !baseline_field(baseline_path, r.name, "portfolio_flops", &base_flops))
        continue;
      const bool drifted =
          static_cast<double>(r.portfolio_flops) != base_flops;
      std::cout << "baseline " << r.name << ": portfolio flops " << r.portfolio_flops
                << " vs committed " << static_cast<std::size_t>(base_flops)
                << (drifted ? "  DRIFT (plan selection changed)" : "  ok") << "\n";
      baseline_ok = baseline_ok && !drifted;
      double base_seconds = 0.0;
      if (same_machine &&
          baseline_field(baseline_path, r.name, "portfolio_plan_seconds", &base_seconds) &&
          base_seconds > 0.0)
        std::cout << "         " << r.name << ": portfolio plan time "
                  << bench::sci(r.portfolio_plan_seconds) << "s vs committed "
                  << bench::sci(base_seconds) << "s (informational)\n";
    }
  }
  for (const OrderRun& r : runs) values_ok = values_ok && r.value_agrees;

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"ablation_orders\",\n"
      << "  \"machine\": " << bench::machine_json() << ",\n"
      << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const OrderRun& r = runs[i];
    out << "    {\"name\": \"" << r.name << "\", \"nodes\": " << r.nodes
        << ", \"greedy_ok\": " << (r.greedy_ok ? "true" : "false")
        << ", \"portfolio_ok\": " << (r.portfolio_ok ? "true" : "false")
        << ", \"greedy_flops\": " << r.greedy_flops
        << ", \"portfolio_flops\": " << r.portfolio_flops
        << ",\n     \"greedy_peak_elems\": " << r.greedy_peak
        << ", \"portfolio_peak_elems\": " << r.portfolio_peak
        << ", \"chosen_strategy\": \"" << tn::order_strategy_name(r.chosen) << "\""
        << ",\n     \"greedy_plan_seconds\": " << bench::sci(r.greedy_plan_seconds)
        << ", \"portfolio_plan_seconds\": " << bench::sci(r.portfolio_plan_seconds)
        << ", \"value_agrees\": " << (r.value_agrees ? "true" : "false")
        << ",\n     \"portfolio_stats\": " << bench::stats_json(r.portfolio_stats) << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << out_path << "\n";

  if (!cheapest_ok)
    std::cout << "FAIL: portfolio kept a schedule costlier than greedy (kept-cheapest broken)\n";
  if (!strict_win)
    std::cout << "FAIL: portfolio never beat greedy outright (fewer flops or surviving a\n"
                 "      greedy MO was expected on at least one workload)\n";
  if (!values_ok) std::cout << "FAIL: greedy and portfolio plans disagree on an amplitude\n";
  if (!baseline_ok)
    std::cout << "FAIL: portfolio flop counts drifted from the committed baseline\n";
  return cheapest_ok && strict_win && values_ok && baseline_ok ? 0 : 1;
}
