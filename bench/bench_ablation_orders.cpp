// Ablation: contraction-order strategies (greedy vs. time-ordered
// sequential) across the benchmark circuit families.
//
// DESIGN.md calls the contraction order out as a load-bearing design choice:
// the TN-based methods' feasibility in Table II depends on it. This
// micro-benchmark quantifies the gap on representative amplitude networks.

#include <benchmark/benchmark.h>

#include "bench_support/generators.hpp"
#include "core/circuit_network.hpp"
#include "tn/contractor.hpp"

namespace {

using namespace noisim;

void contract_amplitude(const qc::Circuit& c, tn::OrderStrategy strategy, benchmark::State& state) {
  tn::ContractOptions opts;
  opts.strategy = strategy;
  opts.max_tensor_elems = std::size_t{1} << 24;
  std::size_t peak = 0;
  for (auto _ : state) {
    tn::ContractStats stats;
    const tn::Network net = core::amplitude_network(c.num_qubits(), c.gates(), 0, 0);
    try {
      benchmark::DoNotOptimize(tn::contract_to_scalar(net, opts, &stats));
    } catch (const MemoryOutError&) {
      state.SkipWithError("MO");
      return;
    }
    peak = std::max(peak, stats.peak_elems);
  }
  state.counters["peak_elems"] = static_cast<double>(peak);
}

void BM_Greedy_Qaoa36(benchmark::State& state) {
  contract_amplitude(bench::qaoa(36, 1, 7), tn::OrderStrategy::Greedy, state);
}
void BM_Sequential_Qaoa36(benchmark::State& state) {
  contract_amplitude(bench::qaoa(36, 1, 7), tn::OrderStrategy::Sequential, state);
}
void BM_Greedy_Hf8(benchmark::State& state) {
  contract_amplitude(bench::hf_vqe(8, 3), tn::OrderStrategy::Greedy, state);
}
void BM_Sequential_Hf8(benchmark::State& state) {
  contract_amplitude(bench::hf_vqe(8, 3), tn::OrderStrategy::Sequential, state);
}
void BM_Greedy_Inst4x4(benchmark::State& state) {
  contract_amplitude(bench::supremacy_inst(4, 4, 12, 5), tn::OrderStrategy::Greedy, state);
}
void BM_Sequential_Inst4x4(benchmark::State& state) {
  contract_amplitude(bench::supremacy_inst(4, 4, 12, 5), tn::OrderStrategy::Sequential, state);
}

BENCHMARK(BM_Greedy_Qaoa36)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Sequential_Qaoa36)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Greedy_Hf8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Sequential_Hf8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Greedy_Inst4x4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Sequential_Inst4x4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
