#pragma once
// Shared plumbing for the paper-reproduction benchmark binaries.
//
// Every binary prints the corresponding paper table/figure at a laptop
// scale by default and upgrades to paper-scale rows when the environment
// variable NOISIM_BENCH_LARGE=1 is set. Timeout/memory guards mirror the
// paper's TO/MO table entries (scaled down with the workload).

#include <iostream>
#include <string>

#include "bench_support/generators.hpp"
#include "bench_support/harness.hpp"
#include "support/env.hpp"

namespace noisim::bench {

inline bool large_mode() {
  const char* v = support::env_get("NOISIM_BENCH_LARGE");
  return v != nullptr && std::string(v) == "1";
}

/// Timeout for one guarded run, seconds (scaled from the paper's 3600 s).
inline double timeout_small() { return large_mode() ? 600.0 : 15.0; }
/// Timeout for the heavier #Noise = 20 runs (paper: 36000 s).
inline double timeout_large() { return large_mode() ? 3600.0 : 60.0; }

/// Memory budget for a single tensor intermediate (elements).
inline std::size_t memory_budget() {
  return large_mode() ? (std::size_t{1} << 28) : (std::size_t{1} << 24);
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "=== " << title << " ===\n"
            << "(reproduces " << paper_ref << "; mode: "
            << (large_mode() ? "LARGE (paper-scale)" : "default (laptop-scale)")
            << ", set NOISIM_BENCH_LARGE=1 for paper-scale rows)\n\n";
}

}  // namespace noisim::bench
