// Tests for OpenQASM interop and Pauli observables.
#include <gtest/gtest.h>

#include <numbers>
#include <random>

#include "bench_support/generators.hpp"
#include "channels/catalog.hpp"
#include "circuit/qasm.hpp"
#include "core/observables.hpp"
#include "sim/density.hpp"
#include "sim/statevector.hpp"

namespace noisim {
namespace {

// --- QASM export ------------------------------------------------------------

TEST(QasmExport, HeaderAndRegister) {
  qc::Circuit c(3);
  c.add(qc::h(0));
  const std::string q = qc::to_qasm(c);
  EXPECT_NE(q.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(q.find("qreg q[3];"), std::string::npos);
  EXPECT_NE(q.find("h q[0];"), std::string::npos);
}

TEST(QasmExport, AllSpellableKinds) {
  qc::Circuit c(2);
  c.add(qc::x(0)).add(qc::y(0)).add(qc::z(1)).add(qc::s(0)).add(qc::sdg(1));
  c.add(qc::t(0)).add(qc::tdg(1)).add(qc::rx(0, 0.5)).add(qc::ry(1, -0.25));
  c.add(qc::rz(0, 1.5)).add(qc::phase(1, 0.75)).add(qc::cz(0, 1)).add(qc::cx(1, 0));
  c.add(qc::cphase(0, 1, 0.3)).add(qc::zz(0, 1, 0.7));
  EXPECT_NO_THROW(qc::to_qasm(c));
}

TEST(QasmExport, RejectsCustomMatrices) {
  qc::Circuit c(1);
  c.add(qc::u1q(0, la::Matrix::identity(2)));
  EXPECT_THROW(qc::to_qasm(c), LinalgError);
}

// --- QASM import --------------------------------------------------------------

TEST(QasmImport, RoundTripPreservesUnitary) {
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> angle(-3.0, 3.0);
  qc::Circuit c(3);
  c.add(qc::h(0)).add(qc::rx(1, angle(rng))).add(qc::cz(0, 2)).add(qc::rz(2, angle(rng)));
  c.add(qc::cx(1, 2)).add(qc::t(0)).add(qc::cphase(0, 1, angle(rng)));
  c.add(qc::zz(1, 2, angle(rng))).add(qc::sdg(2));

  const qc::Circuit back = qc::from_qasm(qc::to_qasm(c));
  EXPECT_TRUE(qc::circuit_unitary(back).approx_equal(qc::circuit_unitary(c), 1e-10));
}

TEST(QasmImport, ParsesPiExpressions) {
  const std::string text = R"(OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
rx(pi/2) q[0];
rz(-pi/4) q[0];
ry(2*pi/3) q[0];
u1(0.5 + pi) q[0];
)";
  const qc::Circuit c = qc::from_qasm(text);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_NEAR(c.gates()[0].params[0], std::numbers::pi / 2, 1e-15);
  EXPECT_NEAR(c.gates()[1].params[0], -std::numbers::pi / 4, 1e-15);
  EXPECT_NEAR(c.gates()[2].params[0], 2 * std::numbers::pi / 3, 1e-15);
  EXPECT_NEAR(c.gates()[3].params[0], 0.5 + std::numbers::pi, 1e-15);
}

TEST(QasmImport, CrzMatchesControlledRz) {
  const std::string text = R"(OPENQASM 2.0;
qreg q[2];
crz(0.8) q[0],q[1];
)";
  const qc::Circuit c = qc::from_qasm(text);
  // Build the expected controlled-rz directly.
  const la::Matrix rzm = qc::rz(0, 0.8).matrix();
  const la::Matrix want = qc::cu(0, 1, rzm).matrix();
  EXPECT_TRUE(qc::circuit_unitary(c).approx_equal(want, 1e-12));
}

TEST(QasmImport, SwapDecomposition) {
  const std::string text = "OPENQASM 2.0;\nqreg q[2];\nswap q[0],q[1];\n";
  const qc::Circuit c = qc::from_qasm(text);
  la::Matrix want(4, 4);
  want(0, 0) = want(3, 3) = 1;
  want(1, 2) = want(2, 1) = 1;
  EXPECT_TRUE(qc::circuit_unitary(c).approx_equal(want, 1e-12));
}

TEST(QasmImport, IgnoresCommentsAndBarriers) {
  const std::string text = R"(OPENQASM 2.0;
// a comment line
qreg q[2];
h q[0]; // trailing comment
barrier q[0],q[1];
cx q[0],q[1];
)";
  const qc::Circuit c = qc::from_qasm(text);
  EXPECT_EQ(c.size(), 2u);
}

TEST(QasmImport, NegativeAndScientificParams) {
  const std::string text = R"(OPENQASM 2.0;
qreg q[1];
rx(-0.5) q[0];
rz(2.5e-3) q[0];
ry(-1.25e-2) q[0];
)";
  const qc::Circuit c = qc::from_qasm(text);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_NEAR(c.gates()[0].params[0], -0.5, 1e-15);
  EXPECT_NEAR(c.gates()[1].params[0], 2.5e-3, 1e-18);
  EXPECT_NEAR(c.gates()[2].params[0], -1.25e-2, 1e-17);
}

TEST(QasmImport, MalformedNumberThrowsLinalgError) {
  // std::stod failure used to escape as std::invalid_argument.
  const std::string text = "OPENQASM 2.0;\nqreg q[1];\nrx(oops) q[0];\n";
  EXPECT_THROW(qc::from_qasm(text), LinalgError);
}

TEST(QasmImport, BlockComments) {
  const std::string text = R"(OPENQASM 2.0;
/* block
   comment */
qreg q[2];
h q[0]; /* inline */ cx q[0],q[1];
)";
  const qc::Circuit c = qc::from_qasm(text);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_THROW(qc::from_qasm("OPENQASM 2.0;\nqreg q[1];\n/* unterminated"), LinalgError);
}

TEST(QasmImport, TrailingCommentWithoutNewlineAtEof) {
  const std::string text = "OPENQASM 2.0;\nqreg q[1];\nh q[0]; // done";
  const qc::Circuit c = qc::from_qasm(text);
  EXPECT_EQ(c.size(), 1u);
}

TEST(QasmImport, NegativeQubitIndexThrows) {
  const std::string text = "OPENQASM 2.0;\nqreg q[2];\nh q[-1];\n";
  EXPECT_THROW(qc::from_qasm(text), LinalgError);
}

TEST(QasmImport, NonIntegerOrHugeQubitIndexThrows) {
  EXPECT_THROW(qc::from_qasm("OPENQASM 2.0;\nqreg q[2];\nh q[1.7];\n"), LinalgError);
  EXPECT_THROW(qc::from_qasm("OPENQASM 2.0;\nqreg q[2];\nh q[3e9];\n"), LinalgError);
  EXPECT_THROW(qc::from_qasm("OPENQASM 2.0;\nqreg q[2.7];\n"), LinalgError);
  EXPECT_THROW(qc::from_qasm("OPENQASM 2.0;\nqreg q[1e99];\n"), LinalgError);
}

TEST(QasmImport, LeadingPlusOnParams) {
  const qc::Circuit c = qc::from_qasm("OPENQASM 2.0;\nqreg q[1];\nrx(+0.5) q[0];\n");
  ASSERT_EQ(c.size(), 1u);
  EXPECT_NEAR(c.gates()[0].params[0], 0.5, 1e-15);
}

TEST(QasmImport, U3AndU2MatchQelib1Matrices) {
  const double theta = 0.7, phi = -0.4, lambda = 1.1;
  const std::string text = "OPENQASM 2.0;\nqreg q[1];\nu3(0.7,-0.4,1.1) q[0];\nu2(-0.4,1.1) q[0];\n";
  const qc::Circuit c = qc::from_qasm(text);
  ASSERT_EQ(c.size(), 2u);

  auto u3 = [](double t, double p, double l) {
    const cplx eip{std::cos(p), std::sin(p)}, eil{std::cos(l), std::sin(l)};
    la::Matrix m(2, 2);
    m(0, 0) = cplx{std::cos(t / 2), 0.0};
    m(0, 1) = -std::sin(t / 2) * eil;
    m(1, 0) = std::sin(t / 2) * eip;
    m(1, 1) = std::cos(t / 2) * eip * eil;
    return m;
  };
  EXPECT_TRUE(c.gates()[0].matrix().approx_equal(u3(theta, phi, lambda), 1e-12));
  EXPECT_TRUE(c.gates()[1].matrix().approx_equal(u3(std::numbers::pi / 2, phi, lambda), 1e-12));

  // Negative theta makes sin(theta/2) negative: the matrix must still be
  // the qelib1 definition (and unitary), not a std::polar artifact.
  const qc::Circuit neg =
      qc::from_qasm("OPENQASM 2.0;\nqreg q[1];\nu3(-0.5,0.2,-0.3) q[0];\n");
  ASSERT_EQ(neg.size(), 1u);
  const la::Matrix got = neg.gates()[0].matrix();
  EXPECT_TRUE(got.approx_equal(u3(-0.5, 0.2, -0.3), 1e-12));
  EXPECT_TRUE((got.adjoint() * got).approx_equal(la::Matrix::identity(2), 1e-12));
}

TEST(QasmImport, RejectsMeasurement) {
  const std::string text = "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\n";
  EXPECT_THROW(qc::from_qasm(text), LinalgError);
}

TEST(QasmImport, RejectsUnknownGate) {
  const std::string text = "OPENQASM 2.0;\nqreg q[1];\nfoo q[0];\n";
  EXPECT_THROW(qc::from_qasm(text), LinalgError);
}

TEST(QasmImport, GeneratedBenchmarkSurvivesRoundTrip) {
  // hf_vqe uses Givens gates (not spellable); QAOA circuits round-trip.
  const qc::Circuit c = bench::qaoa_grid(2, 3, 1, 5);
  const qc::Circuit back = qc::from_qasm(qc::to_qasm(c));
  ASSERT_EQ(back.num_qubits(), c.num_qubits());
  sim::Statevector a(c.num_qubits()), b(c.num_qubits());
  a.apply_circuit(c);
  b.apply_circuit(back);
  EXPECT_TRUE(approx_equal(a.inner(b), cplx{1.0, 0.0}, 1e-10));
}

// --- Pauli observables -----------------------------------------------------------

TEST(PauliString, ParseAndWeight) {
  const auto p = core::PauliString::parse("IXYZ");
  EXPECT_EQ(p.num_qubits(), 4u);
  EXPECT_EQ(p.weight(), 3u);
  EXPECT_THROW(core::PauliString::parse("IXQ"), LinalgError);
  EXPECT_THROW(core::PauliString::parse(""), LinalgError);
}

la::Matrix pauli_matrix(const std::string& ops) {
  la::Matrix m = la::Matrix::identity(1);
  const la::Matrix table[4] = {la::Matrix::identity(2), qc::x(0).matrix(), qc::y(0).matrix(),
                               qc::z(0).matrix()};
  for (char c : ops) {
    int idx = c == 'I' ? 0 : c == 'X' ? 1 : c == 'Y' ? 2 : 3;
    m = la::kron(m, table[idx]);
  }
  return m;
}

class PauliObservables : public ::testing::TestWithParam<int> {};

TEST_P(PauliObservables, MatchesDensityMatrixTrace) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_real_distribution<double> angle(-2.0, 2.0);
  qc::Circuit c(3);
  c.add(qc::h(0)).add(qc::ry(1, angle(rng))).add(qc::cz(0, 1)).add(qc::rx(2, angle(rng)));
  c.add(qc::cx(1, 2));
  ch::NoisyCircuit nc(3);
  for (std::size_t i = 0; i < c.gates().size(); ++i) {
    nc.add_gate(c.gates()[i]);
    if (i == 2) nc.add_noise(1, ch::depolarizing(0.1));
  }

  sim::DensityMatrix dm(3);
  dm.evolve(nc);

  for (const char* ops : {"ZII", "IZI", "XXI", "IYZ", "XYZ", "III"}) {
    const la::Matrix p = pauli_matrix(ops);
    const double want = (p * dm.to_matrix()).trace().real();
    const double got = core::expectation_pauli(nc, 0, core::PauliString::parse(ops));
    EXPECT_NEAR(got, want, 1e-9) << ops;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PauliObservables, ::testing::Range(0, 6));

TEST(PauliObservables, IdentityStringIsTrace) {
  ch::NoisyCircuit nc(2);
  nc.add_gate(qc::h(0));
  nc.add_noise(0, ch::amplitude_damping(0.3));
  EXPECT_NEAR(core::expectation_pauli(nc, 0, core::PauliString::parse("II")), 1.0, 1e-10);
}

TEST(PauliObservables, DepolarizingShrinksBlochZ) {
  // <Z> of |0> after depolarizing(p) is 1 - 4p/3.
  ch::NoisyCircuit nc(1);
  nc.add_noise(0, ch::depolarizing(0.3));
  EXPECT_NEAR(core::expectation_pauli(nc, 0, core::PauliString::parse("Z")), 1.0 - 0.4, 1e-10);
}

TEST(PauliObservables, WidthMismatchThrows) {
  ch::NoisyCircuit nc(2);
  nc.add_gate(qc::h(0));
  EXPECT_THROW(core::expectation_pauli(nc, 0, core::PauliString::parse("Z")), LinalgError);
}

}  // namespace
}  // namespace noisim
