// Unit tests for dense tensors and pairwise contraction.
#include <gtest/gtest.h>

#include <random>

#include "linalg/qr.hpp"
#include "tensor/contract.hpp"
#include "tensor/tensor.hpp"

namespace noisim::tsr {
namespace {

Tensor random_tensor(std::vector<std::size_t> shape, std::mt19937_64& rng) {
  Tensor t(std::move(shape));
  std::normal_distribution<double> gauss;
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = cplx{gauss(rng), gauss(rng)};
  return t;
}

TEST(Tensor, ScalarRoundTrip) {
  const Tensor s = Tensor::scalar(cplx{2.5, -1.0});
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(approx_equal(s.to_scalar(), cplx{2.5, -1.0}));
}

TEST(Tensor, FromMatrixPreservesLayout) {
  la::Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Tensor t = Tensor::from_matrix(m);
  EXPECT_EQ(t.shape(), (std::vector<std::size_t>{2, 3}));
  EXPECT_TRUE(approx_equal(t.at({1, 2}), cplx{6, 0}));
  EXPECT_TRUE(t.to_matrix().approx_equal(m));
}

TEST(Tensor, MultiIndexIsRowMajor) {
  Tensor t({2, 3, 4});
  t.at({1, 2, 3}) = cplx{9, 0};
  EXPECT_TRUE(approx_equal(t[1 * 12 + 2 * 4 + 3], cplx{9, 0}));
}

TEST(Tensor, PermuteTransposesMatrix) {
  la::Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Tensor t = Tensor::from_matrix(m).permute({1, 0});
  EXPECT_TRUE(t.to_matrix().approx_equal(m.transpose()));
}

TEST(Tensor, PermuteIsInverseOfInversePermutation) {
  std::mt19937_64 rng(1);
  const Tensor t = random_tensor({2, 3, 4, 5}, rng);
  const Tensor p = t.permute({2, 0, 3, 1});
  // inverse of (2,0,3,1) is (1,3,0,2)
  EXPECT_TRUE(p.permute({1, 3, 0, 2}).approx_equal(t));
}

TEST(Tensor, PermuteValidatesInput) {
  Tensor t({2, 2});
  EXPECT_THROW(t.permute({0, 0}), LinalgError);
  EXPECT_THROW(t.permute({0}), LinalgError);
  EXPECT_THROW(t.permute({0, 2}), LinalgError);
}

TEST(Tensor, IdentityPermuteIsExactCopy) {
  std::mt19937_64 rng(2);
  const Tensor t = random_tensor({2, 3, 4}, rng);
  const Tensor p = t.permute({0, 1, 2});  // fast path: no element walk
  ASSERT_EQ(p.shape(), t.shape());
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(p[i], t[i]);
  const std::vector<std::size_t> id{0, 1, 2}, swapped{1, 0, 2};
  EXPECT_TRUE(is_identity_permutation(id));
  EXPECT_FALSE(is_identity_permutation(swapped));
}

TEST(Tensor, PermuteIntoMatchesPermute) {
  std::mt19937_64 rng(3);
  const Tensor t = random_tensor({3, 4, 5}, rng);
  const Tensor p = t.permute({2, 0, 1});
  Tensor dst({5, 3, 4});
  const std::vector<std::size_t> perm{2, 0, 1};
  permute_into(t.data(), t.shape(), perm, dst.data());
  for (std::size_t i = 0; i < p.size(); ++i) EXPECT_EQ(dst[i], p[i]);
}

TEST(Tensor, ReshapeKeepsData) {
  std::mt19937_64 rng(2);
  const Tensor t = random_tensor({4, 6}, rng);
  const Tensor r = t.reshape({2, 2, 6});
  EXPECT_EQ(r.rank(), 3u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_TRUE(approx_equal(t[i], r[i]));
  EXPECT_THROW(t.reshape({5, 5}), LinalgError);
}

TEST(Tensor, ConjNegatesImaginaryParts) {
  Tensor t({2});
  t[0] = cplx{1, 2};
  t[1] = cplx{-3, -4};
  const Tensor c = t.conj();
  EXPECT_TRUE(approx_equal(c[0], cplx{1, -2}));
  EXPECT_TRUE(approx_equal(c[1], cplx{-3, 4}));
}

TEST(Tensor, TraceAxesEqualsMatrixTrace) {
  std::mt19937_64 rng(3);
  const Tensor t = random_tensor({3, 3}, rng);
  const Tensor tr = trace_axes(t, 0, 1);
  EXPECT_EQ(tr.rank(), 0u);
  EXPECT_TRUE(approx_equal(tr.to_scalar(), t.to_matrix().trace(), 1e-10));
}

TEST(Tensor, TraceAxesPartial) {
  std::mt19937_64 rng(4);
  const Tensor t = random_tensor({2, 3, 2}, rng);
  const Tensor tr = trace_axes(t, 0, 2);
  ASSERT_EQ(tr.shape(), (std::vector<std::size_t>{3}));
  for (std::size_t j = 0; j < 3; ++j) {
    cplx want = t.at({0, j, 0}) + t.at({1, j, 1});
    EXPECT_TRUE(approx_equal(tr[j], want, 1e-10));
  }
}

TEST(Tensor, OuterProductShapeAndValues) {
  Tensor a({2});
  a[0] = cplx{1, 0};
  a[1] = cplx{2, 0};
  Tensor b({3});
  b[0] = cplx{1, 0};
  b[1] = cplx{0, 1};
  b[2] = cplx{-1, 0};
  const Tensor o = outer(a, b);
  ASSERT_EQ(o.shape(), (std::vector<std::size_t>{2, 3}));
  EXPECT_TRUE(approx_equal(o.at({1, 1}), cplx{0, 2}));
}

// --- contraction -------------------------------------------------------------

TEST(Contract, MatrixProductEquivalence) {
  std::mt19937_64 rng(5);
  const la::Matrix a = la::random_ginibre(3, 4, rng);
  const la::Matrix b = la::random_ginibre(4, 5, rng);
  const Tensor c = contract(Tensor::from_matrix(a), {1}, Tensor::from_matrix(b), {0});
  EXPECT_TRUE(c.to_matrix().approx_equal(a * b, 1e-10));
}

TEST(Contract, InnerProductFullContraction) {
  std::mt19937_64 rng(6);
  const Tensor a = random_tensor({2, 3}, rng);
  const Tensor b = random_tensor({2, 3}, rng);
  const Tensor s = contract(a, {0, 1}, b, {0, 1});
  cplx want{0, 0};
  for (std::size_t i = 0; i < a.size(); ++i) want += a[i] * b[i];
  EXPECT_TRUE(approx_equal(s.to_scalar(), want, 1e-10));
}

TEST(Contract, MultiAxisAgainstManualSum) {
  std::mt19937_64 rng(7);
  const Tensor a = random_tensor({2, 3, 4}, rng);
  const Tensor b = random_tensor({4, 2, 5}, rng);
  // Contract a's axes (0, 2) with b's axes (1, 0): result [3, 5].
  const Tensor c = contract(a, {0, 2}, b, {1, 0});
  ASSERT_EQ(c.shape(), (std::vector<std::size_t>{3, 5}));
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t m = 0; m < 5; ++m) {
      cplx want{0, 0};
      for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t k = 0; k < 4; ++k) want += a.at({i, j, k}) * b.at({k, i, m});
      EXPECT_TRUE(approx_equal(c.at({j, m}), want, 1e-10));
    }
}

TEST(Contract, ZeroAxesIsOuterProduct) {
  std::mt19937_64 rng(8);
  const Tensor a = random_tensor({2, 2}, rng);
  const Tensor b = random_tensor({3}, rng);
  const Tensor c = contract(a, {}, b, {});
  EXPECT_TRUE(c.approx_equal(outer(a, b), 1e-10));
}

TEST(Contract, ResultSizePredicts) {
  std::mt19937_64 rng(9);
  const Tensor a = random_tensor({2, 3, 4}, rng);
  const Tensor b = random_tensor({4, 5}, rng);
  std::vector<std::size_t> axes_a{2}, axes_b{0};
  EXPECT_EQ(contract_result_size(a, axes_a, b, axes_b), 2u * 3u * 5u);
  EXPECT_EQ(contract(a, axes_a, b, axes_b).size(), 2u * 3u * 5u);
}

TEST(Contract, DimensionMismatchThrows) {
  Tensor a({2, 3}), b({4, 2});
  EXPECT_THROW(contract(a, {1}, b, {0}), LinalgError);
  EXPECT_THROW(contract(a, {0}, b, {0, 1}), LinalgError);
  EXPECT_THROW(contract(a, {0, 0}, b, {0, 1}), LinalgError);
}

// Property: contraction is bilinear (checked over random seeds).
class ContractBilinear : public ::testing::TestWithParam<int> {};

TEST_P(ContractBilinear, LinearInFirstArgument) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const Tensor a1 = random_tensor({3, 4}, rng);
  const Tensor a2 = random_tensor({3, 4}, rng);
  const Tensor b = random_tensor({4, 2}, rng);
  const cplx alpha{1.5, -0.5};
  Tensor lhs_in = a1;
  lhs_in += a2;
  Tensor scaled = lhs_in;
  scaled *= alpha;
  const Tensor lhs = contract(scaled, {1}, b, {0});
  Tensor rhs = contract(a1, {1}, b, {0});
  rhs += contract(a2, {1}, b, {0});
  rhs *= alpha;
  EXPECT_TRUE(lhs.approx_equal(rhs, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContractBilinear, ::testing::Range(0, 8));

}  // namespace
}  // namespace noisim::tsr
