// Unit tests for dense tensors and pairwise contraction.
#include <gtest/gtest.h>

#include <array>
#include <random>

#include "linalg/qr.hpp"
#include "tensor/contract.hpp"
#include "tensor/tensor.hpp"

namespace noisim::tsr {
namespace {

Tensor random_tensor(std::vector<std::size_t> shape, std::mt19937_64& rng) {
  Tensor t(std::move(shape));
  std::normal_distribution<double> gauss;
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = cplx{gauss(rng), gauss(rng)};
  return t;
}

TEST(Tensor, ScalarRoundTrip) {
  const Tensor s = Tensor::scalar(cplx{2.5, -1.0});
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(approx_equal(s.to_scalar(), cplx{2.5, -1.0}));
}

TEST(Tensor, FromMatrixPreservesLayout) {
  la::Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Tensor t = Tensor::from_matrix(m);
  EXPECT_EQ(t.shape(), (std::vector<std::size_t>{2, 3}));
  EXPECT_TRUE(approx_equal(t.at({1, 2}), cplx{6, 0}));
  EXPECT_TRUE(t.to_matrix().approx_equal(m));
}

TEST(Tensor, MultiIndexIsRowMajor) {
  Tensor t({2, 3, 4});
  t.at({1, 2, 3}) = cplx{9, 0};
  EXPECT_TRUE(approx_equal(t[1 * 12 + 2 * 4 + 3], cplx{9, 0}));
}

TEST(Tensor, PermuteTransposesMatrix) {
  la::Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Tensor t = Tensor::from_matrix(m).permute({1, 0});
  EXPECT_TRUE(t.to_matrix().approx_equal(m.transpose()));
}

TEST(Tensor, PermuteIsInverseOfInversePermutation) {
  std::mt19937_64 rng(1);
  const Tensor t = random_tensor({2, 3, 4, 5}, rng);
  const Tensor p = t.permute({2, 0, 3, 1});
  // inverse of (2,0,3,1) is (1,3,0,2)
  EXPECT_TRUE(p.permute({1, 3, 0, 2}).approx_equal(t));
}

TEST(Tensor, PermuteValidatesInput) {
  Tensor t({2, 2});
  EXPECT_THROW(t.permute({0, 0}), LinalgError);
  EXPECT_THROW(t.permute({0}), LinalgError);
  EXPECT_THROW(t.permute({0, 2}), LinalgError);
}

TEST(Tensor, IdentityPermuteIsExactCopy) {
  std::mt19937_64 rng(2);
  const Tensor t = random_tensor({2, 3, 4}, rng);
  const Tensor p = t.permute({0, 1, 2});  // fast path: no element walk
  ASSERT_EQ(p.shape(), t.shape());
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(p[i], t[i]);
  const std::vector<std::size_t> id{0, 1, 2}, swapped{1, 0, 2};
  EXPECT_TRUE(is_identity_permutation(id));
  EXPECT_FALSE(is_identity_permutation(swapped));
}

TEST(Tensor, PermuteIntoMatchesPermute) {
  std::mt19937_64 rng(3);
  const Tensor t = random_tensor({3, 4, 5}, rng);
  const Tensor p = t.permute({2, 0, 1});
  Tensor dst({5, 3, 4});
  const std::vector<std::size_t> perm{2, 0, 1};
  permute_into(t.data(), t.shape(), perm, dst.data());
  for (std::size_t i = 0; i < p.size(); ++i) EXPECT_EQ(dst[i], p[i]);
}

TEST(Tensor, ReshapeKeepsData) {
  std::mt19937_64 rng(2);
  const Tensor t = random_tensor({4, 6}, rng);
  const Tensor r = t.reshape({2, 2, 6});
  EXPECT_EQ(r.rank(), 3u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_TRUE(approx_equal(t[i], r[i]));
  EXPECT_THROW(t.reshape({5, 5}), LinalgError);
}

TEST(Tensor, ConjNegatesImaginaryParts) {
  Tensor t({2});
  t[0] = cplx{1, 2};
  t[1] = cplx{-3, -4};
  const Tensor c = t.conj();
  EXPECT_TRUE(approx_equal(c[0], cplx{1, -2}));
  EXPECT_TRUE(approx_equal(c[1], cplx{-3, 4}));
}

TEST(Tensor, TraceAxesEqualsMatrixTrace) {
  std::mt19937_64 rng(3);
  const Tensor t = random_tensor({3, 3}, rng);
  const Tensor tr = trace_axes(t, 0, 1);
  EXPECT_EQ(tr.rank(), 0u);
  EXPECT_TRUE(approx_equal(tr.to_scalar(), t.to_matrix().trace(), 1e-10));
}

TEST(Tensor, TraceAxesPartial) {
  std::mt19937_64 rng(4);
  const Tensor t = random_tensor({2, 3, 2}, rng);
  const Tensor tr = trace_axes(t, 0, 2);
  ASSERT_EQ(tr.shape(), (std::vector<std::size_t>{3}));
  for (std::size_t j = 0; j < 3; ++j) {
    cplx want = t.at({0, j, 0}) + t.at({1, j, 1});
    EXPECT_TRUE(approx_equal(tr[j], want, 1e-10));
  }
}

TEST(Tensor, OuterProductShapeAndValues) {
  Tensor a({2});
  a[0] = cplx{1, 0};
  a[1] = cplx{2, 0};
  Tensor b({3});
  b[0] = cplx{1, 0};
  b[1] = cplx{0, 1};
  b[2] = cplx{-1, 0};
  const Tensor o = outer(a, b);
  ASSERT_EQ(o.shape(), (std::vector<std::size_t>{2, 3}));
  EXPECT_TRUE(approx_equal(o.at({1, 1}), cplx{0, 2}));
}

// --- contraction -------------------------------------------------------------

TEST(Contract, MatrixProductEquivalence) {
  std::mt19937_64 rng(5);
  const la::Matrix a = la::random_ginibre(3, 4, rng);
  const la::Matrix b = la::random_ginibre(4, 5, rng);
  const Tensor c = contract(Tensor::from_matrix(a), {1}, Tensor::from_matrix(b), {0});
  EXPECT_TRUE(c.to_matrix().approx_equal(a * b, 1e-10));
}

TEST(Contract, InnerProductFullContraction) {
  std::mt19937_64 rng(6);
  const Tensor a = random_tensor({2, 3}, rng);
  const Tensor b = random_tensor({2, 3}, rng);
  const Tensor s = contract(a, {0, 1}, b, {0, 1});
  cplx want{0, 0};
  for (std::size_t i = 0; i < a.size(); ++i) want += a[i] * b[i];
  EXPECT_TRUE(approx_equal(s.to_scalar(), want, 1e-10));
}

TEST(Contract, MultiAxisAgainstManualSum) {
  std::mt19937_64 rng(7);
  const Tensor a = random_tensor({2, 3, 4}, rng);
  const Tensor b = random_tensor({4, 2, 5}, rng);
  // Contract a's axes (0, 2) with b's axes (1, 0): result [3, 5].
  const Tensor c = contract(a, {0, 2}, b, {1, 0});
  ASSERT_EQ(c.shape(), (std::vector<std::size_t>{3, 5}));
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t m = 0; m < 5; ++m) {
      cplx want{0, 0};
      for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t k = 0; k < 4; ++k) want += a.at({i, j, k}) * b.at({k, i, m});
      EXPECT_TRUE(approx_equal(c.at({j, m}), want, 1e-10));
    }
}

TEST(Contract, ZeroAxesIsOuterProduct) {
  std::mt19937_64 rng(8);
  const Tensor a = random_tensor({2, 2}, rng);
  const Tensor b = random_tensor({3}, rng);
  const Tensor c = contract(a, {}, b, {});
  EXPECT_TRUE(c.approx_equal(outer(a, b), 1e-10));
}

TEST(Contract, ResultSizePredicts) {
  std::mt19937_64 rng(9);
  const Tensor a = random_tensor({2, 3, 4}, rng);
  const Tensor b = random_tensor({4, 5}, rng);
  std::vector<std::size_t> axes_a{2}, axes_b{0};
  EXPECT_EQ(contract_result_size(a, axes_a, b, axes_b), 2u * 3u * 5u);
  EXPECT_EQ(contract(a, axes_a, b, axes_b).size(), 2u * 3u * 5u);
}

TEST(Contract, DimensionMismatchThrows) {
  Tensor a({2, 3}), b({4, 2});
  EXPECT_THROW(contract(a, {1}, b, {0}), LinalgError);
  EXPECT_THROW(contract(a, {0}, b, {0, 1}), LinalgError);
  EXPECT_THROW(contract(a, {0, 0}, b, {0, 1}), LinalgError);
}

// Property: contraction is bilinear (checked over random seeds).
class ContractBilinear : public ::testing::TestWithParam<int> {};

TEST_P(ContractBilinear, LinearInFirstArgument) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const Tensor a1 = random_tensor({3, 4}, rng);
  const Tensor a2 = random_tensor({3, 4}, rng);
  const Tensor b = random_tensor({4, 2}, rng);
  const cplx alpha{1.5, -0.5};
  Tensor lhs_in = a1;
  lhs_in += a2;
  Tensor scaled = lhs_in;
  scaled *= alpha;
  const Tensor lhs = contract(scaled, {1}, b, {0});
  Tensor rhs = contract(a1, {1}, b, {0});
  rhs += contract(a2, {1}, b, {0});
  rhs *= alpha;
  EXPECT_TRUE(lhs.approx_equal(rhs, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContractBilinear, ::testing::Range(0, 8));

Tensor random_tensor_with_zeros(std::vector<std::size_t> shape, std::mt19937_64& rng) {
  // ~25% exact zeros so the kernels' zero-skip branch is exercised (its
  // presence or absence can change the sign of zero results).
  Tensor t = random_tensor(std::move(shape), rng);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  for (std::size_t i = 0; i < t.size(); ++i)
    if (unif(rng) < 0.25) t[i] = cplx{0.0, 0.0};
  return t;
}

bool same_bits(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) return false;
  return true;
}

TEST(Kernels, MicrokernelDispatchIsBitIdenticalToGenericKernel) {
  std::mt19937_64 rng(11);
  // Shapes covering the panel kernels (k in {2,4,8,16}, n in {2,4}), the
  // small fixed-k kernels (m*n <= 64), and generic fallbacks.
  const std::vector<std::array<std::size_t, 3>> shapes{
      {1, 2, 2},  {5, 2, 4},   {129, 4, 2}, {64, 4, 4},  {33, 8, 2}, {17, 16, 4},
      {2, 2, 8},  {4, 4, 16},  {8, 2, 2},   {3, 4, 64},  {7, 3, 5},  {16, 4, 1024},
      {4, 8, 37}, {70, 65, 3}, {2, 128, 2}, {128, 2, 66}};
  for (const auto& [m, k, n] : shapes) {
    const Tensor a = random_tensor_with_zeros({m, k}, rng);
    const Tensor b = random_tensor_with_zeros({k, n}, rng);
    std::vector<cplx> ref(m * n, cplx{0.0, 0.0}), got(m * n, cplx{0.0, 0.0});
    detail::matmul_accumulate(a.data(), b.data(), ref.data(), m, k, n);
    detail::select_matmul(m, k, n)(a.data(), b.data(), got.data(), m, k, n);
    EXPECT_TRUE(same_bits(ref, got)) << "shape " << m << "x" << k << "x" << n;
  }
}

TEST(Kernels, BatchedMatchesPerSliceBitwise) {
  std::mt19937_64 rng(12);
  const std::size_t m = 6, k = 4, n = 9, batch = 5;
  const Tensor a = random_tensor_with_zeros({batch, m, k}, rng);
  const Tensor b = random_tensor_with_zeros({batch, k, n}, rng);
  std::vector<cplx> ref(batch * m * n, cplx{0.0, 0.0}), got(ref.size(), cplx{0.0, 0.0});
  for (std::size_t s = 0; s < batch; ++s)
    detail::matmul_accumulate(a.data() + s * m * k, b.data() + s * k * n,
                              ref.data() + s * m * n, m, k, n);
  detail::matmul_accumulate_batched(a.data(), b.data(), got.data(), m, k, n, batch, m * k,
                                    k * n, m * n);
  EXPECT_TRUE(same_bits(ref, got));

  // Stride 0 broadcasts an operand across the batch.
  std::fill(ref.begin(), ref.end(), cplx{0.0, 0.0});
  std::fill(got.begin(), got.end(), cplx{0.0, 0.0});
  for (std::size_t s = 0; s < batch; ++s)
    detail::matmul_accumulate(a.data(), b.data() + s * k * n, ref.data() + s * m * n, m, k, n);
  detail::matmul_accumulate_batched(a.data(), b.data(), got.data(), m, k, n, batch, 0, k * n,
                                    m * n);
  EXPECT_TRUE(same_bits(ref, got));
}

TEST(Kernels, GatheredMatchesPermutedCopyBitwise) {
  std::mt19937_64 rng(13);
  // a stored as [k, m] (transposed), b stored as [n, k] (transposed):
  // gather tables express the permutation the copies would apply.
  const std::size_t m = 12, k = 4, n = 10;
  const Tensor a_t = random_tensor_with_zeros({k, m}, rng);
  const Tensor b_t = random_tensor_with_zeros({n, k}, rng);
  const Tensor a = a_t.permute({1, 0});
  const Tensor b = b_t.permute({1, 0});
  std::vector<cplx> ref(m * n, cplx{0.0, 0.0}), got(m * n, cplx{0.0, 0.0});
  detail::matmul_accumulate(a.data(), b.data(), ref.data(), m, k, n);

  const std::vector<std::size_t> a_shape{m, k}, a_stride{1, m};
  const std::vector<std::size_t> b_shape{k, n}, b_stride{1, k};
  const std::vector<std::uint32_t> a_idx = permute_gather(a_shape, a_stride);
  const std::vector<std::uint32_t> b_idx = permute_gather(b_shape, b_stride);
  detail::matmul_accumulate_gathered(a_t.data(), a_idx.data(), b_t.data(), b_idx.data(),
                                     got.data(), m, k, n);
  EXPECT_TRUE(same_bits(ref, got));

  // One-sided gather (a permuted, b already in kernel order).
  std::fill(got.begin(), got.end(), cplx{0.0, 0.0});
  detail::matmul_accumulate_gathered(a_t.data(), a_idx.data(), b.data(), nullptr, got.data(),
                                     m, k, n);
  EXPECT_TRUE(same_bits(ref, got));
}

TEST(Tensor, PermuteGatherMatchesPermuteWalk) {
  std::mt19937_64 rng(14);
  const Tensor t = random_tensor({3, 4, 2, 5}, rng);
  const std::vector<std::size_t> perm{2, 0, 3, 1};
  const Tensor ref = t.permute(perm);
  const std::vector<std::size_t> strides = row_major_strides(t.shape());
  std::vector<std::size_t> out_shape, src_stride;
  for (std::size_t p : perm) {
    out_shape.push_back(t.dim(p));
    src_stride.push_back(strides[p]);
  }
  const std::vector<std::uint32_t> gather = permute_gather(out_shape, src_stride);
  std::vector<cplx> got(t.size());
  gather_walk(t.data(), gather, got.data());
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(ref[i], got[i]);
}

TEST(Tensor, RvalueReshapeMovesStorage) {
  std::mt19937_64 rng(15);
  Tensor t = random_tensor({4, 4}, rng);
  const cplx* data = t.data();
  const Tensor copy = t;
  const Tensor reshaped = std::move(t).reshape({2, 2, 2, 2});
  EXPECT_EQ(reshaped.data(), data);  // storage moved, not copied
  EXPECT_EQ(reshaped.shape(), (std::vector<std::size_t>{2, 2, 2, 2}));
  for (std::size_t i = 0; i < copy.size(); ++i) EXPECT_EQ(copy[i], reshaped[i]);
}

TEST(Tensor, RvalueIdentityPermuteMovesStorage) {
  std::mt19937_64 rng(16);
  Tensor t = random_tensor({2, 3, 4}, rng);
  const cplx* data = t.data();
  const Tensor moved = std::move(t).permute({0, 1, 2});
  EXPECT_EQ(moved.data(), data);

  // Non-identity permutations still copy (the walk cannot run in place).
  Tensor u = random_tensor({2, 3}, rng);
  const Tensor v = std::move(u).permute({1, 0});
  EXPECT_EQ(v.shape(), (std::vector<std::size_t>{3, 2}));
}

}  // namespace
}  // namespace noisim::tsr
