// RunControl coverage: unit semantics (cancel -> CancelledError, deadline ->
// TimeoutError, memory ceiling -> MemoryOutError), run-time enforcement
// inside the plan executor (a deadline that expires AFTER compile throws
// from execute), cooperative cancellation of the trajectory runners and the
// Algorithm-1 sweeps, xeb_sweep's salvage contract (valid outputs bitwise
// equal to the uncancelled run), the never-fires determinism contract, and
// NOISIM_THREADS validation.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <random>
#include <thread>

#include "bench_support/generators.hpp"
#include "core/approx.hpp"
#include "core/backend.hpp"
#include "core/run_control.hpp"
#include "sim/parallel.hpp"
#include "support/env.hpp"
#include "tn/contractor.hpp"
#include "tn/plan.hpp"

namespace noisim::core {
namespace {

TEST(RunControl, UnarmedPollIsANoOp) {
  RunControl c;
  EXPECT_NO_THROW(c.poll());
  EXPECT_FALSE(c.cancel_requested());
  EXPECT_FALSE(c.deadline_expired());
  EXPECT_NO_THROW(c.check_memory(std::size_t{1} << 40, "anything"));
}

TEST(RunControl, CancelIsStickyAndRaisesCancelledError) {
  RunControl c;
  c.request_cancel();
  EXPECT_TRUE(c.cancel_requested());
  EXPECT_THROW(c.poll(), CancelledError);
  EXPECT_THROW(c.poll(), CancelledError);  // sticky
  c.reset();
  EXPECT_NO_THROW(c.poll());
}

TEST(RunControl, ExpiredDeadlineRaisesTimeoutError) {
  RunControl c;
  c.set_deadline(RunControl::Clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(c.deadline_expired());
  EXPECT_THROW(c.poll(), TimeoutError);
  c.clear_deadline();
  EXPECT_NO_THROW(c.poll());
  // A far-future deadline never fires.
  c.set_deadline_after(3600.0);
  EXPECT_NO_THROW(c.poll());
  // <= 0 clears.
  c.set_deadline_after(0.0);
  EXPECT_FALSE(c.deadline_expired());
}

TEST(RunControl, CancelWinsOverExpiredDeadline) {
  RunControl c;
  c.set_deadline(RunControl::Clock::now() - std::chrono::milliseconds(1));
  c.request_cancel();
  EXPECT_THROW(c.poll(), CancelledError);
}

TEST(RunControl, MemoryCeilingRaisesMemoryOutErrorNamingTheSubject) {
  RunControl c;
  c.set_memory_ceiling_elems(100);
  EXPECT_NO_THROW(c.check_memory(100, "small arena"));
  try {
    c.check_memory(101, "contraction arena");
    FAIL() << "expected MemoryOutError";
  } catch (const MemoryOutError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("contraction arena"), std::string::npos) << what;
    EXPECT_NE(what.find("ceiling"), std::string::npos) << what;
  }
  c.set_memory_ceiling_elems(0);
  EXPECT_NO_THROW(c.check_memory(std::size_t{1} << 40, "anything"));
}

// --- run-time enforcement in the plan executor ---------------------------

tn::Network small_network(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> gauss;
  auto random_tensor = [&](std::vector<std::size_t> shape) {
    tsr::Tensor t(std::move(shape));
    for (std::size_t i = 0; i < t.size(); ++i) t[i] = cplx{gauss(rng), gauss(rng)};
    return t;
  };
  tn::Network net;
  std::vector<tn::EdgeId> rail;
  for (int i = 0; i < 5; ++i) rail.push_back(net.new_edge());
  net.add_node(random_tensor({2, 2}), {rail[0], rail[1]});
  net.add_node(random_tensor({2, 2, 2}), {rail[1], rail[2], rail[3]});
  net.add_node(random_tensor({2, 2}), {rail[0], rail[2]});
  net.add_node(random_tensor({2, 2}), {rail[3], rail[4]});
  net.add_node(random_tensor({2}), {rail[4]});
  return net;
}

TEST(RunControl, RunTimeDeadlineThrowsFromExecuteNotCompile) {
  // Compile with NO plan-time timeout: the deadline is pure run-time state,
  // enforced by the executor's per-step poll through the workspace.
  const tn::Network net = small_network(7);
  const tn::ContractionPlan plan = tn::ContractionPlan::compile(net);

  RunControl c;
  c.set_deadline(RunControl::Clock::now() - std::chrono::milliseconds(1));
  tn::PlanWorkspace ws;
  ws.control = &c;
  EXPECT_THROW(plan.execute(net, ws), TimeoutError);

  // Same workspace, cancel instead of deadline.
  c.reset();
  c.request_cancel();
  EXPECT_THROW(plan.execute(net, ws), CancelledError);

  // Memory ceiling below the plan's arena footprint fires before the arena
  // is committed.
  c.reset();
  c.set_memory_ceiling_elems(1);
  EXPECT_THROW(plan.execute(net, ws), MemoryOutError);
}

TEST(RunControl, NeverFiringControlLeavesExecuteBitIdentical) {
  const tn::Network net = small_network(7);
  const tn::ContractionPlan plan = tn::ContractionPlan::compile(net);
  tn::PlanWorkspace bare_ws;
  const tsr::Tensor bare = plan.execute(net, bare_ws);

  RunControl c;
  c.set_deadline_after(3600.0);
  c.set_memory_ceiling_elems(std::size_t{1} << 40);
  tn::PlanWorkspace ws;
  ws.control = &c;
  const tsr::Tensor guarded = plan.execute(net, ws);
  ASSERT_EQ(bare.size(), guarded.size());
  for (std::size_t i = 0; i < bare.size(); ++i) EXPECT_EQ(bare[i], guarded[i]);
}

TEST(RunControl, ContractNetworkHonorsControlThroughContractOptions) {
  const tn::Network net = small_network(11);
  RunControl c;
  c.request_cancel();
  tn::ContractOptions opts;
  opts.control = &c;
  EXPECT_THROW(tn::contract_network(net, opts), CancelledError);
}

// --- trajectory runners --------------------------------------------------

TEST(RunControl, TrajectoryRunnersStopWithinOneChunk) {
  const sim::Sampler sampler = [](std::mt19937_64& rng) {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    return u(rng);
  };
  sim::ParallelOptions popts;
  popts.threads = 2;

  RunControl c;
  c.request_cancel();
  popts.control = &c;
  EXPECT_THROW(sim::run_trajectories(1024, 42, sampler, popts), CancelledError);

  c.reset();
  c.set_deadline(RunControl::Clock::now() - std::chrono::milliseconds(1));
  EXPECT_THROW(sim::run_trajectories(1024, 42, sampler, popts), TimeoutError);

  // Never fires -> bit-identical to no control, at any thread count.
  c.reset();
  const sim::TrajectoryResult guarded = sim::run_trajectories(1024, 42, sampler, popts);
  popts.control = nullptr;
  const sim::TrajectoryResult bare = sim::run_trajectories(1024, 42, sampler, popts);
  EXPECT_EQ(guarded.mean, bare.mean);
  EXPECT_EQ(guarded.std_error, bare.std_error);
  EXPECT_EQ(guarded.samples, bare.samples);
}

// --- Algorithm-1 sweeps --------------------------------------------------

ch::NoisyCircuit sweep_circuit() {
  return bench::insert_noises(bench::qaoa(16, 1, 77), 3, bench::depolarizing_noise(0.01), 601);
}

TEST(RunControl, ApproximateFidelityRaisesOnCancelAndIsBitIdenticalOtherwise) {
  const ch::NoisyCircuit nc = sweep_circuit();
  ApproxOptions opts;
  opts.level = 1;
  opts.threads = 2;

  const ApproxResult bare = approximate_fidelity(nc, 0, 0, opts);

  RunControl c;
  opts.control = &c;
  const ApproxResult guarded = approximate_fidelity(nc, 0, 0, opts);
  EXPECT_EQ(guarded.value, bare.value);

  c.request_cancel();
  EXPECT_THROW(approximate_fidelity(nc, 0, 0, opts), CancelledError);

  c.reset();
  c.set_deadline(RunControl::Clock::now() - std::chrono::milliseconds(1));
  EXPECT_THROW(approximate_fidelity(nc, 0, 0, opts), TimeoutError);
}

TEST(RunControl, ApproximateFidelityOutputsRaisesCancelledError) {
  const ch::NoisyCircuit nc = sweep_circuit();
  const std::vector<std::uint64_t> outputs = {0, 1, 2, 3};
  ApproxOptions opts;
  opts.level = 1;
  RunControl c;
  c.request_cancel();
  opts.control = &c;
  EXPECT_THROW(approximate_fidelity_outputs(nc, 0, outputs, opts), CancelledError);
}

TEST(RunControl, PreCancelledXebSweepSalvagesNothingImmediately) {
  const ch::NoisyCircuit nc = sweep_circuit();
  const std::vector<std::uint64_t> outputs = {0, 1, 2, 3, 4, 5, 6, 7};
  SweepOptions sopts;
  sopts.approx.level = 1;
  RunControl c;
  c.request_cancel();
  sopts.approx.control = &c;
  const ApproxBatchResult r = xeb_sweep(nc, 0, outputs, sopts);
  EXPECT_TRUE(r.cancelled);
  ASSERT_EQ(r.valid.size(), outputs.size());
  for (const char v : r.valid) EXPECT_EQ(v, 0);
}

// The acceptance scenario: cancel a qaoa_25 sweep mid-flight from a watcher
// thread. The sweep must return within one work-item bound (enforced here
// by the test completing at all) and every output it reports valid must be
// bitwise equal to the uncancelled run.
TEST(RunControl, MidSweepCancelSalvagesBitIdenticalChunks) {
  const ch::NoisyCircuit nc =
      bench::insert_noises(bench::qaoa(25, 1, 9), 6, bench::depolarizing_noise(0.05), 31);
  std::vector<std::uint64_t> outputs(64);
  for (std::size_t o = 0; o < outputs.size(); ++o)
    outputs[o] = (o * 2654435761ULL) & ((std::uint64_t{1} << 25) - 1);

  SweepOptions sopts;
  sopts.approx.level = 1;
  sopts.approx.threads = 2;
  sopts.shard_outputs = 8;

  const ApproxBatchResult reference = xeb_sweep(nc, 0, outputs, sopts);
  ASSERT_FALSE(reference.cancelled);

  RunControl c;
  sopts.approx.control = &c;
  std::thread watcher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    c.request_cancel();
  });
  const ApproxBatchResult r = xeb_sweep(nc, 0, outputs, sopts);
  watcher.join();

  ASSERT_EQ(r.valid.size(), outputs.size());
  ASSERT_EQ(r.values.size(), outputs.size());
  std::size_t salvaged = 0;
  for (std::size_t o = 0; o < outputs.size(); ++o) {
    if (!r.valid[o]) continue;
    ++salvaged;
    EXPECT_EQ(r.values[o], reference.values[o]) << "output " << o;
    EXPECT_EQ(r.raw[o], reference.raw[o]) << "output " << o;
    ASSERT_EQ(r.term_sums[o].size(), reference.term_sums[o].size());
    for (std::size_t u = 0; u < r.term_sums[o].size(); ++u)
      EXPECT_EQ(r.term_sums[o][u], reference.term_sums[o][u]) << "output " << o;
  }
  if (!r.cancelled) {
    // The sweep beat the watcher: that is the uncancelled run, in full.
    EXPECT_EQ(salvaged, outputs.size());
  }
  // Error bounds are output-independent and survive any cancel.
  EXPECT_EQ(r.error_bound, reference.error_bound);
  EXPECT_EQ(r.tight_error_bound, reference.tight_error_bound);
}

// --- simulate() front door -----------------------------------------------

TEST(RunControl, SimulatePropagatesCancelWithoutEscalating) {
  const ch::NoisyCircuit nc =
      bench::insert_noises(bench::hf_vqe(6, 11), 2, bench::depolarizing_noise(0.05), 13);
  SimulateOptions opts;
  opts.error_budget = 5e-2;
  RunControl c;
  c.request_cancel();
  opts.control = &c;
  EXPECT_THROW(simulate(nc, 0, 0, opts), CancelledError);

  // Never fires -> bit-identical to no control.
  c.reset();
  const SimResult guarded = simulate(nc, 0, 0, opts);
  opts.control = nullptr;
  const SimResult bare = simulate(nc, 0, 0, opts);
  EXPECT_EQ(guarded.value, bare.value);
  EXPECT_EQ(guarded.backend, bare.backend);
  EXPECT_TRUE(guarded.escalations.empty());
}

// --- NOISIM_THREADS validation -------------------------------------------

struct EnvGuard {
  const char* name;
  std::string saved;
  bool had = false;
  explicit EnvGuard(const char* n) : name(n) {
    if (const char* v = support::env_get(n)) {
      saved = v;
      had = true;
    }
  }
  ~EnvGuard() {
    if (had)
      ::setenv(name, saved.c_str(), 1);
    else
      ::unsetenv(name);
  }
};

TEST(ResolveThreads, RejectsNonNumericAndNonPositiveValuesNamingTheVariable) {
  EnvGuard guard("NOISIM_THREADS");
  // " 5" (leading whitespace) and the 20-digit value (ERANGE saturation)
  // were silently reinterpreted before the strict-grammar fix; both must
  // now fail the same loud way as the always-rejected inputs.
  for (const char* bad : {"abc", "-3", "0", "4x", "", " 5", "\t5", "99999999999999999999"}) {
    ::setenv("NOISIM_THREADS", bad, 1);
    try {
      sim::resolve_threads(0);
      FAIL() << "expected LinalgError for NOISIM_THREADS=\"" << bad << "\"";
    } catch (const LinalgError& e) {
      EXPECT_NE(std::string(e.what()).find("NOISIM_THREADS"), std::string::npos) << e.what();
    }
  }
}

TEST(ParsePositiveInt, StrictGrammarRejectsWhitespaceAndOutOfRangeInput) {
  EXPECT_EQ(support::parse_positive_int("5"), 5);
  EXPECT_EQ(support::parse_positive_int("+12"), 12);
  // Leading whitespace: strtol would skip it; the strict grammar must not.
  EXPECT_FALSE(support::parse_positive_int(" 5").has_value());
  EXPECT_FALSE(support::parse_positive_int("\t5").has_value());
  EXPECT_FALSE(support::parse_positive_int("\n5").has_value());
  // Out-of-range: strtol saturates to LONG_MAX/LONG_MIN with errno ==
  // ERANGE; the grammar rejects instead of handing back the saturated value.
  EXPECT_FALSE(support::parse_positive_int("99999999999999999999").has_value());
  EXPECT_FALSE(support::parse_positive_int("-99999999999999999999").has_value());
  EXPECT_FALSE(support::parse_positive_int(nullptr).has_value());
  EXPECT_FALSE(support::parse_positive_int("5 ").has_value());
}

TEST(ResolveThreads, AcceptsPositiveIntegersAndIgnoresEnvWhenRequested) {
  EnvGuard guard("NOISIM_THREADS");
  ::setenv("NOISIM_THREADS", "5", 1);
  EXPECT_EQ(sim::resolve_threads(0), 5u);
  // An explicit request bypasses the env var entirely (even a bad one).
  ::setenv("NOISIM_THREADS", "abc", 1);
  EXPECT_EQ(sim::resolve_threads(3), 3u);
  ::unsetenv("NOISIM_THREADS");
  EXPECT_GE(sim::resolve_threads(0), 1u);
}

}  // namespace
}  // namespace noisim::core
