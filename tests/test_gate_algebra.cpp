// Gate-algebra identities: Table I of the paper pinned entry-by-entry plus
// the standard relations a quantum library must satisfy for every gate kind.
#include <gtest/gtest.h>

#include <numbers>

#include "circuit/circuit.hpp"
#include "sim/statevector.hpp"

namespace noisim::qc {
namespace {

constexpr double kPi = std::numbers::pi;
constexpr cplx kI{0.0, 1.0};
const double kInvSqrt2 = 1.0 / std::numbers::sqrt2;

// --- Table I pinned ------------------------------------------------------------

TEST(TableI, Hadamard) {
  const la::Matrix m = h(0).matrix();
  EXPECT_TRUE(approx_equal(m(0, 0), cplx{kInvSqrt2, 0}));
  EXPECT_TRUE(approx_equal(m(0, 1), cplx{kInvSqrt2, 0}));
  EXPECT_TRUE(approx_equal(m(1, 0), cplx{kInvSqrt2, 0}));
  EXPECT_TRUE(approx_equal(m(1, 1), cplx{-kInvSqrt2, 0}));
}

TEST(TableI, PauliMatrices) {
  EXPECT_TRUE(x(0).matrix().approx_equal(la::Matrix{{0, 1}, {1, 0}}, 1e-15));
  EXPECT_TRUE(y(0).matrix().approx_equal(la::Matrix{{0, -kI}, {kI, 0}}, 1e-15));
  EXPECT_TRUE(z(0).matrix().approx_equal(la::Matrix{{1, 0}, {0, -1}}, 1e-15));
}

TEST(TableI, TGate) {
  const la::Matrix m = t(0).matrix();
  EXPECT_TRUE(approx_equal(m(1, 1), std::polar(1.0, kPi / 4)));
}

TEST(TableI, RotationGates) {
  const double th = 0.8;
  const la::Matrix mx = rx(0, th).matrix();
  EXPECT_TRUE(approx_equal(mx(0, 0), cplx{std::cos(th / 2), 0}));
  EXPECT_TRUE(approx_equal(mx(0, 1), -kI * std::sin(th / 2)));
  const la::Matrix my = ry(0, th).matrix();
  EXPECT_TRUE(approx_equal(my(0, 1), cplx{-std::sin(th / 2), 0}));
  EXPECT_TRUE(approx_equal(my(1, 0), cplx{std::sin(th / 2), 0}));
  const la::Matrix mz = rz(0, th).matrix();
  EXPECT_TRUE(approx_equal(mz(0, 0), std::polar(1.0, -th / 2)));
  EXPECT_TRUE(approx_equal(mz(1, 1), std::polar(1.0, th / 2)));
}

// --- standard identities ----------------------------------------------------------

TEST(GateAlgebra, PauliAnticommutation) {
  const la::Matrix X = x(0).matrix(), Y = y(0).matrix(), Z = z(0).matrix();
  la::Matrix xy = X * Y;
  xy += Y * X;
  EXPECT_LT(xy.max_abs(), 1e-14);
  // XY = iZ.
  la::Matrix want = Z;
  want *= kI;
  EXPECT_TRUE((X * Y).approx_equal(want, 1e-14));
}

TEST(GateAlgebra, EulerDecompositionOfHadamard) {
  // H = e^{i pi/2} Rz(pi/2) Rx(pi/2) Rz(pi/2) -- check up to global phase
  // by comparing H * U^dag to a phase multiple of identity.
  const la::Matrix u = rz(0, kPi / 2).matrix() * rx(0, kPi / 2).matrix() * rz(0, kPi / 2).matrix();
  const la::Matrix ratio = h(0).matrix() * u.adjoint();
  EXPECT_TRUE(approx_equal(ratio(0, 1), cplx{0, 0}, 1e-12));
  EXPECT_TRUE(approx_equal(ratio(1, 0), cplx{0, 0}, 1e-12));
  EXPECT_TRUE(approx_equal(ratio(0, 0), ratio(1, 1), 1e-12));
  EXPECT_NEAR(std::abs(ratio(0, 0)), 1.0, 1e-12);
}

TEST(GateAlgebra, CxFromCzAndHadamards) {
  // CX(a, b) = (I (x) H) CZ (I (x) H).
  Circuit lhs(2), rhs(2);
  lhs.add(cx(0, 1));
  rhs.add(h(1)).add(cz(0, 1)).add(h(1));
  EXPECT_TRUE(circuit_unitary(lhs).approx_equal(circuit_unitary(rhs), 1e-12));
}

TEST(GateAlgebra, CzIsSymmetric) {
  EXPECT_TRUE(cz(0, 1).matrix().approx_equal(cz(1, 0).matrix(), 1e-15));
  Circuit a(2), b(2);
  a.add(cz(0, 1));
  b.add(cz(1, 0));
  EXPECT_TRUE(circuit_unitary(a).approx_equal(circuit_unitary(b), 1e-12));
}

TEST(GateAlgebra, ZzFromCxSandwich) {
  // CX(a,b) RZ_b(g) CX(a,b) = exp(-i g/2 Z(x)Z) up to global phase: compare
  // action on the doubled structure via unitaries directly.
  const double g = 0.9;
  Circuit sandwich(2);
  sandwich.add(cx(0, 1)).add(rz(1, g)).add(cx(0, 1));
  Circuit direct(2);
  direct.add(zz(0, 1, g));
  EXPECT_TRUE(circuit_unitary(sandwich).approx_equal(circuit_unitary(direct), 1e-12));
}

TEST(GateAlgebra, CzSandwichIsNotEntangling) {
  // Regression for the QAOA generator bug: CZ RZ_b CZ == RZ_b exactly.
  Circuit sandwich(2);
  sandwich.add(cz(0, 1)).add(rz(1, 0.9)).add(cz(0, 1));
  Circuit plain(2);
  plain.add(rz(1, 0.9));
  EXPECT_TRUE(circuit_unitary(sandwich).approx_equal(circuit_unitary(plain), 1e-12));
}

TEST(GateAlgebra, FsimSpecialCases) {
  // fSim(pi/2, 0) = iSWAP^dagger-like: |01> <-> -i|10>.
  const la::Matrix m = fsim(0, 1, kPi / 2, 0).matrix();
  EXPECT_TRUE(approx_equal(m(1, 2), -kI, 1e-12));
  EXPECT_TRUE(approx_equal(m(2, 1), -kI, 1e-12));
  EXPECT_TRUE(approx_equal(m(1, 1), cplx{0, 0}, 1e-12));
  // fSim(0, phi) = CPhase(-phi).
  EXPECT_TRUE(fsim(0, 1, 0, 0.7).matrix().approx_equal(cphase(0, 1, -0.7).matrix(), 1e-12));
}

TEST(GateAlgebra, GivensComposesAngles) {
  const la::Matrix a = givens(0, 1, 0.3).matrix();
  const la::Matrix b = givens(0, 1, 0.5).matrix();
  EXPECT_TRUE((a * b).approx_equal(givens(0, 1, 0.8).matrix(), 1e-12));
}

TEST(GateAlgebra, PhaseVsRzGlobalPhase) {
  // Phase(t) = e^{i t/2} Rz(t).
  const double th = 1.1;
  la::Matrix scaled = rz(0, th).matrix();
  scaled *= std::polar(1.0, th / 2);
  EXPECT_TRUE(phase(0, th).matrix().approx_equal(scaled, 1e-12));
}

// Parameterized sweep: every named kind agrees between the dense unitary
// lift and the statevector kernel on a random input state.
class KindSweep : public ::testing::TestWithParam<int> {};

TEST_P(KindSweep, StatevectorMatchesDenseLift) {
  const std::vector<Gate> gates = {
      h(1),        x(0),         y(1),           z(0),          s(1),
      sdg(0),      t(1),         tdg(0),         sqrt_x(1),     sqrt_y(0),
      sqrt_w(1),   rx(0, 0.43),  ry(1, -0.9),    rz(0, 2.2),    phase(1, 0.77),
      cz(0, 1),    cx(1, 0),     cphase(0, 1, 1.3), zz(1, 0, 0.6),
      fsim(0, 1, 0.4, 0.9), givens(1, 0, 0.35)};
  const Gate& g = gates[static_cast<std::size_t>(GetParam())];

  Circuit c(2);
  c.add(g);
  const la::Matrix u = circuit_unitary(c);

  for (std::uint64_t basis = 0; basis < 4; ++basis) {
    sim::Statevector sv = sim::Statevector::basis(2, basis);
    sv.apply_gate(g);
    for (std::uint64_t row = 0; row < 4; ++row)
      EXPECT_TRUE(approx_equal(sv.amplitude(row), u(row, basis), 1e-12))
          << g.description() << " basis " << basis;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, KindSweep, ::testing::Range(0, 21));

}  // namespace
}  // namespace noisim::qc
