// Unit tests for the dense linear algebra substrate.
#include <gtest/gtest.h>

#include <random>

#include "linalg/eig.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"

namespace noisim::la {
namespace {

constexpr cplx kI{0.0, 1.0};

TEST(Vector, NormAndDot) {
  Vector v{cplx{3, 0}, cplx{0, 4}};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  Vector w{cplx{1, 0}, cplx{0, 1}};
  // <w|v> = conj(1)*3 + conj(i)*4i = 3 + 4.
  EXPECT_TRUE(approx_equal(dot(w, v), cplx{7.0, 0.0}));
}

TEST(Vector, DotIsConjugateLinearInFirstArgument) {
  Vector a{kI, cplx{2, 0}};
  Vector b{cplx{1, 0}, cplx{0, 0}};
  EXPECT_TRUE(approx_equal(dot(a, b), -kI));
  EXPECT_TRUE(approx_equal(dot(b, a), kI));
}

TEST(Vector, NormalizeZeroThrows) {
  Vector v(3);
  EXPECT_THROW(v.normalize(), LinalgError);
}

TEST(Vector, KronOrdering) {
  Vector a{cplx{1, 0}, cplx{2, 0}};
  Vector b{cplx{3, 0}, cplx{5, 0}};
  const Vector k = kron(a, b);
  ASSERT_EQ(k.size(), 4u);
  EXPECT_TRUE(approx_equal(k[0], cplx{3, 0}));
  EXPECT_TRUE(approx_equal(k[1], cplx{5, 0}));
  EXPECT_TRUE(approx_equal(k[2], cplx{6, 0}));
  EXPECT_TRUE(approx_equal(k[3], cplx{10, 0}));
}

TEST(Matrix, InitializerListAndAccess) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_TRUE(approx_equal(m(1, 0), cplx{3, 0}));
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), LinalgError);
}

TEST(Matrix, MultiplyKnownValues) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a * b;
  EXPECT_TRUE(approx_equal(c(0, 0), cplx{19, 0}));
  EXPECT_TRUE(approx_equal(c(0, 1), cplx{22, 0}));
  EXPECT_TRUE(approx_equal(c(1, 0), cplx{43, 0}));
  EXPECT_TRUE(approx_equal(c(1, 1), cplx{50, 0}));
}

TEST(Matrix, AdjointConjTranspose) {
  Matrix m{{cplx{1, 1}, cplx{2, -1}}, {cplx{0, 3}, cplx{4, 0}}};
  const Matrix a = m.adjoint();
  EXPECT_TRUE(approx_equal(a(0, 0), cplx{1, -1}));
  EXPECT_TRUE(approx_equal(a(0, 1), cplx{0, -3}));
  EXPECT_TRUE(approx_equal(a(1, 0), cplx{2, 1}));
  EXPECT_TRUE(m.transpose().conj().approx_equal(a));
}

TEST(Matrix, TraceAndNorms) {
  Matrix m{{3, 0}, {0, cplx{0, 4}}};
  EXPECT_TRUE(approx_equal(m.trace(), cplx{3, 4}));
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(m.max_abs(), 4.0);
}

TEST(Matrix, HermitianUnitaryDiagonalPredicates) {
  Matrix h{{1, kI}, {-kI, 2}};
  EXPECT_TRUE(h.is_hermitian());
  EXPECT_FALSE(h.is_unitary());
  Matrix pauli_y{{0, -kI}, {kI, 0}};
  EXPECT_TRUE(pauli_y.is_unitary());
  EXPECT_TRUE(pauli_y.is_hermitian());
  EXPECT_FALSE(pauli_y.is_diagonal());
  EXPECT_TRUE(Matrix::identity(3).is_diagonal());
}

TEST(Matrix, KronMatchesDefinition) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{0, 5}, {6, 7}};
  const Matrix k = kron(a, b);
  ASSERT_EQ(k.rows(), 4u);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      for (std::size_t p = 0; p < 2; ++p)
        for (std::size_t q = 0; q < 2; ++q)
          EXPECT_TRUE(approx_equal(k(2 * i + p, 2 * j + q), a(i, j) * b(p, q)));
}

TEST(Matrix, VecUnvecRoundTrip) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Vector v = vec(m);
  EXPECT_TRUE(approx_equal(v[4], cplx{5, 0}));  // row-major
  EXPECT_TRUE(unvec(v, 2, 3).approx_equal(m));
}

TEST(Matrix, OuterProduct) {
  Vector a{cplx{1, 0}, cplx{0, 1}};
  Vector b{cplx{0, 2}, cplx{3, 0}};
  const Matrix o = Matrix::outer(a, b);
  // |a><b|(0,0) = a0 * conj(b0) = 1 * (-2i).
  EXPECT_TRUE(approx_equal(o(0, 0), cplx{0, -2}));
  EXPECT_TRUE(approx_equal(o(1, 1), cplx{0, 3}));
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a * b, LinalgError);
  EXPECT_NO_THROW(a += b);
  Matrix c(3, 3);
  EXPECT_THROW(a += c, LinalgError);
}

// --- SVD --------------------------------------------------------------------

class SvdRandom : public ::testing::TestWithParam<int> {};

TEST_P(SvdRandom, ReconstructsSquareMatrix) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  const Matrix a = random_ginibre(4, 4, rng);
  const SvdResult r = svd(a);
  EXPECT_TRUE(r.reconstruct().approx_equal(a, 1e-9));
  for (std::size_t i = 0; i + 1 < r.s.size(); ++i) EXPECT_GE(r.s[i], r.s[i + 1]);
  EXPECT_TRUE((r.u.adjoint() * r.u).is_identity(1e-9));
  EXPECT_TRUE((r.v.adjoint() * r.v).is_identity(1e-9));
}

TEST_P(SvdRandom, ReconstructsRectangularMatrices) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const Matrix tall = random_ginibre(7, 3, rng);
  EXPECT_TRUE(svd(tall).reconstruct().approx_equal(tall, 1e-9));
  const Matrix wide = random_ginibre(3, 7, rng);
  EXPECT_TRUE(svd(wide).reconstruct().approx_equal(wide, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SvdRandom, ::testing::Range(0, 12));

TEST(Svd, SingularValuesOfDiagonal) {
  Matrix m{{cplx{0, 3}, 0}, {0, cplx{-4, 0}}};
  const SvdResult r = svd(m);
  ASSERT_EQ(r.s.size(), 2u);
  EXPECT_NEAR(r.s[0], 4.0, 1e-12);
  EXPECT_NEAR(r.s[1], 3.0, 1e-12);
}

TEST(Svd, SpectralNormOfUnitaryIsOne) {
  std::mt19937_64 rng(7);
  EXPECT_NEAR(spectral_norm(random_unitary(4, rng)), 1.0, 1e-9);
}

TEST(Svd, RankOfOuterProduct) {
  Vector a{cplx{1, 0}, cplx{2, 0}, cplx{0, 1}};
  const Matrix m = Matrix::outer(a, a);
  EXPECT_EQ(svd(m).rank(), 1u);
}

TEST(Svd, ZeroMatrix) {
  const SvdResult r = svd(Matrix(3, 3));
  EXPECT_EQ(r.rank(), 0u);
  EXPECT_NEAR(r.s[0], 0.0, 1e-300);
}

TEST(Svd, TruncatedApproxIsEckartYoungOptimal) {
  std::mt19937_64 rng(11);
  const Matrix a = random_ginibre(4, 4, rng);
  const SvdResult r = svd(a);
  const Matrix a1 = truncated_svd_approx(a, 1);
  Matrix diff = a;
  diff -= a1;
  // ||A - A_1||_2 equals the second singular value.
  EXPECT_NEAR(spectral_norm(diff), r.s[1], 1e-8);
}

// --- Hermitian eigendecomposition -------------------------------------------

TEST(Eigh, DiagonalizesRandomHermitian) {
  std::mt19937_64 rng(3);
  const Matrix g = random_ginibre(5, 5, rng);
  Matrix h = g;
  h += g.adjoint();  // Hermitian
  const EigResult e = eigh(h);
  // V diag(w) V^dag == H.
  Matrix vd(5, 5);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j) vd(i, j) = e.v(i, j) * e.w[j];
  EXPECT_TRUE((vd * e.v.adjoint()).approx_equal(h, 1e-8));
  for (std::size_t i = 0; i + 1 < e.w.size(); ++i) EXPECT_LE(e.w[i], e.w[i + 1]);
}

TEST(Eigh, RejectsNonHermitian) {
  Matrix m{{0, 1}, {0, 0}};
  EXPECT_THROW(eigh(m), LinalgError);
}

TEST(Eigh, PsdPredicate) {
  Matrix psd{{2, 1}, {1, 2}};
  EXPECT_TRUE(is_positive_semidefinite(psd));
  Matrix indef{{1, 0}, {0, -1}};
  EXPECT_FALSE(is_positive_semidefinite(indef));
}

// --- QR / random unitaries ---------------------------------------------------

TEST(Qr, FactorizesAndIsOrthonormal) {
  std::mt19937_64 rng(5);
  const Matrix a = random_ginibre(6, 4, rng);
  const QrResult f = qr(a);
  EXPECT_TRUE((f.q * f.r).approx_equal(a, 1e-9));
  EXPECT_TRUE((f.q.adjoint() * f.q).is_identity(1e-9));
  for (std::size_t i = 1; i < 4; ++i)
    for (std::size_t j = 0; j < i; ++j) EXPECT_LT(std::abs(f.r(i, j)), 1e-12);
}

class RandomUnitarySeeds : public ::testing::TestWithParam<int> {};

TEST_P(RandomUnitarySeeds, ProducesUnitaries) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  for (std::size_t dim : {2u, 4u, 8u}) EXPECT_TRUE(random_unitary(dim, rng).is_unitary(1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomUnitarySeeds, ::testing::Range(0, 6));

TEST(RandomState, IsNormalized) {
  std::mt19937_64 rng(9);
  EXPECT_NEAR(random_state(8, rng).norm(), 1.0, 1e-12);
}

}  // namespace
}  // namespace noisim::la
