// Tests for the tensor network graph and contraction strategies.
#include <gtest/gtest.h>

#include <random>

#include "linalg/qr.hpp"
#include "tn/contractor.hpp"
#include "tn/network.hpp"

namespace noisim::tn {
namespace {

using tsr::Tensor;

Tensor random_tensor(std::vector<std::size_t> shape, std::mt19937_64& rng) {
  Tensor t(std::move(shape));
  std::normal_distribution<double> gauss;
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = cplx{gauss(rng), gauss(rng)};
  return t;
}

TEST(Network, TracksOpenEdges) {
  Network net;
  const EdgeId a = net.new_edge(), b = net.new_edge(), c = net.new_edge();
  net.add_node(Tensor({2, 3}), {a, b});
  net.add_node(Tensor({3, 4}), {b, c});
  EXPECT_EQ(net.open_edges(), (std::vector<EdgeId>{a, c}));
}

TEST(Network, RejectsSelfLoop) {
  Network net;
  const EdgeId a = net.new_edge();
  EXPECT_THROW(net.add_node(Tensor({2, 2}), {a, a}), LinalgError);
}

TEST(Network, RejectsThirdEndpoint) {
  Network net;
  const EdgeId a = net.new_edge();
  net.add_node(Tensor({2}), {a});
  net.add_node(Tensor({2}), {a});
  EXPECT_THROW(net.add_node(Tensor({2}), {a}), LinalgError);
}

TEST(Network, RejectsDimensionMismatch) {
  Network net;
  const EdgeId a = net.new_edge();
  net.add_node(Tensor({2}), {a});
  EXPECT_THROW(net.add_node(Tensor({3}), {a}), LinalgError);
}

TEST(Network, RejectsUnknownEdge) {
  Network net;
  EXPECT_THROW(net.add_node(Tensor({2}), {99}), LinalgError);
}

TEST(Contractor, MatrixChainEqualsProduct) {
  std::mt19937_64 rng(1);
  const la::Matrix a = la::random_ginibre(2, 3, rng);
  const la::Matrix b = la::random_ginibre(3, 4, rng);
  const la::Matrix c = la::random_ginibre(4, 2, rng);

  for (OrderStrategy strat : {OrderStrategy::Greedy, OrderStrategy::Sequential}) {
    Network net;
    const EdgeId e0 = net.new_edge(), e1 = net.new_edge(), e2 = net.new_edge(),
                 e3 = net.new_edge();
    net.add_node(Tensor::from_matrix(a), {e0, e1});
    net.add_node(Tensor::from_matrix(b), {e1, e2});
    net.add_node(Tensor::from_matrix(c), {e2, e3});
    ContractOptions opts;
    opts.strategy = strat;
    const Tensor result = contract_network(net, opts);
    EXPECT_TRUE(result.to_matrix().approx_equal(a * b * c, 1e-9));
  }
}

TEST(Contractor, ClosedLoopEqualsTraceOfProduct) {
  std::mt19937_64 rng(2);
  const la::Matrix a = la::random_ginibre(3, 3, rng);
  const la::Matrix b = la::random_ginibre(3, 3, rng);
  Network net;
  const EdgeId e0 = net.new_edge(), e1 = net.new_edge();
  net.add_node(Tensor::from_matrix(a), {e0, e1});
  net.add_node(Tensor::from_matrix(b), {e1, e0});
  EXPECT_TRUE(approx_equal(contract_to_scalar(net), (a * b).trace(), 1e-9));
}

TEST(Contractor, SingleNodePassesThrough) {
  std::mt19937_64 rng(3);
  Network net;
  const EdgeId a = net.new_edge(), b = net.new_edge();
  const Tensor t = random_tensor({2, 3}, rng);
  net.add_node(t, {a, b});
  EXPECT_TRUE(contract_network(net).approx_equal(t));
}

TEST(Contractor, EmptyNetworkIsScalarOne) {
  Network net;
  EXPECT_TRUE(approx_equal(contract_to_scalar(net), cplx{1.0, 0.0}));
}

TEST(Contractor, DisconnectedComponentsMultiply) {
  Network net;
  const EdgeId a = net.new_edge(), b = net.new_edge();
  Tensor u({2}), v({2}), w({2}), x({2});
  u[0] = cplx{2, 0};
  v[0] = cplx{3, 0};
  w[1] = cplx{5, 0};
  x[1] = cplx{7, 0};
  net.add_node(u, {a});
  net.add_node(v, {a});
  net.add_node(w, {b});
  net.add_node(x, {b});
  EXPECT_TRUE(approx_equal(contract_to_scalar(net), cplx{6.0 * 35.0, 0.0}, 1e-9));
}

TEST(Contractor, OpenEdgesOrderedByEdgeId) {
  std::mt19937_64 rng(4);
  // Two tensors sharing one edge, open edges created out of order.
  Network net;
  const EdgeId open_hi = net.new_edge();   // id 0
  const EdgeId shared = net.new_edge();    // id 1
  const EdgeId open_lo = net.new_edge();   // id 2
  const Tensor a = random_tensor({3, 4}, rng);  // axes: open_hi, shared
  const Tensor b = random_tensor({4, 5}, rng);  // axes: shared, open_lo
  net.add_node(a, {open_hi, shared});
  net.add_node(b, {shared, open_lo});
  const Tensor r = contract_network(net);
  // Result axes must be [open_hi(id 0), open_lo(id 2)] = [3, 5].
  EXPECT_EQ(r.shape(), (std::vector<std::size_t>{3, 5}));
  EXPECT_TRUE(r.to_matrix().approx_equal(a.to_matrix() * b.to_matrix(), 1e-9));
}

TEST(Contractor, StrategiesAgreeOnRandomNetworks) {
  for (int seed = 0; seed < 6; ++seed) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(seed));
    // A ladder network: two rails of length 4 with rungs.
    Network net;
    std::vector<EdgeId> rail_a, rail_b, rungs;
    for (int i = 0; i < 5; ++i) {
      rail_a.push_back(net.new_edge());
      rail_b.push_back(net.new_edge());
    }
    for (int i = 0; i < 5; ++i) rungs.push_back(net.new_edge());
    // End caps close the rails so only rung ends stay open... close those too.
    net.add_node(random_tensor({2, 2}, rng), {rail_a[0], rail_b[0]});
    for (int i = 0; i < 4; ++i) {
      net.add_node(random_tensor({2, 2, 2}, rng), {rail_a[i], rail_a[i + 1], rungs[i]});
      net.add_node(random_tensor({2, 2, 2}, rng), {rail_b[i], rail_b[i + 1], rungs[i]});
    }
    net.add_node(random_tensor({2, 2, 2}, rng), {rail_a[4], rail_b[4], rungs[4]});
    net.add_node(random_tensor({2}, rng), {rungs[4]});

    ContractOptions greedy, seq;
    greedy.strategy = OrderStrategy::Greedy;
    seq.strategy = OrderStrategy::Sequential;
    const cplx x = contract_to_scalar(net, greedy);
    const cplx y = contract_to_scalar(net, seq);
    EXPECT_TRUE(approx_equal(x, y, 1e-8 * (1.0 + std::abs(x))));
  }
}

TEST(Contractor, CustomSequenceMatchesDefault) {
  std::mt19937_64 rng(11);
  Network net;
  const EdgeId e0 = net.new_edge(), e1 = net.new_edge(), e2 = net.new_edge();
  net.add_node(random_tensor({2, 2}, rng), {e0, e1});
  net.add_node(random_tensor({2, 2}, rng), {e1, e2});
  net.add_node(random_tensor({2, 2}, rng), {e2, e0});
  ContractOptions def, custom;
  def.strategy = OrderStrategy::Sequential;
  custom.strategy = OrderStrategy::Sequential;
  custom.custom_sequence = {2, 0, 1};
  EXPECT_TRUE(approx_equal(contract_to_scalar(net, def), contract_to_scalar(net, custom), 1e-9));
}

TEST(Contractor, MemoryBudgetThrowsMemoryOut) {
  std::mt19937_64 rng(5);
  // Outer-product-style growth: contracting these creates a 2^20 tensor.
  Network net;
  std::vector<EdgeId> open_edges;
  EdgeId spine_prev = net.new_edge();
  net.add_node(random_tensor({2}, rng), {spine_prev});
  for (int i = 0; i < 20; ++i) {
    const EdgeId spine_next = net.new_edge();
    const EdgeId leaf = net.new_edge();
    net.add_node(random_tensor({2, 2, 2}, rng), {spine_prev, spine_next, leaf});
    open_edges.push_back(leaf);
    spine_prev = spine_next;
  }
  net.add_node(random_tensor({2}, rng), {spine_prev});
  ContractOptions opts;
  opts.max_tensor_elems = 1 << 10;
  EXPECT_THROW(contract_network(net, opts), MemoryOutError);
}

TEST(Contractor, DeadlineThrowsTimeout) {
  std::mt19937_64 rng(6);
  Network net;
  // Big enough that contraction cannot finish in ~0 time.
  std::vector<EdgeId> wires;
  for (int i = 0; i < 14; ++i) wires.push_back(net.new_edge());
  for (int i = 0; i < 14; ++i) net.add_node(random_tensor({2}, rng), {wires[i]});
  // A chain of large tensors.
  EdgeId prev = wires[0];
  for (int i = 1; i < 14; ++i) {
    // connect sequentially through fresh edges
    const EdgeId mid = net.new_edge();
    net.add_node(random_tensor({2, 2, 2}, rng), {prev, wires[i], mid});
    prev = mid;
  }
  net.add_node(random_tensor({2}, rng), {prev});
  ContractOptions opts;
  opts.timeout_seconds = 1e-9;
  EXPECT_THROW(contract_network(net, opts), TimeoutError);
}

TEST(Contractor, StatsArePopulated) {
  std::mt19937_64 rng(7);
  Network net;
  const EdgeId e0 = net.new_edge(), e1 = net.new_edge();
  net.add_node(random_tensor({2, 2}, rng), {e0, e1});
  net.add_node(random_tensor({2, 2}, rng), {e1, e0});
  ContractStats stats;
  contract_to_scalar(net, {}, &stats);
  EXPECT_EQ(stats.num_pairwise, 1u);
  EXPECT_GE(stats.peak_elems, 1u);
  EXPECT_GE(stats.elapsed_seconds, 0.0);
}

}  // namespace
}  // namespace noisim::tn
