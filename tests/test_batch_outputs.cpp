// Tests for the output-bitstring batching axis: batch_amplitudes /
// AmplitudeTemplate::compile_batched_outputs, approximate_fidelity_outputs,
// trajectories_tn_outputs -- plus the sampling-path regression tests this
// PR fixes (unnormalized mixtures, zero-sample entry points, progress
// serialization).
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>

#include "bench_support/generators.hpp"
#include "bench_support/harness.hpp"
#include "channels/catalog.hpp"
#include "core/approx.hpp"
#include "core/trajectories_tn.hpp"
#include "mps/mps_trajectories.hpp"
#include "sim/trajectories.hpp"

namespace noisim::core {
namespace {

EvalOptions tn_eval() {
  EvalOptions eval;
  eval.backend = EvalOptions::Backend::TensorNetwork;
  return eval;
}

EvalOptions sv_eval() {
  EvalOptions eval;
  eval.backend = EvalOptions::Backend::StateVector;
  return eval;
}

/// The trajectories/approx skeleton topology: the circuit's gates with one
/// identity placeholder per noise site (same shapes as the insertions that
/// replace them). Used to compute per-term plan arenas for the
/// workspace-budget tests.
std::vector<qc::Gate> skeleton_gates(const ch::NoisyCircuit& nc) {
  std::vector<qc::Gate> gates;
  for (const ch::Op& op : nc.ops()) {
    if (const qc::Gate* g = std::get_if<qc::Gate>(&op)) {
      gates.push_back(*g);
      continue;
    }
    const ch::NoiseOp& noise = std::get<ch::NoiseOp>(op);
    gates.push_back(noise.num_qubits() == 1
                        ? qc::u1q(noise.qubit, la::Matrix::identity(2))
                        : qc::u2q(noise.qubit, noise.qubit2, la::Matrix::identity(4)));
  }
  return gates;
}

std::vector<std::uint64_t> sampled_bitstrings(int n, std::size_t count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const std::uint64_t mask = n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
  std::vector<std::uint64_t> out(count);
  for (auto& v : out) v = rng() & mask;
  return out;
}

void expect_batch_matches_amplitude(int n, const std::vector<qc::Gate>& gates,
                                    std::span<const std::uint64_t> vb,
                                    const EvalOptions& eval) {
  const std::vector<cplx> batch = batch_amplitudes(n, gates, 0, vb, false, eval);
  ASSERT_EQ(batch.size(), vb.size());
  for (std::size_t t = 0; t < vb.size(); ++t) {
    const cplx ref = amplitude(n, gates, 0, vb[t], false, eval);
    EXPECT_EQ(ref.real(), batch[t].real()) << "bitstring " << t;
    EXPECT_EQ(ref.imag(), batch[t].imag()) << "bitstring " << t;
  }
}

// --- batch_amplitudes ---------------------------------------------------------

TEST(BatchAmplitudes, BitwiseEqualsPerBitstringOnBothBackends) {
  const qc::Circuit c = bench::qaoa(16, 1, 9);
  std::vector<std::uint64_t> vb = sampled_bitstrings(16, 21, 3);
  vb.push_back(vb[4]);  // duplicate inside one batch
  vb.push_back(0);      // all-zeros
  vb.push_back((std::uint64_t{1} << 16) - 1);  // all-ones
  expect_batch_matches_amplitude(16, c.gates(), vb, tn_eval());
  expect_batch_matches_amplitude(16, c.gates(), vb, sv_eval());
}

TEST(BatchAmplitudes, SingleBitstringAndSingleQubit) {
  // K = 1 (degenerate batch) and n = 1 (caps are the whole network).
  const qc::Circuit c16 = bench::qaoa(16, 1, 5);
  const std::vector<std::uint64_t> one{0x2f1bull};
  expect_batch_matches_amplitude(16, c16.gates(), one, tn_eval());

  qc::Circuit c1(1);
  c1.add(qc::h(0)).add(qc::t(0)).add(qc::h(0));
  const std::vector<std::uint64_t> vb{0, 1, 1, 0};
  expect_batch_matches_amplitude(1, c1.gates(), vb, tn_eval());
  expect_batch_matches_amplitude(1, c1.gates(), vb, sv_eval());
}

TEST(BatchAmplitudes, ChunksLargerThanInternalCapacity) {
  // 70 bitstrings stream through capacity-64 chunks: a full chunk plus a
  // ragged tail that does NOT divide the capacity.
  const qc::Circuit c = bench::qaoa(16, 1, 7);
  const std::vector<std::uint64_t> vb = sampled_bitstrings(16, 70, 11);
  expect_batch_matches_amplitude(16, c.gates(), vb, tn_eval());
}

TEST(BatchAmplitudes, EmptyRequestYieldsEmptyResult) {
  const qc::Circuit c = bench::qaoa(16, 1, 7);
  EXPECT_TRUE(batch_amplitudes(16, c.gates(), 0, {}, false, tn_eval()).empty());
}

TEST(BatchedOutputs, PartialBatchesThroughTemplateApi) {
  // k < capacity and k not dividing capacity, straight on the template API.
  const qc::Circuit c = bench::qaoa(16, 1, 13);
  const AmplitudeTemplate tmpl(16, c.gates(), 0, 0, false, tn_eval());
  const tn::BatchedPlan bplan = tmpl.compile_batched_outputs(8);
  AmplitudeTemplate::BatchedSession session(tmpl, bplan);
  AmplitudeTemplate::Session ref_session = tmpl.session();
  const std::vector<std::uint64_t> vb = sampled_bitstrings(16, 3, 17);
  std::vector<const tsr::Tensor*> ptrs(3 * 16);
  for (std::size_t t = 0; t < 3; ++t)
    tmpl.fill_output_caps(vb[t], std::span(ptrs).subspan(t * 16, 16));
  std::vector<cplx> out(3);
  session.evaluate(std::span<const tsr::Tensor* const>(ptrs), 3, out);
  std::vector<AmplitudeTemplate::Substitution> subs(16);
  std::vector<const tsr::Tensor*> caps(16);
  for (std::size_t t = 0; t < 3; ++t) {
    tmpl.fill_output_caps(vb[t], caps);
    for (int q = 0; q < 16; ++q) subs[static_cast<std::size_t>(q)] = {
        tmpl.node_of_output_cap(q), caps[static_cast<std::size_t>(q)]};
    const cplx ref = ref_session.evaluate(subs);
    EXPECT_EQ(ref, out[t]);
  }
}

TEST(BatchedOutputs, WorkspaceBudgetTripsOnlyTheOutputBatch) {
  // Budget = exactly the per-term plan arena: per-bitstring replay fits,
  // the output batch does not -- MO surfaces at compile time and
  // batch_amplitudes falls back bit-identically.
  const qc::Circuit c = bench::qaoa(16, 1, 19);
  EvalOptions eval = tn_eval();
  eval.tn.greedy_cost_weights = {1.0};
  const AmplitudeTemplate probe(16, c.gates(), 0, 0, false, eval);
  eval.tn.max_workspace_elems = probe.plan().workspace_elems();

  const AmplitudeTemplate tmpl(16, c.gates(), 0, 0, false, eval);
  (void)tmpl.compile_batched_outputs(1);  // capacity 1 matches the per-term arena
  EXPECT_THROW(tmpl.compile_batched_outputs(16), MemoryOutError);
  const bench::RunOutcome out = bench::run_guarded([&] {
    tmpl.compile_batched_outputs(16);
    return 0.0;
  });
  EXPECT_EQ(out.status, bench::RunOutcome::Status::MemoryOut);
  EXPECT_EQ(bench::format_time(out), "MO");

  // The convenience API degrades to per-bitstring replay instead of
  // failing, and stays bitwise-equal to the unbudgeted path.
  const std::vector<std::uint64_t> vb = sampled_bitstrings(16, 12, 23);
  const std::vector<cplx> budgeted = batch_amplitudes(16, c.gates(), 0, vb, false, eval);
  EvalOptions unbudgeted = eval;
  unbudgeted.tn.max_workspace_elems = 0;
  const std::vector<cplx> full = batch_amplitudes(16, c.gates(), 0, vb, false, unbudgeted);
  for (std::size_t t = 0; t < vb.size(); ++t) EXPECT_EQ(budgeted[t], full[t]);
}

// --- sequential_flop_fraction fallback boundary -------------------------------
//
// output_batch_worthwhile draws the line at 0.999: a compiled batch whose
// schedule is essentially all sequential (per-term) work can only add
// bookkeeping over per-bitstring replay. The two supremacy depths below
// land just under and just over the threshold (0.9989 vs 0.9993 on the
// seeded planner), pinning the policy boundary AND the bit-identity of both
// execution strategies on both sides.

TEST(FlopFraction, JustBelowThresholdKeepsTheBatchedPath) {
  const qc::Circuit c = bench::supremacy_inst(4, 4, 16, 5);
  const AmplitudeTemplate tmpl(16, c.gates(), 0, 0, false, tn_eval());
  const tn::BatchedPlan bp = tmpl.compile_batched_outputs(2);
  EXPECT_GT(bp.sequential_flop_fraction(), 0.99);
  EXPECT_LT(bp.sequential_flop_fraction(), 0.999);
  // The exact branch condition batch_amplitudes / the sweep engine /
  // trajectories_tn_outputs test before keeping their batched plan.
  EXPECT_TRUE(output_batch_worthwhile(bp));
  const std::vector<std::uint64_t> vb = sampled_bitstrings(16, 2, 71);
  expect_batch_matches_amplitude(16, c.gates(), vb, tn_eval());
}

TEST(FlopFraction, AtOrAboveThresholdFallsBackToPerBitstringReplay) {
  const qc::Circuit c = bench::supremacy_inst(4, 4, 24, 5);
  const AmplitudeTemplate tmpl(16, c.gates(), 0, 0, false, tn_eval());
  const tn::BatchedPlan bp = tmpl.compile_batched_outputs(2);
  EXPECT_GE(bp.sequential_flop_fraction(), 0.999);
  EXPECT_LE(bp.sequential_flop_fraction(), 1.0);
  EXPECT_FALSE(output_batch_worthwhile(bp));
  // The convenience API therefore replays per bitstring -- bit-identically.
  const std::vector<std::uint64_t> vb = sampled_bitstrings(16, 2, 73);
  expect_batch_matches_amplitude(16, c.gates(), vb, tn_eval());

  // And the rejected batched plan itself still agrees bitwise with session
  // replay: the policy is a performance call, never a correctness one.
  AmplitudeTemplate::BatchedSession batched(tmpl, bp);
  std::vector<const tsr::Tensor*> ptrs(2 * 16);
  for (std::size_t t = 0; t < 2; ++t)
    tmpl.fill_output_caps(vb[t], std::span(ptrs).subspan(t * 16, 16));
  std::vector<cplx> out(2);
  batched.evaluate(std::span<const tsr::Tensor* const>(ptrs), 2, out);
  AmplitudeTemplate::Session session = tmpl.session();
  std::vector<AmplitudeTemplate::Substitution> subs(16);
  std::vector<const tsr::Tensor*> caps(16);
  for (std::size_t t = 0; t < 2; ++t) {
    tmpl.fill_output_caps(vb[t], caps);
    for (int q = 0; q < 16; ++q)
      subs[static_cast<std::size_t>(q)] = {tmpl.node_of_output_cap(q),
                                           caps[static_cast<std::size_t>(q)]};
    EXPECT_EQ(session.evaluate(subs), out[t]);
  }
}

// --- approximate_fidelity_outputs ---------------------------------------------

ch::NoisyCircuit xeb_workload(int n, std::size_t noises, std::uint64_t seed) {
  return bench::insert_noises(bench::qaoa(n, 1, 77), noises,
                              bench::depolarizing_noise(0.01), seed);
}

void expect_outputs_match_per_bitstring(const ch::NoisyCircuit& nc,
                                        std::span<const std::uint64_t> vb,
                                        const ApproxOptions& opts) {
  const ApproxBatchResult batch = approximate_fidelity_outputs(nc, 0, vb, opts);
  ASSERT_EQ(batch.values.size(), vb.size());
  for (std::size_t o = 0; o < vb.size(); ++o) {
    const ApproxResult ref = approximate_fidelity(nc, 0, vb[o], opts);
    EXPECT_EQ(ref.raw.real(), batch.raw[o].real()) << "output " << o;
    EXPECT_EQ(ref.raw.imag(), batch.raw[o].imag()) << "output " << o;
    ASSERT_EQ(ref.level_values.size(), batch.level_values[o].size());
    for (std::size_t u = 0; u < ref.level_values.size(); ++u)
      EXPECT_EQ(ref.level_values[u], batch.level_values[o][u]) << "output " << o;
    EXPECT_EQ(ref.error_bound, batch.error_bound);
    EXPECT_EQ(ref.tight_error_bound, batch.tight_error_bound);
  }
}

TEST(ApproxOutputs, BitIdenticalToPerBitstringLevels0To2) {
  const ch::NoisyCircuit nc = xeb_workload(16, 3, 501);
  // Duplicates, all-zeros, all-ones ride along with the sampled strings.
  std::vector<std::uint64_t> vb = sampled_bitstrings(16, 5, 31);
  vb.push_back(vb[0]);
  vb.push_back(0);
  vb.push_back((std::uint64_t{1} << 16) - 1);
  for (std::size_t level = 0; level <= 2; ++level) {
    ApproxOptions opts;
    opts.level = level;
    opts.eval = tn_eval();
    expect_outputs_match_per_bitstring(nc, vb, opts);
  }
}

TEST(ApproxOutputs, BitIdenticalAcrossThreadCountsAndBatchSizes) {
  const ch::NoisyCircuit nc = xeb_workload(16, 3, 501);
  const std::vector<std::uint64_t> vb = sampled_bitstrings(16, 6, 37);
  ApproxOptions base;
  base.level = 2;
  base.eval = tn_eval();
  const ApproxBatchResult serial = approximate_fidelity_outputs(nc, 0, vb, base);
  for (const std::size_t threads : {4ul}) {
    for (const std::size_t batch_terms : {1ul, 2ul, 7ul, 32ul}) {
      ApproxOptions opts = base;
      opts.threads = threads;
      opts.batch_terms = batch_terms;
      const ApproxBatchResult other = approximate_fidelity_outputs(nc, 0, vb, opts);
      for (std::size_t o = 0; o < vb.size(); ++o) {
        EXPECT_EQ(serial.raw[o].real(), other.raw[o].real());
        EXPECT_EQ(serial.raw[o].imag(), other.raw[o].imag());
      }
    }
  }
}

TEST(ApproxOutputs, ReferencePathsMatchPerBitstring) {
  const ch::NoisyCircuit nc = xeb_workload(16, 2, 503);
  const std::vector<std::uint64_t> vb = sampled_bitstrings(16, 4, 41);
  ApproxOptions replan;
  replan.level = 1;
  replan.eval = tn_eval();
  replan.reuse_plans = false;
  expect_outputs_match_per_bitstring(nc, vb, replan);

  ApproxOptions sv;
  sv.level = 1;
  sv.eval = sv_eval();
  expect_outputs_match_per_bitstring(nc, vb, sv);
}

TEST(ApproxOutputs, WorkspaceBudgetFallsBackBitIdentically) {
  // Budget = the two layers' per-term arenas: the combined terms x outputs
  // batch cannot fit, so the sweep must drop to per-output plan replay and
  // still reproduce every per-bitstring value bit for bit.
  const ch::NoisyCircuit nc = xeb_workload(16, 3, 505);
  const std::vector<std::uint64_t> vb = sampled_bitstrings(16, 5, 43);
  ApproxOptions opts;
  opts.level = 1;
  opts.eval = tn_eval();
  opts.eval.tn.greedy_cost_weights = {1.0};

  const ApproxBatchResult full = approximate_fidelity_outputs(nc, 0, vb, opts);
  // Per-term plans of both layers share the skeleton topology; take the
  // larger arena so the per-output session path fits exactly.
  std::size_t arena = 0;
  for (const bool conj : {false, true}) {
    const tn::Network net = amplitude_network(nc.num_qubits(), skeleton_gates(nc), 0, 0, conj);
    arena = std::max(arena,
                     tn::ContractionPlan::compile(net, opts.eval.tn).workspace_elems());
  }
  ApproxOptions budgeted = opts;
  budgeted.eval.tn.max_workspace_elems = arena;
  const ApproxBatchResult fallback = approximate_fidelity_outputs(nc, 0, vb, budgeted);
  for (std::size_t o = 0; o < vb.size(); ++o) {
    EXPECT_EQ(full.raw[o].real(), fallback.raw[o].real());
    EXPECT_EQ(full.raw[o].imag(), fallback.raw[o].imag());
  }
}

TEST(ApproxOutputs, ConeTrackingPastSixtyFourVaryingSlots) {
  // 64 output caps + 4 noise sites = 68 varying slots: the cone masks are
  // multi-word bitsets, so the row bounds stay tight (a single-word mask
  // limit used to silently degrade exactly this XEB-scale regime) and the
  // batched sweep still reproduces every per-bitstring value bit for bit.
  const ch::NoisyCircuit nc = xeb_workload(64, 4, 601);
  const std::vector<std::uint64_t> vb = sampled_bitstrings(64, 3, 67);
  ApproxOptions opts;
  opts.level = 1;
  opts.eval = tn_eval();
  expect_outputs_match_per_bitstring(nc, vb, opts);
}

TEST(ApproxOutputs, EmptyOutputsReturnBoundsOnly) {
  const ch::NoisyCircuit nc = xeb_workload(16, 2, 507);
  ApproxOptions opts;
  opts.level = 1;
  opts.eval = tn_eval();
  const ApproxBatchResult r = approximate_fidelity_outputs(nc, 0, {}, opts);
  EXPECT_TRUE(r.values.empty());
  EXPECT_EQ(r.contractions, 0u);
  EXPECT_GT(r.tight_error_bound, 0.0);
}

TEST(ApproxOutputs, ProgressCountsTermsOnce) {
  const ch::NoisyCircuit nc = xeb_workload(16, 3, 509);
  const std::vector<std::uint64_t> vb = sampled_bitstrings(16, 4, 47);
  ApproxOptions opts;
  opts.level = 1;
  opts.eval = tn_eval();
  std::size_t calls = 0;
  opts.progress = [&](std::size_t done) { calls = done; };
  approximate_fidelity_outputs(nc, 0, vb, opts);
  EXPECT_EQ(calls, 1u + 3u * nc.noise_count());
}

// --- progress serialization (doc'd contract of ApproxOptions::progress) -------

TEST(ApproxProgress, CallsAreSerializedAndStrictlyIncreasing) {
  const ch::NoisyCircuit nc = xeb_workload(16, 4, 511);
  ApproxOptions opts;
  opts.level = 1;
  opts.threads = 4;
  opts.eval = tn_eval();

  std::atomic<int> in_flight{0};
  std::atomic<bool> overlapped{false};
  std::vector<std::size_t> seen;  // protected by the documented serialization
  opts.progress = [&](std::size_t done) {
    if (in_flight.fetch_add(1) != 0) overlapped = true;
    seen.push_back(done);
    std::this_thread::yield();  // widen any race window
    in_flight.fetch_sub(1);
  };
  approximate_fidelity(nc, 0, 0, opts);

  EXPECT_FALSE(overlapped.load());
  ASSERT_EQ(seen.size(), 1u + 3u * nc.noise_count());
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);
}

// --- trajectories_tn_outputs --------------------------------------------------

ch::NoisyCircuit traj_workload(std::uint64_t seed) {
  return bench::insert_noises(bench::qaoa(16, 1, 5), 3, bench::depolarizing_noise(0.02),
                              seed);
}

TEST(TrajOutputs, BitIdenticalToPerBitstringRuns) {
  const ch::NoisyCircuit nc = traj_workload(17);
  std::vector<std::uint64_t> vb = sampled_bitstrings(16, 5, 53);
  vb.push_back(vb[1]);  // duplicate
  vb.push_back(0);
  sim::ParallelOptions serial;
  serial.threads = 1;
  sim::ParallelOptions quad;
  quad.threads = 4;

  for (const EvalOptions& eval : {tn_eval(), sv_eval()}) {
    const auto multi = trajectories_tn_outputs(nc, 0, vb, 96, 7, serial, eval);
    const auto threaded = trajectories_tn_outputs(nc, 0, vb, 96, 7, quad, eval);
    ASSERT_EQ(multi.size(), vb.size());
    for (std::size_t o = 0; o < vb.size(); ++o) {
      const sim::TrajectoryResult ref = trajectories_tn(nc, 0, vb[o], 96, 7, serial, eval);
      EXPECT_EQ(ref.mean, multi[o].mean) << "output " << o;
      EXPECT_EQ(ref.std_error, multi[o].std_error) << "output " << o;
      EXPECT_EQ(multi[o].mean, threaded[o].mean) << "output " << o;
      EXPECT_EQ(multi[o].std_error, threaded[o].std_error) << "output " << o;
    }
  }
}

TEST(TrajOutputs, WorkspaceBudgetFallsBackBitIdentically) {
  const ch::NoisyCircuit nc = traj_workload(19);
  const std::vector<std::uint64_t> vb = sampled_bitstrings(16, 4, 59);
  sim::ParallelOptions serial;
  serial.threads = 1;
  EvalOptions eval = tn_eval();
  eval.tn.greedy_cost_weights = {1.0};
  const auto full = trajectories_tn_outputs(nc, 0, vb, 64, 7, serial, eval);

  // Budget = the skeleton's per-term arena: the output batch reports MO at
  // compile time and the per-output session path takes over.
  const tn::Network net = amplitude_network(nc.num_qubits(), skeleton_gates(nc), 0, 0, false);
  EvalOptions budgeted = eval;
  budgeted.tn.max_workspace_elems =
      tn::ContractionPlan::compile(net, eval.tn).workspace_elems();
  const auto fallback = trajectories_tn_outputs(nc, 0, vb, 64, 7, serial, budgeted);
  for (std::size_t o = 0; o < vb.size(); ++o) {
    EXPECT_EQ(full[o].mean, fallback[o].mean);
    EXPECT_EQ(full[o].std_error, fallback[o].std_error);
  }
}

TEST(TrajOutputs, ZeroSamplesAndNoOutputs) {
  const ch::NoisyCircuit nc = traj_workload(23);
  const std::vector<std::uint64_t> vb = sampled_bitstrings(16, 3, 61);
  sim::ParallelOptions popts;
  const auto empty = trajectories_tn_outputs(nc, 0, vb, 0, 7, popts, tn_eval());
  ASSERT_EQ(empty.size(), vb.size());
  for (const sim::TrajectoryResult& r : empty) {
    EXPECT_EQ(r.samples, 0u);
    EXPECT_EQ(r.mean, 0.0);
    EXPECT_EQ(r.std_error, 0.0);
  }
  EXPECT_TRUE(trajectories_tn_outputs(nc, 0, {}, 10, 7, popts, tn_eval()).empty());
}

// --- zero-sample entry points (SV / MPS / TN) ---------------------------------

TEST(ZeroSamples, AllBackendsReturnEmptyEstimates) {
  const ch::NoisyCircuit nc = traj_workload(29);
  std::mt19937_64 rng(1);
  sim::ParallelOptions popts;

  const sim::TrajectoryResult tn_direct = trajectories_tn(nc, 0, 0, 0, rng, tn_eval());
  const sim::TrajectoryResult tn_seeded = trajectories_tn(nc, 0, 0, 0, 7, popts, tn_eval());
  const sim::TrajectoryResult sv_direct = sim::trajectories_sv(nc, 0, 0, 0, rng);
  const sim::TrajectoryResult sv_seeded = sim::trajectories_sv(nc, 0, 0, 0, 7, popts);
  const sim::TrajectoryResult mps_direct = mps::trajectories_mps(nc, 0, 0, 0, rng);
  const sim::TrajectoryResult mps_seeded = mps::trajectories_mps(nc, 0, 0, 0, 7, popts);
  for (const sim::TrajectoryResult& r :
       {tn_direct, tn_seeded, sv_direct, sv_seeded, mps_direct, mps_seeded}) {
    EXPECT_EQ(r.samples, 0u);
    EXPECT_EQ(r.mean, 0.0);
    EXPECT_EQ(r.std_error, 0.0);
  }
}

// --- unnormalized mixtures (sample_index regression) --------------------------

TEST(SampleIndex, UnnormalizedMixtureFailsLoudly) {
  // A non-CPTP "channel" whose Kraus set is a mixture of unitaries with
  // probabilities summing to 0.6. Pre-fix, the inverse-CDF fall-through
  // silently sampled the LAST unitary with the missing 0.4 mass; now the
  // skeleton builder rejects the distribution up front.
  const la::Matrix x{{0.0, 1.0}, {1.0, 0.0}};
  std::vector<la::Matrix> kraus{std::sqrt(0.3) * la::Matrix::identity(2),
                                std::sqrt(0.3) * x};
  const ch::Channel bad("unnormalized", std::move(kraus), /*tol=*/0.0);
  ch::NoisyCircuit nc(1);
  nc.add_gate(qc::h(0));
  nc.add_noise(0, bad);
  std::mt19937_64 rng(1);
  EXPECT_THROW(trajectories_tn(nc, 0, 0, 10, rng, sv_eval()), LinalgError);
  sim::ParallelOptions popts;
  EXPECT_THROW(trajectories_tn(nc, 0, 0, 10, 7, popts, sv_eval()), LinalgError);
  const std::vector<std::uint64_t> vb{0, 1};
  EXPECT_THROW(trajectories_tn_outputs(nc, 0, vb, 10, 7, popts, sv_eval()), LinalgError);
}

TEST(SampleIndex, RoundoffDeficitIsNormalizedAway) {
  // Probabilities summing to 1 - 1e-10 (inside the roundoff tolerance) are
  // renormalized and sample fine.
  const la::Matrix x{{0.0, 1.0}, {1.0, 0.0}};
  std::vector<la::Matrix> kraus{std::sqrt(0.5) * la::Matrix::identity(2),
                                std::sqrt(0.5 - 1e-10) * x};
  const ch::Channel nearly("nearly-normalized", std::move(kraus), /*tol=*/0.0);
  ch::NoisyCircuit nc(1);
  nc.add_gate(qc::h(0));
  nc.add_noise(0, nearly);
  std::mt19937_64 rng(2);
  const sim::TrajectoryResult r = trajectories_tn(nc, 0, 0, 200, rng, sv_eval());
  EXPECT_EQ(r.samples, 200u);
  EXPECT_GE(r.mean, 0.0);
  EXPECT_LE(r.mean, 1.0 + 1e-12);
}

}  // namespace
}  // namespace noisim::core
