// Property tests for the sharded XEB sweep engine: seeded random small
// circuits x noise models, asserting BITWISE equality of core::xeb_sweep
// against the per-bitstring approximate_fidelity reference across thread
// counts {1, 2, 7}, shard sizes {1, 3, K}, plan-cache cold vs warm vs
// disabled, and levels 0-2 -- plus the sharded trajectory sweep against its
// per-bitstring reference and the degenerate (K = 0) inputs of every
// output-batched API.
#include <gtest/gtest.h>

#include <random>

#include "bench_support/generators.hpp"
#include "core/approx.hpp"
#include "core/plan_cache.hpp"
#include "core/trajectories_tn.hpp"

namespace noisim::core {
namespace {

EvalOptions tn_eval() {
  EvalOptions eval;
  eval.backend = EvalOptions::Backend::TensorNetwork;
  return eval;
}

EvalOptions sv_eval() {
  EvalOptions eval;
  eval.backend = EvalOptions::Backend::StateVector;
  return eval;
}

/// Seeded random circuit on n qubits: a few layers' worth of 1- and 2-qubit
/// gates drawn from a mixed gate set (Cliffords, rotations, entanglers).
qc::Circuit random_circuit(int n, std::mt19937_64& rng) {
  qc::Circuit c(n);
  std::uniform_int_distribution<int> qubit(0, n - 1);
  std::uniform_real_distribution<double> angle(-3.0, 3.0);
  const std::size_t count = 3 * static_cast<std::size_t>(n) + rng() % (3 * n);
  for (std::size_t i = 0; i < count; ++i) {
    switch (rng() % 8) {
      case 0: c.add(qc::h(qubit(rng))); break;
      case 1: c.add(qc::t(qubit(rng))); break;
      case 2: c.add(qc::rx(qubit(rng), angle(rng))); break;
      case 3: c.add(qc::rz(qubit(rng), angle(rng))); break;
      case 4: c.add(qc::sqrt_y(qubit(rng))); break;
      default: {
        if (n < 2) {
          c.add(qc::s(qubit(rng)));
          break;
        }
        int a = qubit(rng), b = qubit(rng);
        while (b == a) b = qubit(rng);
        c.add(rng() % 2 ? qc::cz(a, b) : qc::cx(a, b));
        break;
      }
    }
  }
  return c;
}

std::vector<std::uint64_t> random_bitstrings(int n, std::size_t count, std::mt19937_64& rng) {
  const std::uint64_t mask = n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
  std::vector<std::uint64_t> out(count);
  for (auto& v : out) v = rng() & mask;
  return out;
}

void expect_sweep_matches_refs(const ApproxBatchResult& sweep,
                               const std::vector<ApproxResult>& refs, const char* what) {
  ASSERT_EQ(sweep.raw.size(), refs.size()) << what;
  for (std::size_t o = 0; o < refs.size(); ++o) {
    EXPECT_EQ(refs[o].raw.real(), sweep.raw[o].real()) << what << " output " << o;
    EXPECT_EQ(refs[o].raw.imag(), sweep.raw[o].imag()) << what << " output " << o;
    ASSERT_EQ(refs[o].level_values.size(), sweep.level_values[o].size()) << what;
    for (std::size_t u = 0; u < refs[o].level_values.size(); ++u)
      EXPECT_EQ(refs[o].level_values[u], sweep.level_values[o][u])
          << what << " output " << o << " level " << u;
    ASSERT_EQ(refs[o].term_sums.size(), sweep.term_sums[o].size()) << what;
    for (std::size_t u = 0; u < refs[o].term_sums.size(); ++u)
      EXPECT_EQ(refs[o].term_sums[u], sweep.term_sums[o][u])
          << what << " output " << o << " level " << u;
  }
}

// --- the randomized property pass ---------------------------------------------

TEST(SweepProperties, RandomCircuitsBitIdenticalAcrossThreadsShardsCacheLevels) {
  constexpr std::size_t kCircuits = 50;
  for (std::size_t i = 0; i < kCircuits; ++i) {
    SCOPED_TRACE("circuit " + std::to_string(i));
    std::mt19937_64 rng(9000 + i);
    const int n = 2 + static_cast<int>(i % 5);  // 2..6 qubits
    const qc::Circuit circuit = random_circuit(n, rng);
    const std::size_t noises = 1 + i % 3;
    const bench::NoiseModel model =
        i % 2 ? bench::depolarizing_noise(0.01 + 0.01 * static_cast<double>(i % 4))
              : bench::realistic_noise();
    const ch::NoisyCircuit nc = bench::insert_noises(circuit, noises, model, 40 + i);

    ApproxOptions base;
    base.level = i % 3;
    base.eval = i % 4 == 3 ? sv_eval() : tn_eval();
    const std::size_t K = 1 + i % 5;
    std::vector<std::uint64_t> vb = random_bitstrings(n, K, rng);
    if (i % 4 == 0 && K >= 2) vb.back() = vb.front();  // duplicate in-batch

    // Per-bitstring reference: the bit-identity anchor for every variant.
    std::vector<ApproxResult> refs;
    refs.reserve(K);
    for (const std::uint64_t v : vb) refs.push_back(approximate_fidelity(nc, 0, v, base));

    PlanCache cache;  // cold on the first variant, warm afterwards
    for (const std::size_t threads : {1ul, 2ul, 7ul}) {
      for (const std::size_t shard : {std::size_t{1}, std::size_t{3}, K}) {
        for (const bool cached : {false, true}) {
          SweepOptions sopts;
          sopts.approx = base;
          sopts.approx.threads = threads;
          sopts.approx.plan_cache = cached ? &cache : nullptr;
          sopts.shard_outputs = shard;
          const ApproxBatchResult sweep = xeb_sweep(nc, 0, vb, sopts);
          const std::string what = "threads " + std::to_string(threads) + " shard " +
                                   std::to_string(shard) + (cached ? " cached" : "");
          expect_sweep_matches_refs(sweep, refs, what.c_str());
        }
      }
    }
  }
}

TEST(SweepProperties, LargeBitstringSetWithRaggedShards) {
  // K = 40 across shard 7 (non-dividing, multi-chunk stash/fold) and odd
  // thread counts; compared against approximate_fidelity_outputs (itself
  // anchored to the per-bitstring reference by the suite above and the
  // batch-output tests).
  const ch::NoisyCircuit nc = bench::insert_noises(
      bench::qaoa(16, 1, 77), 3, bench::depolarizing_noise(0.01), 501);
  std::mt19937_64 rng(77);
  const std::vector<std::uint64_t> vb = random_bitstrings(16, 40, rng);
  ApproxOptions base;
  base.level = 1;
  base.eval = tn_eval();
  const ApproxBatchResult ref = approximate_fidelity_outputs(nc, 0, vb, base);
  PlanCache cache;
  for (const std::size_t threads : {1ul, 3ul, 7ul}) {
    for (const std::size_t shard : {7ul, 13ul, 40ul}) {
      SweepOptions sopts;
      sopts.approx = base;
      sopts.approx.threads = threads;
      sopts.approx.plan_cache = &cache;
      sopts.shard_outputs = shard;
      const ApproxBatchResult sweep = xeb_sweep(nc, 0, vb, sopts);
      for (std::size_t o = 0; o < vb.size(); ++o) {
        EXPECT_EQ(ref.raw[o].real(), sweep.raw[o].real())
            << "threads " << threads << " shard " << shard << " output " << o;
        EXPECT_EQ(ref.raw[o].imag(), sweep.raw[o].imag())
            << "threads " << threads << " shard " << shard << " output " << o;
      }
    }
  }
}

TEST(SweepProperties, ProgressCountsTermsOnceAcrossShards) {
  const ch::NoisyCircuit nc = bench::insert_noises(
      bench::qaoa(16, 1, 77), 3, bench::depolarizing_noise(0.01), 503);
  std::mt19937_64 rng(78);
  const std::vector<std::uint64_t> vb = random_bitstrings(16, 9, rng);
  SweepOptions sopts;
  sopts.approx.level = 1;
  sopts.approx.eval = tn_eval();
  sopts.approx.threads = 4;
  sopts.shard_outputs = 2;  // 5 chunks: every term folds across 5 items
  std::vector<std::size_t> seen;
  std::mutex seen_mutex;
  sopts.approx.progress = [&](std::size_t done) {
    const std::lock_guard<std::mutex> lock(seen_mutex);
    seen.push_back(done);
  };
  xeb_sweep(nc, 0, vb, sopts);
  ASSERT_EQ(seen.size(), 1u + 3u * nc.noise_count());
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);
}

TEST(SweepProperties, WorkspaceBudgetFallbackStaysBitIdentical) {
  // A budget that admits the per-term plans but not the combined batch:
  // the engine must fall back to per-output session replay and keep every
  // value bit-identical, at any shard size.
  const ch::NoisyCircuit nc = bench::insert_noises(
      bench::qaoa(16, 1, 77), 3, bench::depolarizing_noise(0.01), 505);
  std::mt19937_64 rng(79);
  const std::vector<std::uint64_t> vb = random_bitstrings(16, 11, rng);
  ApproxOptions base;
  base.level = 1;
  base.eval = tn_eval();
  base.eval.tn.greedy_cost_weights = {1.0};
  std::vector<ApproxResult> refs;
  for (const std::uint64_t v : vb) refs.push_back(approximate_fidelity(nc, 0, v, base));

  // Budget = the per-term plan arena of the noise skeleton: per-output
  // session replay fits exactly, the combined batch does not.
  std::vector<qc::Gate> skeleton;
  for (const ch::Op& op : nc.ops()) {
    if (const qc::Gate* g = std::get_if<qc::Gate>(&op)) {
      skeleton.push_back(*g);
      continue;
    }
    const ch::NoiseOp& noise = std::get<ch::NoiseOp>(op);
    skeleton.push_back(noise.num_qubits() == 1
                           ? qc::u1q(noise.qubit, la::Matrix::identity(2))
                           : qc::u2q(noise.qubit, noise.qubit2, la::Matrix::identity(4)));
  }
  const tn::Network net = amplitude_network(16, skeleton, 0, 0, false);
  ApproxOptions budgeted = base;
  budgeted.eval.tn.max_workspace_elems =
      tn::ContractionPlan::compile(net, base.eval.tn).workspace_elems();

  for (const std::size_t shard : {3ul, 11ul}) {
    SweepOptions sopts;
    sopts.approx = budgeted;
    sopts.approx.threads = 2;
    sopts.shard_outputs = shard;
    const ApproxBatchResult sweep = xeb_sweep(nc, 0, vb, sopts);
    for (std::size_t o = 0; o < vb.size(); ++o) {
      EXPECT_EQ(refs[o].raw.real(), sweep.raw[o].real()) << "shard " << shard;
      EXPECT_EQ(refs[o].raw.imag(), sweep.raw[o].imag()) << "shard " << shard;
    }
  }
}

// --- sharded trajectory sweep -------------------------------------------------

TEST(SweepProperties, TrajectorySweepBitIdenticalAcrossShardsAndThreads) {
  // A 3x3 grid keeps the per-sample contractions small enough to afford
  // the full shard x thread x backend cross under the sanitizer jobs.
  const ch::NoisyCircuit nc = bench::insert_noises(
      bench::qaoa(9, 1, 5), 3, bench::depolarizing_noise(0.02), 31);
  std::mt19937_64 rng(80);
  std::vector<std::uint64_t> vb = random_bitstrings(9, 5, rng);
  vb.push_back(vb[2]);  // duplicate
  sim::ParallelOptions serial;
  serial.threads = 1;
  sim::ParallelOptions quad;
  quad.threads = 4;
  const std::size_t K = vb.size();

  for (const EvalOptions& eval : {tn_eval(), sv_eval()}) {
    std::vector<sim::TrajectoryResult> refs;
    for (const std::uint64_t v : vb)
      refs.push_back(trajectories_tn(nc, 0, v, 48, 7, serial, eval));
    for (const std::size_t shard : {std::size_t{1}, std::size_t{3}, K}) {
      for (const sim::ParallelOptions& popts : {serial, quad}) {
        const auto sweep = trajectories_tn_sweep(nc, 0, vb, 48, 7, popts, eval, shard);
        ASSERT_EQ(sweep.size(), K);
        for (std::size_t o = 0; o < K; ++o) {
          EXPECT_EQ(refs[o].mean, sweep[o].mean)
              << "shard " << shard << " threads " << popts.threads << " output " << o;
          EXPECT_EQ(refs[o].std_error, sweep[o].std_error)
              << "shard " << shard << " threads " << popts.threads << " output " << o;
        }
      }
    }
  }
}

// --- degenerate inputs across every output-batched API ------------------------

TEST(SweepProperties, EmptyBitstringSpansAreWellDefinedEverywhere) {
  const ch::NoisyCircuit nc = bench::insert_noises(
      bench::qaoa(16, 1, 7), 2, bench::depolarizing_noise(0.01), 11);
  sim::ParallelOptions popts;
  for (const EvalOptions& eval : {tn_eval(), sv_eval()}) {
    // batch_amplitudes: empty result, no compiled capacity-0 plan.
    EXPECT_TRUE(
        batch_amplitudes(16, nc.gates_only().gates(), 0, {}, false, eval).empty());

    // approximate_fidelity_outputs / xeb_sweep: bounds only.
    ApproxOptions aopts;
    aopts.level = 1;
    aopts.eval = eval;
    const ApproxBatchResult outputs = approximate_fidelity_outputs(nc, 0, {}, aopts);
    EXPECT_TRUE(outputs.values.empty());
    EXPECT_TRUE(outputs.raw.empty());
    EXPECT_EQ(outputs.contractions, 0u);
    EXPECT_GT(outputs.tight_error_bound, 0.0);

    SweepOptions sopts;
    sopts.approx = aopts;
    sopts.shard_outputs = 4;
    const ApproxBatchResult sweep = xeb_sweep(nc, 0, {}, sopts);
    EXPECT_TRUE(sweep.values.empty());
    EXPECT_EQ(sweep.contractions, 0u);
    EXPECT_GT(sweep.tight_error_bound, 0.0);

    // Trajectory sweeps: no outputs -> no estimates; zero samples -> K
    // empty estimates (and no capacity-0 plans on either path).
    EXPECT_TRUE(trajectories_tn_outputs(nc, 0, {}, 10, 7, popts, eval).empty());
    EXPECT_TRUE(trajectories_tn_sweep(nc, 0, {}, 10, 7, popts, eval).empty());
    const std::vector<std::uint64_t> vb{0, 1, 2};
    const auto zero = trajectories_tn_sweep(nc, 0, vb, 0, 7, popts, eval);
    ASSERT_EQ(zero.size(), vb.size());
    for (const sim::TrajectoryResult& r : zero) {
      EXPECT_EQ(r.samples, 0u);
      EXPECT_EQ(r.mean, 0.0);
      EXPECT_EQ(r.std_error, 0.0);
    }
  }
}

}  // namespace
}  // namespace noisim::core
