// Deterministic fault-injection coverage: NOISIM_FAULTS grammar, site
// firing semantics, the simulate() escalation matrix (every feasible
// backend pair recovers bitwise-identical to direct invocation of the
// survivor), run-time (not plan-time) TimeoutError escalation for the
// TN-capable backends, sweep-queue and trajectory-runner worker throws
// (leak- and deadlock-free teardown, bitwise-clean reruns), and the
// EnvFaultDrill CI hook that tolerates any env-armed fault.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bench_support/generators.hpp"
#include "core/approx.hpp"
#include "core/backend.hpp"
#include "fault/fault.hpp"
#include "sim/parallel.hpp"
#include "support/env.hpp"

namespace noisim::core {
namespace {

// Every fault armed in a test is disarmed on the way out, pass or fail, so
// cases stay independent (the fixture ends env-armed CI faults too -- the
// EnvFaultDrill below runs its faulted pass before this teardown).
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::disarm_all(); }
};

struct EnvGuard {
  const char* name;
  std::string saved;
  bool had = false;
  explicit EnvGuard(const char* n) : name(n) {
    if (const char* v = support::env_get(n)) {
      saved = v;
      had = true;
    }
  }
  ~EnvGuard() {
    if (had)
      ::setenv(name, saved.c_str(), 1);
    else
      ::unsetenv(name);
  }
};

// All six backends bid feasible on this circuit at this budget (asserted in
// the matrix test), which is what lets the escalation ladder walk every
// pair.
ch::NoisyCircuit all_backends_circuit() {
  return bench::insert_noises(bench::hf_vqe(6, 11), 2, bench::depolarizing_noise(0.05), 13);
}

SimulateOptions all_backends_options() {
  SimulateOptions opts;
  opts.error_budget = 5e-2;
  return opts;
}

// TnTrajectories wins this one (TN layer replay is ~4 orders cheaper than
// the 2^16 state-vector sweep), with SvTrajectories as the only other
// feasible bid: density is past its qubit cap, TDD past the memory budget,
// TnApprox past max_terms, MPS outside the exact-bond regime.
ch::NoisyCircuit tn_traj_circuit() {
  return bench::insert_noises(bench::qaoa(16, 1, 77), 6, bench::depolarizing_noise(0.1), 31);
}

SimulateOptions tn_traj_options() {
  SimulateOptions opts;
  opts.error_budget = 0.15;
  opts.max_terms = 10.0;
  opts.threads = 2;
  return opts;
}

// --- arming & grammar ----------------------------------------------------

TEST_F(FaultTest, ArmValidatesSiteAndNth) {
  try {
    fault::arm("no-such-site", 1);
    FAIL() << "expected LinalgError";
  } catch (const LinalgError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-site"), std::string::npos) << what;
    // The message lists the valid sites.
    EXPECT_NE(what.find("exec-step-mo"), std::string::npos) << what;
  }
  EXPECT_THROW(fault::arm("sweep-worker", 0), LinalgError);
}

TEST_F(FaultTest, SitesFireOnTheNthPokeExactlyOnce) {
  fault::arm("sweep-worker", 2);
  EXPECT_FALSE(fault::fired("sweep-worker"));
  EXPECT_NO_THROW(fault::poke("sweep-worker"));
  EXPECT_EQ(fault::hits("sweep-worker"), 1u);
  EXPECT_THROW(fault::poke("sweep-worker"), fault::FaultError);
  EXPECT_TRUE(fault::fired("sweep-worker"));
  // Dormant after firing: further pokes count but never throw again.
  EXPECT_NO_THROW(fault::poke("sweep-worker"));
  EXPECT_EQ(fault::hits("sweep-worker"), 3u);

  // Site-specific error types.
  fault::arm("exec-step-mo", 1);
  EXPECT_THROW(fault::poke("exec-step-mo"), MemoryOutError);
  fault::arm("exec-step-to", 1);
  EXPECT_THROW(fault::poke("exec-step-to"), TimeoutError);
}

TEST_F(FaultTest, DisarmedPokesAreNoOps) {
  fault::disarm_all();
  EXPECT_FALSE(fault::enabled());
  for (const std::string_view site : fault::known_sites())
    EXPECT_NO_THROW(fault::poke(site));
  // Unknown site names poke as no-ops even while another site is armed.
  fault::arm("plan-mo", 1);
  EXPECT_NO_THROW(fault::poke("definitely-not-a-site"));
}

TEST_F(FaultTest, EnvGrammarErrorsNameTheVariable) {
  EnvGuard guard("NOISIM_FAULTS");
  for (const char* bad :
       {"exec-step-mo", "exec-step-mo:", ":3", "unknown-site:1", "exec-step-mo:0",
        "exec-step-mo:x", "plan-to:1,,"}) {
    ::setenv("NOISIM_FAULTS", bad, 1);
    try {
      fault::arm_from_env();
      FAIL() << "expected LinalgError for NOISIM_FAULTS=\"" << bad << "\"";
    } catch (const LinalgError& e) {
      EXPECT_NE(std::string(e.what()).find("NOISIM_FAULTS"), std::string::npos) << e.what();
    }
  }

  ::setenv("NOISIM_FAULTS", "exec-step-mo:2,plan-to:1", 1);
  fault::arm_from_env();
  EXPECT_TRUE(fault::enabled());
  EXPECT_NO_THROW(fault::poke("exec-step-mo"));  // hit 1 of 2
  EXPECT_THROW(fault::poke("exec-step-mo"), MemoryOutError);
  EXPECT_THROW(fault::poke("plan-to"), TimeoutError);

  // arm_from_env layers on top of whatever is armed (it only re-reads the
  // variable), so clear the sites above before checking the unset case.
  ::unsetenv("NOISIM_FAULTS");
  fault::disarm_all();
  fault::arm_from_env();
  EXPECT_FALSE(fault::enabled());
}

// --- simulate() escalation matrix ----------------------------------------

TEST_F(FaultTest, EscalationRecoversThroughEveryBackendPairBitIdentical) {
  const ch::NoisyCircuit nc = all_backends_circuit();
  const SimulateOptions opts = all_backends_options();
  const SimResult base = simulate(nc, 0, 0, opts);

  std::vector<BackendKind> feasible;
  for (const BackendChoice& c : base.considered)
    if (c.estimate.feasible) feasible.push_back(c.kind);
  ASSERT_EQ(feasible.size(), default_backends().size())
      << "the matrix workload must keep every backend feasible";

  for (std::size_t k = 1; k <= feasible.size(); ++k) {
    // Fail the first k winners at their run() entry.
    fault::disarm_all();
    for (std::size_t i = 0; i < k; ++i)
      fault::arm(std::string("run-") + backend_name(feasible[i]), 1);

    if (k == feasible.size()) {
      // Every backend down: the failure lists the injected escalations.
      try {
        simulate(nc, 0, 0, opts);
        FAIL() << "expected LinalgError when every backend is failed";
      } catch (const LinalgError& e) {
        EXPECT_NE(std::string(e.what()).find("injected fault"), std::string::npos)
            << e.what();
      }
      break;
    }

    const SimResult r = simulate(nc, 0, 0, opts);
    EXPECT_EQ(r.backend, feasible[k]) << "k=" << k;
    ASSERT_EQ(r.escalations.size(), k) << "k=" << k;
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(r.escalations[i].first, feasible[i]);
      EXPECT_NE(r.escalations[i].second.find(std::string("run-") +
                                             backend_name(feasible[i])),
                std::string::npos)
          << r.escalations[i].second;
    }

    // Bit-identity with direct invocation of the survivor.
    fault::disarm_all();
    SimulateOptions forced = opts;
    forced.force_backend = feasible[k];
    const SimResult direct = simulate(nc, 0, 0, forced);
    EXPECT_EQ(r.value, direct.value) << "survivor " << backend_name(feasible[k]);
    EXPECT_EQ(r.error_bound, direct.error_bound);
    EXPECT_EQ(r.traj.samples, direct.traj.samples);
  }
}

// Satellite: run-time (not plan-time) TimeoutError. exec-step-to fires from
// inside ContractionPlan::execute / BatchedPlan::execute on the first
// executed step -- plans compiled clean, the timeout surfaces mid-replay --
// and simulate() must record the escalation and recover.
TEST_F(FaultTest, RunTimeTimeoutEscalatesTnApproxAndRecovers) {
  const ch::NoisyCircuit nc = all_backends_circuit();
  SimulateOptions opts = all_backends_options();
  // At 6 qubits the Auto crossover picks the state-vector term path, which
  // never replays a contraction plan; force the TN executor so the
  // exec-step site is actually on the winner's hot path.
  opts.eval.backend = EvalOptions::Backend::TensorNetwork;
  const SimResult base = simulate(nc, 0, 0, opts);
  ASSERT_EQ(base.backend, BackendKind::TnApprox) << "workload drifted";

  fault::arm("exec-step-to", 1);
  const SimResult r = simulate(nc, 0, 0, opts);
  EXPECT_TRUE(fault::fired("exec-step-to"));
  ASSERT_GE(r.escalations.size(), 1u);
  EXPECT_EQ(r.escalations[0].first, BackendKind::TnApprox);
  EXPECT_NE(r.escalations[0].second.find("exec-step-to"), std::string::npos)
      << r.escalations[0].second;

  fault::disarm_all();
  SimulateOptions forced = opts;
  forced.force_backend = r.backend;
  EXPECT_EQ(r.value, simulate(nc, 0, 0, forced).value);
}

TEST_F(FaultTest, RunTimeTimeoutEscalatesTnTrajectoriesAndRecovers) {
  const ch::NoisyCircuit nc = tn_traj_circuit();
  const SimulateOptions opts = tn_traj_options();
  const SimResult base = simulate(nc, 0, 0, opts);
  ASSERT_EQ(base.backend, BackendKind::TnTrajectories) << "workload drifted";

  fault::arm("exec-step-to", 1);
  const SimResult r = simulate(nc, 0, 0, opts);
  EXPECT_TRUE(fault::fired("exec-step-to"));
  EXPECT_EQ(r.backend, BackendKind::SvTrajectories);
  ASSERT_GE(r.escalations.size(), 1u);
  EXPECT_EQ(r.escalations[0].first, BackendKind::TnTrajectories);
  EXPECT_NE(r.escalations[0].second.find("exec-step-to"), std::string::npos)
      << r.escalations[0].second;

  fault::disarm_all();
  SimulateOptions forced = opts;
  forced.force_backend = BackendKind::SvTrajectories;
  EXPECT_EQ(r.value, simulate(nc, 0, 0, forced).value);
}

// Plan-time faults rule a backend out during ESTIMATION (the bid records
// the injected reason) and selection proceeds without it.
TEST_F(FaultTest, PlanTimeFaultRulesTheBidderOutDuringEstimation) {
  const ch::NoisyCircuit nc = all_backends_circuit();
  SimulateOptions opts = all_backends_options();
  // Force the TN path (see above): plan compilation -- where the plan-mo /
  // plan-to sites live -- only happens for the tensor-network executor.
  opts.eval.backend = EvalOptions::Backend::TensorNetwork;

  for (const char* site : {"plan-mo", "plan-to"}) {
    fault::disarm_all();
    fault::arm(site, 1);
    const SimResult r = simulate(nc, 0, 0, opts);
    EXPECT_TRUE(fault::fired(site)) << site;
    bool saw_injected_bid = false;
    for (const BackendChoice& c : r.considered)
      if (c.estimate.reason.find(site) != std::string::npos) saw_injected_bid = true;
    EXPECT_TRUE(saw_injected_bid) << site;
    EXPECT_TRUE(r.escalations.empty()) << site;  // ruled out, not escalated
  }
}

// The generic drill behind the CI matrix: for EVERY site, a simulate() call
// under an armed fault either recovers (escalation) or throws one of the
// documented error types -- never hangs, never corrupts state -- and a
// clean rerun is bitwise equal to the unfaulted baseline.
TEST_F(FaultTest, EverySiteEitherRecoversOrThrowsDocumentedAndRerunsClean) {
  const ch::NoisyCircuit nc = all_backends_circuit();
  const SimulateOptions opts = all_backends_options();
  fault::disarm_all();
  const SimResult base = simulate(nc, 0, 0, opts);

  for (const std::string_view site : fault::known_sites()) {
    for (const std::uint64_t nth : {std::uint64_t{1}, std::uint64_t{3}}) {
      fault::disarm_all();
      fault::arm(site, nth);
      try {
        simulate(nc, 0, 0, opts);
      } catch (const MemoryOutError&) {
      } catch (const TimeoutError&) {
      } catch (const fault::FaultError&) {
      } catch (const LinalgError&) {
      }
      fault::disarm_all();
      const SimResult clean = simulate(nc, 0, 0, opts);
      EXPECT_EQ(clean.value, base.value) << "after " << site << ":" << nth;
      EXPECT_EQ(clean.backend, base.backend) << "after " << site << ":" << nth;
    }
  }
}

// --- sweep queue under worker throw --------------------------------------

TEST_F(FaultTest, SweepWorkerThrowDrainsCleanAndRerunsBitIdentical) {
  const ch::NoisyCircuit nc =
      bench::insert_noises(bench::qaoa(16, 1, 77), 3, bench::depolarizing_noise(0.01), 601);
  std::vector<std::uint64_t> outputs(16);
  for (std::size_t o = 0; o < outputs.size(); ++o) outputs[o] = o * 37 % 65536;
  SweepOptions sopts;
  sopts.approx.level = 1;
  sopts.approx.threads = 2;
  sopts.shard_outputs = 4;

  const ApproxBatchResult base = xeb_sweep(nc, 0, outputs, sopts);

  // First item and a mid-queue item: both must unwind without deadlock
  // (buffer-pool integrity is asserted inside the engine's teardown), and a
  // rerun on the SAME process state must be bitwise equal.
  for (const std::uint64_t nth : {std::uint64_t{1}, std::uint64_t{3}}) {
    fault::arm("sweep-worker", nth);
    EXPECT_THROW(xeb_sweep(nc, 0, outputs, sopts), fault::FaultError);
    EXPECT_TRUE(fault::fired("sweep-worker"));
    // The fired site is dormant now; no disarm needed for the rerun.
    const ApproxBatchResult rerun = xeb_sweep(nc, 0, outputs, sopts);
    EXPECT_FALSE(rerun.cancelled);
    ASSERT_EQ(rerun.values.size(), base.values.size());
    for (std::size_t o = 0; o < outputs.size(); ++o)
      EXPECT_EQ(rerun.values[o], base.values[o]) << "nth=" << nth << " output " << o;
    fault::disarm_all();
  }
}

// Control errors (deadline, memory ceiling) firing inside a worker's plan
// executor go down the same abort path as generic worker throws; the sweep
// must surface the control error OBJECT that actually fired -- the queue
// stashes the explicit exception_ptr and finish() rethrows it -- never a
// generic "a worker stopped" failure, and a clean rerun stays bitwise
// equal.
TEST_F(FaultTest, SweepControlErrorTypeSurvivesTheAbortPath) {
  const ch::NoisyCircuit nc =
      bench::insert_noises(bench::qaoa(16, 1, 77), 3, bench::depolarizing_noise(0.01), 601);
  std::vector<std::uint64_t> outputs(16);
  for (std::size_t o = 0; o < outputs.size(); ++o) outputs[o] = o * 37 % 65536;
  SweepOptions sopts;
  sopts.approx.level = 1;
  sopts.approx.threads = 2;
  sopts.shard_outputs = 4;

  const ApproxBatchResult base = xeb_sweep(nc, 0, outputs, sopts);

  struct Case {
    const char* site;
    void (*expect)(const ch::NoisyCircuit&, const std::vector<std::uint64_t>&,
                   const SweepOptions&);
  };
  const Case cases[] = {
      {"exec-step-to",
       [](const ch::NoisyCircuit& c, const std::vector<std::uint64_t>& out,
          const SweepOptions& so) { EXPECT_THROW(xeb_sweep(c, 0, out, so), TimeoutError); }},
      {"exec-step-mo",
       [](const ch::NoisyCircuit& c, const std::vector<std::uint64_t>& out,
          const SweepOptions& so) { EXPECT_THROW(xeb_sweep(c, 0, out, so), MemoryOutError); }},
  };
  for (const Case& kase : cases) {
    fault::arm(kase.site, 3);
    kase.expect(nc, outputs, sopts);
    EXPECT_TRUE(fault::fired(kase.site)) << kase.site;
    const ApproxBatchResult rerun = xeb_sweep(nc, 0, outputs, sopts);
    EXPECT_FALSE(rerun.cancelled);
    ASSERT_EQ(rerun.values.size(), base.values.size());
    for (std::size_t o = 0; o < outputs.size(); ++o)
      EXPECT_EQ(rerun.values[o], base.values[o]) << kase.site << " output " << o;
    fault::disarm_all();
  }
}

// --- trajectory runners under worker throw -------------------------------

TEST_F(FaultTest, TrajectoryChunkThrowPropagatesAndRerunsBitIdentical) {
  const sim::Sampler sampler = [](std::mt19937_64& rng) {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    return u(rng);
  };
  sim::ParallelOptions popts;
  popts.threads = 2;
  const sim::TrajectoryResult base = sim::run_trajectories(512, 7, sampler, popts);

  for (const std::uint64_t nth : {std::uint64_t{1}, std::uint64_t{4}}) {
    fault::arm("traj-chunk", nth);
    EXPECT_THROW(sim::run_trajectories(512, 7, sampler, popts), fault::FaultError);
    EXPECT_TRUE(fault::fired("traj-chunk"));
    const sim::TrajectoryResult rerun = sim::run_trajectories(512, 7, sampler, popts);
    EXPECT_EQ(rerun.mean, base.mean) << "nth=" << nth;
    EXPECT_EQ(rerun.std_error, base.std_error) << "nth=" << nth;
    EXPECT_EQ(rerun.samples, base.samples) << "nth=" << nth;
    fault::disarm_all();
  }
}

// --- CI drill ------------------------------------------------------------

// Run under NOISIM_FAULTS=<whatever> by the CI fault matrix: execute the
// standard workload tolerating any injected (documented) failure, then
// disarm and prove the process state is clean by matching the unfaulted
// reference bitwise. Also runnable with no env var at all.
TEST_F(FaultTest, EnvFaultDrill) {
  const ch::NoisyCircuit nc = all_backends_circuit();
  const SimulateOptions opts = all_backends_options();

  try {
    simulate(nc, 0, 0, opts);
  } catch (const MemoryOutError&) {
  } catch (const TimeoutError&) {
  } catch (const fault::FaultError&) {
  } catch (const LinalgError&) {
  }

  std::vector<std::uint64_t> outputs(8);
  for (std::size_t o = 0; o < outputs.size(); ++o) outputs[o] = o;
  SweepOptions sopts;
  sopts.approx.level = 1;
  sopts.approx.threads = 2;
  try {
    xeb_sweep(nc, 0, outputs, sopts);
  } catch (const MemoryOutError&) {
  } catch (const TimeoutError&) {
  } catch (const fault::FaultError&) {
  } catch (const LinalgError&) {
  }

  fault::disarm_all();
  const SimResult clean = simulate(nc, 0, 0, opts);
  const SimResult reference = simulate(nc, 0, 0, opts);
  EXPECT_EQ(clean.value, reference.value);
  EXPECT_EQ(clean.backend, reference.backend);
  const ApproxBatchResult sweep_a = xeb_sweep(nc, 0, outputs, sopts);
  const ApproxBatchResult sweep_b = xeb_sweep(nc, 0, outputs, sopts);
  ASSERT_EQ(sweep_a.values.size(), sweep_b.values.size());
  for (std::size_t o = 0; o < outputs.size(); ++o)
    EXPECT_EQ(sweep_a.values[o], sweep_b.values[o]);
}

}  // namespace
}  // namespace noisim::core
