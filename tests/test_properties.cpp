// Cross-cutting property tests: algebraic invariants that must hold across
// randomly sampled inputs, spanning several modules at once.
#include <gtest/gtest.h>

#include <random>

#include "bench_support/generators.hpp"
#include "channels/catalog.hpp"
#include "circuit/qasm.hpp"
#include "circuit/simplify.hpp"
#include "core/approx.hpp"
#include "core/atpg.hpp"
#include "core/superop.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "mps/mps.hpp"
#include "sim/density.hpp"
#include "sim/statevector.hpp"

namespace noisim {
namespace {

ch::Channel random_channel(std::mt19937_64& rng) {
  // Random CPTP channel: Stinespring with a Haar 4x4 unitary on system (x)
  // environment, tracing the environment => 2 Kraus operators.
  const la::Matrix u = la::random_unitary(4, rng);
  la::Matrix e0(2, 2), e1(2, 2);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j) {
      // Environment starts in |0>: E_k[i,j] = <i, k| U |j, 0>.
      e0(i, j) = u(i * 2 + 0, j * 2 + 0);
      e1(i, j) = u(i * 2 + 1, j * 2 + 0);
    }
  return ch::Channel("random_stinespring", {e0, e1});
}

class RandomChannels : public ::testing::TestWithParam<int> {
 protected:
  std::mt19937_64 rng{static_cast<std::uint64_t>(GetParam()) * 7919 + 13};
};

TEST_P(RandomChannels, StinespringConstructionIsCptp) {
  const ch::Channel c = random_channel(rng);
  EXPECT_LT(c.completeness_defect(), 1e-10);
}

TEST_P(RandomChannels, SuperoperatorOfCompositionIsProduct) {
  const ch::Channel a = random_channel(rng);
  const ch::Channel b = random_channel(rng);
  const la::Matrix lhs = ch::compose(b, a).superoperator();
  const la::Matrix rhs = b.superoperator() * a.superoperator();
  EXPECT_TRUE(lhs.approx_equal(rhs, 1e-10));
}

TEST_P(RandomChannels, SplitOfRandomChannelReconstructs) {
  const ch::Channel c = random_channel(rng);
  const core::SplitNoise split = core::split_noise(c);
  EXPECT_TRUE(split.reconstruct().approx_equal(c.superoperator(), 1e-9));
  // Lemma 2 with the channel's own rate.
  EXPECT_LE(split.dominant_term_error(), 4.0 * c.noise_rate() + 1e-9);
}

TEST_P(RandomChannels, NoiseRateIsUnitaryInvariantUnderIdentityCheck) {
  // rate(E) = 0 iff E is the identity channel; random channels are not.
  const ch::Channel c = random_channel(rng);
  EXPECT_GE(c.noise_rate(), 0.0);
  EXPECT_NEAR(ch::unitary_channel(la::Matrix::identity(2)).noise_rate(), 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChannels, ::testing::Range(0, 10));

class RateMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(RateMonotonicity, CatalogRatesGrowWithParameter) {
  const double lo = 0.01, hi = 0.05;
  switch (GetParam()) {
    case 0:
      EXPECT_LT(ch::depolarizing(lo).noise_rate(), ch::depolarizing(hi).noise_rate());
      break;
    case 1:
      EXPECT_LT(ch::bit_flip(lo).noise_rate(), ch::bit_flip(hi).noise_rate());
      break;
    case 2:
      EXPECT_LT(ch::phase_flip(lo).noise_rate(), ch::phase_flip(hi).noise_rate());
      break;
    case 3:
      EXPECT_LT(ch::amplitude_damping(lo).noise_rate(), ch::amplitude_damping(hi).noise_rate());
      break;
    case 4:
      EXPECT_LT(ch::phase_damping(lo).noise_rate(), ch::phase_damping(hi).noise_rate());
      break;
    default:
      EXPECT_LT(ch::two_qubit_depolarizing(lo).noise_rate(),
                ch::two_qubit_depolarizing(hi).noise_rate());
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(Channels, RateMonotonicity, ::testing::Range(0, 6));

// --- circuit-level properties --------------------------------------------------

qc::Circuit random_circuit(int n, int gates, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> q(0, n - 1);
  std::uniform_int_distribution<int> kind(0, 6);
  std::uniform_real_distribution<double> angle(-3.0, 3.0);
  qc::Circuit c(n);
  for (int i = 0; i < gates; ++i) {
    switch (kind(rng)) {
      case 0: c.add(qc::h(q(rng))); break;
      case 1: c.add(qc::t(q(rng))); break;
      case 2: c.add(qc::rx(q(rng), angle(rng))); break;
      case 3: c.add(qc::rz(q(rng), angle(rng))); break;
      case 4: {
        const int a = q(rng);
        c.add(qc::cphase(a, (a + 1) % n, angle(rng)));
        break;
      }
      default: {
        int a = q(rng), b = q(rng);
        if (a == b) b = (a + 1) % n;
        c.add(qc::cz(a, b));
      }
    }
  }
  return c;
}

class RandomCircuits : public ::testing::TestWithParam<int> {};

TEST_P(RandomCircuits, AdjointComposesToIdentity) {
  const qc::Circuit c = random_circuit(4, 20, static_cast<std::uint64_t>(GetParam()));
  qc::Circuit cc = c;
  cc.append(c.adjoint());
  EXPECT_TRUE(qc::circuit_unitary(cc).is_identity(1e-9));
}

TEST_P(RandomCircuits, SimplifyNeverChangesTheUnitary) {
  const qc::Circuit c = random_circuit(4, 24, static_cast<std::uint64_t>(GetParam()) + 40);
  const qc::Circuit reduced = qc::cancel_inverse_pairs(c);
  EXPECT_TRUE(qc::circuit_unitary(reduced).approx_equal(qc::circuit_unitary(c), 1e-9));
}

TEST_P(RandomCircuits, MpsAndStatevectorAndTnAgree) {
  const int n = 4;
  const qc::Circuit c = random_circuit(n, 18, static_cast<std::uint64_t>(GetParam()) + 80);
  sim::Statevector sv(n);
  sv.apply_circuit(c);
  mps::MpsState m(n, {64, 1e-14});
  m.apply_circuit(c);
  core::EvalOptions tn;
  tn.backend = core::EvalOptions::Backend::TensorNetwork;
  for (std::uint64_t b : {0ull, 5ull, 11ull, 15ull}) {
    const cplx ref = sv.amplitude(b);
    EXPECT_TRUE(approx_equal(m.amplitude(b), ref, 1e-9));
    EXPECT_TRUE(approx_equal(core::amplitude(n, c.gates(), 0, b, false, tn), ref, 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuits, ::testing::Range(0, 10));

// --- end-to-end physical invariants of the approximation ------------------------

class PhysicalInvariants : public ::testing::TestWithParam<int> {};

TEST_P(PhysicalInvariants, ExactFidelityIsAProbability) {
  const qc::Circuit c = bench::qaoa_grid(2, 3, 1, static_cast<std::uint64_t>(GetParam()));
  const ch::NoisyCircuit nc =
      bench::insert_noises(c, 5, bench::realistic_noise(1e-2), GetParam() + 1u);
  const double f = sim::exact_fidelity_mm(nc, 0, 0);
  EXPECT_GE(f, -1e-12);
  EXPECT_LE(f, 1.0 + 1e-12);
}

TEST_P(PhysicalInvariants, ApproximationImaginaryPartIsRoundoff) {
  const qc::Circuit c = bench::qaoa_grid(2, 3, 1, static_cast<std::uint64_t>(GetParam()) + 9);
  const ch::NoisyCircuit nc =
      bench::insert_noises(c, 4, bench::realistic_noise(1e-2), GetParam() + 2u);
  core::ApproxOptions opts;
  opts.level = nc.noise_count();
  const core::ApproxResult r = core::approximate_fidelity(nc, 0, 0, opts);
  EXPECT_LT(std::abs(r.raw.imag()), 1e-9);
}

TEST_P(PhysicalInvariants, TightBoundHoldsOnIdealOutputWorkloads) {
  const qc::Circuit c = bench::qaoa_grid(2, 2, 1, static_cast<std::uint64_t>(GetParam()) + 17);
  const ch::NoisyCircuit nc = core::with_ideal_output_projector(
      bench::insert_noises(c, 4, bench::realistic_noise(8e-3), GetParam() + 3u));
  const double exact = sim::exact_fidelity_mm(nc, 0, 0);
  core::ApproxOptions opts;
  opts.level = 1;
  const core::ApproxResult r = core::approximate_fidelity(nc, 0, 0, opts);
  EXPECT_LE(std::abs(r.value - exact), r.tight_error_bound + 1e-12);
  EXPECT_LE(r.tight_error_bound, r.error_bound + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhysicalInvariants, ::testing::Range(0, 8));

// --- ATPG -----------------------------------------------------------------------

TEST(Atpg, NoiselessCircuitEscapesAllTests) {
  const qc::Circuit c = bench::hf_vqe(4, 3);
  const ch::NoisyCircuit clean(c);
  core::ApproxOptions opts;
  opts.level = 0;
  EXPECT_NEAR(core::fault_detection_probability(clean, 0b0101, opts), 0.0, 1e-9);
}

TEST(Atpg, DetectionProbabilityMatchesExactComplement) {
  qc::Circuit c(3);
  c.add(qc::h(0)).add(qc::cx(0, 1)).add(qc::ry(2, 0.9)).add(qc::cz(1, 2));
  ch::NoisyCircuit nc(3);
  for (std::size_t i = 0; i < c.gates().size(); ++i) {
    nc.add_gate(c.gates()[i]);
    if (i == 1) nc.add_noise(1, ch::amplitude_damping(0.3));
  }
  // Exact escape probability via density matrix with v = U|t>.
  const std::uint64_t t = 0b010;
  sim::Statevector ideal = sim::Statevector::basis(3, t);
  ideal.apply_circuit(c);
  sim::DensityMatrix dm(3);
  dm = sim::DensityMatrix::from_statevector(sim::Statevector::basis(3, t));
  dm.evolve(nc);
  const double escape = dm.fidelity(ideal.to_vector());

  core::ApproxOptions opts;
  opts.level = nc.noise_count();  // exact
  EXPECT_NEAR(core::fault_detection_probability(nc, t, opts), 1.0 - escape, 1e-9);
}

TEST(Atpg, BestPatternBeatsOrMatchesAllCandidates) {
  const qc::Circuit c = bench::hf_vqe(4, 9);
  ch::NoisyCircuit nc(4);
  for (std::size_t i = 0; i < c.gates().size(); ++i) {
    nc.add_gate(c.gates()[i]);
    if (i == 5) nc.add_noise(c.gates()[i].qubits[0], ch::amplitude_damping(0.4));
  }
  core::ApproxOptions opts;
  opts.level = 2;
  const std::vector<std::uint64_t> candidates{0b0000, 0b1111, 0b1010, 0b0101};
  const core::TestPatternResult r = core::best_test_pattern(nc, candidates, opts);
  for (double p : r.all) EXPECT_LE(p, r.detection_probability + 1e-12);
  EXPECT_GT(r.detection_probability, 0.0);
}

TEST(Atpg, RejectsEmptyCandidates) {
  ch::NoisyCircuit nc(1);
  nc.add_gate(qc::h(0));
  EXPECT_THROW(core::best_test_pattern(nc, {}), LinalgError);
}

// --- QASM round-trip property over random circuits ------------------------------

class QasmRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(QasmRoundTrip, PreservesSemantics) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 500);
  std::uniform_int_distribution<int> q(0, 3);
  std::uniform_real_distribution<double> angle(-3.0, 3.0);
  qc::Circuit c(4);
  for (int i = 0; i < 16; ++i) {
    switch (i % 6) {
      case 0: c.add(qc::h(q(rng))); break;
      case 1: c.add(qc::rz(q(rng), angle(rng))); break;
      case 2: c.add(qc::ry(q(rng), angle(rng))); break;
      case 3: c.add(qc::t(q(rng))); break;
      case 4: {
        int a = q(rng), b = q(rng);
        if (a == b) b = (a + 1) % 4;
        c.add(qc::cx(a, b));
        break;
      }
      default: {
        int a = q(rng), b = q(rng);
        if (a == b) b = (a + 1) % 4;
        c.add(qc::zz(a, b, angle(rng)));
      }
    }
  }
  const qc::Circuit back = qc::from_qasm(qc::to_qasm(c));
  EXPECT_TRUE(qc::circuit_unitary(back).approx_equal(qc::circuit_unitary(c), 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QasmRoundTrip, ::testing::Range(0, 8));

}  // namespace
}  // namespace noisim
