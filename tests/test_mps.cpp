// Tests for the MPS simulator and MPS trajectories.
#include <gtest/gtest.h>

#include <random>

#include "bench_support/generators.hpp"
#include "channels/catalog.hpp"
#include "mps/mps.hpp"
#include "mps/mps_trajectories.hpp"
#include "sim/density.hpp"
#include "sim/statevector.hpp"

namespace noisim::mps {
namespace {

qc::Circuit random_circuit(int n, int gates, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> q(0, n - 1);
  std::uniform_int_distribution<int> kind(0, 5);
  std::uniform_real_distribution<double> angle(-3.0, 3.0);
  qc::Circuit c(n);
  for (int i = 0; i < gates; ++i) {
    switch (kind(rng)) {
      case 0: c.add(qc::h(q(rng))); break;
      case 1: c.add(qc::t(q(rng))); break;
      case 2: c.add(qc::rx(q(rng), angle(rng))); break;
      case 3: c.add(qc::ry(q(rng), angle(rng))); break;
      default: {
        int a = q(rng), b = q(rng);
        if (a == b) b = (a + 1) % n;
        c.add(qc::cz(a, b));
      }
    }
  }
  return c;
}

TEST(Mps, InitialStateIsZeroKet) {
  MpsState s(4);
  EXPECT_TRUE(approx_equal(s.amplitude(0), cplx{1.0, 0.0}));
  EXPECT_TRUE(approx_equal(s.amplitude(5), cplx{0.0, 0.0}));
  EXPECT_NEAR(s.norm2(), 1.0, 1e-12);
  EXPECT_EQ(s.max_bond_dim(), 1u);
}

TEST(Mps, BasisStateAmplitudes) {
  const MpsState s = MpsState::basis(4, 0b1010);
  EXPECT_TRUE(approx_equal(s.amplitude(0b1010), cplx{1.0, 0.0}));
  EXPECT_TRUE(approx_equal(s.amplitude(0b1000), cplx{0.0, 0.0}));
}

TEST(Mps, SingleQubitGatesKeepBondOne) {
  MpsState s(5);
  for (int q = 0; q < 5; ++q) s.apply_1q(qc::h(q).matrix(), q);
  EXPECT_EQ(s.max_bond_dim(), 1u);
  EXPECT_NEAR(std::abs(s.amplitude(0)), std::pow(0.5, 2.5), 1e-12);
}

TEST(Mps, GhzStateHasBondTwo) {
  MpsState s(6);
  s.apply_gate(qc::h(0));
  for (int i = 0; i + 1 < 6; ++i) s.apply_gate(qc::cx(i, i + 1));
  EXPECT_EQ(s.max_bond_dim(), 2u);
  EXPECT_NEAR(std::abs(s.amplitude(0)), 1 / std::numbers::sqrt2, 1e-12);
  EXPECT_NEAR(std::abs(s.amplitude((1u << 6) - 1)), 1 / std::numbers::sqrt2, 1e-12);
  EXPECT_NEAR(std::abs(s.amplitude(1)), 0.0, 1e-12);
  EXPECT_NEAR(s.truncation_weight(), 0.0, 1e-15);
}

class MpsVsStatevector : public ::testing::TestWithParam<int> {};

TEST_P(MpsVsStatevector, ExactWithAmpleBond) {
  const int n = 5;
  const qc::Circuit c = random_circuit(n, 25, static_cast<std::uint64_t>(GetParam()));
  MpsOptions opts;
  opts.max_bond = 64;  // >= 2^(n/2), exact
  MpsState s(n, opts);
  s.apply_circuit(c);
  sim::Statevector sv(n);
  sv.apply_circuit(c);
  for (std::uint64_t b = 0; b < (1u << n); b += 3)
    EXPECT_TRUE(approx_equal(s.amplitude(b), sv.amplitude(b), 1e-9)) << "b=" << b;
  EXPECT_NEAR(s.truncation_weight(), 0.0, 1e-12);
}

TEST_P(MpsVsStatevector, NonAdjacentGatesRouteCorrectly) {
  const int n = 5;
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 100);
  std::uniform_real_distribution<double> angle(-2.0, 2.0);
  qc::Circuit c(n);
  c.add(qc::h(0)).add(qc::h(4));
  c.add(qc::cz(0, 4)).add(qc::cx(4, 1)).add(qc::zz(3, 0, angle(rng)));
  c.add(qc::cphase(2, 0, angle(rng)));
  MpsState s(n, {64, 1e-14});
  s.apply_circuit(c);
  sim::Statevector sv(n);
  sv.apply_circuit(c);
  for (std::uint64_t b = 0; b < (1u << n); ++b)
    EXPECT_TRUE(approx_equal(s.amplitude(b), sv.amplitude(b), 1e-9)) << "b=" << b;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MpsVsStatevector, ::testing::Range(0, 8));

TEST(Mps, TruncationReportsDiscardedWeight) {
  // A deep entangling circuit at chi = 2 must truncate.
  const qc::Circuit c = random_circuit(6, 60, 7);
  MpsOptions tight;
  tight.max_bond = 2;
  MpsState s(6, tight);
  s.apply_circuit(c);
  EXPECT_GT(s.truncation_weight(), 1e-6);
  EXPECT_LE(s.max_bond_dim(), 2u);
}

TEST(Mps, TruncationErrorShrinksWithBond) {
  const int n = 6;
  const qc::Circuit c = random_circuit(n, 40, 9);
  sim::Statevector sv(n);
  sv.apply_circuit(c);

  double prev_err = 1e9;
  for (std::size_t chi : {2u, 4u, 8u, 16u}) {
    MpsState s(n, {chi, 1e-14});
    s.apply_circuit(c);
    double err = 0.0;
    for (std::uint64_t b = 0; b < (1u << n); ++b)
      err = std::max(err, std::abs(s.amplitude(b) - sv.amplitude(b)));
    EXPECT_LE(err, prev_err + 1e-12) << "chi=" << chi;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-9);  // chi = 16 >= 2^3 is exact for 6 qubits
}

TEST(Mps, InnerProductMatchesDense) {
  const qc::Circuit c1 = random_circuit(4, 15, 11);
  const qc::Circuit c2 = random_circuit(4, 15, 12);
  MpsState a(4), b(4);
  a.apply_circuit(c1);
  b.apply_circuit(c2);
  sim::Statevector va(4), vb(4);
  va.apply_circuit(c1);
  vb.apply_circuit(c2);
  EXPECT_TRUE(approx_equal(a.inner(b), va.inner(vb), 1e-9));
}

TEST(Mps, NormalizeAfterNonUnitary) {
  MpsState s(3);
  s.apply_gate(qc::h(0));
  la::Matrix proj{{1, 0}, {0, 0}};
  s.apply_1q(proj, 0);
  EXPECT_NEAR(s.norm2(), 0.5, 1e-12);
  s.normalize();
  EXPECT_NEAR(s.norm2(), 1.0, 1e-12);
}

TEST(Mps, QaoaGridRunsAtModestBond) {
  const qc::Circuit c = bench::qaoa_grid(3, 3, 1, 21);
  MpsState s(9, {32, 1e-12});
  s.apply_circuit(c);
  EXPECT_NEAR(s.norm2(), 1.0, 1e-6);
  EXPECT_GE(s.max_bond_dim(), 2u);
}

// --- MPS trajectories -----------------------------------------------------------

TEST(MpsTrajectories, AgreesWithDensityMatrix) {
  const qc::Circuit c = random_circuit(4, 12, 31);
  ch::NoisyCircuit nc(4);
  const auto& gs = c.gates();
  for (std::size_t i = 0; i < gs.size(); ++i) {
    nc.add_gate(gs[i]);
    if (i == 3) nc.add_noise(1, ch::depolarizing(0.15));
    if (i == 8) nc.add_noise(2, ch::amplitude_damping(0.2));
  }
  const double exact = sim::exact_fidelity_mm(nc, 0, 0);
  std::mt19937_64 rng(5);
  const sim::TrajectoryResult r = trajectories_mps(nc, 0, 0, 2500, rng, {32, 1e-14});
  EXPECT_NEAR(r.mean, exact, 5.0 * r.std_error + 1e-6);
}

TEST(MpsTrajectories, HandlesTwoQubitNoise) {
  qc::Circuit c(3);
  c.add(qc::h(0)).add(qc::cx(0, 1)).add(qc::cx(1, 2));
  ch::NoisyCircuit nc(3);
  for (std::size_t i = 0; i < c.gates().size(); ++i) {
    nc.add_gate(c.gates()[i]);
    if (i == 1) nc.add_noise_2q(0, 1, ch::two_qubit_depolarizing(0.2));
  }
  const double exact = sim::exact_fidelity_mm(nc, 0, 0);
  std::mt19937_64 rng(6);
  const sim::TrajectoryResult r = trajectories_mps(nc, 0, 0, 2500, rng, {16, 1e-14});
  EXPECT_NEAR(r.mean, exact, 5.0 * r.std_error + 1e-6);
}

TEST(MpsTrajectories, ParallelVariantIsDeterministicAndUnbiased) {
  const qc::Circuit c = random_circuit(4, 12, 31);
  ch::NoisyCircuit nc(4);
  const auto& gs = c.gates();
  for (std::size_t i = 0; i < gs.size(); ++i) {
    nc.add_gate(gs[i]);
    if (i == 3) nc.add_noise(1, ch::depolarizing(0.15));
    if (i == 8) nc.add_noise(2, ch::amplitude_damping(0.2));
  }
  const double exact = sim::exact_fidelity_mm(nc, 0, 0);

  sim::ParallelOptions popts;
  popts.threads = 1;
  const sim::TrajectoryResult serial = trajectories_mps(nc, 0, 0, 1500, 4, popts, {32, 1e-14});
  popts.threads = 4;
  const sim::TrajectoryResult parallel = trajectories_mps(nc, 0, 0, 1500, 4, popts, {32, 1e-14});

  EXPECT_EQ(parallel.mean, serial.mean);
  EXPECT_EQ(parallel.std_error, serial.std_error);
  EXPECT_NEAR(parallel.mean, exact, 5.0 * parallel.std_error + 1e-6);
}

}  // namespace
}  // namespace noisim::mps
