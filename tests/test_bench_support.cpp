// Tests for the benchmark circuit generators and harness utilities.
#include <gtest/gtest.h>

#include <sstream>

#include "bench_support/generators.hpp"
#include "bench_support/harness.hpp"
#include "core/circuit_network.hpp"
#include "sim/statevector.hpp"

namespace noisim::bench {
namespace {

TEST(QaoaGenerator, ShapeAndDeterminism) {
  const qc::Circuit a = qaoa_grid(3, 3, 1, 7);
  EXPECT_EQ(a.num_qubits(), 9);
  EXPECT_GT(a.size(), 9u * 2u);
  EXPECT_GT(a.depth(), 4u);
  const qc::Circuit b = qaoa_grid(3, 3, 1, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(a.gates()[i].matrix().approx_equal(b.gates()[i].matrix()));
  // Different seed differs somewhere.
  const qc::Circuit c = qaoa_grid(3, 3, 1, 8);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i)
    differs = !a.gates()[i].matrix().approx_equal(c.gates()[i].matrix());
  EXPECT_TRUE(differs);
}

TEST(QaoaGenerator, CoversEveryGridEdgeOncePerRound) {
  const int rows = 3, cols = 4;
  const qc::Circuit c = qaoa_grid(rows, cols, 1, 1);
  std::size_t cx_count = 0;
  for (const auto& g : c.gates())
    if (g.kind == qc::GateKind::CX) ++cx_count;
  const std::size_t edges =
      static_cast<std::size_t>(rows * (cols - 1) + cols * (rows - 1));
  EXPECT_EQ(cx_count, 2 * edges);  // CX-RZ-CX per edge
}

TEST(QaoaGenerator, CircuitIsGenuinelyEntangling) {
  // Regression: a CZ-RZ-CZ interaction commutes away (diagonal sandwich);
  // the generator must emit a real ZZ coupling.
  const qc::Circuit c = qaoa_grid(2, 2, 1, 4);
  sim::Statevector sv(4);
  sv.apply_circuit(c);
  // A product state obeys |amp(b)| = prod of per-qubit magnitudes; test a
  // correlation witness instead: P(00..) * P(11..) != P(01..) * P(10..).
  const double p00 = std::norm(sv.amplitude(0b0000)), p11 = std::norm(sv.amplitude(0b1100));
  const double p01 = std::norm(sv.amplitude(0b0100)), p10 = std::norm(sv.amplitude(0b1000));
  EXPECT_GT(std::abs(p00 * p11 - p01 * p10), 1e-6);
}

TEST(QaoaGenerator, PerfectSquareHelper) {
  EXPECT_EQ(qaoa(16, 1, 3).num_qubits(), 16);
  EXPECT_THROW(qaoa(15, 1, 3), LinalgError);
}

TEST(QaoaGenerator, RoundsScaleGateCount) {
  const std::size_t one = qaoa_grid(3, 3, 1, 5).size();
  const std::size_t three = qaoa_grid(3, 3, 3, 5).size();
  EXPECT_GT(three, 2 * one - 20);
}

TEST(HfVqeGenerator, GivensNetworkShape) {
  const qc::Circuit c = hf_vqe(8, 11);
  EXPECT_EQ(c.num_qubits(), 8);
  std::size_t givens = 0, xs = 0;
  for (const auto& g : c.gates()) {
    if (g.kind == qc::GateKind::Givens) ++givens;
    if (g.kind == qc::GateKind::X) ++xs;
  }
  EXPECT_EQ(xs, 4u);                       // n/2 occupation
  EXPECT_EQ(givens, 8u * 7u / 2u);         // triangular network
}

TEST(HfVqeGenerator, PreservesParticleNumber) {
  // The Givens network conserves Hamming weight: the output has support
  // only on basis states with n/2 ones.
  const int n = 4;
  const qc::Circuit c = hf_vqe(n, 3);
  sim::Statevector sv(n);
  sv.apply_circuit(c);
  for (std::uint64_t b = 0; b < (1u << n); ++b) {
    if (std::popcount(b) != n / 2) {
      EXPECT_NEAR(std::abs(sv.amplitude(b)), 0.0, 1e-10) << "basis " << b;
    }
  }
  EXPECT_NEAR(sv.norm(), 1.0, 1e-10);
}

TEST(SupremacyGenerator, LayerStructure) {
  const qc::Circuit c = supremacy_inst(4, 4, 10, 21);
  EXPECT_EQ(c.num_qubits(), 16);
  // Opening H layer.
  for (int q = 0; q < 16; ++q) EXPECT_EQ(c.gates()[static_cast<std::size_t>(q)].kind, qc::GateKind::H);
  // Contains CZs and T/sqrt gates.
  std::size_t czs = 0, oneq = 0;
  for (std::size_t i = 16; i < c.size(); ++i) {
    if (c.gates()[i].kind == qc::GateKind::CZ)
      ++czs;
    else
      ++oneq;
  }
  EXPECT_GT(czs, 10u);
  EXPECT_GT(oneq, 5u);
  EXPECT_GE(c.depth(), 10u);
}

TEST(SupremacyGenerator, FirstSingleQubitGateIsT) {
  const qc::Circuit c = supremacy_inst(3, 3, 12, 5);
  std::vector<bool> seen(9, false);
  for (const auto& g : c.gates()) {
    if (g.kind == qc::GateKind::H || g.num_qubits() == 2) continue;
    const auto q = static_cast<std::size_t>(g.qubits[0]);
    if (!seen[q]) {
      EXPECT_EQ(g.kind, qc::GateKind::T) << "qubit " << q;
      seen[q] = true;
    }
  }
}

TEST(SupremacyGenerator, DeterministicBySeed) {
  const qc::Circuit a = supremacy_inst(3, 3, 9, 2);
  const qc::Circuit b = supremacy_inst(3, 3, 9, 2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.gates()[i].kind, b.gates()[i].kind);
}

TEST(InsertNoises, CountAndPlacement) {
  const qc::Circuit c = qaoa_grid(2, 2, 1, 3);
  const ch::NoisyCircuit nc = insert_noises(c, 5, depolarizing_noise(0.01), 9);
  EXPECT_EQ(nc.noise_count(), 5u);
  EXPECT_EQ(nc.gates_only().size(), c.size());
  // Each noise directly follows a gate acting on its qubit.
  const auto& ops = nc.ops();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (const ch::NoiseOp* noise = std::get_if<ch::NoiseOp>(&ops[i])) {
      ASSERT_GT(i, 0u);
      const qc::Gate& g = std::get<qc::Gate>(ops[i - 1]);
      EXPECT_TRUE(g.acts_on(noise->qubit));
    }
  }
}

TEST(InsertNoises, RejectsTooMany) {
  const qc::Circuit c = qaoa_grid(2, 2, 1, 3);
  EXPECT_THROW(insert_noises(c, c.size() + 1, depolarizing_noise(0.01), 1), LinalgError);
}

TEST(InsertNoises, DeterministicBySeed) {
  const qc::Circuit c = qaoa_grid(2, 3, 1, 3);
  const ch::NoisyCircuit a = insert_noises(c, 4, depolarizing_noise(0.02), 17);
  const ch::NoisyCircuit b = insert_noises(c, 4, depolarizing_noise(0.02), 17);
  EXPECT_EQ(a.noise_positions(), b.noise_positions());
}

TEST(NoiseModels, RealisticRateIsNearTarget) {
  std::mt19937_64 rng(1);
  const NoiseModel model = realistic_noise(7e-3);
  for (int i = 0; i < 10; ++i) {
    const double rate = model(rng).noise_rate();
    EXPECT_GT(rate, 2e-3);
    EXPECT_LT(rate, 2e-2);
  }
}

TEST(NoiseModels, DepolarizingRate) {
  std::mt19937_64 rng(1);
  EXPECT_NEAR(depolarizing_noise(0.003)(rng).noise_rate(), 0.004, 1e-9);
}

// --- harness ------------------------------------------------------------------

TEST(Harness, RunGuardedOk) {
  const RunOutcome r = run_guarded([] { return 0.75; });
  EXPECT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value, 0.75);
  EXPECT_EQ(format_value(r), "7.50e-01");
}

TEST(Harness, RunGuardedMapsMemoryOut) {
  const RunOutcome r = run_guarded([]() -> double { throw MemoryOutError("big"); });
  EXPECT_EQ(r.status, RunOutcome::Status::MemoryOut);
  EXPECT_EQ(format_time(r), "MO");
  EXPECT_EQ(format_value(r), "MO");
}

TEST(Harness, RunGuardedMapsTimeout) {
  const RunOutcome r = run_guarded([]() -> double { throw TimeoutError("slow"); });
  EXPECT_EQ(r.status, RunOutcome::Status::Timeout);
  EXPECT_EQ(format_time(r), "TO");
}

TEST(Harness, TableAlignsColumns) {
  Table t({"circuit", "time"});
  t.add_row({"hf_6", "0.17"});
  t.add_row({"qaoa_225", "925.87"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("hf_6      0.17"), std::string::npos);
  EXPECT_NE(s.find("qaoa_225  925.87"), std::string::npos);
}

TEST(Harness, CsvWriter) {
  std::ostringstream os;
  write_csv(os, {{"a", "b"}, {"1", "2"}});
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

}  // namespace
}  // namespace noisim::bench
